// Command kralld is the long-running prediction service: it serves the
// profile → state-machine → replication pipeline over HTTP/JSON. See
// SERVICE.md for the API.
//
// Usage:
//
//	kralld [-addr :8723] [-workers N] [-limit N] [-timeout 30s]
//	       [-budget N] [-maxbudget N] [-cache N] [-shards N] [-maxbatch N]
//	       [-backend interp|vm] [-drain 10s] [-quiet]
//	kralld -selfcheck [-metrics-out file]
//
// The daemon drains gracefully on SIGINT/SIGTERM: the listener closes
// immediately and in-flight requests get -drain to finish.
//
// -selfcheck boots the server in-process on a loopback port, drives every
// endpoint with the load-generator client (asserting byte-stable
// responses), fetches /metrics, and exits non-zero on any failure. It is
// the CI smoke test.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/exec"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kralld:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kralld", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8723", "listen address")
		workers    = fs.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
		limit      = fs.Int("limit", 0, "max in-flight requests per endpoint (0 = 2×workers)")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-request deadline")
		budget     = fs.Uint64("budget", 200_000, "default branch budget per run")
		maxBudget  = fs.Uint64("maxbudget", 5_000_000, "hard cap on requested budgets")
		cacheSize  = fs.Int("cache", 128, "artifact store entries")
		shards     = fs.Int("shards", 0, "artifact store shards, rounded up to a power of two (0 = 8)")
		maxBatch   = fs.Int("maxbatch", 0, "max items per /v1/batch request (0 = 64)")
		backend    = fs.String("backend", "interp", "execution backend: interp or vm")
		diskDir    = fs.String("disk", "", "disk artifact tier directory (empty = memory only)")
		diskMax    = fs.Int64("disk-max-bytes", 0, "disk tier byte budget (0 = 256 MiB)")
		fsync      = fs.Bool("fsync", false, "fsync disk-tier writes before rename")
		self       = fs.String("self", "", "this node's base URL for cluster peers (enables clustering)")
		peers      = fs.String("peers", "", "comma-separated peer base URLs")
		maxRPS     = fs.Float64("maxrps", 0, "per-node admitted requests/sec cap (0 = uncapped)")
		drain      = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		quiet      = fs.Bool("quiet", false, "log warnings and errors only")
		selfcheck  = fs.Bool("selfcheck", false, "boot on a loopback port, run the load client, and exit")
		metricsOut = fs.String("metrics-out", "", "with -selfcheck, write the final /metrics snapshot to `file`")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: level}))

	be, err := exec.ByName(*backend)
	if err != nil {
		return err
	}

	cfg := service.Config{
		Workers:        *workers,
		MaxInflight:    *limit,
		RequestTimeout: *timeout,
		DefaultBudget:  *budget,
		MaxBudget:      *maxBudget,
		CacheEntries:   *cacheSize,
		CacheShards:    *shards,
		MaxBatchItems:  *maxBatch,
		Backend:        be,
		DiskDir:        *diskDir,
		DiskMaxBytes:   *diskMax,
		DiskFsync:      *fsync,
		ClusterSelf:    *self,
		ClusterPeers:   splitPeers(*peers),
		MaxRPS:         *maxRPS,
		Logger:         logger,
	}

	if *selfcheck {
		return runSelfcheck(cfg, *drain, *metricsOut, stdout, logger)
	}

	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("kralld listening", "addr", l.Addr().String(), "schema", service.Schema)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, l, *drain); err != nil && err != http.ErrServerClosed {
		return err
	}
	logger.Info("kralld stopped")
	return nil
}

// splitPeers parses the -peers flag: comma-separated base URLs, blanks
// and surrounding whitespace dropped.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runSelfcheck is the in-process smoke test: server plus load client in
// one binary, no network assumptions beyond loopback.
func runSelfcheck(cfg service.Config, drain time.Duration, metricsOut string, stdout io.Writer, logger *slog.Logger) error {
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	base := "http://" + l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l, drain) }()

	report, lerr := service.Load(context.Background(), base, service.LoadOptions{
		Budget: 20_000,
	})
	if report != nil {
		fmt.Fprintln(stdout, report)
	}

	var merr error
	if metricsOut != "" {
		merr = snapshotMetrics(base, metricsOut)
	}

	cancel()
	if serr := <-served; serr != nil && serr != http.ErrServerClosed {
		logger.Warn("server exit", "error", serr)
	}
	if lerr != nil {
		return fmt.Errorf("selfcheck load: %w", lerr)
	}
	if merr != nil {
		return fmt.Errorf("selfcheck metrics: %w", merr)
	}
	fmt.Fprintln(stdout, "selfcheck ok")
	return nil
}

func snapshotMetrics(base, path string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(path, body, 0o644)
}
