package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/results"
)

// TestBenchJSON runs a small full sweep with -benchjson and validates the
// emitted document: schema tag, engine counters consistent with the
// record-once contract, and one timing entry per printed section in output
// order.
func TestBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	args := []string{"-quick", "-budget", "20000", "-all", "-parallel", "1", "-benchjson", path}
	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	res, err := results.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != "krallbench-results/v1" {
		t.Fatalf("schema = %q", res.Schema)
	}
	if res.Budget != 20000 || !res.Quick || res.Workers != 1 {
		t.Fatalf("config echo wrong: %+v", res)
	}
	if res.TotalSeconds <= 0 || res.BranchesPerSecond <= 0 {
		t.Fatalf("timings not populated: total=%v b/s=%v", res.TotalSeconds, res.BranchesPerSecond)
	}
	// -all records each workload under two dataset seeds, nothing more.
	if res.Engine.TraceRecords != 16 {
		t.Fatalf("trace_records = %d, want 16", res.Engine.TraceRecords)
	}
	if res.Engine.RecordedEvents != 16*20000 {
		t.Fatalf("recorded_events = %d, want %d", res.Engine.RecordedEvents, 16*20000)
	}
	if res.Engine.Replays == 0 || res.Engine.LiveRuns == 0 {
		t.Fatalf("engine counters not populated: %+v", res.Engine)
	}

	wantOrder := []string{
		"table1", "table2", "table3", "table4", "table5", "staticpred",
		"figures", "measured", "crossdataset", "layout", "scope", "joint",
		"indirect", "headline",
	}
	if len(res.Experiments) != len(wantOrder) {
		t.Fatalf("experiments = %d entries, want %d", len(res.Experiments), len(wantOrder))
	}
	for i, e := range res.Experiments {
		if e.ID != wantOrder[i] {
			t.Fatalf("experiment %d = %q, want %q", i, e.ID, wantOrder[i])
		}
		if e.Seconds < 0 {
			t.Fatalf("experiment %s: negative seconds", e.ID)
		}
	}
	// The capability split: live interpreter runs belong exclusively to the
	// execution-bound experiments.
	for _, e := range res.Experiments {
		switch e.ID {
		case "measured", "crossdataset", "layout", "scope", "joint", "indirect":
			if e.TraceSufficient {
				t.Fatalf("%s marked trace-sufficient", e.ID)
			}
		default:
			if !e.TraceSufficient {
				t.Fatalf("%s not marked trace-sufficient", e.ID)
			}
		}
	}
}

// TestForceLiveMatchesReplayStdout pins the engine swap end to end at the
// driver level: -forcelive must not move a single stdout byte.
func TestForceLiveMatchesReplayStdout(t *testing.T) {
	base := []string{"-quick", "-budget", "20000", "-table", "1,3", "-parallel", "1"}
	var replay, live bytes.Buffer
	if err := run(base, &replay, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-forcelive"), &live, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replay.Bytes(), live.Bytes()) {
		t.Fatal("-forcelive stdout differs from replay-engine stdout")
	}
}

// TestProfileFlags smoke-tests the pprof/trace plumbing: files must be
// created and non-empty.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	trc := filepath.Join(dir, "trace.out")
	args := []string{"-quick", "-budget", "5000", "-table", "1", "-parallel", "1",
		"-cpuprofile", cpu, "-memprofile", mem, "-trace", trc}
	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, trc} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}
