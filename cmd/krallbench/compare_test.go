package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/results"
)

func writeDoc(t *testing.T, dir, name string, mutate func(*results.Document)) string {
	t.Helper()
	doc := &results.Document{
		Schema:            results.Schema,
		Budget:            20000,
		Workers:           1,
		TotalSeconds:      10,
		BranchesPerSecond: 5_000_000,
		Service: &results.Service{
			Concurrency: 4,
			Single:      results.Phase{BatchSize: 1, Requests: 512, RequestsPerSecond: 2000, BranchesPerSecond: 40_000_000},
			Batch:       results.Phase{BatchSize: 8, Requests: 512, RequestsPerSecond: 5000, BranchesPerSecond: 100_000_000},
			Speedup:     2.5,
		},
		Trace: &results.Trace{
			Budget:                     20000,
			Rounds:                     3,
			Workers:                    1,
			SinglePassEventsPerSecond:  40_000_000,
			RunAwareEventsPerSecond:    300_000_000,
			PartitionedEventsPerSecond: 300_000_000,
			ProfileEventsPerSecond:     50_000_000,
			Speedup:                    7.5,
		},
	}
	if mutate != nil {
		mutate(doc)
	}
	path := filepath.Join(dir, name)
	if err := results.Write(path, doc); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareWithinTolerance: small dips pass, and the report lists every
// gated metric.
func TestCompareWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	oldP := writeDoc(t, dir, "old.json", nil)
	newP := writeDoc(t, dir, "new.json", func(d *results.Document) {
		d.BranchesPerSecond *= 0.90 // -10%, inside the 15% default
		d.Service.Batch.RequestsPerSecond *= 1.10
	})
	var out bytes.Buffer
	if err := run([]string{"-compare", oldP, newP}, &out, io.Discard); err != nil {
		t.Fatalf("compare failed on a within-tolerance dip: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"branches_per_second",
		"service.single.requests_per_second",
		"service.batch.requests_per_second",
		"service.batch.branches_per_second",
		"trace.single_pass_events_per_second",
		"trace.run_aware_events_per_second",
		"trace.partitioned_events_per_second",
		"trace.profile_events_per_second",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing metric %q:\n%s", want, out.String())
		}
	}
}

// TestCompareCatchesRegression is the gate's reason to exist: a 20% drop
// must exit non-zero, both hand-written and via -degrade (the synthetic
// regression CI injects to prove the gate fires).
func TestCompareCatchesRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeDoc(t, dir, "old.json", nil)
	newP := writeDoc(t, dir, "new.json", func(d *results.Document) {
		d.Service.Batch.RequestsPerSecond *= 0.80 // -20% > 15% tolerance
	})
	var out, errOut bytes.Buffer
	err := run([]string{"-compare", oldP, newP}, &out, &errOut)
	if err == nil {
		t.Fatalf("compare passed a 20%% regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(errOut.String(), "service.batch.requests_per_second") {
		t.Errorf("regression not reported:\nstdout:\n%s\nstderr:\n%s", out.String(), errOut.String())
	}

	// Same drop, produced by -degrade.
	degraded := filepath.Join(dir, "regressed.json")
	if err := run([]string{"-compare", oldP, "-degrade", "0.8", "-out", degraded}, io.Discard, io.Discard); err != nil {
		t.Fatalf("-degrade: %v", err)
	}
	if err := run([]string{"-compare", oldP, degraded}, io.Discard, io.Discard); err == nil {
		t.Fatal("compare passed the -degrade 0.8 document")
	}
	// A loose tolerance must accept the same pair.
	if err := run([]string{"-compare", oldP, degraded, "-tolerance", "0.5"}, io.Discard, io.Discard); err != nil {
		t.Fatalf("compare -tolerance 0.5 rejected a 20%% drop: %v", err)
	}
}

// TestCompareCatchesTraceRegression: the trace section is gated like the
// others — a 20% replay-throughput drop fails, -degrade injects one, and
// a baseline without a trace section gates only on the remaining metrics.
func TestCompareCatchesTraceRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeDoc(t, dir, "old.json", nil)
	newP := writeDoc(t, dir, "new.json", func(d *results.Document) {
		d.Trace.RunAwareEventsPerSecond *= 0.80
	})
	var out, errOut bytes.Buffer
	if err := run([]string{"-compare", oldP, newP}, &out, &errOut); err == nil {
		t.Fatalf("compare passed a 20%% trace regression:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "trace.run_aware_events_per_second") {
		t.Errorf("trace regression not attributed:\n%s", errOut.String())
	}

	degraded := filepath.Join(dir, "regressed.json")
	if err := run([]string{"-compare", oldP, "-degrade", "0.8", "-out", degraded}, io.Discard, io.Discard); err != nil {
		t.Fatalf("-degrade: %v", err)
	}
	reg, err := results.Read(degraded)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reg.Trace.PartitionedEventsPerSecond, 300_000_000*0.8; got != want {
		t.Errorf("-degrade left trace metrics unscaled: %f, want %f", got, want)
	}

	noTraceOld := writeDoc(t, dir, "notrace.json", func(d *results.Document) { d.Trace = nil })
	out.Reset()
	if err := run([]string{"-compare", noTraceOld, newP}, &out, io.Discard); err != nil {
		t.Fatalf("compare failed without a baseline trace section: %v", err)
	}
	if strings.Contains(out.String(), "trace.") {
		t.Errorf("trace metrics gated despite missing baseline section:\n%s", out.String())
	}
}

// TestCompareImprovementPasses: the gate is one-sided — faster is fine.
func TestCompareImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	oldP := writeDoc(t, dir, "old.json", nil)
	newP := writeDoc(t, dir, "new.json", func(d *results.Document) {
		d.BranchesPerSecond *= 3
		d.Service.Single.RequestsPerSecond *= 2
		d.Service.Batch.RequestsPerSecond *= 2
	})
	if err := run([]string{"-compare", oldP, newP}, io.Discard, io.Discard); err != nil {
		t.Fatalf("compare failed an improvement: %v", err)
	}
}

// TestCompareMissingService: a baseline without a service section gates
// only on the sweep metric instead of failing.
func TestCompareMissingService(t *testing.T) {
	dir := t.TempDir()
	oldP := writeDoc(t, dir, "old.json", func(d *results.Document) { d.Service = nil })
	newP := writeDoc(t, dir, "new.json", nil)
	var out bytes.Buffer
	if err := run([]string{"-compare", oldP, newP}, &out, io.Discard); err != nil {
		t.Fatalf("compare failed without a baseline service section: %v", err)
	}
	if strings.Contains(out.String(), "service.") {
		t.Errorf("service metrics gated despite missing baseline section:\n%s", out.String())
	}
}

// TestCompareUsageErrors sweeps argument validation.
func TestCompareUsageErrors(t *testing.T) {
	dir := t.TempDir()
	oldP := writeDoc(t, dir, "old.json", nil)
	for _, args := range [][]string{
		{"-compare", oldP},                             // one document
		{"-compare", oldP, oldP, oldP},                 // three documents
		{"-compare", oldP, oldP, "-tolerance"},         // missing value
		{"-compare", oldP, oldP, "-tolerance", "1.5"},  // out of range
		{"-compare", oldP, oldP, "-nope", "1"},         // unknown flag
		{"-compare", oldP, "-degrade", "0.8"},          // -degrade without -out
		{"-compare", oldP, filepath.Join(dir, "nope")}, // unreadable
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
