package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenCases pins the five paper tables at a fixed small scale. The
// budget is large enough that every strategy row is populated but small
// enough to keep the whole test under a few seconds.
var goldenCases = []struct {
	name string
	args []string
}{
	{"table1", []string{"-quick", "-budget", "20000", "-table", "1"}},
	{"table2", []string{"-quick", "-budget", "20000", "-table", "2"}},
	{"table3", []string{"-quick", "-budget", "20000", "-table", "3"}},
	{"table4", []string{"-quick", "-budget", "20000", "-table", "4"}},
	{"table5", []string{"-quick", "-budget", "20000", "-table", "5"}},
	{"staticpred", []string{"-quick", "-budget", "20000", "-staticpred"}},
	{"indirect", []string{"-quick", "-budget", "20000", "-indirect"}},
}

// TestGolden compares krallbench's stdout against committed golden files.
// Progress and timing go to stderr, so stdout must be byte-stable across
// runs, machines, and worker counts. Regenerate with:
//
//	go test ./cmd/krallbench -run TestGolden -update
func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out, io.Discard); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".txt")
			if *update {
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (run with -update after intended changes)\ngot:\n%s\nwant:\n%s",
					path, out.Bytes(), want)
			}
		})
	}
}

// TestGoldenParallelInvariance re-renders one golden case at several
// worker counts: the committed file must match regardless of -parallel.
func TestGoldenParallelInvariance(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "table1.txt"))
	if err != nil {
		t.Skipf("golden file missing: %v", err)
	}
	for _, p := range []int{1, 4, 8} {
		var out bytes.Buffer
		args := append([]string{}, goldenCases[0].args...)
		args = append(args, "-parallel", fmt.Sprint(p))
		if err := run(args, &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Errorf("-parallel %d output differs from golden table1.txt", p)
		}
	}
}

// TestRunBadFlag makes sure flag errors surface as errors, not exits, so
// the golden harness can't be wedged by a typo.
func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard, io.Discard); err == nil {
		t.Fatal("expected error for unknown flag")
	}
}
