// Command krallbench regenerates every table and figure of the paper's
// evaluation section over the eight substitute workloads.
//
// Usage:
//
//	krallbench [flags]
//
//	-budget N     branch-event budget per workload (default 2000000)
//	-quick        use the scaled-down quick configuration
//	-table N      print only table N (1-5); repeatable via comma list
//	-figures      print the misprediction-vs-size curves
//	-measured     print the interpreter-verified replication results
//	-crossdata    print the dataset-sensitivity experiment
//	-headline     print the §5 headline summary
//	-all          print everything (default when no selector is given)
//	-states N     machine size for the measured-replication experiment
//	-parallel N   experiment-engine workers (default GOMAXPROCS; 1 = the
//	              sequential path — output is byte-identical either way)
//
// Tables and figures go to stdout; progress, timing, and the engine's
// job/cache counters go to stderr, so stdout is reproducible byte-for-byte
// (the golden tests in main_test.go rely on this).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "krallbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("krallbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		budget    = fs.Uint64("budget", 2_000_000, "branch-event budget per workload")
		quick     = fs.Bool("quick", false, "use the quick configuration")
		tables    = fs.String("table", "", "comma-separated table numbers (1-5)")
		figures   = fs.Bool("figures", false, "print figure curves")
		measured  = fs.Bool("measured", false, "print measured replication results")
		crossdata = fs.Bool("crossdata", false, "print dataset sensitivity")
		layoutExp = fs.Bool("layout", false, "print the code-positioning experiment")
		scopeExp  = fs.Bool("scope", false, "print the scheduler-scope experiment")
		jointExp  = fs.Bool("joint", false, "print the joint-machine (§6) experiment")
		headline  = fs.Bool("headline", false, "print headline summary")
		all       = fs.Bool("all", false, "print everything")
		states    = fs.Int("states", 5, "machine size for measured replication")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "experiment-engine workers (1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *budget != 0 {
		cfg.Budget = *budget
	}
	cfg.Parallel = *parallel
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sel := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		if t == "" {
			continue
		}
		if n, err := strconv.Atoi(t); err != nil || n < 1 || n > 5 {
			return fmt.Errorf("-table %q: tables are numbered 1-5", t)
		}
		sel["table"+t] = true
	}
	nothing := len(sel) == 0 && !*figures && !*measured && !*crossdata && !*headline && !*layoutExp && !*scopeExp && !*jointExp
	if *all || nothing {
		for i := 1; i <= 5; i++ {
			sel[fmt.Sprintf("table%d", i)] = true
		}
		*figures, *measured, *crossdata, *headline, *layoutExp, *scopeExp, *jointExp = true, true, true, true, true, true, true
	}

	start := time.Now()
	fmt.Fprintf(stderr, "krallbench: profiling %d workloads, budget %d branches each, %d workers...\n",
		len(bench.Workloads()), cfg.Budget, workers)
	suite, err := bench.NewSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "profiled in %v\n\n", time.Since(start).Round(time.Millisecond))

	section := func(id string, f func() (*bench.Table, error)) error {
		if !sel[id] {
			return nil
		}
		t, err := f()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
		return nil
	}
	sections := []struct {
		id string
		f  func() (*bench.Table, error)
	}{
		{"table1", func() (*bench.Table, error) { return suite.Table1(), nil }},
		{"table2", func() (*bench.Table, error) { return suite.Table2(), nil }},
		{"table3", func() (*bench.Table, error) { return suite.Table3(), nil }},
		{"table4", func() (*bench.Table, error) { return suite.Table4(), nil }},
		{"table5", func() (*bench.Table, error) { return suite.Table5(), nil }},
	}
	for _, sec := range sections {
		if err := section(sec.id, sec.f); err != nil {
			return err
		}
	}

	var figs []bench.Figure
	if *figures || *headline {
		figs = suite.Figures()
	}
	if *figures {
		fmt.Fprintln(stdout, bench.FigureTable(figs).Render())
		for _, f := range figs {
			fmt.Fprintln(stdout, bench.RenderFigure(f))
		}
	}
	if *measured {
		t, err := suite.MeasuredReplication(*states)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
	}
	if *crossdata {
		t, err := suite.CrossDataset()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
	}
	if *layoutExp {
		t, err := suite.LayoutTable()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
	}
	if *scopeExp {
		t, err := suite.ScopeTable()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
	}
	if *jointExp {
		t, err := suite.JointTable()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
	}
	if *headline {
		fmt.Fprintln(stdout, bench.RenderHeadlines(bench.Headlines(figs)))
	}
	fmt.Fprintf(stderr, "engine: %v\n", suite.Engine().Stats())
	fmt.Fprintf(stderr, "total time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
