// Command krallbench regenerates every table and figure of the paper's
// evaluation section over the eight substitute workloads.
//
// Usage:
//
//	krallbench [flags]
//
//	-budget N     branch-event budget per workload (default 2000000)
//	-quick        use the scaled-down quick configuration
//	-table N      print only table N (1-5); repeatable via comma list
//	-staticpred   print the static (profile-free) prediction table
//	-figures      print the misprediction-vs-size curves
//	-measured     print the interpreter-verified replication results
//	-crossdata    print the dataset-sensitivity experiment
//	-indirect     print the indirect-dispatch experiment: switch clustering
//	              vs the annotated baseline on the dispatch workloads
//	-headline     print the §5 headline summary
//	-all          print everything (default when no selector is given)
//	-states N     machine size for the measured-replication experiment
//	-parallel N   experiment-engine workers (default GOMAXPROCS; 1 = the
//	              sequential path — output is byte-identical either way)
//	-forcelive    disable the trace-replay engine (every experiment
//	              interprets live; identical results, slower)
//	-backend B    execution backend for live runs: interp (default) or vm,
//	              the compiled bytecode machine — observably identical,
//	              pinned by internal/vm's differential tests
//	-execbench    time identical live runs on both backends and print the
//	              comparison (also written to -benchjson as "exec")
//	-tracebench   time trace replay per decode mode (event-at-a-time,
//	              run-aware, partitioned, profile bundle) and print the
//	              comparison (also written to -benchjson as "trace")
//	-benchjson F  write machine-readable results (timings, engine
//	              counters) as JSON to F — see EXPERIMENTS.md for the schema
//	-cpuprofile F write a CPU profile to F
//	-memprofile F write a heap profile to F
//	-trace F      write a runtime execution trace to F
//
// A second mode gates CI on throughput instead of running the sweep:
//
//	krallbench -compare OLD NEW [-tolerance 0.15]
//	krallbench -compare OLD -degrade 0.8 -out FILE
//
// -compare reads two -benchjson documents and exits non-zero when
// branches/sec or the service requests/sec dropped more than the
// tolerance below OLD; -degrade writes a synthetically regressed copy so
// CI can prove the gate fires.
//
// Tables and figures go to stdout; progress, timing, and the engine's
// job/cache counters go to stderr, so stdout is reproducible byte-for-byte
// (the golden tests in main_test.go rely on this).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/results"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "krallbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	// -compare is a distinct mode: it reads two result documents and
	// gates on throughput instead of running the sweep.
	if len(args) > 0 && (args[0] == "-compare" || args[0] == "--compare") {
		return runCompare(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("krallbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		budget     = fs.Uint64("budget", 2_000_000, "branch-event budget per workload")
		quick      = fs.Bool("quick", false, "use the quick configuration")
		tables     = fs.String("table", "", "comma-separated table numbers (1-5)")
		staticpred = fs.Bool("staticpred", false, "print the static (profile-free) prediction table")
		figures    = fs.Bool("figures", false, "print figure curves")
		measured   = fs.Bool("measured", false, "print measured replication results")
		crossdata  = fs.Bool("crossdata", false, "print dataset sensitivity")
		layoutExp  = fs.Bool("layout", false, "print the code-positioning experiment")
		scopeExp   = fs.Bool("scope", false, "print the scheduler-scope experiment")
		jointExp   = fs.Bool("joint", false, "print the joint-machine (§6) experiment")
		indirExp   = fs.Bool("indirect", false, "print the indirect-dispatch (switch clustering) experiment")
		headline   = fs.Bool("headline", false, "print headline summary")
		all        = fs.Bool("all", false, "print everything")
		states     = fs.Int("states", 5, "machine size for measured replication")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "experiment-engine workers (1 = sequential)")
		quiet      = fs.Bool("quiet", false, "suppress progress and engine-stats chatter on stderr")
		forceLive  = fs.Bool("forcelive", false, "disable the trace-replay engine (interpret every experiment live)")
		backend    = fs.String("backend", "interp", "execution backend for live runs: interp or vm")
		execbench  = fs.Bool("execbench", false, "time live runs on both backends and print the comparison")
		tracebench = fs.Bool("tracebench", false, "time trace replay per decode mode and print the comparison")
		benchjson  = fs.String("benchjson", "", "write machine-readable results (JSON) to `file`")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to `file`")
		memprofile = fs.String("memprofile", "", "write a heap profile to `file`")
		traceFlag  = fs.String("trace", "", "write a runtime execution trace to `file`")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quiet {
		// Tables still go to stdout; only the progress/stats chatter is
		// silenced, so library-style callers get clean streams.
		stderr = io.Discard
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer rtrace.Stop()
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *budget != 0 {
		cfg.Budget = *budget
	}
	cfg.Parallel = *parallel
	cfg.ForceLive = *forceLive
	be, err := exec.ByName(*backend)
	if err != nil {
		return err
	}
	cfg.Backend = be
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sel := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		if t == "" {
			continue
		}
		if n, err := strconv.Atoi(t); err != nil || n < 1 || n > 5 {
			return fmt.Errorf("-table %q: tables are numbered 1-5", t)
		}
		sel["table"+t] = true
	}
	if *staticpred {
		sel["staticpred"] = true
	}
	nothing := len(sel) == 0 && !*figures && !*measured && !*crossdata && !*headline && !*layoutExp && !*scopeExp && !*jointExp && !*indirExp && !*execbench && !*tracebench
	if *all || nothing {
		for i := 1; i <= 5; i++ {
			sel[fmt.Sprintf("table%d", i)] = true
		}
		sel["staticpred"] = true
		*figures, *measured, *crossdata, *headline, *layoutExp, *scopeExp, *jointExp, *indirExp = true, true, true, true, true, true, true, true
	}

	var timings []results.Section
	report := func(id string, d time.Duration) {
		timings = append(timings, results.Section{
			ID:              id,
			TraceSufficient: bench.TraceSufficient(id),
			Seconds:         d.Seconds(),
		})
	}

	start := time.Now()
	fmt.Fprintf(stderr, "krallbench: profiling %d workloads, budget %d branches each, %d workers...\n",
		len(bench.Workloads()), cfg.Budget, workers)
	suite, err := bench.NewSuite(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "profiled in %v\n\n", time.Since(start).Round(time.Millisecond))

	section := func(id string, f func() (*bench.Table, error)) error {
		if !sel[id] {
			return nil
		}
		secStart := time.Now()
		t, err := f()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
		report(id, time.Since(secStart))
		return nil
	}
	sections := []struct {
		id string
		f  func() (*bench.Table, error)
	}{
		{"table1", func() (*bench.Table, error) { return suite.Table1(), nil }},
		{"table2", func() (*bench.Table, error) { return suite.Table2(), nil }},
		{"table3", func() (*bench.Table, error) { return suite.Table3(), nil }},
		{"table4", func() (*bench.Table, error) { return suite.Table4(), nil }},
		{"table5", func() (*bench.Table, error) { return suite.Table5(), nil }},
		{"staticpred", func() (*bench.Table, error) { return suite.StaticPrediction(), nil }},
	}
	for _, sec := range sections {
		if err := section(sec.id, sec.f); err != nil {
			return err
		}
	}

	// Figures and the headline share one curve computation; its cost is
	// attributed to whichever section consumes it first.
	var figs []bench.Figure
	var figCost time.Duration
	if *figures || *headline {
		figStart := time.Now()
		figs = suite.Figures()
		figCost = time.Since(figStart)
	}
	if *figures {
		secStart := time.Now()
		fmt.Fprintln(stdout, bench.FigureTable(figs).Render())
		for _, f := range figs {
			fmt.Fprintln(stdout, bench.RenderFigure(f))
		}
		report("figures", figCost+time.Since(secStart))
		figCost = 0
	}
	if *measured {
		secStart := time.Now()
		t, err := suite.MeasuredReplication(*states)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
		report("measured", time.Since(secStart))
	}
	if *crossdata {
		secStart := time.Now()
		t, err := suite.CrossDataset()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
		report("crossdataset", time.Since(secStart))
	}
	if *layoutExp {
		secStart := time.Now()
		t, err := suite.LayoutTable()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
		report("layout", time.Since(secStart))
	}
	if *scopeExp {
		secStart := time.Now()
		t, err := suite.ScopeTable()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
		report("scope", time.Since(secStart))
	}
	if *jointExp {
		secStart := time.Now()
		t, err := suite.JointTable()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
		report("joint", time.Since(secStart))
	}
	if *indirExp {
		secStart := time.Now()
		t, err := suite.IndirectTable()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
		report("indirect", time.Since(secStart))
	}
	if *headline {
		secStart := time.Now()
		fmt.Fprintln(stdout, bench.RenderHeadlines(bench.Headlines(figs)))
		report("headline", figCost+time.Since(secStart))
	}
	var execMs []bench.ExecMeasurement
	if *execbench {
		secStart := time.Now()
		execMs, err = bench.MeasureExec(nil, cfg.Budget, 3)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.ExecTable(execMs).Render())
		report("execbench", time.Since(secStart))
	}
	var traceMs []bench.TraceMeasurement
	if *tracebench {
		secStart := time.Now()
		traceMs, err = bench.MeasureTrace(nil, cfg.Budget, 3, workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.TraceTable(traceMs).Render())
		report("tracebench", time.Since(secStart))
	}
	stats := suite.Engine().Stats()
	total := time.Since(start)
	fmt.Fprintf(stderr, "engine: %v\n", stats)
	fmt.Fprintf(stderr, "total time: %v\n", total.Round(time.Millisecond))

	if *benchjson != "" {
		res := &results.Document{
			Schema:       results.Schema,
			Budget:       cfg.Budget,
			Quick:        *quick,
			Workers:      workers,
			TotalSeconds: total.Seconds(),
			Engine: results.Engine{
				Jobs:           stats.Jobs,
				JobSeconds:     stats.JobTime.Seconds(),
				CacheHits:      stats.CacheHits,
				CacheMisses:    stats.CacheMisses,
				TraceRecords:   stats.TraceRecords,
				RecordedEvents: stats.RecordedEvents,
				Replays:        stats.Replays,
				ReplayedEvents: stats.ReplayedEvents,
				LiveRuns:       stats.LiveRuns,
			},
			Experiments: timings,
		}
		if secs := total.Seconds(); secs > 0 {
			res.BranchesPerSecond = float64(stats.RecordedEvents+stats.ReplayedEvents) / secs
		}
		if len(execMs) > 0 {
			ex := &results.Exec{Budget: execMs[0].Budget, Rounds: execMs[0].Rounds}
			var iTime, vTime, total float64
			for _, m := range execMs {
				ex.Workloads = append(ex.Workloads, results.ExecWorkload{
					Name:                    m.Workload,
					InterpBranchesPerSecond: m.InterpBranchesPerSec,
					VMBranchesPerSecond:     m.VMBranchesPerSec,
					Speedup:                 m.Speedup,
				})
				iTime += float64(m.Budget) / m.InterpBranchesPerSec
				vTime += float64(m.Budget) / m.VMBranchesPerSec
				total += float64(m.Budget)
			}
			ex.InterpBranchesPerSecond = total / iTime
			ex.VMBranchesPerSecond = total / vTime
			ex.Speedup = ex.VMBranchesPerSecond / ex.InterpBranchesPerSecond
			res.Exec = ex
		}
		if len(traceMs) > 0 {
			tr := &results.Trace{
				Budget:  traceMs[0].Budget,
				Rounds:  traceMs[0].Rounds,
				Workers: traceMs[0].Workers,
			}
			var sTime, rTime, pTime, fTime, total float64
			for _, m := range traceMs {
				tr.Workloads = append(tr.Workloads, results.TraceWorkload{
					Name:                       m.Workload,
					Events:                     m.Events,
					EncodedBytes:               m.EncodedBytes,
					SinglePassEventsPerSecond:  m.SinglePassEventsPerSec,
					RunAwareEventsPerSecond:    m.RunAwareEventsPerSec,
					PartitionedEventsPerSecond: m.PartitionedEventsPerSec,
					ProfileEventsPerSecond:     m.ProfileEventsPerSec,
					Speedup:                    m.Speedup,
				})
				sTime += float64(m.Events) / m.SinglePassEventsPerSec
				rTime += float64(m.Events) / m.RunAwareEventsPerSec
				pTime += float64(m.Events) / m.PartitionedEventsPerSec
				fTime += float64(m.Events) / m.ProfileEventsPerSec
				total += float64(m.Events)
			}
			tr.SinglePassEventsPerSecond = total / sTime
			tr.RunAwareEventsPerSecond = total / rTime
			tr.PartitionedEventsPerSecond = total / pTime
			tr.ProfileEventsPerSecond = total / fTime
			tr.Speedup = tr.RunAwareEventsPerSecond / tr.SinglePassEventsPerSecond
			res.Trace = tr
		}
		if err := results.Write(*benchjson, res); err != nil {
			return fmt.Errorf("-benchjson: %w", err)
		}
		fmt.Fprintf(stderr, "wrote %s\n", *benchjson)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}
