// Command krallbench regenerates every table and figure of the paper's
// evaluation section over the eight substitute workloads.
//
// Usage:
//
//	krallbench [flags]
//
//	-budget N     branch-event budget per workload (default 2000000)
//	-quick        use the scaled-down quick configuration
//	-table N      print only table N (1-5); repeatable via comma list
//	-figures      print the misprediction-vs-size curves
//	-measured     print the interpreter-verified replication results
//	-crossdata    print the dataset-sensitivity experiment
//	-headline     print the §5 headline summary
//	-all          print everything (default when no selector is given)
//	-states N     machine size for the measured-replication experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		budget    = flag.Uint64("budget", 2_000_000, "branch-event budget per workload")
		quick     = flag.Bool("quick", false, "use the quick configuration")
		tables    = flag.String("table", "", "comma-separated table numbers (1-5)")
		figures   = flag.Bool("figures", false, "print figure curves")
		measured  = flag.Bool("measured", false, "print measured replication results")
		crossdata = flag.Bool("crossdata", false, "print dataset sensitivity")
		layoutExp = flag.Bool("layout", false, "print the code-positioning experiment")
		scopeExp  = flag.Bool("scope", false, "print the scheduler-scope experiment")
		jointExp  = flag.Bool("joint", false, "print the joint-machine (§6) experiment")
		headline  = flag.Bool("headline", false, "print headline summary")
		all       = flag.Bool("all", false, "print everything")
		states    = flag.Int("states", 5, "machine size for measured replication")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *budget != 0 {
		cfg.Budget = *budget
	}
	sel := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		if t != "" {
			sel["table"+t] = true
		}
	}
	nothing := len(sel) == 0 && !*figures && !*measured && !*crossdata && !*headline && !*layoutExp && !*scopeExp && !*jointExp
	if *all || nothing {
		for i := 1; i <= 5; i++ {
			sel[fmt.Sprintf("table%d", i)] = true
		}
		*figures, *measured, *crossdata, *headline, *layoutExp, *scopeExp, *jointExp = true, true, true, true, true, true, true
	}

	start := time.Now()
	fmt.Printf("krallbench: profiling %d workloads, budget %d branches each...\n",
		len(bench.Workloads()), cfg.Budget)
	suite, err := bench.NewSuite(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("profiled in %v\n\n", time.Since(start).Round(time.Millisecond))

	section := func(id string, f func() (*bench.Table, error)) {
		if !sel[id] {
			return
		}
		t, err := f()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	section("table1", func() (*bench.Table, error) { return suite.Table1(), nil })
	section("table2", func() (*bench.Table, error) { return suite.Table2(), nil })
	section("table3", func() (*bench.Table, error) { return suite.Table3(), nil })
	section("table4", func() (*bench.Table, error) { return suite.Table4(), nil })
	section("table5", func() (*bench.Table, error) { return suite.Table5(), nil })

	var figs []bench.Figure
	if *figures || *headline {
		figs = suite.Figures()
	}
	if *figures {
		fmt.Println(bench.FigureTable(figs).Render())
		for _, f := range figs {
			fmt.Println(bench.RenderFigure(f))
		}
	}
	if *measured {
		t, err := suite.MeasuredReplication(*states)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if *crossdata {
		t, err := suite.CrossDataset()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if *layoutExp {
		t, err := suite.LayoutTable()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if *scopeExp {
		t, err := suite.ScopeTable()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if *jointExp {
		t, err := suite.JointTable()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if *headline {
		fmt.Println(bench.RenderHeadlines(bench.Headlines(figs)))
	}
	fmt.Printf("total time: %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "krallbench:", err)
	os.Exit(1)
}
