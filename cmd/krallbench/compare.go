package main

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/results"
)

// runCompare is the bench-regression gate: krallbench -compare OLD NEW
// reads two krallbench-results/v1 documents and fails when a throughput
// metric dropped by more than -tolerance relative to OLD. Only metrics
// present in both documents are gated, so a baseline without a service
// section does not fail against a run that has one (and vice versa).
//
//	krallbench -compare OLD NEW [-tolerance 0.15]
//	krallbench -compare OLD -degrade 0.8 -out FILE
//
// The -degrade form writes a copy of OLD with every gated metric scaled
// by the factor — a synthetic regression. CI uses it to prove the gate
// actually fires: compare against the degraded copy must exit non-zero.
func runCompare(args []string, stdout, stderr io.Writer) error {
	tolerance := 0.15
	degrade := 0.0
	out := ""
	var paths []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		takeValue := func() (string, error) {
			if i+1 >= len(args) {
				return "", fmt.Errorf("%s needs a value", arg)
			}
			i++
			return args[i], nil
		}
		var err error
		switch arg {
		case "-tolerance", "--tolerance":
			var v string
			if v, err = takeValue(); err == nil {
				tolerance, err = strconv.ParseFloat(v, 64)
			}
		case "-degrade", "--degrade":
			var v string
			if v, err = takeValue(); err == nil {
				degrade, err = strconv.ParseFloat(v, 64)
			}
		case "-out", "--out":
			out, err = takeValue()
		default:
			if len(arg) > 1 && arg[0] == '-' {
				return fmt.Errorf("-compare: unknown flag %s (want -tolerance, -degrade, -out)", arg)
			}
			paths = append(paths, arg)
		}
		if err != nil {
			return fmt.Errorf("-compare: %w", err)
		}
	}

	if degrade != 0 {
		if len(paths) != 1 || out == "" {
			return fmt.Errorf("-compare -degrade needs exactly one input document and -out")
		}
		if degrade <= 0 || degrade > 1 {
			return fmt.Errorf("-compare: -degrade %v out of range (0, 1]", degrade)
		}
		doc, err := results.Read(paths[0])
		if err != nil {
			return err
		}
		for _, m := range gatedMetrics(doc, doc) {
			*m.newv *= degrade
		}
		if err := results.Write(out, doc); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s with throughput scaled by %.2f\n", out, degrade)
		return nil
	}

	if len(paths) != 2 {
		return fmt.Errorf("-compare needs exactly two documents (old new), got %d", len(paths))
	}
	if tolerance < 0 || tolerance >= 1 {
		return fmt.Errorf("-compare: -tolerance %v out of range [0, 1)", tolerance)
	}
	oldDoc, err := results.Read(paths[0])
	if err != nil {
		return err
	}
	newDoc, err := results.Read(paths[1])
	if err != nil {
		return err
	}

	metrics := gatedMetrics(oldDoc, newDoc)
	if len(metrics) == 0 {
		return fmt.Errorf("-compare: no throughput metric present in both %s and %s", paths[0], paths[1])
	}
	var failed []string
	fmt.Fprintf(stdout, "%-30s %14s %14s %8s\n", "metric", "old", "new", "delta")
	for _, m := range metrics {
		oldV, newV := *m.oldv, *m.newv
		delta := newV/oldV - 1
		mark := ""
		if newV < oldV*(1-tolerance) {
			mark = "  REGRESSION"
			failed = append(failed, fmt.Sprintf("%s dropped %.1f%% (%.1f -> %.1f, tolerance %.0f%%)",
				m.name, -delta*100, oldV, newV, tolerance*100))
		}
		fmt.Fprintf(stdout, "%-30s %14.1f %14.1f %+7.1f%%%s\n", m.name, oldV, newV, delta*100, mark)
	}
	if len(failed) > 0 {
		for _, f := range failed {
			fmt.Fprintln(stderr, "krallbench -compare:", f)
		}
		return fmt.Errorf("%d of %d throughput metrics regressed past the %.0f%% tolerance",
			len(failed), len(metrics), tolerance*100)
	}
	fmt.Fprintf(stdout, "all %d throughput metrics within %.0f%% of the baseline\n", len(metrics), tolerance*100)
	return nil
}

// gatedMetric pairs one throughput number across the two documents.
type gatedMetric struct {
	name string
	oldv *float64
	newv *float64
}

// gatedMetrics lists the throughput numbers the gate watches, restricted
// to those present (non-zero) in both documents.
func gatedMetrics(oldDoc, newDoc *results.Document) []gatedMetric {
	var out []gatedMetric
	add := func(name string, oldv, newv *float64) {
		if *oldv > 0 && *newv > 0 {
			out = append(out, gatedMetric{name, oldv, newv})
		}
	}
	add("branches_per_second", &oldDoc.BranchesPerSecond, &newDoc.BranchesPerSecond)
	if oldDoc.Service != nil && newDoc.Service != nil {
		add("service.single.requests_per_second",
			&oldDoc.Service.Single.RequestsPerSecond, &newDoc.Service.Single.RequestsPerSecond)
		add("service.batch.requests_per_second",
			&oldDoc.Service.Batch.RequestsPerSecond, &newDoc.Service.Batch.RequestsPerSecond)
		add("service.batch.branches_per_second",
			&oldDoc.Service.Batch.BranchesPerSecond, &newDoc.Service.Batch.BranchesPerSecond)
		if oldDoc.Service.Cluster != nil && newDoc.Service.Cluster != nil {
			add("service.cluster.requests_per_second",
				&oldDoc.Service.Cluster.MultiNode.RequestsPerSecond,
				&newDoc.Service.Cluster.MultiNode.RequestsPerSecond)
			add("service.cluster.scaling",
				&oldDoc.Service.Cluster.Scaling, &newDoc.Service.Cluster.Scaling)
		}
	}
	if oldDoc.Exec != nil && newDoc.Exec != nil {
		add("exec.interp_branches_per_second",
			&oldDoc.Exec.InterpBranchesPerSecond, &newDoc.Exec.InterpBranchesPerSecond)
		add("exec.vm_branches_per_second",
			&oldDoc.Exec.VMBranchesPerSecond, &newDoc.Exec.VMBranchesPerSecond)
	}
	if oldDoc.Trace != nil && newDoc.Trace != nil {
		add("trace.single_pass_events_per_second",
			&oldDoc.Trace.SinglePassEventsPerSecond, &newDoc.Trace.SinglePassEventsPerSecond)
		add("trace.run_aware_events_per_second",
			&oldDoc.Trace.RunAwareEventsPerSecond, &newDoc.Trace.RunAwareEventsPerSecond)
		add("trace.partitioned_events_per_second",
			&oldDoc.Trace.PartitionedEventsPerSecond, &newDoc.Trace.PartitionedEventsPerSecond)
		add("trace.profile_events_per_second",
			&oldDoc.Trace.ProfileEventsPerSecond, &newDoc.Trace.ProfileEventsPerSecond)
	}
	return out
}
