package main

// Multi-node throughput mode: krallload -throughput -nodes N re-execs
// itself as real kralld subprocesses (the hidden -servenode mode),
// measures one rate-capped node, then an N-node consistent-hash cluster
// of them, and reports the aggregate requests/sec scaling. Every node
// carries the same -noderps admission cap, so the cluster's capacity is
// capacity partitioning (nodes × cap) and the scaling number stays
// meaningful on a host a single uncapped node could saturate alone.
//
// Listeners are bound by the parent and passed to each child as fd 3
// (ExtraFiles + net.FileListener): the parent knows every node's URL
// before any child starts, so peers can be wired without a port race.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/results"
	"repro/internal/service"
)

// runServeNode is the child side of -nodes: a kralld serving the
// listener inherited as fd 3 until SIGTERM.
func runServeNode(selfURL, peers string, maxRPS float64, diskDir string, quiet bool, stderr io.Writer) error {
	// Quiet suppresses warnings too: under a deliberate rate cap, 429s
	// are nominal and would otherwise flood the parent's stderr.
	level := slog.LevelInfo
	if quiet {
		level = slog.LevelError
	}
	srv, err := service.New(service.Config{
		MaxRPS:       maxRPS,
		DiskDir:      diskDir,
		ClusterSelf:  selfURL,
		ClusterPeers: splitList(peers),
		Logger:       slog.New(slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: level})),
	})
	if err != nil {
		return err
	}
	f := os.NewFile(3, "inherited-listener")
	if f == nil {
		return fmt.Errorf("-servenode: no inherited listener on fd 3")
	}
	l, err := net.FileListener(f)
	if err != nil {
		return fmt.Errorf("-servenode: fd 3 is not a listener: %w", err)
	}
	f.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, l, 2*time.Second); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// nodeProc is one spawned kralld subprocess.
type nodeProc struct {
	url string
	cmd *exec.Cmd
}

// stop drains the node: SIGTERM, then SIGKILL if it lingers.
func (p *nodeProc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _ = p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
	}
}

// spawnNode starts one -servenode child serving l. The parent's copies
// of the listener are closed after the fork so only the child accepts.
func spawnNode(exe, self string, peers []string, maxRPS float64, diskDir string, l *net.TCPListener, quiet bool, stderr io.Writer) (*nodeProc, error) {
	lf, err := l.File()
	if err != nil {
		return nil, err
	}
	args := []string{
		"-servenode",
		"-maxrps", fmt.Sprint(maxRPS),
		"-disk", diskDir,
	}
	if self != "" {
		args = append(args, "-self", self, "-peers", strings.Join(peers, ","))
	}
	if quiet {
		args = append(args, "-quiet")
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = stderr
	cmd.ExtraFiles = []*os.File{lf}
	url := "http://" + l.Addr().String()
	if err := cmd.Start(); err != nil {
		lf.Close()
		return nil, fmt.Errorf("spawn node %s: %w", url, err)
	}
	lf.Close()
	l.Close()
	return &nodeProc{url: url, cmd: cmd}, nil
}

// waitReady polls the node's /readyz until it answers 200.
func waitReady(ctx context.Context, url string) error {
	deadline := time.Now().Add(10 * time.Second)
	client := &http.Client{Timeout: time.Second}
	for {
		resp, err := client.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("node %s not ready after 10s (last error: %v)", url, err)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// loopback binds a fresh loopback listener and reports its URL.
func loopback() (*net.TCPListener, string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return l.(*net.TCPListener), "http://" + l.Addr().String(), nil
}

// runClusterBench is the parent side of -nodes: measure one capped node,
// tear it down, measure n capped nodes, and report the scaling.
func runClusterBench(ctx context.Context, n int, nodeRPS float64, opts service.ThroughputOptions, benchjson string, quiet bool, stdout, stderr io.Writer) error {
	if n < 2 {
		return fmt.Errorf("-nodes needs at least 2 nodes, got %d", n)
	}
	if nodeRPS <= 0 {
		return fmt.Errorf("-noderps must be positive, got %v", nodeRPS)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	if opts.Concurrency == 0 {
		// Enough in-flight posts to keep every node's token bucket drained;
		// the same width serves the single-node phase so the client side is
		// identical across both measurements.
		opts.Concurrency = 4 * n
	}
	tmp, err := os.MkdirTemp("", "krallload-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Phase A: one node under the cap.
	l1, url1, err := loopback()
	if err != nil {
		return err
	}
	p1, err := spawnNode(exe, "", nil, nodeRPS, filepath.Join(tmp, "single"), l1, quiet, stderr)
	if err != nil {
		return err
	}
	single, err := func() (*results.Phase, error) {
		defer p1.stop()
		if err := waitReady(ctx, url1); err != nil {
			return nil, err
		}
		return service.ClusterThroughput(ctx, []string{url1}, opts)
	}()
	if err != nil {
		return fmt.Errorf("single-node phase: %w", err)
	}
	if !quiet {
		printPhase(stdout, "1-node", single)
	}

	// Phase B: n nodes, all listeners bound before any child starts so
	// every node knows the full peer list.
	listeners := make([]*net.TCPListener, n)
	urls := make([]string, n)
	for i := range listeners {
		if listeners[i], urls[i], err = loopback(); err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return err
		}
	}
	var procs []*nodeProc
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	for i, l := range listeners {
		p, err := spawnNode(exe, urls[i], urls, nodeRPS, filepath.Join(tmp, fmt.Sprintf("node%d", i)), l, quiet, stderr)
		if err != nil {
			for _, rest := range listeners[i+1:] {
				rest.Close()
			}
			return err
		}
		procs = append(procs, p)
	}
	for _, u := range urls {
		if err := waitReady(ctx, u); err != nil {
			return err
		}
	}
	multi, err := service.ClusterThroughput(ctx, urls, opts)
	if err != nil {
		return fmt.Errorf("%d-node phase: %w", n, err)
	}
	if !quiet {
		printPhase(stdout, fmt.Sprintf("%d-node", n), multi)
	}

	clu := &results.Cluster{
		Nodes:         n,
		PerNodeMaxRPS: nodeRPS,
		SingleNode:    *single,
		MultiNode:     *multi,
	}
	if single.RequestsPerSecond > 0 {
		clu.Scaling = multi.RequestsPerSecond / single.RequestsPerSecond
	}
	fmt.Fprintf(stdout, "cluster: nodes=%d cap=%.0f req/s/node scaling %.2fx (%.1f -> %.1f req/s)\n",
		n, nodeRPS, clu.Scaling, single.RequestsPerSecond, multi.RequestsPerSecond)

	if benchjson == "" {
		return nil
	}
	doc, err := results.Read(benchjson)
	if os.IsNotExist(err) {
		doc, err = &results.Document{Schema: results.Schema}, nil
	}
	if err != nil {
		return err
	}
	if doc.Service == nil {
		doc.Service = &results.Service{}
	}
	doc.Service.Cluster = clu
	if err := results.Write(benchjson, doc); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cluster section written to %s\n", benchjson)
	return nil
}
