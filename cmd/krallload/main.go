// Command krallload drives a running kralld with the load-generator
// client: it fires every pipeline endpoint for the chosen workloads,
// repeats each request, and fails unless all repeats return byte-identical
// responses and every overload is a proper 429 + Retry-After.
//
// Usage:
//
//	krallload [-addr http://localhost:8723] [-workloads a,b] [-budget N]
//	          [-repeats N] [-concurrency N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/service"
)

func main() {
	fs := flag.NewFlagSet("krallload", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr        = fs.String("addr", "http://localhost:8723", "kralld base URL")
		workloads   = fs.String("workloads", "", "comma-separated workload names (default: all)")
		budget      = fs.Uint64("budget", 20_000, "branch budget per request")
		repeats     = fs.Int("repeats", 3, "times each request fires (responses must be byte-identical)")
		concurrency = fs.Int("concurrency", 8, "in-flight requests")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	opts := service.LoadOptions{
		Budget:      *budget,
		Repeats:     *repeats,
		Concurrency: *concurrency,
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, err := service.Load(ctx, *addr, opts)
	if report != nil {
		fmt.Println(report)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "krallload:", err)
		os.Exit(1)
	}
}
