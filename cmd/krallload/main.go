// Command krallload drives a kralld with the load-generator client. Its
// default mode fires every pipeline endpoint for the chosen workloads,
// repeats each request, and fails unless all repeats return
// byte-identical responses and every overload is a proper 429 +
// Retry-After. With -throughput it instead measures requests/sec and
// branches/sec twice over the same request mix — one sub-request per
// POST, then -batch sub-requests per POST /v1/batch — and can merge the
// result into a krallbench-results/v1 document for the CI
// bench-regression gate (krallbench -compare) to watch.
//
// Usage:
//
//	krallload [-addr http://localhost:8723 | -serve] [-workloads a,b]
//	          [-budget N] [-repeats N] [-concurrency N]
//	krallload -throughput [-batch N] [-requests N] [-benchjson file]
//	          [-addr URL | -serve] [-workloads a,b] [-budget N]
//	          [-concurrency N] [-quiet]
//	krallload -throughput -nodes N [-noderps R] [-requests N]
//	          [-benchjson file] [-workloads a,b] [-budget N] [-quiet]
//
// -serve boots kralld in-process on a loopback port instead of talking
// to an external daemon, so CI needs no separate server process.
//
// -nodes N ignores -addr/-serve: it spawns real kralld subprocesses
// (one rate-capped node, then an N-node consistent-hash cluster of
// them) and reports the aggregate requests/sec scaling — the "cluster"
// part of the service section. -servenode/-self/-peers/-maxrps/-disk
// are the internal child-process mode it re-execs; they are not meant
// for direct use.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/results"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "krallload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("krallload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://localhost:8723", "kralld base URL")
		serve       = fs.Bool("serve", false, "boot kralld in-process on a loopback port instead of using -addr")
		workloads   = fs.String("workloads", "", "comma-separated workload names (default: all)")
		budget      = fs.Uint64("budget", 20_000, "branch budget per request")
		repeats     = fs.Int("repeats", 3, "times each request fires (responses must be byte-identical)")
		concurrency = fs.Int("concurrency", 0, "in-flight requests (default 8, or 4 with -throughput)")
		throughput  = fs.Bool("throughput", false, "measure single vs batched requests/sec instead of the stability sweep")
		batch       = fs.Int("batch", 8, "with -throughput, sub-requests per POST /v1/batch in the batched phase")
		requests    = fs.Int("requests", 512, "with -throughput, sub-requests per phase")
		benchjson   = fs.String("benchjson", "", "with -throughput, merge the service section into this krallbench-results/v1 `file`")
		quiet       = fs.Bool("quiet", false, "print only the final summary line")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to `file` (client and -serve server share the process)")
		nodes       = fs.Int("nodes", 0, "with -throughput, measure 1-node vs N-node scaling with kralld subprocesses")
		nodeRPS     = fs.Float64("noderps", 400, "with -nodes, per-node admitted requests/sec cap")
		servenode   = fs.Bool("servenode", false, "internal: serve kralld on the listener inherited as fd 3")
		self        = fs.String("self", "", "internal: with -servenode, this node's base URL")
		peers       = fs.String("peers", "", "internal: with -servenode, comma-separated peer base URLs")
		maxRPS      = fs.Float64("maxrps", 0, "internal: with -servenode, per-node admitted requests/sec cap")
		diskDir     = fs.String("disk", "", "internal: with -servenode, disk artifact tier directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *servenode {
		return runServeNode(*self, *peers, *maxRPS, *diskDir, *quiet, stderr)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *nodes > 0 {
		if !*throughput {
			return fmt.Errorf("-nodes requires -throughput")
		}
		var names []string
		if *workloads != "" {
			names = strings.Split(*workloads, ",")
		}
		return runClusterBench(ctx, *nodes, *nodeRPS, service.ThroughputOptions{
			Workloads:   names,
			Budget:      *budget,
			Requests:    *requests,
			Concurrency: *concurrency,
		}, *benchjson, *quiet, stdout, stderr)
	}

	base := *addr
	if *serve {
		shutdown, served, err := bootLocal(*quiet, stderr, &base)
		if err != nil {
			return err
		}
		defer func() {
			shutdown()
			if serr := <-served; serr != nil && serr != http.ErrServerClosed {
				fmt.Fprintln(stderr, "krallload: local kralld exit:", serr)
			}
		}()
	}

	var names []string
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}

	if *throughput {
		return runThroughput(ctx, base, service.ThroughputOptions{
			Workloads:   names,
			Budget:      *budget,
			BatchSize:   *batch,
			Requests:    *requests,
			Concurrency: *concurrency,
		}, *benchjson, *quiet, stdout)
	}

	if *concurrency == 0 {
		*concurrency = 8
	}
	report, err := service.Load(ctx, base, service.LoadOptions{
		Workloads:   names,
		Budget:      *budget,
		Repeats:     *repeats,
		Concurrency: *concurrency,
	})
	if report != nil {
		fmt.Fprintln(stdout, report)
	}
	return err
}

// bootLocal starts an in-process kralld on a loopback port, pointing
// *base at it. The returned shutdown cancels its serve context; served
// yields the Serve error once drained.
func bootLocal(quiet bool, stderr io.Writer, base *string) (func(), chan error, error) {
	level := slog.LevelInfo
	if quiet {
		level = slog.LevelWarn
	}
	srv, err := service.New(service.Config{
		Logger: slog.New(slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: level})),
	})
	if err != nil {
		return nil, nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	*base = "http://" + l.Addr().String()
	sctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(sctx, l, 2*time.Second) }()
	return cancel, served, nil
}

// runThroughput runs the throughput harness, prints the two phases, and
// optionally merges the service section into a results document.
func runThroughput(ctx context.Context, base string, opts service.ThroughputOptions, benchjson string, quiet bool, stdout io.Writer) error {
	svc, err := service.Throughput(ctx, base, opts)
	if err != nil {
		return err
	}
	if !quiet {
		printPhase(stdout, "single", &svc.Single)
		printPhase(stdout, "batch", &svc.Batch)
	}
	fmt.Fprintf(stdout, "throughput: batch=%d speedup %.2fx (%.1f -> %.1f req/s)\n",
		svc.Batch.BatchSize, svc.Speedup, svc.Single.RequestsPerSecond, svc.Batch.RequestsPerSecond)

	if benchjson == "" {
		return nil
	}
	doc, err := results.Read(benchjson)
	if os.IsNotExist(err) {
		// No sweep document yet: start a service-only one.
		doc, err = &results.Document{Schema: results.Schema}, nil
	}
	if err != nil {
		return err
	}
	doc.Service = svc
	if err := results.Write(benchjson, doc); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "service section written to %s\n", benchjson)
	return nil
}

func printPhase(w io.Writer, name string, ph *results.Phase) {
	fmt.Fprintf(w, "%-6s batch=%-3d %6d requests in %4d posts, %6.2fs: %8.1f req/s, %12.0f branches/s\n",
		name, ph.BatchSize, ph.Requests, ph.HTTPPosts, ph.Seconds, ph.RequestsPerSecond, ph.BranchesPerSecond)
	for _, l := range ph.Latency {
		fmt.Fprintf(w, "       %-10s p50 %8.2fms  p99 %8.2fms\n", l.Endpoint, l.P50Millis, l.P99Millis)
	}
}
