package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

const prog = `
var n int = 5;

func main() int {
    var s int = 0;
    for var i int = 0; i < n; i = i + 1 {
        s = s + i;
    }
    print(s);
    return s;
}`

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.bl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runBlc(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunProgram(t *testing.T) {
	path := writeProg(t, prog)
	code, out, _ := runBlc(t, path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "result: 10") {
		t.Fatalf("output: %s", out)
	}
}

func TestSetOverride(t *testing.T) {
	path := writeProg(t, prog)
	code, out, _ := runBlc(t, "-set", "n=10", path)
	if code != 0 || !strings.Contains(out, "result: 45") {
		t.Fatalf("exit %d output %s", code, out)
	}
}

func TestDump(t *testing.T) {
	path := writeProg(t, prog)
	code, out, _ := runBlc(t, "-dump", path)
	if code != 0 || !strings.Contains(out, "func main") || !strings.Contains(out, "br r") {
		t.Fatalf("dump: %s", out)
	}
}

func TestStatsAndBudget(t *testing.T) {
	path := writeProg(t, prog)
	code, out, _ := runBlc(t, "-stats", "-set", "n=1000000", "-budget", "100", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "budget reached") || !strings.Contains(out, "branches: 100") {
		t.Fatalf("output: %s", out)
	}
}

func TestTraceFile(t *testing.T) {
	path := writeProg(t, prog)
	tracePath := filepath.Join(t.TempDir(), "t.bltrace")
	code, _, errs := runBlc(t, "-trace", tracePath, path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 { // 5 taken + 1 exit
		t.Fatalf("trace has %d events", len(events))
	}
}

func TestErrors(t *testing.T) {
	path := writeProg(t, prog)
	if code, _, _ := runBlc(t); code != 2 {
		t.Fatal("missing file arg must exit 2")
	}
	if code, _, errs := runBlc(t, "/nonexistent.bl"); code != 1 || errs == "" {
		t.Fatal("missing file must exit 1")
	}
	bad := writeProg(t, "func main() int { return x; }")
	if code, _, errs := runBlc(t, bad); code != 2 || !strings.Contains(errs, "undefined") {
		t.Fatalf("compile error must exit 2 with a diagnostic: %s", errs)
	}
	if code, _, _ := runBlc(t, "-set", "garbage", path); code != 1 {
		t.Fatal("bad -set must exit 1")
	}
	if code, _, _ := runBlc(t, "-set", "n=abc", path); code != 1 {
		t.Fatal("bad -set value must exit 1")
	}
	if code, _, _ := runBlc(t, "-set", "zz=1", path); code != 1 {
		t.Fatal("unknown global must exit 1")
	}
	trap := writeProg(t, "func main() int { return 1 / 0; }")
	if code, _, errs := runBlc(t, trap); code != 1 || !strings.Contains(errs, "division") {
		t.Fatalf("trap must surface: %s", errs)
	}
}

func TestCheckFlag(t *testing.T) {
	path := writeProg(t, prog)
	code, out, errs := runBlc(t, "-check", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if !strings.Contains(out, "ok") {
		t.Fatalf("check output: %s", out)
	}
	// -check must not execute the program.
	if strings.Contains(out, "result:") {
		t.Fatalf("-check ran the program: %s", out)
	}
}
