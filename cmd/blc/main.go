// Command blc is the BL language driver: it compiles a BL source file and
// can dump the IR, run the program, or write a branch trace — the
// counterpart of the paper's profiling tool front end.
//
// Usage:
//
//	blc [flags] file.bl
//
//	-dump          print the lowered IR and exit
//	-check         run the static analysis suite and exit
//	-run           execute main and print the result (default)
//	-trace FILE    write the branch trace to FILE while running
//	-budget N      stop after N branch events (0 = run to completion)
//	-set NAME=VAL  override an int global (repeatable)
//	-stats         print execution statistics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/trace"
)

type setFlags []string

func (s *setFlags) String() string { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code: 0 on
// success, 1 on runtime or analysis failure, 2 on malformed input or an
// internal fault.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "blc: internal error: %v\n", r)
			code = 2
		}
	}()
	fs := flag.NewFlagSet("blc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dump      = fs.Bool("dump", false, "print the lowered IR and exit")
		check     = fs.Bool("check", false, "run the static analysis suite and exit")
		doRun     = fs.Bool("run", true, "execute main")
		traceFile = fs.String("trace", "", "write the branch trace to this file")
		budget    = fs.Uint64("budget", 0, "stop after this many branch events")
		stats     = fs.Bool("stats", false, "print execution statistics")
		sets      setFlags
	)
	fs.Var(&sets, "set", "override an int global, NAME=VALUE (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: blc [flags] file.bl")
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "blc:", err)
		return 1
	}
	prog, err := lang.Compile(string(src))
	if err != nil {
		fmt.Fprintln(stderr, "blc:", err)
		return 2
	}
	if *dump {
		fmt.Fprint(stdout, prog.String())
		return 0
	}
	if *check {
		diags := analysis.Lint(prog, nil, nil)
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s\n", fs.Arg(0), d)
		}
		if analysis.HasErrors(diags) {
			return 1
		}
		fmt.Fprintf(stdout, "%s: ok (%d warnings)\n", fs.Arg(0), len(diags))
		return 0
	}
	if !*doRun {
		return 0
	}
	m := interp.New(prog)
	m.MaxBranches = *budget
	for _, s := range sets {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			fmt.Fprintf(stderr, "blc: bad -set %q, want NAME=VALUE\n", s)
			return 1
		}
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			fmt.Fprintf(stderr, "blc: bad -set value %q: %v\n", val, err)
			return 1
		}
		if err := m.SetGlobal(name, v); err != nil {
			fmt.Fprintln(stderr, "blc:", err)
			return 1
		}
	}
	var tw *trace.Writer
	var tf *os.File
	if *traceFile != "" {
		tf, err = os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, "blc:", err)
			return 1
		}
		defer tf.Close()
		tw, err = trace.NewWriter(tf)
		if err != nil {
			fmt.Fprintln(stderr, "blc:", err)
			return 1
		}
		m.Hook = tw.Branch
	}
	ret, err := m.Run()
	if err != nil && err != interp.ErrLimit {
		fmt.Fprintln(stderr, "blc:", err)
		return 1
	}
	if tw != nil {
		if cerr := tw.Close(); cerr != nil {
			fmt.Fprintln(stderr, "blc:", cerr)
			return 1
		}
	}
	fmt.Fprintf(stdout, "result: %d\n", ret)
	if err == interp.ErrLimit {
		fmt.Fprintln(stdout, "stopped: execution budget reached")
	}
	if *stats {
		fmt.Fprintf(stdout, "steps: %d\nbranches: %d\nchecksum: %d\nprints: %d\n",
			m.Steps, m.Branches, m.Checksum, m.Prints)
	}
	return 0
}
