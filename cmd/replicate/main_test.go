package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestReplicateSourceFile(t *testing.T) {
	src := `
func main() int {
    var s int = 0;
    for var i int = 0; i < 5000; i = i + 1 {
        if i % 2 == 0 { s = s + 1; } else { s = s + 2; }
    }
    print(s);
    return s;
}`
	path := filepath.Join(t.TempDir(), "alt.bl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errs := runCmd(t, "-states", "2", "-budget", "0", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	for _, want := range []string{"profiling", "profile baseline", "replicated:", "semantics verified"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplicateWorkloadVerboseAndJoint(t *testing.T) {
	code, out, errs := runCmd(t, "-workload", "compress", "-budget", "40000", "-v")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if !strings.Contains(out, "branch") || !strings.Contains(out, "semantics verified") {
		t.Fatalf("verbose output incomplete:\n%s", out)
	}
	code, out, errs = runCmd(t, "-workload", "compress", "-budget", "40000", "-joint")
	if code != 0 {
		t.Fatalf("joint exit %d: %s", code, errs)
	}
	if !strings.Contains(out, "semantics verified") {
		t.Fatalf("joint output incomplete:\n%s", out)
	}
}

func TestReplicateErrors(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Fatal("no input must exit 2")
	}
	if code, _, _ := runCmd(t, "-workload", "nope"); code != 1 {
		t.Fatal("unknown workload must exit 1")
	}
	if code, _, _ := runCmd(t, "/does/not/exist.bl"); code != 1 {
		t.Fatal("missing file must exit 1")
	}
	if code, _, errs := runCmd(t, "-states", "1", "-workload", "compress"); code != 2 || !strings.Contains(errs, "-states") {
		t.Fatalf("bad -states must exit 2 with a diagnostic, got %d: %s", code, errs)
	}
}

func TestReplicateCheckFlag(t *testing.T) {
	code, out, errs := runCmd(t, "-workload", "compress", "-budget", "40000", "-check")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if !strings.Contains(out, "transform verified") {
		t.Fatalf("missing verification line:\n%s", out)
	}
	code, out, errs = runCmd(t, "-workload", "compress", "-budget", "40000", "-check", "-joint")
	if code != 0 || !strings.Contains(out, "transform verified") {
		t.Fatalf("joint check exit %d:\n%s%s", code, out, errs)
	}
}
