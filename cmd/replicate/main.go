// Command replicate runs the paper's full pipeline on one BL program or
// built-in workload: profile, select branch prediction state machines,
// replicate code, and report the measured before/after misprediction rates
// and the code growth.
//
// Usage:
//
//	replicate [flags] (file.bl | -workload NAME)
//
//	-workload NAME  use a built-in workload instead of a source file
//	-states N       maximum machine size (default 5)
//	-budget N       branch budget for the profiling and measuring runs
//	-seed N         dataset seed override
//	-joint          use joint (§6) machines for same-loop branches
//	-check          run the replication-equivalence verifier on the transform
//	-dump           print the transformed IR
//	-v              per-branch strategy report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/replicate"
	"repro/internal/statemachine"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code: 0 on
// success, 1 on pipeline failure, 2 on malformed input or an internal fault.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "replicate: internal error: %v\n", r)
			code = 2
		}
	}()
	fs := flag.NewFlagSet("replicate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "", "built-in workload name")
		states   = fs.Int("states", 5, "maximum machine size")
		budget   = fs.Uint64("budget", 2_000_000, "branch budget per run")
		seed     = fs.Int64("seed", 0, "dataset seed override")
		joint    = fs.Bool("joint", false, "use joint machines for same-loop branches")
		check    = fs.Bool("check", false, "run the replication-equivalence verifier on the transform")
		dump     = fs.Bool("dump", false, "print the transformed IR")
		verbose  = fs.Bool("v", false, "per-branch strategy report")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *states < 2 {
		fmt.Fprintf(stderr, "replicate: -states %d out of range, machines need at least 2 states\n", *states)
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "replicate:", err)
		return 1
	}

	var prog *ir.Program
	var name string
	switch {
	case *workload != "":
		w, err := bench.ByName(*workload)
		if err != nil {
			return fail(err)
		}
		c, err := bench.Compile(w)
		if err != nil {
			return fail(err)
		}
		prog, name = c.Prog, w.Name
	case fs.NArg() == 1:
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return fail(err)
		}
		prog, err = lang.Compile(string(src))
		if err != nil {
			return fail(err)
		}
		name = fs.Arg(0)
	default:
		fmt.Fprintln(stderr, "usage: replicate [flags] (file.bl | -workload NAME)")
		fs.Usage()
		return 2
	}

	nSites := prog.NumberBranches(true)
	prof := profile.New(nSites, profile.Options{})
	execute := func(p *ir.Program, hook interp.BranchFunc) (*interp.Machine, error) {
		m := interp.New(p)
		m.MaxBranches = *budget
		m.Hook = hook
		if *seed != 0 {
			if err := m.SetGlobal("wseed", *seed); err != nil {
				return nil, err
			}
		}
		if *budget != 0 {
			// Built-in workloads scale via wscale; ad-hoc programs need not
			// declare it.
			_ = func() error { return m.SetGlobal("wscale", 1<<30) }()
		}
		if _, err := m.Run(); err != nil && err != interp.ErrLimit {
			return nil, err
		}
		return m, nil
	}
	fmt.Fprintf(stdout, "profiling %s (%d branch sites)...\n", name, nSites)
	if _, err := execute(prog, prof.Branch); err != nil {
		return fail(err)
	}

	feats := predict.Analyze(prog)
	choices := statemachine.Select(prof, feats, statemachine.Options{
		MaxStates:  *states,
		MaxPathLen: 1,
	})
	if *verbose {
		for i := range choices {
			c := &choices[i]
			if c.Total == 0 {
				continue
			}
			profTotal := c.ProfileTotal
			if profTotal == 0 {
				profTotal = 1
			}
			fmt.Fprintf(stdout, "  branch %3d: %-10v states=%d predicted %.2f%% (profile %.2f%%)\n",
				c.Site, c.Kind, c.NumStates(), c.Rate(),
				100*float64(c.ProfileTotal-c.ProfileHits)/float64(profTotal))
		}
	}

	preds := predict.ProfileStatic(prof.Counts).Preds
	baseline := ir.CloneProgram(prog)
	replicate.Annotate(baseline, preds)
	mb, err := execute(baseline, nil)
	if err != nil {
		return fail(err)
	}

	clone := ir.CloneProgram(prog)
	ropts := replicate.Options{MaxSizeFactor: 3, Verify: *check}
	var st *replicate.Stats
	if *joint {
		st, err = replicate.ApplyJoint(clone, choices, preds, ropts)
	} else {
		st, err = replicate.ApplyOpts(clone, choices, preds, ropts)
	}
	if err != nil {
		return fail(err)
	}
	if st.Verified {
		fmt.Fprintln(stdout, "transform verified: replication equivalence holds")
	}
	mr, err := execute(clone, nil)
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "\nprofile baseline: %.3f%% mispredicted (%d/%d)\n",
		pct(mb.Mispredicted, mb.Predicted), mb.Mispredicted, mb.Predicted)
	fmt.Fprintf(stdout, "replicated:       %.3f%% mispredicted (%d/%d)\n",
		pct(mr.Mispredicted, mr.Predicted), mr.Mispredicted, mr.Predicted)
	fmt.Fprintf(stdout, "code size:        %d -> %d instructions (factor %.2f)\n",
		st.InstrsBefore, st.InstrsAfter, st.SizeFactor())
	fmt.Fprintf(stdout, "machines applied: %d loop, %d exit, %d correlated (%d edges routed, %d catch-all)\n",
		st.LoopApplied, st.ExitApplied, st.PathApplied, st.PathEdgesRouted, st.PathEdgesCatchAll)
	if mb.Checksum != mr.Checksum {
		return fail(fmt.Errorf("checksum changed: %d -> %d", mb.Checksum, mr.Checksum))
	}
	fmt.Fprintln(stdout, "semantics verified: checksums identical")
	if *dump {
		fmt.Fprint(stdout, clone.String())
	}
	return 0
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
