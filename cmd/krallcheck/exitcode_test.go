package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// The exit-code contract: 0 when no pass reported an error (warnings are
// allowed), 1 when any error diagnostic was reported, 2 on malformed input
// or internal failure — uniformly across the verify, -lint-only, and
// -predict paths. These tests pin each cell of that matrix.

// deadSrc carries branches SCCP decides: under -predict the dead-branch and
// always-taken findings are Warnings, so the exit stays 0.
const deadSrc = `
func main() int {
    var x int = 10;
    var s int = 0;
    if x > 100 { s = s + 7; } else { s = s + 1; }
    for var i int = 0; i < 1000; i = i + 1 {
        if i % 3 == 0 { s = s + 1; }
    }
    if x < 100 { s = s + 2; }
    print(s);
    return s;
}`

// modes are the three analysis paths the contract covers.
var modes = []struct {
	name string
	args []string
}{
	{"verify", nil},
	{"lint-only", []string{"-lint-only"}},
	{"predict", []string{"-predict"}},
}

func TestExitZeroOnCleanInput(t *testing.T) {
	path := write(t, "good.bl", goodSrc)
	for _, m := range modes {
		var out, errOut strings.Builder
		if code := run(append(append([]string{}, m.args...), path), &out, &errOut); code != 0 {
			t.Errorf("%s: exit %d, want 0\nstderr: %s\nstdout: %s", m.name, code, errOut.String(), out.String())
		}
	}
}

func TestExitZeroOnWarningDiagnostics(t *testing.T) {
	path := write(t, "dead.bl", deadSrc)
	// The SCCP findings surface only under -predict; the other two modes
	// must still pass the same source cleanly.
	for _, m := range modes {
		var out, errOut strings.Builder
		code := run(append(append([]string{}, m.args...), path), &out, &errOut)
		if code != 0 {
			t.Errorf("%s: exit %d, want 0 (warnings must not fail)\nstdout: %s",
				m.name, code, out.String())
		}
		if m.name == "predict" {
			for _, want := range []string{"dead-branch", "always-taken"} {
				if !strings.Contains(out.String(), want) {
					t.Errorf("predict: missing %q diagnostic:\n%s", want, out.String())
				}
			}
		}
	}
}

// TestExitOneOnErrorDiagnostics pins the error branch of the shared
// reporting path: an Error diagnostic must print even under -q and drive
// the per-target exit code to 1. No well-formed source reaches this branch
// today — ir.Validate rejects (exit 2) every shape CFGLint escalates to an
// error — so the contract is pinned at the reportDiags seam both commands
// funnel through.
func TestExitOneOnErrorDiagnostics(t *testing.T) {
	diags := []analysis.Diagnostic{
		{Sev: analysis.Warning, Pass: "cfglint", Msg: "advisory"},
		{Sev: analysis.Error, Pass: "equivalence", Msg: "terminator differs from origin"},
	}
	var quiet, loud strings.Builder
	errs, warns := reportDiags("t.bl", diags, true, &quiet)
	if errs != 1 || warns != 1 {
		t.Fatalf("errs=%d warns=%d, want 1/1", errs, warns)
	}
	if !strings.Contains(quiet.String(), "terminator differs") || strings.Contains(quiet.String(), "advisory") {
		t.Fatalf("-q must print errors and only errors:\n%s", quiet.String())
	}
	if errs, _ = reportDiags("t.bl", diags, false, &loud); errs != 1 {
		t.Fatalf("errs=%d, want 1", errs)
	}
	if !strings.Contains(loud.String(), "advisory") {
		t.Fatalf("warnings must print without -q:\n%s", loud.String())
	}
	// The exit mapping itself: checkOne and predictOne both return 1 iff
	// errs > 0, which the clean/warning tests above cover for the 0 side.
}

func TestExitTwoOnMalformedInput(t *testing.T) {
	bad := write(t, "bad.bl", "func main( {")
	missing := filepath.Join(t.TempDir(), "absent.bl")
	for _, m := range modes {
		for _, target := range []string{bad, missing} {
			var out, errOut strings.Builder
			if code := run(append(append([]string{}, m.args...), target), &out, &errOut); code != 2 {
				t.Errorf("%s/%s: exit %d, want 2", m.name, filepath.Base(target), code)
			}
			if !strings.Contains(errOut.String(), "krallcheck:") {
				t.Errorf("%s/%s: no diagnostic on stderr: %q", m.name, filepath.Base(target), errOut.String())
			}
		}
		var out, errOut strings.Builder
		if code := run(append(append([]string{}, m.args...), "-workload", "no-such-workload"), &out, &errOut); code != 2 {
			t.Errorf("%s: unknown workload exit %d, want 2", m.name, code)
		}
	}
}

func TestPredictCatalogExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-predict", "-budget", "5000"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ALL") || !strings.Contains(out.String(), "static-heur") {
		t.Fatalf("catalog table malformed:\n%s", out.String())
	}
}

func TestPredictQuietPrintsErrorsOnly(t *testing.T) {
	path := write(t, "dead.bl", deadSrc)
	var out, errOut strings.Builder
	if code := run([]string{"-predict", "-q", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("-q -predict must print nothing on a warning-only program, got:\n%s", out.String())
	}
}
