package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodSrc = `
func main() int {
    var s int = 0;
    for var i int = 0; i < 4000; i = i + 1 {
        if i % 2 == 0 { s = s + 1; } else { s = s + 2; }
    }
    print(s);
    return s;
}`

func TestCheckCleanProgram(t *testing.T) {
	path := write(t, "good.bl", goodSrc)
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "replication verified") {
		t.Fatalf("missing verification line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 errors") {
		t.Fatalf("unexpected errors:\n%s", out.String())
	}
}

func TestCheckJointAndLintOnly(t *testing.T) {
	path := write(t, "good.bl", goodSrc)
	var out, errOut strings.Builder
	if code := run([]string{"-joint", path}, &out, &errOut); code != 0 {
		t.Fatalf("joint exit %d: %s", code, errOut.String())
	}
	out.Reset()
	if code := run([]string{"-lint-only", path}, &out, &errOut); code != 0 {
		t.Fatalf("lint-only exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "replication not checked") {
		t.Fatalf("lint-only must skip verification:\n%s", out.String())
	}
}

func TestCheckExamples(t *testing.T) {
	paths, err := filepath.Glob("../../examples/bl/*.bl")
	if err != nil || len(paths) == 0 {
		t.Skipf("no examples found: %v", err)
	}
	var out, errOut strings.Builder
	if code := run(paths, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on examples, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if got := strings.Count(out.String(), "replication verified"); got != len(paths) {
		t.Fatalf("%d of %d examples verified:\n%s", got, len(paths), out.String())
	}
}

// TestCheckDispatchClustering pins the indirect family's pass on the
// dispatch example: the skewed switch must be clustered and re-derived.
func TestCheckDispatchClustering(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "bl", "dispatch.bl")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("dispatch example missing: %v", err)
	}
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "clustering verified (1 of 1 dispatch sites)") {
		t.Fatalf("missing clustering verdict:\n%s", out.String())
	}
}

func TestMalformedSourceExitsTwo(t *testing.T) {
	path := write(t, "bad.bl", "func main( {")
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "krallcheck:") {
		t.Fatalf("no diagnostic on stderr: %q", errOut.String())
	}
}

func TestMissingFileExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{filepath.Join(t.TempDir(), "absent.bl")}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestNoArgsExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Fatalf("no usage on stderr: %q", errOut.String())
	}
}

func TestBadStatesExitsTwo(t *testing.T) {
	path := write(t, "good.bl", goodSrc)
	var out, errOut strings.Builder
	if code := run([]string{"-states", "1", path}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestQuietSuppressesSummary(t *testing.T) {
	path := write(t, "good.bl", goodSrc)
	var out, errOut strings.Builder
	if code := run([]string{"-q", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("-q must print nothing on a clean program, got:\n%s", out.String())
	}
}
