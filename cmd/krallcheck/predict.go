package main

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/trace"
)

// This file implements krallcheck -predict: the static (profile-free)
// branch-prediction report. Per target it prints the per-site table
// (probability, confidence, firing heuristics, loop depth, SCCP fact) and a
// static-vs-profiled accuracy comparison; with no targets it prints the
// catalog-wide accuracy table that CI uploads as a build artifact.

// staticStrategies builds the compared prediction vectors in render order.
// The profiled oracle is last, as the lower bound static prediction chases.
func staticStrategies(nSites int, feats []predict.SiteFeatures, rep *analysis.StaticReport, counts *trace.Counts) []*predict.Static {
	return []*predict.Static{
		predict.AlwaysTaken(nSites),
		predict.BackwardTaken(feats),
		predict.BallLarus(feats),
		predict.StaticHeuristic(rep.Predictions()),
		predict.ProfileStatic(counts),
	}
}

func missRate(misses, total uint64) string {
	if total == 0 {
		return "     -"
	}
	return fmt.Sprintf("%6.2f", 100*float64(misses)/float64(total))
}

// profileCounts runs the program once under the interpreter with the
// profiling hook attached, honouring the budget and seed options.
func profileCounts(prog *ir.Program, nSites int, opts options) (*profile.Profile, error) {
	prof := profile.New(nSites, profile.Options{})
	m := interp.New(prog)
	m.MaxBranches = opts.budget
	m.Hook = prof.Branch
	if opts.seed != 0 {
		// Only workloads declare wseed; ad-hoc programs simply lack it.
		_ = m.SetGlobal("wseed", opts.seed)
	}
	if _, err := m.Run(); err != nil && err != interp.ErrLimit {
		return nil, err
	}
	return prof, nil
}

// predictOne prints one target's static prediction report and returns its
// exit code. Lint and the StaticPredict diagnostics run (errors exit 1);
// the replication verifier does not.
func predictOne(name string, prog *ir.Program, opts options, stdout, stderr io.Writer) int {
	nSites := prog.NumberBranches(true)
	if err := prog.Validate(); err != nil {
		fmt.Fprintf(stderr, "krallcheck: %s: invalid IR: %v\n", name, err)
		return 2
	}
	rep, err := analysis.BuildStaticReport(prog)
	if err != nil {
		fmt.Fprintf(stderr, "krallcheck: %s: static analysis: %v\n", name, err)
		return 2
	}
	prof, err := profileCounts(prog, nSites, opts)
	if err != nil {
		fmt.Fprintf(stderr, "krallcheck: %s: profiling run: %v\n", name, err)
		return 2
	}

	if !opts.quiet {
		var sb strings.Builder
		analysis.FormatSiteTable(&sb, name, rep)
		fmt.Fprint(stdout, sb.String())
		fmt.Fprintf(stdout, "%s: accuracy vs the profiling run (miss %%):\n", name)
		for _, s := range staticStrategies(nSites, predict.Analyze(prog), rep, prof.Counts) {
			r := s.Score(prof.Counts)
			fmt.Fprintf(stdout, "  %-18s %s\n", s.Strategy, missRate(r.Misses, r.Total))
		}
	}

	diags := analysis.Lint(prog, nil, prof)
	mgr := &analysis.Manager{Passes: []analysis.Pass{analysis.StaticPredict{}}}
	diags = append(diags, mgr.Run(analysis.NewContext(prog))...)
	errs, warns := reportDiags(name, diags, opts.quiet, stdout)
	if !opts.quiet {
		fmt.Fprintf(stdout, "%s: %d branch sites, %d statically decided, %d errors, %d warnings\n",
			name, nSites, rep.Decided(), errs, warns)
	}
	if errs > 0 {
		return 1
	}
	return 0
}

// predictCatalog prints the catalog-wide static prediction accuracy table:
// one row per built-in workload plus an aggregate, comparing each
// profile-free strategy against the profiled oracle.
func predictCatalog(opts options, stdout, stderr io.Writer) int {
	names := []string{"always-taken", "btfn", "ball-larus", "static-heur", "profile"}
	fmt.Fprintf(stdout, "static prediction accuracy across the catalog (budget %d branches per workload, miss %%):\n", opts.budget)
	fmt.Fprintf(stdout, "  %-12s %6s %8s", "workload", "sites", "decided")
	for _, n := range names {
		fmt.Fprintf(stdout, " %12s", n)
	}
	fmt.Fprintln(stdout)
	var misses, totals [5]uint64
	sites, decided := 0, 0
	for _, w := range bench.Workloads() {
		c, err := bench.Compile(w)
		if err != nil {
			fmt.Fprintf(stderr, "krallcheck: %s: %v\n", w.Name, err)
			return 2
		}
		rep, err := analysis.BuildStaticReport(c.Prog)
		if err != nil {
			fmt.Fprintf(stderr, "krallcheck: %s: static analysis: %v\n", w.Name, err)
			return 2
		}
		prof, err := profileCounts(c.Prog, c.NSites, opts)
		if err != nil {
			fmt.Fprintf(stderr, "krallcheck: %s: profiling run: %v\n", w.Name, err)
			return 2
		}
		fmt.Fprintf(stdout, "  %-12s %6d %8d", w.Name, c.NSites, rep.Decided())
		for i, s := range staticStrategies(c.NSites, c.Features, rep, prof.Counts) {
			r := s.Score(prof.Counts)
			fmt.Fprintf(stdout, " %12s", missRate(r.Misses, r.Total))
			misses[i] += r.Misses
			totals[i] += r.Total
		}
		fmt.Fprintln(stdout)
		sites += c.NSites
		decided += rep.Decided()
	}
	fmt.Fprintf(stdout, "  %-12s %6d %8d", "ALL", sites, decided)
	for i := range names {
		fmt.Fprintf(stdout, " %12s", missRate(misses[i], totals[i]))
	}
	fmt.Fprintln(stdout)
	return 0
}
