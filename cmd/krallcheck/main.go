// Command krallcheck runs the static analysis suite over BL programs or
// built-in workloads: CFG lint, state-machine well-formedness, profile
// consistency, and — unless -lint-only is set — the replication-equivalence
// verifier, which replays the full profile→machines→replicate pipeline with
// translation validation enabled and rejects any transform whose output is
// not a provable control-flow unfolding of its input.
//
// Usage:
//
//	krallcheck [flags] (file.bl ... | -workload NAME)
//
//	-workload NAME   check a built-in workload instead of source files
//	-states N        maximum machine size (default 5)
//	-budget N        branch budget for the profiling run (default 200000)
//	-seed N          dataset seed override
//	-joint           verify the joint (§6) replication driver
//	-max-size-factor F  replication size budget (default 3)
//	-lint-only       skip the replication equivalence check
//	-predict         print the static (profile-free) prediction report: the
//	                 per-site probability/confidence/heuristics table plus a
//	                 static-vs-profiled accuracy comparison; lint diagnostics
//	                 (including the SCCP dead-branch/always-taken warnings)
//	                 still run, the replication verifier does not. With no
//	                 targets, prints the catalog-wide accuracy table instead.
//	-q               print errors only
//
// Exit status: 0 when no pass reported an error (warnings are allowed), 1
// when any error diagnostic was reported, 2 on malformed input or internal
// failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/indirect"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/replicate"
	"repro/internal/statemachine"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	states   int
	budget   uint64
	seed     int64
	joint    bool
	sizeFac  float64
	lintOnly bool
	predict  bool
	quiet    bool
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "krallcheck: internal error: %v\n", r)
			code = 2
		}
	}()
	fs := flag.NewFlagSet("krallcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "", "built-in workload name")
		opts     options
	)
	fs.IntVar(&opts.states, "states", 5, "maximum machine size")
	fs.Uint64Var(&opts.budget, "budget", 200_000, "branch budget for the profiling run")
	fs.Int64Var(&opts.seed, "seed", 0, "dataset seed override")
	fs.BoolVar(&opts.joint, "joint", false, "verify the joint replication driver")
	fs.Float64Var(&opts.sizeFac, "max-size-factor", 3, "replication size budget")
	fs.BoolVar(&opts.lintOnly, "lint-only", false, "skip the replication equivalence check")
	fs.BoolVar(&opts.predict, "predict", false, "print the static prediction report instead of verifying replication")
	fs.BoolVar(&opts.quiet, "q", false, "print errors only")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if opts.states < 2 {
		fmt.Fprintf(stderr, "krallcheck: -states %d out of range, need at least 2\n", opts.states)
		return 2
	}

	type target struct {
		name string
		prog func() (*ir.Program, error)
	}
	var targets []target
	switch {
	case *workload != "":
		w, err := bench.ByName(*workload)
		if err != nil {
			fmt.Fprintln(stderr, "krallcheck:", err)
			return 2
		}
		targets = append(targets, target{name: w.Name, prog: func() (*ir.Program, error) {
			c, err := bench.Compile(w)
			if err != nil {
				return nil, err
			}
			return c.Prog, nil
		}})
	case fs.NArg() > 0:
		for _, path := range fs.Args() {
			path := path
			targets = append(targets, target{name: path, prog: func() (*ir.Program, error) {
				src, err := os.ReadFile(path)
				if err != nil {
					return nil, err
				}
				return lang.Compile(string(src))
			}})
		}
	default:
		if opts.predict {
			// No targets: the catalog-wide accuracy table.
			return predictCatalog(opts, stdout, stderr)
		}
		fmt.Fprintln(stderr, "usage: krallcheck [flags] (file.bl ... | -workload NAME)")
		fs.Usage()
		return 2
	}

	for _, tg := range targets {
		prog, err := tg.prog()
		if err != nil {
			fmt.Fprintf(stderr, "krallcheck: %s: %v\n", tg.name, err)
			return 2
		}
		check := checkOne
		if opts.predict {
			check = predictOne
		}
		if c := check(tg.name, prog, opts, stdout, stderr); c > code {
			code = c
		}
	}
	return code
}

// reportDiags prints diagnostics (errors always, warnings only without -q)
// and returns the counts. The exit-code contract hangs off the error count:
// any error diagnostic makes the target exit 1, warnings alone keep exit 0,
// and malformed input or internal failure is reported before this point as
// exit 2.
func reportDiags(name string, diags []analysis.Diagnostic, quiet bool, stdout io.Writer) (errs, warns int) {
	for _, d := range diags {
		if d.Sev == analysis.Error {
			errs++
			fmt.Fprintf(stdout, "%s: %s\n", name, d)
		} else {
			warns++
			if !quiet {
				fmt.Fprintf(stdout, "%s: %s\n", name, d)
			}
		}
	}
	return errs, warns
}

// checkOne analyses one compiled program and returns its exit code.
func checkOne(name string, prog *ir.Program, opts options, stdout, stderr io.Writer) int {
	nSites := prog.NumberBranches(true)
	if err := prog.Validate(); err != nil {
		fmt.Fprintf(stderr, "krallcheck: %s: invalid IR: %v\n", name, err)
		return 2
	}

	// Profile the program so machine selection and the profile-consistency
	// pass have real data to check; switch dispatches feed the target
	// distribution the clustering pass consumes.
	prof := profile.New(nSites, profile.Options{})
	targets := trace.NewTargetCounts(nSites)
	m := interp.New(prog)
	m.MaxBranches = opts.budget
	m.Hook = prof.Branch
	m.SwHook = func(t *ir.Term, outcome int32) {
		targets.RecordSwitch(t.Orig, outcome)
	}
	if opts.seed != 0 {
		// Only workloads declare wseed; ad-hoc programs simply lack it.
		_ = m.SetGlobal("wseed", opts.seed)
	}
	if _, err := m.Run(); err != nil && err != interp.ErrLimit {
		fmt.Fprintf(stderr, "krallcheck: %s: profiling run: %v\n", name, err)
		return 2
	}
	feats := predict.Analyze(prog)
	choices := statemachine.Select(prof, feats, statemachine.Options{
		MaxStates:  opts.states,
		MaxPathLen: 1,
	})
	preds := predict.ProfileStatic(prof.Counts).Preds

	diags := analysis.Lint(prog, choices, prof)
	verified := false
	if !opts.lintOnly {
		clone := ir.CloneProgram(prog)
		ropts := replicate.Options{Verify: true, MaxSizeFactor: opts.sizeFac}
		var st *replicate.Stats
		var err error
		if opts.joint {
			st, err = replicate.ApplyJoint(clone, choices, preds, ropts)
		} else {
			st, err = replicate.ApplyOpts(clone, choices, preds, ropts)
		}
		if st != nil {
			diags = append(diags, st.Diags...)
		}
		if err != nil && !analysis.HasErrors(diags) {
			fmt.Fprintf(stderr, "krallcheck: %s: replication: %v\n", name, err)
			return 2
		}
		verified = st != nil && st.Verified
	}

	// The indirect family's pass: programs with switch dispatches also get
	// clustered (against the profiled target distribution) and re-derived
	// structurally. Switch-free programs skip it silently.
	nSwitches := 0
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if b.Term.Op == ir.TermSwitch {
				nSwitches++
			}
		}
	}
	clusterStatus := ""
	if nSwitches > 0 && !opts.lintOnly {
		snap := ir.CloneProgram(prog)
		clustered := ir.CloneProgram(prog)
		st, prov, err := indirect.Cluster(clustered, targets, indirect.Options{})
		if err != nil {
			fmt.Fprintf(stderr, "krallcheck: %s: clustering: %v\n", name, err)
			return 2
		}
		idiags := analysis.VerifyIndirect(snap, clustered, prov)
		diags = append(diags, idiags...)
		if len(idiags) == 0 {
			clusterStatus = fmt.Sprintf(", clustering verified (%d of %d dispatch sites)",
				st.Clustered, st.Switches)
		} else {
			clusterStatus = ", clustering NOT verified"
		}
	}

	errs, warns := reportDiags(name, diags, opts.quiet, stdout)
	if !opts.quiet {
		status := "replication not checked"
		switch {
		case verified:
			status = "replication verified"
		case !opts.lintOnly:
			status = "replication NOT verified"
		}
		fmt.Fprintf(stdout, "%s: %d branch sites, %d errors, %d warnings, %s%s\n",
			name, nSites, errs, warns, status, clusterStatus)
	}
	if errs > 0 {
		return 1
	}
	return 0
}
