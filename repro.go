// Package repro is a Go reproduction of Andreas Krall, "Improving
// Semi-static Branch Prediction by Code Replication" (PLDI 1994).
//
// It provides, from scratch: the BL benchmark language and compiler
// (lexer, parser, checker, IR lowering), a deterministic IR interpreter
// with branch tracing, the paper's profiling infrastructure (local,
// global, and path pattern tables), a branch predictor zoo (static
// heuristics, dynamic two-level predictors, semi-static strategies), the
// branch prediction state machines of section 4 with exhaustive and
// greedy searches, and the code replication transforms of section 5 —
// plus the benchmark harness that regenerates every table and figure of
// the evaluation.
//
// This package is the public facade; the implementation lives under
// internal/. The most common entry points:
//
//	prog, err := repro.Compile(blSource)        // compile BL to IR
//	res, err := repro.Run(prog, repro.Config{}) // profile → machines → replicate → measure
//	suite, err := repro.NewSuite(repro.DefaultExpConfig())
//	fmt.Println(suite.Table1().Render())        // the paper's Table 1
package repro

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/runner"
)

// Program is a compiled BL program in the register IR.
type Program = ir.Program

// Config parameterises the replication pipeline; the zero value uses the
// paper's defaults (9-bit histories, 5-state machines, 3x size budget).
type Config = core.Config

// Result is the outcome of one pipeline run: the profile, the chosen state
// machines, the transformed program, and the measured rates.
type Result = core.Result

// Workload is one of the eight substitute benchmarks.
type Workload = bench.Workload

// Suite is the experiment driver regenerating the paper's tables and
// figures.
type Suite = bench.Suite

// ExpConfig parameterises the experiment suite. Its Parallel field sets
// the worker count of the experiment engine (0 = GOMAXPROCS, 1 =
// sequential); output is byte-identical at every setting.
type ExpConfig = bench.ExpConfig

// EngineStats reports the experiment engine's job and artifact-cache
// counters; obtain it from Suite.Engine().Stats().
type EngineStats = runner.Stats

// Figure is one misprediction-vs-code-size curve (Figures 6-13).
type Figure = bench.Figure

// Compile compiles BL source text to IR with branch sites numbered.
func Compile(src string) (*Program, error) { return core.CompileBL(src) }

// Run executes the full pipeline on a compiled program: profile it, select
// branch prediction state machines, replicate code, and measure the
// transformed program.
func Run(prog *Program, cfg Config) (*Result, error) { return core.Run(prog, cfg) }

// RunSource compiles and runs the pipeline in one step.
func RunSource(src string, cfg Config) (*Result, error) { return core.RunBL(src, cfg) }

// Workloads returns the benchmark suite in the paper's column order.
func Workloads() []Workload { return bench.Workloads() }

// NewSuite profiles every workload and returns the experiment driver.
func NewSuite(cfg ExpConfig) (*Suite, error) { return bench.NewSuite(cfg) }

// DefaultExpConfig is the full-size experiment configuration (2M branch
// events per workload).
func DefaultExpConfig() ExpConfig { return bench.DefaultConfig() }

// QuickExpConfig is a scaled-down configuration for smoke runs.
func QuickExpConfig() ExpConfig { return bench.QuickConfig() }
