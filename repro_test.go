package repro

import (
	"strings"
	"testing"
)

func TestFacadeCompileAndRun(t *testing.T) {
	prog, err := Compile(`
func main() int {
    var s int = 0;
    for var i int = 0; i < 5000; i = i + 1 {
        if i % 2 == 0 { s = s + 1; } else { s = s + 2; }
    }
    print(s);
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Config{MaxStates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineRate <= res.ReplicatedRate {
		t.Fatalf("replication did not help: %.2f -> %.2f", res.BaselineRate, res.ReplicatedRate)
	}
	if res.ReplicatedRate > 1 {
		t.Fatalf("alternating branch should be near perfect, got %.2f%%", res.ReplicatedRate)
	}
	if res.BaselineChecksum != res.ReplicatedChecksum {
		t.Fatal("semantics changed")
	}
	if res.SizeFactor() <= 1 {
		t.Fatal("no code growth recorded")
	}
}

func TestFacadeRunSourceErrors(t *testing.T) {
	if _, err := RunSource("func main() int { return x; }", Config{}); err == nil {
		t.Fatal("want compile error")
	}
	if !strings.Contains(mustErr(t).Error(), "undefined") {
		t.Fatal("error text unexpected")
	}
}

func mustErr(t *testing.T) error {
	t.Helper()
	_, err := RunSource("func main() int { return x; }", Config{})
	if err == nil {
		t.Fatal("want error")
	}
	return err
}

func TestFacadeWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) != 8 {
		t.Fatalf("workloads = %d", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if w.Name == "" || w.Source == "" || w.Archetype == "" {
			t.Fatalf("incomplete workload %+v", w.Name)
		}
		if names[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
	}
}

func TestFacadeSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite construction in -short mode")
	}
	cfg := QuickExpConfig()
	cfg.Budget = 20_000
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := s.Table1()
	if len(tab.Cols) != 8 {
		t.Fatalf("cols = %d", len(tab.Cols))
	}
	if !strings.Contains(tab.Render(), "profile") {
		t.Fatal("render missing profile row")
	}
}
