// Benchmarks regenerating every table and figure of the paper's evaluation
// section (see DESIGN.md's per-experiment index). Each benchmark reports
// the headline metric of its experiment via b.ReportMetric, so
// `go test -bench=. -benchmem` both times the pipeline and shows the
// reproduced numbers. The benchmarks run at a reduced budget
// (benchBudget); cmd/krallbench regenerates the full-size tables.
package repro

import (
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/replicate"
	"repro/internal/statemachine"
	"repro/internal/trace"
)

const benchBudget = 200_000

var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		cfg := bench.DefaultConfig()
		cfg.Budget = benchBudget
		suite, suiteErr = bench.NewSuite(cfg)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// avgRow averages the valid rate cells of a named row.
func avgRow(b *testing.B, t *bench.Table, name string) float64 {
	b.Helper()
	for _, r := range t.Rows {
		if r.Name != name {
			continue
		}
		sum, n := 0.0, 0
		for _, c := range r.Cells {
			if c.Valid {
				sum += c.Value
				n++
			}
		}
		if n == 0 {
			b.Fatalf("row %q empty", name)
		}
		return sum / float64(n)
	}
	b.Fatalf("table %s lacks row %q", t.ID, name)
	return 0
}

// BenchmarkSuiteBuild measures the parallel experiment engine: profiling
// all eight workloads at several worker counts. The reported job and
// cache counters come from the engine itself (repro.EngineStats), so the
// benchmark doubles as a check that work is actually distributed.
func BenchmarkSuiteBuild(b *testing.B) {
	for _, workers := range []int{1, 2, 0} { // 0 = GOMAXPROCS
		name := "parallel=" + strconv.Itoa(workers)
		if workers == 0 {
			name = "parallel=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			var st bench.Suite
			for i := 0; i < b.N; i++ {
				cfg := bench.DefaultConfig()
				cfg.Budget = benchBudget / 4
				cfg.Parallel = workers
				s, err := bench.NewSuite(cfg)
				if err != nil {
					b.Fatal(err)
				}
				st = *s
			}
			var stats EngineStats = st.Engine().Stats()
			b.ReportMetric(float64(stats.Jobs), "jobs")
			b.ReportMetric(float64(stats.CacheMisses), "cache-misses")
		})
	}
}

// BenchmarkAllExperiments runs every table once on a fresh suite, the
// shape of `krallbench -all`, and reports the cache-hit counter — the
// measured experiments share their strategy selections through the
// artifact cache, so hits should dominate misses.
func BenchmarkAllExperiments(b *testing.B) {
	var stats EngineStats
	for i := 0; i < b.N; i++ {
		cfg := bench.DefaultConfig()
		cfg.Budget = benchBudget / 4
		s, err := bench.NewSuite(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s.Table1()
		s.Table5()
		if _, err := s.MeasuredReplication(5); err != nil {
			b.Fatal(err)
		}
		if _, err := s.CrossDataset(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.LayoutTable(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.ScopeTable(); err != nil {
			b.Fatal(err)
		}
		stats = s.Engine().Stats()
	}
	b.ReportMetric(float64(stats.CacheHits), "cache-hits")
	b.ReportMetric(float64(stats.CacheMisses), "cache-misses")
}

// BenchmarkTable1 regenerates Table 1 (strategy misprediction rates).
func BenchmarkTable1(b *testing.B) {
	s := benchSuite(b)
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = s.Table1()
	}
	b.ReportMetric(avgRow(b, t, "profile"), "profile-miss-%")
	b.ReportMetric(avgRow(b, t, "loop-correlation"), "loopcorr-miss-%")
	b.ReportMetric(avgRow(b, t, "two level 1K/9bit"), "twolevel-miss-%")
}

// BenchmarkTable2 regenerates Table 2 (pattern-table fill rates).
func BenchmarkTable2(b *testing.B) {
	s := benchSuite(b)
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = s.Table2()
	}
	b.ReportMetric(avgRow(b, t, "9 bit local history"), "fill9-local-%")
	b.ReportMetric(avgRow(b, t, "9 bit global history"), "fill9-global-%")
}

// BenchmarkTable3 regenerates Table 3 (loop and exit state machines).
func BenchmarkTable3(b *testing.B) {
	s := benchSuite(b)
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = s.Table3()
	}
	b.ReportMetric(avgRow(b, t, "5 states (loop)"), "loop5-miss-%")
	b.ReportMetric(avgRow(b, t, "5 states (exit)"), "exit5-miss-%")
}

// BenchmarkTable4 regenerates Table 4 (correlated-branch machines).
func BenchmarkTable4(b *testing.B) {
	s := benchSuite(b)
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = s.Table4()
	}
	b.ReportMetric(avgRow(b, t, "5 states"), "path5-miss-%")
	b.ReportMetric(avgRow(b, t, "profile"), "profile-miss-%")
}

// BenchmarkTable5 regenerates Table 5 (best achievable rates).
func BenchmarkTable5(b *testing.B) {
	s := benchSuite(b)
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = s.Table5()
	}
	b.ReportMetric(avgRow(b, t, "10 states"), "best10-miss-%")
}

// BenchmarkFigures regenerates the misprediction-vs-size curves
// (Figures 6-13) and reports the headline operating point.
func BenchmarkFigures(b *testing.B) {
	s := benchSuite(b)
	var figs []bench.Figure
	for i := 0; i < b.N; i++ {
		figs = s.Figures()
	}
	hs := bench.Headlines(figs)
	var red, prof, at133 float64
	for _, h := range hs {
		red += h.ReductionPct
		prof += h.ProfileRate
		at133 += h.At133Rate
	}
	n := float64(len(hs))
	b.ReportMetric(red/n, "reduction-at-1.33x-%")
	b.ReportMetric(prof/n, "profile-miss-%")
	b.ReportMetric(at133/n, "replicated-miss-%")
}

// BenchmarkMeasuredReplication runs the interpreter-verified end-to-end
// experiment: transform every workload and execute it.
func BenchmarkMeasuredReplication(b *testing.B) {
	s := benchSuite(b)
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = s.MeasuredReplication(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgRow(b, t, "profile baseline (measured)"), "baseline-miss-%")
	b.ReportMetric(avgRow(b, t, "replicated (measured)"), "replicated-miss-%")
	b.ReportMetric(avgRow(b, t, "size factor"), "size-factor")
}

// BenchmarkCrossDataset runs the §6 dataset-sensitivity experiment.
func BenchmarkCrossDataset(b *testing.B) {
	s := benchSuite(b)
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		t, err = s.CrossDataset()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avgRow(b, t, "profile self"), "self-miss-%")
	b.ReportMetric(avgRow(b, t, "profile cross"), "cross-miss-%")
}

// BenchmarkAblation compares strategy families in isolation (the design
// choices DESIGN.md calls out): loop machines only, exit machines only,
// path machines only, and all together.
func BenchmarkAblation(b *testing.B) {
	s := benchSuite(b)
	cases := []struct {
		name string
		opt  statemachine.Options
	}{
		{"all", statemachine.Options{MaxStates: 5, MaxPathLen: 3}},
		{"loop-only", statemachine.Options{MaxStates: 5, MaxPathLen: 3, DisableExit: true, DisablePath: true}},
		{"exit-only", statemachine.Options{MaxStates: 5, MaxPathLen: 3, DisableLoop: true, DisablePath: true}},
		{"path-only", statemachine.Options{MaxStates: 5, MaxPathLen: 3, DisableLoop: true, DisableExit: true}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				var miss, tot uint64
				for _, d := range s.Data {
					ch := statemachine.Select(d.Prof, d.C.Features, c.opt)
					m, t := statemachine.Aggregate(ch)
					miss += m
					tot += t
				}
				rate = 100 * float64(miss) / float64(tot)
			}
			b.ReportMetric(rate, "miss-%")
		})
	}
}

// BenchmarkInterpreter measures raw interpreter throughput on the compress
// workload (instructions per second drive every experiment's cost).
func BenchmarkInterpreter(b *testing.B) {
	w, err := bench.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	c, err := bench.Compile(w)
	if err != nil {
		b.Fatal(err)
	}
	var steps uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := interp.New(c.Prog)
		m.MaxBranches = 100_000
		if err := m.SetGlobal("wscale", 1<<30); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil && err != interp.ErrLimit {
			b.Fatal(err)
		}
		steps = m.Steps
	}
	b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkTraceRecord measures the record-once path: interpreting the
// compress workload with the direct slab hook (interp.Machine.Rec) instead
// of a Collector interface call per branch.
func BenchmarkTraceRecord(b *testing.B) {
	w, err := bench.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	c, err := bench.Compile(w)
	if err != nil {
		b.Fatal(err)
	}
	const events = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := interp.New(c.Prog)
		m.MaxBranches = events
		s := trace.NewSlab(events)
		m.Rec = s
		if err := m.SetGlobal("wscale", 1<<30); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil && err != interp.ErrLimit {
			b.Fatal(err)
		}
		s.Seal()
		if s.Len() != events {
			b.Fatalf("recorded %d events", s.Len())
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTraceReplay measures the replay-many path — the work the
// engine does instead of re-interpreting a workload — per collector
// class: plain counts (the "profile" strategy's entire data need), the
// full five-table profile bundle, the dynamic-predictor evaluators, and
// site-partitioned parallel counting. All paths run the run-aware fused
// decode; "counts" corresponds to the historical single-number baseline's
// count-collector case.
func BenchmarkTraceReplay(b *testing.B) {
	w, err := bench.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	c, err := bench.Compile(w)
	if err != nil {
		b.Fatal(err)
	}
	const events = 100_000
	m := interp.New(c.Prog)
	m.MaxBranches = events
	s := trace.NewSlab(events)
	m.Rec = s
	if err := m.SetGlobal("wscale", 1<<30); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(); err != nil && err != interp.ErrLimit {
		b.Fatal(err)
	}
	s.Seal()
	perEvent := func(b *testing.B) {
		b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(float64(s.EncodedBytes()), "trace-bytes")
	}
	b.Run("counts", func(b *testing.B) {
		counts := trace.NewCounts(c.NSites)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ReplayInto(counts)
		}
		perEvent(b)
	})
	b.Run("profile-score", func(b *testing.B) {
		// The service's "profile" scoring strategy: counts plus the
		// majority-direction fold.
		counts := trace.NewCounts(c.NSites)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(counts.Taken)
			clear(counts.NotTaken)
			s.ReplayInto(counts)
			if r := predict.ProfileResult(counts); r.Total != events {
				b.Fatalf("scored %d events", r.Total)
			}
		}
		perEvent(b)
	})
	b.Run("profile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := profile.New(c.NSites, profile.Options{LocalK: 9, GlobalK: 9, PathM: 3})
			s.ReplayInto(p)
		}
		perEvent(b)
	})
	b.Run("predict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			last := &predict.Eval{P: predict.NewLastDirection(c.NSites)}
			twobit := &predict.Eval{P: predict.NewTwoBit(c.NSites)}
			s.ReplayInto(last, twobit)
			if last.Total != events || twobit.Total != events {
				b.Fatal("short replay")
			}
		}
		perEvent(b)
	})
	b.Run("partitioned", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		counts := trace.NewCounts(c.NSites)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ReplayPartitioned(workers, counts)
		}
		perEvent(b)
	})
}

// BenchmarkProfileCollection measures the full multi-table profiling hook.
func BenchmarkProfileCollection(b *testing.B) {
	w, err := bench.ByName("ghostview")
	if err != nil {
		b.Fatal(err)
	}
	c, err := bench.Compile(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profile.New(c.NSites, profile.Options{})
		if _, err := c.Run(bench.RunConfig{Budget: 100_000, Scale: 1 << 30}, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopMachineSearch measures the exhaustive suffix-closed search
// at the paper's largest machine size.
func BenchmarkLoopMachineSearch(b *testing.B) {
	lh := profile.NewLocalHistory(1, 9)
	t := &ir.Term{Op: ir.TermBr}
	x := uint32(1)
	for i := 0; i < 50_000; i++ {
		x = x*1664525 + 1013904223
		lh.Branch(t, x&0x30000 != 0x30000)
	}
	tab := lh.Table(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := statemachine.BestLoopMachine(tab, 9, 10)
		if m.NumStates() != 10 {
			b.Fatal("bad machine")
		}
	}
}

// BenchmarkReplicateApply measures the code replication transform itself.
func BenchmarkReplicateApply(b *testing.B) {
	s := benchSuite(b)
	d := s.Data[0] // abalone
	choices := statemachine.Select(d.Prof, d.C.Features, statemachine.Options{
		MaxStates: 5, MaxPathLen: 1,
	})
	preds := predict.ProfileStatic(d.Prof.Counts).Preds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone := ir.CloneProgram(d.C.Prog)
		if _, err := replicate.ApplyOpts(clone, choices, preds, replicate.Options{MaxSizeFactor: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
