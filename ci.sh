#!/bin/sh
# CI entry point: everything a PR must pass, in the order cheapest-first.
# Mirrored by .github/workflows/ci.yml; run locally with `make ci`.
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test ./...
go test -race ./...
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/lang
go test -run='^$' -fuzz=FuzzReadSlab -fuzztime=10s ./internal/trace
go test -run='^$' -fuzz=FuzzVerify -fuzztime=10s ./internal/analysis
go run ./cmd/krallcheck examples/bl/*.bl
go test -bench=. -benchtime=1x -run='^$' .
go run ./cmd/krallbench -all -benchjson BENCH_results.json > /dev/null
go run ./cmd/kralld -selfcheck -quiet -metrics-out kralld-metrics.txt
