#!/bin/sh
# CI entry point: everything a PR must pass, grouped into named, timed
# stages, cheapest-first. .github/workflows/ci.yml invokes this script
# directly (plus caching and artifact upload, which only exist there), so
# the two cannot diverge; run locally with `make ci`.
#
# CI_QUICK=1 runs the tier-1 stages only (fmt/vet, build, test) — the fast
# local iteration loop. CI_OFFLINE=1 skips the network-gated tools.
#
# Every stage's wall-clock time is appended to ci-timings.txt and the
# per-stage summary table is printed at the end, pass or fail.
set -eux

TIMINGS=ci-timings.txt
: > "$TIMINGS"

# stage NAME runs stage_NAME, timing it into $TIMINGS. A failing stage
# aborts the script (set -e), but the trap still prints what completed.
stage() {
    _name=$1
    _start=$(date +%s)
    "stage_$_name"
    _end=$(date +%s)
    printf '%-10s %5ss\n' "$_name" "$((_end - _start))" >> "$TIMINGS"
}

print_timings() {
    set +x
    echo
    echo "CI stage timings (wall clock):"
    cat "$TIMINGS"
}
trap print_timings EXIT

stage_fmt() {
    test -z "$(gofmt -l .)"
    go vet ./...
}

stage_build() {
    go build ./...
}

stage_test() {
    go test ./...
}

stage_shuffle() {
    # Shuffled re-run flushes out inter-test ordering dependencies, the
    # race run data races.
    go test -shuffle=on ./...
    go test -race ./...
}

stage_static() {
    # Static analysis and known-vulnerability scan, both mandatory and both
    # pinned (the workflow pre-installs them; elsewhere they are fetched on
    # first use). Boxes without network access opt out explicitly with
    # CI_OFFLINE=1 — absence of the tools is no longer a silent skip.
    STATICCHECK_VERSION=2025.1
    GOVULNCHECK_VERSION=v1.1.4
    if [ "${CI_OFFLINE:-0}" = "1" ]; then
        echo "CI_OFFLINE=1: skipping staticcheck and govulncheck (network-gated tools)"
    else
        command -v staticcheck >/dev/null 2>&1 || go install "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}"
        command -v govulncheck >/dev/null 2>&1 || go install "golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION}"
        staticcheck ./...
        govulncheck ./...
    fi
}

stage_suites() {
    # Backend conformance + differential + golden-trace suites by name (they
    # also run inside `go test ./...`; naming them makes the gate explicit
    # and keeps them from being filtered out by future test pruning).
    go test -run='Conformance|BackendEquivalence|VMContext' ./internal/vm
    go test -run='GoldenTraces' ./internal/bench
}

stage_fuzz() {
    go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/lang
    go test -run='^$' -fuzz=FuzzReadSlab -fuzztime=10s ./internal/trace
    go test -run='^$' -fuzz=FuzzVerify -fuzztime=10s ./internal/analysis
    # Soundness of the static branch analysis: SCCP dead-branch/always-taken
    # claims must never contradict a recorded trace on any generated program.
    go test -run='^$' -fuzz=FuzzStaticSoundness -fuzztime=10s ./internal/analysis
    go test -run='^$' -fuzz=FuzzBackendEquivalence -fuzztime=10s ./internal/vm
    go test -run='^$' -fuzz=FuzzRunCollectorEquivalence -fuzztime=10s ./internal/bench
    # Indirect family: clustered switch programs must stay observably
    # identical to their originals on both backends.
    go test -run='^$' -fuzz=FuzzIndirectEquivalence -fuzztime=10s ./internal/indirect
}

stage_check() {
    go run ./cmd/krallcheck examples/bl/*.bl
    # Catalog-wide static (profile-free) prediction report, kept as a CI
    # artifact: per-workload accuracy of every static strategy vs the
    # profiled oracle, plus the SCCP-decided site counts.
    go run ./cmd/krallcheck -predict -budget 20000 > krallcheck-predict.txt
    cat krallcheck-predict.txt
}

stage_bench() {
    go test -bench=. -benchtime=1x -run='^$' .
    # Bench-regression gate: run the sweep (including the interp-vs-vm
    # execution-backend comparison and the trace-replay throughput modes),
    # the service throughput harness, and the multi-node scaling round into
    # a fresh document, then compare it against the committed baseline
    # (which gates the cluster's aggregate req/s and its scaling factor
    # too).
    go run ./cmd/krallbench -all -execbench -tracebench -benchjson bench-new.json > /dev/null
    go run ./cmd/krallload -serve -throughput -quiet -benchjson bench-new.json
    go run ./cmd/krallload -throughput -nodes 4 -noderps 400 -requests 1024 -quiet -benchjson bench-new.json
    go run ./cmd/krallbench -compare BENCH_results.json bench-new.json -tolerance 0.15
    # Prove the gate fires: a synthetic 20% regression must fail the compare.
    go run ./cmd/krallbench -compare bench-new.json -degrade 0.8 -out bench-regressed.json
    ! go run ./cmd/krallbench -compare bench-new.json bench-regressed.json
}

stage_service() {
    go run ./cmd/kralld -selfcheck -quiet -metrics-out kralld-metrics.txt
}

stage_cluster() {
    # Cluster smoke: three real kralld processes with per-node disk tiers
    # and consistent-hash peering. The load sweep enters through every node,
    # so a non-owner entry exercises request forwarding and peer artifact
    # fetch; responses must stay byte-stable regardless of entry point. Each
    # node's /metrics snapshot is kept as a CI artifact.
    mkdir -p cluster-smoke
    go build -o cluster-smoke/kralld ./cmd/kralld
    N1=http://127.0.0.1:8741 N2=http://127.0.0.1:8742 N3=http://127.0.0.1:8743
    cluster-smoke/kralld -addr 127.0.0.1:8741 -self "$N1" -peers "$N1,$N2,$N3" -disk cluster-smoke/d1 -quiet & P1=$!
    cluster-smoke/kralld -addr 127.0.0.1:8742 -self "$N2" -peers "$N1,$N2,$N3" -disk cluster-smoke/d2 -quiet & P2=$!
    cluster-smoke/kralld -addr 127.0.0.1:8743 -self "$N3" -peers "$N1,$N2,$N3" -disk cluster-smoke/d3 -quiet & P3=$!
    trap 'kill $P1 $P2 $P3 2>/dev/null || true; print_timings' EXIT
    for url in "$N1" "$N2" "$N3"; do
        for _ in $(seq 1 100); do
            curl -fsS "$url/readyz" >/dev/null 2>&1 && break
            sleep 0.1
        done
        curl -fsS "$url/readyz" >/dev/null
    done
    i=1
    for url in "$N1" "$N2" "$N3"; do
        go run ./cmd/krallload -addr "$url" -quiet
        curl -fsS "$url/metrics" > "kralld-node$i-metrics.txt"
        i=$((i+1))
    done
    kill $P1 $P2 $P3
    wait $P1 $P2 $P3 || true
    trap print_timings EXIT
    rm -rf cluster-smoke
}

# Tier 1: the fast local iteration loop.
stage fmt
stage build
stage test
if [ "${CI_QUICK:-0}" = "1" ]; then
    echo "CI_QUICK=1: tier-1 stages only"
    exit 0
fi
# Full CI.
stage shuffle
stage static
stage suites
stage fuzz
stage check
stage bench
stage service
stage cluster
