#!/bin/sh
# CI entry point: everything a PR must pass, in the order cheapest-first.
# .github/workflows/ci.yml invokes this script directly (plus caching and
# artifact upload, which only exist there), so the two cannot diverge;
# run locally with `make ci`.
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test ./...
# Shuffled re-run flushes out inter-test ordering dependencies.
go test -shuffle=on ./...
go test -race ./...
# Known-vulnerability scan; advisory-gated on the tool being installed so
# the script still runs on boxes without network access.
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
else
    echo "govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi
# Backend conformance + differential + golden-trace suites by name (they
# also run inside `go test ./...`; naming them makes the gate explicit and
# keeps them from being filtered out by future test pruning).
go test -run='Conformance|BackendEquivalence|VMContext' ./internal/vm
go test -run='GoldenTraces' ./internal/bench
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/lang
go test -run='^$' -fuzz=FuzzReadSlab -fuzztime=10s ./internal/trace
go test -run='^$' -fuzz=FuzzVerify -fuzztime=10s ./internal/analysis
go test -run='^$' -fuzz=FuzzBackendEquivalence -fuzztime=10s ./internal/vm
go test -run='^$' -fuzz=FuzzRunCollectorEquivalence -fuzztime=10s ./internal/bench
go run ./cmd/krallcheck examples/bl/*.bl
go test -bench=. -benchtime=1x -run='^$' .
# Bench-regression gate: run the sweep (including the interp-vs-vm
# execution-backend comparison and the trace-replay throughput modes) and
# the service throughput harness into a fresh document, then compare it
# against the committed baseline.
go run ./cmd/krallbench -all -execbench -tracebench -benchjson bench-new.json > /dev/null
go run ./cmd/krallload -serve -throughput -quiet -benchjson bench-new.json
go run ./cmd/krallbench -compare BENCH_results.json bench-new.json -tolerance 0.15
# Prove the gate fires: a synthetic 20% regression must fail the compare.
go run ./cmd/krallbench -compare bench-new.json -degrade 0.8 -out bench-regressed.json
! go run ./cmd/krallbench -compare bench-new.json bench-regressed.json
go run ./cmd/kralld -selfcheck -quiet -metrics-out kralld-metrics.txt
