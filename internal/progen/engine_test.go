package progen

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
)

// pipelineObs is the observable behaviour of one full pipeline run on a
// generated program, for sequential-vs-parallel comparison.
type pipelineObs struct {
	baselineRate, replicatedRate         float64
	baselineChecksum, replicatedChecksum uint64
	sizeFactor                           float64
	choices                              int
}

func runPipeline(seed int64) (pipelineObs, error) {
	src := Generate(seed, DefaultConfig())
	res, err := core.RunBL(src, core.Config{Budget: 30_000})
	if err != nil {
		return pipelineObs{}, fmt.Errorf("seed %d: %w", seed, err)
	}
	return pipelineObs{
		baselineRate:       res.BaselineRate,
		replicatedRate:     res.ReplicatedRate,
		baselineChecksum:   res.BaselineChecksum,
		replicatedChecksum: res.ReplicatedChecksum,
		sizeFactor:         res.SizeFactor(),
		choices:            len(res.Choices),
	}, nil
}

// TestEngineMatchesSequentialPipeline pushes randomly generated programs
// through the full pipeline both sequentially and via the parallel runner,
// and demands identical observable behaviour: checksums (the program
// printed the same values), measured rates, and replication stats. This is
// the property-test form of the engine's determinism contract, over inputs
// no human wrote.
func TestEngineMatchesSequentialPipeline(t *testing.T) {
	const n = 24
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(1000 + i)
	}

	seq := make([]pipelineObs, n)
	for i, s := range seeds {
		var err error
		seq[i], err = runPipeline(s)
		if err != nil {
			t.Fatal(err)
		}
	}

	par, err := runner.Map(runner.New(4), seeds, func(_ int, s int64) (pipelineObs, error) {
		return runPipeline(s)
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := range seeds {
		if par[i] != seq[i] {
			t.Errorf("seed %d: parallel %+v != sequential %+v", seeds[i], par[i], seq[i])
		}
		if seq[i].baselineChecksum != seq[i].replicatedChecksum {
			t.Errorf("seed %d: replication changed program semantics (checksum %d -> %d)",
				seeds[i], seq[i].baselineChecksum, seq[i].replicatedChecksum)
		}
	}
}

// TestEngineCachesGeneratedArtifacts checks the single-flight artifact
// cache under the property-test workload: many jobs asking for the same
// generated program's pipeline result compute it exactly once.
func TestEngineCachesGeneratedArtifacts(t *testing.T) {
	eng := runner.New(8)
	const jobs, distinct = 48, 6
	items := make([]int, jobs)
	for i := range items {
		items[i] = i
	}
	results, err := runner.Map(eng, items, func(_ int, i int) (pipelineObs, error) {
		seed := int64(2000 + i%distinct)
		return runner.Cached(eng.Cache(), fmt.Sprintf("pipe/%d", seed), func() (pipelineObs, error) {
			return runPipeline(seed)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if want := results[i%distinct]; r != want {
			t.Errorf("job %d: cached result mismatch: %+v != %+v", i, r, want)
		}
	}
	hits, misses := eng.Cache().Counters()
	if misses != distinct {
		t.Errorf("expected %d cache misses, got %d (hits %d)", distinct, misses, hits)
	}
	if hits != jobs-distinct {
		t.Errorf("expected %d cache hits, got %d", jobs-distinct, hits)
	}
}
