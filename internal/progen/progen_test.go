package progen

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/lang"
)

// TestGeneratedProgramsCompileAndRun is the front-end property test: every
// generated program must compile and execute without traps within a step
// bound.
func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		src := Generate(seed, DefaultConfig())
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		m := interp.New(prog)
		m.MaxSteps = 20_000_000
		if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, DefaultConfig())
	b := Generate(42, DefaultConfig())
	if a != b {
		t.Fatal("generation not deterministic")
	}
	c := Generate(43, DefaultConfig())
	if a == c {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	cfg := Config{MaxFuncs: 0, MaxStmtsPerBlock: 2, MaxDepth: 1, MaxLoopTrip: 3, Arrays: 0}
	src := Generate(7, cfg)
	if strings.Contains(src, "func f0") {
		t.Fatal("MaxFuncs 0 produced helpers")
	}
	if strings.Contains(src, "arr0") {
		t.Fatal("Arrays 0 produced arrays")
	}
	if _, err := lang.Compile(src); err != nil {
		t.Fatalf("minimal config program invalid: %v\n%s", err, src)
	}
}

func TestGeneratedProgramsHaveBranches(t *testing.T) {
	// Programs must exercise the machinery under test: expect branches in
	// most generated programs.
	withBranches := 0
	for seed := int64(100); seed < 130; seed++ {
		prog, err := lang.Compile(Generate(seed, DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		if prog.NumberBranches(true) > 0 {
			withBranches++
		}
	}
	if withBranches < 25 {
		t.Fatalf("only %d/30 generated programs contain branches", withBranches)
	}
}
