package predict

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
)

// featuresOf compiles and analyzes, returning features keyed by condition
// opcode for easy lookup.
func featuresOf(t *testing.T, src string) []SiteFeatures {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(prog)
}

func TestOpcodePredictionTable(t *testing.T) {
	taken := []ir.Op{ir.OpNeI, ir.OpNeF, ir.OpGtI, ir.OpGtF, ir.OpGeI, ir.OpGeF}
	notTaken := []ir.Op{ir.OpEqI, ir.OpEqF, ir.OpLtI, ir.OpLtF, ir.OpLeI, ir.OpLeF}
	for _, op := range taken {
		p, ok := opcodePrediction(op)
		if !ok || p != ir.PredTaken {
			t.Errorf("%v: want taken", op)
		}
	}
	for _, op := range notTaken {
		p, ok := opcodePrediction(op)
		if !ok || p != ir.PredNotTaken {
			t.Errorf("%v: want not-taken", op)
		}
	}
	if _, ok := opcodePrediction(ir.OpAddI); ok {
		t.Error("non-compare must be inapplicable")
	}
}

func TestOpcodeStaticVector(t *testing.T) {
	fts := featuresOf(t, `
func main() int {
    var a int = 3;
    var s int = 0;
    if a != 2 { s = s + 1; }
    if a == 3 { s = s + 1; }
    return s;
}`)
	st := OpcodeStatic(fts)
	if len(st.Preds) != 2 {
		t.Fatalf("preds = %v", st.Preds)
	}
	// First branch tests !=, predicted taken; second ==, not taken.
	if st.Preds[0] != ir.PredTaken || st.Preds[1] != ir.PredNotTaken {
		t.Fatalf("opcode preds = %v", st.Preds)
	}
}

func TestBallLarusHeuristicOrder(t *testing.T) {
	// Return heuristic: then-side returns, else continues; condition is a
	// bool variable (no visible compare) so the opcode heuristic is
	// inapplicable and Return decides.
	fts := featuresOf(t, `
func f(flag bool) int {
    if flag { return 1; }
    return 0;
}
func main() int { return f(true); }`)
	if len(fts) != 1 {
		t.Fatalf("features = %d", len(fts))
	}
	// Both sides return here... check flags first.
	ft := fts[0]
	if !ft.TakenRet {
		t.Fatal("then-return not detected")
	}

	// With an opaque condition, the Return heuristic fires before Store:
	// the else side falls into the returning join block, so the branch is
	// predicted taken ("avoid branches to blocks which return").
	fts = featuresOf(t, `
var g int;
func f(flag bool) int {
    var s int = 0;
    if flag { g = 1; s = s + 1; }
    s = s + 2;
    return s;
}
func main() int { return f(false); }`)
	if !fts[0].ElseRet || fts[0].TakenRet {
		t.Fatalf("return flags wrong: %+v", fts[0])
	}
	if !fts[0].TakenStore || fts[0].ElseStore {
		t.Fatalf("store flags wrong: %+v", fts[0])
	}
	bl := BallLarus(fts)
	if bl.Preds[0] != ir.PredTaken {
		t.Fatalf("return heuristic: %v, want taken", bl.Preds[0])
	}
	// With both sides returning, Return is inapplicable and Store decides:
	// avoid the storing side.
	fts = featuresOf(t, `
var g int;
func f(flag bool) int {
    if flag { g = 1; return 1; }
    return 0;
}
func main() int { return f(false); }`)
	if fts[0].TakenRet != fts[0].ElseRet {
		t.Skipf("shape differs: %+v", fts[0])
	}
	bl = BallLarus(fts)
	if bl.Preds[0] != ir.PredNotTaken {
		t.Fatalf("store heuristic: %v, want not-taken", bl.Preds[0])
	}

	// Guard heuristic: successor uses the compared operand.
	fts = featuresOf(t, `
var sink int;
func f(a bool, b bool) int {
    var s int = 0;
    if a && b { sink = 1; } else { sink = 2; }
    if a || b { s = 1; } else { s = 2; }
    return s;
}
func main() int { return f(true, false); }`)
	bl = BallLarus(fts)
	for i, p := range bl.Preds {
		if p == ir.PredNone {
			t.Fatalf("branch %d unpredicted", i)
		}
	}
}

func TestBackwardTakenDoWhileShape(t *testing.T) {
	// Hand-build a bottom-tested loop so the conditional branch IS the
	// back edge: entry -> body; body -> (body | exit) with taken = back.
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", NRegs: 2, RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	n := f.NewReg()
	body := b.Block("body")
	exit := b.Block("exit")
	b.Jmp(body)
	b.SetBlock(body)
	one := b.ConstI(1)
	dec := b.Binary(ir.OpSubI, n, one)
	b.Mov(n, dec)
	cond := b.Binary(ir.OpGtI, n, one)
	b.Br(cond, body, exit)
	b.SetBlock(exit)
	b.RetVal(n)
	p.NumberBranches(true)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	fts := Analyze(p)
	if !fts[0].TakenBack {
		t.Fatal("back edge not detected")
	}
	bt := BackwardTaken(fts)
	if bt.Preds[0] != ir.PredTaken {
		t.Fatal("back edge must be predicted taken")
	}
	// Reversed polarity: else is the back edge.
	body.Term.Then, body.Term.Else = body.Term.Else, body.Term.Then
	fts = Analyze(p)
	bt = BackwardTaken(fts)
	if bt.Preds[0] != ir.PredNotTaken {
		t.Fatal("reversed back edge must be predicted not-taken")
	}
}

func TestCondCompareThroughMov(t *testing.T) {
	// A condition forwarded through a Mov must still resolve.
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", NRegs: 1, RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	x := b.ConstI(1)
	cmp := b.Binary(ir.OpLtI, x, x)
	cpy := f.NewReg()
	b.Mov(cpy, cmp)
	then := b.Block("t")
	els := b.Block("e")
	b.Br(cpy, then, els)
	b.SetBlock(then)
	b.RetVal(x)
	b.SetBlock(els)
	b.RetVal(x)
	p.NumberBranches(true)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	fts := Analyze(p)
	if fts[0].CmpOp != ir.OpLtI {
		t.Fatalf("CmpOp through mov = %v", fts[0].CmpOp)
	}
}
