package predict

import (
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/trace"
)

// SiteFeatures captures the static properties of one branch site that the
// static heuristics of [Smi81] and [BL93] consult. BL has no pointers, so
// the Ball–Larus "Pointer" heuristic has no applicable sites (documented
// substitution in DESIGN.md).
type SiteFeatures struct {
	Site int32

	// Switch marks a TermSwitch dispatch site. The two-way heuristics below
	// do not apply to switches; they emit PredNone for such sites and the
	// indirect clustering family predicts them from profiled target
	// frequencies instead.
	Switch bool

	// CmpOp is the comparison opcode that defines the branch condition in
	// the same block, or ir.OpInvalid when the condition's origin is not a
	// visible comparison.
	CmpOp ir.Op
	// CmpA and CmpB are the comparison's operand registers (valid when
	// CmpOp is set).
	CmpA, CmpB ir.Reg

	// TakenBack/ElseBack: the edge is a back edge (its target dominates
	// the branch block).
	TakenBack, ElseBack bool
	// InLoop: the branch block belongs to a natural loop.
	InLoop bool
	// TakenExits/ElseExits: the edge leaves the innermost loop containing
	// the branch.
	TakenExits, ElseExits bool
	// TakenCall/ElseCall: the successor block contains a call.
	TakenCall, ElseCall bool
	// TakenRet/ElseRet: the successor block returns from the function.
	TakenRet, ElseRet bool
	// TakenStore/ElseStore: the successor block stores to a global.
	TakenStore, ElseStore bool
	// TakenUses/ElseUses: the successor block reads one of the comparison
	// operands before overwriting it.
	TakenUses, ElseUses bool
}

// Analyze extracts the features of every prediction site in the program.
// Sites must be numbered (branches and switches share one site space). The
// returned slice is indexed by site ID; switch sites carry only the Switch
// marker, since the two-way feature set does not describe an N-way dispatch.
func Analyze(prog *ir.Program) []SiteFeatures {
	n := 0
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			t := &b.Term
			if (t.Op == ir.TermBr && !t.SwTest) || t.Op == ir.TermSwitch {
				n++
			}
		}
	}
	out := make([]SiteFeatures, n)
	for _, f := range prog.Funcs {
		g := cfg.Build(f)
		lf := cfg.FindLoops(g)
		for _, b := range f.Blocks {
			if b.Term.Op == ir.TermSwitch {
				out[b.Term.Site] = SiteFeatures{Site: b.Term.Site, Switch: true}
				continue
			}
			if b.Term.Op != ir.TermBr || b.Term.SwTest {
				continue
			}
			ft := &out[b.Term.Site]
			ft.Site = b.Term.Site
			ft.CmpOp, ft.CmpA, ft.CmpB = condCompare(b)
			then, els := b.Term.Then, b.Term.Else
			ft.TakenBack = g.IsBackEdge(b, then)
			ft.ElseBack = g.IsBackEdge(b, els)
			if l := lf.InnermostLoop(b); l != nil {
				ft.InLoop = true
				ft.TakenExits = !l.Contains(then)
				ft.ElseExits = !l.Contains(els)
			}
			ft.TakenCall = blockCalls(then)
			ft.ElseCall = blockCalls(els)
			ft.TakenRet = then.Term.Op == ir.TermRet
			ft.ElseRet = els.Term.Op == ir.TermRet
			ft.TakenStore = blockStores(then)
			ft.ElseStore = blockStores(els)
			if ft.CmpOp != ir.OpInvalid {
				ft.TakenUses = blockUses(then, ft.CmpA, ft.CmpB)
				ft.ElseUses = blockUses(els, ft.CmpA, ft.CmpB)
			}
		}
	}
	return out
}

// condCompare finds the comparison instruction defining the branch
// condition within the branch block.
func condCompare(b *ir.Block) (ir.Op, ir.Reg, ir.Reg) {
	cond := b.Term.Cond
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		if !in.Op.HasDst() || in.Dst != cond {
			continue
		}
		if in.Op.IsCompare() {
			return in.Op, in.A, in.B
		}
		if in.Op == ir.OpMov {
			cond = in.A
			continue
		}
		return ir.OpInvalid, 0, 0
	}
	return ir.OpInvalid, 0, 0
}

func blockCalls(b *ir.Block) bool {
	for i := range b.Instrs {
		if b.Instrs[i].Op == ir.OpCall {
			return true
		}
	}
	return false
}

func blockStores(b *ir.Block) bool {
	for i := range b.Instrs {
		switch b.Instrs[i].Op {
		case ir.OpStoreG, ir.OpStoreElem:
			return true
		}
	}
	return false
}

// blockUses reports whether the block reads register a or b before
// overwriting both.
func blockUses(blk *ir.Block, a, b ir.Reg) bool {
	liveA, liveB := true, true
	reads := func(in *ir.Instr, r ir.Reg) bool {
		n := in.Op.NumSrc()
		if n >= 1 && in.A == r {
			return true
		}
		if n >= 2 && in.B == r {
			return true
		}
		if in.Op == ir.OpCall {
			for _, ar := range in.Args {
				if ar == r {
					return true
				}
			}
		}
		return false
	}
	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		if liveA && reads(in, a) {
			return true
		}
		if liveB && reads(in, b) {
			return true
		}
		if in.Op.HasDst() {
			if in.Dst == a {
				liveA = false
			}
			if in.Dst == b {
				liveB = false
			}
			if !liveA && !liveB {
				return false
			}
		}
	}
	t := blk.Term
	if t.Op == ir.TermBr && ((liveA && t.Cond == a) || (liveB && t.Cond == b)) {
		return true
	}
	if t.Op == ir.TermRet && t.HasVal && ((liveA && t.A == a) || (liveB && t.A == b)) {
		return true
	}
	return false
}

// Static is a fixed per-site prediction vector, the output of any static or
// semi-static strategy.
type Static struct {
	Strategy string
	Preds    []ir.Prediction
}

// Score evaluates the vector against observed outcome counts: a site
// predicted taken contributes its not-taken count to the misses, and vice
// versa. Sites without a prediction default to not-taken.
func (s *Static) Score(c *trace.Counts) Result {
	r := Result{Name: s.Strategy}
	for site := range c.Taken {
		taken := site < len(s.Preds) && s.Preds[site] == ir.PredTaken
		if taken {
			r.Misses += c.NotTaken[site]
		} else {
			r.Misses += c.Taken[site]
		}
		r.Total += c.Taken[site] + c.NotTaken[site]
	}
	return r
}

// AlwaysTaken is Smith's simplest strategy.
func AlwaysTaken(nSites int) *Static {
	s := &Static{Strategy: "always taken", Preds: make([]ir.Prediction, nSites)}
	for i := range s.Preds {
		s.Preds[i] = ir.PredTaken
	}
	return s
}

// AlwaysNotTaken predicts fall-through everywhere.
func AlwaysNotTaken(nSites int) *Static {
	s := &Static{Strategy: "always not taken", Preds: make([]ir.Prediction, nSites)}
	for i := range s.Preds {
		s.Preds[i] = ir.PredNotTaken
	}
	return s
}

// BackwardTaken is the classic BTFNT heuristic adapted to an IR without a
// linear address layout: a back edge (target dominates the branch) is
// "backward" and predicted taken; a branch with exactly one loop-exit edge
// predicts the staying side, because a layout-directed compiler would have
// made the loop continuation the fall-through/backward direction; all other
// branches predict not-taken.
func BackwardTaken(features []SiteFeatures) *Static {
	s := &Static{Strategy: "backward taken", Preds: make([]ir.Prediction, len(features))}
	for i, ft := range features {
		if ft.Switch {
			continue // PredNone: two-way heuristics do not cover switches
		}
		switch {
		case ft.TakenBack && !ft.ElseBack:
			s.Preds[i] = ir.PredTaken
		case ft.ElseBack && !ft.TakenBack:
			s.Preds[i] = ir.PredNotTaken
		case ft.InLoop && ft.TakenExits && !ft.ElseExits:
			s.Preds[i] = ir.PredNotTaken
		case ft.InLoop && ft.ElseExits && !ft.TakenExits:
			s.Preds[i] = ir.PredTaken
		default:
			s.Preds[i] = ir.PredNotTaken
		}
	}
	return s
}

// opcodePrediction is Smith's opcode heuristic adapted to BL's compare
// opcodes: equality and less-than style tests are predicted false (their
// taken side is usually the rare case: bound checks, sentinel tests),
// inequality and greater-than style tests are predicted true. The second
// return value reports applicability.
func opcodePrediction(op ir.Op) (ir.Prediction, bool) {
	switch op {
	case ir.OpEqI, ir.OpEqF, ir.OpLtI, ir.OpLtF, ir.OpLeI, ir.OpLeF:
		return ir.PredNotTaken, true
	case ir.OpNeI, ir.OpNeF, ir.OpGtI, ir.OpGtF, ir.OpGeI, ir.OpGeF:
		return ir.PredTaken, true
	}
	return ir.PredNone, false
}

// OpcodeStatic predicts purely from the comparison opcode, falling back to
// not-taken.
func OpcodeStatic(features []SiteFeatures) *Static {
	s := &Static{Strategy: "opcode", Preds: make([]ir.Prediction, len(features))}
	for i, ft := range features {
		if ft.Switch {
			continue
		}
		if p, ok := opcodePrediction(ft.CmpOp); ok {
			s.Preds[i] = p
		} else {
			s.Preds[i] = ir.PredNotTaken
		}
	}
	return s
}

// BallLarus implements the [BL93] heuristic scheme. As in the original
// paper, loop branches (back edges and loop exits) are covered by the loop
// heuristic first; the remaining non-loop branches take the first
// applicable heuristic in the order Krall reports as most successful —
// Pointer, Call, Opcode, Return, Store, Guard — with a not-taken fallback.
// The Pointer heuristic never applies in BL (no pointer comparisons).
func BallLarus(features []SiteFeatures) *Static {
	s := &Static{Strategy: "ball-larus", Preds: make([]ir.Prediction, len(features))}
	for i := range features {
		if features[i].Switch {
			continue
		}
		s.Preds[i] = ballLarusSite(&features[i])
	}
	return s
}

func ballLarusSite(ft *SiteFeatures) ir.Prediction {
	// Loop: predict that the loop branch is taken — prefer the back edge,
	// otherwise avoid leaving the loop. In BL93 loop branches are handled
	// before the ordered non-loop heuristics.
	if ft.TakenBack != ft.ElseBack {
		if ft.TakenBack {
			return ir.PredTaken
		}
		return ir.PredNotTaken
	}
	if ft.InLoop && ft.TakenExits != ft.ElseExits {
		if ft.TakenExits {
			return ir.PredNotTaken
		}
		return ir.PredTaken
	}
	// Call: avoid branches to blocks which call a subroutine.
	if ft.TakenCall != ft.ElseCall {
		if ft.TakenCall {
			return ir.PredNotTaken
		}
		return ir.PredTaken
	}
	// Opcode.
	if p, ok := opcodePrediction(ft.CmpOp); ok {
		return p
	}
	// Return: avoid branches to blocks which return.
	if ft.TakenRet != ft.ElseRet {
		if ft.TakenRet {
			return ir.PredNotTaken
		}
		return ir.PredTaken
	}
	// Store: avoid branches to blocks which store.
	if ft.TakenStore != ft.ElseStore {
		if ft.TakenStore {
			return ir.PredNotTaken
		}
		return ir.PredTaken
	}
	// Guard: branch to a block which uses the operands of the branch.
	if ft.TakenUses != ft.ElseUses {
		if ft.TakenUses {
			return ir.PredTaken
		}
		return ir.PredNotTaken
	}
	return ir.PredNotTaken
}

// StaticHeuristic wraps a per-site prediction vector produced by the
// analysis package's static prediction engine (Dempster–Shafer combined
// Ball–Larus heuristics with SCCP-decided sites overridden). The analysis
// package cannot be imported from here (it depends on statemachine, which
// depends on this package), so callers pass the finished vector.
func StaticHeuristic(preds []ir.Prediction) *Static {
	return &Static{Strategy: "static heuristic", Preds: append([]ir.Prediction(nil), preds...)}
}
