package predict

import (
	"strings"
	"testing"
)

func TestCombiningTracksBetterComponent(t *testing.T) {
	// Branch 0 alternates (two-level wins, 2-bit loses); branch 1 is
	// near-always-taken with rare flips (2-bit fine). The combiner must
	// approach the better component on each.
	mk := func() *Combining {
		return NewCombining(NewTwoBit(4), NewTwoLevel(PaperTwoLevel()), 4)
	}
	comb := &Eval{P: mk()}
	twoBit := &Eval{P: NewTwoBit(4)}
	twoLevel := &Eval{P: NewTwoLevel(PaperTwoLevel())}
	t0, t1 := term(0), term(1)
	x := uint32(3)
	for i := 0; i < 20000; i++ {
		o0 := i%2 == 0
		x = x*1664525 + 1013904223
		o1 := x%64 != 0
		for _, e := range []*Eval{comb, twoBit, twoLevel} {
			e.Branch(t0, o0)
			e.Branch(t1, o1)
		}
	}
	best := twoBit.Rate()
	if twoLevel.Rate() < best {
		best = twoLevel.Rate()
	}
	if comb.Rate() > best+1.0 {
		t.Fatalf("combining %.2f%% much worse than best component %.2f%%", comb.Rate(), best)
	}
	// It must clearly beat the worse component (2-bit dies on alternation).
	if comb.Rate() > twoBit.Rate()-5 {
		t.Fatalf("combining %.2f%% did not beat 2-bit %.2f%%", comb.Rate(), twoBit.Rate())
	}
}

func TestCombiningResetAndName(t *testing.T) {
	c := NewCombining(NewLastDirection(2), NewTwoBit(2), 2)
	for i := 0; i < 50; i++ {
		c.Update(0, true)
	}
	if !c.Predict(0) {
		t.Fatal("did not learn taken")
	}
	c.Reset()
	if c.Predict(0) {
		t.Fatal("reset did not clear state")
	}
	if !strings.Contains(c.Name(), "combining") {
		t.Fatalf("name: %s", c.Name())
	}
}

func TestCombiningChooserOnlyTrainsOnDisagreement(t *testing.T) {
	a := NewLastDirection(1)
	b := NewLastDirection(1)
	c := NewCombining(a, b, 1)
	before := c.chooser[0]
	// Identical components always agree: the chooser must never move.
	for i := 0; i < 100; i++ {
		c.Update(0, i%3 == 0)
	}
	if c.chooser[0] != before {
		t.Fatal("chooser moved despite permanent agreement")
	}
}
