// Package predict implements every branch prediction strategy the paper
// evaluates (section 2 and Table 1): Smith's static heuristics and the
// Ball–Larus heuristic chain, the dynamic last-direction / 2-bit-counter /
// two-level-adaptive predictors, and the semi-static profile, loop, and
// correlation strategies, together with the evaluation engine that scores
// them over a branch trace.
package predict

import (
	"fmt"

	"repro/internal/ir"
)

// Predictor is a dynamic branch predictor simulated over the trace: Predict
// is consulted before each branch, Update is told the real outcome
// afterwards. Predictors are addressed by bare branch site ID, so they can
// be driven from a live interpreter hook or from a replayed trace alike.
type Predictor interface {
	// Name identifies the strategy in result tables.
	Name() string
	// Predict returns the predicted direction for the branch site.
	Predict(site int32) bool
	// Update trains the predictor with the actual outcome.
	Update(site int32, taken bool)
	// Reset restores the initial state.
	Reset()
}

// Eval runs a dynamic predictor as a trace.Collector and accumulates its
// misprediction counts.
type Eval struct {
	P      Predictor
	Misses uint64
	Total  uint64
}

// Branch implements trace.Collector.
func (e *Eval) Branch(t *ir.Term, taken bool) { e.RecordBranch(t.Site, taken) }

// RecordBranch implements trace.SiteCollector.
func (e *Eval) RecordBranch(site int32, taken bool) {
	if e.P.Predict(site) != taken {
		e.Misses++
	}
	e.Total++
	e.P.Update(site, taken)
}

// Rate is the misprediction rate in percent.
func (e *Eval) Rate() float64 { return pct(e.Misses, e.Total) }

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// LastDirection predicts that a branch repeats its previous outcome
// (Smith's strategy 1). Unseen branches predict not-taken.
type LastDirection struct {
	last []bool
	seen []bool
}

// NewLastDirection sizes the predictor for nSites branch sites.
func NewLastDirection(nSites int) *LastDirection {
	return &LastDirection{last: make([]bool, nSites), seen: make([]bool, nSites)}
}

func (p *LastDirection) Name() string { return "last direction" }

func (p *LastDirection) Predict(site int32) bool { return p.last[site] }

func (p *LastDirection) Update(site int32, taken bool) {
	p.last[site] = taken
	p.seen[site] = true
}

func (p *LastDirection) Reset() {
	for i := range p.last {
		p.last[i] = false
		p.seen[i] = false
	}
}

// TwoBit keeps a saturating two-bit counter per branch (Smith's strategy 2):
// values 2 and 3 predict taken; taken increments, not-taken decrements.
// Counters start at weakly-not-taken (1).
type TwoBit struct {
	ctr []uint8
}

// NewTwoBit sizes the predictor for nSites branch sites.
func NewTwoBit(nSites int) *TwoBit {
	p := &TwoBit{ctr: make([]uint8, nSites)}
	p.Reset()
	return p
}

func (p *TwoBit) Name() string { return "2 bit counter" }

func (p *TwoBit) Predict(site int32) bool { return p.ctr[site] >= 2 }

func (p *TwoBit) Update(site int32, taken bool) {
	c := p.ctr[site]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.ctr[site] = c
}

func (p *TwoBit) Reset() {
	for i := range p.ctr {
		p.ctr[i] = 1
	}
}

// Scope selects how a two-level predictor's first or second level is
// shared, covering the nine [YN93] combinations (GA*, SA*, PA* crossed with
// *g, *s, *p).
type Scope uint8

const (
	// ScopeGlobal uses one shared structure.
	ScopeGlobal Scope = iota
	// ScopeSet hashes branches into a fixed number of sets.
	ScopeSet
	// ScopePerBranch gives every branch (modulo table capacity) its own
	// structure.
	ScopePerBranch
)

func (s Scope) String() string {
	switch s {
	case ScopeGlobal:
		return "global"
	case ScopeSet:
		return "set"
	case ScopePerBranch:
		return "per-branch"
	}
	return fmt.Sprintf("scope(%d)", uint8(s))
}

// TwoLevelConfig describes a two-level adaptive predictor [YN92, YN93]:
// first-level history registers of HistBits bits, second-level pattern
// tables of two-bit counters indexed by the history value.
type TwoLevelConfig struct {
	// HistScope selects global / set / per-branch history registers.
	HistScope Scope
	// HistEntries is the number of history registers for ScopeSet and
	// ScopePerBranch (branches are hashed modulo this; aliasing is the
	// hardware cost the paper's semi-static scheme avoids).
	HistEntries int
	// HistBits is the history register length (the paper uses 9).
	HistBits int
	// PatScope selects global / set / per-branch pattern tables.
	PatScope Scope
	// PatEntries is the number of pattern tables for ScopeSet/ScopePerBranch.
	PatEntries int
}

// PaperTwoLevel is the configuration read from the paper's Table 1 row
// "two level 4K bit": 1K per-branch 9-bit history registers with a shared
// pattern table (a PAg predictor; OCR note b in DESIGN.md).
func PaperTwoLevel() TwoLevelConfig {
	return TwoLevelConfig{
		HistScope:   ScopePerBranch,
		HistEntries: 1024,
		HistBits:    9,
		PatScope:    ScopeGlobal,
	}
}

// TwoLevel is a two-level adaptive predictor.
type TwoLevel struct {
	cfg  TwoLevelConfig
	hist []uint32
	// pats[tableIndex][historyValue] is a 2-bit counter.
	pats [][]uint8
	mask uint32
}

// NewTwoLevel builds the predictor; invalid configurations panic since they
// are programming errors in experiment setup.
func NewTwoLevel(cfg TwoLevelConfig) *TwoLevel {
	if cfg.HistBits < 1 || cfg.HistBits > 20 {
		panic(fmt.Sprintf("predict: history bits %d out of range", cfg.HistBits))
	}
	nHist := 1
	if cfg.HistScope != ScopeGlobal {
		if cfg.HistEntries < 1 {
			panic("predict: HistEntries required for non-global history")
		}
		nHist = cfg.HistEntries
	}
	nPat := 1
	if cfg.PatScope != ScopeGlobal {
		if cfg.PatEntries < 1 {
			panic("predict: PatEntries required for non-global pattern tables")
		}
		nPat = cfg.PatEntries
	}
	p := &TwoLevel{
		cfg:  cfg,
		hist: make([]uint32, nHist),
		pats: make([][]uint8, nPat),
		mask: (1 << uint(cfg.HistBits)) - 1,
	}
	for i := range p.pats {
		p.pats[i] = make([]uint8, 1<<uint(cfg.HistBits))
		for j := range p.pats[i] {
			p.pats[i][j] = 1
		}
	}
	return p
}

func (p *TwoLevel) Name() string {
	return fmt.Sprintf("two level %v/%v %d-bit", p.cfg.HistScope, p.cfg.PatScope, p.cfg.HistBits)
}

func (p *TwoLevel) histIdx(site int32) int {
	if p.cfg.HistScope == ScopeGlobal {
		return 0
	}
	return int(uint32(site) % uint32(len(p.hist)))
}

func (p *TwoLevel) patIdx(site int32) int {
	if p.cfg.PatScope == ScopeGlobal {
		return 0
	}
	return int(uint32(site) % uint32(len(p.pats)))
}

func (p *TwoLevel) Predict(site int32) bool {
	h := p.hist[p.histIdx(site)]
	return p.pats[p.patIdx(site)][h] >= 2
}

func (p *TwoLevel) Update(site int32, taken bool) {
	hi := p.histIdx(site)
	h := p.hist[hi]
	tab := p.pats[p.patIdx(site)]
	c := tab[h]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	tab[h] = c
	var bit uint32
	if taken {
		bit = 1
	}
	p.hist[hi] = (h<<1 | bit) & p.mask
}

func (p *TwoLevel) Reset() {
	for i := range p.hist {
		p.hist[i] = 0
	}
	for _, tab := range p.pats {
		for j := range tab {
			tab[j] = 1
		}
	}
}

// GShare is the classic global-history predictor that XORs the history with
// the branch address before indexing a shared counter table. It postdates
// the paper and is included as an extension baseline.
type GShare struct {
	bits uint
	ghr  uint32
	tab  []uint8
}

// NewGShare builds a gshare predictor with 2^bits counters.
func NewGShare(bits int) *GShare {
	if bits < 1 || bits > 24 {
		panic(fmt.Sprintf("predict: gshare bits %d out of range", bits))
	}
	p := &GShare{bits: uint(bits), tab: make([]uint8, 1<<uint(bits))}
	p.Reset()
	return p
}

func (p *GShare) Name() string { return fmt.Sprintf("gshare %d-bit", p.bits) }

func (p *GShare) idx(site int32) uint32 {
	return (p.ghr ^ uint32(site)) & (uint32(len(p.tab)) - 1)
}

func (p *GShare) Predict(site int32) bool { return p.tab[p.idx(site)] >= 2 }

func (p *GShare) Update(site int32, taken bool) {
	i := p.idx(site)
	c := p.tab[i]
	var bit uint32
	if taken {
		bit = 1
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.tab[i] = c
	p.ghr = p.ghr<<1 | bit
}

func (p *GShare) Reset() {
	p.ghr = 0
	for i := range p.tab {
		p.tab[i] = 1
	}
}
