package predict

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/trace"
)

func term(site int32) *ir.Term {
	return &ir.Term{Op: ir.TermBr, Site: site, Orig: site}
}

func feedString(c trace.Collector, site int32, outcomes string) {
	t := term(site)
	for _, ch := range outcomes {
		c.Branch(t, ch == '1')
	}
}

func evalString(p Predictor, site int32, outcomes string) *Eval {
	e := &Eval{P: p}
	feedString(e, site, outcomes)
	return e
}

func TestLastDirection(t *testing.T) {
	// After the first event, last-direction mispredicts exactly at each
	// direction change.
	e := evalString(NewLastDirection(1), 0, "1110011")
	// initial pred not-taken: events 1(miss),1,1,0(miss),0,1(miss),1 → 3
	if e.Misses != 3 || e.Total != 7 {
		t.Fatalf("misses=%d total=%d", e.Misses, e.Total)
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	// A single anomaly in a long taken run costs one miss, not two.
	p := NewTwoBit(1)
	e := &Eval{P: p}
	feedString(e, 0, "111111")
	missesBefore := e.Misses
	feedString(e, 0, "0")
	feedString(e, 0, "1111")
	// the "0" is one miss; the next "1" is still predicted taken.
	if e.Misses != missesBefore+1 {
		t.Fatalf("misses=%d, want %d (hysteresis)", e.Misses, missesBefore+1)
	}
	// Last-direction pays twice on the same sequence.
	e2 := evalString(NewLastDirection(1), 0, "11111101111")
	if e2.Misses != missesBefore+2 {
		t.Fatalf("last-direction misses=%d, want %d", e2.Misses, missesBefore+2)
	}
}

func TestTwoBitSaturation(t *testing.T) {
	p := NewTwoBit(1)
	for i := 0; i < 100; i++ {
		p.Update(0, true)
	}
	if !p.Predict(0) {
		t.Fatal("saturated-up counter must predict taken")
	}
	p.Update(0, false)
	if !p.Predict(0) {
		t.Fatal("one not-taken must not flip a saturated counter")
	}
	p.Update(0, false)
	if p.Predict(0) {
		t.Fatal("two not-taken must flip it")
	}
}

func TestTwoLevelLearnsAlternation(t *testing.T) {
	// An alternating branch defeats a 2-bit counter but a two-level
	// predictor learns it perfectly after warm-up.
	p := NewTwoLevel(PaperTwoLevel())
	e := &Eval{P: p}
	const n = 2000
	for i := 0; i < n; i++ {
		e.Branch(term(0), i%2 == 0)
	}
	if e.Rate() > 2.0 {
		t.Fatalf("two-level on alternation: %.2f%%, want near 0", e.Rate())
	}
	tb := &Eval{P: NewTwoBit(1)}
	for i := 0; i < n; i++ {
		tb.Branch(term(0), i%2 == 0)
	}
	if tb.Rate() < 40 {
		t.Fatalf("2-bit on alternation: %.2f%%, should be terrible", tb.Rate())
	}
}

func TestTwoLevelCorrelation(t *testing.T) {
	// Branch 1 copies branch 0's outcome; a global-history predictor
	// exploits it.
	p := NewTwoLevel(TwoLevelConfig{
		HistScope: ScopeGlobal, HistBits: 4,
		PatScope: ScopePerBranch, PatEntries: 16,
	})
	e := &Eval{P: p}
	x := uint32(99)
	var miss1, tot1 uint64
	for i := 0; i < 5000; i++ {
		x = x*1664525 + 1013904223
		o := x&0x8000 != 0
		e.Branch(term(0), o)
		before := e.Misses
		e.Branch(term(1), o)
		miss1 += e.Misses - before
		tot1++
	}
	if r := 100 * float64(miss1) / float64(tot1); r > 5 {
		t.Fatalf("correlated branch rate = %.2f%%, want < 5%%", r)
	}
}

func TestTwoLevelAliasing(t *testing.T) {
	// Per-branch scope with 1 entry forces both branches onto one history
	// register — a smoke test that set hashing is exercised.
	p := NewTwoLevel(TwoLevelConfig{
		HistScope: ScopePerBranch, HistEntries: 1, HistBits: 2,
		PatScope: ScopeSet, PatEntries: 1,
	})
	e := &Eval{P: p}
	for i := 0; i < 100; i++ {
		e.Branch(term(0), true)
		e.Branch(term(17), false)
	}
	if e.Total != 200 {
		t.Fatal("eval total wrong")
	}
}

func TestGShare(t *testing.T) {
	p := NewGShare(12)
	e := &Eval{P: p}
	for i := 0; i < 4000; i++ {
		e.Branch(term(3), i%2 == 0)
	}
	if e.Rate() > 2 {
		t.Fatalf("gshare on alternation: %.2f%%", e.Rate())
	}
	p.Reset()
	if p.Predict(3) {
		t.Fatal("reset gshare must predict not-taken initially")
	}
}

func TestResetRestores(t *testing.T) {
	preds := []Predictor{
		NewLastDirection(4),
		NewTwoBit(4),
		NewTwoLevel(PaperTwoLevel()),
		NewGShare(8),
	}
	for _, p := range preds {
		for i := 0; i < 50; i++ {
			p.Update(1, true)
		}
		was := p.Predict(1)
		if !was {
			t.Fatalf("%s did not learn taken", p.Name())
		}
		p.Reset()
		if p.Predict(1) {
			t.Fatalf("%s still predicts taken after Reset", p.Name())
		}
	}
}

// compileFeatures compiles a BL snippet and returns its features.
func compileFeatures(t *testing.T, src string) (*ir.Program, []SiteFeatures) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog, Analyze(prog)
}

func TestAnalyzeLoopFeatures(t *testing.T) {
	prog, fts := compileFeatures(t, `
func main() int {
    var s int = 0;
    var i int = 0;
    while i < 10 {
        s = s + i;
        i = i + 1;
    }
    return s;
}`)
	_ = prog
	if len(fts) != 1 {
		t.Fatalf("features = %d, want 1", len(fts))
	}
	ft := fts[0]
	if !ft.InLoop {
		t.Fatal("loop branch not marked in-loop")
	}
	// while-head branch: taken stays in loop, not-taken exits.
	if ft.TakenExits || !ft.ElseExits {
		t.Fatalf("exit flags wrong: %+v", ft)
	}
	if ft.CmpOp != ir.OpLtI {
		t.Fatalf("CmpOp = %v", ft.CmpOp)
	}
}

func TestAnalyzeCallReturnStore(t *testing.T) {
	_, fts := compileFeatures(t, `
var g int;
func helper() int { return 1; }
func main() int {
    var x int = 3;
    if x > 0 {
        g = helper();
    }
    return g;
}`)
	if len(fts) != 1 {
		t.Fatalf("features = %d, want 1", len(fts))
	}
	ft := fts[0]
	if !ft.TakenCall {
		t.Fatal("then-block call not detected")
	}
	if !ft.TakenStore {
		t.Fatal("then-block store not detected")
	}
	if ft.ElseCall || ft.ElseStore {
		t.Fatal("else side should be clean")
	}
}

func TestStaticScore(t *testing.T) {
	c := trace.NewCounts(2)
	// site 0: 90 taken / 10 not; site 1: 5 taken / 95 not.
	for i := 0; i < 90; i++ {
		c.Branch(term(0), true)
	}
	for i := 0; i < 10; i++ {
		c.Branch(term(0), false)
	}
	for i := 0; i < 5; i++ {
		c.Branch(term(1), true)
	}
	for i := 0; i < 95; i++ {
		c.Branch(term(1), false)
	}
	at := AlwaysTaken(2).Score(c)
	if at.Misses != 10+95 || at.Total != 200 {
		t.Fatalf("always taken: %+v", at)
	}
	ant := AlwaysNotTaken(2).Score(c)
	if ant.Misses != 90+5 {
		t.Fatalf("always not taken: %+v", ant)
	}
	prof := ProfileResult(c)
	if prof.Misses != 10+5 || prof.Total != 200 {
		t.Fatalf("profile: %+v", prof)
	}
	ps := ProfileStatic(c)
	if ps.Preds[0] != ir.PredTaken || ps.Preds[1] != ir.PredNotTaken {
		t.Fatalf("profile static preds: %v", ps.Preds)
	}
	if got := ps.Score(c); got.Misses != prof.Misses {
		t.Fatalf("profile static score %d != profile %d", got.Misses, prof.Misses)
	}
}

func TestBallLarusOnRealProgram(t *testing.T) {
	// A loop program where the loop heuristic should dominate: Ball-Larus
	// must beat always-taken on the observed counts.
	prog, err := lang.Compile(`
var sink int;
func main() int {
    var s int = 0;
    for var i int = 0; i < 1000; i = i + 1 {
        if i % 100 == 0 {
            sink = sink + 1;
        }
        s = s + i;
    }
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	fts := Analyze(prog)
	n := len(fts)
	counts := trace.NewCounts(n)
	runProgram(t, prog, counts)
	bl := BallLarus(fts).Score(counts)
	bt := BackwardTaken(fts).Score(counts)
	if bl.Total == 0 {
		t.Fatal("no branches executed")
	}
	// The for-loop branch is the hot one: both heuristics should predict
	// it correctly giving low rates; sanity-bound them.
	if bl.Rate() > 25 {
		t.Fatalf("ball-larus rate %.2f%% too high", bl.Rate())
	}
	if bt.Rate() > 25 {
		t.Fatalf("backward-taken rate %.2f%% too high", bt.Rate())
	}
}

func runProgram(t *testing.T, prog *ir.Program, c trace.Collector) {
	t.Helper()
	m := interp.New(prog)
	m.Hook = c.Branch
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSemiStaticHierarchy(t *testing.T) {
	// A branch alternating T,N,T,N... : profile ≈ 50%, 1-bit loop ≈ 0%.
	n := 1
	c := trace.NewCounts(n)
	lh := profile.NewLocalHistory(n, 1)
	gh := profile.NewGlobalHistory(n, 1)
	multi := trace.Multi{c, lh, gh}
	tm := term(0)
	for i := 0; i < 1000; i++ {
		multi.Branch(tm, i%2 == 0)
	}
	prof := ProfileResult(c)
	loop := LoopResult(lh)
	if prof.Rate() < 45 {
		t.Fatalf("profile on alternation = %.2f%%, want ~50%%", prof.Rate())
	}
	if loop.Rate() > 1 {
		t.Fatalf("1-bit loop on alternation = %.2f%%, want ~0%%", loop.Rate())
	}
	corr := CorrelationResult(gh)
	if corr.Rate() > 1 { // single branch: global history == local history
		t.Fatalf("correlation = %.2f%%", corr.Rate())
	}
	lc, improved := LoopCorrelationResult(lh, gh, c)
	if lc.Rate() > 1 {
		t.Fatalf("loop-correlation = %.2f%%", lc.Rate())
	}
	if !improved[0] {
		t.Fatal("site 0 must be marked improved")
	}
}

func TestLoopCorrelationPicksBest(t *testing.T) {
	// Two branches: site 0 alternates (loop-predictable), site 1 copies
	// site 0 (correlation-predictable via global history but local history
	// ALSO sees alternation here; use a random copy source instead).
	n := 2
	c := trace.NewCounts(n)
	lh := profile.NewLocalHistory(n, 2)
	gh := profile.NewGlobalHistory(n, 1)
	multi := trace.Multi{c, lh, gh}
	x := uint32(7)
	for i := 0; i < 3000; i++ {
		x = x*1664525 + 1013904223
		o := x&0x40000 != 0
		multi.Branch(term(0), o)
		multi.Branch(term(1), o) // copies previous branch
	}
	lc, _ := LoopCorrelationResult(lh, gh, c)
	corr := CorrelationResult(gh)
	loop := LoopResult(lh)
	// Combined must be at least as good as both components.
	if lc.Rate() > corr.Rate()+0.01 && lc.Rate() > loop.Rate()+0.01 {
		t.Fatalf("loop-correlation %.2f%% worse than both parts (%.2f%%, %.2f%%)",
			lc.Rate(), loop.Rate(), corr.Rate())
	}
}

func TestNames(t *testing.T) {
	for _, p := range []Predictor{
		NewLastDirection(1), NewTwoBit(1), NewTwoLevel(PaperTwoLevel()), NewGShare(4),
	} {
		if p.Name() == "" {
			t.Fatal("empty name")
		}
	}
	r := Result{Name: "x", Misses: 1, Total: 8}
	if !strings.Contains(r.String(), "12.50%") {
		t.Fatalf("result string: %s", r.String())
	}
}

func TestTwoLevelConfigValidation(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("want panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewTwoLevel(TwoLevelConfig{HistBits: 0}) })
	mustPanic(func() { NewTwoLevel(TwoLevelConfig{HistBits: 4, HistScope: ScopeSet}) })
	mustPanic(func() {
		NewTwoLevel(TwoLevelConfig{HistBits: 4, PatScope: ScopePerBranch})
	})
	mustPanic(func() { NewGShare(0) })
}
