package predict

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Result is one strategy's score over one workload.
type Result struct {
	Name   string
	Misses uint64
	Total  uint64
}

// Rate is the misprediction rate in percent.
func (r Result) Rate() float64 { return pct(r.Misses, r.Total) }

func (r Result) String() string {
	return fmt.Sprintf("%s: %.2f%% (%d/%d)", r.Name, r.Rate(), r.Misses, r.Total)
}

// ProfileResult scores the plain profile strategy (predict each branch's
// majority direction, trained and evaluated on the same trace, exactly as
// the paper's Table 1 does).
func ProfileResult(c *trace.Counts) Result {
	r := Result{Name: "profile"}
	for s := range c.Taken {
		p := profile.Pair{Taken: c.Taken[s], NotTaken: c.NotTaken[s]}
		r.Misses += p.Misses()
		r.Total += p.Total()
	}
	return r
}

// ProfileStatic converts trace counts into the per-site majority prediction
// vector (the input the replicator starts from).
func ProfileStatic(c *trace.Counts) *Static {
	s := &Static{Strategy: "profile", Preds: make([]ir.Prediction, len(c.Taken))}
	for site := range c.Taken {
		if c.Taken[site] > c.NotTaken[site] {
			s.Preds[site] = ir.PredTaken
		} else {
			s.Preds[site] = ir.PredNotTaken
		}
	}
	return s
}

// LoopResult scores the k-bit loop (local history) strategy: each branch's
// k-bit pattern table predicts per-pattern majority. Warm-up events per
// site (the first k) are excluded, matching how the tables are built.
func LoopResult(h *profile.LocalHistory) Result {
	r := Result{Name: fmt.Sprintf("%d bit loop", h.K)}
	for s := 0; s < h.NumSites(); s++ {
		m, t := h.SiteMisses(int32(s))
		r.Misses += m
		r.Total += t
	}
	return r
}

// CorrelationResult scores the k-bit correlation (global history) strategy.
func CorrelationResult(h *profile.GlobalHistory) Result {
	r := Result{Name: fmt.Sprintf("%d bit correlation", h.K)}
	for s := 0; s < h.NumSites(); s++ {
		m, t := h.SiteMisses(int32(s))
		r.Misses += m
		r.Total += t
	}
	return r
}

// LoopCorrelationResult scores the paper's combined strategy: for every
// branch take whichever of the loop and correlation strategies has the
// lower misprediction rate on that branch. It also returns, per site,
// whether the combination improves on plain profile prediction (the
// "improved branches" row of Table 1).
func LoopCorrelationResult(local *profile.LocalHistory, global *profile.GlobalHistory, c *trace.Counts) (Result, []bool) {
	n := local.NumSites()
	improved := make([]bool, n)
	r := Result{Name: "loop-correlation"}
	for s := 0; s < n; s++ {
		lm, lt := local.SiteMisses(int32(s))
		gm, gt := global.SiteMisses(int32(s))
		m, t := lm, lt
		if rate(gm, gt) < rate(lm, lt) {
			m, t = gm, gt
		}
		r.Misses += m
		r.Total += t
		prof := profile.Pair{Taken: c.Taken[s], NotTaken: c.NotTaken[s]}
		if t > 0 && prof.Total() > 0 && rate(m, t) < rate(prof.Misses(), prof.Total()) {
			improved[s] = true
		}
	}
	return r, improved
}

func rate(m, t uint64) float64 {
	if t == 0 {
		return 0
	}
	return float64(m) / float64(t)
}
