package predict

import (
	"repro/internal/ir"
	"repro/internal/trace"
)

// StaticScore folds a fixed per-site prediction vector over a branch
// stream: the replay equivalent of annotating a program clone and
// measuring it live, since annotation only sets Term.Pred and leaves the
// branch stream untouched. Sites beyond the vector and sites predicted
// PredNone are ignored. It is order-insensitive, so it shards across
// partitioned replay.
type StaticScore struct {
	Preds []ir.Prediction
	// Predicted counts events whose site carries a prediction;
	// Mispredicted those where the prediction missed.
	Predicted    uint64
	Mispredicted uint64
}

// Branch implements trace.Collector.
func (s *StaticScore) Branch(t *ir.Term, taken bool) { s.RecordRun(t.Site, taken, 1) }

// RecordBranch implements trace.SiteCollector.
func (s *StaticScore) RecordBranch(site int32, taken bool) { s.RecordRun(site, taken, 1) }

// RecordRun implements trace.RunCollector.
func (s *StaticScore) RecordRun(site int32, taken bool, n uint64) {
	if int(site) >= len(s.Preds) {
		return
	}
	p := s.Preds[site]
	if p == ir.PredNone {
		return
	}
	s.Predicted += n
	if (p == ir.PredTaken) != taken {
		s.Mispredicted += n
	}
}

// NewShard implements trace.Sharded: shards share the (read-only)
// prediction vector and accumulate their own counters.
func (s *StaticScore) NewShard() trace.RunCollector { return &StaticScore{Preds: s.Preds} }

// Merge implements trace.Sharded.
func (s *StaticScore) Merge(shard trace.RunCollector) {
	o := shard.(*StaticScore)
	s.Predicted += o.Predicted
	s.Mispredicted += o.Mispredicted
}
