package predict

import (
	"fmt"

	"repro/internal/ir"
)

// Combining is McFarling's combining predictor (1993, contemporaneous with
// the paper): two component predictors plus a per-branch two-bit chooser
// that learns which component to trust. It is included as an extension
// baseline — the hardware answer to the same accuracy problem the paper
// attacks at compile time.
type Combining struct {
	A, B    Predictor
	chooser []uint8
}

// NewCombining builds a combining predictor over two components with
// nSites chooser entries.
func NewCombining(a, b Predictor, nSites int) *Combining {
	c := &Combining{A: a, B: b, chooser: make([]uint8, nSites)}
	c.Reset()
	return c
}

func (c *Combining) Name() string {
	return fmt.Sprintf("combining(%s, %s)", c.A.Name(), c.B.Name())
}

func (c *Combining) Predict(t *ir.Term) bool {
	if c.chooser[t.Site] >= 2 {
		return c.B.Predict(t)
	}
	return c.A.Predict(t)
}

func (c *Combining) Update(t *ir.Term, taken bool) {
	pa := c.A.Predict(t) == taken
	pb := c.B.Predict(t) == taken
	// The chooser trains only when the components disagree.
	if pa != pb {
		ch := c.chooser[t.Site]
		if pb {
			if ch < 3 {
				ch++
			}
		} else if ch > 0 {
			ch--
		}
		c.chooser[t.Site] = ch
	}
	c.A.Update(t, taken)
	c.B.Update(t, taken)
}

func (c *Combining) Reset() {
	c.A.Reset()
	c.B.Reset()
	for i := range c.chooser {
		c.chooser[i] = 1
	}
}
