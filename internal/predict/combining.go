package predict

import "fmt"

// Combining is McFarling's combining predictor (1993, contemporaneous with
// the paper): two component predictors plus a per-branch two-bit chooser
// that learns which component to trust. It is included as an extension
// baseline — the hardware answer to the same accuracy problem the paper
// attacks at compile time.
type Combining struct {
	A, B    Predictor
	chooser []uint8
}

// NewCombining builds a combining predictor over two components with
// nSites chooser entries.
func NewCombining(a, b Predictor, nSites int) *Combining {
	c := &Combining{A: a, B: b, chooser: make([]uint8, nSites)}
	c.Reset()
	return c
}

func (c *Combining) Name() string {
	return fmt.Sprintf("combining(%s, %s)", c.A.Name(), c.B.Name())
}

func (c *Combining) Predict(site int32) bool {
	if c.chooser[site] >= 2 {
		return c.B.Predict(site)
	}
	return c.A.Predict(site)
}

func (c *Combining) Update(site int32, taken bool) {
	pa := c.A.Predict(site) == taken
	pb := c.B.Predict(site) == taken
	// The chooser trains only when the components disagree.
	if pa != pb {
		ch := c.chooser[site]
		if pb {
			if ch < 3 {
				ch++
			}
		} else if ch > 0 {
			ch--
		}
		c.chooser[site] = ch
	}
	c.A.Update(site, taken)
	c.B.Update(site, taken)
}

func (c *Combining) Reset() {
	c.A.Reset()
	c.B.Reset()
	for i := range c.chooser {
		c.chooser[i] = 1
	}
}
