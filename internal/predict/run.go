package predict

// Run-aware evaluation: dynamic predictors whose state saturates under a
// run of identical outcomes implement RunUpdater, and Eval uses it to
// score a whole RLE run in O(1) (plus a bounded transient). The exactness
// argument per predictor family is DESIGN.md §7; bit-identical final
// state and miss counts are pinned by FuzzRunCollectorEquivalence.

// RunUpdater is implemented by predictors that can apply a run of n
// identical outcomes at one site directly, returning the exact number of
// mispredictions the run incurs. The contract is strict: state after
// UpdateRun(s, t, n) must equal state after n Predict+Update rounds.
type RunUpdater interface {
	UpdateRun(site int32, taken bool, n uint64) (misses uint64)
}

// RecordRun implements trace.RunCollector, taking the predictor's
// closed-form path when it has one and replaying the run event-at-a-time
// otherwise (e.g. the Combining meta-predictor, whose selector state
// depends on each step).
func (e *Eval) RecordRun(site int32, taken bool, n uint64) {
	if r, ok := e.P.(RunUpdater); ok {
		e.Misses += r.UpdateRun(site, taken, n)
		e.Total += n
		return
	}
	for ; n > 0; n-- {
		e.RecordBranch(site, taken)
	}
}

// UpdateRun implements RunUpdater: only the first event of a run can
// miss, after which last[site] equals the run direction.
func (p *LastDirection) UpdateRun(site int32, taken bool, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	var m uint64
	if p.last[site] != taken {
		m = 1
	}
	p.last[site] = taken
	p.seen[site] = true
	return m
}

// UpdateRun implements RunUpdater: a saturating two-bit counter at c
// climbing under taken outcomes mispredicts while it is still below 2 —
// max(0, 2-c) times — and falling under not-taken outcomes mispredicts
// while it is at 2 or above — max(0, c-1) times — both capped at n; the
// final counter is the start moved n steps and clamped to [0, 3].
func (p *TwoBit) UpdateRun(site int32, taken bool, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	c := uint64(p.ctr[site])
	var m uint64
	if taken {
		if c < 2 {
			m = 2 - c
		}
		c += n
		if c > 3 {
			c = 3
		}
	} else {
		if c >= 2 {
			m = c - 1
		}
		if c > n {
			c -= n
		} else {
			c = 0
		}
	}
	if m > n {
		m = n
	}
	p.ctr[site] = uint8(c)
	return m
}

// UpdateRun implements RunUpdater: after at most HistBits steps of the
// same outcome the history register holds the all-ones (or all-zeros)
// pattern, and after at most 3 more the counter it indexes saturates.
// That state is absorbing — it predicts the run direction and every
// update maps it to itself — so the remainder of the run contributes no
// misses and no state change.
func (p *TwoLevel) UpdateRun(site int32, taken bool, n uint64) uint64 {
	hi := p.histIdx(site)
	tab := p.pats[p.patIdx(site)]
	var steady uint32
	var sat uint8
	if taken {
		steady = p.mask
		sat = 3
	}
	var m uint64
	for ; n > 0; n-- {
		if p.hist[hi] == steady && tab[steady] == sat {
			break
		}
		if p.Predict(site) != taken {
			m++
		}
		p.Update(site, taken)
	}
	return m
}

// UpdateRun implements RunUpdater: once the index-forming low bits of the
// global history register are all-ones (or all-zeros) the run indexes one
// fixed counter, and once that counter saturates the predictions all hit
// and the counter no longer moves. Only the register keeps shifting, and
// its final value has a closed form: n more identical bits shifted in.
func (p *GShare) UpdateRun(site int32, taken bool, n uint64) uint64 {
	idxMask := uint32(len(p.tab) - 1)
	var steadyLow uint32
	var sat uint8
	if taken {
		steadyLow = idxMask
		sat = 3
	}
	var m uint64
	for ; n > 0; n-- {
		if p.ghr&idxMask == steadyLow && p.tab[(p.ghr^uint32(site))&idxMask] == sat {
			break
		}
		if p.Predict(site) != taken {
			m++
		}
		p.Update(site, taken)
	}
	if n == 0 {
		return m
	}
	if n >= 32 {
		if taken {
			p.ghr = ^uint32(0)
		} else {
			p.ghr = 0
		}
	} else {
		p.ghr <<= uint(n)
		if taken {
			p.ghr |= 1<<uint(n) - 1
		}
	}
	return m
}
