package ssa

import (
	"math"

	"repro/internal/ir"
)

// Optimize runs the pass pipeline on every function: copy propagation and
// trivial-phi collapse to a fixpoint, constant folding, then dead-code
// elimination. Passes never touch anything trace-observable: branches are
// not folded or retargeted, and trapping instructions (division, modulo,
// float-to-int, element access) survive even when their results are unused.
func Optimize(p *Program) {
	for _, f := range p.Funcs {
		optimizeFunc(f)
	}
}

func optimizeFunc(f *Func) {
	for i := 0; i < 16; i++ {
		c1 := simplify(f)
		c2 := constFold(f)
		if !c1 && !c2 {
			break
		}
	}
	deadCode(f)
}

// chase resolves v through copy/mov chains to the underlying value.
func chase(v *Value) *Value {
	for i := 0; i < 1000; i++ {
		if v.Op == OpCopy || v.Op == FromIR(ir.OpMov) {
			v = v.Args[0]
			continue
		}
		return v
	}
	return v // defensive: cyclic copies cannot arise pre-destruction
}

// simplify collapses trivial phis into copies and forwards all operands
// through copy chains. Returns whether anything changed.
func simplify(f *Func) bool {
	changed := false
	for pass := 0; ; pass++ {
		round := false
		for _, b := range f.Blocks {
			for _, phi := range b.Phis {
				if phi.Op != OpPhi {
					continue
				}
				if x := trivialPhi(phi); x != nil {
					phi.Op = OpCopy
					phi.Args = []*Value{x}
					round = true
				}
			}
		}
		for _, b := range f.Blocks {
			for _, v := range b.Phis {
				round = forwardArgs(v) || round
			}
			for _, v := range b.Code {
				round = forwardArgs(v) || round
			}
			if b.Term.Cond != nil {
				if r := chase(b.Term.Cond); r != b.Term.Cond {
					b.Term.Cond = r
					round = true
				}
			}
			if b.Term.Val != nil {
				if r := chase(b.Term.Val); r != b.Term.Val {
					b.Term.Val = r
					round = true
				}
			}
		}
		if !round {
			return changed
		}
		changed = true
	}
}

// trivialPhi returns the unique non-self argument of a phi, or nil when the
// phi merges genuinely distinct values.
func trivialPhi(phi *Value) *Value {
	var x *Value
	for _, a := range phi.Args {
		a = chase(a)
		if a == phi || a == x {
			continue
		}
		if x != nil {
			return nil
		}
		x = a
	}
	return x
}

func forwardArgs(v *Value) bool {
	if v.Op == OpCopy || v.Op == FromIR(ir.OpMov) {
		return false // keep the chain itself intact; chase skips it
	}
	changed := false
	for i, a := range v.Args {
		if r := chase(a); r != a {
			v.Args[i] = r
			changed = true
		}
	}
	return changed
}

func isConst(v *Value) bool {
	return v.Op == FromIR(ir.OpConstI) || v.Op == FromIR(ir.OpConstF)
}

// constFold evaluates pure operations over constant operands, using exactly
// the interpreter's semantics (two's-complement wrap, IEEE-754 bit
// patterns). Operations that could trap at runtime — division or modulo by
// a zero divisor, float-to-int out of range — are left for the machine so
// the trap surfaces identically. Returns whether anything changed.
func constFold(f *Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, v := range b.Code {
			if v.Op.IsPseudo() {
				continue
			}
			op := v.Op.IR()
			if op.NumSrc() == 0 || op.NumSrc() != len(v.Args) {
				continue
			}
			ready := true
			for _, a := range v.Args {
				if !isConst(a) {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			var av, bv int64
			av = v.Args[0].Imm
			if len(v.Args) == 2 {
				bv = v.Args[1].Imm
			}
			res, kind, ok := fold(op, av, bv)
			if !ok {
				continue
			}
			v.Op = FromIR(kind)
			v.Imm = res
			v.Args = nil
			changed = true
		}
	}
	return changed
}

func f64(bits int64) float64 { return math.Float64frombits(uint64(bits)) }
func fbits(v float64) int64  { return int64(math.Float64bits(v)) }
func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// fold evaluates op over constant bits, mirroring interp.Machine. ok is
// false when the operation is impure, can trap on these operands, or is not
// a foldable value operation.
func fold(op ir.Op, a, b int64) (res int64, kind ir.Op, ok bool) {
	kind = ir.OpConstI
	ok = true
	switch op {
	case ir.OpAddI:
		res = a + b
	case ir.OpSubI:
		res = a - b
	case ir.OpMulI:
		res = a * b
	case ir.OpDivI:
		if b == 0 {
			return 0, 0, false
		}
		if b == -1 && a == math.MinInt64 {
			res = math.MinInt64
		} else {
			res = a / b
		}
	case ir.OpModI:
		if b == 0 {
			return 0, 0, false
		}
		if b == -1 {
			res = 0
		} else {
			res = a % b
		}
	case ir.OpAndI:
		res = a & b
	case ir.OpOrI:
		res = a | b
	case ir.OpXorI:
		res = a ^ b
	case ir.OpShlI:
		res = a << (uint64(b) & 63)
	case ir.OpShrI:
		res = a >> (uint64(b) & 63)
	case ir.OpNegI:
		res = -a
	case ir.OpNotI:
		res = b2i(a == 0)
	case ir.OpAddF:
		res, kind = fbits(f64(a)+f64(b)), ir.OpConstF
	case ir.OpSubF:
		res, kind = fbits(f64(a)-f64(b)), ir.OpConstF
	case ir.OpMulF:
		res, kind = fbits(f64(a)*f64(b)), ir.OpConstF
	case ir.OpDivF:
		res, kind = fbits(f64(a)/f64(b)), ir.OpConstF
	case ir.OpNegF:
		res, kind = fbits(-f64(a)), ir.OpConstF
	case ir.OpEqI:
		res = b2i(a == b)
	case ir.OpNeI:
		res = b2i(a != b)
	case ir.OpLtI:
		res = b2i(a < b)
	case ir.OpLeI:
		res = b2i(a <= b)
	case ir.OpGtI:
		res = b2i(a > b)
	case ir.OpGeI:
		res = b2i(a >= b)
	case ir.OpEqF:
		res = b2i(f64(a) == f64(b))
	case ir.OpNeF:
		res = b2i(f64(a) != f64(b))
	case ir.OpLtF:
		res = b2i(f64(a) < f64(b))
	case ir.OpLeF:
		res = b2i(f64(a) <= f64(b))
	case ir.OpGtF:
		res = b2i(f64(a) > f64(b))
	case ir.OpGeF:
		res = b2i(f64(a) >= f64(b))
	case ir.OpItoF:
		res, kind = fbits(float64(a)), ir.OpConstF
	case ir.OpFtoI:
		v := f64(a)
		if math.IsNaN(v) || v > math.MaxInt64 || v < math.MinInt64 {
			return 0, 0, false
		}
		res = int64(v)
	case ir.OpSqrtF:
		res, kind = fbits(math.Sqrt(f64(a))), ir.OpConstF
	case ir.OpAbsI:
		if a < 0 {
			res = -a
		} else {
			res = a
		}
	case ir.OpAbsF:
		res, kind = fbits(math.Abs(f64(a))), ir.OpConstF
	case ir.OpMinI:
		if a < b {
			res = a
		} else {
			res = b
		}
	case ir.OpMaxI:
		if a > b {
			res = a
		} else {
			res = b
		}
	case ir.OpMinF:
		res, kind = fbits(math.Min(f64(a), f64(b))), ir.OpConstF
	case ir.OpMaxF:
		res, kind = fbits(math.Max(f64(a), f64(b))), ir.OpConstF
	default:
		return 0, 0, false
	}
	return res, kind, ok
}

// deadCode removes values whose results are unused and whose execution is
// unobservable. Stores, prints, and calls are always kept; so are
// operations that can trap, unless their operands prove the trap impossible
// (a constant non-zero divisor).
func deadCode(f *Func) {
	live := map[*Value]bool{}
	var work []*Value
	mark := func(v *Value) {
		if v != nil && !live[v] {
			live[v] = true
			work = append(work, v)
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Code {
			if mustKeep(v) {
				mark(v)
			}
		}
		mark(b.Term.Cond)
		mark(b.Term.Val)
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range v.Args {
			mark(a)
		}
	}
	for _, b := range f.Blocks {
		b.Phis = filterLive(b.Phis, live)
		b.Code = filterLive(b.Code, live)
	}
}

func filterLive(vs []*Value, live map[*Value]bool) []*Value {
	out := vs[:0]
	for _, v := range vs {
		if live[v] {
			out = append(out, v)
		}
	}
	return out
}

// mustKeep reports whether v must execute regardless of uses.
func mustKeep(v *Value) bool {
	if v.Op.IsPseudo() {
		return false
	}
	switch v.Op.IR() {
	case ir.OpStoreG, ir.OpStoreElem, ir.OpPrint, ir.OpCall:
		return true
	case ir.OpDivI, ir.OpModI:
		// Removable only when the divisor provably cannot be zero.
		d := v.Args[1]
		return !(d.Op == FromIR(ir.OpConstI) && d.Imm != 0)
	case ir.OpFtoI:
		// A foldable (in-range constant) conversion was already folded;
		// whatever remains may trap.
		return true
	case ir.OpLoadElem:
		// Bounds depend on the runtime index; keep the potential trap.
		return true
	}
	return false
}
