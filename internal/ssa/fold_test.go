package ssa

import (
	"testing"

	"repro/internal/ir"
)

// buildDegenerate constructs a function whose conditional branch has
// identical arms — the shape ir.Validate rejects, which Build must still
// fold defensively into an unconditional jump.
func buildDegenerate(t *testing.T) (*ir.Program, *ir.Func) {
	t.Helper()
	p := ir.NewProgram()
	f := &ir.Func{Name: "degen", NRegs: 2, RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	entry := f.NewBlock("entry")
	next := f.NewBlock("next")
	f.Entry = entry
	entry.Instrs = append(entry.Instrs,
		ir.Instr{Op: ir.OpConstI, Dst: 0, Imm: 7},
		ir.Instr{Op: ir.OpConstI, Dst: 1, Imm: 1},
	)
	entry.Term = ir.Term{Op: ir.TermBr, Cond: 1, Then: next, Else: next, Site: 0, Orig: 0}
	next.Term = ir.Term{Op: ir.TermRet, HasVal: true, A: 0}
	return p, f
}

func TestBuildFoldsDegenerateBranch(t *testing.T) {
	p, _ := buildDegenerate(t)
	sp, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	sf := sp.Funcs[0]
	entry := sf.Entry
	if entry.Term.Op != ir.TermJmp {
		t.Fatalf("degenerate br not folded: terminator is %v", entry.Term.Op)
	}
	if entry.Term.Cond != nil || entry.Term.Else != nil || entry.Term.Src != nil {
		t.Fatalf("folded jump kept branch state: %+v", entry.Term)
	}
	next := entry.Term.Then
	if next == nil || len(next.Preds) != 1 || next.Preds[0] != entry {
		t.Fatalf("folded edge wiring wrong: preds %v", next.Preds)
	}
	// The fold must leave no trace in the phi slots either: one pred, so
	// any phi has exactly one argument.
	for _, phi := range next.Phis {
		if len(phi.Args) != 1 {
			t.Fatalf("phi over folded edge has %d args", len(phi.Args))
		}
	}
}

func TestBuildKeepsRealBranch(t *testing.T) {
	p := ir.NewProgram()
	f := &ir.Func{Name: "real", NRegs: 1, RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	entry := f.NewBlock("entry")
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	f.Entry = entry
	entry.Instrs = append(entry.Instrs, ir.Instr{Op: ir.OpConstI, Dst: 0, Imm: 1})
	entry.Term = ir.Term{Op: ir.TermBr, Cond: 0, Then: a, Else: b, Site: 0, Orig: 0}
	a.Term = ir.Term{Op: ir.TermRet, HasVal: true, A: 0}
	b.Term = ir.Term{Op: ir.TermRet, HasVal: true, A: 0}
	sp, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	term := &sp.Funcs[0].Entry.Term
	if term.Op != ir.TermBr || term.Cond == nil || term.Src == nil || term.Then == term.Else {
		t.Fatalf("real branch mangled: %+v", term)
	}
}
