package ssa

import "repro/internal/ir"

// Destruct lowers every function out of SSA form: critical edges into
// phi-carrying blocks are split with synthesised edge blocks, and each phi
// becomes one copy per incoming edge. The phi value itself survives as a
// plain multi-assignment variable (recorded in Func.PhiVars) that the copies
// write via their Phi field; the bytecode emitter gives it one frame slot.
//
// Edge blocks have Orig == nil and Weight 0: the interpreter never executed
// them, so they contribute no steps, no block counts, and no context polls.
func Destruct(p *Program) {
	for _, f := range p.Funcs {
		destructFunc(f)
	}
}

func destructFunc(f *Func) {
	// Snapshot: edge blocks are appended while iterating.
	blocks := append([]*Block(nil), f.Blocks...)
	for _, s := range blocks {
		if len(s.Phis) == 0 {
			continue
		}
		for i := 0; i < len(s.Preds); i++ {
			pred := s.Preds[i]
			at := pred
			if pred.Term.Op == ir.TermBr || pred.Term.Op == ir.TermSwitch {
				// Critical edge (the predecessor has another successor):
				// split it so the copies run on this edge only.
				e := f.newBlock(nil)
				redirectEdge(pred, s, e)
				e.Term = Term{Op: ir.TermJmp, Then: s}
				e.Preds = []*Block{pred}
				s.Preds[i] = e
				at = e
			}
			emitParallelCopy(f, at, s.Phis, i)
		}
		for _, phi := range s.Phis {
			f.PhiVars = append(f.PhiVars, phi)
			phi.Args = nil
		}
		s.Phis = nil
	}
}

// redirectEdge rewrites the first successor slot of pred that still points
// at s to the edge block e. Preds entries for one predecessor appear in
// successor-slot order (Then/Else for branches, Targets then Else for
// switches), so repeated calls for a multi-edge predecessor peel off its
// parallel edges one slot at a time, in order.
func redirectEdge(pred, s, e *Block) {
	if pred.Term.Op == ir.TermBr {
		if pred.Term.Then == s {
			pred.Term.Then = e
		} else {
			pred.Term.Else = e
		}
		return
	}
	for ti, t := range pred.Term.Targets {
		if t == s {
			pred.Term.Targets[ti] = e
			return
		}
	}
	pred.Term.Else = e
}

// emitParallelCopy appends the copies realising edge i's phi arguments to
// the end of block at. When one phi's source is another phi of the same
// group, the writes could clobber a pending read, so the copy goes through
// a temporary (snapshot all sources, then write all destinations).
func emitParallelCopy(f *Func, at *Block, phis []*Value, i int) {
	inGroup := func(v *Value) bool {
		for _, p := range phis {
			if p == v {
				return true
			}
		}
		return false
	}
	overlap := false
	for _, phi := range phis {
		a := phi.Args[i]
		if a != phi && inGroup(a) {
			overlap = true
			break
		}
	}
	if !overlap {
		for _, phi := range phis {
			a := phi.Args[i]
			if a == phi {
				continue // self-loop: the variable already holds the value
			}
			c := f.NewValue(OpCopy, 0, a)
			c.Phi = phi
			at.Code = append(at.Code, c)
		}
		return
	}
	var temps []*Value
	var dsts []*Value
	for _, phi := range phis {
		a := phi.Args[i]
		if a == phi {
			continue
		}
		t := f.NewValue(OpCopy, 0, a)
		at.Code = append(at.Code, t)
		temps = append(temps, t)
		dsts = append(dsts, phi)
	}
	for j, t := range temps {
		c := f.NewValue(OpCopy, 0, t)
		c.Phi = dsts[j]
		at.Code = append(at.Code, c)
	}
}
