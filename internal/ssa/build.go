package ssa

import (
	"fmt"

	"repro/internal/ir"
)

// Build lowers a validated ir.Program into SSA form: one SSA function per ir
// function (parallel slices), with dominators computed, phis placed at
// iterated dominance frontiers, and every register use rewritten to the
// reaching definition (mem2reg). Unreachable and Dead blocks are dropped —
// the interpreter never executes them, so the compiled backend need not
// carry them.
func Build(p *ir.Program) (*Program, error) {
	sp := &Program{Ir: p, Funcs: make([]*Func, len(p.Funcs))}
	for i, f := range p.Funcs {
		sf, err := buildFunc(f)
		if err != nil {
			return nil, fmt.Errorf("ssa: %s: %w", f.Name, err)
		}
		sp.Funcs[i] = sf
	}
	return sp, nil
}

type builder struct {
	f    *Func
	ir   *ir.Func
	bmap []*Block // ir block ID -> ssa block (nil if unreachable)
	// phiVar names the ir register a placed phi merges, used while renaming.
	phiVar map[*Value]ir.Reg
	// stacks holds the reaching definition per register during renaming.
	stacks [][]*Value
}

func buildFunc(irf *ir.Func) (*Func, error) {
	f := &Func{Ir: irf}
	b := &builder{f: f, ir: irf, bmap: make([]*Block, len(irf.Blocks)), phiVar: make(map[*Value]ir.Reg)}

	// Blocks, in ir order, restricted to blocks reachable from the entry.
	reach := reachable(irf)
	for _, ib := range irf.Blocks {
		if reach[ib.ID] {
			b.bmap[ib.ID] = f.newBlock(ib)
		}
	}
	f.Entry = b.bmap[irf.Entry.ID]
	if f.Entry == nil {
		return nil, fmt.Errorf("entry block unreachable")
	}

	// Edges: skeleton terminators (targets only) and predecessor lists in
	// deterministic edge order. Values are filled in during renaming.
	for _, ib := range irf.Blocks {
		sb := b.bmap[ib.ID]
		if sb == nil {
			continue
		}
		sb.Term.Op = ib.Term.Op
		switch ib.Term.Op {
		case ir.TermJmp:
			sb.Term.Then = b.bmap[ib.Term.Then.ID]
			sb.Term.Then.Preds = append(sb.Term.Then.Preds, sb)
		case ir.TermBr:
			if ib.Term.Then == ib.Term.Else {
				// Degenerate cond-br (identical arms): fold to an
				// unconditional jump so the condition is dead-code-swept
				// and downstream consumers never see a two-way edge pair
				// to one target. ir.Validate rejects this shape, but Build
				// stays defensive for hand-built inputs.
				sb.Term.Op = ir.TermJmp
				sb.Term.Then = b.bmap[ib.Term.Then.ID]
				sb.Term.Then.Preds = append(sb.Term.Then.Preds, sb)
				break
			}
			sb.Term.Then = b.bmap[ib.Term.Then.ID]
			sb.Term.Else = b.bmap[ib.Term.Else.ID]
			sb.Term.Src = &ib.Term
			sb.Term.Then.Preds = append(sb.Term.Then.Preds, sb)
			sb.Term.Else.Preds = append(sb.Term.Else.Preds, sb)
		case ir.TermSwitch:
			// Never folded, even when every target coincides: the switch is
			// a trace-observable dispatch site.
			sb.Term.Targets = make([]*Block, len(ib.Term.Targets))
			for ti, tb := range ib.Term.Targets {
				st := b.bmap[tb.ID]
				sb.Term.Targets[ti] = st
				st.Preds = append(st.Preds, sb)
			}
			sb.Term.Else = b.bmap[ib.Term.Else.ID]
			sb.Term.Else.Preds = append(sb.Term.Else.Preds, sb)
			sb.Term.Src = &ib.Term
		case ir.TermRet:
			sb.Term.HasVal = ib.Term.HasVal
		default:
			return nil, fmt.Errorf("%s: missing terminator", ib)
		}
	}

	order := computeRPO(f)
	computeDominators(f, order)
	computeFrontiers(order)

	b.placePhis()
	if err := b.rename(); err != nil {
		return nil, err
	}
	return f, nil
}

// reachable marks the ir blocks reachable from the entry.
func reachable(f *ir.Func) []bool {
	seen := make([]bool, len(f.Blocks))
	stack := []*ir.Block{f.Entry}
	seen[f.Entry.ID] = true
	var succs []*ir.Block
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		succs = blk.Succs(succs[:0])
		for _, s := range succs {
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// placePhis inserts phi nodes at the iterated dominance frontier of each
// register's definition sites. The entry block counts as a definition site
// for every register: parameters arrive there and the interpreter zeroes the
// rest of the frame, so every register has an initial value.
func (b *builder) placePhis() {
	nRegs := b.ir.NRegs
	defsites := make([][]*Block, nRegs)
	hasDef := make([]map[*Block]bool, nRegs)
	addDef := func(r ir.Reg, blk *Block) {
		if hasDef[r] == nil {
			hasDef[r] = map[*Block]bool{}
		}
		if !hasDef[r][blk] {
			hasDef[r][blk] = true
			defsites[r] = append(defsites[r], blk)
		}
	}
	for r := 0; r < nRegs; r++ {
		addDef(ir.Reg(r), b.f.Entry)
	}
	for _, blk := range b.f.Blocks {
		for i := range blk.Orig.Instrs {
			in := &blk.Orig.Instrs[i]
			if in.Op.HasDst() && in.Dst != ir.NoReg {
				addDef(in.Dst, blk)
			}
		}
	}
	for r := 0; r < nRegs; r++ {
		placed := map[*Block]bool{}
		work := append([]*Block(nil), defsites[r]...)
		for len(work) > 0 {
			d := work[len(work)-1]
			work = work[:len(work)-1]
			for _, j := range d.df {
				if placed[j] {
					continue
				}
				placed[j] = true
				phi := b.f.NewValue(OpPhi, 0)
				phi.Args = make([]*Value, len(j.Preds))
				j.Phis = append(j.Phis, phi)
				b.phiVar[phi] = ir.Reg(r)
				if !hasDef[ir.Reg(r)][j] {
					addDef(ir.Reg(r), j)
					work = append(work, j)
				}
			}
		}
	}
}

// rename walks the dominator tree rewriting register operands into SSA
// values and filling phi arguments edge by edge.
func (b *builder) rename() error {
	b.stacks = make([][]*Value, b.ir.NRegs)

	// Initial definitions in the entry block: parameters in their slots,
	// a shared zero constant for everything else (interpreter frames start
	// zeroed). Unused initials are swept by the dead-code pass.
	entry := b.f.Entry
	var zero *Value
	for r := 0; r < b.ir.NRegs; r++ {
		var v *Value
		if r < b.ir.NParams {
			v = b.f.NewValue(OpParam, int64(r))
			entry.Code = append(entry.Code, v)
		} else {
			if zero == nil {
				zero = b.f.NewValue(FromIR(ir.OpConstI), 0)
				entry.Code = append(entry.Code, zero)
			}
			v = zero
		}
		b.stacks[r] = append(b.stacks[r], v)
	}
	return b.renameBlock(entry)
}

func (b *builder) top(r ir.Reg) *Value { s := b.stacks[r]; return s[len(s)-1] }

func (b *builder) renameBlock(blk *Block) error {
	var pushed []ir.Reg
	push := func(r ir.Reg, v *Value) {
		b.stacks[r] = append(b.stacks[r], v)
		pushed = append(pushed, r)
	}

	for _, phi := range blk.Phis {
		push(b.phiVar[phi], phi)
	}

	for i := range blk.Orig.Instrs {
		in := &blk.Orig.Instrs[i]
		if in.Op == ir.OpNop {
			continue
		}
		if !in.Op.Valid() {
			return fmt.Errorf("%s: invalid opcode %s", blk, in.Op)
		}
		v := b.f.NewValue(FromIR(in.Op), 0)
		if in.Op.HasImm() {
			v.Imm = in.Imm
		}
		switch in.Op.NumSrc() {
		case 1:
			v.Args = []*Value{b.top(in.A)}
		case 2:
			v.Args = []*Value{b.top(in.A), b.top(in.B)}
		}
		if in.Op == ir.OpCall {
			v.Args = make([]*Value, len(in.Args))
			for ai, ar := range in.Args {
				v.Args[ai] = b.top(ar)
			}
		}
		blk.Code = append(blk.Code, v)
		if in.Op.HasDst() && in.Dst != ir.NoReg {
			push(in.Dst, v)
		}
	}

	t := &blk.Orig.Term
	switch t.Op {
	case ir.TermBr:
		// A degenerate br was folded to a jump during edge wiring; its
		// condition is not an SSA use.
		if blk.Term.Op == ir.TermBr {
			blk.Term.Cond = b.top(t.Cond)
		}
	case ir.TermSwitch:
		blk.Term.Cond = b.top(t.Cond)
	case ir.TermRet:
		if t.HasVal {
			blk.Term.Val = b.top(t.A)
		}
	}

	// Fill phi arguments of successors: one slot per incoming edge.
	for _, s := range blk.succs() {
		for i, p := range s.Preds {
			if p != blk {
				continue
			}
			for _, phi := range s.Phis {
				phi.Args[i] = b.top(b.phiVar[phi])
			}
		}
	}

	for _, k := range blk.Kids {
		if err := b.renameBlock(k); err != nil {
			return err
		}
	}

	for i := len(pushed) - 1; i >= 0; i-- {
		r := pushed[i]
		b.stacks[r] = b.stacks[r][:len(b.stacks[r])-1]
	}
	return nil
}
