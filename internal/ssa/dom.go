package ssa

// Dominator-tree construction in the Cooper/Harvey/Kennedy style: a
// reverse-postorder fixpoint over intersecting dominator paths. The IR
// guarantees reducible-friendly shapes (structured loops from the BL front
// end, replication clones of the same), so the fixpoint converges in two or
// three sweeps; the algorithm is correct on arbitrary graphs regardless.

import "repro/internal/ir"

// computeRPO numbers f's blocks in reverse postorder from the entry and
// returns them in that order (entry first). Unreachable blocks keep rpo -1.
func computeRPO(f *Func) []*Block {
	for _, b := range f.Blocks {
		b.rpo = -1
	}
	var post []*Block
	seen := make([]bool, len(f.Blocks))
	// Iterative DFS; the explicit stack carries (block, next-successor).
	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{f.Entry, 0}}
	seen[f.Entry.ID] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		succs := top.b.succs()
		if top.i < len(succs) {
			s := succs[top.i]
			top.i++
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	order := make([]*Block, len(post))
	for i, b := range post {
		j := len(post) - 1 - i
		order[j] = b
		b.rpo = j
	}
	return order
}

// succs returns the successor blocks in deterministic edge order:
// Then-before-Else for branches, Targets-then-Else for switches. The order
// matches the Preds wiring in Build, so phi argument i flows over edge i.
func (b *Block) succs() []*Block {
	switch b.Term.Op {
	case ir.TermJmp:
		return []*Block{b.Term.Then}
	case ir.TermBr:
		return []*Block{b.Term.Then, b.Term.Else}
	case ir.TermSwitch:
		out := make([]*Block, 0, len(b.Term.Targets)+1)
		out = append(out, b.Term.Targets...)
		return append(out, b.Term.Else)
	}
	return nil
}

// computeDominators fills Idom and Kids for every block reachable from the
// entry. order must be the reverse postorder from computeRPO.
func computeDominators(f *Func, order []*Block) {
	entry := f.Entry
	entry.Idom = entry // sentinel during the fixpoint
	for {
		changed := false
		for _, b := range order[1:] {
			var idom *Block
			for _, p := range b.Preds {
				if p.Idom == nil {
					continue // not yet processed this sweep
				}
				if idom == nil {
					idom = p
				} else {
					idom = intersect(idom, p)
				}
			}
			if idom != nil && b.Idom != idom {
				b.Idom = idom
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	entry.Idom = nil
	for _, b := range order {
		b.Kids = nil
	}
	// Children in RPO keeps the renaming walk deterministic.
	for _, b := range order {
		if b.Idom != nil {
			b.Idom.Kids = append(b.Idom.Kids, b)
		}
	}
}

// intersect walks two dominator paths up to their common ancestor.
func intersect(a, b *Block) *Block {
	for a != b {
		for a.rpo > b.rpo {
			a = a.Idom
		}
		for b.rpo > a.rpo {
			b = b.Idom
		}
	}
	return a
}

// computeFrontiers fills each block's dominance frontier (b.df).
func computeFrontiers(order []*Block) {
	for _, b := range order {
		b.df = nil
	}
	for _, b := range order {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			for runner := p; runner != b.Idom; runner = runner.Idom {
				if hasFrontier(runner, b) {
					// An earlier walk already climbed from here.
					break
				}
				runner.df = append(runner.df, b)
			}
		}
	}
}

func hasFrontier(b, x *Block) bool {
	for _, d := range b.df {
		if d == x {
			return true
		}
	}
	return false
}

// Dominates reports whether a dominates b (reflexively).
func Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		if b.Idom == nil {
			return false
		}
		b = b.Idom
	}
}
