// Package ssa lowers the register IR (internal/ir) into static single
// assignment form and back out again. It is the middle end of the compiled
// execution backend (internal/vm): construction computes dominators and
// rewrites every register into versioned values joined by phi nodes
// (mem2reg), a small pass pipeline cleans the result (copy propagation,
// constant folding, dead-code elimination), and destruction splits critical
// edges and lowers phis to parallel copies so the bytecode emitter can
// allocate flat register slots.
//
// The passes are deliberately conservative about observable behaviour: a
// conditional branch is never folded or removed (its site identity feeds the
// trace plane), instructions that can trap (integer division, float-to-int
// conversion, array indexing) are never deleted or reordered past each other,
// and every block keeps a pointer to the ir.Block it descends from so the
// backend can account execution steps and block counts exactly like the
// interpreter.
package ssa

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Op is an SSA operation. Values below pseudoBase are lifted ir.Op codes;
// the pseudo-operations above it exist only inside this package's pipeline.
type Op uint16

// pseudoBase is above every ir.Op (ir opcodes are a small dense enum).
const pseudoBase Op = 0x100

const (
	// OpPhi selects one argument per predecessor edge of its block. After
	// Destruct no phis remain in blocks; surviving phi values live on in
	// Func.PhiVars as multi-assignment variables written by copies.
	OpPhi Op = pseudoBase + iota
	// OpCopy is a register-to-register move introduced by the pipeline
	// (trivial-phi collapse, phi destruction). A copy whose Phi field is set
	// writes that phi variable's storage instead of defining a new value.
	OpCopy
	// OpParam is the incoming value of parameter Imm; the backend pins it to
	// frame slot Imm.
	OpParam
)

// FromIR lifts an ir opcode into the SSA op space.
func FromIR(op ir.Op) Op { return Op(op) }

// IsPseudo reports whether the op is one of the SSA-only pseudo-operations.
func (op Op) IsPseudo() bool { return op >= pseudoBase }

// IR returns the underlying ir opcode; only meaningful when !IsPseudo.
func (op Op) IR() ir.Op { return ir.Op(op) }

func (op Op) String() string {
	switch op {
	case OpPhi:
		return "phi"
	case OpCopy:
		return "copy"
	case OpParam:
		return "param"
	}
	return op.IR().String()
}

// Value is one SSA value: an operation, its value arguments, and an optional
// immediate. Every value is identified by a dense per-function ID.
type Value struct {
	ID   int
	Op   Op
	Args []*Value
	// Imm carries the ir immediate: the constant bits for consti/constf, the
	// global index for loads/stores, the callee index for call, and the
	// parameter index for OpParam.
	Imm int64
	// Phi, on an OpCopy emitted by Destruct, names the phi variable whose
	// storage this copy writes; nil on ordinary value-defining copies.
	Phi *Value
}

// String returns a short diagnostic form ("v12 = addi v3 v7").
func (v *Value) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "v%d = %s", v.ID, v.Op)
	if v.Phi != nil {
		fmt.Fprintf(&sb, " [->v%d]", v.Phi.ID)
	}
	for _, a := range v.Args {
		fmt.Fprintf(&sb, " v%d", a.ID)
	}
	if v.Op == FromIR(ir.OpConstI) || v.Op == FromIR(ir.OpConstF) || v.Op.HasImm() {
		fmt.Fprintf(&sb, " [%d]", v.Imm)
	}
	return sb.String()
}

// HasImm reports whether the op's Imm field is meaningful.
func (op Op) HasImm() bool {
	if op.IsPseudo() {
		return op == OpParam
	}
	return op.IR().HasImm()
}

// Term is a block terminator over SSA values. For TermBr and TermSwitch,
// Src points at the original ir terminator carrying the site/orig identity
// and static prediction; edge blocks synthesised by Destruct have a nil Src.
type Term struct {
	Op     ir.TermOp
	Cond   *Value
	Val    *Value
	HasVal bool
	Then   *Block
	Else   *Block
	// Targets holds the case successors of a TermSwitch (outcome i jumps to
	// Targets[i], Else is the default); nil for every other terminator.
	Targets []*Block
	Src     *ir.Term
}

// Block is one SSA basic block.
type Block struct {
	ID int
	// Orig is the ir block this one descends from; nil for the edge blocks
	// inserted by Destruct while splitting critical edges.
	Orig *ir.Block
	// Weight is the execution-step cost the interpreter charges for the
	// original block (len(Orig.Instrs)+1); 0 for synthesised edge blocks,
	// which the interpreter never executed.
	Weight uint64
	Phis   []*Value
	Code   []*Value
	Term   Term
	// Preds lists predecessor blocks, one entry per incoming edge and in
	// deterministic edge order; phi argument i flows in over edge i. A block
	// branching to the same target on both arms appears twice.
	Preds []*Block

	// Idom is the immediate dominator (nil for the entry block); Kids are
	// the dominator-tree children in reverse-postorder. Build fills both.
	Idom *Block
	Kids []*Block

	rpo int
	df  []*Block
}

// String returns the diagnostic label of the block.
func (b *Block) String() string {
	if b.Orig != nil {
		return b.Orig.String()
	}
	return fmt.Sprintf("edge%d", b.ID)
}

// Func is one function in SSA form.
type Func struct {
	// Ir is the source function.
	Ir     *ir.Func
	Entry  *Block
	Blocks []*Block
	// PhiVars lists former phi values demoted to plain multi-assignment
	// variables by Destruct: each is written by the OpCopy values whose Phi
	// field names it. Empty before Destruct.
	PhiVars []*Value

	nextID int
}

// NewValue creates a fresh value; it does not place it in a block.
func (f *Func) NewValue(op Op, imm int64, args ...*Value) *Value {
	v := &Value{ID: f.nextID, Op: op, Imm: imm, Args: args}
	f.nextID++
	return v
}

func (f *Func) newBlock(orig *ir.Block) *Block {
	b := &Block{ID: len(f.Blocks), Orig: orig}
	if orig != nil {
		b.Weight = uint64(len(orig.Instrs)) + 1
	}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NumValues returns the number of value IDs allocated in the function.
func (f *Func) NumValues() int { return f.nextID }

// Program is a whole translation unit in SSA form. Funcs is parallel to
// Ir.Funcs (indexed by ir function ID).
type Program struct {
	Ir    *ir.Program
	Funcs []*Func
}

// Dump renders the function for tests and debugging.
func (f *Func) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", f.Ir.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "  %s:", b)
		if len(b.Preds) > 0 {
			sb.WriteString(" <-")
			for _, p := range b.Preds {
				fmt.Fprintf(&sb, " %s", p)
			}
		}
		sb.WriteString("\n")
		for _, v := range b.Phis {
			fmt.Fprintf(&sb, "    %s\n", v)
		}
		for _, v := range b.Code {
			fmt.Fprintf(&sb, "    %s\n", v)
		}
		switch b.Term.Op {
		case ir.TermJmp:
			fmt.Fprintf(&sb, "    jmp %s\n", b.Term.Then)
		case ir.TermBr:
			fmt.Fprintf(&sb, "    br v%d %s %s\n", b.Term.Cond.ID, b.Term.Then, b.Term.Else)
		case ir.TermSwitch:
			fmt.Fprintf(&sb, "    switch v%d [", b.Term.Cond.ID)
			for i, t := range b.Term.Targets {
				if i > 0 {
					sb.WriteString(" ")
				}
				fmt.Fprintf(&sb, "%s", t)
			}
			fmt.Fprintf(&sb, "] else %s\n", b.Term.Else)
		case ir.TermRet:
			if b.Term.HasVal {
				fmt.Fprintf(&sb, "    ret v%d\n", b.Term.Val.ID)
			} else {
				sb.WriteString("    ret\n")
			}
		}
	}
	return sb.String()
}
