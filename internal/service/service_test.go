package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func mustNew(tb testing.TB, cfg Config) *Server {
	tb.Helper()
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, endpoint, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/"+endpoint, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestGoldenResponses pins the exact response bytes of all four endpoints:
// the kralld/v1 schema is a compatibility contract, and any drift —
// field order, number formatting, pipeline results — must show up in
// review. Regenerate with go test ./internal/service -run Golden -update.
func TestGoldenResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name     string
		endpoint string
		body     string
	}{
		{"profile_compress", "profile", `{"workload":"compress","budget":20000}`},
		{"machines_compress", "machines", `{"workload":"compress","budget":20000,"states":4}`},
		{"replicate_compress", "replicate", `{"workload":"compress","budget":20000,"states":4}`},
		{"score_compress_twobit", "score", `{"workload":"compress","budget":20000,"strategy":"twobit"}`},
		{"score_compress_static", "score", `{"workload":"compress","budget":20000,"strategy":"static","preds":["taken","not_taken"]}`},
		{"machines_scheduler_paths", "machines", `{"workload":"scheduler","budget":20000,"states":6,"max_path_len":2}`},
		{"replicate_cc_joint", "replicate", `{"workload":"cc","budget":20000,"joint":true}`},
		{"analyze_compress", "analyze", `{"workload":"compress"}`},
		{"replicate_compress_static", "replicate", `{"workload":"compress","budget":20000,"states":4,"static_budget":true}`},
		{"replicate_svm_indirect", "replicate", `{"workload":"svm","budget":20000,"family":"indirect","check":true}`},
		{"replicate_lex_indirect", "replicate", `{"workload":"lex","budget":20000,"family":"indirect","check":true,"seed":424243}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, got := post(t, ts, tc.endpoint, tc.body)
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, got)
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("response drifted from %s:\n got: %s\nwant: %s", path, got, want)
			}
		})
	}
}

// TestResponsesByteStable re-asks the same questions and demands identical
// bytes — the property the load client asserts in production.
func TestResponsesByteStable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bodies := map[string]string{
		"profile":   `{"workload":"abalone","budget":20000}`,
		"machines":  `{"workload":"abalone","budget":20000}`,
		"replicate": `{"workload":"abalone","budget":20000}`,
		"score":     `{"workload":"abalone","budget":20000,"strategy":"last"}`,
	}
	for endpoint, body := range bodies {
		code, first := post(t, ts, endpoint, body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", endpoint, code, first)
		}
		for i := 0; i < 3; i++ {
			_, again := post(t, ts, endpoint, body)
			if !bytes.Equal(first, again) {
				t.Fatalf("%s: repeat %d returned different bytes", endpoint, i)
			}
		}
	}
}

// TestScoreUpload round-trips a locally recorded trace through the upload
// path and checks the server counts exactly the recorded events.
func TestScoreUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	b64, err := recordTraceB64("predict", 5000)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"trace_b64":%q,"strategy":"profile"}`, b64)
	code, out := post(t, ts, "score", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	var resp ScoreResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Events != 5000 {
		t.Errorf("Events = %d, want 5000", resp.Events)
	}
	if resp.Source != "upload" {
		t.Errorf("Source = %q, want upload", resp.Source)
	}
	if resp.Score.Predicted == 0 {
		t.Error("Score.Predicted = 0, want events scored")
	}
}

// TestScoreUploadTooLarge exercises the trace.Limits guard on the upload
// path: a run-length bomb claiming millions of events must be refused with
// 413 before it allocates.
func TestScoreUploadTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{
		TraceLimits: trace.Limits{MaxEvents: 1000, MaxBytes: 1 << 20},
	})
	b64, err := recordTraceB64("predict", 5000)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"trace_b64":%q}`, b64)
	code, out := post(t, ts, "score", body)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", code, out)
	}
}

// TestScoreUploadHugeSite is the site-ID bomb: a tiny upload whose single
// event names a huge site must be refused with 413, not size per-site
// tables from it (which would allocate gigabytes and OOM the daemon).
func TestScoreUploadHugeSite(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.RecordBranch(1<<30, true)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"trace_b64":%q}`, base64.StdEncoding.EncodeToString(buf.Bytes()))
	code, out := post(t, ts, "score", body)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", code, out)
	}
}

// TestBadRequests sweeps the request-validation surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, endpoint, body string
		wantCode             int
	}{
		{"no_program", "profile", `{}`, 400},
		{"both_programs", "profile", `{"workload":"cc","source":"x"}`, 400},
		{"unknown_workload", "profile", `{"workload":"nope"}`, 400},
		{"bad_source", "profile", `{"source":"func main( {"}`, 400},
		{"unknown_field", "profile", `{"workload":"cc","nope":1}`, 400},
		{"budget_over_cap", "profile", `{"workload":"cc","budget":999999999}`, 400},
		{"states_out_of_range", "machines", `{"workload":"cc","states":1}`, 400},
		{"path_len_out_of_range", "machines", `{"workload":"cc","max_path_len":9}`, 400},
		{"size_factor_range", "replicate", `{"workload":"cc","max_size_factor":0.5}`, 400},
		{"bad_strategy", "score", `{"workload":"cc","strategy":"oracle"}`, 400},
		{"bad_base64", "score", `{"trace_b64":"@@@"}`, 400},
		{"trace_and_program", "score", `{"workload":"cc","trace_b64":"QkxUUkFDRTE"}`, 400},
		{"bad_preds", "score", `{"workload":"cc","strategy":"static","preds":["sideways"]}`, 400},
		{"unknown_family", "replicate", `{"workload":"cc","family":"exotic"}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := post(t, ts, tc.endpoint, tc.body)
			if code != tc.wantCode {
				t.Fatalf("status %d (%s), want %d", code, out, tc.wantCode)
			}
			var eb errorBody
			if err := json.Unmarshal(out, &eb); err != nil || eb.Schema != Schema || eb.Error == "" {
				t.Fatalf("error envelope %s malformed (%v)", out, err)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", allow)
	}
}

// TestBackpressure fills an endpoint's admission semaphore and expects the
// next request to be refused with 429 + Retry-After instead of queueing.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 2})
	for i := 0; i < 2; i++ {
		s.sems["profile"] <- struct{}{}
	}
	defer func() {
		<-s.sems["profile"]
		<-s.sems["profile"]
	}()
	code, out := post(t, ts, "profile", `{"workload":"cc"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", code, out)
	}
	resp, err := http.Post(ts.URL+"/v1/profile", "application/json", strings.NewReader(`{"workload":"cc"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After")
	}
	// Other endpoints must be unaffected: admission is per-endpoint.
	if code, out := post(t, ts, "score", `{"workload":"cc","budget":5000}`); code != http.StatusOK {
		t.Fatalf("score during profile overload: status %d (%s), want 200", code, out)
	}
}

// spinSrc loops ~2^62 times; only a deadline or cancellation stops it in
// test-sized time.
const spinSrc = `
var total int;

func main() int {
    for var i int = 0; i < 4611686018427387904; i = i + 1 {
        total = total + i;
    }
    return total;
}`

// TestArtifactDetachedFromRequester pins the single-flight contract:
// recording runs under a context detached from the requester's, so a
// client that disconnects (here: a context cancelled before the call)
// cannot poison the cache entry for concurrent waiters sharing it.
func TestArtifactDetachedFromRequester(t *testing.T) {
	s := mustNew(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := &Request{Workload: "cc"}
	c, err := s.resolveProgram(req)
	if err != nil {
		t.Fatal(err)
	}
	art, err := s.artifactFor(ctx, c, req, 5000)
	if err != nil {
		t.Fatalf("recording failed under a cancelled requester context: %v", err)
	}
	if art.slab.Len() == 0 {
		t.Fatal("recording produced an empty slab")
	}
}

// TestRequestTimeout proves the deadline reaches the interpreter loop: a
// spinning program must come back 504, not hang.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond, MaxBudget: 1 << 40})
	body, _ := json.Marshal(map[string]any{"source": spinSrc, "budget": 1 << 39})
	start := time.Now()
	code, out := post(t, ts, "profile", string(body))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", code, out)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline is not reaching the run loop", elapsed)
	}
}

// TestConcurrentClients is the race-detector test: many goroutines hammer
// all endpoints through the full client, sharing the LRU store and engine
// counters, while /metrics is scraped concurrently.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 8})
	done := make(chan struct{})
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	report, err := Load(context.Background(), ts.URL, LoadOptions{
		Workloads:   []string{"cc", "predict", "compress"},
		Budget:      5_000,
		Concurrency: 12,
		Repeats:     4,
	})
	close(done)
	scrape.Wait()
	if err != nil {
		t.Fatalf("load: %v (report: %v)", err, report)
	}
	// Six distinct calls per workload: analyze, profile, machines,
	// replicate, score, and the uploaded-trace score — plus one indirect
	// replicate per dispatch workload.
	if want := (3*6 + len(bench.IndirectWorkloads())) * 4; report.Requests != want {
		t.Fatalf("Requests = %d, want %d", report.Requests, want)
	}
}

// TestGracefulShutdown covers the SIGTERM drain path: an in-flight request
// completes after shutdown begins, and the listener refuses new work.
func TestGracefulShutdown(t *testing.T) {
	s := mustNew(t, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l, 10*time.Second) }()

	// Prove the server is up, and warm the artifact cache so the in-flight
	// request below spends its time in the handler, not recording.
	if _, err := http.Get(base + "/healthz"); err != nil {
		t.Fatal(err)
	}

	// Start a request, then trigger shutdown while it may still be running.
	type result struct {
		code int
		body []byte
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/replicate", "application/json",
			strings.NewReader(`{"workload":"doduc","budget":200000}`))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		inflight <- result{code: resp.StatusCode, body: body}
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	cancel()

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d (%s), want 200", r.code, r.body)
	}
	if err := <-served; err != nil && err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
	// The listener is closed: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}

// TestMetricsEndpoint sanity-checks the exposition format and that request
// counters move.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheShards: 4})
	if code, out := post(t, ts, "profile", `{"workload":"cc","budget":5000}`); code != http.StatusOK {
		t.Fatalf("profile: status %d (%s)", code, out)
	}
	if code, out := post(t, ts, "batch", `{"items":[{"endpoint":"score","workload":"cc","budget":5000,"strategy":"twobit"}]}`); code != http.StatusOK {
		t.Fatalf("batch: status %d (%s)", code, out)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`kralld_requests_total{endpoint="profile",code="200"} 1`,
		`kralld_request_seconds_bucket{endpoint="profile",le="+Inf"} 1`,
		"kralld_engine_trace_records_total 1",
		"kralld_store_entries",
		"kralld_store_shards 4",
		`kralld_store_shard_entries{shard="0"}`,
		`kralld_store_shard_hits_total{shard="3"}`,
		`kralld_batch_items_total{endpoint="score",code="200"} 1`,
		`kralld_requests_total{endpoint="batch",code="200"} 1`,
		"kralld_uptime_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSourceProgram runs the pipeline on an ad-hoc BL program instead of a
// catalog workload.
func TestSourceProgram(t *testing.T) {
	src := `
var wseed int = 7;

func main() int {
    var acc int = 0;
    for var i int = 0; i < 5000; i = i + 1 {
        if i % 3 == 0 {
            acc = acc + i;
        } else {
            acc = acc - 1;
        }
    }
    return acc;
}`
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(map[string]any{"source": src, "budget": 20000})
	code, out := post(t, ts, "replicate", string(body))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	var resp ReplicateResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.SemanticsVerified {
		t.Error("replicated clone changed the program's checksum")
	}
	if resp.Replicated.RatePct > resp.Baseline.RatePct {
		t.Errorf("replication made prediction worse: %.2f%% -> %.2f%%",
			resp.Baseline.RatePct, resp.Replicated.RatePct)
	}
}

// TestReplicateVerification covers the check knob end to end: the body
// flag and the check=true query parameter both turn on the
// replication-equivalence verifier, the response reports verified, and
// the verdict counters show up on /metrics.
func TestReplicateVerification(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Without check, the verifier must not run.
	code, out := post(t, ts, "replicate", `{"workload":"compress","budget":20000}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	var resp ReplicateResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Verified {
		t.Error("verified=true without check")
	}

	// Body flag, sequential and joint.
	for _, body := range []string{
		`{"workload":"compress","budget":20000,"check":true}`,
		`{"workload":"compress","budget":20000,"check":true,"joint":true}`,
	} {
		code, out := post(t, ts, "replicate", body)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, out)
		}
		resp = ReplicateResponse{}
		if err := json.Unmarshal(out, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Verified {
			t.Errorf("verified=false for %s", body)
		}
	}

	// Query knob on a body that does not mention check.
	r, err := http.Post(ts.URL+"/v1/replicate?check=true", "application/json",
		strings.NewReader(`{"workload":"compress","budget":20000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	out, _ = io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("query knob: status %d: %s", r.StatusCode, out)
	}
	resp = ReplicateResponse{}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Verified {
		t.Error("verified=false via check=true query parameter")
	}

	// Three checked requests succeeded; the counter must say so.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mbody), "krallcheck_verified_total 3") {
		t.Errorf("/metrics missing krallcheck_verified_total 3:\n%s", mbody)
	}
	if !strings.Contains(string(mbody), "krallcheck_failed_total 0") {
		t.Errorf("/metrics missing krallcheck_failed_total 0")
	}
}

// TestUploadRoundTripMatchesLocal scores the same trace server-side and
// locally and demands identical results: the wire format loses nothing.
func TestUploadRoundTripMatchesLocal(t *testing.T) {
	prog, err := lang.Compile(`
func main() int {
    var acc int = 0;
    for var i int = 0; i < 400; i = i + 1 {
        if i % 7 < 3 {
            acc = acc + 2;
        }
    }
    return acc;
}`)
	if err != nil {
		t.Fatal(err)
	}
	nsites := prog.NumberBranches(true)
	m := interp.New(prog)
	slab := trace.NewSlab(0)
	m.Rec = slab
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	slab.Seal()
	var buf bytes.Buffer
	if _, err := slab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"trace_b64":%q,"strategy":"twobit"}`,
		base64.StdEncoding.EncodeToString(buf.Bytes()))
	code, out := post(t, ts, "score", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	var resp ScoreResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.NumSites > nsites {
		t.Errorf("NumSites = %d, program has %d", resp.NumSites, nsites)
	}
	if resp.Events != slab.Len() {
		t.Errorf("Events = %d, recorded %d", resp.Events, slab.Len())
	}
}
