package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/trace"
)

// LoadOptions parameterises Load, the service's load-generator client.
type LoadOptions struct {
	// Workloads are the catalog programs to drive (default: the whole
	// suite).
	Workloads []string
	// Budget is the branch budget sent with every request (default 20000,
	// the krallbench golden scale).
	Budget uint64
	// States is the machine size for machines/replicate (default 4).
	States int
	// Concurrency is the number of in-flight requests (default 8).
	Concurrency int
	// Repeats is how many times each distinct request fires; all repeats
	// must return byte-identical bodies (default 3).
	Repeats int
	// Timeout bounds one HTTP round trip (default 60s).
	Timeout time.Duration
}

func (o *LoadOptions) setDefaults() {
	if len(o.Workloads) == 0 {
		for _, w := range bench.Workloads() {
			o.Workloads = append(o.Workloads, w.Name)
		}
	}
	if o.Budget == 0 {
		o.Budget = 20_000
	}
	if o.States == 0 {
		o.States = 4
	}
	if o.Concurrency == 0 {
		o.Concurrency = 8
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Timeout == 0 {
		o.Timeout = 60 * time.Second
	}
}

// LoadReport summarises one Load run.
type LoadReport struct {
	Requests      int            `json:"requests"`
	Retried429    int            `json:"retried_429"`
	PerEndpoint   map[string]int `json:"per_endpoint"`
	ResponseBytes int64          `json:"response_bytes"`
	Seconds       float64        `json:"seconds"`
}

func (r *LoadReport) String() string {
	eps := make([]string, 0, len(r.PerEndpoint))
	for ep := range r.PerEndpoint {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d requests in %.2fs (%d retried after 429, %d response bytes)",
		r.Requests, r.Seconds, r.Retried429, r.ResponseBytes)
	for _, ep := range eps {
		fmt.Fprintf(&sb, "\n  %-10s %d ok", ep, r.PerEndpoint[ep])
	}
	return sb.String()
}

// loadCall is one distinct request: endpoint plus body. Each fires
// Repeats times; the responses must agree byte-for-byte.
type loadCall struct {
	endpoint string
	body     []byte
}

// Load drives the catalog workloads through a running kralld concurrently
// and asserts the service contract: every endpoint answers 200 with
// byte-stable JSON, and overload shows up only as 429 + Retry-After
// (which the client honours and retries). It is the -selfcheck engine of
// cmd/kralld, the body of cmd/krallload, and runs under go test -race via
// the service tests.
func Load(ctx context.Context, baseURL string, opts LoadOptions) (*LoadReport, error) {
	opts.setDefaults()
	baseURL = strings.TrimRight(baseURL, "/")

	var calls []loadCall
	addCall := func(endpoint string, req map[string]any) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		calls = append(calls, loadCall{endpoint: endpoint, body: body})
		return nil
	}
	for _, name := range opts.Workloads {
		common := map[string]any{"workload": name, "budget": opts.Budget}
		if err := addCall("profile", common); err != nil {
			return nil, err
		}
		// The static analysis endpoint takes no budget: its response is a
		// pure function of the program.
		if err := addCall("analyze", map[string]any{"workload": name}); err != nil {
			return nil, err
		}
		if err := addCall("machines", map[string]any{
			"workload": name, "budget": opts.Budget, "states": opts.States,
		}); err != nil {
			return nil, err
		}
		// check:true routes every replicate through the
		// replication-equivalence verifier, so a selfcheck also proves the
		// transform sound on the whole catalog.
		if err := addCall("replicate", map[string]any{
			"workload": name, "budget": opts.Budget, "states": opts.States, "check": true,
		}); err != nil {
			return nil, err
		}
		if err := addCall("score", map[string]any{
			"workload": name, "budget": opts.Budget, "strategy": "twobit",
		}); err != nil {
			return nil, err
		}
		// Exercise the upload path: record the workload locally and score
		// the uploaded trace. The server must report exactly the events we
		// recorded.
		b64, err := recordTraceB64(name, opts.Budget)
		if err != nil {
			return nil, err
		}
		if err := addCall("score", map[string]any{
			"trace_b64": b64, "strategy": "profile",
		}); err != nil {
			return nil, err
		}
	}

	// The indirect replication family rides every load run on its own
	// dispatch workloads; check:true routes each through the structural
	// clustering verifier, so a selfcheck also proves the second family
	// sound end to end.
	for _, w := range bench.IndirectWorkloads() {
		if err := addCall("replicate", map[string]any{
			"workload": w.Name, "budget": opts.Budget, "family": "indirect", "check": true,
		}); err != nil {
			return nil, err
		}
	}

	client := &http.Client{Timeout: opts.Timeout}
	report := &LoadReport{PerEndpoint: map[string]int{}}
	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// canonical[i] is call i's first response body; repeats compare
	// against it.
	canonical := make([][]byte, len(calls))
	var canonMu sync.Mutex

	type job struct{ call, repeat int }
	jobs := make(chan job)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				c := calls[j.call]
				body, retries, err := postWithRetry(ctx, client, baseURL+"/v1/"+c.endpoint, c.body)
				if err != nil {
					setErr(fmt.Errorf("%s: %w", c.endpoint, err))
					continue
				}
				canonMu.Lock()
				if canonical[j.call] == nil {
					canonical[j.call] = body
				} else if !bytes.Equal(canonical[j.call], body) {
					setErr(fmt.Errorf("%s: response bytes differ between repeats for body %s",
						c.endpoint, calls[j.call].body))
				}
				canonMu.Unlock()
				mu.Lock()
				report.Requests++
				report.Retried429 += retries
				report.PerEndpoint[c.endpoint]++
				report.ResponseBytes += int64(len(body))
				mu.Unlock()
			}
		}()
	}
	for r := 0; r < opts.Repeats; r++ {
		for i := range calls {
			select {
			case jobs <- job{call: i, repeat: r}:
			case <-ctx.Done():
				close(jobs)
				wg.Wait()
				return report, ctx.Err()
			}
		}
	}
	close(jobs)
	wg.Wait()
	report.Seconds = time.Since(start).Seconds()
	if firstErr != nil {
		return report, firstErr
	}
	return report, nil
}

// postWithRetry POSTs body, honouring 429 + Retry-After for up to ~30
// attempts: backpressure is part of the service contract, not a failure.
func postWithRetry(ctx context.Context, client *http.Client, url string, body []byte) ([]byte, int, error) {
	retries := 0
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, retries, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, retries, err
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, retries, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return respBody, retries, nil
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				return nil, retries, errors.New("429 without Retry-After")
			}
			retries++
			if retries > 30 {
				return nil, retries, errors.New("still overloaded after 30 retries")
			}
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
				return nil, retries, ctx.Err()
			}
		default:
			return nil, retries, fmt.Errorf("status %d: %s", resp.StatusCode, respBody)
		}
	}
}

// recordTraceB64 records a workload's branch trace locally and returns it
// as a base64 BLTRACE1 stream — the client side of the upload path.
func recordTraceB64(workload string, budget uint64) (string, error) {
	w, err := bench.ByName(workload)
	if err != nil {
		return "", err
	}
	c, err := bench.Compile(w)
	if err != nil {
		return "", err
	}
	m := interp.New(c.Prog)
	m.MaxBranches = budget
	_ = m.SetGlobal("wscale", 1<<30)
	slab := trace.NewSlab(int(budget))
	m.Rec = slab
	if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
		return "", err
	}
	slab.Seal()
	var buf bytes.Buffer
	if _, err := slab.WriteTo(&buf); err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}
