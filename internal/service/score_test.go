package service

import (
	"testing"

	"repro/internal/trace"
)

// scoreBenchSlab records a deterministic ~100k-event trace shaped like a
// real workload: a mix of loop back-edges (long runs) and data-dependent
// branches.
func scoreBenchSlab(nsites int, events int) *trace.Slab {
	s := trace.NewSlab(events)
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < events; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		site := int32(state>>33) % int32(nsites)
		if site < 0 {
			site = -site
		}
		taken := state&0x70 != 0 // biased taken, like loop branches
		s.Record(site, taken)
	}
	s.Seal()
	return s
}

// TestScoreSlabSteadyStateAllocs pins the pooled score path: once the
// per-request state has warmed up, scoring a trace must not allocate
// proportionally to sites or events — only the handful of fixed escapes
// (evaluator headers, the memoised entry) remain.
func TestScoreSlabSteadyStateAllocs(t *testing.T) {
	srv := mustNew(t, Config{})
	slab := scoreBenchSlab(64, 20_000)
	preds := []string{"taken", "not_taken", "", "taken"}
	for _, strategy := range []string{"profile", "last", "twobit", "static"} {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			score := func() {
				if _, err := srv.scoreSlab(slab, strategy, preds); err != nil {
					t.Fatal(err)
				}
			}
			score() // warm the pool
			if avg := testing.AllocsPerRun(20, score); avg > 8 {
				t.Fatalf("scoreSlab(%s) allocates %.1f objects per call in steady state", strategy, avg)
			}
		})
	}
}

// BenchmarkScoreSlab measures the service's hot scoring path end to end
// (site scan + strategy replay) against a recorded trace, per strategy.
func BenchmarkScoreSlab(b *testing.B) {
	srv := mustNew(b, Config{})
	slab := scoreBenchSlab(64, 100_000)
	preds := []string{"taken", "not_taken", "", "taken"}
	for _, strategy := range []string{"profile", "last", "twobit", "static"} {
		strategy := strategy
		b.Run(strategy, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := srv.scoreSlab(slab, strategy, preds); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(slab.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
