package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runner"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen around
// the service's working range: cache hits answer in microseconds, a cold
// 2M-branch recording in tens of milliseconds, a replicate request with
// two live measuring runs in the hundreds.
var latencyBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// endpointMetrics aggregates one endpoint's request counters.
type endpointMetrics struct {
	inflight atomic.Int64
	rejected atomic.Int64
	buckets  [len(latencyBuckets) + 1]atomic.Int64

	mu    sync.Mutex
	codes map[int]int64
	sum   float64
	count int64
}

// metrics is the /metrics registry: per-endpoint request counts by status
// code, in-flight gauges, 429 rejections, latency histograms, and the
// per-item outcomes of /v1/batch.
type metrics struct {
	endpoints map[string]*endpointMetrics
	names     []string

	itemMu sync.Mutex
	items  map[string]map[int]int64 // batch sub-request outcomes by endpoint then code
}

func newMetrics(names []string) *metrics {
	m := &metrics{
		endpoints: map[string]*endpointMetrics{},
		names:     append([]string(nil), names...),
		items:     map[string]map[int]int64{},
	}
	sort.Strings(m.names)
	for _, n := range m.names {
		m.endpoints[n] = &endpointMetrics{codes: map[int]int64{}}
	}
	return m
}

// observeItem counts one /v1/batch sub-request outcome.
func (m *metrics) observeItem(endpoint string, code int) {
	m.itemMu.Lock()
	if m.items[endpoint] == nil {
		m.items[endpoint] = map[int]int64{}
	}
	m.items[endpoint][code]++
	m.itemMu.Unlock()
}

func (m *metrics) inflight(name string, delta int64) {
	m.endpoints[name].inflight.Add(delta)
}

func (m *metrics) rejected(name string) {
	m.endpoints[name].rejected.Add(1)
}

func (m *metrics) observe(name string, code int, elapsed time.Duration) {
	e := m.endpoints[name]
	secs := elapsed.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if secs <= latencyBuckets[i] {
			break
		}
	}
	e.buckets[i].Add(1)
	e.mu.Lock()
	e.codes[code]++
	e.sum += secs
	e.count++
	e.mu.Unlock()
}

// storeSnapshot carries the artifact store's counters into write, both
// the whole-store totals and the per-shard breakdown.
type storeSnapshot struct {
	entries      int
	hits, misses int64
	shards       []runner.ShardCounters
}

// verifySnapshot carries the replication-equivalence verifier's verdict
// counters into write.
type verifySnapshot struct {
	verified, failed int64
}

// analyzeSnapshot carries the static-analysis endpoint's counters into
// write: branch sites examined and sites proven one-way.
type analyzeSnapshot struct {
	sites, decided int64
}

// diskSnapshot carries the disk tier's counters into write (nil when the
// tier is disabled — its metric lines are then omitted entirely).
type diskSnapshot struct {
	entries                            int
	bytes                              int64
	hits, misses, evictions, putErrors int64
}

// clusterSnapshot carries the cluster view into write (nil when
// clustering is off).
type clusterSnapshot struct {
	nodes                        int
	peerUp                       map[string]bool
	forwards, forwardErrors      int64
	peerFetches, peerFetchErrors int64
	rateLimited                  int64
}

// write renders the registry in Prometheus text exposition format, with
// deterministic ordering (sorted endpoints, sorted codes, buckets in
// bound order) so snapshots diff cleanly.
func (m *metrics) write(w io.Writer, eng runner.Stats, store storeSnapshot, verify verifySnapshot, analyze analyzeSnapshot, disk *diskSnapshot, clu *clusterSnapshot, uptime time.Duration) {
	for _, name := range m.names {
		e := m.endpoints[name]
		e.mu.Lock()
		codes := make([]int, 0, len(e.codes))
		for c := range e.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "kralld_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c, e.codes[c])
		}
		sum, count := e.sum, e.count
		e.mu.Unlock()
		var cum int64
		for i, ub := range latencyBuckets {
			cum += e.buckets[i].Load()
			fmt.Fprintf(w, "kralld_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", name, ub, cum)
		}
		cum += e.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "kralld_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "kralld_request_seconds_sum{endpoint=%q} %g\n", name, sum)
		fmt.Fprintf(w, "kralld_request_seconds_count{endpoint=%q} %d\n", name, count)
		fmt.Fprintf(w, "kralld_inflight{endpoint=%q} %d\n", name, e.inflight.Load())
		fmt.Fprintf(w, "kralld_rejected_total{endpoint=%q} %d\n", name, e.rejected.Load())
	}
	m.itemMu.Lock()
	itemEPs := make([]string, 0, len(m.items))
	for ep := range m.items {
		itemEPs = append(itemEPs, ep)
	}
	sort.Strings(itemEPs)
	for _, ep := range itemEPs {
		codes := make([]int, 0, len(m.items[ep]))
		for c := range m.items[ep] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "kralld_batch_items_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, m.items[ep][c])
		}
	}
	m.itemMu.Unlock()
	// The experiment engine's counters: the same numbers krallbench prints
	// to stderr, exported instead of logged.
	fmt.Fprintf(w, "kralld_engine_workers %d\n", eng.Workers)
	fmt.Fprintf(w, "kralld_engine_jobs_total %d\n", eng.Jobs)
	fmt.Fprintf(w, "kralld_engine_job_seconds_total %g\n", eng.JobTime.Seconds())
	fmt.Fprintf(w, "kralld_engine_cache_hits_total %d\n", eng.CacheHits)
	fmt.Fprintf(w, "kralld_engine_cache_misses_total %d\n", eng.CacheMisses)
	fmt.Fprintf(w, "kralld_engine_trace_records_total %d\n", eng.TraceRecords)
	fmt.Fprintf(w, "kralld_engine_recorded_events_total %d\n", eng.RecordedEvents)
	fmt.Fprintf(w, "kralld_engine_replays_total %d\n", eng.Replays)
	fmt.Fprintf(w, "kralld_engine_replayed_events_total %d\n", eng.ReplayedEvents)
	fmt.Fprintf(w, "kralld_engine_live_runs_total %d\n", eng.LiveRuns)
	fmt.Fprintf(w, "kralld_store_entries %d\n", store.entries)
	fmt.Fprintf(w, "kralld_store_hits_total %d\n", store.hits)
	fmt.Fprintf(w, "kralld_store_misses_total %d\n", store.misses)
	fmt.Fprintf(w, "kralld_store_shards %d\n", len(store.shards))
	for i, sh := range store.shards {
		fmt.Fprintf(w, "kralld_store_shard_entries{shard=\"%d\"} %d\n", i, sh.Entries)
		fmt.Fprintf(w, "kralld_store_shard_hits_total{shard=\"%d\"} %d\n", i, sh.Hits)
		fmt.Fprintf(w, "kralld_store_shard_misses_total{shard=\"%d\"} %d\n", i, sh.Misses)
	}
	if disk != nil {
		fmt.Fprintf(w, "kralld_disk_entries %d\n", disk.entries)
		fmt.Fprintf(w, "kralld_disk_bytes %d\n", disk.bytes)
		fmt.Fprintf(w, "kralld_disk_hits_total %d\n", disk.hits)
		fmt.Fprintf(w, "kralld_disk_misses_total %d\n", disk.misses)
		fmt.Fprintf(w, "kralld_disk_evictions_total %d\n", disk.evictions)
		fmt.Fprintf(w, "kralld_disk_put_errors_total %d\n", disk.putErrors)
	}
	if clu != nil {
		fmt.Fprintf(w, "kralld_cluster_ring_nodes %d\n", clu.nodes)
		peers := make([]string, 0, len(clu.peerUp))
		for p := range clu.peerUp {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			up := 0
			if clu.peerUp[p] {
				up = 1
			}
			fmt.Fprintf(w, "kralld_cluster_peer_up{peer=%q} %d\n", p, up)
		}
		fmt.Fprintf(w, "kralld_cluster_forwards_total %d\n", clu.forwards)
		fmt.Fprintf(w, "kralld_cluster_forward_errors_total %d\n", clu.forwardErrors)
		fmt.Fprintf(w, "kralld_cluster_peer_fetches_total %d\n", clu.peerFetches)
		fmt.Fprintf(w, "kralld_cluster_peer_fetch_errors_total %d\n", clu.peerFetchErrors)
		fmt.Fprintf(w, "kralld_cluster_rate_limited_total %d\n", clu.rateLimited)
	}
	fmt.Fprintf(w, "kralld_analyze_sites_total %d\n", analyze.sites)
	fmt.Fprintf(w, "kralld_analyze_decided_total %d\n", analyze.decided)
	fmt.Fprintf(w, "krallcheck_verified_total %d\n", verify.verified)
	fmt.Fprintf(w, "krallcheck_failed_total %d\n", verify.failed)
	fmt.Fprintf(w, "kralld_uptime_seconds %g\n", uptime.Seconds())
}
