package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// analyzeSrc has two SCCP-decidable branches (x>100 never taken, x<100
// always taken) around an undecided loop — the same shape the analysis
// unit tests pin, here driven over the wire.
const analyzeSrc = `
func main() int {
    var x int = 10;
    var s int = 0;
    if x > 100 { s = s + 7; } else { s = s + 1; }
    for var i int = 0; i < 1000; i = i + 1 {
        if i % 3 == 0 { s = s + 1; }
    }
    if x < 100 { s = s + 2; }
    print(s);
    return s;
}`

// TestAnalyzeEndpoint drives POST /v1/analyze end to end: response shape,
// SCCP facts, probability pinning, and the decided count.
func TestAnalyzeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "analyze", `{"source":`+mustJSON(t, analyzeSrc)+`}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SchemaV != Schema || resp.Kind != "analyze" {
		t.Fatalf("envelope: %+v", resp)
	}
	if resp.NumSites != len(resp.Sites) {
		t.Fatalf("num_sites %d, %d site rows", resp.NumSites, len(resp.Sites))
	}
	if resp.Decided != 2 {
		t.Fatalf("decided = %d, want 2:\n%s", resp.Decided, body)
	}
	facts := map[string]int{}
	for _, s := range resp.Sites {
		facts[s.Fact]++
		switch s.Fact {
		case "always-taken":
			if s.Prob != 1 || s.Pred != "taken" || s.Confidence != 1 {
				t.Errorf("always-taken site %d: prob=%v pred=%s conf=%v", s.Site, s.Prob, s.Pred, s.Confidence)
			}
		case "never-taken":
			if s.Prob != 0 || s.Pred != "not_taken" {
				t.Errorf("never-taken site %d: prob=%v pred=%s", s.Site, s.Prob, s.Pred)
			}
		}
	}
	if facts["always-taken"] != 1 || facts["never-taken"] != 1 || facts["undecided"] == 0 {
		t.Fatalf("fact histogram %v", facts)
	}
}

// TestAnalyzeWorkloadAndErrors covers the workload path and the request
// validation errors shared with the other endpoints.
func TestAnalyzeWorkloadAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "analyze", `{"workload":"compress"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Program != "compress" || resp.NumSites == 0 {
		t.Fatalf("workload response: %+v", resp)
	}
	if code, _ := post(t, ts, "analyze", `{}`); code != http.StatusBadRequest {
		t.Fatalf("no program: status %d, want 400", code)
	}
	if code, _ := post(t, ts, "analyze", `{"workload":"nope"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown workload: status %d, want 400", code)
	}
	if code, _ := post(t, ts, "analyze", `{"source":"func main( {"}`); code != http.StatusBadRequest {
		t.Fatalf("bad source: status %d, want 400", code)
	}
}

// TestAnalyzeCachedAndMetered pins the store discipline and the
// kralld_analyze_* counters: repeated requests for the same program
// compute the report once, and the counters advance only on that cold
// compute.
func TestAnalyzeCachedAndMetered(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"source":` + mustJSON(t, analyzeSrc) + `}`
	var first []byte
	for i := 0; i < 3; i++ {
		code, body := post(t, ts, "analyze", req)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		if first == nil {
			first = body
		} else if string(first) != string(body) {
			t.Fatalf("response bytes drifted between repeats")
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mbody, _ := io.ReadAll(resp.Body)
	var sites AnalyzeResponse
	if err := json.Unmarshal(first, &sites); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		// One cold compute despite three requests: the counters are the
		// single-source numbers, not per-request tallies.
		"kralld_analyze_sites_total " + itoa(sites.NumSites),
		"kralld_analyze_decided_total 2",
		`kralld_requests_total{endpoint="analyze",code="200"} 3`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q:\n%s", want, mbody)
		}
	}
}

// TestReplicateStaticBudget pins the static_budget knob: replication must
// report the statically-decided sites it skipped, and the transformed
// program must still agree with the baseline checksum.
func TestReplicateStaticBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"source":` + mustJSON(t, analyzeSrc) + `,"budget":20000,"static_budget":true}`
	code, body := post(t, ts, "replicate", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp ReplicateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.SemanticsVerified {
		t.Fatal("checksums diverged under static_budget")
	}
	// Both SCCP-decided sites must be claimed by the static skip, whatever
	// machine kind the profile-driven selection had picked for them.
	if resp.Machines.StaticSkipped != 2 {
		t.Fatalf("static_skipped = %d, want 2:\n%s", resp.Machines.StaticSkipped, body)
	}
}

func mustJSON(t *testing.T, s string) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
