package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// BatchItem is one sub-request of POST /v1/batch: a pipeline endpoint
// name plus the same body that endpoint would take on its own.
type BatchItem struct {
	Endpoint string `json:"endpoint"`
	Request
}

// BatchRequest is the body of POST /v1/batch. Items execute concurrently
// over the shared artifact store; results come back in input order.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
	// Workers caps this batch's concurrently executing items (0 = the
	// server's batch worker limit; requests may lower it, never raise it).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the whole batch in milliseconds (0 = the server's
	// request timeout; capped by it). Items still pending when it expires
	// answer 504 individually.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchItemResult is one item's outcome: the HTTP status the endpoint
// would have answered alone, plus either its response body or its error.
type BatchItemResult struct {
	Endpoint string          `json:"endpoint"`
	Status   int             `json:"status"`
	Error    string          `json:"error,omitempty"`
	Body     json.RawMessage `json:"body,omitempty"`
}

// BatchResponse answers /v1/batch. Items are in input order regardless of
// completion order, so responses stay byte-stable under concurrency.
type BatchResponse struct {
	SchemaV string            `json:"schema"`
	Kind    string            `json:"kind"`
	OK      int               `json:"ok"`
	Failed  int               `json:"failed"`
	Items   []BatchItemResult `json:"items"`
}

// pipelineHandler resolves a batch item's endpoint name.
func (s *Server) pipelineHandler(name string) func(context.Context, *Request) (any, error) {
	switch name {
	case "analyze":
		return s.handleAnalyze
	case "profile":
		return s.handleProfile
	case "machines":
		return s.handleMachines
	case "replicate":
		return s.handleReplicate
	case "score":
		return s.handleScore
	}
	return nil
}

// handleBatch is POST /v1/batch: decode once, admit once, then run every
// item over a bounded worker pool sharing the sharded artifact store.
// Batching exists to amortise per-request overhead — connection handling,
// admission, body framing — across many pipeline calls, which is what
// lets a client sustain the store's throughput instead of the HTTP
// stack's. Admission is per batch (the "batch" semaphore); item
// concurrency is bounded by the server's BatchWorkers, so a batch cannot
// commandeer more parallelism than MaxInflight single requests could.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, batchEndpoint, &httpError{http.StatusMethodNotAllowed, "use POST"}, time.Now())
		return
	}
	start := time.Now()

	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, batchEndpoint, &httpError{code, "decoding request: " + err.Error()}, start)
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, batchEndpoint, badRequest("batch needs at least one item"), start)
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.writeError(w, batchEndpoint, &httpError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch has %d items, cap is %d", len(req.Items), s.cfg.MaxBatchItems)}, start)
		return
	}

	select {
	case s.sems[batchEndpoint] <- struct{}{}:
		defer func() { <-s.sems[batchEndpoint] }()
	default:
		w.Header().Set("Retry-After", "1")
		s.metrics.rejected(batchEndpoint)
		s.writeError(w, batchEndpoint, &httpError{http.StatusTooManyRequests,
			fmt.Sprintf("endpoint %s at its concurrency limit (%d)", batchEndpoint, s.cfg.MaxInflight)}, start)
		return
	}
	s.metrics.inflight(batchEndpoint, +1)
	defer s.metrics.inflight(batchEndpoint, -1)

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	workers := s.cfg.BatchWorkers
	if req.Workers > 0 && req.Workers < workers {
		workers = req.Workers
	}
	if workers > len(req.Items) {
		workers = len(req.Items)
	}

	results := make([]BatchItemResult, len(req.Items))
	var next atomic.Int64
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Items) {
					return
				}
				results[i] = s.runBatchItem(ctx, &req.Items[i])
			}
		}()
	}
	wg.Wait()

	ok, failed, size := 0, 0, 0
	for i := range results {
		if results[i].Status == http.StatusOK {
			ok++
		} else {
			failed++
		}
		size += len(results[i].Body) + len(results[i].Error) + 64
		s.metrics.observeItem(results[i].Endpoint, results[i].Status)
	}

	// The envelope is assembled by hand: item bodies are already compact
	// JSON from the per-item marshal, and routing them through a second
	// json.Marshal (as RawMessage fields) would re-validate and re-copy
	// every byte — the dominant per-batch cost for large batches. The
	// layout mirrors BatchResponse exactly; TestBatchMatchesSingle pins
	// item bodies byte-identical to the standalone endpoints.
	var buf bytes.Buffer
	buf.Grow(size + 64)
	fmt.Fprintf(&buf, `{"schema":%q,"kind":"batch","ok":%d,"failed":%d,"items":[`, Schema, ok, failed)
	for i := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		res := &results[i]
		buf.WriteString(`{"endpoint":`)
		writeJSONString(&buf, res.Endpoint)
		fmt.Fprintf(&buf, `,"status":%d`, res.Status)
		if res.Error != "" {
			buf.WriteString(`,"error":`)
			writeJSONString(&buf, res.Error)
		}
		if len(res.Body) > 0 {
			buf.WriteString(`,"body":`)
			buf.Write(res.Body)
		}
		buf.WriteByte('}')
	}
	buf.WriteString("]}\n")

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
	s.metrics.observe(batchEndpoint, http.StatusOK, time.Since(start))
	s.log.Debug("batch", "items", len(req.Items), "ok", ok, "failed", failed,
		"workers", workers, "bytes", buf.Len(), "elapsed", time.Since(start))
}

// writeJSONString appends s JSON-encoded, matching encoding/json's
// escaping so hand-assembled envelopes stay byte-identical to marshaled
// ones.
func writeJSONString(buf *bytes.Buffer, s string) {
	b, err := json.Marshal(s)
	if err != nil { // a string cannot fail to marshal
		b = []byte(`""`)
	}
	buf.Write(b)
}

// runBatchItem executes one item exactly as its standalone endpoint
// would: as a panic-protected engine job, answering the same status and
// body bytes the single-request path produces.
func (s *Server) runBatchItem(ctx context.Context, item *BatchItem) BatchItemResult {
	res := BatchItemResult{Endpoint: item.Endpoint}
	h := s.pipelineHandler(item.Endpoint)
	if h == nil {
		res.Status = http.StatusBadRequest
		res.Error = fmt.Sprintf("unknown endpoint %q (want one of analyze, profile, machines, replicate, score)", item.Endpoint)
		return res
	}
	out, err := runJob(s.eng, func() (any, error) { return h(ctx, &item.Request) })
	if err == nil {
		var buf []byte
		buf, err = json.Marshal(out)
		if err == nil {
			res.Status = http.StatusOK
			res.Body = buf
			return res
		}
	}
	res.Status = statusFor(err)
	res.Error = err.Error()
	return res
}
