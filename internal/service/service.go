// Package service implements kralld, the long-running prediction service:
// an HTTP/JSON daemon that serves the paper's profile → state-machine →
// replication pipeline over the wire. It accepts programs in the BL
// language and uploaded BLTRACE1 trace slabs, and exposes
//
//	POST /v1/profile    profile a program's branches
//	POST /v1/machines   select branch prediction state machines
//	POST /v1/replicate  replicate code and measure the transformed program
//	POST /v1/score      score a trace against a prediction strategy
//	GET  /metrics       engine counters and request latency histograms
//	GET  /healthz       liveness
//
// Every response carries schema "kralld/v1" and is byte-stable: the same
// request body always produces the same response bytes, which is what lets
// the load client (Load) assert correctness under concurrency. Expensive
// intermediates — compiled programs and recorded trace slabs — live in a
// content-addressed LRU store shared by all endpoints, so a hot program is
// interpreted once and replayed many times, exactly like the batch
// engine's record-once/replay-many path.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/diskstore"
	"repro/internal/exec"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Schema identifies the response format of every endpoint.
const Schema = "kralld/v1"

// Endpoints lists the POST pipeline endpoints in metrics order; "batch"
// (POST /v1/batch, which multiplexes the five) is metered separately.
var Endpoints = []string{"analyze", "machines", "profile", "replicate", "score"}

// batchEndpoint is the metrics/admission name of POST /v1/batch.
const batchEndpoint = "batch"

// Config parameterises a Server. The zero value is usable: every field
// has a production-shaped default.
type Config struct {
	// Workers is the experiment engine's worker count (0 = GOMAXPROCS).
	Workers int
	// MaxInflight bounds concurrently-served requests per endpoint;
	// excess requests are refused with 429 + Retry-After. 0 = 2×Workers.
	MaxInflight int
	// RequestTimeout bounds one request's total service time, threaded as
	// a context deadline into the interpreter loop (default 30s).
	RequestTimeout time.Duration
	// DefaultBudget is the branch budget applied when a request omits one
	// (default 200k); MaxBudget caps requested budgets (default 5M).
	DefaultBudget, MaxBudget uint64
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// TraceLimits bounds uploaded BLTRACE1 slabs (default: MaxBudget
	// events, 64k sites, MaxBodyBytes bytes). The site cap matters most:
	// scoring sizes per-site tables from the largest site in the trace, so
	// an uncapped upload naming site 2^31-1 would OOM the daemon from a
	// few bytes of input.
	TraceLimits trace.Limits
	// CacheEntries sizes the content-addressed artifact store (default 128);
	// CacheShards splits it into independently locked shards (rounded up to
	// a power of two; default 8). One shard reproduces the old single-mutex
	// LRU exactly.
	CacheEntries int
	CacheShards  int
	// MaxBatchItems caps the sub-requests accepted in one /v1/batch call
	// (default 64); BatchWorkers caps the sub-requests a single batch
	// executes concurrently (default: the engine's worker count). A batch
	// may ask for fewer workers than the cap, never more.
	MaxBatchItems int
	BatchWorkers  int
	// DiskDir enables the disk artifact tier: recorded traces, profile
	// bundles, machine selections, and scores persist under this directory
	// and survive restarts and memory-tier eviction. Empty = memory only.
	DiskDir string
	// DiskMaxBytes budgets the disk tier (default 256 MiB); DiskFsync
	// forces fsync-before-rename on every disk write.
	DiskMaxBytes int64
	DiskFsync    bool
	// ClusterSelf enables multi-node serving: this node's own base URL as
	// peers reach it (e.g. "http://127.0.0.1:9301"). ClusterPeers lists
	// the other nodes. Empty ClusterSelf = single node.
	ClusterSelf  string
	ClusterPeers []string
	// ClusterHealth tunes peer probing (zero values = 1s interval, 500ms
	// timeout, 2 consecutive failures to mark down).
	ClusterHealth cluster.HealthOptions
	// MaxRPS caps locally-admitted pipeline requests per second with a
	// token bucket (429 + Retry-After over the cap). 0 = uncapped. Capped
	// nodes partition host capacity, which is what makes multi-node
	// scaling measurable on one machine.
	MaxRPS float64
	// Logger receives structured request/lifecycle lines (nil = discard).
	Logger *slog.Logger
	// Backend selects the execution plane for every program run the server
	// performs (recording, replicate measurement): nil or exec.Interp is
	// the reference interpreter, exec.VM the compiled bytecode machine.
	// Both are observably identical, so responses never depend on the
	// choice — only service throughput does. cmd/kralld maps its -backend
	// flag here via exec.ByName.
	Backend exec.Backend
}

func (c *Config) setDefaults() {
	if c.MaxInflight == 0 {
		c.MaxInflight = 2 * runner.New(c.Workers).Workers()
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DefaultBudget == 0 {
		c.DefaultBudget = 200_000
	}
	if c.MaxBudget == 0 {
		c.MaxBudget = 5_000_000
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.TraceLimits == (trace.Limits{}) {
		c.TraceLimits = trace.Limits{MaxEvents: c.MaxBudget, MaxSites: 1 << 16, MaxBytes: c.MaxBodyBytes}
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.CacheShards == 0 {
		c.CacheShards = 8
	}
	if c.MaxBatchItems == 0 {
		c.MaxBatchItems = 64
	}
	if c.BatchWorkers == 0 {
		c.BatchWorkers = runner.New(c.Workers).Workers()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Backend == nil {
		c.Backend = exec.Interp
	}
}

// Server is the kralld HTTP service. Create with New; it is safe for
// concurrent use by any number of requests.
type Server struct {
	cfg     Config
	eng     *runner.Engine
	store   *tieredStore
	cluster *cluster.Cluster
	limiter *rateLimiter
	metrics *metrics
	mux     *http.ServeMux
	sems    map[string]chan struct{}
	log     *slog.Logger
	started time.Time

	// forwardClient carries proxied requests to ring peers.
	forwardClient *http.Client
	// draining flips when Serve begins shutdown; /readyz then answers 503
	// so load balancers stop sending new work while in-flight drains.
	draining atomic.Bool
	// rateLimited counts requests refused by the MaxRPS token bucket.
	rateLimited atomic.Int64

	// verifyOK/verifyFail count replication-equivalence verifier verdicts
	// on /v1/replicate requests that asked for checking; both are exported
	// on /metrics as krallcheck_{verified,failed}_total.
	verifyOK   atomic.Int64
	verifyFail atomic.Int64

	// analyzeSites/analyzeDecided count branch sites examined and proven
	// one-way by /v1/analyze (cold runs only; cache hits recompute
	// nothing). Exported as kralld_analyze_{sites,decided}_total.
	analyzeSites   atomic.Int64
	analyzeDecided atomic.Int64
}

// New builds a server. The engine provides bounded job execution and the
// record/replay counters surfaced on /metrics; the content-addressed
// store holds compiled programs and recorded trace slabs in a sharded
// in-memory LRU, optionally backed by the disk tier (Config.DiskDir) and
// the cluster peer fetch (Config.ClusterSelf).
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	metered := append([]string{batchEndpoint}, Endpoints...)
	s := &Server{
		cfg:     cfg,
		eng:     runner.New(cfg.Workers),
		metrics: newMetrics(metered),
		mux:     http.NewServeMux(),
		sems:    map[string]chan struct{}{},
		log:     cfg.Logger,
		started: time.Now(),
	}
	s.store = &tieredStore{mem: runner.NewSharded(cfg.CacheEntries, cfg.CacheShards)}
	if cfg.DiskDir != "" {
		disk, err := diskstore.Open(cfg.DiskDir, diskstore.Options{MaxBytes: cfg.DiskMaxBytes, Fsync: cfg.DiskFsync})
		if err != nil {
			return nil, fmt.Errorf("opening disk tier: %w", err)
		}
		s.store.disk = disk
	}
	if cfg.ClusterSelf != "" {
		cl, err := cluster.New(cluster.Options{
			Self:   cfg.ClusterSelf,
			Peers:  cfg.ClusterPeers,
			Health: cfg.ClusterHealth,
			Logger: cfg.Logger,
		})
		if err != nil {
			return nil, err
		}
		s.cluster = cl
		s.store.fetchPeer = s.fetchFromOwner
		s.forwardClient = &http.Client{Timeout: cfg.RequestTimeout}
	}
	if cfg.MaxRPS > 0 {
		s.limiter = newRateLimiter(cfg.MaxRPS)
	}
	for _, ep := range metered {
		s.sems[ep] = make(chan struct{}, cfg.MaxInflight)
	}
	s.mux.HandleFunc("/v1/analyze", s.endpoint("analyze", s.handleAnalyze))
	s.mux.HandleFunc("/v1/profile", s.endpoint("profile", s.handleProfile))
	s.mux.HandleFunc("/v1/machines", s.endpoint("machines", s.handleMachines))
	s.mux.HandleFunc("/v1/replicate", s.endpoint("replicate", s.handleReplicate))
	s.mux.HandleFunc("/v1/score", s.endpoint("score", s.handleScore))
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/internal/artifact/", s.handleInternalArtifact)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s, nil
}

// Start launches the server's background work — today, cluster health
// probing — until ctx is cancelled. Serve calls it; tests that drive the
// Handler directly (httptest) call it themselves when they need probing.
func (s *Server) Start(ctx context.Context) {
	if s.cluster != nil {
		s.cluster.Start(ctx)
	}
}

// Cluster exposes the node's cluster view (nil when clustering is off).
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// Engine exposes the server's experiment engine (counters, artifact cache).
func (s *Server) Engine() *runner.Engine { return s.eng }

// Handler is the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until ctx is cancelled, then drains:
// the listener closes immediately (new requests are refused), in-flight
// requests get up to drainTimeout to complete. This is the SIGTERM path of
// cmd/kralld.
func (s *Server) Serve(ctx context.Context, l net.Listener, drainTimeout time.Duration) error {
	// Read deadlines stop a slow client from pinning resources: headers
	// must arrive promptly and the whole body within the request budget,
	// so a trickled upload cannot hold a connection (or an admission slot)
	// open indefinitely.
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       s.cfg.RequestTimeout,
	}
	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	s.Start(bctx)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.log.Info("draining", "timeout", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	<-errc // http.ErrServerClosed from Serve
	stats := s.eng.Stats()
	s.log.Info("engine stats",
		"jobs", stats.Jobs,
		"cache_hits", stats.CacheHits, "cache_misses", stats.CacheMisses,
		"recordings", stats.TraceRecords, "replays", stats.Replays,
		"live_runs", stats.LiveRuns)
	return err
}

// httpError carries a status code through the handler return path.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// endpoint wraps one pipeline handler with the service plumbing: method
// check, per-endpoint admission (429 + Retry-After on overload), body
// limit, request deadline, metrics, structured logging, and stable JSON
// encoding. The handler body runs as an engine job, so it is
// panic-protected and counted like any batch job.
func (s *Server) endpoint(name string, h func(ctx context.Context, req *Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, name, &httpError{http.StatusMethodNotAllowed, "use POST"}, time.Now())
			return
		}
		start := time.Now()

		// Read the whole body before taking an admission slot: a client
		// that trickles its upload must not occupy MaxInflight capacity
		// while doing so (the server's ReadTimeout bounds the trickle).
		var req Request
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			code := http.StatusBadRequest
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				code = http.StatusRequestEntityTooLarge
			}
			s.writeError(w, name, &httpError{code, "decoding request: " + err.Error()}, start)
			return
		}
		// The check=true query knob turns on the replication-equivalence
		// verifier without touching the body — so a curl against a canned
		// request file can still opt in. Only replicate reads Check.
		if v := r.URL.Query().Get("check"); v == "true" || v == "1" {
			req.Check = true
		}

		// Cluster routing: if another healthy node owns this request's
		// artifact, proxy to it (one hop; forwarded requests never
		// re-forward). A failed forward falls through and serves locally.
		if s.maybeForward(w, r, name, &req, start) {
			return
		}

		// The per-node rate cap admits only locally-served work; proxied
		// requests count against the owner's bucket, not this node's.
		if s.limiter != nil && !s.limiter.allow() {
			s.rateLimited.Add(1)
			w.Header().Set("Retry-After", "1")
			s.metrics.rejected(name)
			s.writeError(w, name, &httpError{http.StatusTooManyRequests,
				fmt.Sprintf("node rate cap (%g req/s) exceeded", s.cfg.MaxRPS)}, start)
			return
		}

		select {
		case s.sems[name] <- struct{}{}:
			defer func() { <-s.sems[name] }()
		default:
			// Backpressure: the endpoint is at its concurrency limit.
			// Refuse instead of queueing so load sheds at the edge.
			w.Header().Set("Retry-After", "1")
			s.metrics.rejected(name)
			s.writeError(w, name, &httpError{http.StatusTooManyRequests,
				fmt.Sprintf("endpoint %s at its concurrency limit (%d)", name, s.cfg.MaxInflight)}, start)
			return
		}
		s.metrics.inflight(name, +1)
		defer s.metrics.inflight(name, -1)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		resp, err := runJob(s.eng, func() (any, error) { return h(ctx, &req) })
		if err != nil {
			s.writeError(w, name, err, start)
			return
		}
		buf, err := json.Marshal(resp)
		if err != nil {
			s.writeError(w, name, err, start)
			return
		}
		buf = append(buf, '\n')
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf)
		s.metrics.observe(name, http.StatusOK, time.Since(start))
		s.log.Debug("request", "endpoint", name, "code", http.StatusOK,
			"bytes", len(buf), "elapsed", time.Since(start))
	}
}

// runJob executes fn as a single engine job: panic-protected, counted in
// the engine's job/time counters, run inline in the request goroutine.
func runJob(eng *runner.Engine, fn func() (any, error)) (any, error) {
	out, err := runner.Map(eng, []struct{}{{}}, func(int, struct{}) (any, error) {
		return fn()
	})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Schema string `json:"schema"`
	Error  string `json:"error"`
}

// statusFor maps a handler error to its HTTP status; shared by the
// single-request error path and the per-item statuses of /v1/batch.
func statusFor(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log only.
		return 499
	case errors.Is(err, trace.ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusInternalServerError
}

func (s *Server) writeError(w http.ResponseWriter, name string, err error, start time.Time) {
	code := statusFor(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	buf, _ := json.Marshal(errorBody{Schema: Schema, Error: err.Error()})
	_, _ = w.Write(append(buf, '\n'))
	s.metrics.observe(name, code, time.Since(start))
	level := slog.LevelWarn
	if code >= 500 {
		level = slog.LevelError
	}
	s.log.Log(context.Background(), level, "request failed",
		"endpoint", name, "code", code, "error", err.Error())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	storeHits, storeMisses := s.store.mem.Counters()
	var disk *diskSnapshot
	if d := s.store.disk; d != nil {
		hits, misses, evictions, putErrors := d.Counters()
		disk = &diskSnapshot{
			entries: d.Len(), bytes: d.Bytes(),
			hits: hits, misses: misses, evictions: evictions, putErrors: putErrors,
		}
	}
	var clu *clusterSnapshot
	if c := s.cluster; c != nil {
		forwards, forwardErrors, peerFetches, peerFetchErrors := c.Counters()
		clu = &clusterSnapshot{
			nodes:           c.Size(),
			peerUp:          map[string]bool{},
			forwards:        forwards,
			forwardErrors:   forwardErrors,
			peerFetches:     peerFetches,
			peerFetchErrors: peerFetchErrors,
			rateLimited:     s.rateLimited.Load(),
		}
		for _, n := range c.Nodes() {
			if !c.IsSelf(n) {
				clu.peerUp[n] = c.PeerUp(n)
			}
		}
	}
	s.metrics.write(w, s.eng.Stats(), storeSnapshot{
		entries: s.store.mem.Len(), hits: storeHits, misses: storeMisses,
		shards: s.store.mem.Shards(),
	}, verifySnapshot{
		verified: s.verifyOK.Load(), failed: s.verifyFail.Load(),
	}, analyzeSnapshot{
		sites: s.analyzeSites.Load(), decided: s.analyzeDecided.Load(),
	}, disk, clu, time.Since(s.started))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"schema\":%q,\"status\":\"ok\"}\n", Schema)
}

// handleReadyz reports readiness for new work: 503 once draining has
// begun, 200 otherwise. Liveness (/healthz) stays green through a drain —
// the process is healthy, it just wants no new requests.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\"schema\":%q,\"status\":\"draining\"}\n", Schema)
		return
	}
	fmt.Fprintf(w, "{\"schema\":%q,\"status\":\"ready\"}\n", Schema)
}

// contentKey builds a content-addressed store key: the kind namespace plus
// the hash of every input that determines the artifact.
func contentKey(kind string, parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return kind + "/" + hex.EncodeToString(h.Sum(nil)[:16])
}

// field is a tiny helper for building cache key parts.
func field(vs ...any) string {
	var sb strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&sb, "%v|", v)
	}
	return sb.String()
}
