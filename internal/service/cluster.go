package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// ForwardedHeader marks a request proxied by a cluster peer. A forwarded
// request is always served locally — one hop at most, so a stale or
// disagreeing ring view can never bounce a request in a loop.
const ForwardedHeader = "X-Kralld-Forwarded"

// RouteKey returns a request's cluster placement key: the content key of
// the artifact it records or replays, which is also what every derived
// product (profile, machines, score) hangs off. Requests with no stable
// placement — uploaded traces, malformed program selection — return ""
// and are served wherever they land. defaultBudget must be the serving
// cluster's DefaultBudget so client-side routing agrees with the ring.
func RouteKey(req *Request, defaultBudget uint64) string {
	if req.TraceB64 != "" {
		return ""
	}
	var progKey string
	switch {
	case req.Workload != "" && req.Source != "":
		return ""
	case req.Workload != "":
		progKey = contentKey("prog", "workload", req.Workload)
	case req.Source != "":
		progKey = contentKey("prog", "source", req.Source)
	default:
		return ""
	}
	b := req.Budget
	if b == 0 {
		b = defaultBudget
	}
	return artifactKey(progKey, b, req)
}

// artifactKey is the one place the artifact content key is built;
// artifactFor (serving) and RouteKey (placement) must never disagree.
func artifactKey(progKey string, budget uint64, req *Request) string {
	return contentKey("art", progKey, field(budget, req.Seed, req.Scale))
}

// maybeForward proxies the request to the healthy ring owner of its
// placement key, if that is another node. It reports whether a response
// was written. Transport failures and peer-side 5xx degrade to serving
// locally — a dead or sick peer costs capacity, never availability.
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, name string, req *Request, start time.Time) bool {
	if s.cluster == nil || r.Header.Get(ForwardedHeader) != "" {
		return false
	}
	key := RouteKey(req, s.cfg.DefaultBudget)
	if key == "" {
		return false
	}
	owner := s.cluster.Owner(key)
	if s.cluster.IsSelf(owner) {
		return false
	}
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/"+name, bytes.NewReader(body))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(ForwardedHeader, s.cluster.Self())
	resp, err := s.forwardClient.Do(preq)
	if err != nil {
		s.cluster.CountForward(err)
		s.log.Warn("forward failed, serving locally", "endpoint", name, "owner", owner, "error", err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		s.cluster.CountForward(errStatus(resp.StatusCode))
		s.log.Warn("forward answered 5xx, serving locally", "endpoint", name, "owner", owner, "code", resp.StatusCode)
		return false
	}
	s.cluster.CountForward(nil)
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		// The peer accepted the request but the relay broke mid-body; the
		// response writer may be torn, so all we can do is fail this hop.
		s.writeError(w, name, err, start)
		return true
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(out)
	s.metrics.observe(name, resp.StatusCode, time.Since(start))
	s.log.Debug("forwarded", "endpoint", name, "owner", owner, "code", resp.StatusCode)
	return true
}

type statusError int

func (e statusError) Error() string { return http.StatusText(int(e)) }

func errStatus(code int) error { return statusError(code) }

// fetchFromOwner is the tieredStore's peer-fetch hook: on a local miss
// for an artifact this node does not own, ask the healthy owner for the
// stored bytes instead of re-recording.
func (s *Server) fetchFromOwner(key string) ([]byte, bool) {
	if s.cluster == nil {
		return nil, false
	}
	owner := s.cluster.Owner(key)
	if s.cluster.IsSelf(owner) {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	data, err := s.cluster.FetchArtifact(ctx, owner, key)
	if err != nil {
		s.log.Debug("peer artifact fetch failed", "key", key, "owner", owner, "error", err)
		return nil, false
	}
	return data, true
}

// handleInternalArtifact serves GET /v1/internal/artifact/{key}: the raw
// disk payload of an artifact, for peers. 404 when the disk tier is off
// or the key is not resident — the peer then computes it itself.
func (s *Server) handleInternalArtifact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "use GET", http.StatusMethodNotAllowed)
		return
	}
	esc := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/internal/artifact/")
	key, err := url.PathUnescape(esc)
	if err != nil {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	data, ok := s.store.artifactPayload(key)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// rateLimiter is a token bucket capping locally-admitted requests per
// second. Its purpose is capacity partitioning, not fairness: with every
// node capped, cluster capacity is node count × MaxRPS, which is what
// makes multi-node scaling measurable on a host whose CPU a single node
// can saturate alone.
type rateLimiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newRateLimiter(rps float64) *rateLimiter {
	burst := rps / 10
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rps, burst: burst, tokens: burst, last: time.Now()}
}

// allow consumes one token if available.
func (l *rateLimiter) allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}
