package service

import (
	"sync"

	"repro/internal/ir"
	"repro/internal/predict"
	"repro/internal/trace"
)

// scoreState is the per-request decode/collector state of /v1/score,
// recycled through scorePool: the site scan, the count tables, the
// dynamic predictors, and the prediction vector are all reused across
// requests (grown monotonically, cleared on take), so the score path of
// the batch pipeline stops allocating per request. The replay callbacks
// are methods on long-lived collectors rather than per-request closures.
type scoreState struct {
	max    trace.MaxSite
	counts *trace.Counts
	last   *predict.LastDirection
	lastN  int
	twobit *predict.TwoBit
	twoN   int
	preds  []ir.Prediction
}

var scorePool = sync.Pool{New: func() any { return new(scoreState) }}

// countsFor returns zeroed count tables covering at least n sites.
func (st *scoreState) countsFor(n int) *trace.Counts {
	if st.counts == nil || len(st.counts.Taken) < n {
		st.counts = trace.NewCounts(n)
		return st.counts
	}
	clear(st.counts.Taken)
	clear(st.counts.NotTaken)
	return st.counts
}

// lastFor returns a reset last-direction predictor covering at least n
// sites.
func (st *scoreState) lastFor(n int) *predict.LastDirection {
	if st.last == nil || st.lastN < n {
		st.last = predict.NewLastDirection(n)
		st.lastN = n
		return st.last
	}
	st.last.Reset()
	return st.last
}

// twobitFor returns a reset two-bit predictor covering at least n sites.
func (st *scoreState) twobitFor(n int) *predict.TwoBit {
	if st.twobit == nil || st.twoN < n {
		st.twobit = predict.NewTwoBit(n)
		st.twoN = n
		return st.twobit
	}
	st.twobit.Reset()
	return st.twobit
}

// predsFor returns a PredNone-filled prediction vector of length n.
func (st *scoreState) predsFor(n int) []ir.Prediction {
	if cap(st.preds) < n {
		st.preds = make([]ir.Prediction, n)
		return st.preds
	}
	st.preds = st.preds[:n]
	clear(st.preds)
	return st.preds
}
