package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
)

// postJSON fires one pipeline request and returns status + body.
func postJSON(t *testing.T, url string, body string, hdr map[string]string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestRestartWarm pins the disk tier's reason to exist: a new process
// over the same directory answers byte-identically without re-recording
// a single trace.
func TestRestartWarm(t *testing.T) {
	dir := t.TempDir()
	reqs := []string{
		`{"workload":"cc","budget":5000}`,
		`{"workload":"cc","budget":5000,"states":4}`,
		`{"workload":"compress","budget":4000,"strategy":"twobit"}`,
		`{"workload":"compress","budget":4000,"seed":7}`,
	}
	eps := []string{"profile", "machines", "score", "profile"}

	s1, ts1 := newTestServer(t, Config{DiskDir: dir})
	cold := make([][]byte, len(reqs))
	for i := range reqs {
		code, body := postJSON(t, ts1.URL+"/v1/"+eps[i], reqs[i], nil)
		if code != http.StatusOK {
			t.Fatalf("cold %s: status %d: %s", eps[i], code, body)
		}
		cold[i] = body
	}
	if recs := s1.Engine().Stats().TraceRecords; recs == 0 {
		t.Fatal("cold server recorded nothing; test is vacuous")
	}
	ts1.Close()

	// "Restart": a fresh server, fresh memory store, same disk directory.
	s2, ts2 := newTestServer(t, Config{DiskDir: dir})
	for i := range reqs {
		code, body := postJSON(t, ts2.URL+"/v1/"+eps[i], reqs[i], nil)
		if code != http.StatusOK {
			t.Fatalf("warm %s: status %d: %s", eps[i], code, body)
		}
		if !bytes.Equal(body, cold[i]) {
			t.Fatalf("warm %s response differs from cold:\ncold: %s\nwarm: %s", eps[i], cold[i], body)
		}
	}
	if recs := s2.Engine().Stats().TraceRecords; recs != 0 {
		t.Fatalf("warm server re-recorded %d traces; disk tier should have served them all", recs)
	}
}

// clusterNode is one in-process kralld with clustering enabled.
type clusterNode struct {
	srv *Server
	ts  *httptest.Server
}

// bootCluster starts n nodes that know each other, each with its own
// disk directory. Health probing starts immediately with fast intervals.
func bootCluster(t *testing.T, n int, tweak func(i int, cfg *Config)) []clusterNode {
	t.Helper()
	// Two-phase boot: URLs must exist before any server's config does, so
	// allocate the listeners (via unstarted test servers) first.
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range tss {
		tss[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + tss[i].Listener.Addr().String()
	}
	nodes := make([]clusterNode, n)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := range nodes {
		cfg := Config{
			DiskDir:     t.TempDir(),
			ClusterSelf: urls[i],
			ClusterHealth: cluster.HealthOptions{
				Interval: 20 * time.Millisecond, Timeout: 200 * time.Millisecond, FailThreshold: 2,
			},
		}
		for j, u := range urls {
			if j != i {
				cfg.ClusterPeers = append(cfg.ClusterPeers, u)
			}
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		s := mustNew(t, cfg)
		tss[i].Config.Handler = s.Handler()
		tss[i].Start()
		t.Cleanup(tss[i].Close)
		s.Start(ctx)
		nodes[i] = clusterNode{srv: s, ts: tss[i]}
	}
	return nodes
}

// requestOwnedBy searches seeds until the request's placement key lands
// on the wanted node.
func requestOwnedBy(t *testing.T, c *cluster.Cluster, owner string) (body string, key string) {
	t.Helper()
	for seed := int64(1); seed < 2000; seed++ {
		req := &Request{Workload: "cc", Budget: 5000, Seed: seed}
		k := RouteKey(req, 200_000)
		if got := c.Owner(k); got == owner {
			return fmt.Sprintf(`{"workload":"cc","budget":5000,"seed":%d}`, seed), k
		}
	}
	t.Fatalf("no seed found whose key lands on %s", owner)
	return "", ""
}

// TestClusterForwarding pins request routing: a request sent to the
// wrong node is proxied to the ring owner and answers byte-identically
// to asking the owner directly.
func TestClusterForwarding(t *testing.T) {
	nodes := bootCluster(t, 2, nil)
	c0 := nodes[0].srv.Cluster()
	// A request owned by node 1, sent to node 0 → forwarded.
	body, _ := requestOwnedBy(t, c0, nodes[1].srv.Cluster().Self())
	code, viaWrong := postJSON(t, nodes[0].ts.URL+"/v1/profile", body, nil)
	if code != http.StatusOK {
		t.Fatalf("forwarded request: status %d: %s", code, viaWrong)
	}
	code, viaOwner := postJSON(t, nodes[1].ts.URL+"/v1/profile", body, nil)
	if code != http.StatusOK {
		t.Fatalf("direct request: status %d: %s", code, viaOwner)
	}
	if !bytes.Equal(viaWrong, viaOwner) {
		t.Fatal("forwarded and direct responses differ")
	}
	forwards, forwardErrs, _, _ := c0.Counters()
	if forwards == 0 || forwardErrs != 0 {
		t.Fatalf("forwards=%d errors=%d; want >0 forwards, 0 errors", forwards, forwardErrs)
	}
	// The recording happened on the owner, not the receiving node.
	if recs := nodes[0].srv.Engine().Stats().TraceRecords; recs != 0 {
		t.Fatalf("non-owner recorded %d traces", recs)
	}
	if recs := nodes[1].srv.Engine().Stats().TraceRecords; recs == 0 {
		t.Fatal("owner recorded nothing")
	}
}

// TestClusterPeerFetch pins the artifact fetch path: a node serving a
// key it does not own (forwarded flag set, so it cannot re-forward)
// pulls the recorded bytes from the owner instead of re-recording.
func TestClusterPeerFetch(t *testing.T) {
	nodes := bootCluster(t, 2, nil)
	owner := nodes[1]
	body, _ := requestOwnedBy(t, nodes[0].srv.Cluster(), owner.srv.Cluster().Self())

	// Warm the owner (it records and persists the artifact).
	if code, out := postJSON(t, owner.ts.URL+"/v1/profile", body, nil); code != http.StatusOK {
		t.Fatalf("warming owner: %d: %s", code, out)
	}
	_, direct := postJSON(t, owner.ts.URL+"/v1/profile", body, nil)

	// Node 0 is told "you handle it" (forwarded header blocks proxying).
	code, out := postJSON(t, nodes[0].ts.URL+"/v1/profile", body, map[string]string{ForwardedHeader: "test"})
	if code != http.StatusOK {
		t.Fatalf("non-owner serve: %d: %s", code, out)
	}
	if !bytes.Equal(out, direct) {
		t.Fatal("peer-fetched response differs from the owner's")
	}
	if recs := nodes[0].srv.Engine().Stats().TraceRecords; recs != 0 {
		t.Fatalf("non-owner re-recorded %d traces instead of fetching", recs)
	}
	_, _, fetches, fetchErrs := nodes[0].srv.Cluster().Counters()
	if fetches == 0 || fetchErrs != 0 {
		t.Fatalf("peer fetches=%d errors=%d; want >0 fetches, 0 errors", fetches, fetchErrs)
	}
}

// TestDeadPeerNoClientErrors is the fault-injection guarantee: killing a
// node must never surface a 5xx to clients of the survivors — first the
// forward path degrades to local serving, then health takes the corpse
// out of the ring.
func TestDeadPeerNoClientErrors(t *testing.T) {
	nodes := bootCluster(t, 3, nil)
	victim := nodes[2]
	victimURL := victim.srv.Cluster().Self()
	survivor := nodes[0]

	// Find a request the victim owns, then kill the victim.
	body, key := requestOwnedBy(t, survivor.srv.Cluster(), victimURL)
	victim.ts.Close()

	// Hammer the survivor throughout the detection window. Every response
	// must be a success — the first few take the forward-fails-then-local
	// path, later ones route around the corpse entirely.
	deadline := time.Now().Add(5 * time.Second)
	markedDown := false
	for i := 0; ; i++ {
		code, out := postJSON(t, survivor.ts.URL+"/v1/profile", body, nil)
		if code >= 500 {
			t.Fatalf("request %d: client saw %d after peer death: %s", i, code, out)
		}
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, out)
		}
		if !survivor.srv.Cluster().PeerUp(victimURL) {
			markedDown = true
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health never marked the dead peer down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !markedDown {
		t.Fatal("unreachable")
	}
	// Once marked down, the ring routes the victim's keys to a survivor.
	if got := survivor.srv.Cluster().Owner(key); got == victimURL {
		t.Fatal("ring still routes to the dead peer after health marked it down")
	}
	// And requests keep succeeding with zero forward attempts to the corpse.
	f0, _, _, _ := survivor.srv.Cluster().Counters()
	for i := 0; i < 5; i++ {
		if code, out := postJSON(t, survivor.ts.URL+"/v1/profile", body, nil); code != http.StatusOK {
			t.Fatalf("post-detection request: %d: %s", code, out)
		}
	}
	if f1, _, _, _ := survivor.srv.Cluster().Counters(); f1 != f0 {
		// Forwards to the other healthy survivor are fine; to the victim are
		// not. Distinguish by checking the victim is still down.
		if !survivor.srv.Cluster().PeerUp(victimURL) && survivor.srv.Cluster().Owner(key) == victimURL {
			t.Fatal("still forwarding to the dead peer")
		}
	}
}

// TestRateLimiter pins the MaxRPS cap: a burst beyond the budget answers
// 429 with Retry-After, never an error, and tokens refill.
func TestRateLimiter(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRPS: 5})
	body := `{"workload":"cc","budget":2000}`
	var ok, limited int
	for i := 0; i < 30; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/profile", bytes.NewReader([]byte(body)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			var e errorBody
			if err := json.Unmarshal(out, &e); err != nil {
				t.Fatalf("429 body is not the JSON error envelope: %s", out)
			}
			limited++
		default:
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, out)
		}
	}
	if ok == 0 || limited == 0 {
		t.Fatalf("ok=%d limited=%d; want both >0 (burst admits some, caps the rest)", ok, limited)
	}
	// Refill: after a second, requests are admitted again.
	time.Sleep(1100 * time.Millisecond)
	if code, out := postJSON(t, ts.URL+"/v1/profile", body, nil); code != http.StatusOK {
		t.Fatalf("after refill: %d: %s", code, out)
	}
}

// TestReadyzDraining pins the readiness flip on shutdown.
func TestReadyzDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d before drain", resp.StatusCode)
	}
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d while draining, want 503", resp.StatusCode)
	}
}

// TestClusterMetricsExposed spot-checks the new gauge/counter names.
func TestClusterMetricsExposed(t *testing.T) {
	nodes := bootCluster(t, 2, func(i int, cfg *Config) { cfg.MaxRPS = 10_000 })
	body, _ := requestOwnedBy(t, nodes[0].srv.Cluster(), nodes[1].srv.Cluster().Self())
	if code, out := postJSON(t, nodes[0].ts.URL+"/v1/profile", body, nil); code != http.StatusOK {
		t.Fatalf("request: %d: %s", code, out)
	}
	resp, err := http.Get(nodes[0].ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"kralld_disk_entries", "kralld_disk_bytes", "kralld_disk_hits_total",
		"kralld_disk_misses_total", "kralld_disk_evictions_total", "kralld_disk_put_errors_total",
		"kralld_cluster_ring_nodes 2", "kralld_cluster_peer_up{peer=",
		"kralld_cluster_forwards_total", "kralld_cluster_forward_errors_total",
		"kralld_cluster_peer_fetches_total", "kralld_cluster_peer_fetch_errors_total",
		"kralld_cluster_rate_limited_total",
	} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
