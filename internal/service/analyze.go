package service

import (
	"context"
	"math"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/runner"
)

// --- POST /v1/analyze ---------------------------------------------------

// AnalyzeSite is one branch site's static prediction row: the combined
// heuristic probability, the SCCP verdict, and the evidence that fired.
type AnalyzeSite struct {
	Site int32  `json:"site"`
	Func string `json:"func"`
	// Prob is the Dempster–Shafer combined taken probability, rounded to
	// four decimals so responses stay byte-stable across architectures.
	Prob       float64 `json:"prob"`
	Confidence float64 `json:"confidence"`
	LoopDepth  int     `json:"loop_depth"`
	// Fact is the SCCP verdict: "always-taken", "never-taken",
	// "unreachable", or "undecided".
	Fact string `json:"fact"`
	// Heuristics names the firing heuristics, comma-separated ("-" when
	// only the 0.5 prior applies).
	Heuristics string `json:"heuristics"`
	// Pred is the resulting static prediction ("taken" / "not_taken").
	Pred string `json:"pred"`
}

// AnalyzeResponse answers /v1/analyze.
type AnalyzeResponse struct {
	SchemaV  string `json:"schema"`
	Kind     string `json:"kind"`
	Program  string `json:"program"`
	NumSites int    `json:"num_sites"`
	// Decided counts sites the dataflow analysis proved one-way (their
	// Prob is pinned to 0 or 1 regardless of the heuristics).
	Decided int           `json:"decided"`
	Sites   []AnalyzeSite `json:"sites"`
}

// round4 keeps probabilities byte-stable in JSON: four decimals is finer
// than any heuristic product the engine produces distinguishable pairs at.
func round4(x float64) float64 { return math.Round(x*1e4) / 1e4 }

// staticReportFor builds — or fetches from the store — the static
// predictability report of a compiled program. The report is a pure
// function of the IR, so it is content-addressed on the program key alone;
// the analyze counters advance only on cold computes, mirroring the
// engine's record-once discipline. Shared with /v1/replicate's
// static_budget mode.
func (s *Server) staticReportFor(c *compiled) (*analysis.StaticReport, error) {
	key := contentKey("staticrep", c.key)
	return runner.Cached(s.store, key, func() (*analysis.StaticReport, error) {
		rep, err := analysis.BuildStaticReport(c.prog)
		if err != nil {
			return nil, badRequest("static analysis: %v", err)
		}
		s.analyzeSites.Add(int64(len(rep.Sites)))
		s.analyzeDecided.Add(int64(rep.Decided()))
		return rep, nil
	})
}

// handleAnalyze is POST /v1/analyze: the profile-free static prediction
// report. It runs no program — a hot program costs one store lookup plus
// envelope assembly.
func (s *Server) handleAnalyze(ctx context.Context, req *Request) (any, error) {
	c, err := s.resolveProgram(req)
	if err != nil {
		return nil, err
	}
	rep, err := s.staticReportFor(c)
	if err != nil {
		return nil, err
	}
	resp := &AnalyzeResponse{
		SchemaV:  Schema,
		Kind:     "analyze",
		Program:  c.name,
		NumSites: c.nsites,
		Decided:  rep.Decided(),
	}
	for i := range rep.Sites {
		sr := &rep.Sites[i]
		pred := "not_taken"
		if sr.Pred == ir.PredTaken {
			pred = "taken"
		}
		resp.Sites = append(resp.Sites, AnalyzeSite{
			Site:       sr.Site,
			Func:       sr.Func,
			Prob:       round4(sr.Prob),
			Confidence: round4(sr.Confidence),
			LoopDepth:  sr.LoopDepth,
			Fact:       sr.Fact.String(),
			Heuristics: sr.Heuristics(),
			Pred:       pred,
		})
	}
	return resp, nil
}
