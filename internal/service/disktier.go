package service

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"strings"

	"repro/internal/diskstore"
	"repro/internal/profile"
	"repro/internal/runner"
	"repro/internal/statemachine"
	"repro/internal/trace"
)

// tieredStore composes the in-memory sharded LRU with the optional disk
// tier and the optional cluster peer fetch, behind the same runner.Store
// contract the handlers already use. Lookup order on a memory miss:
//
//  1. disk — artifacts the memory tier evicted, or a previous process
//     wrote (the restart-warm path);
//  2. a healthy peer that owns the key (artifacts only) — a node serving
//     keys outside its ring range, e.g. while degraded, fetches the
//     bytes instead of re-recording;
//  3. the population function, whose product is written back to disk.
//
// All three run inside the memory tier's single-flight slot, so a
// stampede on a cold key still does the disk read, peer fetch, or
// recording exactly once. Compiled programs ("prog" keys) are
// deliberately not persisted: they embed backend code and recompiling is
// cheap next to re-recording.
type tieredStore struct {
	mem  *runner.Sharded
	disk *diskstore.Store
	// fetchPeer asks the cluster for the raw disk payload of an artifact
	// key (nil when clustering is off). It returns false on any failure;
	// the store falls through to computing locally.
	fetchPeer func(key string) ([]byte, bool)
}

// Do implements runner.Store.
func (t *tieredStore) Do(key string, fn func() (any, error)) (any, error) {
	if t.disk == nil && t.fetchPeer == nil {
		return t.mem.Do(key, fn)
	}
	return t.mem.Do(key, func() (any, error) {
		if t.disk != nil {
			if v, ok := t.loadDisk(key); ok {
				return v, nil
			}
		}
		if t.fetchPeer != nil && kindOf(key) == "art" {
			if raw, ok := t.fetchPeer(key); ok {
				if art, err := decodeArtifact(raw, nil); err == nil {
					if t.disk != nil {
						_ = t.disk.Put(key, raw)
					}
					return art, nil
				}
			}
		}
		v, err := fn()
		if err == nil && t.disk != nil {
			t.saveDisk(key, v)
		}
		return v, err
	})
}

// kindOf is the namespace prefix of a content key ("art", "prof", ...).
func kindOf(key string) string {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i]
	}
	return ""
}

// loadDisk materialises a disk entry back into its in-memory form. A
// payload that no longer decodes (format drift between releases) is just
// a miss; the recomputed value overwrites it.
func (t *tieredStore) loadDisk(key string) (any, bool) {
	switch kindOf(key) {
	case "art":
		m, ok := t.disk.Map(key)
		if !ok {
			return nil, false
		}
		art, err := decodeArtifact(m.Data, m)
		if err != nil {
			m.Close()
			return nil, false
		}
		return art, true
	case "prof":
		raw, ok := t.disk.Load(key)
		if !ok {
			return nil, false
		}
		var p profile.Profile
		if err := gobDecode(raw, &p); err != nil {
			return nil, false
		}
		return &p, true
	case "mach":
		raw, ok := t.disk.Load(key)
		if !ok {
			return nil, false
		}
		var cs []statemachine.Choice
		if err := gobDecode(raw, &cs); err != nil {
			return nil, false
		}
		return cs, true
	case "score":
		raw, ok := t.disk.Load(key)
		if !ok {
			return nil, false
		}
		var w scoreWire
		if err := gobDecode(raw, &w); err != nil {
			return nil, false
		}
		return scoreEntry{nsites: w.NSites, score: w.Score}, true
	}
	return nil, false
}

// saveDisk persists a freshly computed value. Failures are counted by the
// disk store and otherwise ignored — the value is already in memory and
// correctness never depends on the disk tier.
func (t *tieredStore) saveDisk(key string, v any) {
	switch val := v.(type) {
	case *artifact:
		_ = t.disk.Put(key, encodeArtifact(val))
	case *profile.Profile:
		if raw, err := gobEncode(val); err == nil {
			_ = t.disk.Put(key, raw)
		}
	case []statemachine.Choice:
		if raw, err := gobEncode(val); err == nil {
			_ = t.disk.Put(key, raw)
		}
	case scoreEntry:
		if raw, err := gobEncode(scoreWire{NSites: val.nsites, Score: val.score}); err == nil {
			_ = t.disk.Put(key, raw)
		}
	}
}

// artifactPayload reads the raw disk payload of an artifact key, for
// serving to peers. The bytes go over the wire exactly as stored; the
// peer's decodeArtifact re-validates them.
func (t *tieredStore) artifactPayload(key string) ([]byte, bool) {
	if t.disk == nil || kindOf(key) != "art" {
		return nil, false
	}
	return t.disk.Load(key)
}

// scoreWire mirrors scoreEntry for gob (its fields are unexported).
type scoreWire struct {
	NSites int
	Score  RateBlock
}

// encodeArtifact lays out an artifact as run counters followed by the
// sealed slab container: uvarint branches, steps, checksum, one truncated
// byte, then the BLSLAB01 bytes. The slab part is the mmap-able region —
// decodeArtifact over a mapping replays events straight from the page
// cache.
func encodeArtifact(a *artifact) []byte {
	buf := make([]byte, 0, 32+a.slab.SealedSize())
	buf = binary.AppendUvarint(buf, a.branches)
	buf = binary.AppendUvarint(buf, a.steps)
	buf = binary.AppendUvarint(buf, a.checksum)
	if a.truncated {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return a.slab.AppendSealed(buf)
}

// decodeArtifact opens an encoded artifact. When data aliases a mapping,
// pin keeps it alive for the artifact's lifetime (the slab's event bytes
// alias data); pass nil for plain in-memory bytes.
func decodeArtifact(data []byte, pin *diskstore.Mapped) (*artifact, error) {
	a := &artifact{pin: pin}
	var vals [3]uint64
	i := 0
	for k := range vals {
		v, n := binary.Uvarint(data[i:])
		if n <= 0 {
			return nil, fmt.Errorf("service: truncated artifact header")
		}
		vals[k] = v
		i += n
	}
	if i >= len(data) {
		return nil, fmt.Errorf("service: truncated artifact header")
	}
	a.branches, a.steps, a.checksum = vals[0], vals[1], vals[2]
	a.truncated = data[i] == 1
	i++
	slab, err := trace.OpenSealed(data[i:])
	if err != nil {
		return nil, err
	}
	a.slab = slab
	return a, nil
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
