package service

import (
	"context"
	"net/http"

	"repro/internal/indirect"
	"repro/internal/ir"
	"repro/internal/predict"
	"repro/internal/replicate"
	"repro/internal/runner"
	"repro/internal/trace"
)

// The indirect replication family of /v1/replicate: case clustering of hot
// switch dispatches, selected with family: "indirect". Responses are scored
// under the semi-static cost model the krallbench indirect experiment uses —
// a semi-static front end cannot predict an indirect transfer, so every
// executed dispatch costs one misprediction-equivalent on top of the
// conditional-branch mispredictions, and clustering wins by moving the hot
// share of each dispatch into profile-predicted equality tests.

// IndirectRun is one measured run under the semi-static cost model.
type IndirectRun struct {
	// Conditional is the ordinary two-way branch prediction block.
	Conditional RateBlock `json:"conditional"`
	// Dispatches counts executed switch transfers (the residual's only, in
	// the clustered program — taken chain tests never reach it).
	Dispatches uint64 `json:"dispatches"`
	// EffectiveMissPct is (conditional misses + dispatches) over
	// (conditional events + dispatches), as a percentage.
	EffectiveMissPct float64 `json:"effective_miss_pct"`
	Checksum         uint64  `json:"checksum"`
}

// IndirectReplicateResponse answers /v1/replicate for family "indirect".
type IndirectReplicateResponse struct {
	SchemaV  string `json:"schema"`
	Kind     string `json:"kind"`
	Family   string `json:"family"`
	Program  string `json:"program"`
	Switches int    `json:"switches"`
	// ClusteredSites is how many dispatch sites the profile justified
	// rewriting; Tests the equality tests inserted across them.
	ClusteredSites   int         `json:"clustered_sites"`
	Tests            int         `json:"tests"`
	Baseline         IndirectRun `json:"baseline"`
	Clustered        IndirectRun `json:"clustered"`
	MissReductionPct float64     `json:"miss_reduction_pct"`
	Code             struct {
		InstrsBefore int     `json:"instrs_before"`
		InstrsAfter  int     `json:"instrs_after"`
		SizeFactor   float64 `json:"size_factor"`
	} `json:"code"`
	SemanticsVerified bool `json:"semantics_verified"`
	// Verified reports the structural re-derivation's verdict
	// (indirect.Verify); it is false unless the request asked for
	// verification (check).
	Verified bool   `json:"verified"`
	IR       string `json:"ir,omitempty"`
}

// hasGlobal reports whether the program declares a global by that name.
func hasGlobal(prog *ir.Program, name string) bool {
	for _, g := range prog.Globals {
		if g.Name == name {
			return true
		}
	}
	return false
}

// targetsFor replays the artifact's switch events into the per-site target
// distribution, memoised content-addressed like the branch profile.
func (s *Server) targetsFor(ctx context.Context, c *compiled, req *Request, budget uint64) (*trace.TargetCounts, error) {
	art, err := s.artifactFor(ctx, c, req, budget)
	if err != nil {
		return nil, err
	}
	key := contentKey("targets", c.key, field(budget, req.Seed, req.Scale))
	return runner.Cached(s.store, key, func() (*trace.TargetCounts, error) {
		tc := trace.NewTargetCounts(c.nsites)
		art.slab.ReplayInto(tc)
		s.eng.CountReplay(int64(art.slab.Len()))
		return tc, nil
	})
}

func (s *Server) handleReplicateIndirect(ctx context.Context, req *Request) (any, error) {
	c, err := s.resolveProgram(req)
	if err != nil {
		return nil, err
	}
	budget, err := s.budgetFor(req)
	if err != nil {
		return nil, err
	}
	prof, _, err := s.profileFor(ctx, c, req, budget)
	if err != nil {
		return nil, err
	}
	targets, err := s.targetsFor(ctx, c, req, budget)
	if err != nil {
		return nil, err
	}
	preds := predict.ProfileStatic(prof.Counts).Preds

	// The baseline and clustered runs are only comparable when both execute
	// the whole program: the chain tests add branch events, so a shared
	// branch budget would cut the clustered run at an earlier program point
	// and the checksums would diverge. Scale the workload down to fit the
	// budget instead (programs without a wscale knob run as-is) and keep the
	// budget as a generous envelope rather than the measuring cut-off.
	mreq := *req
	if mreq.Scale == 0 && hasGlobal(c.prog, "wscale") {
		scale := int64(budget / 50_000)
		if scale < 1 {
			scale = 1
		}
		if scale > 400 {
			scale = 400
		}
		mreq.Scale = scale
	}

	// Both runs are live executions with a dispatch counter: the clustered
	// clone's branch stream (and residual transfer count) is exactly what
	// the recorded trace cannot provide.
	measure := func(prog *ir.Program) (IndirectRun, error) {
		m, err := s.newMachine(ctx, c, prog, budget, &mreq)
		if err != nil {
			return IndirectRun{}, err
		}
		m.SetMaxBranches(4 * budget)
		var dispatches uint64
		m.SetSwHook(func(t *ir.Term, _ int32) {
			if t.Op == ir.TermSwitch {
				dispatches++
			}
		})
		if _, err := runMachine(m); err != nil {
			return IndirectRun{}, err
		}
		s.eng.CountLiveRun()
		mc := m.Counters()
		r := IndirectRun{
			Conditional: rateBlock(mc.Mispredicted, mc.Predicted),
			Dispatches:  dispatches,
			Checksum:    mc.Checksum,
		}
		if ev := mc.Predicted + dispatches; ev > 0 {
			r.EffectiveMissPct = round4(100 * float64(mc.Mispredicted+dispatches) / float64(ev))
		}
		return r, nil
	}

	baseline := ir.CloneProgram(c.prog)
	replicate.Annotate(baseline, preds)
	base, err := measure(baseline)
	if err != nil {
		return nil, err
	}

	clustered := ir.CloneProgram(baseline)
	snap := ir.CloneProgram(clustered)
	st, prov, err := indirect.Cluster(clustered, targets, indirect.Options{})
	if err != nil {
		return nil, err
	}
	verified := false
	if req.Check {
		if errs := indirect.Verify(snap, clustered, prov); len(errs) > 0 {
			// The transform produced a program the verifier rejects — a
			// daemon-side fault, never the client's.
			s.verifyFail.Add(1)
			return nil, &httpError{http.StatusInternalServerError,
				"indirect verification failed: " + errs[0].Error()}
		}
		s.verifyOK.Add(1)
		verified = true
	}
	clus, err := measure(clustered)
	if err != nil {
		return nil, err
	}

	resp := &IndirectReplicateResponse{
		SchemaV:           Schema,
		Kind:              "replicate",
		Family:            "indirect",
		Program:           c.name,
		Switches:          st.Switches,
		ClusteredSites:    st.Clustered,
		Tests:             st.Tests,
		Baseline:          base,
		Clustered:         clus,
		SemanticsVerified: base.Checksum == clus.Checksum,
		Verified:          verified,
	}
	bm := base.Conditional.Mispredicted + base.Dispatches
	cm := clus.Conditional.Mispredicted + clus.Dispatches
	if bm > 0 {
		resp.MissReductionPct = round4(100 * (float64(bm) - float64(cm)) / float64(bm))
	}
	resp.Code.InstrsBefore = st.InstrsBefore
	resp.Code.InstrsAfter = st.InstrsAfter
	resp.Code.SizeFactor = round4(st.SizeFactor())
	if req.IncludeIR {
		resp.IR = clustered.String()
	}
	return resp, nil
}
