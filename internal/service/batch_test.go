package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBatchMatchesSingle pins the batch contract: every item's body must
// be byte-identical to what the standalone endpoint answers for the same
// request, and items come back in input order.
func TestBatchMatchesSingle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	singles := []struct {
		endpoint, body string
	}{
		{"profile", `{"workload":"compress","budget":20000}`},
		{"machines", `{"workload":"compress","budget":20000,"states":4}`},
		{"score", `{"workload":"cc","budget":20000,"strategy":"twobit"}`},
		{"replicate", `{"workload":"compress","budget":20000,"states":4}`},
		{"replicate", `{"workload":"svm","budget":20000,"family":"indirect","check":true}`},
	}
	want := make([][]byte, len(singles))
	for i, c := range singles {
		code, out := post(t, ts, c.endpoint, c.body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", c.endpoint, code, out)
		}
		want[i] = bytes.TrimSuffix(out, []byte("\n"))
	}

	var items []string
	for _, c := range singles {
		items = append(items, fmt.Sprintf(`{"endpoint":%q,%s`, c.endpoint, c.body[1:]))
	}
	code, out := post(t, ts, "batch", `{"items":[`+strings.Join(items, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, out)
	}
	var resp BatchResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK != len(singles) || resp.Failed != 0 {
		t.Fatalf("ok/failed = %d/%d, want %d/0", resp.OK, resp.Failed, len(singles))
	}
	for i, it := range resp.Items {
		if it.Endpoint != singles[i].endpoint {
			t.Errorf("item %d endpoint %q, want %q (order must be input order)", i, it.Endpoint, singles[i].endpoint)
		}
		if it.Status != http.StatusOK {
			t.Errorf("item %d status %d: %s", i, it.Status, it.Error)
		}
		if !bytes.Equal(it.Body, want[i]) {
			t.Errorf("item %d body differs from the standalone %s response:\nbatch:  %s\nsingle: %s",
				i, singles[i].endpoint, it.Body, want[i])
		}
	}
}

// TestBatchPartialFailure mixes failing and succeeding items: the batch
// itself answers 200 with per-item statuses, still in input order.
func TestBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"items":[
		{"endpoint":"nope","workload":"cc"},
		{"endpoint":"profile","workload":"no_such_workload"},
		{"endpoint":"profile","workload":"cc","budget":5000}
	]}`
	code, out := post(t, ts, "batch", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	var resp BatchResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	wantStatus := []int{400, 400, 200}
	if resp.OK != 1 || resp.Failed != 2 {
		t.Fatalf("ok/failed = %d/%d, want 1/2", resp.OK, resp.Failed)
	}
	for i, it := range resp.Items {
		if it.Status != wantStatus[i] {
			t.Errorf("item %d status %d, want %d (%s)", i, it.Status, wantStatus[i], it.Error)
		}
	}
	if resp.Items[0].Error == "" || resp.Items[1].Error == "" {
		t.Error("failed items must carry an error message")
	}
	if len(resp.Items[2].Body) == 0 {
		t.Error("succeeding item missing its body")
	}
}

// TestBatchValidation sweeps the batch-specific request checks.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 2})
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"empty", `{"items":[]}`, 400},
		{"missing_items", `{}`, 400},
		{"unknown_field", `{"items":[{"endpoint":"profile","workload":"cc"}],"nope":1}`, 400},
		{"over_cap", `{"items":[{"endpoint":"profile"},{"endpoint":"profile"},{"endpoint":"profile"}]}`, 413},
		{"garbage", `{`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := post(t, ts, "batch", tc.body)
			if code != tc.wantCode {
				t.Fatalf("status %d (%s), want %d", code, out, tc.wantCode)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", resp.StatusCode)
	}
}

// TestBatchBackpressure fills the batch admission semaphore and expects
// 429 + Retry-After, independent of the pipeline endpoints' slots.
func TestBatchBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	s.sems[batchEndpoint] <- struct{}{}
	defer func() { <-s.sems[batchEndpoint] }()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"items":[{"endpoint":"profile","workload":"cc"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Single-request endpoints keep their own slots.
	if code, out := post(t, ts, "profile", `{"workload":"cc","budget":5000}`); code != http.StatusOK {
		t.Fatalf("profile during batch overload: status %d (%s)", code, out)
	}
}

// TestBatchDeadline proves deadlines reach the items' interpreter loops:
// a spinning program comes back as a per-item 504 (bounded by the
// server's RequestTimeout, exactly as the standalone endpoint would be —
// store population runs detached from the batch's timeout_ms so one
// batch cannot poison entries other requests are waiting on), and the
// batch itself still answers 200.
func TestBatchDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBudget: 1 << 40, RequestTimeout: 500 * time.Millisecond})
	body, _ := json.Marshal(map[string]any{
		"timeout_ms": 100,
		"items": []map[string]any{
			{"endpoint": "profile", "source": spinSrc, "budget": uint64(1) << 39},
		},
	})
	start := time.Now()
	code, out := post(t, ts, "batch", string(body))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("batch took %v, deadline is not reaching the run loop", elapsed)
	}
	var resp BatchResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Items[0].Status != http.StatusGatewayTimeout {
		t.Fatalf("item status %d (%s), want 504", resp.Items[0].Status, resp.Items[0].Error)
	}
}

// TestBatchConcurrentStress is the race-detector stress test of the
// sharded store under the batch path: many goroutines fire mixed batches
// over a deliberately tiny, multi-shard store (constant eviction churn)
// while /metrics — including the per-shard lines — is scraped
// concurrently. Identical batches must stay byte-stable throughout.
func TestBatchConcurrentStress(t *testing.T) {
	_, ts := newTestServer(t, Config{
		CacheEntries: 8,
		CacheShards:  4,
		MaxInflight:  16,
		Workers:      4,
	})
	mkBatch := func(g int) string {
		w := []string{"cc", "predict", "compress"}[g%3]
		return fmt.Sprintf(`{"items":[
			{"endpoint":"profile","workload":%[1]q,"budget":5000},
			{"endpoint":"machines","workload":%[1]q,"budget":5000,"states":4},
			{"endpoint":"score","workload":%[1]q,"budget":5000,"strategy":"twobit"},
			{"endpoint":"replicate","workload":%[1]q,"budget":5000,"states":4}
		]}`, w)
	}
	done := make(chan struct{})
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	var canon [3][]byte
	var canonMu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 9; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := mkBatch(g)
			for i := 0; i < 5; i++ {
				out, _, err := postWithRetry(t.Context(), http.DefaultClient, ts.URL+"/v1/batch", []byte(body))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				var resp BatchResponse
				if err := json.Unmarshal(out, &resp); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if resp.Failed != 0 {
					t.Errorf("goroutine %d: %d items failed: %s", g, resp.Failed, out)
					return
				}
				canonMu.Lock()
				if canon[g%3] == nil {
					canon[g%3] = out
				} else if !bytes.Equal(canon[g%3], out) {
					t.Errorf("goroutine %d: batch response bytes differ between repeats", g)
				}
				canonMu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(done)
	scrape.Wait()
}
