package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/results"
)

// ThroughputOptions parameterises Throughput, the batching benchmark.
type ThroughputOptions struct {
	// Workloads are the catalog programs in the request mix (default: the
	// whole suite).
	Workloads []string
	// Budget is the branch budget per sub-request (default 20000).
	Budget uint64
	// BatchSize is the /v1/batch item count per POST in the batched phase
	// (default 8, minimum 2 — 1 would measure the single phase twice).
	BatchSize int
	// Requests is the sub-request count per phase round, rounded up to a
	// multiple of BatchSize (default 1024).
	Requests int
	// Rounds is how many times each phase runs; the best round (highest
	// requests/sec) is reported, damping scheduler and GC noise so the CI
	// regression gate sees peak steady-state throughput, not scheduling
	// luck (default 3).
	Rounds int
	// Concurrency is the number of in-flight HTTP posts in both phases
	// (default 4).
	Concurrency int
	// Timeout bounds one HTTP round trip (default 60s).
	Timeout time.Duration
}

func (o *ThroughputOptions) setDefaults() {
	if len(o.Workloads) == 0 {
		for _, w := range bench.Workloads() {
			o.Workloads = append(o.Workloads, w.Name)
		}
	}
	if o.Budget == 0 {
		o.Budget = 20_000
	}
	if o.BatchSize < 2 {
		o.BatchSize = 8
	}
	if o.Requests == 0 {
		o.Requests = 1024
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.Concurrency == 0 {
		o.Concurrency = 4
	}
	if o.Timeout == 0 {
		o.Timeout = 60 * time.Second
	}
}

// tputCall is one sub-request of the throughput mix.
type tputCall struct {
	endpoint string
	body     json.RawMessage
}

// Throughput measures the service's request throughput twice over the
// identical sub-request mix — one sub-request per HTTP POST, then
// BatchSize sub-requests per POST /v1/batch — and reports both phases
// plus their requests/sec ratio. The mix cycles profile, machines, and
// score over the workloads; a warmup pass populates the artifact store
// first, so both phases measure the cache-served steady state (the
// production-shaped regime: a hot program recorded once, served many
// times) rather than one phase paying the recording cost for the other.
// This is the engine of krallload -throughput, and its report is the
// "service" section of the krallbench-results/v1 document that the CI
// bench-regression gate compares.
func Throughput(ctx context.Context, baseURL string, opts ThroughputOptions) (*results.Service, error) {
	opts.setDefaults()
	baseURL = strings.TrimRight(baseURL, "/")
	sort.Strings(opts.Workloads)

	var mix []tputCall
	add := func(endpoint string, body map[string]any) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		mix = append(mix, tputCall{endpoint: endpoint, body: buf})
		return nil
	}
	for _, name := range opts.Workloads {
		if err := add("profile", map[string]any{"workload": name, "budget": opts.Budget}); err != nil {
			return nil, err
		}
		if err := add("machines", map[string]any{"workload": name, "budget": opts.Budget, "states": 4}); err != nil {
			return nil, err
		}
		if err := add("score", map[string]any{"workload": name, "budget": opts.Budget, "strategy": "twobit"}); err != nil {
			return nil, err
		}
	}

	// The default transport keeps only two idle connections per host;
	// with more in-flight posts than that, the surplus workers would
	// re-dial TCP on every request and the harness would measure its own
	// connection churn instead of the service.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = opts.Concurrency
	tr.MaxIdleConnsPerHost = opts.Concurrency
	client := &http.Client{Timeout: opts.Timeout, Transport: tr}
	defer tr.CloseIdleConnections()

	// Warmup: every distinct call once, so recordings happen outside the
	// timed phases and both phases replay from the store.
	for _, c := range mix {
		if _, _, err := postWithRetry(ctx, client, baseURL+"/v1/"+c.endpoint, c.body); err != nil {
			return nil, fmt.Errorf("warmup %s: %w", c.endpoint, err)
		}
	}

	n := opts.Requests
	if rem := n % opts.BatchSize; rem != 0 {
		n += opts.BatchSize - rem
	}

	bestOf := func(batchSize int) (*results.Phase, error) {
		var best *results.Phase
		for r := 0; r < opts.Rounds; r++ {
			ph, err := runPhase(ctx, client, baseURL, mix, n, batchSize, opts.Concurrency)
			if err != nil {
				return nil, err
			}
			if best == nil || ph.RequestsPerSecond > best.RequestsPerSecond {
				best = ph
			}
		}
		return best, nil
	}
	single, err := bestOf(1)
	if err != nil {
		return nil, fmt.Errorf("single phase: %w", err)
	}
	batch, err := bestOf(opts.BatchSize)
	if err != nil {
		return nil, fmt.Errorf("batch phase: %w", err)
	}

	svc := &results.Service{
		Workloads:   opts.Workloads,
		Budget:      opts.Budget,
		Concurrency: opts.Concurrency,
		Rounds:      opts.Rounds,
		Single:      *single,
		Batch:       *batch,
	}
	if single.RequestsPerSecond > 0 {
		svc.Speedup = batch.RequestsPerSecond / single.RequestsPerSecond
	}
	return svc, nil
}

// runPhase serves n sub-requests drawn round-robin from mix, batchSize
// per HTTP POST (1 = the plain per-endpoint path, >1 = /v1/batch), with
// conc posts in flight, and reports the throughput.
func runPhase(ctx context.Context, client *http.Client, baseURL string, mix []tputCall, n, batchSize, conc int) (*results.Phase, error) {
	type post struct {
		url  string
		body []byte
		// endpoints names each sub-request carried, for response parsing.
		endpoints []string
	}
	var posts []post
	for at := 0; at < n; {
		if batchSize == 1 {
			c := mix[at%len(mix)]
			posts = append(posts, post{
				url: baseURL + "/v1/" + c.endpoint, body: c.body, endpoints: []string{c.endpoint},
			})
			at++
			continue
		}
		items := make([]map[string]any, 0, batchSize)
		eps := make([]string, 0, batchSize)
		for k := 0; k < batchSize && at < n; k++ {
			c := mix[at%len(mix)]
			var item map[string]any
			if err := json.Unmarshal(c.body, &item); err != nil {
				return nil, err
			}
			item["endpoint"] = c.endpoint
			items = append(items, item)
			eps = append(eps, c.endpoint)
			at++
		}
		body, err := json.Marshal(map[string]any{"items": items})
		if err != nil {
			return nil, err
		}
		posts = append(posts, post{url: baseURL + "/v1/batch", body: body, endpoints: eps})
	}

	var branches atomic.Uint64
	var firstErr error
	var errMu sync.Mutex
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(posts) {
					return
				}
				p := posts[i]
				out, _, err := postWithRetry(ctx, client, p.url, p.body)
				if err != nil {
					setErr(err)
					return
				}
				ev, err := countEvents(out, len(p.endpoints) > 1)
				if err != nil {
					setErr(err)
					return
				}
				branches.Add(ev)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	ph := &results.Phase{
		BatchSize: batchSize,
		HTTPPosts: len(posts),
		Requests:  n,
		Branches:  branches.Load(),
		Seconds:   elapsed.Seconds(),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		ph.RequestsPerSecond = float64(n) / secs
		ph.BranchesPerSecond = float64(ph.Branches) / secs
	}
	return ph, nil
}

// eventsField is the slice of a pipeline response the harness needs: the
// branch events the service accounted for while answering.
type eventsField struct {
	Events uint64 `json:"events"`
}

// countEvents sums the "events" fields of a response body — directly for
// a single-endpoint response, per item for a /v1/batch envelope (in which
// every item must have answered 200).
func countEvents(body []byte, isBatch bool) (uint64, error) {
	if !isBatch {
		var ev eventsField
		if err := json.Unmarshal(body, &ev); err != nil {
			return 0, err
		}
		return ev.Events, nil
	}
	var resp struct {
		OK     int `json:"ok"`
		Failed int `json:"failed"`
		Items  []struct {
			Status int             `json:"status"`
			Error  string          `json:"error"`
			Body   json.RawMessage `json:"body"`
		} `json:"items"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return 0, err
	}
	if resp.Failed > 0 {
		for _, it := range resp.Items {
			if it.Status != http.StatusOK {
				return 0, fmt.Errorf("batch item failed with status %d: %s", it.Status, it.Error)
			}
		}
	}
	var total uint64
	for _, it := range resp.Items {
		var ev eventsField
		if err := json.Unmarshal(it.Body, &ev); err != nil {
			return 0, err
		}
		total += ev.Events
	}
	return total, nil
}
