package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/results"
)

// ThroughputOptions parameterises Throughput, the batching benchmark.
type ThroughputOptions struct {
	// Workloads are the catalog programs in the request mix (default: the
	// whole suite).
	Workloads []string
	// Budget is the branch budget per sub-request (default 20000).
	Budget uint64
	// BatchSize is the /v1/batch item count per POST in the batched phase
	// (default 8, minimum 2 — 1 would measure the single phase twice).
	BatchSize int
	// Requests is the sub-request count per phase round, rounded up to a
	// multiple of BatchSize (default 1024).
	Requests int
	// Rounds is how many times each phase runs; the best round (highest
	// requests/sec) is reported, damping scheduler and GC noise so the CI
	// regression gate sees peak steady-state throughput, not scheduling
	// luck (default 3).
	Rounds int
	// Concurrency is the number of in-flight HTTP posts in both phases
	// (default 4).
	Concurrency int
	// Timeout bounds one HTTP round trip (default 60s).
	Timeout time.Duration
}

func (o *ThroughputOptions) setDefaults() {
	if len(o.Workloads) == 0 {
		for _, w := range bench.Workloads() {
			o.Workloads = append(o.Workloads, w.Name)
		}
	}
	if o.Budget == 0 {
		o.Budget = 20_000
	}
	if o.BatchSize < 2 {
		o.BatchSize = 8
	}
	if o.Requests == 0 {
		o.Requests = 1024
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.Concurrency == 0 {
		o.Concurrency = 4
	}
	if o.Timeout == 0 {
		o.Timeout = 60 * time.Second
	}
}

// tputCall is one sub-request of the throughput mix.
type tputCall struct {
	endpoint string
	body     json.RawMessage
	// route is the cluster placement key ("" = no stable placement);
	// ClusterThroughput uses it to ring-route each call client-side.
	route string
}

// baseRequests is the request mix skeleton — profile, machines, and
// score over the workloads.
func baseRequests(opts *ThroughputOptions) []struct {
	endpoint string
	req      Request
} {
	var out []struct {
		endpoint string
		req      Request
	}
	for _, name := range opts.Workloads {
		out = append(out, []struct {
			endpoint string
			req      Request
		}{
			{"profile", Request{Workload: name, Budget: opts.Budget}},
			{"machines", Request{Workload: name, Budget: opts.Budget, States: 4}},
			{"score", Request{Workload: name, Budget: opts.Budget, Strategy: "twobit"}},
		}...)
	}
	return out
}

// asCall marshals a request into a mix entry with its placement key
// precomputed from the same Request the JSON body encodes, so client
// routing and server serving agree byte for byte.
func asCall(endpoint string, req *Request, defaultBudget uint64) (tputCall, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return tputCall{}, err
	}
	return tputCall{endpoint: endpoint, body: buf, route: RouteKey(req, defaultBudget)}, nil
}

// buildMix builds the single-server request mix.
func buildMix(opts *ThroughputOptions) ([]tputCall, error) {
	var mix []tputCall
	for _, c := range baseRequests(opts) {
		call, err := asCall(c.endpoint, &c.req, opts.Budget)
		if err != nil {
			return nil, err
		}
		mix = append(mix, call)
	}
	return mix, nil
}

// balancedMix builds the cluster request mix: every base call is
// expanded with one seed variant per node, chosen so its placement key
// lands on that node. The seed participates in the artifact content key
// (it changes the recorded run), so each variant is a legitimately
// distinct request — and the population is owner-balanced by
// construction, making the scaling measurement capacity-limited rather
// than hostage to how a handful of keys happened to hash. Entries are
// interleaved node-minor so round-robin draws cycle the nodes.
func balancedMix(opts *ThroughputOptions, ring *cluster.Ring, nodes []string) ([]tputCall, error) {
	var mix []tputCall
	for _, c := range baseRequests(opts) {
		for _, node := range nodes {
			found := false
			for seed := int64(1); seed <= 20_000; seed++ {
				req := c.req
				req.Seed = seed
				key := RouteKey(&req, opts.Budget)
				if owner, ok := ring.Owner(key); ok && owner == node {
					call, err := asCall(c.endpoint, &req, opts.Budget)
					if err != nil {
						return nil, err
					}
					mix = append(mix, call)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("no seed in 20000 routes %s %q to %s", c.endpoint, c.req.Workload, node)
			}
		}
	}
	return mix, nil
}

// Throughput measures the service's request throughput twice over the
// identical sub-request mix — one sub-request per HTTP POST, then
// BatchSize sub-requests per POST /v1/batch — and reports both phases
// plus their requests/sec ratio. The mix cycles profile, machines, and
// score over the workloads; a warmup pass populates the artifact store
// first, so both phases measure the cache-served steady state (the
// production-shaped regime: a hot program recorded once, served many
// times) rather than one phase paying the recording cost for the other.
// This is the engine of krallload -throughput, and its report is the
// "service" section of the krallbench-results/v1 document that the CI
// bench-regression gate compares.
func Throughput(ctx context.Context, baseURL string, opts ThroughputOptions) (*results.Service, error) {
	opts.setDefaults()
	baseURL = strings.TrimRight(baseURL, "/")
	sort.Strings(opts.Workloads)

	mix, err := buildMix(&opts)
	if err != nil {
		return nil, err
	}

	// The default transport keeps only two idle connections per host;
	// with more in-flight posts than that, the surplus workers would
	// re-dial TCP on every request and the harness would measure its own
	// connection churn instead of the service.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = opts.Concurrency
	tr.MaxIdleConnsPerHost = opts.Concurrency
	client := &http.Client{Timeout: opts.Timeout, Transport: tr}
	defer tr.CloseIdleConnections()

	// Warmup: every distinct call once, so recordings happen outside the
	// timed phases and both phases replay from the store.
	for _, c := range mix {
		if _, _, err := postWithRetry(ctx, client, baseURL+"/v1/"+c.endpoint, c.body); err != nil {
			return nil, fmt.Errorf("warmup %s: %w", c.endpoint, err)
		}
	}

	n := opts.Requests
	if rem := n % opts.BatchSize; rem != 0 {
		n += opts.BatchSize - rem
	}

	bestOf := func(batchSize int) (*results.Phase, error) {
		var best *results.Phase
		for r := 0; r < opts.Rounds; r++ {
			ph, err := runPhase(ctx, client, func(tputCall) string { return baseURL }, mix, n, batchSize, opts.Concurrency)
			if err != nil {
				return nil, err
			}
			if best == nil || ph.RequestsPerSecond > best.RequestsPerSecond {
				best = ph
			}
		}
		return best, nil
	}
	single, err := bestOf(1)
	if err != nil {
		return nil, fmt.Errorf("single phase: %w", err)
	}
	batch, err := bestOf(opts.BatchSize)
	if err != nil {
		return nil, fmt.Errorf("batch phase: %w", err)
	}

	svc := &results.Service{
		Workloads:   opts.Workloads,
		Budget:      opts.Budget,
		Concurrency: opts.Concurrency,
		Rounds:      opts.Rounds,
		Single:      *single,
		Batch:       *batch,
	}
	if single.RequestsPerSecond > 0 {
		svc.Speedup = batch.RequestsPerSecond / single.RequestsPerSecond
	}
	return svc, nil
}

// runPhase serves n sub-requests drawn round-robin from mix, batchSize
// per HTTP POST (1 = the plain per-endpoint path, >1 = /v1/batch), with
// conc posts in flight, and reports the throughput plus per-endpoint
// client-observed latency percentiles. baseFor picks the node each call
// is posted to — constant for a single server, ring-routed for a
// cluster (batched posts always go to the first call's node).
func runPhase(ctx context.Context, client *http.Client, baseFor func(tputCall) string, mix []tputCall, n, batchSize, conc int) (*results.Phase, error) {
	type post struct {
		url  string
		body []byte
		// label names the endpoint for latency bucketing ("batch" for a
		// multi-item post); endpoints names each sub-request carried, for
		// response parsing.
		label     string
		endpoints []string
	}
	var posts []post
	for at := 0; at < n; {
		if batchSize == 1 {
			c := mix[at%len(mix)]
			posts = append(posts, post{
				url: baseFor(c) + "/v1/" + c.endpoint, body: c.body,
				label: c.endpoint, endpoints: []string{c.endpoint},
			})
			at++
			continue
		}
		items := make([]map[string]any, 0, batchSize)
		eps := make([]string, 0, batchSize)
		first := mix[at%len(mix)]
		for k := 0; k < batchSize && at < n; k++ {
			c := mix[at%len(mix)]
			var item map[string]any
			if err := json.Unmarshal(c.body, &item); err != nil {
				return nil, err
			}
			item["endpoint"] = c.endpoint
			items = append(items, item)
			eps = append(eps, c.endpoint)
			at++
		}
		body, err := json.Marshal(map[string]any{"items": items})
		if err != nil {
			return nil, err
		}
		posts = append(posts, post{
			url: baseFor(first) + "/v1/batch", body: body,
			label: "batch", endpoints: eps,
		})
	}

	var branches atomic.Uint64
	var firstErr error
	var errMu sync.Mutex
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	// One latency slot per post, written lock-free by index and bucketed
	// by endpoint afterwards; retries and Retry-After sleeps count, since
	// they are what the client actually waits.
	latencies := make([]time.Duration, len(posts))

	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(posts) {
					return
				}
				p := posts[i]
				t0 := time.Now()
				out, _, err := postWithRetry(ctx, client, p.url, p.body)
				latencies[i] = time.Since(t0)
				if err != nil {
					setErr(err)
					return
				}
				ev, err := countEvents(out, len(p.endpoints) > 1)
				if err != nil {
					setErr(err)
					return
				}
				branches.Add(ev)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	byEndpoint := make(map[string][]time.Duration)
	for i, p := range posts {
		byEndpoint[p.label] = append(byEndpoint[p.label], latencies[i])
	}
	ph := &results.Phase{
		BatchSize: batchSize,
		HTTPPosts: len(posts),
		Requests:  n,
		Branches:  branches.Load(),
		Seconds:   elapsed.Seconds(),
		Latency:   latencySummary(byEndpoint),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		ph.RequestsPerSecond = float64(n) / secs
		ph.BranchesPerSecond = float64(ph.Branches) / secs
	}
	return ph, nil
}

// latencySummary reduces per-endpoint duration samples to p50/p99,
// sorted by endpoint name for stable JSON.
func latencySummary(byEndpoint map[string][]time.Duration) []results.EndpointLatency {
	var out []results.EndpointLatency
	for ep, ds := range byEndpoint {
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		pick := func(q float64) float64 {
			i := int(q * float64(len(ds)-1))
			return float64(ds[i]) / float64(time.Millisecond)
		}
		out = append(out, results.EndpointLatency{
			Endpoint:  ep,
			P50Millis: pick(0.50),
			P99Millis: pick(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// ClusterThroughput measures aggregate requests/sec against a set of
// kralld nodes with client-side consistent-hash routing: each call is
// posted straight to the ring owner of its placement key (the same ring
// and RouteKey the servers use), so no request pays a forwarding hop
// during measurement. Single posts only — batching would smear one
// post's sub-requests across owners. With one node it degenerates to a
// plain single-phase measurement, which is how krallload -nodes
// establishes the single-node baseline with identical client mechanics.
func ClusterThroughput(ctx context.Context, nodes []string, opts ThroughputOptions) (*results.Phase, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster throughput: no nodes")
	}
	opts.setDefaults()
	sort.Strings(opts.Workloads)
	trimmed := make([]string, len(nodes))
	for i, u := range nodes {
		trimmed[i] = strings.TrimRight(u, "/")
	}
	ring := cluster.NewRing(trimmed, 0)

	mix, err := balancedMix(&opts, ring, trimmed)
	if err != nil {
		return nil, err
	}
	var rr atomic.Int64
	baseFor := func(c tputCall) string {
		if c.route != "" {
			if owner, ok := ring.Owner(c.route); ok {
				return owner
			}
		}
		// No stable placement: spread round-robin so unroutable calls
		// don't pile onto one node.
		return trimmed[int(rr.Add(1))%len(trimmed)]
	}

	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = opts.Concurrency * len(trimmed)
	tr.MaxIdleConnsPerHost = opts.Concurrency
	client := &http.Client{Timeout: opts.Timeout, Transport: tr}
	defer tr.CloseIdleConnections()

	// Warmup each call on its owner so recordings happen once, outside
	// the timed rounds, on the node that will keep serving the artifact.
	for _, c := range mix {
		if _, _, err := postWithRetry(ctx, client, baseFor(c)+"/v1/"+c.endpoint, c.body); err != nil {
			return nil, fmt.Errorf("cluster warmup %s: %w", c.endpoint, err)
		}
	}

	var best *results.Phase
	for r := 0; r < opts.Rounds; r++ {
		ph, err := runPhase(ctx, client, baseFor, mix, opts.Requests, 1, opts.Concurrency)
		if err != nil {
			return nil, err
		}
		if best == nil || ph.RequestsPerSecond > best.RequestsPerSecond {
			best = ph
		}
	}
	return best, nil
}

// eventsField is the slice of a pipeline response the harness needs: the
// branch events the service accounted for while answering.
type eventsField struct {
	Events uint64 `json:"events"`
}

// countEvents sums the "events" fields of a response body — directly for
// a single-endpoint response, per item for a /v1/batch envelope (in which
// every item must have answered 200).
func countEvents(body []byte, isBatch bool) (uint64, error) {
	if !isBatch {
		var ev eventsField
		if err := json.Unmarshal(body, &ev); err != nil {
			return 0, err
		}
		return ev.Events, nil
	}
	var resp struct {
		OK     int `json:"ok"`
		Failed int `json:"failed"`
		Items  []struct {
			Status int             `json:"status"`
			Error  string          `json:"error"`
			Body   json.RawMessage `json:"body"`
		} `json:"items"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return 0, err
	}
	if resp.Failed > 0 {
		for _, it := range resp.Items {
			if it.Status != http.StatusOK {
				return 0, fmt.Errorf("batch item failed with status %d: %s", it.Status, it.Error)
			}
		}
	}
	var total uint64
	for _, it := range resp.Items {
		var ev eventsField
		if err := json.Unmarshal(it.Body, &ev); err != nil {
			return 0, err
		}
		total += ev.Events
	}
	return total, nil
}
