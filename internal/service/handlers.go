package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"net/http"

	"repro/internal/bench"
	"repro/internal/diskstore"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/replicate"
	"repro/internal/runner"
	"repro/internal/statemachine"
	"repro/internal/trace"
)

// Request is the common body of the four pipeline endpoints; each endpoint
// reads the fields it needs and rejects combinations that make no sense.
type Request struct {
	// Source is BL program text; Workload names a built-in benchmark.
	// Exactly one of the two selects the program (score may instead take
	// only a trace).
	Source   string `json:"source,omitempty"`
	Workload string `json:"workload,omitempty"`

	// Budget bounds branch events per run (0 = server default, capped by
	// the server's MaxBudget); Seed/Scale override the wseed/wscale
	// globals (0 = program defaults).
	Budget uint64 `json:"budget,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Scale  int64  `json:"scale,omitempty"`

	// States bounds machine sizes for /v1/machines and /v1/replicate
	// (default 5); MaxPathLen caps correlated path lengths (default 1,
	// which keeps every selection realizable by the replicator).
	States     int `json:"states,omitempty"`
	MaxPathLen int `json:"max_path_len,omitempty"`

	// Family selects the replication family for /v1/replicate: "" or
	// "branch" is the paper's two-way branch replication, "indirect" is
	// switch-dispatch case clustering. Unknown families are rejected.
	Family string `json:"family,omitempty"`

	// MaxSizeFactor bounds code growth in /v1/replicate (default 3);
	// Joint selects the §6 joint machines; IncludeIR returns the
	// transformed program text; Check runs the replication-equivalence
	// verifier on the transform (also settable as the check=true query
	// parameter); StaticBudget makes /v1/replicate skip replication at
	// sites the static analysis (/v1/analyze) proved one-way — budget is
	// never spent on statically-decided branches.
	MaxSizeFactor float64 `json:"max_size_factor,omitempty"`
	Joint         bool    `json:"joint,omitempty"`
	IncludeIR     bool    `json:"include_ir,omitempty"`
	Check         bool    `json:"check,omitempty"`
	StaticBudget  bool    `json:"static_budget,omitempty"`

	// TraceB64 is a base64 BLTRACE1 stream for /v1/score; Strategy picks
	// the scoring strategy (profile, last, twobit, static); Preds is the
	// per-site prediction vector for strategy "static" (entries "taken",
	// "not_taken", or "none").
	TraceB64 string   `json:"trace_b64,omitempty"`
	Strategy string   `json:"strategy,omitempty"`
	Preds    []string `json:"preds,omitempty"`
}

// compiled is an immutable compiled program shared across requests via the
// content-addressed store. Branch sites are numbered once here; downstream
// transforms always work on clones. ep is the program lowered for the
// server's execution backend — compiled once when the entry is created, so
// every cached-program request skips compilation (which the vm backend
// actually pays for).
type compiled struct {
	prog   *ir.Program
	name   string
	key    string // content hash of the program, reused in derived keys
	nsites int
	feats  []predict.SiteFeatures
	ep     exec.Program
}

// artifact is the record-once product of one (program, budget, seed,
// scale) cell: the sealed branch trace plus run counters. Immutable; a
// sealed slab is safe for concurrent replay.
type artifact struct {
	slab      *trace.Slab
	branches  uint64
	steps     uint64
	checksum  uint64
	truncated bool
	// pin holds the disk mapping the slab's event bytes alias, when the
	// artifact was opened zero-copy from the disk tier; it keeps the
	// mapping alive exactly as long as the artifact.
	pin *diskstore.Mapped
}

// RateBlock is the predicted/mispredicted summary used across responses.
type RateBlock struct {
	Predicted    uint64  `json:"predicted"`
	Mispredicted uint64  `json:"mispredicted"`
	RatePct      float64 `json:"rate_pct"`
}

func rateBlock(misses, total uint64) RateBlock {
	b := RateBlock{Predicted: total, Mispredicted: misses}
	if total > 0 {
		b.RatePct = 100 * float64(misses) / float64(total)
	}
	return b
}

// resolveProgram compiles (or fetches) the request's program.
func (s *Server) resolveProgram(req *Request) (*compiled, error) {
	switch {
	case req.Workload != "" && req.Source != "":
		return nil, badRequest("give either workload or source, not both")
	case req.Workload != "":
		key := contentKey("prog", "workload", req.Workload)
		return runner.Cached(s.store, key, func() (*compiled, error) {
			w, err := bench.ByName(req.Workload)
			if err != nil {
				return nil, &httpError{http.StatusBadRequest, err.Error()}
			}
			c, err := bench.Compile(w)
			if err != nil {
				return nil, err
			}
			ep, err := s.cfg.Backend.Compile(c.Prog)
			if err != nil {
				return nil, err
			}
			return &compiled{prog: c.Prog, name: w.Name, key: key, nsites: c.NSites, feats: c.Features, ep: ep}, nil
		})
	case req.Source != "":
		key := contentKey("prog", "source", req.Source)
		return runner.Cached(s.store, key, func() (*compiled, error) {
			prog, err := lang.Compile(req.Source)
			if err != nil {
				return nil, &httpError{http.StatusBadRequest, "compiling source: " + err.Error()}
			}
			n := prog.NumberBranches(true)
			ep, err := s.cfg.Backend.Compile(prog)
			if err != nil {
				return nil, &httpError{http.StatusBadRequest, "compiling source: " + err.Error()}
			}
			return &compiled{prog: prog, name: "source", key: key, nsites: n, feats: predict.Analyze(prog), ep: ep}, nil
		})
	default:
		return nil, badRequest("request needs a workload or source program")
	}
}

// budgetFor applies the server's default and cap.
func (s *Server) budgetFor(req *Request) (uint64, error) {
	b := req.Budget
	if b == 0 {
		b = s.cfg.DefaultBudget
	}
	if b > s.cfg.MaxBudget {
		return 0, badRequest("budget %d exceeds the server cap %d", b, s.cfg.MaxBudget)
	}
	return b, nil
}

// newMachine prepares a run of prog on the server's backend under the
// request's dataset knobs. The context is threaded into the run loop, so a
// disconnected client or an expired deadline stops the machine. The step
// backstop bounds even branch-free loops. When prog is the cached entry's
// own program its precompiled form is reused; transformed clones compile
// fresh.
func (s *Server) newMachine(ctx context.Context, c *compiled, prog *ir.Program, budget uint64, req *Request) (exec.Machine, error) {
	ep := c.ep
	if prog != c.prog || ep == nil {
		var err error
		if ep, err = s.cfg.Backend.Compile(prog); err != nil {
			return nil, err
		}
	}
	m := ep.NewMachine()
	m.SetContext(ctx, 0)
	m.SetMaxBranches(budget)
	m.SetMaxSteps(512 * budget)
	if req.Seed != 0 {
		if err := m.SetGlobal("wseed", req.Seed); err != nil {
			return nil, badRequest("seed override: program %s has no wseed global", c.name)
		}
	}
	switch {
	case req.Scale != 0:
		if err := m.SetGlobal("wscale", req.Scale); err != nil {
			return nil, badRequest("scale override: program %s has no wscale global", c.name)
		}
	case budget != 0:
		// Budgeted runs should not finish early; built-in workloads scale
		// via wscale, ad-hoc programs need not declare it.
		_ = m.SetGlobal("wscale", 1<<30)
	}
	return m, nil
}

// runMachine executes m, treating the branch budget as normal completion.
func runMachine(m exec.Machine) (truncated bool, err error) {
	if _, err := m.Run(); err != nil {
		if errors.Is(err, interp.ErrLimit) {
			return true, nil
		}
		return false, err
	}
	return false, nil
}

// artifactFor records — or fetches from the store — the branch trace of
// one program cell. Population is single-flight, so the recording runs
// under a detached context bounded by the server's RequestTimeout rather
// than the first requester's: one client disconnecting must not fail every
// concurrent waiter sharing the entry. Failed recordings are not cached
// (LRU drops errors), so a retry after a timeout starts clean.
func (s *Server) artifactFor(ctx context.Context, c *compiled, req *Request, budget uint64) (*artifact, error) {
	key := artifactKey(c.key, budget, req)
	return runner.Cached(s.store, key, func() (*artifact, error) {
		rctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.RequestTimeout)
		defer cancel()
		m, err := s.newMachine(rctx, c, c.prog, budget, req)
		if err != nil {
			return nil, err
		}
		slab := trace.NewSlab(int(budget))
		m.SetRec(slab)
		truncated, err := runMachine(m)
		if err != nil {
			return nil, err
		}
		slab.Seal()
		s.eng.CountRecord(int64(slab.Len()))
		mc := m.Counters()
		return &artifact{
			slab:      slab,
			branches:  mc.Branches,
			steps:     mc.Steps,
			checksum:  mc.Checksum,
			truncated: truncated,
		}, nil
	})
}

// profileFor replays an artifact into the full profile bundle (local,
// global, and path pattern tables), memoised content-addressed.
func (s *Server) profileFor(ctx context.Context, c *compiled, req *Request, budget uint64) (*profile.Profile, *artifact, error) {
	art, err := s.artifactFor(ctx, c, req, budget)
	if err != nil {
		return nil, nil, err
	}
	key := contentKey("prof", c.key, field(budget, req.Seed, req.Scale))
	prof, err := runner.Cached(s.store, key, func() (*profile.Profile, error) {
		p := profile.New(c.nsites, profile.Options{LocalK: 9, GlobalK: 9, PathM: 3})
		art.slab.ReplayInto(p)
		s.eng.CountReplay(int64(art.slab.Len()))
		return p, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return prof, art, nil
}

// --- POST /v1/profile ---------------------------------------------------

// SiteCounts is one branch site's profile row.
type SiteCounts struct {
	Site     int32  `json:"site"`
	Taken    uint64 `json:"taken"`
	NotTaken uint64 `json:"not_taken"`
	// Pred is the majority direction ("taken" / "not_taken"); ties predict
	// not_taken, the repository-wide convention.
	Pred string `json:"pred"`
}

// ProfileResponse answers /v1/profile.
type ProfileResponse struct {
	SchemaV   string       `json:"schema"`
	Kind      string       `json:"kind"`
	Program   string       `json:"program"`
	NumSites  int          `json:"num_sites"`
	Events    uint64       `json:"events"`
	Steps     uint64       `json:"steps"`
	Checksum  uint64       `json:"checksum"`
	Truncated bool         `json:"truncated"`
	Profile   RateBlock    `json:"profile"`
	Sites     []SiteCounts `json:"sites"`
}

func (s *Server) handleProfile(ctx context.Context, req *Request) (any, error) {
	c, err := s.resolveProgram(req)
	if err != nil {
		return nil, err
	}
	budget, err := s.budgetFor(req)
	if err != nil {
		return nil, err
	}
	// The profile bundle is memoised in the store; serving a hot program
	// replays nothing. (Cold cost is the full bundle — pattern tables
	// included — but /v1/machines needs those anyway.)
	prof, art, err := s.profileFor(ctx, c, req, budget)
	if err != nil {
		return nil, err
	}
	counts := prof.Counts
	r := predict.ProfileResult(counts)
	resp := &ProfileResponse{
		SchemaV:   Schema,
		Kind:      "profile",
		Program:   c.name,
		NumSites:  c.nsites,
		Events:    art.branches,
		Steps:     art.steps,
		Checksum:  art.checksum,
		Truncated: art.truncated,
		Profile:   rateBlock(r.Misses, r.Total),
	}
	for site := int32(0); site < int32(c.nsites); site++ {
		if counts.Total(site) == 0 {
			continue
		}
		pred := "not_taken"
		if counts.Taken[site] > counts.NotTaken[site] {
			pred = "taken"
		}
		resp.Sites = append(resp.Sites, SiteCounts{
			Site: site, Taken: counts.Taken[site], NotTaken: counts.NotTaken[site], Pred: pred,
		})
	}
	return resp, nil
}

// --- POST /v1/machines --------------------------------------------------

// ChoiceJSON is one branch's selected strategy.
type ChoiceJSON struct {
	Site   int32  `json:"site"`
	Kind   string `json:"kind"`
	States int    `json:"states"`
	RateBlock
	ProfileRatePct float64 `json:"profile_rate_pct"`
}

// MachinesResponse answers /v1/machines.
type MachinesResponse struct {
	SchemaV    string       `json:"schema"`
	Kind       string       `json:"kind"`
	Program    string       `json:"program"`
	NumSites   int          `json:"num_sites"`
	Events     uint64       `json:"events"`
	States     int          `json:"states"`
	MaxPathLen int          `json:"max_path_len"`
	Aggregate  RateBlock    `json:"aggregate"`
	Profile    RateBlock    `json:"profile"`
	Choices    []ChoiceJSON `json:"choices"`
}

func (req *Request) machineOpts() (states, pathLen int, err error) {
	states = req.States
	if states == 0 {
		states = 5
	}
	if states < 2 || states > 64 {
		return 0, 0, badRequest("states %d out of range [2,64]", states)
	}
	pathLen = req.MaxPathLen
	if pathLen == 0 {
		pathLen = 1
	}
	if pathLen < 1 || pathLen > 3 {
		return 0, 0, badRequest("max_path_len %d out of range [1,3]", pathLen)
	}
	return states, pathLen, nil
}

func (s *Server) handleMachines(ctx context.Context, req *Request) (any, error) {
	c, err := s.resolveProgram(req)
	if err != nil {
		return nil, err
	}
	budget, err := s.budgetFor(req)
	if err != nil {
		return nil, err
	}
	states, pathLen, err := req.machineOpts()
	if err != nil {
		return nil, err
	}
	prof, art, err := s.profileFor(ctx, c, req, budget)
	if err != nil {
		return nil, err
	}
	// Selection is a pure function of the (memoised) profile and the
	// request's machine options, so it is content-addressed too.
	mkey := contentKey("mach", c.key, field(budget, req.Seed, req.Scale, states, pathLen))
	choices, err := runner.Cached(s.store, mkey, func() ([]statemachine.Choice, error) {
		return statemachine.Select(prof, c.feats, statemachine.Options{
			MaxStates:  states,
			MaxPathLen: pathLen,
		}), nil
	})
	if err != nil {
		return nil, err
	}
	misses, total := statemachine.Aggregate(choices)
	r := predict.ProfileResult(prof.Counts)
	resp := &MachinesResponse{
		SchemaV:    Schema,
		Kind:       "machines",
		Program:    c.name,
		NumSites:   c.nsites,
		Events:     art.branches,
		States:     states,
		MaxPathLen: pathLen,
		Aggregate:  rateBlock(misses, total),
		Profile:    rateBlock(r.Misses, r.Total),
	}
	for i := range choices {
		ch := &choices[i]
		if ch.Total == 0 {
			continue
		}
		cj := ChoiceJSON{
			Site:      ch.Site,
			Kind:      ch.Kind.String(),
			States:    ch.NumStates(),
			RateBlock: rateBlock(ch.Misses(), ch.Total),
		}
		if ch.ProfileTotal > 0 {
			cj.ProfileRatePct = 100 * float64(ch.ProfileTotal-ch.ProfileHits) / float64(ch.ProfileTotal)
		}
		resp.Choices = append(resp.Choices, cj)
	}
	return resp, nil
}

// --- POST /v1/replicate -------------------------------------------------

// MeasuredRun is one interpreter-verified run of an annotated program.
type MeasuredRun struct {
	RateBlock
	Checksum uint64 `json:"checksum"`
}

// ReplicateResponse answers /v1/replicate.
type ReplicateResponse struct {
	SchemaV    string      `json:"schema"`
	Kind       string      `json:"kind"`
	Program    string      `json:"program"`
	States     int         `json:"states"`
	Joint      bool        `json:"joint"`
	Baseline   MeasuredRun `json:"baseline"`
	Replicated MeasuredRun `json:"replicated"`
	Code       struct {
		InstrsBefore int     `json:"instrs_before"`
		InstrsAfter  int     `json:"instrs_after"`
		SizeFactor   float64 `json:"size_factor"`
	} `json:"code"`
	Machines struct {
		Loop          int `json:"loop"`
		Exit          int `json:"exit"`
		Correlated    int `json:"correlated"`
		EdgesRouted   int `json:"edges_routed"`
		EdgesCatchAll int `json:"edges_catch_all"`
		Skipped       int `json:"skipped"`
		StaticSkipped int `json:"static_skipped"`
	} `json:"machines"`
	SemanticsVerified bool `json:"semantics_verified"`
	// Verified reports the replication-equivalence verifier's verdict; it
	// is false unless the request asked for verification (check).
	Verified bool   `json:"verified"`
	IR       string `json:"ir,omitempty"`
}

func (s *Server) handleReplicate(ctx context.Context, req *Request) (any, error) {
	switch req.Family {
	case "", "branch":
		// The paper's family, below.
	case "indirect":
		return s.handleReplicateIndirect(ctx, req)
	default:
		return nil, badRequest("unknown family %q (want \"branch\" or \"indirect\")", req.Family)
	}
	c, err := s.resolveProgram(req)
	if err != nil {
		return nil, err
	}
	budget, err := s.budgetFor(req)
	if err != nil {
		return nil, err
	}
	states, pathLen, err := req.machineOpts()
	if err != nil {
		return nil, err
	}
	sizeFactor := req.MaxSizeFactor
	if sizeFactor == 0 {
		sizeFactor = 3
	}
	if sizeFactor < 1 || sizeFactor > 64 {
		return nil, badRequest("max_size_factor %.2f out of range [1,64]", sizeFactor)
	}
	prof, _, err := s.profileFor(ctx, c, req, budget)
	if err != nil {
		return nil, err
	}
	choices := statemachine.Select(prof, c.feats, statemachine.Options{
		MaxStates:  states,
		MaxPathLen: pathLen,
	})
	preds := predict.ProfileStatic(prof.Counts).Preds

	// Both measuring runs are live executions on the server's backend: the
	// transformed clone's branch stream is exactly what the recorded trace
	// cannot provide.
	measure := func(prog *ir.Program) (MeasuredRun, error) {
		m, err := s.newMachine(ctx, c, prog, budget, req)
		if err != nil {
			return MeasuredRun{}, err
		}
		if _, err := runMachine(m); err != nil {
			return MeasuredRun{}, err
		}
		s.eng.CountLiveRun()
		mc := m.Counters()
		return MeasuredRun{
			RateBlock: rateBlock(mc.Mispredicted, mc.Predicted),
			Checksum:  mc.Checksum,
		}, nil
	}

	baseline := ir.CloneProgram(c.prog)
	replicate.Annotate(baseline, preds)
	base, err := measure(baseline)
	if err != nil {
		return nil, err
	}

	ropts := replicate.Options{MaxSizeFactor: sizeFactor, Verify: req.Check}
	if req.StaticBudget {
		// The "budget: static" mode: sites the dataflow analysis proved
		// one-way get no replication machinery — a static annotation is
		// already a perfect predictor there.
		rep, err := s.staticReportFor(c)
		if err != nil {
			return nil, err
		}
		ropts.StaticSkip = rep.DecidedSites()
	}

	clone := ir.CloneProgram(c.prog)
	apply := replicate.ApplyOpts
	if req.Joint {
		apply = replicate.ApplyJoint
	}
	st, err := apply(clone, choices, preds, ropts)
	if err != nil {
		if errors.Is(err, replicate.ErrVerify) {
			// The transform produced a program the verifier cannot prove
			// equivalent — a daemon-side fault, never the client's.
			s.verifyFail.Add(1)
			return nil, &httpError{http.StatusInternalServerError, err.Error()}
		}
		return nil, err
	}
	if st.Verified {
		s.verifyOK.Add(1)
	}
	repl, err := measure(clone)
	if err != nil {
		return nil, err
	}

	resp := &ReplicateResponse{
		SchemaV:           Schema,
		Kind:              "replicate",
		Program:           c.name,
		States:            states,
		Joint:             req.Joint,
		Baseline:          base,
		Replicated:        repl,
		SemanticsVerified: base.Checksum == repl.Checksum,
		Verified:          st.Verified,
	}
	resp.Code.InstrsBefore = st.InstrsBefore
	resp.Code.InstrsAfter = st.InstrsAfter
	resp.Code.SizeFactor = st.SizeFactor()
	resp.Machines.Loop = st.LoopApplied
	resp.Machines.Exit = st.ExitApplied
	resp.Machines.Correlated = st.PathApplied
	resp.Machines.EdgesRouted = st.PathEdgesRouted
	resp.Machines.EdgesCatchAll = st.PathEdgesCatchAll
	resp.Machines.Skipped = st.Skipped
	resp.Machines.StaticSkipped = st.StaticSkipped
	if req.IncludeIR {
		resp.IR = clone.String()
	}
	return resp, nil
}

// --- POST /v1/score -----------------------------------------------------

// ScoreResponse answers /v1/score.
type ScoreResponse struct {
	SchemaV  string    `json:"schema"`
	Kind     string    `json:"kind"`
	Strategy string    `json:"strategy"`
	Source   string    `json:"source"`
	NumSites int       `json:"num_sites"`
	Events   uint64    `json:"events"`
	Score    RateBlock `json:"score"`
}

func (s *Server) handleScore(ctx context.Context, req *Request) (any, error) {
	strategy := req.Strategy
	if strategy == "" {
		strategy = "profile"
	}

	var slab *trace.Slab
	var source, cacheKey string
	switch {
	case req.TraceB64 != "":
		if req.Workload != "" || req.Source != "" {
			return nil, badRequest("give either trace_b64 or a program, not both")
		}
		raw, err := base64.StdEncoding.DecodeString(req.TraceB64)
		if err != nil {
			return nil, badRequest("trace_b64: %v", err)
		}
		slab, err = trace.ReadSlab(bytes.NewReader(raw), s.cfg.TraceLimits)
		if err != nil {
			if errors.Is(err, trace.ErrTooLarge) {
				return nil, &httpError{http.StatusRequestEntityTooLarge, err.Error()}
			}
			return nil, badRequest("decoding trace: %v", err)
		}
		source = "upload"
	default:
		c, err := s.resolveProgram(req)
		if err != nil {
			return nil, err
		}
		budget, err := s.budgetFor(req)
		if err != nil {
			return nil, err
		}
		art, err := s.artifactFor(ctx, c, req, budget)
		if err != nil {
			return nil, err
		}
		slab = art.slab
		source = c.name
		// A score of a stored trace is a pure function of the artifact key
		// and the strategy parameters, so it is memoised too; scoring a hot
		// program replays nothing. (Uploaded traces have no content key and
		// are scored directly.)
		cacheKey = contentKey("score", c.key,
			field(budget, req.Seed, req.Scale, strategy), field(req.Preds))
	}

	var nsites int
	var score RateBlock
	if cacheKey != "" {
		ent, err := runner.Cached(s.store, cacheKey, func() (scoreEntry, error) {
			return s.scoreSlab(slab, strategy, req.Preds)
		})
		if err != nil {
			return nil, err
		}
		nsites, score = ent.nsites, ent.score
	} else {
		ent, err := s.scoreSlab(slab, strategy, req.Preds)
		if err != nil {
			return nil, err
		}
		nsites, score = ent.nsites, ent.score
	}

	return &ScoreResponse{
		SchemaV:  Schema,
		Kind:     "score",
		Strategy: strategy,
		Source:   source,
		NumSites: nsites,
		Events:   slab.Len(),
		Score:    score,
	}, nil
}

// scoreEntry is a memoised score: the trace's observed site-table size
// plus the strategy's misprediction block.
type scoreEntry struct {
	nsites int
	score  RateBlock
}

// scoreSlab replays one trace against a strategy. Site table sizes come
// from the trace itself, so uploaded traces need no side channel
// describing their program. All decode/collector state — the site scan,
// count tables, predictors, and the prediction vector — comes from the
// request-scoped scorePool, so the batch pipeline's hottest endpoint
// allocates nothing proportional to the request rate.
func (s *Server) scoreSlab(slab *trace.Slab, strategy string, reqPreds []string) (scoreEntry, error) {
	st := scorePool.Get().(*scoreState)
	defer scorePool.Put(st)
	st.max.N = 0
	slab.ReplayInto(&st.max)
	nsites := st.max.N

	var score RateBlock
	switch strategy {
	case "profile":
		counts := st.countsFor(nsites)
		slab.ReplayInto(counts)
		r := predict.ProfileResult(counts)
		score = rateBlock(r.Misses, r.Total)
	case "last":
		eval := predict.Eval{P: st.lastFor(nsites)}
		slab.ReplayInto(&eval)
		score = rateBlock(eval.Misses, eval.Total)
	case "twobit":
		eval := predict.Eval{P: st.twobitFor(nsites)}
		slab.ReplayInto(&eval)
		score = rateBlock(eval.Misses, eval.Total)
	case "static":
		if len(reqPreds) > nsites {
			return scoreEntry{}, badRequest("preds has %d entries for %d sites", len(reqPreds), nsites)
		}
		preds := st.predsFor(nsites)
		for i, p := range reqPreds {
			switch p {
			case "taken":
				preds[i] = ir.PredTaken
			case "not_taken":
				preds[i] = ir.PredNotTaken
			case "none", "":
				preds[i] = ir.PredNone
			default:
				return scoreEntry{}, badRequest("preds[%d]: unknown prediction %q", i, p)
			}
		}
		fold := predict.StaticScore{Preds: preds}
		slab.ReplayInto(&fold)
		score = rateBlock(fold.Mispredicted, fold.Predicted)
	default:
		return scoreEntry{}, badRequest("unknown strategy %q (want profile, last, twobit, or static)", strategy)
	}
	s.eng.CountReplay(int64(slab.Len()))
	return scoreEntry{nsites: nsites, score: score}, nil
}
