// Package ir defines the register-based intermediate representation that the
// whole reproduction is built on: programs, functions, basic blocks, typed
// three-address instructions, and branch terminators that carry the profiling
// identity (site and origin IDs) and the static prediction annotation used by
// the code-replication transformer.
//
// The IR is deliberately small but complete enough to compile the BL language
// (internal/lang) and to express every transformation the paper needs:
// conditional branches with distinct taken/not-taken successors, natural
// loops, calls with recursion, global scalars and arrays, and both integer
// and floating-point arithmetic. All registers are 64 bits wide; float values
// are stored as their IEEE-754 bit patterns and interpreted by typed opcodes.
package ir

import (
	"fmt"
	"math"
)

// Type is the static type of a value in the source language. At the IR level
// types only select opcode families; every register is a 64-bit cell.
type Type uint8

// The BL value types. TBool values are materialised as the integers 0 and 1.
const (
	TVoid Type = iota
	TInt
	TFloat
	TBool
)

func (t Type) String() string {
	switch t {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Reg names a virtual register inside a function frame. Registers are dense:
// a function with NRegs = n uses registers 0..n-1. Parameters occupy the
// first NParams registers.
type Reg int32

// NoReg marks an unused register operand.
const NoReg Reg = -1

// Prediction is a static branch prediction annotation attached to a Br
// terminator. The interpreter compares it with the actual outcome to count
// mispredictions of the transformed program.
type Prediction uint8

const (
	// PredNone means the branch carries no static prediction.
	PredNone Prediction = iota
	// PredTaken predicts the branch jumps to its Then successor.
	PredTaken
	// PredNotTaken predicts fall-through to the Else successor.
	PredNotTaken
)

func (p Prediction) String() string {
	switch p {
	case PredNone:
		return "none"
	case PredTaken:
		return "taken"
	case PredNotTaken:
		return "not-taken"
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// Instr is a single three-address instruction. The meaning of the operand
// fields depends on the opcode; see the Op documentation. Instructions are
// plain values (not an interface) so that blocks store them contiguously and
// the interpreter dispatches without allocation.
type Instr struct {
	Op  Op
	Dst Reg
	A   Reg
	B   Reg
	// Imm holds the integer immediate for OpConstI, the float bit pattern
	// for OpConstF, the global index for load/store opcodes, and the callee
	// function index for OpCall.
	Imm int64
	// Args holds the argument registers of OpCall; nil for every other
	// opcode.
	Args []Reg
}

// FloatImm returns the float64 immediate of an OpConstF instruction.
func (in *Instr) FloatImm() float64 { return math.Float64frombits(uint64(in.Imm)) }

// SetFloatImm stores f as the instruction's immediate bit pattern.
func (in *Instr) SetFloatImm(f float64) { in.Imm = int64(math.Float64bits(f)) }

// TermOp discriminates block terminators.
type TermOp uint8

const (
	// TermInvalid marks a block whose terminator has not been set yet;
	// validation rejects it.
	TermInvalid TermOp = iota
	// TermJmp is an unconditional jump to Then.
	TermJmp
	// TermBr is a conditional branch: if register Cond is non-zero control
	// transfers to Then (the branch is "taken"), otherwise to Else.
	TermBr
	// TermRet returns from the function, with the value in register A when
	// HasVal is set.
	TermRet
	// TermSwitch is an N-way indirect dispatch: register Cond selects case
	// target Targets[v] when 0 <= v < len(Targets), and the Else (default)
	// successor otherwise. The dispatch outcome index is v for in-range
	// values and len(Targets) for the default, so a switch with n case
	// targets has n+1 outcomes.
	TermSwitch
)

func (op TermOp) String() string {
	switch op {
	case TermInvalid:
		return "invalid"
	case TermJmp:
		return "jmp"
	case TermBr:
		return "br"
	case TermRet:
		return "ret"
	case TermSwitch:
		return "switch"
	}
	return fmt.Sprintf("term(%d)", uint8(op))
}

// Term is a block terminator. For TermBr it also carries the branch identity
// used by profiling and replication:
//
//   - Site uniquely identifies this branch instance in the current program;
//     sites are assigned by NumberBranches and reassigned after transforms.
//   - Orig identifies the source-level branch the site descends from. Clones
//     made by the replicator share the Orig of their original, so profiles
//     collected on the original program can be attributed to every copy.
//   - Pred is the static prediction for this site (per-copy after
//     replication).
//
// TermSwitch carries the same Site/Orig identity (switch dispatches are
// prediction sites too, numbered in the same dense space as conditional
// branches); its static prediction is Pred == PredTaken with PredIdx naming
// the predicted outcome index (len(Targets) predicts the default).
//
// A conditional branch with SwTest set is a clustering test: one equality
// test of a case-clustered switch's fast-path chain (internal/indirect). It
// keeps the governed switch's Site/Orig, and in the trace it is invisible
// except that taking it emits the switch event (Site, SwOutcome) the
// residual switch would have emitted — so clustered programs produce
// byte-identical traces. Its Pred/misprediction accounting stays binary.
type Term struct {
	Op     TermOp
	Cond   Reg
	A      Reg
	HasVal bool
	Then   *Block
	Else   *Block
	// Targets holds the case successors of a TermSwitch (outcome i jumps to
	// Targets[i]); nil for every other terminator.
	Targets []*Block
	Site    int32
	Orig    int32
	Pred    Prediction
	// PredIdx is the predicted outcome index of a predicted TermSwitch.
	PredIdx int32
	// SwTest marks a clustering test branch; SwOutcome is the switch
	// outcome it emits when taken.
	SwTest    bool
	SwOutcome int32
}

// NumOutcomes reports the number of dispatch outcomes of a TermSwitch
// (cases plus the default), or 0 for other terminators.
func (t *Term) NumOutcomes() int {
	if t.Op != TermSwitch {
		return 0
	}
	return len(t.Targets) + 1
}

// Block is a basic block: a straight-line instruction sequence ended by one
// terminator. Blocks are identified within their function by ID (dense) and
// carry an optional name for diagnostics.
type Block struct {
	ID     int
	Name   string
	Instrs []Instr
	Term   Term
	// Dead marks a block that is intentionally unreachable from the entry
	// (e.g. a join point sealed by the front end after both arms returned).
	// Validate requires every block to be reachable or marked dead, so
	// transforms cannot silently orphan live code.
	Dead bool
}

// Succs appends the successor blocks of b to dst and returns it. The order
// is Then before Else, matching the taken/not-taken convention.
func (b *Block) Succs(dst []*Block) []*Block {
	switch b.Term.Op {
	case TermJmp:
		dst = append(dst, b.Term.Then)
	case TermBr:
		dst = append(dst, b.Term.Then, b.Term.Else)
	case TermSwitch:
		dst = append(dst, b.Term.Targets...)
		dst = append(dst, b.Term.Else)
	}
	return dst
}

// NumSuccs reports how many successors the block has.
func (b *Block) NumSuccs() int {
	switch b.Term.Op {
	case TermJmp:
		return 1
	case TermBr:
		return 2
	case TermSwitch:
		return len(b.Term.Targets) + 1
	default:
		return 0
	}
}

// String returns the block's diagnostic label.
func (b *Block) String() string {
	if b.Name != "" {
		return fmt.Sprintf("b%d.%s", b.ID, b.Name)
	}
	return fmt.Sprintf("b%d", b.ID)
}

// Func is one function: an entry block, a dense block list, and a frame of
// NRegs virtual registers whose first NParams registers receive the
// arguments.
type Func struct {
	Name    string
	ID      int
	NParams int
	NRegs   int
	RetType Type
	Blocks  []*Block
	Entry   *Block
}

// NewBlock appends a fresh empty block to the function and returns it.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{ID: len(f.Blocks), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NRegs)
	f.NRegs++
	return r
}

// Renumber re-assigns dense block IDs in the current Blocks order.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.ID = i
	}
}

// NumInstrs counts the instructions in the function, including one unit for
// each terminator. This is the code-size metric reported in every experiment.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs) + 1
	}
	return n
}

// Global is a program-level variable: a scalar (Len == 1 used as value cell)
// or a one-dimensional array of Len elements. Init provides the initial bit
// patterns; missing elements are zero.
type Global struct {
	Name  string
	ID    int
	Type  Type // element type: TInt or TFloat (TBool stored as TInt)
	Len   int
	Init  []int64
	Array bool
}

// Program is a complete translation unit.
type Program struct {
	Funcs   []*Func
	Globals []*Global

	funcIdx map[string]int
	globIdx map[string]int
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		funcIdx: make(map[string]int),
		globIdx: make(map[string]int),
	}
}

// AddFunc appends f, assigns its ID, and indexes it by name. Adding two
// functions with the same name is an error.
func (p *Program) AddFunc(f *Func) error {
	if _, dup := p.funcIdx[f.Name]; dup {
		return fmt.Errorf("ir: duplicate function %q", f.Name)
	}
	f.ID = len(p.Funcs)
	p.funcIdx[f.Name] = f.ID
	p.Funcs = append(p.Funcs, f)
	return nil
}

// AddGlobal appends g, assigns its ID, and indexes it by name.
func (p *Program) AddGlobal(g *Global) error {
	if _, dup := p.globIdx[g.Name]; dup {
		return fmt.Errorf("ir: duplicate global %q", g.Name)
	}
	g.ID = len(p.Globals)
	p.globIdx[g.Name] = g.ID
	p.Globals = append(p.Globals, g)
	return nil
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	if i, ok := p.funcIdx[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (p *Program) Global(name string) *Global {
	if i, ok := p.globIdx[name]; ok {
		return p.Globals[i]
	}
	return nil
}

// NumInstrs is the program code size in IR instructions (terminators count
// one each).
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// NumberBranches walks every function in order and assigns dense Site IDs to
// all prediction sites: conditional branches and switch dispatches share one
// numbering space. When fresh is true the Orig IDs are reset to the new site
// IDs (done once on the original program); otherwise Orig values are
// preserved (done after transforms, so copies keep their ancestry). It
// returns the number of branch sites.
//
// Clustering test branches (SwTest) are not sites of their own: they keep
// the Site/Orig of the switch they stand in for, so renumbering a clustered
// program is a no-op as long as block walk order is preserved (the residual
// switch occupies its original's walk position).
func (p *Program) NumberBranches(fresh bool) int {
	site := int32(0)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if !b.Term.isSite() {
				continue
			}
			b.Term.Site = site
			if fresh {
				b.Term.Orig = site
			}
			site++
		}
	}
	return int(site)
}

// isSite reports whether the terminator owns a prediction site ID.
func (t *Term) isSite() bool {
	return (t.Op == TermBr && !t.SwTest) || t.Op == TermSwitch
}

// BranchSite describes one prediction site (conditional branch or switch
// dispatch) for analyses that need to map site IDs back to their location.
type BranchSite struct {
	Func  *Func
	Block *Block
	Site  int32
	Orig  int32
	// Switch is set when the site is a TermSwitch dispatch rather than a
	// two-way conditional branch.
	Switch bool
}

// BranchSites returns the table of all branch sites in site order.
// NumberBranches must have been called first.
func (p *Program) BranchSites() []BranchSite {
	var sites []BranchSite
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Term.isSite() {
				sites = append(sites, BranchSite{
					Func: f, Block: b, Site: b.Term.Site, Orig: b.Term.Orig,
					Switch: b.Term.Op == TermSwitch,
				})
			}
		}
	}
	// Sites were assigned in walk order, so the slice is already sorted by
	// Site; keep that invariant explicit for callers indexing by site ID.
	for i := range sites {
		if int(sites[i].Site) != i {
			// Defensive: renumber if a transform forgot to.
			p.NumberBranches(false)
			return p.BranchSites()
		}
	}
	return sites
}
