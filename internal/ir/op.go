package ir

import "fmt"

// Op is an instruction opcode. Opcodes are typed: integer and float
// arithmetic are distinct families so the interpreter can reinterpret the
// 64-bit register cells without tag bits.
type Op uint16

const (
	// OpInvalid is the zero opcode; validation rejects it.
	OpInvalid Op = iota

	// OpNop does nothing. It exists so transforms can blank out
	// instructions without reslicing.
	OpNop

	// Constants and moves.
	OpConstI // Dst = Imm
	OpConstF // Dst = float64frombits(Imm)
	OpMov    // Dst = A

	// Integer arithmetic. Division and modulo by zero are runtime errors.
	OpAddI
	OpSubI
	OpMulI
	OpDivI
	OpModI
	OpAndI
	OpOrI
	OpXorI
	OpShlI // Dst = A << (B & 63)
	OpShrI // Dst = A >> (B & 63), arithmetic
	OpNegI
	OpNotI // logical not: Dst = (A == 0)

	// Float arithmetic.
	OpAddF
	OpSubF
	OpMulF
	OpDivF
	OpNegF

	// Comparisons produce 0 or 1.
	OpEqI
	OpNeI
	OpLtI
	OpLeI
	OpGtI
	OpGeI
	OpEqF
	OpNeF
	OpLtF
	OpLeF
	OpGtF
	OpGeF

	// Conversions.
	OpItoF // Dst = float(A)
	OpFtoI // Dst = int(A), truncating toward zero

	// Intrinsics used by the BL builtins.
	OpSqrtF
	OpAbsI
	OpAbsF
	OpMinI
	OpMaxI
	OpMinF
	OpMaxF

	// Globals. Imm is the global ID. For element access A is the index
	// register; out-of-bounds access is a runtime error.
	OpLoadG     // Dst = globals[Imm]
	OpStoreG    // globals[Imm] = A
	OpLoadElem  // Dst = globals[Imm][A]
	OpStoreElem // globals[Imm][A] = B

	// OpCall invokes function Imm with Args; Dst receives the return value
	// (ignored when Dst == NoReg).
	OpCall

	// OpPrint feeds register A into the interpreter's output checksum.
	// It is the observable effect that keeps workloads honest.
	OpPrint

	opMax
)

// opInfo describes the operand shape of an opcode.
type opInfo struct {
	name    string
	hasDst  bool
	nSrc    int  // number of register sources (A, then B)
	hasImm  bool // meaningful Imm field
	isFloat bool // operates on float bit patterns
}

var opTable = [opMax]opInfo{
	OpInvalid:   {name: "invalid"},
	OpNop:       {name: "nop"},
	OpConstI:    {name: "consti", hasDst: true, hasImm: true},
	OpConstF:    {name: "constf", hasDst: true, hasImm: true, isFloat: true},
	OpMov:       {name: "mov", hasDst: true, nSrc: 1},
	OpAddI:      {name: "addi", hasDst: true, nSrc: 2},
	OpSubI:      {name: "subi", hasDst: true, nSrc: 2},
	OpMulI:      {name: "muli", hasDst: true, nSrc: 2},
	OpDivI:      {name: "divi", hasDst: true, nSrc: 2},
	OpModI:      {name: "modi", hasDst: true, nSrc: 2},
	OpAndI:      {name: "andi", hasDst: true, nSrc: 2},
	OpOrI:       {name: "ori", hasDst: true, nSrc: 2},
	OpXorI:      {name: "xori", hasDst: true, nSrc: 2},
	OpShlI:      {name: "shli", hasDst: true, nSrc: 2},
	OpShrI:      {name: "shri", hasDst: true, nSrc: 2},
	OpNegI:      {name: "negi", hasDst: true, nSrc: 1},
	OpNotI:      {name: "noti", hasDst: true, nSrc: 1},
	OpAddF:      {name: "addf", hasDst: true, nSrc: 2, isFloat: true},
	OpSubF:      {name: "subf", hasDst: true, nSrc: 2, isFloat: true},
	OpMulF:      {name: "mulf", hasDst: true, nSrc: 2, isFloat: true},
	OpDivF:      {name: "divf", hasDst: true, nSrc: 2, isFloat: true},
	OpNegF:      {name: "negf", hasDst: true, nSrc: 1, isFloat: true},
	OpEqI:       {name: "eqi", hasDst: true, nSrc: 2},
	OpNeI:       {name: "nei", hasDst: true, nSrc: 2},
	OpLtI:       {name: "lti", hasDst: true, nSrc: 2},
	OpLeI:       {name: "lei", hasDst: true, nSrc: 2},
	OpGtI:       {name: "gti", hasDst: true, nSrc: 2},
	OpGeI:       {name: "gei", hasDst: true, nSrc: 2},
	OpEqF:       {name: "eqf", hasDst: true, nSrc: 2, isFloat: true},
	OpNeF:       {name: "nef", hasDst: true, nSrc: 2, isFloat: true},
	OpLtF:       {name: "ltf", hasDst: true, nSrc: 2, isFloat: true},
	OpLeF:       {name: "lef", hasDst: true, nSrc: 2, isFloat: true},
	OpGtF:       {name: "gtf", hasDst: true, nSrc: 2, isFloat: true},
	OpGeF:       {name: "gef", hasDst: true, nSrc: 2, isFloat: true},
	OpItoF:      {name: "itof", hasDst: true, nSrc: 1},
	OpFtoI:      {name: "ftoi", hasDst: true, nSrc: 1},
	OpSqrtF:     {name: "sqrtf", hasDst: true, nSrc: 1, isFloat: true},
	OpAbsI:      {name: "absi", hasDst: true, nSrc: 1},
	OpAbsF:      {name: "absf", hasDst: true, nSrc: 1, isFloat: true},
	OpMinI:      {name: "mini", hasDst: true, nSrc: 2},
	OpMaxI:      {name: "maxi", hasDst: true, nSrc: 2},
	OpMinF:      {name: "minf", hasDst: true, nSrc: 2, isFloat: true},
	OpMaxF:      {name: "maxf", hasDst: true, nSrc: 2, isFloat: true},
	OpLoadG:     {name: "loadg", hasDst: true, hasImm: true},
	OpStoreG:    {name: "storeg", nSrc: 1, hasImm: true},
	OpLoadElem:  {name: "loadelem", hasDst: true, nSrc: 1, hasImm: true},
	OpStoreElem: {name: "storeelem", nSrc: 2, hasImm: true},
	OpCall:      {name: "call", hasDst: true, hasImm: true},
	OpPrint:     {name: "print", nSrc: 1},
}

// String returns the assembler mnemonic of the opcode.
func (op Op) String() string {
	if op < opMax && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint16(op))
}

// Valid reports whether the opcode is a defined instruction opcode.
func (op Op) Valid() bool { return op > OpInvalid && op < opMax }

// HasDst reports whether the opcode writes a destination register.
func (op Op) HasDst() bool { return op.Valid() && opTable[op].hasDst }

// NumSrc reports how many register sources (A, then B) the opcode reads.
func (op Op) NumSrc() int {
	if !op.Valid() {
		return 0
	}
	return opTable[op].nSrc
}

// HasImm reports whether the Imm field is meaningful for the opcode.
func (op Op) HasImm() bool { return op.Valid() && opTable[op].hasImm }

// IsFloat reports whether the opcode interprets its operands as float bit
// patterns.
func (op Op) IsFloat() bool { return op.Valid() && opTable[op].isFloat }

// IsCompare reports whether the opcode is a comparison producing 0/1.
func (op Op) IsCompare() bool {
	switch op {
	case OpEqI, OpNeI, OpLtI, OpLeI, OpGtI, OpGeI,
		OpEqF, OpNeF, OpLtF, OpLeF, OpGtF, OpGeF:
		return true
	}
	return false
}
