package ir

import (
	"errors"
	"fmt"
)

// Validate checks structural invariants of the program and returns an error
// describing the first violation found. Transforms call it after rewriting;
// the interpreter assumes a validated program.
//
// Checked invariants:
//   - every function has an entry block that is a member of its block list;
//   - block IDs are dense and match slice positions;
//   - every block has a terminator whose targets belong to the same function;
//   - every register operand is within the function frame;
//   - global and function indices in instructions are in range, and call
//     argument counts match the callee's parameter count;
//   - array accesses name array globals, scalar accesses name scalars;
//   - every block is reachable from the entry or explicitly marked Dead;
//   - Prediction annotations appear only on conditional-branch and switch
//     terminators;
//   - conditional branches have distinct successors (a degenerate cond-br
//     whose arms coincide is an unconditional jump in disguise: it wastes a
//     prediction site and trips the static analyses);
//   - switches have at least one case target, every target in-function, and
//     a prediction (when present) that is PredTaken with an in-range
//     outcome index;
//   - clustering test branches (SwTest) appear only on conditional branches
//     and name a non-negative switch outcome.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		if err := p.validateFunc(f); err != nil {
			return fmt.Errorf("ir: func %s: %w", f.Name, err)
		}
	}
	return nil
}

func (p *Program) validateFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return errors.New("no blocks")
	}
	if f.Entry == nil {
		return errors.New("nil entry block")
	}
	if f.NParams > f.NRegs {
		return fmt.Errorf("NParams %d exceeds NRegs %d", f.NParams, f.NRegs)
	}
	member := make(map[*Block]bool, len(f.Blocks))
	for i, b := range f.Blocks {
		if b == nil {
			return fmt.Errorf("nil block at index %d", i)
		}
		if b.ID != i {
			return fmt.Errorf("block %s has ID %d at index %d", b.Name, b.ID, i)
		}
		if member[b] {
			return fmt.Errorf("block %s appears twice", b)
		}
		member[b] = true
	}
	if !member[f.Entry] {
		return errors.New("entry block not in block list")
	}
	checkReg := func(b *Block, i int, r Reg, what string) error {
		if r < 0 || int(r) >= f.NRegs {
			return fmt.Errorf("%s[%d]: %s register r%d out of frame (NRegs=%d)", b, i, what, r, f.NRegs)
		}
		return nil
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if !in.Op.Valid() {
				return fmt.Errorf("%s[%d]: invalid opcode", b, i)
			}
			if in.Op == OpNop {
				continue
			}
			if in.Op.HasDst() {
				if err := checkReg(b, i, in.Dst, "dst"); err != nil {
					return err
				}
			}
			if n := in.Op.NumSrc(); n >= 1 {
				if err := checkReg(b, i, in.A, "src A"); err != nil {
					return err
				}
				if n >= 2 {
					if err := checkReg(b, i, in.B, "src B"); err != nil {
						return err
					}
				}
			}
			switch in.Op {
			case OpLoadG, OpStoreG, OpLoadElem, OpStoreElem:
				if in.Imm < 0 || int(in.Imm) >= len(p.Globals) {
					return fmt.Errorf("%s[%d]: global g%d out of range", b, i, in.Imm)
				}
				g := p.Globals[in.Imm]
				isElem := in.Op == OpLoadElem || in.Op == OpStoreElem
				if isElem && !g.Array {
					return fmt.Errorf("%s[%d]: element access to scalar global %s", b, i, g.Name)
				}
				if !isElem && g.Array {
					return fmt.Errorf("%s[%d]: scalar access to array global %s", b, i, g.Name)
				}
			case OpCall:
				if in.Imm < 0 || int(in.Imm) >= len(p.Funcs) {
					return fmt.Errorf("%s[%d]: callee f%d out of range", b, i, in.Imm)
				}
				callee := p.Funcs[in.Imm]
				if len(in.Args) != callee.NParams {
					return fmt.Errorf("%s[%d]: call to %s with %d args, want %d",
						b, i, callee.Name, len(in.Args), callee.NParams)
				}
				for _, a := range in.Args {
					if err := checkReg(b, i, a, "arg"); err != nil {
						return err
					}
				}
			}
		}
		switch b.Term.Op {
		case TermJmp:
			if b.Term.Then == nil || !member[b.Term.Then] {
				return fmt.Errorf("%s: jmp target not in function", b)
			}
			if b.Term.Pred != PredNone {
				return fmt.Errorf("%s: prediction %s on unconditional jump", b, b.Term.Pred)
			}
		case TermBr:
			if err := checkReg(b, -1, b.Term.Cond, "branch cond"); err != nil {
				return err
			}
			if b.Term.Then == nil || !member[b.Term.Then] {
				return fmt.Errorf("%s: br taken target not in function", b)
			}
			if b.Term.Else == nil || !member[b.Term.Else] {
				return fmt.Errorf("%s: br fall-through target not in function", b)
			}
			if b.Term.Then == b.Term.Else {
				return fmt.Errorf("%s: degenerate br with identical arms %s", b, b.Term.Then)
			}
			if b.Term.SwTest && b.Term.SwOutcome < 0 {
				return fmt.Errorf("%s: clustering test with negative outcome %d", b, b.Term.SwOutcome)
			}
		case TermSwitch:
			if err := checkReg(b, -1, b.Term.Cond, "switch cond"); err != nil {
				return err
			}
			if len(b.Term.Targets) == 0 {
				return fmt.Errorf("%s: switch with no case targets", b)
			}
			for i, tgt := range b.Term.Targets {
				if tgt == nil || !member[tgt] {
					return fmt.Errorf("%s: switch case %d target not in function", b, i)
				}
			}
			if b.Term.Else == nil || !member[b.Term.Else] {
				return fmt.Errorf("%s: switch default target not in function", b)
			}
			switch b.Term.Pred {
			case PredNone:
			case PredTaken:
				if b.Term.PredIdx < 0 || int(b.Term.PredIdx) > len(b.Term.Targets) {
					return fmt.Errorf("%s: switch prediction index %d out of range [0,%d]",
						b, b.Term.PredIdx, len(b.Term.Targets))
				}
			default:
				return fmt.Errorf("%s: prediction %s on switch (want none or taken+index)", b, b.Term.Pred)
			}
			if b.Term.SwTest {
				return fmt.Errorf("%s: SwTest on switch terminator", b)
			}
		case TermRet:
			if b.Term.HasVal {
				if err := checkReg(b, -1, b.Term.A, "return value"); err != nil {
					return err
				}
			}
			if b.Term.Pred != PredNone {
				return fmt.Errorf("%s: prediction %s on return", b, b.Term.Pred)
			}
		default:
			return fmt.Errorf("%s: missing terminator", b)
		}
	}
	reach := reachableBlocks(f)
	for _, b := range f.Blocks {
		if !reach[b] && !b.Dead {
			return fmt.Errorf("%s: unreachable from entry and not marked dead", b)
		}
	}
	return nil
}
