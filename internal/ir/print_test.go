package ir

import (
	"strings"
	"testing"
)

func TestInstrStringShapes(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConstI, Dst: 1, Imm: -7}, "r1 = consti -7"},
		{Instr{Op: OpMov, Dst: 2, A: 1}, "r2 = mov r1"},
		{Instr{Op: OpAddI, Dst: 3, A: 1, B: 2}, "r3 = addi r1 r2"},
		{Instr{Op: OpLoadG, Dst: 0, Imm: 4}, "r0 = loadg g4"},
		{Instr{Op: OpStoreG, A: 0, Imm: 4}, "storeg g4 r0"},
		{Instr{Op: OpLoadElem, Dst: 1, A: 0, Imm: 2}, "r1 = loadelem g2 r0"},
		{Instr{Op: OpStoreElem, A: 0, B: 1, Imm: 2}, "storeelem g2 r0 r1"},
		{Instr{Op: OpPrint, A: 5}, "print r5"},
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpCall, Dst: 1, Imm: 0, Args: []Reg{2, 3}}, "r1 = call f0 (r2, r3)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	var cf Instr
	cf.Op = OpConstF
	cf.Dst = 2
	cf.SetFloatImm(1.5)
	if got := cf.String(); got != "r2 = constf 1.5" {
		t.Errorf("constf string: %q", got)
	}
}

func TestTermStringShapes(t *testing.T) {
	b1 := &Block{ID: 1, Name: "x"}
	b2 := &Block{ID: 2}
	cases := []struct {
		tm   Term
		want string
	}{
		{Term{Op: TermJmp, Then: b1}, "jmp b1.x"},
		{Term{Op: TermRet}, "ret"},
		{Term{Op: TermRet, HasVal: true, A: 3}, "ret r3"},
		{Term{}, "<no terminator>"},
	}
	for _, c := range cases {
		if got := c.tm.String(); got != c.want {
			t.Errorf("Term.String() = %q, want %q", got, c.want)
		}
	}
	br := Term{Op: TermBr, Cond: 4, Then: b1, Else: b2, Site: 9, Orig: 3, Pred: PredTaken}
	s := br.String()
	for _, want := range []string{"br r4", "b1.x", "b2", "site=9", "orig=3", "pred=taken"} {
		if !strings.Contains(s, want) {
			t.Errorf("br string %q missing %q", s, want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if TVoid.String() != "void" || TInt.String() != "int" ||
		TFloat.String() != "float" || TBool.String() != "bool" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type must still render")
	}
	if PredNone.String() != "none" || PredTaken.String() != "taken" || PredNotTaken.String() != "not-taken" {
		t.Fatal("prediction names wrong")
	}
	if Prediction(9).String() == "" {
		t.Fatal("unknown prediction must render")
	}
	if TermJmp.String() != "jmp" || TermBr.String() != "br" || TermRet.String() != "ret" || TermInvalid.String() != "invalid" {
		t.Fatal("term op names wrong")
	}
	if TermOp(9).String() == "" || Op(9999).String() == "" {
		t.Fatal("unknown enums must render")
	}
}

func TestBlockHelpers(t *testing.T) {
	b := &Block{ID: 7}
	if b.String() != "b7" {
		t.Fatalf("unnamed block: %s", b)
	}
	b.Name = "loop"
	if b.String() != "b7.loop" {
		t.Fatalf("named block: %s", b)
	}
	b.Term = Term{Op: TermRet}
	if b.NumSuccs() != 0 || len(b.Succs(nil)) != 0 {
		t.Fatal("ret block has successors")
	}
	o := &Block{ID: 8}
	b.Term = Term{Op: TermJmp, Then: o}
	if b.NumSuccs() != 1 {
		t.Fatal("jmp succ count")
	}
	b.Term = Term{Op: TermBr, Then: o, Else: b}
	if b.NumSuccs() != 2 || len(b.Succs(nil)) != 2 {
		t.Fatal("br succ count")
	}
}

func TestFuncString(t *testing.T) {
	p := NewProgram()
	f := buildCountdown(p)
	s := f.String()
	if !strings.Contains(s, "func countdown") || !strings.Contains(s, "; entry") {
		t.Fatalf("func dump: %s", s)
	}
}
