package ir

import "testing"

func TestBuilderFullSurface(t *testing.T) {
	p := NewProgram()
	if err := p.AddGlobal(&Global{Name: "s", Type: TInt, Len: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGlobal(&Global{Name: "arr", Type: TFloat, Len: 8, Array: true}); err != nil {
		t.Fatal(err)
	}
	callee := &Func{Name: "id", NParams: 1, NRegs: 1, RetType: TInt}
	if err := p.AddFunc(callee); err != nil {
		t.Fatal(err)
	}
	cb := NewBuilder(callee)
	cb.RetVal(0)

	f := &Func{Name: "main", RetType: TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f)
	fl := b.ConstF(2.5)
	neg := b.Unary(OpNegF, fl)
	g := p.Global("s")
	arr := p.Global("arr")
	iv := b.ConstI(3)
	b.StoreG(g, iv)
	ld := b.LoadG(g)
	b.StoreElem(arr, ld, neg)
	el := b.LoadElem(arr, ld)
	b.Print(el)
	r := b.Call(callee, iv)
	b.RetVal(r)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Global("arr") != arr || p.Global("nope") != nil {
		t.Fatal("global lookup wrong")
	}
	if p.Func("nope") != nil {
		t.Fatal("func lookup wrong")
	}
}

func TestBuilderPanicsOnWrongShape(t *testing.T) {
	p := NewProgram()
	f := &Func{Name: "f", RetType: TVoid}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f)
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("want panic")
			}
		}()
		fn()
	}
	mustPanic(func() { b.Unary(OpAddI, 0) })     // binary op via Unary
	mustPanic(func() { b.Binary(OpNegI, 0, 0) }) // unary op via Binary
}

func TestNewBuilderReusesEntry(t *testing.T) {
	p := NewProgram()
	f := &Func{Name: "f", RetType: TVoid}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b1 := NewBuilder(f)
	b1.Ret()
	// Second builder over a function that has blocks but no Entry pointer.
	f2 := &Func{Name: "g", RetType: TVoid}
	f2.NewBlock("first")
	b2 := NewBuilder(f2)
	if f2.Entry != f2.Blocks[0] || b2.Cur != f2.Entry {
		t.Fatal("builder did not adopt existing first block")
	}
}
