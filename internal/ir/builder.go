package ir

import "fmt"

// Builder is a convenience layer for constructing IR by appending
// instructions to a current block. The lowering pass (internal/lang) and
// many tests use it; it keeps the raw IR structs free of construction
// helpers.
type Builder struct {
	Func *Func
	Cur  *Block
}

// NewBuilder returns a builder positioned at the function's entry block,
// creating one when the function has no blocks yet.
func NewBuilder(f *Func) *Builder {
	b := &Builder{Func: f}
	if len(f.Blocks) == 0 {
		f.Entry = f.NewBlock("entry")
	}
	if f.Entry == nil {
		f.Entry = f.Blocks[0]
	}
	b.Cur = f.Entry
	return b
}

// Block creates a new detached block (not yet a jump target).
func (b *Builder) Block(name string) *Block { return b.Func.NewBlock(name) }

// SetBlock repositions the builder.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

// sealed reports whether the current block already has a terminator, in
// which case further appends would be dead; the builder drops them, matching
// the usual "unreachable code after return" lowering behaviour.
func (b *Builder) sealed() bool { return b.Cur == nil || b.Cur.Term.Op != TermInvalid }

// emit appends an instruction to the current block unless it is sealed.
func (b *Builder) emit(in Instr) {
	if b.sealed() {
		return
	}
	b.Cur.Instrs = append(b.Cur.Instrs, in)
}

// ConstI materialises an integer constant into a fresh register.
func (b *Builder) ConstI(v int64) Reg {
	d := b.Func.NewReg()
	b.emit(Instr{Op: OpConstI, Dst: d, Imm: v})
	return d
}

// ConstF materialises a float constant into a fresh register.
func (b *Builder) ConstF(v float64) Reg {
	d := b.Func.NewReg()
	in := Instr{Op: OpConstF, Dst: d}
	in.SetFloatImm(v)
	b.emit(in)
	return d
}

// Mov copies src into dst.
func (b *Builder) Mov(dst, src Reg) {
	b.emit(Instr{Op: OpMov, Dst: dst, A: src})
}

// Unary emits a one-source instruction into a fresh register.
func (b *Builder) Unary(op Op, a Reg) Reg {
	if op.NumSrc() != 1 || !op.HasDst() {
		panic(fmt.Sprintf("ir: Unary called with %v", op))
	}
	d := b.Func.NewReg()
	b.emit(Instr{Op: op, Dst: d, A: a})
	return d
}

// Binary emits a two-source instruction into a fresh register.
func (b *Builder) Binary(op Op, a, c Reg) Reg {
	if op.NumSrc() != 2 || !op.HasDst() {
		panic(fmt.Sprintf("ir: Binary called with %v", op))
	}
	d := b.Func.NewReg()
	b.emit(Instr{Op: op, Dst: d, A: a, B: c})
	return d
}

// LoadG loads a scalar global.
func (b *Builder) LoadG(g *Global) Reg {
	d := b.Func.NewReg()
	b.emit(Instr{Op: OpLoadG, Dst: d, Imm: int64(g.ID)})
	return d
}

// StoreG stores into a scalar global.
func (b *Builder) StoreG(g *Global, src Reg) {
	b.emit(Instr{Op: OpStoreG, A: src, Imm: int64(g.ID)})
}

// LoadElem loads an array element.
func (b *Builder) LoadElem(g *Global, idx Reg) Reg {
	d := b.Func.NewReg()
	b.emit(Instr{Op: OpLoadElem, Dst: d, A: idx, Imm: int64(g.ID)})
	return d
}

// StoreElem stores an array element.
func (b *Builder) StoreElem(g *Global, idx, src Reg) {
	b.emit(Instr{Op: OpStoreElem, A: idx, B: src, Imm: int64(g.ID)})
}

// Call emits a call; dst may be NoReg for value-discarding calls, in which
// case a scratch register is still allocated so the interpreter has a place
// to write.
func (b *Builder) Call(callee *Func, args ...Reg) Reg {
	d := b.Func.NewReg()
	as := make([]Reg, len(args))
	copy(as, args)
	b.emit(Instr{Op: OpCall, Dst: d, Imm: int64(callee.ID), Args: as})
	return d
}

// Print emits the checksum sink.
func (b *Builder) Print(a Reg) { b.emit(Instr{Op: OpPrint, A: a}) }

// Jmp terminates the current block with an unconditional jump.
func (b *Builder) Jmp(to *Block) {
	if b.sealed() {
		return
	}
	b.Cur.Term = Term{Op: TermJmp, Then: to}
}

// Br terminates the current block with a conditional branch: cond != 0
// transfers to then (taken), otherwise to els.
func (b *Builder) Br(cond Reg, then, els *Block) {
	if b.sealed() {
		return
	}
	b.Cur.Term = Term{Op: TermBr, Cond: cond, Then: then, Else: els, Site: -1, Orig: -1}
}

// Switch terminates the current block with an N-way dispatch: cond values
// 0..len(targets)-1 select the matching case target, everything else falls
// through to def. The targets slice is copied.
func (b *Builder) Switch(cond Reg, targets []*Block, def *Block) {
	if b.sealed() {
		return
	}
	ts := make([]*Block, len(targets))
	copy(ts, targets)
	b.Cur.Term = Term{Op: TermSwitch, Cond: cond, Targets: ts, Else: def, Site: -1, Orig: -1}
}

// Ret terminates the current block with a void return.
func (b *Builder) Ret() {
	if b.sealed() {
		return
	}
	b.Cur.Term = Term{Op: TermRet}
}

// RetVal terminates the current block returning register a.
func (b *Builder) RetVal(a Reg) {
	if b.sealed() {
		return
	}
	b.Cur.Term = Term{Op: TermRet, A: a, HasVal: true}
}
