package ir

// CloneFunc returns a deep copy of f. Blocks, instruction slices, and call
// argument slices are fresh; branch Site/Orig/Pred annotations are preserved
// (callers renumber sites afterwards when needed). The block map from
// original to copy is returned so transforms can follow references.
func CloneFunc(f *Func) (*Func, map[*Block]*Block) {
	nf := &Func{
		Name:    f.Name,
		ID:      f.ID,
		NParams: f.NParams,
		NRegs:   f.NRegs,
		RetType: f.RetType,
	}
	m := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Name: b.Name, Dead: b.Dead}
		nb.Instrs = cloneInstrs(b.Instrs)
		nb.Term = b.Term // targets fixed below
		m[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	for _, b := range f.Blocks {
		nb := m[b]
		if nb.Term.Then != nil {
			nb.Term.Then = m[nb.Term.Then]
		}
		if nb.Term.Else != nil {
			nb.Term.Else = m[nb.Term.Else]
		}
		if nb.Term.Targets != nil {
			tgts := make([]*Block, len(nb.Term.Targets))
			for i, t := range nb.Term.Targets {
				tgts[i] = m[t]
			}
			nb.Term.Targets = tgts
		}
	}
	nf.Entry = m[f.Entry]
	return nf, m
}

// CloneBlocks deep-copies a set of blocks inside f, appending the copies to
// f.Blocks with the given name suffix. Terminator targets that point inside
// the set are redirected to the corresponding copies; targets outside the
// set are left pointing at the originals. The original→copy map is returned.
//
// This is the primitive the replicator uses to materialise one state copy of
// a loop.
func CloneBlocks(f *Func, set []*Block, suffix string) map[*Block]*Block {
	m := make(map[*Block]*Block, len(set))
	for _, b := range set {
		nb := &Block{ID: len(f.Blocks), Name: b.Name + suffix, Dead: b.Dead}
		nb.Instrs = cloneInstrs(b.Instrs)
		nb.Term = b.Term
		f.Blocks = append(f.Blocks, nb)
		m[b] = nb
	}
	for _, b := range set {
		nb := m[b]
		if t, ok := m[nb.Term.Then]; ok {
			nb.Term.Then = t
		}
		if t, ok := m[nb.Term.Else]; ok {
			nb.Term.Else = t
		}
		if nb.Term.Targets != nil {
			// Always fresh: a shared slice would alias the original's
			// targets even when no element needs redirecting.
			tgts := make([]*Block, len(nb.Term.Targets))
			for i, t := range nb.Term.Targets {
				if c, ok := m[t]; ok {
					tgts[i] = c
				} else {
					tgts[i] = t
				}
			}
			nb.Term.Targets = tgts
		}
	}
	return m
}

func cloneInstrs(ins []Instr) []Instr {
	if len(ins) == 0 {
		return nil
	}
	out := make([]Instr, len(ins))
	copy(out, ins)
	for i := range out {
		if out[i].Args != nil {
			args := make([]Reg, len(out[i].Args))
			copy(args, out[i].Args)
			out[i].Args = args
		}
	}
	return out
}

// CloneProgram returns a deep copy of the program, including globals (their
// Init slices are copied so interpreter runs cannot alias).
func CloneProgram(p *Program) *Program {
	np := NewProgram()
	for _, g := range p.Globals {
		ng := &Global{Name: g.Name, Type: g.Type, Len: g.Len, Array: g.Array}
		if g.Init != nil {
			ng.Init = make([]int64, len(g.Init))
			copy(ng.Init, g.Init)
		}
		if err := np.AddGlobal(ng); err != nil {
			panic("ir: CloneProgram: " + err.Error()) // source was valid
		}
	}
	for _, f := range p.Funcs {
		nf, _ := CloneFunc(f)
		if err := np.AddFunc(nf); err != nil {
			panic("ir: CloneProgram: " + err.Error())
		}
	}
	return np
}

// reachableBlocks computes the set of blocks reachable from f's entry.
func reachableBlocks(f *Func) map[*Block]bool {
	reach := make(map[*Block]bool, len(f.Blocks))
	stack := []*Block{f.Entry}
	reach[f.Entry] = true
	var succs []*Block
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		succs = b.Succs(succs[:0])
		for _, s := range succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	return reach
}

// MarkUnreachableDead sets the Dead flag on every block not reachable from
// the entry and returns how many blocks it marked. Front ends call it after
// sealing dangling join points so the function satisfies Validate's
// reachable-or-dead invariant without disturbing the block list.
func MarkUnreachableDead(f *Func) int {
	reach := reachableBlocks(f)
	n := 0
	for _, b := range f.Blocks {
		if !reach[b] && !b.Dead {
			b.Dead = true
			n++
		}
	}
	return n
}

// RemoveUnreachable drops blocks not reachable from the entry, renumbers the
// survivors, and returns how many blocks were removed. The replicator calls
// it after rewiring state copies (the paper's discarded "2b"/"3a" blocks).
func RemoveUnreachable(f *Func) int {
	reach := reachableBlocks(f)
	if len(reach) == len(f.Blocks) {
		return 0
	}
	kept := f.Blocks[:0]
	removed := 0
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	f.Blocks = kept
	f.Renumber()
	return removed
}
