package ir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// buildCountdown constructs the canonical test function:
//
//	func countdown(n int) int {
//	    s := 0
//	    while n > 0 { s += n; n-- }
//	    return s
//	}
func buildCountdown(p *Program) *Func {
	f := &Func{Name: "countdown", NParams: 1, NRegs: 1, RetType: TInt}
	if err := p.AddFunc(f); err != nil {
		panic(err)
	}
	b := NewBuilder(f)
	n := Reg(0)
	s := f.NewReg()
	zero := b.ConstI(0)
	b.Mov(s, zero)
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")
	b.Jmp(head)
	b.SetBlock(head)
	cond := b.Binary(OpGtI, n, zero)
	b.Br(cond, body, exit)
	b.SetBlock(body)
	sum := b.Binary(OpAddI, s, n)
	b.Mov(s, sum)
	one := b.ConstI(1)
	dec := b.Binary(OpSubI, n, one)
	b.Mov(n, dec)
	b.Jmp(head)
	b.SetBlock(exit)
	b.RetVal(s)
	return f
}

func TestBuildAndValidate(t *testing.T) {
	p := NewProgram()
	f := buildCountdown(p)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(f.Blocks); got != 4 {
		t.Fatalf("blocks = %d, want 4", got)
	}
	if f.Entry != f.Blocks[0] {
		t.Fatalf("entry is not first block")
	}
	n := p.NumberBranches(true)
	if n != 1 {
		t.Fatalf("NumberBranches = %d, want 1", n)
	}
	sites := p.BranchSites()
	if len(sites) != 1 || sites[0].Site != 0 || sites[0].Orig != 0 {
		t.Fatalf("BranchSites = %+v", sites)
	}
	if sites[0].Func != f {
		t.Fatalf("site func mismatch")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mk := func() (*Program, *Func) {
		p := NewProgram()
		return p, buildCountdown(p)
	}

	t.Run("badRegister", func(t *testing.T) {
		p, f := mk()
		f.Blocks[1].Instrs = append(f.Blocks[1].Instrs, Instr{Op: OpMov, Dst: 999, A: 0})
		if err := p.Validate(); err == nil {
			t.Fatal("want error for out-of-frame register")
		}
	})
	t.Run("missingTerminator", func(t *testing.T) {
		p, f := mk()
		f.Blocks[2].Term = Term{}
		if err := p.Validate(); err == nil {
			t.Fatal("want error for missing terminator")
		}
	})
	t.Run("foreignTarget", func(t *testing.T) {
		p, f := mk()
		f.Blocks[1].Term.Then = &Block{ID: 77, Name: "alien"}
		if err := p.Validate(); err == nil {
			t.Fatal("want error for foreign branch target")
		}
	})
	t.Run("badGlobal", func(t *testing.T) {
		p, f := mk()
		f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, Instr{Op: OpLoadG, Dst: 0, Imm: 5})
		if err := p.Validate(); err == nil {
			t.Fatal("want error for out-of-range global")
		}
	})
	t.Run("badCallArity", func(t *testing.T) {
		p, f := mk()
		f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, Instr{Op: OpCall, Dst: 0, Imm: 0, Args: nil})
		if err := p.Validate(); err == nil {
			t.Fatal("want error for wrong call arity")
		}
	})
	t.Run("elementAccessToScalar", func(t *testing.T) {
		p, f := mk()
		if err := p.AddGlobal(&Global{Name: "x", Type: TInt, Len: 1}); err != nil {
			t.Fatal(err)
		}
		f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, Instr{Op: OpLoadElem, Dst: 0, A: 0, Imm: 0})
		if err := p.Validate(); err == nil {
			t.Fatal("want error for element access to scalar")
		}
	})
	t.Run("degenerateBranch", func(t *testing.T) {
		p, f := mk()
		// countdown's branch with both arms pointed at the body: an
		// unconditional jump wearing a prediction site.
		f.Blocks[1].Term.Else = f.Blocks[1].Term.Then
		MarkUnreachableDead(f)
		if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "identical arms") {
			t.Fatalf("want identical-arms error, got %v", err)
		}
	})
	t.Run("dupFunc", func(t *testing.T) {
		p, _ := mk()
		if err := p.AddFunc(&Func{Name: "countdown"}); err == nil {
			t.Fatal("want duplicate-function error")
		}
	})
	t.Run("dupGlobal", func(t *testing.T) {
		p, _ := mk()
		if err := p.AddGlobal(&Global{Name: "g", Type: TInt, Len: 1}); err != nil {
			t.Fatal(err)
		}
		if err := p.AddGlobal(&Global{Name: "g", Type: TInt, Len: 1}); err == nil {
			t.Fatal("want duplicate-global error")
		}
	})
}

func TestFloatImmRoundTrip(t *testing.T) {
	check := func(f float64) bool {
		var in Instr
		in.SetFloatImm(f)
		got := in.FloatImm()
		return got == f || (math.IsNaN(got) && math.IsNaN(f))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 3.5e-300} {
		if !check(f) {
			t.Fatalf("round trip failed for %v", f)
		}
	}
}

func TestOpMetadata(t *testing.T) {
	for op := OpNop; op < opMax; op++ {
		if !op.Valid() {
			t.Fatalf("op %d should be valid", op)
		}
		if strings.HasPrefix(op.String(), "op(") {
			t.Fatalf("op %d has no name", op)
		}
	}
	if OpInvalid.Valid() {
		t.Fatal("OpInvalid must not be valid")
	}
	if !OpLtF.IsCompare() || !OpLtF.IsFloat() {
		t.Fatal("OpLtF metadata wrong")
	}
	if OpAddI.IsCompare() || OpAddI.IsFloat() {
		t.Fatal("OpAddI metadata wrong")
	}
	if OpCall.NumSrc() != 0 || !OpCall.HasImm() || !OpCall.HasDst() {
		t.Fatal("OpCall metadata wrong")
	}
}

func TestCloneFuncIsDeep(t *testing.T) {
	p := NewProgram()
	f := buildCountdown(p)
	p.NumberBranches(true)
	nf, m := CloneFunc(f)
	if nf == f || nf.Entry == f.Entry {
		t.Fatal("clone aliases original")
	}
	if len(nf.Blocks) != len(f.Blocks) {
		t.Fatalf("clone has %d blocks, want %d", len(nf.Blocks), len(f.Blocks))
	}
	for _, b := range f.Blocks {
		nb := m[b]
		if nb == nil || nb == b {
			t.Fatalf("bad mapping for %s", b)
		}
		if nb.Term.Then != nil && nb.Term.Then == b.Term.Then {
			t.Fatalf("%s: clone terminator aliases original target", b)
		}
	}
	// Mutating the clone must not affect the original.
	nf.Blocks[1].Instrs = append(nf.Blocks[1].Instrs, Instr{Op: OpNop})
	origLen := len(f.Blocks[1].Instrs)
	if len(nf.Blocks[1].Instrs) != origLen+1 {
		t.Fatal("append to clone did not extend clone")
	}
	// Branch identity preserved.
	if nf.Blocks[1].Term.Site != 0 || nf.Blocks[1].Term.Orig != 0 {
		t.Fatalf("clone lost branch identity: %+v", nf.Blocks[1].Term)
	}
}

func TestCloneProgramIndependentGlobals(t *testing.T) {
	p := NewProgram()
	if err := p.AddGlobal(&Global{Name: "a", Type: TInt, Len: 3, Array: true, Init: []int64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	buildCountdown(p)
	np := CloneProgram(p)
	np.Globals[0].Init[0] = 99
	if p.Globals[0].Init[0] != 1 {
		t.Fatal("clone shares Init slice with original")
	}
	if np.Func("countdown") == nil {
		t.Fatal("clone lost function index")
	}
	if err := np.Validate(); err != nil {
		t.Fatalf("cloned program invalid: %v", err)
	}
}

func TestCloneBlocksRedirectsInsideSet(t *testing.T) {
	p := NewProgram()
	f := buildCountdown(p)
	head, body := f.Blocks[1], f.Blocks[2]
	m := CloneBlocks(f, []*Block{head, body}, ".s1")
	nh, nb := m[head], m[body]
	if nh.Term.Then != nb {
		t.Fatal("in-set target not redirected to copy")
	}
	if nh.Term.Else != f.Blocks[3] {
		t.Fatal("out-of-set target should stay original")
	}
	if nb.Term.Then != nh {
		t.Fatal("back edge not redirected")
	}
	f.Renumber()
	if err := p.Validate(); err == nil {
		t.Fatal("expected Validate to reject unwired copies as unreachable")
	}
	if n := MarkUnreachableDead(f); n != 2 {
		t.Fatalf("MarkUnreachableDead = %d, want 2", n)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("after CloneBlocks: %v", err)
	}
}

func TestRemoveUnreachable(t *testing.T) {
	p := NewProgram()
	f := buildCountdown(p)
	dead := f.NewBlock("dead")
	dead.Term = Term{Op: TermRet}
	dead2 := f.NewBlock("dead2")
	dead2.Term = Term{Op: TermJmp, Then: dead}
	f.Renumber()
	if n := MarkUnreachableDead(f); n != 2 {
		t.Fatalf("MarkUnreachableDead = %d, want 2", n)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	removed := RemoveUnreachable(f)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("after removal: %v", err)
	}
	if RemoveUnreachable(f) != 0 {
		t.Fatal("second pass should remove nothing")
	}
}

func TestNumInstrsCountsTerminators(t *testing.T) {
	p := NewProgram()
	f := buildCountdown(p)
	want := 0
	for _, b := range f.Blocks {
		want += len(b.Instrs) + 1
	}
	if got := f.NumInstrs(); got != want {
		t.Fatalf("NumInstrs = %d, want %d", got, want)
	}
	if got := p.NumInstrs(); got != want {
		t.Fatalf("Program.NumInstrs = %d, want %d", got, want)
	}
}

func TestPrintRendersEverything(t *testing.T) {
	p := NewProgram()
	if err := p.AddGlobal(&Global{Name: "tab", Type: TInt, Len: 8, Array: true}); err != nil {
		t.Fatal(err)
	}
	buildCountdown(p)
	p.NumberBranches(true)
	s := p.String()
	for _, want := range []string{"global tab [8]int", "func countdown", "br r", "site=0", "ret r"} {
		if !strings.Contains(s, want) {
			t.Fatalf("program dump missing %q:\n%s", want, s)
		}
	}
}

func TestBuilderSealedBlockDropsCode(t *testing.T) {
	p := NewProgram()
	f := &Func{Name: "f", RetType: TVoid}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f)
	b.Ret()
	before := len(b.Cur.Instrs)
	b.ConstI(5)  // dead: must be dropped
	b.Jmp(b.Cur) // dead: must not overwrite the ret
	if len(b.Cur.Instrs) != before {
		t.Fatal("builder appended to sealed block")
	}
	if b.Cur.Term.Op != TermRet {
		t.Fatal("builder overwrote terminator of sealed block")
	}
}

func TestNumberBranchesPreservesOrig(t *testing.T) {
	p := NewProgram()
	f := buildCountdown(p)
	p.NumberBranches(true)
	// Simulate replication: clone the branch block, keep Orig.
	m := CloneBlocks(f, []*Block{f.Blocks[1]}, ".copy")
	_ = m
	f.Renumber()
	n := p.NumberBranches(false)
	if n != 2 {
		t.Fatalf("NumberBranches = %d, want 2", n)
	}
	sites := p.BranchSites()
	if len(sites) != 2 {
		t.Fatalf("len(sites) = %d", len(sites))
	}
	for _, s := range sites {
		if s.Orig != 0 {
			t.Fatalf("site %d lost Orig: %d", s.Site, s.Orig)
		}
	}
}
