package ir

import (
	"fmt"
	"strings"
)

// String renders the whole program as readable pseudo-assembly. The format
// is for diagnostics and golden tests; it is not parsed back.
func (p *Program) String() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		if g.Array {
			fmt.Fprintf(&sb, "global %s [%d]%s\n", g.Name, g.Len, g.Type)
		} else {
			fmt.Fprintf(&sb, "global %s %s\n", g.Name, g.Type)
		}
	}
	for i, f := range p.Funcs {
		if i > 0 || len(p.Globals) > 0 {
			sb.WriteByte('\n')
		}
		f.write(&sb)
	}
	return sb.String()
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	f.write(&sb)
	return sb.String()
}

func (f *Func) write(sb *strings.Builder) {
	fmt.Fprintf(sb, "func %s(params=%d regs=%d) %s {\n", f.Name, f.NParams, f.NRegs, f.RetType)
	for _, b := range f.Blocks {
		fmt.Fprintf(sb, "%s:", b)
		if b == f.Entry {
			sb.WriteString(" ; entry")
		}
		sb.WriteByte('\n')
		for i := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(b.Instrs[i].String())
			sb.WriteByte('\n')
		}
		sb.WriteString("  ")
		sb.WriteString(b.Term.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("}\n")
}

// String renders one instruction.
func (in Instr) String() string {
	var sb strings.Builder
	if in.Op.HasDst() {
		fmt.Fprintf(&sb, "r%d = ", in.Dst)
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpConstI:
		fmt.Fprintf(&sb, " %d", in.Imm)
	case OpConstF:
		fmt.Fprintf(&sb, " %g", in.FloatImm())
	case OpLoadG, OpStoreG, OpLoadElem, OpStoreElem:
		fmt.Fprintf(&sb, " g%d", in.Imm)
	case OpCall:
		fmt.Fprintf(&sb, " f%d", in.Imm)
	}
	for i := 0; i < in.Op.NumSrc(); i++ {
		r := in.A
		if i == 1 {
			r = in.B
		}
		fmt.Fprintf(&sb, " r%d", r)
	}
	if in.Op == OpCall {
		sb.WriteString(" (")
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "r%d", a)
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// String renders one terminator.
func (t Term) String() string {
	switch t.Op {
	case TermJmp:
		return fmt.Sprintf("jmp %s", t.Then)
	case TermBr:
		s := fmt.Sprintf("br r%d %s %s ; site=%d orig=%d", t.Cond, t.Then, t.Else, t.Site, t.Orig)
		if t.Pred != PredNone {
			s += " pred=" + t.Pred.String()
		}
		if t.SwTest {
			s += fmt.Sprintf(" swtest=%d", t.SwOutcome)
		}
		return s
	case TermSwitch:
		var sb strings.Builder
		fmt.Fprintf(&sb, "switch r%d [", t.Cond)
		for i, tgt := range t.Targets {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(tgt.String())
		}
		fmt.Fprintf(&sb, "] default %s ; site=%d orig=%d", t.Else, t.Site, t.Orig)
		if t.Pred != PredNone {
			fmt.Fprintf(&sb, " pred=%d", t.PredIdx)
		}
		return sb.String()
	case TermRet:
		if t.HasVal {
			return fmt.Sprintf("ret r%d", t.A)
		}
		return "ret"
	}
	return "<no terminator>"
}
