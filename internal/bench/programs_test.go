package bench

import (
	"testing"

	"repro/internal/trace"
)

// TestWorkloadsCompile ensures every BL program in the suite parses,
// checks, and lowers.
func TestWorkloadsCompile(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c, err := Compile(w)
			if err != nil {
				t.Fatal(err)
			}
			if c.NSites < 10 {
				t.Fatalf("%s has only %d branch sites — too trivial", w.Name, c.NSites)
			}
			if err := c.Prog.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWorkloadsRunNaturally executes each program at a tiny scale to
// completion and checks it behaves: terminates, prints output, executes a
// healthy number of branches, and is deterministic.
func TestWorkloadsRunNaturally(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c, err := Compile(w)
			if err != nil {
				t.Fatal(err)
			}
			cfg := RunConfig{Scale: 2}
			m1, err := c.Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			c1 := m1.Counters()
			if c1.Branches < 1000 {
				t.Fatalf("only %d branches at scale 2", c1.Branches)
			}
			if c1.Prints == 0 {
				t.Fatal("no observable output")
			}
			m2, err := c.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c2 := m2.Counters()
			if c2.Checksum != c1.Checksum || c2.Branches != c1.Branches {
				t.Fatalf("nondeterministic: %d/%d vs %d/%d",
					c1.Checksum, c1.Branches, c2.Checksum, c2.Branches)
			}
		})
	}
}

// TestWorkloadSeedsChangeBehaviour checks the wseed global really changes
// the dataset (needed by the cross-dataset experiment).
func TestWorkloadSeedsChangeBehaviour(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c, err := Compile(w)
			if err != nil {
				t.Fatal(err)
			}
			m1, err := c.Run(RunConfig{Scale: 2, Seed: 1111})
			if err != nil {
				t.Fatal(err)
			}
			m2, err := c.Run(RunConfig{Scale: 2, Seed: 999983})
			if err != nil {
				t.Fatal(err)
			}
			if m1.Counters().Checksum == m2.Counters().Checksum {
				t.Fatal("different seeds produced identical checksums")
			}
		})
	}
}

// TestWorkloadBudgetStops checks the branch budget terminates long runs.
func TestWorkloadBudgetStops(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c, err := Compile(w)
			if err != nil {
				t.Fatal(err)
			}
			counts := trace.NewCounts(c.NSites)
			m, err := c.Run(RunConfig{Budget: 20000, Scale: 1000000}, counts)
			if err != nil {
				t.Fatal(err)
			}
			if mc := m.Counters(); mc.Branches != 20000 {
				t.Fatalf("branches = %d, want exactly 20000", mc.Branches)
			}
			if counts.TotalAll() != 20000 {
				t.Fatalf("collector saw %d", counts.TotalAll())
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("compress"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("want error for unknown workload")
	}
}
