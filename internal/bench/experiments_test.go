package bench

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// The suite is expensive to build; share one across experiment tests.
var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = NewSuite(QuickConfig())
	})
	if suiteErr != nil {
		t.Fatalf("suite: %v", suiteErr)
	}
	return suite
}

func rowByName(t *testing.T, tab *Table, name string) Row {
	t.Helper()
	for _, r := range tab.Rows {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("table %s has no row %q", tab.ID, name)
	return Row{}
}

func TestSuiteCollects(t *testing.T) {
	s := testSuite(t)
	if len(s.Data) != 8 {
		t.Fatalf("suite has %d workloads", len(s.Data))
	}
	for _, d := range s.Data {
		if d.Branches != s.Cfg.Budget {
			t.Fatalf("%s traced %d branches, want %d", d.C.Workload.Name, d.Branches, s.Cfg.Budget)
		}
		if d.Prof.Counts.Executed() < 5 {
			t.Fatalf("%s exercised too few branch sites", d.C.Workload.Name)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	s := testSuite(t)
	tab := s.Table1()
	if len(tab.Cols) != 8 || len(tab.Rows) != 14 {
		t.Fatalf("table1 is %dx%d", len(tab.Rows), len(tab.Cols))
	}
	prof := rowByName(t, tab, "profile")
	lc := rowByName(t, tab, "loop-correlation")
	l9 := rowByName(t, tab, "9 bit loop")
	l1 := rowByName(t, tab, "1 bit loop")
	for i := range tab.Cols {
		if !prof.Cells[i].Valid || !lc.Cells[i].Valid {
			t.Fatalf("col %s missing rates", tab.Cols[i])
		}
		// The paper's central ordering: history strategies beat plain
		// profile, and the combination beats (or matches) each component.
		if lc.Cells[i].Value > prof.Cells[i].Value+0.2 {
			t.Errorf("%s: loop-correlation %.2f worse than profile %.2f",
				tab.Cols[i], lc.Cells[i].Value, prof.Cells[i].Value)
		}
		if l9.Cells[i].Value > l1.Cells[i].Value+0.5 {
			t.Errorf("%s: 9-bit loop %.2f worse than 1-bit loop %.2f",
				tab.Cols[i], l9.Cells[i].Value, l1.Cells[i].Value)
		}
	}
	// Branch-count rows must be integers > 0.
	for _, name := range []string{"static branches", "executed branches"} {
		r := rowByName(t, tab, name)
		for i := range tab.Cols {
			if !r.Cells[i].Count || r.Cells[i].Value <= 0 {
				t.Fatalf("%s/%s not a positive count", name, tab.Cols[i])
			}
		}
	}
}

func TestTable1AggregateHierarchy(t *testing.T) {
	// Across the whole suite the paper's hierarchy must hold:
	// loop-correlation < profile, two-level < 2-bit counter.
	s := testSuite(t)
	tab := s.Table1()
	avg := func(name string) float64 {
		r := rowByName(t, tab, name)
		sum, n := 0.0, 0
		for _, c := range r.Cells {
			if c.Valid {
				sum += c.Value
				n++
			}
		}
		return sum / float64(n)
	}
	profile := avg("profile")
	lc := avg("loop-correlation")
	if lc >= profile {
		t.Fatalf("loop-correlation %.2f >= profile %.2f on average", lc, profile)
	}
	// The paper reports roughly halving; allow a generous band but demand
	// a real improvement.
	if lc > 0.8*profile {
		t.Errorf("loop-correlation %.2f is less than a 20%% improvement over profile %.2f", lc, profile)
	}
	twoBit := avg("2 bit counter")
	twoLevel := avg("two level 1K/9bit")
	if twoLevel >= twoBit+0.5 {
		t.Errorf("two-level %.2f not better than 2-bit %.2f", twoLevel, twoBit)
	}
}

func TestTable2FillRatesDecrease(t *testing.T) {
	s := testSuite(t)
	tab := s.Table2()
	if len(tab.Rows) != 18 {
		t.Fatalf("table2 rows = %d", len(tab.Rows))
	}
	// Within the local block, fill rate must not increase with history
	// length (the tables get sparser — the paper's key observation).
	for col := range tab.Cols {
		for j := 1; j < 9; j++ {
			prev := tab.Rows[j-1].Cells[col].Value
			cur := tab.Rows[j].Cells[col].Value
			if cur > prev+1e-9 {
				t.Fatalf("%s: local fill rate grew from %d to %d bits (%.2f -> %.2f)",
					tab.Cols[col], j, j+1, prev, cur)
			}
		}
	}
	// 9-bit tables must be much sparser than 1-bit ones (the paper's
	// observation that motivates compacting them into state machines).
	// Synthetic inputs are noisier than the paper's real programs, so the
	// bound is loose.
	for col := range tab.Cols {
		if v := tab.Rows[8].Cells[col].Value; v > 80 {
			t.Errorf("%s: 9-bit fill rate %.2f%% not sparse", tab.Cols[col], v)
		}
	}
}

func TestTable3MachinesApproachTables(t *testing.T) {
	s := testSuite(t)
	tab := s.Table3()
	// For each swept n, the n-state machine cannot beat the full
	// (n-1)-bit history it compresses, but must stay close (the paper's
	// point: compaction loses almost nothing).
	for _, n := range s.Cfg.Table3States {
		bits := n - 1
		if bits > 9 {
			bits = 9
		}
		hist := rowByName(t, tab, sprintf("%d bit hist (loop)", bits))
		mach := rowByName(t, tab, sprintf("%d states (loop)", n))
		for i := range tab.Cols {
			if !hist.Cells[i].Valid || !mach.Cells[i].Valid {
				continue
			}
			if mach.Cells[i].Value+1e-6 < hist.Cells[i].Value-0.5 {
				t.Errorf("%s n=%d: machine %.2f%% beats full table %.2f%% by too much",
					tab.Cols[i], n, mach.Cells[i].Value, hist.Cells[i].Value)
			}
		}
	}
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

func TestTable4MoreStatesHelp(t *testing.T) {
	s := testSuite(t)
	tab := s.Table4()
	ns := s.Cfg.Table4States
	for i := range tab.Cols {
		prev := rowByName(t, tab, sprintf("%d states", ns[0])).Cells[i].Value
		for _, n := range ns[1:] {
			cur := rowByName(t, tab, sprintf("%d states", n)).Cells[i].Value
			if cur > prev+0.3 {
				t.Errorf("%s: %d-state path machine %.2f worse than smaller %.2f",
					tab.Cols[i], n, cur, prev)
			}
			prev = cur
		}
		// Path machines of any size must not lose to plain profile.
		prof := rowByName(t, tab, "profile").Cells[i].Value
		last := prev
		if last > prof+0.3 {
			t.Errorf("%s: path machines %.2f worse than profile %.2f", tab.Cols[i], last, prof)
		}
	}
}

func TestTable5Monotone(t *testing.T) {
	s := testSuite(t)
	tab := s.Table5()
	for i := range tab.Cols {
		prof := rowByName(t, tab, "profile").Cells[i].Value
		prev := prof + 1e-9
		for _, n := range s.Cfg.Table5States {
			cur := rowByName(t, tab, sprintf("%d states", n)).Cells[i].Value
			if cur > prof+1e-6 {
				t.Errorf("%s: best-achievable at %d states (%.2f) worse than profile (%.2f)",
					tab.Cols[i], n, cur, prof)
			}
			if cur > prev+0.3 {
				t.Errorf("%s: best-achievable grew from %.2f to %.2f at %d states",
					tab.Cols[i], prev, cur, n)
			}
			prev = cur
		}
	}
}

func TestFiguresShape(t *testing.T) {
	s := testSuite(t)
	figs := s.Figures()
	if len(figs) != 8 {
		t.Fatalf("figures = %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Points) == 0 {
			t.Fatalf("%s: empty curve", f.Workload)
		}
		if f.Points[0].SizeFactor != 1.0 {
			t.Fatalf("%s: curve starts at size %.3f", f.Workload, f.Points[0].SizeFactor)
		}
		for i := 1; i < len(f.Points); i++ {
			if f.Points[i].MissRate > f.Points[i-1].MissRate+1e-9 {
				t.Fatalf("%s: miss rate increased along the greedy curve", f.Workload)
			}
			// Size usually grows, but a step can switch a branch to a
			// cheaper machine family (a Pareto improvement), so size
			// monotonicity is not asserted.
		}
	}
	hs := Headlines(figs)
	if len(hs) != 8 {
		t.Fatalf("headlines = %d", len(hs))
	}
	for _, h := range hs {
		if h.At133Rate > h.ProfileRate+1e-9 {
			t.Fatalf("%s: 1.33x point worse than profile", h.Workload)
		}
		if h.BestRate > h.At133Rate+1e-9 {
			t.Fatalf("%s: best-anywhere worse than best-at-1.33x", h.Workload)
		}
	}
}

func TestRenderOutputs(t *testing.T) {
	s := testSuite(t)
	tab := s.Table1()
	out := tab.Render()
	for _, want := range []string{"abalone", "doduc", "profile", "loop-correlation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	figs := s.Figures()
	fo := RenderFigure(figs[0])
	if !strings.Contains(fo, "size") || !strings.Contains(fo, figs[0].Workload) {
		t.Fatalf("figure render: %s", fo)
	}
	ho := RenderHeadlines(Headlines(figs))
	if !strings.Contains(ho, "1.33x") {
		t.Fatalf("headline render: %s", ho)
	}
	ft := FigureTable(figs)
	if len(ft.Rows) == 0 || len(ft.Cols) != 8 {
		t.Fatal("figure table malformed")
	}
}

func TestMeasuredReplicationImproves(t *testing.T) {
	s := testSuite(t)
	tab, err := s.MeasuredReplication(4)
	if err != nil {
		t.Fatal(err)
	}
	base := rowByName(t, tab, "profile baseline (measured)")
	repl := rowByName(t, tab, "replicated (measured)")
	size := rowByName(t, tab, "size factor")
	var sumBase, sumRepl float64
	for i := range tab.Cols {
		sumBase += base.Cells[i].Value
		sumRepl += repl.Cells[i].Value
		if repl.Cells[i].Value > base.Cells[i].Value+1.5 {
			t.Errorf("%s: measured replication regressed %.2f -> %.2f",
				tab.Cols[i], base.Cells[i].Value, repl.Cells[i].Value)
		}
		if size.Cells[i].Value < 1.0 {
			t.Errorf("%s: size factor %.2f < 1", tab.Cols[i], size.Cells[i].Value)
		}
	}
	if sumRepl >= sumBase {
		t.Fatalf("measured replication did not improve on average: %.2f vs %.2f",
			sumRepl/8, sumBase/8)
	}
}

func TestLayoutTable(t *testing.T) {
	s := testSuite(t)
	tab, err := s.LayoutTable()
	if err != nil {
		t.Fatal(err)
	}
	on := rowByName(t, tab, "original, naive layout")
	op := rowByName(t, tab, "original, PH layout")
	rp := rowByName(t, tab, "replicated, PH layout")
	for i := range tab.Cols {
		if !on.Cells[i].Valid || !op.Cells[i].Valid || !rp.Cells[i].Valid {
			t.Fatalf("%s: missing layout cells", tab.Cols[i])
		}
		// Pettis-Hansen must beat the naive layout decisively.
		if op.Cells[i].Value >= on.Cells[i].Value {
			t.Errorf("%s: PH layout (%.2f) not better than naive (%.2f)",
				tab.Cols[i], op.Cells[i].Value, on.Cells[i].Value)
		}
	}
	// On average, replication should improve the laid-out taken rate (its
	// per-copy branches are more biased).
	var sumOrig, sumRepl float64
	for i := range tab.Cols {
		sumOrig += op.Cells[i].Value
		sumRepl += rp.Cells[i].Value
	}
	if sumRepl > sumOrig+2 {
		t.Errorf("replication hurt layout on average: %.2f vs %.2f", sumRepl/8, sumOrig/8)
	}
}

func TestScopeTable(t *testing.T) {
	s := testSuite(t)
	tab, err := s.ScopeTable()
	if err != nil {
		t.Fatal(err)
	}
	orig := rowByName(t, tab, "original")
	repl := rowByName(t, tab, "replicated")
	var sumOrig, sumRepl float64
	for i := range tab.Cols {
		if !orig.Cells[i].Valid || !repl.Cells[i].Valid {
			t.Fatalf("%s: missing scope cells", tab.Cols[i])
		}
		sumOrig += orig.Cells[i].Value
		sumRepl += repl.Cells[i].Value
	}
	// Replication must lengthen the average dynamic trace (that is the
	// point of feeding the scheduler better predictions).
	if sumRepl <= sumOrig {
		t.Fatalf("replication shortened traces: %.1f vs %.1f", sumRepl/8, sumOrig/8)
	}
}

func TestJointTable(t *testing.T) {
	s := testSuite(t)
	tab, err := s.JointTable()
	if err != nil {
		t.Fatal(err)
	}
	seqR := rowByName(t, tab, "sequential rate")
	jR := rowByName(t, tab, "joint rate")
	seqS := rowByName(t, tab, "sequential size factor")
	jS := rowByName(t, tab, "joint size factor")
	var sumSeqS, sumJS, sumSeqR, sumJR float64
	for i := range tab.Cols {
		sumSeqS += seqS.Cells[i].Value
		sumJS += jS.Cells[i].Value
		sumSeqR += seqR.Cells[i].Value
		sumJR += jR.Cells[i].Value
	}
	// Joint must be no larger on average and in the same accuracy band.
	if sumJS > sumSeqS+0.5 {
		t.Fatalf("joint larger on average: %.2f vs %.2f", sumJS/8, sumSeqS/8)
	}
	if sumJR > sumSeqR+8 {
		t.Fatalf("joint much worse on average: %.2f vs %.2f", sumJR/8, sumSeqR/8)
	}
}

func TestCrossDataset(t *testing.T) {
	s := testSuite(t)
	tab, err := s.CrossDataset()
	if err != nil {
		t.Fatal(err)
	}
	self := rowByName(t, tab, "profile self")
	cross := rowByName(t, tab, "profile cross")
	var sumSelf, sumCross float64
	for i := range tab.Cols {
		sumSelf += self.Cells[i].Value
		sumCross += cross.Cells[i].Value
	}
	// Training on the evaluation set cannot be worse than cross-dataset
	// prediction on average (FF92's observation).
	if sumCross < sumSelf-0.2 {
		t.Fatalf("cross-dataset average %.2f better than self %.2f — suspicious",
			sumCross/8, sumSelf/8)
	}
}
