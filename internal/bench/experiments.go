package bench

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/runner"
	"repro/internal/statemachine"
	"repro/internal/trace"
)

// ExpConfig parameterises the experiment suite.
type ExpConfig struct {
	// Budget is the branch-event budget per workload run (the paper traced
	// up to 100M branches; the default here is 2M, which is where the
	// rates stabilise on these workloads).
	Budget uint64
	// Seed/Scale override the workload inputs (0 = program defaults).
	Seed, Scale int64
	// CrossSeed is the alternate dataset for the cross-dataset experiment.
	CrossSeed int64
	// Table3States / Table4States / Table5States are the machine sizes
	// swept by the respective tables.
	Table3States []int
	Table4States []int
	Table5States []int
	// MaxPathLen caps correlated path lengths in Table 5 selection and in
	// the figures (1 keeps selections realizable by the replicator).
	MaxPathLen int
	// Parallel is the experiment engine's worker count: 0 uses
	// runtime.GOMAXPROCS(0), 1 runs every job inline (the sequential
	// path). Parallel runs produce byte-identical output — results merge
	// by job index, never by completion order.
	Parallel int
	// ForceLive disables the record-once/replay-many trace engine: every
	// experiment interprets the workload live, as the suite did before
	// traces existed. It exists for the replay-equivalence tests; results
	// are identical either way, only slower.
	ForceLive bool
	// Backend selects the execution plane for every live run (recording,
	// measured clones, layout/scope profiling): nil or exec.Interp is the
	// reference interpreter, exec.VM the compiled bytecode machine. The two
	// are observably identical (pinned by internal/vm's differential
	// harness), so results never depend on this choice — only wall time.
	Backend exec.Backend
}

// backend resolves the configured execution backend, defaulting to the
// interpreter.
func (cfg ExpConfig) backend() exec.Backend {
	if cfg.Backend == nil {
		return exec.Interp
	}
	return cfg.Backend
}

// DefaultConfig is the configuration used by cmd/krallbench.
func DefaultConfig() ExpConfig {
	return ExpConfig{
		Budget:       2_000_000,
		CrossSeed:    424243,
		Table3States: []int{3, 4, 5, 6, 7, 8, 9, 10},
		Table4States: []int{2, 3, 4, 5, 6, 7},
		Table5States: []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
		MaxPathLen:   3,
	}
}

// QuickConfig is a scaled-down configuration for tests and smoke runs.
func QuickConfig() ExpConfig {
	return ExpConfig{
		Budget:       60_000,
		CrossSeed:    424243,
		Table3States: []int{3, 5, 8},
		Table4States: []int{2, 4},
		Table5States: []int{2, 4, 8},
		MaxPathLen:   2,
	}
}

// Cell is one table entry.
type Cell struct {
	Value float64
	// Count marks integer cells (branch counts) as opposed to percentage
	// rates.
	Count bool
	Valid bool
}

// Rate makes a percentage cell.
func rateCell(misses, total uint64) Cell {
	if total == 0 {
		return Cell{}
	}
	return Cell{Value: 100 * float64(misses) / float64(total), Valid: true}
}

func countCell(n uint64) Cell { return Cell{Value: float64(n), Count: true, Valid: true} }

// Row is one table row.
type Row struct {
	Name  string
	Cells []Cell
}

// Table is one reproduced result table.
type Table struct {
	ID    string
	Title string
	Cols  []string
	Rows  []Row
}

// WorkloadData is everything collected from one profiled run of one
// workload. It is immutable once NewSuite returns; every experiment only
// reads it, which is what makes the parallel engine race-free.
type WorkloadData struct {
	C    *Compiled
	Prof *profile.Profile
	// Local1/Global1 are the 1-bit history tables for Table 1's 1-bit
	// rows.
	Local1  *profile.LocalHistory
	Global1 *profile.GlobalHistory
	// Dynamic predictor scores.
	Last, TwoBit, TwoLevel, GShare predict.Eval
	// Branches is the number of traced events; Steps the executed
	// instructions (for the [FF92] instructions-per-mispredict metric).
	Branches uint64
	Steps    uint64
	// Art is the recorded trace artifact of the profiling run (nil when
	// the suite runs with ForceLive). Experiments that only consume the
	// branch stream replay it instead of re-interpreting the workload.
	Art *RunArtifact
}

// Suite holds the profiled data of all workloads plus the experiment
// engine whose artifact cache shares per-size strategy selections between
// Table 5, the figures, and the measured experiments.
type Suite struct {
	Cfg  ExpConfig
	Data []*WorkloadData

	eng *runner.Engine
	// prefix namespaces this suite's cache keys, so suites with different
	// budgets or datasets can share one engine without collisions.
	prefix string
}

// NewSuite compiles and profiles every workload under the configuration,
// one parallel job per workload.
func NewSuite(cfg ExpConfig) (*Suite, error) {
	return NewSuiteEngine(cfg, runner.New(cfg.Parallel))
}

// NewSuiteEngine is NewSuite with a caller-provided engine, so several
// suites (or repeated sweeps) can share one artifact cache.
func NewSuiteEngine(cfg ExpConfig, eng *runner.Engine) (*Suite, error) {
	s := &Suite{
		Cfg:    cfg,
		eng:    eng,
		prefix: fmt.Sprintf("b%d/s%d/x%d/", cfg.Budget, cfg.Seed, scaleFor(cfg)),
	}
	if cfg.ForceLive {
		// Live-profiled data is identical to replayed data, but the
		// equivalence tests compare the two paths, so they must not share
		// cache entries.
		s.prefix += "live/"
	}
	data, err := runner.Map(eng, Workloads(), func(_ int, w Workload) (*WorkloadData, error) {
		return s.profileWorkload(w)
	})
	if err != nil {
		return nil, err
	}
	s.Data = data
	return s, nil
}

// Engine returns the suite's experiment engine (counters, cache).
func (s *Suite) Engine() *runner.Engine { return s.eng }

// profileWorkload compiles and profiles one workload through the artifact
// cache: repeated suites on one engine profile each workload once.
func (s *Suite) profileWorkload(w Workload) (*WorkloadData, error) {
	key := s.prefix + "profile/" + w.Name
	return runner.Cached(s.eng.Cache(), key, func() (*WorkloadData, error) {
		c, err := Compile(w)
		if err != nil {
			return nil, err
		}
		d := &WorkloadData{
			C:       c,
			Prof:    profile.New(c.NSites, profile.Options{LocalK: 9, GlobalK: 9, PathM: 3}),
			Local1:  profile.NewLocalHistory(c.NSites, 1),
			Global1: profile.NewGlobalHistory(c.NSites, 1),
			Last:    predict.Eval{P: predict.NewLastDirection(c.NSites)},
			TwoBit:  predict.Eval{P: predict.NewTwoBit(c.NSites)},
			TwoLevel: predict.Eval{
				P: predict.NewTwoLevel(predict.PaperTwoLevel()),
			},
			GShare: predict.Eval{P: predict.NewGShare(12)},
		}
		if s.Cfg.ForceLive {
			m, err := c.RunOn(s.Cfg.backend(), RunConfig{Budget: s.Cfg.Budget, Seed: s.Cfg.Seed, Scale: scaleFor(s.Cfg)},
				d.Prof, d.Local1, d.Global1, &d.Last, &d.TwoBit, &d.TwoLevel, &d.GShare)
			if err != nil {
				return nil, err
			}
			s.countLiveRun()
			mc := m.Counters()
			d.Branches = mc.Branches
			d.Steps = mc.Steps
			return d, nil
		}
		// Record once, replay into every collector: the profile bundle and
		// the dynamic predictors see the exact event stream of the run.
		art, err := s.artifactFor(c, s.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		d.Art = art
		s.replay(art, d.Prof, d.Local1, d.Global1, &d.Last, &d.TwoBit, &d.TwoLevel, &d.GShare)
		d.Branches = art.Branches
		d.Steps = art.Steps
		return d, nil
	})
}

// countsFor runs workload d under an alternate dataset seed and returns
// its branch counts, memoised per (workload, seed) so the cross-dataset
// and repeated sweeps decode each trace once.
func (s *Suite) countsFor(d *WorkloadData, seed int64) (*trace.Counts, error) {
	key := fmt.Sprintf("%scounts/%s/seed%d", s.prefix, d.C.Workload.Name, seed)
	return runner.Cached(s.eng.Cache(), key, func() (*trace.Counts, error) {
		counts := trace.NewCounts(d.C.NSites)
		if s.Cfg.ForceLive {
			if _, err := d.C.RunOn(s.Cfg.backend(), RunConfig{
				Budget: s.Cfg.Budget, Seed: seed, Scale: scaleFor(s.Cfg),
			}, counts); err != nil {
				return nil, err
			}
			s.countLiveRun()
			return counts, nil
		}
		art, err := s.artifactFor(d.C, seed)
		if err != nil {
			return nil, err
		}
		art.Trace.ReplayPartitioned(s.workers(), counts)
		s.countReplay(int64(art.Trace.Len()))
		return counts, nil
	})
}

// selectFor returns the per-branch strategy choices for one workload under
// opts, memoised in the artifact cache. The measured experiments
// (cross-dataset, measured replication, layout, scope) all request the
// same realizable sweep, so only the first computes it.
func (s *Suite) selectFor(d *WorkloadData, opts statemachine.Options) ([]statemachine.Choice, error) {
	key := fmt.Sprintf("%sselect/%s/n%d/len%d/paper%t/d%t%t%t", s.prefix, d.C.Workload.Name,
		opts.MaxStates, opts.MaxPathLen, opts.PaperCounting,
		opts.DisableLoop, opts.DisableExit, opts.DisablePath)
	return runner.Cached(s.eng.Cache(), key, func() ([]statemachine.Choice, error) {
		return statemachine.Select(d.Prof, d.C.Features, opts), nil
	})
}

// scaleFor makes budgeted runs never finish early: with a budget set, the
// workload scale is raised far beyond it.
func scaleFor(cfg ExpConfig) int64 {
	if cfg.Scale != 0 {
		return cfg.Scale
	}
	if cfg.Budget != 0 {
		return 1 << 30
	}
	return 0
}

// colNames returns the workload column headers.
func (s *Suite) colNames() []string {
	out := make([]string, len(s.Data))
	for i, d := range s.Data {
		out[i] = d.C.Workload.Name
	}
	return out
}

// buildColumns assembles a table from per-workload columns computed in
// parallel: col(i, d) returns workload i's cells, one per row name, and
// the transpose into rows happens after every job finished, in workload
// order — so the rendered bytes never depend on completion order.
func (s *Suite) buildColumns(t *Table, rowNames []string, col func(i int, d *WorkloadData) ([]Cell, error)) error {
	t.Cols = s.colNames()
	cols, err := runner.Map(s.eng, s.Data, col)
	if err != nil {
		return err
	}
	t.Rows = make([]Row, len(rowNames))
	for ri, name := range rowNames {
		cells := make([]Cell, len(cols))
		for ci, c := range cols {
			if ri < len(c) {
				cells[ci] = c[ri]
			}
		}
		t.Rows[ri] = Row{Name: name, Cells: cells}
	}
	return nil
}

// rowSpec is one table row: a name plus the per-workload cell function.
type rowSpec struct {
	name string
	cell func(i int, d *WorkloadData) Cell
}

// buildTable evaluates rowSpecs column-by-column in parallel.
func (s *Suite) buildTable(t *Table, specs []rowSpec) *Table {
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.name
	}
	// The specs are pure functions of immutable profile data; no error path.
	_ = s.buildColumns(t, names, func(i int, d *WorkloadData) ([]Cell, error) {
		cells := make([]Cell, len(specs))
		for ri, sp := range specs {
			cells[ri] = sp.cell(i, d)
		}
		return cells, nil
	})
	return t
}

// Table1 reproduces the paper's Table 1: misprediction rates of the
// dynamic and semi-static strategies plus the branch population counts.
func (s *Suite) Table1() *Table {
	t := &Table{ID: "table1", Title: "Misprediction rates of different branch prediction strategies (%)"}
	var specs []rowSpec
	add := func(name string, f func(d *WorkloadData) Cell) {
		specs = append(specs, rowSpec{name: name, cell: func(_ int, d *WorkloadData) Cell { return f(d) }})
	}
	add("last direction", func(d *WorkloadData) Cell { return rateCell(d.Last.Misses, d.Last.Total) })
	add("2 bit counter", func(d *WorkloadData) Cell { return rateCell(d.TwoBit.Misses, d.TwoBit.Total) })
	add("two level 1K/9bit", func(d *WorkloadData) Cell { return rateCell(d.TwoLevel.Misses, d.TwoLevel.Total) })
	add("profile", func(d *WorkloadData) Cell {
		r := predict.ProfileResult(d.Prof.Counts)
		return rateCell(r.Misses, r.Total)
	})
	add("1 bit correlation", func(d *WorkloadData) Cell {
		r := predict.CorrelationResult(d.Global1)
		return rateCell(r.Misses, r.Total)
	})
	add("9 bit correlation", func(d *WorkloadData) Cell {
		r := predict.CorrelationResult(d.Prof.Global)
		return rateCell(r.Misses, r.Total)
	})
	add("1 bit loop", func(d *WorkloadData) Cell {
		r := predict.LoopResult(d.Local1)
		return rateCell(r.Misses, r.Total)
	})
	add("9 bit loop", func(d *WorkloadData) Cell {
		r := predict.LoopResult(d.Prof.Local)
		return rateCell(r.Misses, r.Total)
	})
	add("loop-correlation", func(d *WorkloadData) Cell {
		r, _ := predict.LoopCorrelationResult(d.Prof.Local, d.Prof.Global, d.Prof.Counts)
		return rateCell(r.Misses, r.Total)
	})
	// Fisher–Freudenberger's alternative metric: executed instructions per
	// mispredicted branch (higher is better).
	add("instrs/mispredict (profile)", func(d *WorkloadData) Cell {
		r := predict.ProfileResult(d.Prof.Counts)
		if r.Misses == 0 {
			return Cell{}
		}
		return countCell(d.Steps / r.Misses)
	})
	add("instrs/mispredict (loop-corr)", func(d *WorkloadData) Cell {
		r, _ := predict.LoopCorrelationResult(d.Prof.Local, d.Prof.Global, d.Prof.Counts)
		if r.Misses == 0 {
			return Cell{}
		}
		return countCell(d.Steps / r.Misses)
	})
	add("static branches", func(d *WorkloadData) Cell { return countCell(uint64(d.C.NSites)) })
	add("executed branches", func(d *WorkloadData) Cell { return countCell(uint64(d.Prof.Counts.Executed())) })
	add("improved branches", func(d *WorkloadData) Cell {
		_, improved := predict.LoopCorrelationResult(d.Prof.Local, d.Prof.Global, d.Prof.Counts)
		n := uint64(0)
		for _, b := range improved {
			if b {
				n++
			}
		}
		return countCell(n)
	})
	return s.buildTable(t, specs)
}

// Table2 reproduces Table 2: fill rates of the pattern tables for history
// lengths 1..9, over local (loop) histories as in the paper, with the
// global tables as a companion block.
func (s *Suite) Table2() *Table {
	t := &Table{ID: "table2", Title: "Fill rate of the history tables (%)"}
	names := make([]string, 0, 18)
	for j := 0; j < 9; j++ {
		names = append(names, fmt.Sprintf("%d bit local history", j+1))
	}
	for j := 0; j < 9; j++ {
		names = append(names, fmt.Sprintf("%d bit global history", j+1))
	}
	_ = s.buildColumns(t, names, func(_ int, d *WorkloadData) ([]Cell, error) {
		local := d.Prof.Local.FillRates()
		global := d.Prof.Global.FillRates()
		cells := make([]Cell, 0, 18)
		for j := 0; j < 9; j++ {
			cells = append(cells, Cell{Value: local[j].Rate(), Valid: true})
		}
		for j := 0; j < 9; j++ {
			cells = append(cells, Cell{Value: global[j].Rate(), Valid: true})
		}
		return cells, nil
	})
	return t
}

// siteClass partitions a workload's branch sites the way section 4 does.
type siteClass struct {
	intra []int32 // inside a loop, neither edge leaves it
	exit  []int32 // inside a loop, an edge leaves it
	other []int32
}

func classify(d *WorkloadData) siteClass {
	var sc siteClass
	for i := 0; i < d.C.NSites; i++ {
		if d.Prof.Counts.Total(int32(i)) == 0 {
			continue
		}
		ft := d.C.Features[i]
		switch {
		case ft.InLoop && !ft.TakenExits && !ft.ElseExits:
			sc.intra = append(sc.intra, int32(i))
		case ft.InLoop:
			sc.exit = append(sc.exit, int32(i))
		default:
			sc.other = append(sc.other, int32(i))
		}
	}
	return sc
}

// Table3 reproduces Table 3: misprediction rates of intra-loop and
// loop-exit branches under full (n-1)-bit histories versus n-state
// machines, using the paper's pattern-table counting. Each workload's
// whole sweep is one job: the siteClass partition is computed once per
// column and every swept size reuses it.
func (s *Suite) Table3() *Table {
	t := &Table{ID: "table3", Title: "Misprediction rates of loop and loop exit branches (%)"}
	profMisses := func(d *WorkloadData, sites []int32) (uint64, uint64) {
		var m, tot uint64
		for _, site := range sites {
			p := profile.Pair{Taken: d.Prof.Counts.Taken[site], NotTaken: d.Prof.Counts.NotTaken[site]}
			m += p.Misses()
			tot += p.Total()
		}
		return m, tot
	}
	histMisses := func(d *WorkloadData, sites []int32, bits int) (uint64, uint64) {
		var m, tot uint64
		for _, site := range sites {
			if d.Prof.Local.Table(site) == nil {
				continue
			}
			for _, p := range d.Prof.Local.Project(site, bits) {
				m += p.Misses()
				tot += p.Total()
			}
		}
		return m, tot
	}
	names := []string{"profile (loop)", "profile (exit)"}
	for _, n := range s.Cfg.Table3States {
		bits := n - 1
		if bits > 9 {
			bits = 9
		}
		names = append(names,
			fmt.Sprintf("%d bit hist (loop)", bits),
			fmt.Sprintf("%d states (loop)", n),
			fmt.Sprintf("%d bit hist (exit)", bits),
			fmt.Sprintf("%d states (exit)", n))
	}
	_ = s.buildColumns(t, names, func(_ int, d *WorkloadData) ([]Cell, error) {
		sc := classify(d)
		cells := make([]Cell, 0, len(names))
		cells = append(cells, rateCell(profMisses(d, sc.intra)), rateCell(profMisses(d, sc.exit)))
		for _, n := range s.Cfg.Table3States {
			bits := n - 1
			if bits > 9 {
				bits = 9
			}
			cells = append(cells, rateCell(histMisses(d, sc.intra, bits)))
			var m, tot uint64
			for _, site := range sc.intra {
				lm := statemachine.BestLoopMachine(d.Prof.Local.Table(site), 9, n)
				m += lm.Misses()
				tot += lm.Total
			}
			cells = append(cells, rateCell(m, tot))
			cells = append(cells, rateCell(histMisses(d, sc.exit, bits)))
			m, tot = 0, 0
			for _, site := range sc.exit {
				ft := d.C.Features[site]
				em := statemachine.NewExitMachine(d.Prof.Local.Table(site), 9, n, ft.TakenExits)
				m += em.Misses()
				tot += em.Total
			}
			cells = append(cells, rateCell(m, tot))
		}
		return cells, nil
	})
	return t
}

// Table4 reproduces Table 4: misprediction rates of correlated branches —
// all executed branches predicted by path machines of increasing size,
// with path length capped at the state count as in the paper.
func (s *Suite) Table4() *Table {
	t := &Table{ID: "table4", Title: "Misprediction rates of correlated branches (%)"}
	names := []string{"profile", "full path table"}
	for _, n := range s.Cfg.Table4States {
		names = append(names, fmt.Sprintf("%d states", n))
	}
	_ = s.buildColumns(t, names, func(_ int, d *WorkloadData) ([]Cell, error) {
		cells := make([]Cell, 0, len(names))
		r := predict.ProfileResult(d.Prof.Counts)
		cells = append(cells, rateCell(r.Misses, r.Total))
		var m, tot uint64
		for i := 0; i < d.C.NSites; i++ {
			sm, st := d.Prof.Path.SiteMisses(int32(i))
			m += sm
			tot += st
		}
		cells = append(cells, rateCell(m, tot))
		for _, n := range s.Cfg.Table4States {
			m, tot = 0, 0
			for i := 0; i < d.C.NSites; i++ {
				if d.Prof.Counts.Total(int32(i)) == 0 {
					continue
				}
				pm := statemachine.BestPathMachine(d.Prof.Path, int32(i), n, n)
				m += pm.Misses()
				tot += pm.Total
			}
			cells = append(cells, rateCell(m, tot))
		}
		return cells, nil
	})
	return t
}

// Selections computes the per-branch best strategies at a given machine
// size for every workload, one parallel job per workload, memoised in the
// artifact cache (Table 5 and the figures sweep the same sizes, so the
// second requester reuses the first's sweep). With paperCounting, loop
// machines are scored with the paper's pattern counting (used by Table 5
// and the figures, like the paper's own numbers); otherwise exact stream
// replay is used (what the measured experiments need).
func (s *Suite) Selections(n int, paperCounting bool) [][]statemachine.Choice {
	key := fmt.Sprintf("%sselsweep/n%d/len%d/paper%t", s.prefix, n, s.Cfg.MaxPathLen, paperCounting)
	out, err := runner.Cached(s.eng.Cache(), key, func() ([][]statemachine.Choice, error) {
		return runner.Map(s.eng, s.Data, func(_ int, d *WorkloadData) ([]statemachine.Choice, error) {
			return s.selectFor(d, statemachine.Options{
				MaxStates:     n,
				MaxPathLen:    s.Cfg.MaxPathLen,
				PaperCounting: paperCounting,
			})
		})
	})
	if err != nil {
		// Selection is a pure function of immutable profiles; the only
		// conceivable failure is a job panic, which should crash loudly.
		panic(err)
	}
	return out
}

// prefetchSelections populates the selection cache for several sizes in
// parallel (sizes × workloads jobs), so the sequential assembly that
// follows only performs cache hits.
func (s *Suite) prefetchSelections(sizes []int, paperCounting bool) {
	_, _ = runner.Map(s.eng, sizes, func(_ int, n int) (struct{}, error) {
		s.Selections(n, paperCounting)
		return struct{}{}, nil
	})
}

// Table5 reproduces Table 5: best achievable misprediction rates when every
// branch uses its best strategy under a state budget.
func (s *Suite) Table5() *Table {
	t := &Table{ID: "table5", Title: "Best achievable misprediction rates (%)", Cols: s.colNames()}
	s.prefetchSelections(s.Cfg.Table5States, true)
	prow := Row{Name: "profile"}
	for _, d := range s.Data {
		r := predict.ProfileResult(d.Prof.Counts)
		prow.Cells = append(prow.Cells, rateCell(r.Misses, r.Total))
	}
	t.Rows = append(t.Rows, prow)
	for _, n := range s.Cfg.Table5States {
		sel := s.Selections(n, true)
		row := Row{Name: fmt.Sprintf("%d states", n)}
		for i := range s.Data {
			m, tot := statemachine.Aggregate(sel[i])
			row.Cells = append(row.Cells, rateCell(m, tot))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
