package bench

import (
	"fmt"

	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/statemachine"
)

// ExpConfig parameterises the experiment suite.
type ExpConfig struct {
	// Budget is the branch-event budget per workload run (the paper traced
	// up to 100M branches; the default here is 2M, which is where the
	// rates stabilise on these workloads).
	Budget uint64
	// Seed/Scale override the workload inputs (0 = program defaults).
	Seed, Scale int64
	// CrossSeed is the alternate dataset for the cross-dataset experiment.
	CrossSeed int64
	// Table3States / Table4States / Table5States are the machine sizes
	// swept by the respective tables.
	Table3States []int
	Table4States []int
	Table5States []int
	// MaxPathLen caps correlated path lengths in Table 5 selection and in
	// the figures (1 keeps selections realizable by the replicator).
	MaxPathLen int
}

// DefaultConfig is the configuration used by cmd/krallbench.
func DefaultConfig() ExpConfig {
	return ExpConfig{
		Budget:       2_000_000,
		CrossSeed:    424243,
		Table3States: []int{3, 4, 5, 6, 7, 8, 9, 10},
		Table4States: []int{2, 3, 4, 5, 6, 7},
		Table5States: []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
		MaxPathLen:   3,
	}
}

// QuickConfig is a scaled-down configuration for tests and smoke runs.
func QuickConfig() ExpConfig {
	return ExpConfig{
		Budget:       60_000,
		CrossSeed:    424243,
		Table3States: []int{3, 5, 8},
		Table4States: []int{2, 4},
		Table5States: []int{2, 4, 8},
		MaxPathLen:   2,
	}
}

// Cell is one table entry.
type Cell struct {
	Value float64
	// Count marks integer cells (branch counts) as opposed to percentage
	// rates.
	Count bool
	Valid bool
}

// Rate makes a percentage cell.
func rateCell(misses, total uint64) Cell {
	if total == 0 {
		return Cell{}
	}
	return Cell{Value: 100 * float64(misses) / float64(total), Valid: true}
}

func countCell(n uint64) Cell { return Cell{Value: float64(n), Count: true, Valid: true} }

// Row is one table row.
type Row struct {
	Name  string
	Cells []Cell
}

// Table is one reproduced result table.
type Table struct {
	ID    string
	Title string
	Cols  []string
	Rows  []Row
}

// WorkloadData is everything collected from one profiled run of one
// workload.
type WorkloadData struct {
	C    *Compiled
	Prof *profile.Profile
	// Local1/Global1 are the 1-bit history tables for Table 1's 1-bit
	// rows.
	Local1  *profile.LocalHistory
	Global1 *profile.GlobalHistory
	// Dynamic predictor scores.
	Last, TwoBit, TwoLevel, GShare predict.Eval
	// Branches is the number of traced events; Steps the executed
	// instructions (for the [FF92] instructions-per-mispredict metric).
	Branches uint64
	Steps    uint64
}

// Suite holds the profiled data of all workloads plus lazily computed
// per-size strategy selections shared by Table 5 and the figures.
type Suite struct {
	Cfg  ExpConfig
	Data []*WorkloadData

	selections map[selKey][][]statemachine.Choice // [key][workload][site]
}

// selKey identifies a cached selection sweep.
type selKey struct {
	n     int
	paper bool
}

// NewSuite compiles and profiles every workload under the configuration.
func NewSuite(cfg ExpConfig) (*Suite, error) {
	s := &Suite{Cfg: cfg, selections: map[selKey][][]statemachine.Choice{}}
	for _, w := range Workloads() {
		c, err := Compile(w)
		if err != nil {
			return nil, err
		}
		d := &WorkloadData{
			C:       c,
			Prof:    profile.New(c.NSites, profile.Options{LocalK: 9, GlobalK: 9, PathM: 3}),
			Local1:  profile.NewLocalHistory(c.NSites, 1),
			Global1: profile.NewGlobalHistory(c.NSites, 1),
			Last:    predict.Eval{P: predict.NewLastDirection(c.NSites)},
			TwoBit:  predict.Eval{P: predict.NewTwoBit(c.NSites)},
			TwoLevel: predict.Eval{
				P: predict.NewTwoLevel(predict.PaperTwoLevel()),
			},
			GShare: predict.Eval{P: predict.NewGShare(12)},
		}
		m, err := c.Run(RunConfig{Budget: cfg.Budget, Seed: cfg.Seed, Scale: scaleFor(cfg)},
			d.Prof, d.Local1, d.Global1, &d.Last, &d.TwoBit, &d.TwoLevel, &d.GShare)
		if err != nil {
			return nil, err
		}
		d.Branches = m.Branches
		d.Steps = m.Steps
		s.Data = append(s.Data, d)
	}
	return s, nil
}

// scaleFor makes budgeted runs never finish early: with a budget set, the
// workload scale is raised far beyond it.
func scaleFor(cfg ExpConfig) int64 {
	if cfg.Scale != 0 {
		return cfg.Scale
	}
	if cfg.Budget != 0 {
		return 1 << 30
	}
	return 0
}

// colNames returns the workload column headers.
func (s *Suite) colNames() []string {
	out := make([]string, len(s.Data))
	for i, d := range s.Data {
		out[i] = d.C.Workload.Name
	}
	return out
}

// Table1 reproduces the paper's Table 1: misprediction rates of the
// dynamic and semi-static strategies plus the branch population counts.
func (s *Suite) Table1() *Table {
	t := &Table{ID: "table1", Title: "Misprediction rates of different branch prediction strategies (%)", Cols: s.colNames()}
	add := func(name string, f func(d *WorkloadData) Cell) {
		row := Row{Name: name}
		for _, d := range s.Data {
			row.Cells = append(row.Cells, f(d))
		}
		t.Rows = append(t.Rows, row)
	}
	add("last direction", func(d *WorkloadData) Cell { return rateCell(d.Last.Misses, d.Last.Total) })
	add("2 bit counter", func(d *WorkloadData) Cell { return rateCell(d.TwoBit.Misses, d.TwoBit.Total) })
	add("two level 1K/9bit", func(d *WorkloadData) Cell { return rateCell(d.TwoLevel.Misses, d.TwoLevel.Total) })
	add("profile", func(d *WorkloadData) Cell {
		r := predict.ProfileResult(d.Prof.Counts)
		return rateCell(r.Misses, r.Total)
	})
	add("1 bit correlation", func(d *WorkloadData) Cell {
		r := predict.CorrelationResult(d.Global1)
		return rateCell(r.Misses, r.Total)
	})
	add("9 bit correlation", func(d *WorkloadData) Cell {
		r := predict.CorrelationResult(d.Prof.Global)
		return rateCell(r.Misses, r.Total)
	})
	add("1 bit loop", func(d *WorkloadData) Cell {
		r := predict.LoopResult(d.Local1)
		return rateCell(r.Misses, r.Total)
	})
	add("9 bit loop", func(d *WorkloadData) Cell {
		r := predict.LoopResult(d.Prof.Local)
		return rateCell(r.Misses, r.Total)
	})
	add("loop-correlation", func(d *WorkloadData) Cell {
		r, _ := predict.LoopCorrelationResult(d.Prof.Local, d.Prof.Global, d.Prof.Counts)
		return rateCell(r.Misses, r.Total)
	})
	// Fisher–Freudenberger's alternative metric: executed instructions per
	// mispredicted branch (higher is better).
	add("instrs/mispredict (profile)", func(d *WorkloadData) Cell {
		r := predict.ProfileResult(d.Prof.Counts)
		if r.Misses == 0 {
			return Cell{}
		}
		return countCell(d.Steps / r.Misses)
	})
	add("instrs/mispredict (loop-corr)", func(d *WorkloadData) Cell {
		r, _ := predict.LoopCorrelationResult(d.Prof.Local, d.Prof.Global, d.Prof.Counts)
		if r.Misses == 0 {
			return Cell{}
		}
		return countCell(d.Steps / r.Misses)
	})
	add("static branches", func(d *WorkloadData) Cell { return countCell(uint64(d.C.NSites)) })
	add("executed branches", func(d *WorkloadData) Cell { return countCell(uint64(d.Prof.Counts.Executed())) })
	add("improved branches", func(d *WorkloadData) Cell {
		_, improved := predict.LoopCorrelationResult(d.Prof.Local, d.Prof.Global, d.Prof.Counts)
		n := uint64(0)
		for _, b := range improved {
			if b {
				n++
			}
		}
		return countCell(n)
	})
	return t
}

// Table2 reproduces Table 2: fill rates of the pattern tables for history
// lengths 1..9, over local (loop) histories as in the paper, with the
// global tables as a companion block.
func (s *Suite) Table2() *Table {
	t := &Table{ID: "table2", Title: "Fill rate of the history tables (%)", Cols: s.colNames()}
	type frs struct{ local, global []profile.FillRate }
	all := make([]frs, len(s.Data))
	for i, d := range s.Data {
		all[i] = frs{local: d.Prof.Local.FillRates(), global: d.Prof.Global.FillRates()}
	}
	for j := 0; j < 9; j++ {
		row := Row{Name: fmt.Sprintf("%d bit local history", j+1)}
		for i := range s.Data {
			row.Cells = append(row.Cells, Cell{Value: all[i].local[j].Rate(), Valid: true})
		}
		t.Rows = append(t.Rows, row)
	}
	for j := 0; j < 9; j++ {
		row := Row{Name: fmt.Sprintf("%d bit global history", j+1)}
		for i := range s.Data {
			row.Cells = append(row.Cells, Cell{Value: all[i].global[j].Rate(), Valid: true})
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// siteClass partitions a workload's branch sites the way section 4 does.
type siteClass struct {
	intra []int32 // inside a loop, neither edge leaves it
	exit  []int32 // inside a loop, an edge leaves it
	other []int32
}

func classify(d *WorkloadData) siteClass {
	var sc siteClass
	for i := 0; i < d.C.NSites; i++ {
		if d.Prof.Counts.Total(int32(i)) == 0 {
			continue
		}
		ft := d.C.Features[i]
		switch {
		case ft.InLoop && !ft.TakenExits && !ft.ElseExits:
			sc.intra = append(sc.intra, int32(i))
		case ft.InLoop:
			sc.exit = append(sc.exit, int32(i))
		default:
			sc.other = append(sc.other, int32(i))
		}
	}
	return sc
}

// Table3 reproduces Table 3: misprediction rates of intra-loop and
// loop-exit branches under full (n-1)-bit histories versus n-state
// machines, using the paper's pattern-table counting.
func (s *Suite) Table3() *Table {
	t := &Table{ID: "table3", Title: "Misprediction rates of loop and loop exit branches (%)", Cols: s.colNames()}
	classes := make([]siteClass, len(s.Data))
	for i, d := range s.Data {
		classes[i] = classify(d)
	}
	addRow := func(name string, f func(i int, d *WorkloadData) Cell) {
		row := Row{Name: name}
		for i, d := range s.Data {
			row.Cells = append(row.Cells, f(i, d))
		}
		t.Rows = append(t.Rows, row)
	}
	profMisses := func(d *WorkloadData, sites []int32) (uint64, uint64) {
		var m, tot uint64
		for _, site := range sites {
			p := profile.Pair{Taken: d.Prof.Counts.Taken[site], NotTaken: d.Prof.Counts.NotTaken[site]}
			m += p.Misses()
			tot += p.Total()
		}
		return m, tot
	}
	histMisses := func(d *WorkloadData, sites []int32, bits int) (uint64, uint64) {
		var m, tot uint64
		for _, site := range sites {
			if d.Prof.Local.Table(site) == nil {
				continue
			}
			for _, p := range d.Prof.Local.Project(site, bits) {
				m += p.Misses()
				tot += p.Total()
			}
		}
		return m, tot
	}
	addRow("profile (loop)", func(i int, d *WorkloadData) Cell {
		return rateCell(profMisses(d, classes[i].intra))
	})
	addRow("profile (exit)", func(i int, d *WorkloadData) Cell {
		return rateCell(profMisses(d, classes[i].exit))
	})
	for _, n := range s.Cfg.Table3States {
		bits := n - 1
		if bits > 9 {
			bits = 9
		}
		n := n
		addRow(fmt.Sprintf("%d bit hist (loop)", bits), func(i int, d *WorkloadData) Cell {
			return rateCell(histMisses(d, classes[i].intra, bits))
		})
		addRow(fmt.Sprintf("%d states (loop)", n), func(i int, d *WorkloadData) Cell {
			var m, tot uint64
			for _, site := range classes[i].intra {
				lm := statemachine.BestLoopMachine(d.Prof.Local.Table(site), 9, n)
				m += lm.Misses()
				tot += lm.Total
			}
			return rateCell(m, tot)
		})
		addRow(fmt.Sprintf("%d bit hist (exit)", bits), func(i int, d *WorkloadData) Cell {
			return rateCell(histMisses(d, classes[i].exit, bits))
		})
		addRow(fmt.Sprintf("%d states (exit)", n), func(i int, d *WorkloadData) Cell {
			var m, tot uint64
			for _, site := range classes[i].exit {
				ft := d.C.Features[site]
				em := statemachine.NewExitMachine(d.Prof.Local.Table(site), 9, n, ft.TakenExits)
				m += em.Misses()
				tot += em.Total
			}
			return rateCell(m, tot)
		})
	}
	return t
}

// Table4 reproduces Table 4: misprediction rates of correlated branches —
// all executed branches predicted by path machines of increasing size,
// with path length capped at the state count as in the paper.
func (s *Suite) Table4() *Table {
	t := &Table{ID: "table4", Title: "Misprediction rates of correlated branches (%)", Cols: s.colNames()}
	addRow := func(name string, f func(d *WorkloadData) Cell) {
		row := Row{Name: name}
		for _, d := range s.Data {
			row.Cells = append(row.Cells, f(d))
		}
		t.Rows = append(t.Rows, row)
	}
	addRow("profile", func(d *WorkloadData) Cell {
		r := predict.ProfileResult(d.Prof.Counts)
		return rateCell(r.Misses, r.Total)
	})
	addRow("full path table", func(d *WorkloadData) Cell {
		var m, tot uint64
		for i := 0; i < d.C.NSites; i++ {
			sm, st := d.Prof.Path.SiteMisses(int32(i))
			m += sm
			tot += st
		}
		return rateCell(m, tot)
	})
	for _, n := range s.Cfg.Table4States {
		n := n
		addRow(fmt.Sprintf("%d states", n), func(d *WorkloadData) Cell {
			var m, tot uint64
			for i := 0; i < d.C.NSites; i++ {
				if d.Prof.Counts.Total(int32(i)) == 0 {
					continue
				}
				pm := statemachine.BestPathMachine(d.Prof.Path, int32(i), n, n)
				m += pm.Misses()
				tot += pm.Total
			}
			return rateCell(m, tot)
		})
	}
	return t
}

// Selections computes (and caches) the per-branch best strategies at a
// given machine size for every workload. With paperCounting, loop machines
// are scored with the paper's pattern counting (used by Table 5 and the
// figures, like the paper's own numbers); otherwise exact stream replay is
// used (what the measured experiments need).
func (s *Suite) Selections(n int, paperCounting bool) [][]statemachine.Choice {
	key := selKey{n: n, paper: paperCounting}
	if got, ok := s.selections[key]; ok {
		return got
	}
	out := make([][]statemachine.Choice, len(s.Data))
	for i, d := range s.Data {
		out[i] = statemachine.Select(d.Prof, d.C.Features, statemachine.Options{
			MaxStates:     n,
			MaxPathLen:    s.Cfg.MaxPathLen,
			PaperCounting: paperCounting,
		})
	}
	s.selections[key] = out
	return out
}

// Table5 reproduces Table 5: best achievable misprediction rates when every
// branch uses its best strategy under a state budget.
func (s *Suite) Table5() *Table {
	t := &Table{ID: "table5", Title: "Best achievable misprediction rates (%)", Cols: s.colNames()}
	prow := Row{Name: "profile"}
	for _, d := range s.Data {
		r := predict.ProfileResult(d.Prof.Counts)
		prow.Cells = append(prow.Cells, rateCell(r.Misses, r.Total))
	}
	t.Rows = append(t.Rows, prow)
	for _, n := range s.Cfg.Table5States {
		sel := s.Selections(n, true)
		row := Row{Name: fmt.Sprintf("%d states", n)}
		for i := range s.Data {
			m, tot := statemachine.Aggregate(sel[i])
			row.Cells = append(row.Cells, rateCell(m, tot))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
