package bench

import (
	"fmt"
	"strings"
)

// Render formats a table as fixed-width text (also valid as a Markdown
// code block for EXPERIMENTS.md).
func (t *Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	nameW := 4
	for _, r := range t.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	colW := make([]int, len(t.Cols))
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(t.Cols))
		for ci := range t.Cols {
			s := "-"
			if ci < len(r.Cells) && r.Cells[ci].Valid {
				c := r.Cells[ci]
				if c.Count {
					s = fmt.Sprintf("%.0f", c.Value)
				} else {
					s = fmt.Sprintf("%.2f", c.Value)
				}
			}
			cells[ri][ci] = s
		}
	}
	for ci, col := range t.Cols {
		w := len(col)
		for ri := range t.Rows {
			if len(cells[ri][ci]) > w {
				w = len(cells[ri][ci])
			}
		}
		colW[ci] = w
	}
	fmt.Fprintf(&sb, "%-*s", nameW, "")
	for ci, col := range t.Cols {
		fmt.Fprintf(&sb, "  %*s", colW[ci], col)
	}
	sb.WriteByte('\n')
	for ri, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", nameW, r.Name)
		for ci := range t.Cols {
			fmt.Fprintf(&sb, "  %*s", colW[ci], cells[ri][ci])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderFigure formats one curve as two columns.
func RenderFigure(f Figure) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "figure %s: misprediction rate vs code size\n", f.Workload)
	fmt.Fprintf(&sb, "  %10s  %10s  %6s\n", "size", "miss%", "steps")
	last := -1.0
	for _, p := range f.Points {
		// Thin out: only print points that changed the rate visibly.
		if last >= 0 && p.MissRate > last-0.005 && p.Steps != 0 && p.Steps != len(f.Points)-1 {
			continue
		}
		fmt.Fprintf(&sb, "  %10.3f  %10.3f  %6d\n", p.SizeFactor, p.MissRate, p.Steps)
		last = p.MissRate
	}
	return sb.String()
}

// RenderHeadlines formats the §5 headline summary.
func RenderHeadlines(hs []Headline) string {
	var sb strings.Builder
	sb.WriteString("headline: best rate within a 1.33x size budget vs plain profile\n")
	fmt.Fprintf(&sb, "  %-10s  %9s  %9s  %9s  %10s\n", "workload", "profile%", "at1.33x%", "best%", "reduction%")
	for _, h := range hs {
		fmt.Fprintf(&sb, "  %-10s  %9.2f  %9.2f  %9.2f  %10.1f\n",
			h.Workload, h.ProfileRate, h.At133Rate, h.BestRate, h.ReductionPct)
	}
	return sb.String()
}
