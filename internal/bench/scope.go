package bench

import (
	"repro/internal/ir"
	"repro/internal/predict"
	"repro/internal/replicate"
	"repro/internal/runner"
	"repro/internal/statemachine"
	"repro/internal/superblock"
)

// ScopeTable runs the §6 future-work experiment: how much straight-line
// scope a trace scheduler gets, before and after replication. Traces are
// formed along mutually-most-likely edges; the metric is the average
// number of instructions executed between dynamic trace exits. Replicated
// branch copies are strongly biased, so traces run longer through them.
// One parallel job per workload.
func (s *Suite) ScopeTable() (*Table, error) {
	t := &Table{
		ID:    "scope",
		Title: "Scheduler scope: average dynamic trace length (instructions between trace exits)",
	}
	type col struct {
		orig, repl Cell
		traces     Cell
	}
	cols, err := runner.Map(s.eng, s.Data, func(_ int, d *WorkloadData) (col, error) {
		var c col
		if d.Art != nil {
			// Trace formation only needs the original program's block and
			// branch counts, both already captured by the recording run.
			so := superblock.MeasureProgram(d.C.Prog, d.Art.BlockCounts, d.Prof.Counts)
			c.orig = Cell{Value: so.AvgDynamicLength(), Valid: true}
		} else {
			s.countLiveRun()
			so, _, err := scopeStats(d.C.Prog, s.Cfg)
			if err != nil {
				return col{}, err
			}
			c.orig = Cell{Value: so.AvgDynamicLength(), Valid: true}
		}

		static := predict.ProfileStatic(d.Prof.Counts)
		choices, err := s.selectFor(d, statemachine.Options{
			MaxStates:  5,
			MaxPathLen: 1,
		})
		if err != nil {
			return col{}, err
		}
		clone := ir.CloneProgram(d.C.Prog)
		if _, err := replicate.ApplyOpts(clone, choices, static.Preds,
			replicate.Options{MaxSizeFactor: 3}); err != nil {
			return col{}, err
		}
		s.countLiveRun()
		sr, nt, err := scopeStats(clone, s.Cfg)
		if err != nil {
			return col{}, err
		}
		c.repl = Cell{Value: sr.AvgDynamicLength(), Valid: true}
		c.traces = countCell(uint64(nt))
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	t.Cols = s.colNames()
	orig := Row{Name: "original"}
	repl := Row{Name: "replicated"}
	traces := Row{Name: "traces formed (replicated)"}
	for _, c := range cols {
		orig.Cells = append(orig.Cells, c.orig)
		repl.Cells = append(repl.Cells, c.repl)
		traces.Cells = append(traces.Cells, c.traces)
	}
	t.Rows = append(t.Rows, orig, repl, traces)
	return t, nil
}

func scopeStats(prog *ir.Program, cfg ExpConfig) (superblock.Stats, int, error) {
	counts, bc, err := countingRun(prog, cfg)
	if err != nil {
		return superblock.Stats{}, 0, err
	}
	st := superblock.MeasureProgram(prog, bc, counts)
	return st, st.Traces, nil
}
