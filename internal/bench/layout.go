package bench

import (
	"errors"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/predict"
	"repro/internal/replicate"
	"repro/internal/statemachine"
	"repro/internal/trace"
)

// LayoutTable runs the code-positioning extension experiment: the dynamic
// taken-transfer rate (the [PH90] objective; lower is better for the
// instruction cache and fetch unit) for the original program and for the
// replicated one, each under the naive block order and under
// Pettis–Hansen positioning. It quantifies §5's remark that a cost
// function must weigh replication's cache impact: replication adds code,
// but its biased per-state branches lay out into longer fall-through runs.
func (s *Suite) LayoutTable() (*Table, error) {
	t := &Table{
		ID:    "layout",
		Title: "Dynamic taken-transfer rate (%) under code positioning [PH90]",
		Cols:  s.colNames(),
	}
	rows := map[string]*Row{}
	for _, name := range []string{
		"original, naive layout",
		"original, PH layout",
		"replicated, naive layout",
		"replicated, PH layout",
	} {
		rows[name] = &Row{Name: name}
	}

	for _, d := range s.Data {
		origNaive, origPH, err := layoutRates(d.C.Prog, s.Cfg)
		if err != nil {
			return nil, err
		}
		rows["original, naive layout"].Cells = append(rows["original, naive layout"].Cells, origNaive)
		rows["original, PH layout"].Cells = append(rows["original, PH layout"].Cells, origPH)

		static := predict.ProfileStatic(d.Prof.Counts)
		choices := statemachine.Select(d.Prof, d.C.Features, statemachine.Options{
			MaxStates:  5,
			MaxPathLen: 1,
		})
		clone := ir.CloneProgram(d.C.Prog)
		if _, err := replicate.ApplyOpts(clone, choices, static.Preds,
			replicate.Options{MaxSizeFactor: 3}); err != nil {
			return nil, err
		}
		replNaive, replPH, err := layoutRates(clone, s.Cfg)
		if err != nil {
			return nil, err
		}
		rows["replicated, naive layout"].Cells = append(rows["replicated, naive layout"].Cells, replNaive)
		rows["replicated, PH layout"].Cells = append(rows["replicated, PH layout"].Cells, replPH)
	}
	t.Rows = append(t.Rows,
		*rows["original, naive layout"], *rows["original, PH layout"],
		*rows["replicated, naive layout"], *rows["replicated, PH layout"])
	return t, nil
}

// layoutRates profiles one program (block counts + branch counts) and
// evaluates both layouts.
func layoutRates(prog *ir.Program, cfg ExpConfig) (naive, ph Cell, err error) {
	n := prog.NumberBranches(false)
	counts := trace.NewCounts(n)
	m := interp.New(prog)
	m.EnableBlockCounts()
	m.Hook = counts.Branch
	m.MaxBranches = cfg.Budget
	if cfg.Seed != 0 {
		if err := m.SetGlobal("wseed", cfg.Seed); err != nil {
			return Cell{}, Cell{}, err
		}
	}
	if sc := scaleFor(cfg); sc != 0 {
		if err := m.SetGlobal("wscale", sc); err != nil {
			return Cell{}, Cell{}, err
		}
	}
	if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
		return Cell{}, Cell{}, err
	}
	bc := m.BlockCounts()
	nv := layout.EvaluateProgram(prog, bc, counts, false)
	pv := layout.EvaluateProgram(prog, bc, counts, true)
	return Cell{Value: nv.TakenRate(), Valid: true}, Cell{Value: pv.TakenRate(), Valid: true}, nil
}
