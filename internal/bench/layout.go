package bench

import (
	"errors"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/predict"
	"repro/internal/replicate"
	"repro/internal/runner"
	"repro/internal/statemachine"
	"repro/internal/trace"
)

// LayoutTable runs the code-positioning extension experiment: the dynamic
// taken-transfer rate (the [PH90] objective; lower is better for the
// instruction cache and fetch unit) for the original program and for the
// replicated one, each under the naive block order and under
// Pettis–Hansen positioning. It quantifies §5's remark that a cost
// function must weigh replication's cache impact: replication adds code,
// but its biased per-state branches lay out into longer fall-through runs.
// One parallel job per workload; the strategy selection is shared with the
// other measured experiments through the artifact cache.
func (s *Suite) LayoutTable() (*Table, error) {
	t := &Table{
		ID:    "layout",
		Title: "Dynamic taken-transfer rate (%) under code positioning [PH90]",
	}
	type col struct{ origNaive, origPH, replNaive, replPH Cell }
	cols, err := runner.Map(s.eng, s.Data, func(_ int, d *WorkloadData) (col, error) {
		var c col
		var err error
		if d.Art != nil {
			// The original program's block counts and branch counts are
			// already in the recorded artifact and the replayed profile;
			// both layouts evaluate straight off them.
			nv := layout.EvaluateProgram(d.C.Prog, d.Art.BlockCounts, d.Prof.Counts, false)
			pv := layout.EvaluateProgram(d.C.Prog, d.Art.BlockCounts, d.Prof.Counts, true)
			c.origNaive = Cell{Value: nv.TakenRate(), Valid: true}
			c.origPH = Cell{Value: pv.TakenRate(), Valid: true}
		} else {
			s.countLiveRun()
			c.origNaive, c.origPH, err = layoutRates(d.C.Prog, s.Cfg)
			if err != nil {
				return col{}, err
			}
		}

		static := predict.ProfileStatic(d.Prof.Counts)
		choices, err := s.selectFor(d, statemachine.Options{
			MaxStates:  5,
			MaxPathLen: 1,
		})
		if err != nil {
			return col{}, err
		}
		clone := ir.CloneProgram(d.C.Prog)
		if _, err := replicate.ApplyOpts(clone, choices, static.Preds,
			replicate.Options{MaxSizeFactor: 3}); err != nil {
			return col{}, err
		}
		s.countLiveRun()
		c.replNaive, c.replPH, err = layoutRates(clone, s.Cfg)
		if err != nil {
			return col{}, err
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	t.Cols = s.colNames()
	origNaive := Row{Name: "original, naive layout"}
	origPH := Row{Name: "original, PH layout"}
	replNaive := Row{Name: "replicated, naive layout"}
	replPH := Row{Name: "replicated, PH layout"}
	for _, c := range cols {
		origNaive.Cells = append(origNaive.Cells, c.origNaive)
		origPH.Cells = append(origPH.Cells, c.origPH)
		replNaive.Cells = append(replNaive.Cells, c.replNaive)
		replPH.Cells = append(replPH.Cells, c.replPH)
	}
	t.Rows = append(t.Rows, origNaive, origPH, replNaive, replPH)
	return t, nil
}

// layoutRates profiles one program (block counts + branch counts) on the
// configured backend and evaluates both layouts.
func layoutRates(prog *ir.Program, cfg ExpConfig) (naive, ph Cell, err error) {
	counts, bc, err := countingRun(prog, cfg)
	if err != nil {
		return Cell{}, Cell{}, err
	}
	nv := layout.EvaluateProgram(prog, bc, counts, false)
	pv := layout.EvaluateProgram(prog, bc, counts, true)
	return Cell{Value: nv.TakenRate(), Valid: true}, Cell{Value: pv.TakenRate(), Valid: true}, nil
}

// countingRun executes a program with per-site branch counts and per-block
// execution counts enabled — the two inputs of the layout and scope
// experiments.
func countingRun(prog *ir.Program, cfg ExpConfig) (*trace.Counts, [][]uint64, error) {
	n := prog.NumberBranches(false)
	counts := trace.NewCounts(n)
	ep, err := cfg.backend().Compile(prog)
	if err != nil {
		return nil, nil, err
	}
	m := ep.NewMachine()
	m.EnableBlockCounts()
	m.SetHook(counts.Branch)
	m.SetMaxBranches(cfg.Budget)
	if cfg.Seed != 0 {
		if err := m.SetGlobal("wseed", cfg.Seed); err != nil {
			return nil, nil, err
		}
	}
	if sc := scaleFor(cfg); sc != 0 {
		if err := m.SetGlobal("wscale", sc); err != nil {
			return nil, nil, err
		}
	}
	if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
		return nil, nil, err
	}
	return counts, m.BlockCounts(), nil
}
