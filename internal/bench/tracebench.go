package bench

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/profile"
	"repro/internal/trace"
)

// TraceMeasurement is one workload's trace-plane replay throughput: the
// same recorded slab decoded four ways, reporting events per second of
// wall clock (best of Rounds rounds per mode).
type TraceMeasurement struct {
	Workload string
	Budget   uint64
	Rounds   int
	// Workers is the fan-out used for the partitioned mode.
	Workers int
	// Events and EncodedBytes describe the recorded slab.
	Events       uint64
	EncodedBytes int
	// SinglePassEventsPerSec decodes event-at-a-time through the
	// historical per-event callback — the pre-run-aware baseline.
	SinglePassEventsPerSec float64
	// RunAwareEventsPerSec is the fused run-aware count replay.
	RunAwareEventsPerSec float64
	// PartitionedEventsPerSec is ReplayPartitioned at Workers workers
	// (equal to the run-aware rate on a single-CPU host, where the
	// partitioned path degrades to the fused single pass).
	PartitionedEventsPerSec float64
	// ProfileEventsPerSec replays the full five-table profile bundle.
	ProfileEventsPerSec float64
	// Speedup is run-aware over single-pass.
	Speedup float64
}

// MeasureTrace records every named workload (nil = the whole suite) to
// its branch budget once, then times replaying the slab in each mode.
// Correctness of each mode against per-event replay is pinned by the
// trace and bench test suites; this only measures. Count totals must
// still agree across modes — a rate from a diverged decode would be
// meaningless.
func MeasureTrace(names []string, budget uint64, rounds, workers int) ([]TraceMeasurement, error) {
	if budget == 0 {
		budget = 500_000
	}
	if rounds <= 0 {
		rounds = 3
	}
	if workers <= 0 {
		workers = 1
	}
	ws := Workloads()
	if len(names) > 0 {
		ws = ws[:0]
		for _, n := range names {
			w, err := ByName(n)
			if err != nil {
				return nil, err
			}
			ws = append(ws, w)
		}
	}
	out := make([]TraceMeasurement, 0, len(ws))
	for _, w := range ws {
		c, err := Compile(w)
		if err != nil {
			return nil, err
		}
		ep, err := c.execProgram(exec.Interp)
		if err != nil {
			return nil, err
		}
		m0 := ep.NewMachine()
		m0.SetMaxBranches(budget)
		slab := trace.NewSlab(int(budget))
		m0.SetRec(slab)
		if err := m0.SetGlobal("wscale", 1<<30); err != nil {
			return nil, err
		}
		if _, err := m0.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
			return nil, fmt.Errorf("bench: trace measurement %s: %w", w.Name, err)
		}
		slab.Seal()
		m := TraceMeasurement{
			Workload:     w.Name,
			Budget:       budget,
			Rounds:       rounds,
			Workers:      workers,
			Events:       slab.Len(),
			EncodedBytes: slab.EncodedBytes(),
		}

		counts := trace.NewCounts(c.NSites)
		taken := func() uint64 {
			var t uint64
			for _, v := range counts.Taken {
				t += v
			}
			return t
		}
		reset := func() {
			clear(counts.Taken)
			clear(counts.NotTaken)
		}

		var wantTaken uint64
		timeMode := func(replay func()) float64 {
			best := time.Duration(1<<63 - 1)
			var got uint64
			for r := 0; r < rounds; r++ {
				reset()
				start := time.Now()
				replay()
				if d := time.Since(start); d < best {
					best = d
				}
				got = taken()
			}
			if wantTaken == 0 {
				wantTaken = got
			} else if got != wantTaken {
				panic(fmt.Sprintf("bench: trace measurement %s: replay modes diverge (%d taken vs %d)",
					w.Name, got, wantTaken))
			}
			return float64(slab.Len()) / best.Seconds()
		}

		m.SinglePassEventsPerSec = timeMode(func() { slab.Replay(counts.RecordBranch) })
		m.RunAwareEventsPerSec = timeMode(func() { slab.ReplayInto(counts) })
		m.PartitionedEventsPerSec = timeMode(func() { slab.ReplayPartitioned(workers, counts) })

		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			p := profile.New(c.NSites, profile.Options{LocalK: 9, GlobalK: 9, PathM: 3})
			start := time.Now()
			slab.ReplayInto(p)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		m.ProfileEventsPerSec = float64(slab.Len()) / best.Seconds()

		if m.SinglePassEventsPerSec > 0 {
			m.Speedup = m.RunAwareEventsPerSec / m.SinglePassEventsPerSec
		}
		out = append(out, m)
	}
	return out, nil
}

// TraceTable renders the measurements as a result table.
func TraceTable(ms []TraceMeasurement) *Table {
	workers := 1
	if len(ms) > 0 {
		workers = ms[0].Workers
	}
	t := &Table{
		ID:    "tracebench",
		Title: "Trace replay throughput (million events/s, recorded slabs)",
	}
	single := Row{Name: "event-at-a-time"}
	run := Row{Name: "run-aware fused"}
	part := Row{Name: fmt.Sprintf("partitioned x%d", workers)}
	prof := Row{Name: "profile bundle"}
	speedup := Row{Name: "speedup (run-aware)"}
	for _, m := range ms {
		t.Cols = append(t.Cols, m.Workload)
		single.Cells = append(single.Cells, Cell{Value: m.SinglePassEventsPerSec / 1e6, Valid: true})
		run.Cells = append(run.Cells, Cell{Value: m.RunAwareEventsPerSec / 1e6, Valid: true})
		part.Cells = append(part.Cells, Cell{Value: m.PartitionedEventsPerSec / 1e6, Valid: true})
		prof.Cells = append(prof.Cells, Cell{Value: m.ProfileEventsPerSec / 1e6, Valid: true})
		speedup.Cells = append(speedup.Cells, Cell{Value: m.Speedup, Valid: true})
	}
	t.Rows = append(t.Rows, single, run, part, prof, speedup)
	return t
}
