package bench

// ccSrc is the stand-in for the paper's "c-compiler" benchmark (the lcc
// front end): a complete miniature compiler pipeline over a generated
// source text — character-level lexer, recursive-descent parser with a
// symbol table, constant folding, stack-machine code generation, a
// peephole pass, and evaluation of the emitted code on a tiny VM. Its
// branch profile is dominated by character-class and token-kind dispatch,
// the classic front-end behaviour.
const ccSrc = `
// cc: miniature compiler pipeline workload.

var wseed int = 54321;
var wscale int = 260;

var seed int;

func rand() int {
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}

// ---------------------------------------------------------------- source
// Character codes: 0..9 digits, 10..19 identifier letters a..j,
// 20 '+', 21 '-', 22 '*', 23 '(', 24 ')', 25 '=', 26 ';', 27 space, 28 end.
var src [8192]int;
var nsrc int;

func emitChar(c int) {
    if nsrc < 8100 {
        src[nsrc] = c;
        nsrc = nsrc + 1;
    }
}

func emitNumber() {
    var digits int = 1 + rand() % 3;
    for var i int = 0; i < digits; i = i + 1 {
        emitChar(rand() % 10);
    }
}

func emitIdent() {
    emitChar(10 + rand() % 10);
    if rand() % 3 == 0 {
        emitChar(10 + rand() % 10);
    }
}

// genExprSrc writes a random well-formed expression as characters.
func genExprSrc(depth int) {
    var r int = rand() % 10;
    if depth <= 0 || r < 3 {
        if rand() % 3 == 0 {
            emitIdent();
        } else {
            emitNumber();
        }
        return;
    }
    if r < 5 {
        emitChar(23); // (
        genExprSrc(depth - 1);
        emitChar(24); // )
        return;
    }
    genExprSrc(depth - 1);
    emitChar(20 + rand() % 3); // + - *
    if rand() % 4 == 0 {
        emitChar(27); // occasional space
    }
    genExprSrc(depth - 1);
}

// genProgramSrc writes a sequence of assignment statements "ident = expr;".
func genProgramSrc() {
    nsrc = 0;
    while nsrc < 7800 {
        emitIdent();
        emitChar(25); // =
        genExprSrc(2 + rand() % 4);
        emitChar(26); // ;
        if rand() % 2 == 0 {
            emitChar(27);
        }
    }
    emitChar(28); // end marker
}

// ----------------------------------------------------------------- lexer
// Tokens: 0=num 1=ident 2=plus 3=minus 4=star 5=lparen 6=rparen
// 7=assign 8=semi 9=end
var toks [4096]int;
var vals [4096]int;
var ntok int;
var lexErrs int;

func lex() {
    ntok = 0;
    var i int = 0;
    while i < nsrc && ntok < 4000 {
        var c int = src[i];
        if c < 10 {
            var v int = 0;
            while i < nsrc && src[i] < 10 {
                v = (v * 10 + src[i]) % 100000;
                i = i + 1;
            }
            toks[ntok] = 0;
            vals[ntok] = v;
            ntok = ntok + 1;
        } else if c < 20 {
            var h int = 0;
            while i < nsrc && src[i] >= 10 && src[i] < 20 {
                h = (h * 11 + src[i]) % 64;
                i = i + 1;
            }
            toks[ntok] = 1;
            vals[ntok] = h;
            ntok = ntok + 1;
        } else if c == 20 {
            toks[ntok] = 2; vals[ntok] = 0; ntok = ntok + 1; i = i + 1;
        } else if c == 21 {
            toks[ntok] = 3; vals[ntok] = 0; ntok = ntok + 1; i = i + 1;
        } else if c == 22 {
            toks[ntok] = 4; vals[ntok] = 0; ntok = ntok + 1; i = i + 1;
        } else if c == 23 {
            toks[ntok] = 5; vals[ntok] = 0; ntok = ntok + 1; i = i + 1;
        } else if c == 24 {
            toks[ntok] = 6; vals[ntok] = 0; ntok = ntok + 1; i = i + 1;
        } else if c == 25 {
            toks[ntok] = 7; vals[ntok] = 0; ntok = ntok + 1; i = i + 1;
        } else if c == 26 {
            toks[ntok] = 8; vals[ntok] = 0; ntok = ntok + 1; i = i + 1;
        } else if c == 27 {
            i = i + 1; // whitespace
        } else {
            toks[ntok] = 9; vals[ntok] = 0; ntok = ntok + 1;
            i = nsrc;
        }
    }
    toks[ntok] = 9;
    ntok = ntok + 1;
}

// ---------------------------------------------------------- symbol table
var symVal [64]int;
var symDef [64]int;
var undefinedUses int;

func symLookup(h int) int {
    if symDef[h] == 1 {
        return symVal[h];
    }
    undefinedUses = undefinedUses + 1;
    return 0;
}

// ---------------------------------------------------- parser + code gen
// Opcodes: 0=pushconst 1=pushvar 2=add 3=sub 4=mul 5=store
var code [8192]int;
var carg [8192]int;
var ncode int;
var parseErrs int;
var pos int;

func emit(op int, arg int) {
    if ncode < 8100 {
        code[ncode] = op;
        carg[ncode] = arg;
        ncode = ncode + 1;
    }
}

func parsePrimary() {
    var k int = toks[pos];
    if k == 0 {
        emit(0, vals[pos]);
        pos = pos + 1;
        return;
    }
    if k == 1 {
        emit(1, vals[pos]);
        pos = pos + 1;
        return;
    }
    if k == 5 {
        pos = pos + 1;
        parseExpr();
        if toks[pos] == 6 {
            pos = pos + 1;
        } else {
            parseErrs = parseErrs + 1;
        }
        return;
    }
    parseErrs = parseErrs + 1;
    if k != 9 {
        pos = pos + 1; // never consume the end marker
    }
}

func parseTerm() {
    parsePrimary();
    while toks[pos] == 4 {
        pos = pos + 1;
        parsePrimary();
        emit(4, 0);
    }
}

func parseExpr() {
    parseTerm();
    while toks[pos] == 2 || toks[pos] == 3 {
        var op int = toks[pos];
        pos = pos + 1;
        parseTerm();
        if op == 2 {
            emit(2, 0);
        } else {
            emit(3, 0);
        }
    }
}

// parseProgram handles "ident = expr ;" statements.
func parseProgram() {
    pos = 0;
    ncode = 0;
    while pos < ntok - 1 && toks[pos] != 9 {
        if toks[pos] != 1 {
            parseErrs = parseErrs + 1;
            pos = pos + 1;
        } else {
            var target int = vals[pos];
            pos = pos + 1;
            if toks[pos] == 7 {
                pos = pos + 1;
                parseExpr();
                emit(5, target);
            } else {
                parseErrs = parseErrs + 1;
            }
            if toks[pos] == 8 {
                pos = pos + 1;
            } else {
                parseErrs = parseErrs + 1;
            }
        }
    }
}

// ------------------------------------------------------------- peephole
// Folds pushconst/pushconst/op triples, the same constant folding a real
// front end performs on the fly.
var folded int;

func peephole() {
    var out int = 0;
    for var i int = 0; i < ncode; i = i + 1 {
        var isFold bool = false;
        if out >= 2 && (code[i] == 2 || code[i] == 3 || code[i] == 4) {
            if code[out-1] == 0 && code[out-2] == 0 {
                isFold = true;
            }
        }
        if isFold {
            var b int = carg[out-1];
            var a int = carg[out-2];
            var v int = 0;
            if code[i] == 2 {
                v = a + b;
            } else if code[i] == 3 {
                v = a - b;
            } else {
                v = (a * b) % 100000;
            }
            out = out - 1;
            code[out-1] = 0;
            carg[out-1] = v;
            folded = folded + 1;
        } else {
            code[out] = code[i];
            carg[out] = carg[i];
            out = out + 1;
        }
    }
    ncode = out;
}

// ------------------------------------------------------------------- vm
var stack [256]int;
var checksum int;

func runCode() {
    var sp int = 0;
    for var i int = 0; i < ncode; i = i + 1 {
        var op int = code[i];
        if op == 0 {
            if sp < 256 { stack[sp] = carg[i]; sp = sp + 1; }
        } else if op == 1 {
            if sp < 256 { stack[sp] = symLookup(carg[i]); sp = sp + 1; }
        } else if op == 2 {
            if sp >= 2 { stack[sp-2] = stack[sp-2] + stack[sp-1]; sp = sp - 1; }
        } else if op == 3 {
            if sp >= 2 { stack[sp-2] = stack[sp-2] - stack[sp-1]; sp = sp - 1; }
        } else if op == 4 {
            if sp >= 2 { stack[sp-2] = (stack[sp-2] * stack[sp-1]) % 100000; sp = sp - 1; }
        } else {
            if sp >= 1 {
                sp = sp - 1;
                symVal[carg[i]] = stack[sp];
                symDef[carg[i]] = 1;
                checksum = (checksum * 31 + stack[sp]) % 1000000007;
                if checksum < 0 { checksum = -checksum; }
            }
        }
    }
}

func main() int {
    seed = wseed;
    checksum = 0; folded = 0; parseErrs = 0; lexErrs = 0; undefinedUses = 0;
    for var round int = 0; round < wscale; round = round + 1 {
        for var h int = 0; h < 64; h = h + 1 {
            symVal[h] = 0;
            symDef[h] = 0;
        }
        genProgramSrc();
        lex();
        parseProgram();
        peephole();
        runCode();
    }
    print(checksum);
    print(folded);
    print(parseErrs);
    print(undefinedUses);
    return checksum;
}
`
