// Package bench contains the eight BL workloads substituting for the
// paper's benchmark suite (abalone, c-compiler, compress, ghostview,
// predict, prolog, scheduler, doduc — see DESIGN.md for the archetype
// mapping) and the experiment drivers that regenerate every table and
// figure of the evaluation section.
package bench

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Workload is one benchmark program.
type Workload struct {
	// Name matches the paper's benchmark column.
	Name string
	// Source is the BL program text.
	Source string
	// Archetype documents which original benchmark it substitutes.
	Archetype string
}

// Workloads returns the suite in the paper's column order.
func Workloads() []Workload {
	return []Workload{
		{"abalone", abaloneSrc, "board game with alpha-beta search"},
		{"cc", ccSrc, "lcc compiler front end"},
		{"compress", compressSrc, "SPEC compress (LZW)"},
		{"ghostview", ghostviewSrc, "X PostScript previewer"},
		{"predict", predictSrc, "the paper's own profiling tool"},
		{"prolog", prologSrc, "minivip Prolog interpreter"},
		{"scheduler", schedulerSrc, "instruction scheduler"},
		{"doduc", doducSrc, "SPEC doduc hydrocode (floating point)"},
	}
}

// ByName returns a workload by name: the paper suite first, then the
// indirect-dispatch workloads (which stay out of Workloads so the paper's
// pinned tables never change shape).
func ByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range IndirectWorkloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("bench: unknown workload %q", name)
}

// Compiled is a workload compiled to IR with its static analyses.
type Compiled struct {
	Workload Workload
	Prog     *ir.Program
	NSites   int
	Features []predict.SiteFeatures

	// mu guards progs, the per-backend compiled-program cache: parallel
	// experiment jobs running the same workload share one bytecode
	// compilation instead of re-lowering the IR per run.
	mu    sync.Mutex
	progs map[string]exec.Program
}

// Compile builds a workload.
func Compile(w Workload) (*Compiled, error) {
	prog, err := lang.Compile(w.Source)
	if err != nil {
		return nil, fmt.Errorf("bench: compiling %s: %w", w.Name, err)
	}
	n := prog.NumberBranches(true)
	return &Compiled{
		Workload: w,
		Prog:     prog,
		NSites:   n,
		Features: predict.Analyze(prog),
	}, nil
}

// RunConfig controls one execution.
type RunConfig struct {
	// Budget stops the run after this many branch events (0 = run the
	// program to completion). Hitting the budget is normal completion.
	Budget uint64
	// Seed overrides the program's wseed global when non-zero.
	Seed int64
	// Scale overrides the program's wscale global when non-zero; programs
	// default to a size suited to a few-million-branch budget.
	Scale int64
}

// execProgram returns the workload compiled for the backend, compiling at
// most once per backend.
func (c *Compiled) execProgram(be exec.Backend) (exec.Program, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ep, ok := c.progs[be.Name()]; ok {
		return ep, nil
	}
	ep, err := be.Compile(c.Prog)
	if err != nil {
		return nil, fmt.Errorf("bench: compiling %s for %s: %w", c.Workload.Name, be.Name(), err)
	}
	if c.progs == nil {
		c.progs = make(map[string]exec.Program)
	}
	c.progs[be.Name()] = ep
	return ep, nil
}

// Run executes the compiled program on the interpreter, feeding every
// branch event to the collectors, and returns the machine for its counters.
func (c *Compiled) Run(cfg RunConfig, collectors ...trace.Collector) (exec.Machine, error) {
	return c.RunOn(exec.Interp, cfg, collectors...)
}

// RunOn is Run on a chosen execution backend, reusing the workload's cached
// compilation for that backend.
func (c *Compiled) RunOn(be exec.Backend, cfg RunConfig, collectors ...trace.Collector) (exec.Machine, error) {
	ep, err := c.execProgram(be)
	if err != nil {
		return nil, err
	}
	return runCompiled(ep, cfg, collectors...)
}

// runProgram executes any program on the interpreter (used for transformed
// clones, whose one-shot runs don't benefit from a compilation cache).
func runProgram(prog *ir.Program, cfg RunConfig, collectors ...trace.Collector) (exec.Machine, error) {
	return runProgramOn(exec.Interp, prog, cfg, collectors...)
}

// runProgramOn compiles and runs a program on the chosen backend.
func runProgramOn(be exec.Backend, prog *ir.Program, cfg RunConfig, collectors ...trace.Collector) (exec.Machine, error) {
	ep, err := be.Compile(prog)
	if err != nil {
		return nil, fmt.Errorf("bench: compiling %s for %s: %w", prog.Funcs[0].Name, be.Name(), err)
	}
	return runCompiled(ep, cfg, collectors...)
}

// runCompiled runs one backend-compiled program under the run config.
func runCompiled(ep exec.Program, cfg RunConfig, collectors ...trace.Collector) (exec.Machine, error) {
	m := ep.NewMachine()
	m.SetMaxBranches(cfg.Budget)
	if cfg.Seed != 0 {
		if err := m.SetGlobal("wseed", cfg.Seed); err != nil {
			return nil, err
		}
	}
	if cfg.Scale != 0 {
		if err := m.SetGlobal("wscale", cfg.Scale); err != nil {
			return nil, err
		}
	}
	switch len(collectors) {
	case 0:
	case 1:
		m.SetHook(collectors[0].Branch)
	default:
		// Batch the fan-out: the hot dispatch loop pays one buffer
		// append per branch instead of one interface call per collector
		// per branch. Release flushes the tail before the collectors are
		// read and returns the buffer to the shared pool.
		b := trace.NewBatcher(collectors...)
		defer b.Release()
		m.SetHook(b.Branch)
	}
	// Switch dispatch events go to the collectors that can consume them
	// (the branch batcher carries only binary events). Switches are orders
	// of magnitude rarer than branches, so a direct fan-out is fine.
	var sws []trace.SwitchCollector
	for _, c := range collectors {
		if sc, ok := c.(trace.SwitchCollector); ok {
			sws = append(sws, sc)
		}
	}
	if len(sws) > 0 {
		m.SetSwHook(func(t *ir.Term, outcome int32) {
			for _, sc := range sws {
				sc.RecordSwitch(t.Orig, outcome)
			}
		})
	}
	_, err := m.Run()
	if err != nil && !errors.Is(err, interp.ErrLimit) {
		return nil, fmt.Errorf("bench: running %s: %w", ep.Source().Funcs[0].Name, err)
	}
	return m, nil
}

// ProfileRun runs the workload once and returns the full profile bundle.
func (c *Compiled) ProfileRun(cfg RunConfig, opts profile.Options) (*profile.Profile, exec.Machine, error) {
	p := profile.New(c.NSites, opts)
	m, err := c.Run(cfg, p)
	if err != nil {
		return nil, nil, err
	}
	return p, m, nil
}
