package bench

import (
	"strings"
	"testing"
)

// renderAll renders the drivers covered by the determinism contract into
// one byte string: Table 1 (the pure-profile driver), Table 5 (the cached
// selection sweep), the figure curves, and two measured experiments that
// execute transformed programs in the interpreter.
func renderAll(t *testing.T, cfg ExpConfig) string {
	t.Helper()
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(s.Table1().Render())
	b.WriteString(s.Table5().Render())
	figs := s.Figures()
	b.WriteString(FigureTable(figs).Render())
	for _, f := range figs {
		b.WriteString(RenderFigure(f))
	}
	mt, err := s.MeasuredReplication(5)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(mt.Render())
	ct, err := s.CrossDataset()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(ct.Render())
	return b.String()
}

// TestParallelDeterminism is the engine's core regression test: the same
// experiments rendered at -parallel 1 (the inline sequential path) and at
// -parallel 8 must be byte-identical. Results merge by job index, never by
// completion order, and the artifact cache single-flights shared work, so
// scheduling must not be observable in any output byte.
func TestParallelDeterminism(t *testing.T) {
	cfg := QuickConfig()
	cfg.Budget = 30_000

	cfg.Parallel = 1
	seq := renderAll(t, cfg)

	cfg.Parallel = 8
	for round := 0; round < 3; round++ {
		par := renderAll(t, cfg)
		if par != seq {
			t.Fatalf("round %d: parallel output differs from sequential\nseq %d bytes, par %d bytes\nfirst divergence at byte %d",
				round, len(seq), len(par), firstDiff(seq, par))
		}
	}
}

func firstDiff(a, b string) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestParallelDeterminismAcrossWorkerCounts sweeps worker counts on the
// cheapest driver to catch off-by-one distribution bugs (workers > jobs,
// workers == jobs, workers < jobs).
func TestParallelDeterminismAcrossWorkerCounts(t *testing.T) {
	cfg := QuickConfig()
	cfg.Budget = 20_000
	render := func(p int) string {
		cfg.Parallel = p
		s, err := NewSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Table1().Render()
	}
	want := render(1)
	for _, p := range []int{2, 3, 7, 8, 16} {
		if got := render(p); got != want {
			t.Fatalf("parallel=%d: Table 1 differs from sequential", p)
		}
	}
}
