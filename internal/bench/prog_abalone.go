package bench

// abaloneSrc is the stand-in for the paper's "abalone" benchmark: a board
// game played by alpha-beta (negamax) search. The game is a four-pile
// subtraction game with a positional evaluation, searched to a fixed depth
// with cut-offs and move ordering — the same highly data-dependent,
// recursion-heavy branch behaviour as a real game program.
const abaloneSrc = `
// abalone: alpha-beta game search workload.

var wseed int = 12345;
var wscale int = 8;

var seed int;

func rand() int {
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}

var piles [4]int;
var nodes int;
var cutoffs int;
var evals int;

// eval scores the position for the side to move: pile parity and nim-sum
// flavoured heuristics, full of data-dependent branches.
func eval() int {
    evals = evals + 1;
    var x int = piles[0] ^ piles[1] ^ piles[2] ^ piles[3];
    var score int = 0;
    if x == 0 {
        score = -20;
    } else {
        score = 10;
    }
    var odd int = 0;
    for var i int = 0; i < 4; i = i + 1 {
        if piles[i] % 2 == 1 {
            odd = odd + 1;
        }
        if piles[i] > 6 {
            score = score + 2;
        }
    }
    if odd >= 2 {
        score = score + odd;
    }
    return score;
}

func gameOver() bool {
    return piles[0] == 0 && piles[1] == 0 && piles[2] == 0 && piles[3] == 0;
}

// Killer-move tables per search depth and a history heuristic over
// (pile, take) move coordinates: both standard alpha-beta move-ordering
// devices, full of data-dependent branches.
var killerP [16]int;
var killerT [16]int;
var hist [16]int; // indexed p*4 + take

func moveScore(p int, take int, depth int) int {
    var s int = hist[p * 4 + take];
    if depth >= 0 && depth < 16 {
        if killerP[depth] == p && killerT[depth] == take {
            s = s + 1000000;
        }
    }
    return s;
}

func recordCutoff(p int, take int, depth int) {
    cutoffs = cutoffs + 1;
    if depth >= 0 && depth < 16 {
        killerP[depth] = p;
        killerT[depth] = take;
    }
    hist[p * 4 + take] = hist[p * 4 + take] + depth * depth + 1;
    if hist[p * 4 + take] > 100000000 {
        // Age the history table so it keeps discriminating.
        for var i int = 0; i < 16; i = i + 1 {
            hist[i] = hist[i] / 2;
        }
    }
}

// negamax searches taking 1..3 stones from any non-empty pile, visiting
// moves in decreasing ordering score.
func negamax(depth int, alpha int, beta int) int {
    nodes = nodes + 1;
    if gameOver() {
        return -100 - depth; // previous player took the last stone and won
    }
    if depth == 0 {
        return eval();
    }
    var best int = -10000;
    var done bool = false;
    // Visit the 12 possible moves best-ordered: repeatedly pick the
    // unvisited legal move with the highest ordering score.
    var visited int = 0; // bitmask over p*3 + (take-1)
    while !done {
        var bp int = -1;
        var bt int = 0;
        var bs int = -1;
        for var p int = 0; p < 4; p = p + 1 {
            var avail int = min(piles[p], 3);
            for var take int = 1; take <= avail; take = take + 1 {
                var bit int = 1 << (p * 3 + take - 1);
                if (visited & bit) == 0 {
                    var s int = moveScore(p, take, depth);
                    if s > bs {
                        bs = s;
                        bp = p;
                        bt = take;
                    }
                }
            }
        }
        if bp < 0 {
            done = true;
        } else {
            visited = visited | (1 << (bp * 3 + bt - 1));
            piles[bp] = piles[bp] - bt;
            var v int = -negamax(depth - 1, -beta, -alpha);
            piles[bp] = piles[bp] + bt;
            if v > best {
                best = v;
            }
            if best > alpha {
                alpha = best;
            }
            if alpha >= beta {
                recordCutoff(bp, bt, depth);
                done = true;
            }
        }
    }
    return best;
}

// playGame plays one full game with both sides using search.
func playGame(depth int) int {
    var moves int = 0;
    while !gameOver() && moves < 64 {
        // Choose the best root move by one-ply-deeper search.
        var bestP int = -1;
        var bestT int = 0;
        var bestV int = -10000;
        for var p int = 0; p < 4; p = p + 1 {
            var avail int = min(piles[p], 3);
            for var take int = 1; take <= avail; take = take + 1 {
                piles[p] = piles[p] - take;
                var v int = -negamax(depth, -10000, 10000);
                piles[p] = piles[p] + take;
                if v > bestV {
                    bestV = v;
                    bestP = p;
                    bestT = take;
                }
            }
        }
        if bestP < 0 {
            moves = 64;
        } else {
            piles[bestP] = piles[bestP] - bestT;
            moves = moves + 1;
        }
    }
    return moves;
}

func main() int {
    seed = wseed;
    var total int = 0;
    for var g int = 0; g < wscale; g = g + 1 {
        for var i int = 0; i < 4; i = i + 1 {
            piles[i] = 3 + rand() % 7;
        }
        var depth int = 3;
        total = total + playGame(depth);
    }
    print(total);
    print(nodes);
    print(cutoffs);
    print(evals);
    return nodes;
}
`
