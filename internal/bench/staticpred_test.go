package bench

import (
	"testing"

	"repro/internal/analysis"
)

func TestStaticPredictionShape(t *testing.T) {
	s := testSuite(t)
	tab := s.StaticPrediction()
	if len(tab.Cols) != len(s.Data)+1 || tab.Cols[len(tab.Cols)-1] != "all" {
		t.Fatalf("columns %v must be the workloads plus an aggregate", tab.Cols)
	}
	if len(tab.Rows) != len(staticPredRows)+1 {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(staticPredRows)+1)
	}
	for _, r := range tab.Rows {
		if len(r.Cells) != len(tab.Cols) {
			t.Fatalf("row %q has %d cells for %d columns", r.Name, len(r.Cells), len(tab.Cols))
		}
	}
	decided := rowByName(t, tab, "sccp-decided sites")
	for _, c := range decided.Cells {
		if !c.Count {
			t.Fatal("decided row must hold counts, not rates")
		}
	}
}

// TestStaticHeuristicBeatsAlwaysTaken pins the acceptance criterion: on
// the catalog aggregate ("all" column), the Dempster–Shafer heuristic
// engine mispredicts less than the always-taken baseline — and, being
// profile-free, cannot be expected to beat the profiled oracle.
func TestStaticHeuristicBeatsAlwaysTaken(t *testing.T) {
	s := testSuite(t)
	tab := s.StaticPrediction()
	agg := func(name string) float64 {
		r := rowByName(t, tab, name)
		c := r.Cells[len(r.Cells)-1]
		if !c.Valid {
			t.Fatalf("row %q has no aggregate", name)
		}
		return c.Value
	}
	heur, always, oracle := agg("static heuristic"), agg("always taken"), agg("profile")
	if heur >= always {
		t.Fatalf("static heuristic (%.2f%%) does not beat always-taken (%.2f%%)", heur, always)
	}
	if heur < oracle {
		t.Fatalf("profile-free heuristic (%.2f%%) beats the profiled oracle (%.2f%%): scoring bug", heur, oracle)
	}
}

// TestStaticDecidedSoundCatalog checks every SCCP claim against the
// recorded catalog traces: a branch proven one-way must never be observed
// going the other way in the profiling run of any workload.
func TestStaticDecidedSoundCatalog(t *testing.T) {
	s := testSuite(t)
	for _, d := range s.Data {
		rep, err := s.staticReportFor(d)
		if err != nil {
			t.Fatalf("%s: %v", d.C.Workload.Name, err)
		}
		if len(rep.Sites) != d.C.NSites {
			t.Fatalf("%s: report has %d sites, workload %d", d.C.Workload.Name, len(rep.Sites), d.C.NSites)
		}
		counts := d.Prof.Counts
		for i := range rep.Sites {
			switch rep.Sites[i].Fact {
			case analysis.FactAlwaysTaken:
				if counts.NotTaken[i] != 0 {
					t.Errorf("%s site %d: proven always-taken, observed not-taken %d times",
						d.C.Workload.Name, i, counts.NotTaken[i])
				}
			case analysis.FactNeverTaken:
				if counts.Taken[i] != 0 {
					t.Errorf("%s site %d: proven dead-branch, observed taken %d times",
						d.C.Workload.Name, i, counts.Taken[i])
				}
			case analysis.FactUnreachable:
				if counts.Taken[i]+counts.NotTaken[i] != 0 {
					t.Errorf("%s site %d: proven unreachable, but executed", d.C.Workload.Name, i)
				}
			}
		}
	}
}
