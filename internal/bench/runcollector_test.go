package bench

import (
	"bytes"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/progen"
	"repro/internal/trace"
)

// slabFromSource compiles a BL program and records its branch trace into
// a sealed slab. Returns nil when the source does not compile (fuzz
// inputs) — there is nothing to compare then.
func slabFromSource(src string, budget uint64) *trace.Slab {
	prog, err := lang.Compile(src)
	if err != nil {
		return nil
	}
	prog.NumberBranches(true)
	m := interp.New(prog)
	m.MaxBranches = budget
	m.MaxSteps = 2_000_000
	s := trace.NewSlab(0)
	m.Rec = s
	m.Run() // a limit trap still leaves a valid prefix trace
	s.Seal()
	return s
}

func probeEvents(nsites int) []trace.Event {
	evs := make([]trace.Event, 0, 4*nsites+16)
	for i := 0; i < 4*nsites+16; i++ {
		evs = append(evs, trace.Event{Site: int32(i % nsites), Taken: i%3 != 1})
	}
	return evs
}

func compareCounts(t *testing.T, label string, a, b *trace.Counts) {
	t.Helper()
	for i := range a.Taken {
		if a.Taken[i] != b.Taken[i] || a.NotTaken[i] != b.NotTaken[i] {
			t.Fatalf("%s: site %d counts diverge: %d/%d vs %d/%d",
				label, i, a.Taken[i], a.NotTaken[i], b.Taken[i], b.NotTaken[i])
		}
	}
}

func comparePairs(t *testing.T, label string, a, b []profile.Pair) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: table sizes diverge: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: slot %d diverges: %v vs %v", label, i, a[i], b[i])
		}
	}
}

func compareProfiles(t *testing.T, label string, a, b *profile.Profile) {
	t.Helper()
	compareCounts(t, label+"/counts", a.Counts, b.Counts)
	if a.Local.Recorded() != b.Local.Recorded() {
		t.Fatalf("%s: local recorded %d vs %d", label, a.Local.Recorded(), b.Local.Recorded())
	}
	if a.Global.Recorded() != b.Global.Recorded() {
		t.Fatalf("%s: global recorded %d vs %d", label, a.Global.Recorded(), b.Global.Recorded())
	}
	if a.Path.Recorded() != b.Path.Recorded() {
		t.Fatalf("%s: path recorded %d vs %d", label, a.Path.Recorded(), b.Path.Recorded())
	}
	if a.Streams.Total() != b.Streams.Total() {
		t.Fatalf("%s: streams total %d vs %d", label, a.Streams.Total(), b.Streams.Total())
	}
	for s := int32(0); int(s) < a.NSites; s++ {
		comparePairs(t, label+"/local", a.Local.Table(s), b.Local.Table(s))
		comparePairs(t, label+"/global", a.Global.Table(s), b.Global.Table(s))
		at, bt := a.Path.Table(s), b.Path.Table(s)
		if len(at) != len(bt) {
			t.Fatalf("%s: path site %d table size %d vs %d", label, s, len(at), len(bt))
		}
		for k, ap := range at {
			bp := bt[k]
			if bp == nil || *ap != *bp {
				t.Fatalf("%s: path site %d key %v diverges: %v vs %v", label, s, k, ap, bp)
			}
		}
		as, bs := a.Streams.Site(s), b.Streams.Site(s)
		if as.Len() != bs.Len() {
			t.Fatalf("%s: stream site %d length %d vs %d", label, s, as.Len(), bs.Len())
		}
		for i := 0; i < as.Len(); i++ {
			if as.Get(i) != bs.Get(i) {
				t.Fatalf("%s: stream site %d bit %d diverges", label, s, i)
			}
		}
	}
}

func compareEvals(t *testing.T, label string, nsites int, a, b *predict.Eval) {
	t.Helper()
	if a.Misses != b.Misses || a.Total != b.Total {
		t.Fatalf("%s: misses %d/%d vs %d/%d", label, a.Misses, a.Total, b.Misses, b.Total)
	}
	for s := int32(0); int(s) < nsites; s++ {
		if a.P.Predict(s) != b.P.Predict(s) {
			t.Fatalf("%s: site %d prediction diverges after replay", label, s)
		}
	}
}

// checkRunEquivalence is the differential comparator: every run-aware
// collector in profile and predict, replayed run-at-a-time, must end
// bit-identical to its event-at-a-time twin — both in its observable
// tables/counters and in its hidden register state, which the probe
// suffix (shared extra events recorded per-branch on both sides) exposes.
func checkRunEquivalence(t *testing.T, s *trace.Slab) {
	t.Helper()
	var max trace.MaxSite
	s.ReplayInto(&max)
	nsites := max.N
	if nsites == 0 {
		return
	}
	probe := probeEvents(nsites)

	evC, runC := trace.NewCounts(nsites), trace.NewCounts(nsites)
	s.Replay(evC.RecordBranch)
	s.ReplayRuns(runC.RecordRun)
	compareCounts(t, "counts", evC, runC)

	// Small history lengths reach the absorbing state quickly, long ones
	// stress the transient path; both must agree with per-event replay,
	// as must the fused ReplayInto production path.
	for _, opt := range []profile.Options{
		{LocalK: 2, GlobalK: 2, PathM: 1},
		{LocalK: 4, GlobalK: 3, PathM: 2},
		{}, // paper defaults 9/9/3
		{LocalK: 11, GlobalK: 11, PathM: 4},
	} {
		ev := profile.New(nsites, opt)
		run := profile.New(nsites, opt)
		into := profile.New(nsites, opt)
		s.Replay(ev.RecordBranch)
		s.ReplayRuns(run.RecordRun)
		s.ReplayInto(into)
		label := "profile"
		compareProfiles(t, label, ev, run)
		compareProfiles(t, label+"/into", ev, into)
		for _, pe := range probe {
			ev.RecordBranch(pe.Site, pe.Taken)
			run.RecordBranch(pe.Site, pe.Taken)
		}
		compareProfiles(t, label+"/probed", ev, run)
	}

	mkPredictors := func() []predict.Predictor {
		return []predict.Predictor{
			predict.NewLastDirection(nsites),
			predict.NewTwoBit(nsites),
			predict.NewTwoLevel(predict.PaperTwoLevel()),
			predict.NewGShare(10),
			predict.NewCombining(predict.NewLastDirection(nsites), predict.NewTwoBit(nsites), nsites),
		}
	}
	evPs, runPs := mkPredictors(), mkPredictors()
	for i := range evPs {
		ev := &predict.Eval{P: evPs[i]}
		run := &predict.Eval{P: runPs[i]}
		s.Replay(ev.RecordBranch)
		s.ReplayRuns(run.RecordRun)
		label := "predict/" + ev.P.Name()
		compareEvals(t, label, nsites, ev, run)
		for _, pe := range probe {
			ev.RecordBranch(pe.Site, pe.Taken)
			run.RecordBranch(pe.Site, pe.Taken)
		}
		compareEvals(t, label+"/probed", nsites, ev, run)
	}

	preds := make([]ir.Prediction, nsites)
	for i := range preds {
		preds[i] = []ir.Prediction{ir.PredTaken, ir.PredNotTaken, ir.PredNone}[i%3]
	}
	evS := &predict.StaticScore{Preds: preds}
	runS := &predict.StaticScore{Preds: preds}
	s.Replay(evS.RecordBranch)
	s.ReplayRuns(runS.RecordRun)
	if evS.Predicted != runS.Predicted || evS.Mispredicted != runS.Mispredicted {
		t.Fatalf("static score diverges: %d/%d vs %d/%d",
			evS.Mispredicted, evS.Predicted, runS.Mispredicted, runS.Predicted)
	}
}

// TestRunCollectorEquivalenceWorkloads runs the differential comparator
// deterministically over the catalog workloads and a spread of generated
// programs, so plain `go test` covers the contract without fuzzing.
func TestRunCollectorEquivalenceWorkloads(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			s := slabFromSource(w.Source, 100_000)
			if s == nil {
				t.Fatal("workload failed to compile")
			}
			checkRunEquivalence(t, s)
		})
	}
	for seed := int64(1); seed <= 12; seed++ {
		s := slabFromSource(progen.Generate(seed, progen.DefaultConfig()), 50_000)
		if s == nil {
			t.Fatalf("progen seed %d failed to compile", seed)
		}
		checkRunEquivalence(t, s)
	}
}

// FuzzRunCollectorEquivalence fuzzes the same contract: for any program
// the frontend accepts and any branch budget, run-aware replay must be
// bit-identical to event-at-a-time replay for every collector in profile
// and predict.
func FuzzRunCollectorEquivalence(f *testing.F) {
	for _, w := range Workloads() {
		f.Add(w.Source, uint64(20_000))
	}
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(progen.Generate(seed, progen.DefaultConfig()), uint64(0))
		f.Add(progen.Generate(seed, progen.DefaultConfig()), uint64(777))
	}
	f.Fuzz(func(t *testing.T, src string, budget uint64) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		if budget == 0 || budget > 100_000 {
			budget = 100_000
		}
		s := slabFromSource(src, budget)
		if s == nil {
			t.Skip() // invalid program: nothing to compare
		}
		checkRunEquivalence(t, s)
	})
}

// TestFusedReplayEncodingProgen pins the fused single-pass fan-out
// (satellite: Multi fusion) at the byte level over generated programs:
// re-encoding a slab through a Writer must produce identical bytes
// whether the Writer is driven event-at-a-time, directly by ReplayInto,
// or as one member of a nested Multi sharing the decode pass with other
// collectors.
func TestFusedReplayEncodingProgen(t *testing.T) {
	for seed := int64(1); seed <= 16; seed++ {
		s := slabFromSource(progen.Generate(seed, progen.DefaultConfig()), 50_000)
		if s == nil {
			t.Fatalf("progen seed %d failed to compile", seed)
		}
		var max trace.MaxSite
		s.ReplayInto(&max)
		nsites := max.N
		if nsites == 0 {
			continue
		}

		var oldBuf, directBuf, multiBuf bytes.Buffer
		oldW, err := trace.NewWriter(&oldBuf)
		if err != nil {
			t.Fatal(err)
		}
		s.ReplayAll(oldW.RecordBranch, oldW.RecordSwitch)
		if err := oldW.Close(); err != nil {
			t.Fatal(err)
		}

		directW, err := trace.NewWriter(&directBuf)
		if err != nil {
			t.Fatal(err)
		}
		s.ReplayInto(directW)
		if err := directW.Close(); err != nil {
			t.Fatal(err)
		}

		multiW, err := trace.NewWriter(&multiBuf)
		if err != nil {
			t.Fatal(err)
		}
		fusedCounts := trace.NewCounts(nsites)
		soloCounts := trace.NewCounts(nsites)
		s.ReplayInto(trace.Multi{fusedCounts, trace.Multi{multiW}})
		s.ReplayInto(soloCounts)
		if err := multiW.Close(); err != nil {
			t.Fatal(err)
		}

		if !bytes.Equal(oldBuf.Bytes(), directBuf.Bytes()) {
			t.Fatalf("seed %d: ReplayInto(Writer) bytes differ from event-at-a-time (%d vs %d)",
				seed, directBuf.Len(), oldBuf.Len())
		}
		if !bytes.Equal(oldBuf.Bytes(), multiBuf.Bytes()) {
			t.Fatalf("seed %d: fused Multi writer bytes differ from event-at-a-time (%d vs %d)",
				seed, multiBuf.Len(), oldBuf.Len())
		}
		compareCounts(t, "fused multi counts", soloCounts, fusedCounts)
	}
}
