package bench

import (
	"repro/internal/ir"
	"repro/internal/predict"
	"repro/internal/replicate"
	"repro/internal/statemachine"
)

// JointTable runs the §6 joint-machine experiment: the same strategy
// selection applied sequentially (per-branch machines, same-loop branches
// multiply copies) versus jointly (one minimised machine per loop), both
// measured by executing the transformed programs. Joint replication should
// match the sequential misprediction rate at equal or lower code size.
func (s *Suite) JointTable() (*Table, error) {
	t := &Table{
		ID:    "joint",
		Title: "Sequential vs joint (§6) replication: measured rate and size factor",
		Cols:  s.colNames(),
	}
	var seqRate, seqSize, jointRate, jointSize Row
	seqRate.Name = "sequential rate"
	jointRate.Name = "joint rate"
	seqSize.Name = "sequential size factor"
	jointSize.Name = "joint size factor"
	const maxStates = 4
	for _, d := range s.Data {
		static := predict.ProfileStatic(d.Prof.Counts)
		choices := statemachine.Select(d.Prof, d.C.Features, statemachine.Options{
			MaxStates:  maxStates,
			MaxPathLen: 1,
		})
		runCfg := RunConfig{Budget: s.Cfg.Budget, Seed: s.Cfg.Seed, Scale: scaleFor(s.Cfg)}

		seq := ir.CloneProgram(d.C.Prog)
		seqStats, err := replicate.ApplyOpts(seq, choices, static.Preds, replicate.Options{MaxSizeFactor: 4})
		if err != nil {
			return nil, err
		}
		sc, err := measuredRate(seq, runCfg)
		if err != nil {
			return nil, err
		}
		seqRate.Cells = append(seqRate.Cells, sc)
		seqSize.Cells = append(seqSize.Cells, Cell{Value: seqStats.SizeFactor(), Valid: true})

		joint := ir.CloneProgram(d.C.Prog)
		jointStats, err := replicate.ApplyJoint(joint, choices, static.Preds, replicate.Options{MaxSizeFactor: 4})
		if err != nil {
			return nil, err
		}
		jc, err := measuredRate(joint, runCfg)
		if err != nil {
			return nil, err
		}
		jointRate.Cells = append(jointRate.Cells, jc)
		jointSize.Cells = append(jointSize.Cells, Cell{Value: jointStats.SizeFactor(), Valid: true})
	}
	t.Rows = append(t.Rows, seqRate, jointRate, seqSize, jointSize)
	return t, nil
}
