package bench

import (
	"repro/internal/ir"
	"repro/internal/predict"
	"repro/internal/replicate"
	"repro/internal/runner"
	"repro/internal/statemachine"
)

// JointTable runs the §6 joint-machine experiment: the same strategy
// selection applied sequentially (per-branch machines, same-loop branches
// multiply copies) versus jointly (one minimised machine per loop), both
// measured by executing the transformed programs. Joint replication should
// match the sequential misprediction rate at equal or lower code size.
// One parallel job per workload.
func (s *Suite) JointTable() (*Table, error) {
	t := &Table{
		ID:    "joint",
		Title: "Sequential vs joint (§6) replication: measured rate and size factor",
	}
	const maxStates = 4
	type col struct{ seqRate, jointRate, seqSize, jointSize Cell }
	cols, err := runner.Map(s.eng, s.Data, func(_ int, d *WorkloadData) (col, error) {
		var c col
		static := predict.ProfileStatic(d.Prof.Counts)
		choices, err := s.selectFor(d, statemachine.Options{
			MaxStates:  maxStates,
			MaxPathLen: 1,
		})
		if err != nil {
			return col{}, err
		}
		runCfg := RunConfig{Budget: s.Cfg.Budget, Seed: s.Cfg.Seed, Scale: scaleFor(s.Cfg)}

		seq := ir.CloneProgram(d.C.Prog)
		seqStats, err := replicate.ApplyOpts(seq, choices, static.Preds, replicate.Options{MaxSizeFactor: 4})
		if err != nil {
			return col{}, err
		}
		c.seqRate, err = s.measuredRate(seq, runCfg)
		if err != nil {
			return col{}, err
		}
		c.seqSize = Cell{Value: seqStats.SizeFactor(), Valid: true}

		joint := ir.CloneProgram(d.C.Prog)
		jointStats, err := replicate.ApplyJoint(joint, choices, static.Preds, replicate.Options{MaxSizeFactor: 4})
		if err != nil {
			return col{}, err
		}
		c.jointRate, err = s.measuredRate(joint, runCfg)
		if err != nil {
			return col{}, err
		}
		c.jointSize = Cell{Value: jointStats.SizeFactor(), Valid: true}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	t.Cols = s.colNames()
	seqRate := Row{Name: "sequential rate"}
	jointRate := Row{Name: "joint rate"}
	seqSize := Row{Name: "sequential size factor"}
	jointSize := Row{Name: "joint size factor"}
	for _, c := range cols {
		seqRate.Cells = append(seqRate.Cells, c.seqRate)
		jointRate.Cells = append(jointRate.Cells, c.jointRate)
		seqSize.Cells = append(seqSize.Cells, c.seqSize)
		jointSize.Cells = append(jointSize.Cells, c.jointSize)
	}
	t.Rows = append(t.Rows, seqRate, jointRate, seqSize, jointSize)
	return t, nil
}
