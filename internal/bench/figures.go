package bench

import (
	"fmt"
	"math"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/runner"
	"repro/internal/statemachine"
)

// FigPoint is one point of a misprediction-vs-code-size curve.
type FigPoint struct {
	// SizeFactor is program size relative to the original (1.0 = no
	// replication).
	SizeFactor float64
	// MissRate is the predicted misprediction rate in percent.
	MissRate float64
	// Steps is the number of greedy state additions taken so far.
	Steps int
}

// Figure is one workload's curve (the paper's Figures 6–13).
type Figure struct {
	Workload string
	Points   []FigPoint
}

// sizeModel captures the analytic code-size model of section 5: a branch
// replicated with an n-state loop/exit machine multiplies its innermost
// natural loop by n (so same-loop branches multiply and different-loop
// branches add), and a correlated branch adds n-1 copies of its block.
type sizeModel struct {
	baseSize float64
	// blocks[i] is the weight of block i; blockSites[i] lists the sites
	// whose innermost loop contains block i.
	blockWeight []float64
	blockSites  [][]int32
	// siteBlockWeight is the branch block weight per site (for path
	// machines).
	siteBlockWeight map[int32]float64
}

func buildSizeModel(c *Compiled) *sizeModel {
	m := &sizeModel{siteBlockWeight: map[int32]float64{}}
	for _, f := range c.Prog.Funcs {
		g := cfg.Build(f)
		lf := cfg.FindLoops(g)
		// innermost loop per site in this function
		loopOf := map[int32]*cfg.Loop{}
		for _, b := range f.Blocks {
			if b.Term.Op == ir.TermBr {
				loopOf[b.Term.Site] = lf.InnermostLoop(b)
				m.siteBlockWeight[b.Term.Site] = float64(len(b.Instrs) + 1)
			}
		}
		for _, b := range f.Blocks {
			w := float64(len(b.Instrs) + 1)
			m.baseSize += w
			var sites []int32
			for s, l := range loopOf {
				if l != nil && l.Contains(b) {
					sites = append(sites, s)
				}
			}
			m.blockWeight = append(m.blockWeight, w)
			m.blockSites = append(m.blockSites, sites)
		}
	}
	return m
}

// size evaluates the model for a state assignment: states[s] is the machine
// size of site s (1 = unreplicated) and kinds[s] its family.
func (m *sizeModel) size(states map[int32]int, kinds map[int32]statemachine.Kind) float64 {
	total := 0.0
	for i, w := range m.blockWeight {
		mult := 1.0
		for _, s := range m.blockSites[i] {
			n := states[s]
			if n > 1 && (kinds[s] == statemachine.KindLoop || kinds[s] == statemachine.KindExit) {
				mult *= float64(n)
			}
		}
		total += w * mult
	}
	for s, n := range states {
		if n > 1 && kinds[s] == statemachine.KindPath {
			total += float64(n-1) * m.siteBlockWeight[s]
		}
	}
	return total
}

// Figures computes the greedy misprediction-vs-size curve for every
// workload: states are added one branch at a time, choosing the step with
// the best (misprediction reduction / size increase) ratio, exactly the
// ordering rule of section 5. The per-size selections are prefetched in
// parallel (cache hits when Table 5 already swept them), then each
// workload's greedy walk is one job.
func (s *Suite) Figures() []Figure {
	levels := append([]int{1}, s.Cfg.Table5States...)
	// Pre-pull selections for every level > 1.
	s.prefetchSelections(levels[1:], true)
	selAt := map[int][][]statemachine.Choice{}
	for _, n := range levels[1:] {
		selAt[n] = s.Selections(n, true)
	}
	figs, _ := runner.Map(s.eng, s.Data, func(wi int, d *WorkloadData) (Figure, error) {
		model := buildSizeModel(d.C)
		nSites := d.C.NSites
		// missEvents[levelIdx][site], normalised to the profile totals.
		miss := make([][]float64, len(levels))
		kind := make([][]statemachine.Kind, len(levels))
		profTotal := make([]float64, nSites)
		var totalEvents float64
		for site := 0; site < nSites; site++ {
			p := profile.Pair{Taken: d.Prof.Counts.Taken[site], NotTaken: d.Prof.Counts.NotTaken[site]}
			profTotal[site] = float64(p.Total())
			totalEvents += float64(p.Total())
		}
		for li, n := range levels {
			miss[li] = make([]float64, nSites)
			kind[li] = make([]statemachine.Kind, nSites)
			for site := 0; site < nSites; site++ {
				p := profile.Pair{Taken: d.Prof.Counts.Taken[site], NotTaken: d.Prof.Counts.NotTaken[site]}
				if li == 0 {
					miss[li][site] = float64(p.Misses())
					kind[li][site] = statemachine.KindProfile
					continue
				}
				c := &selAt[n][wi][site]
				if c.Total == 0 {
					miss[li][site] = float64(p.Misses())
					kind[li][site] = statemachine.KindProfile
					continue
				}
				rate := float64(c.Misses()) / float64(c.Total)
				miss[li][site] = rate * profTotal[site]
				kind[li][site] = c.Kind
			}
		}

		level := make([]int, nSites) // index into levels
		states := map[int32]int{}
		kinds := map[int32]statemachine.Kind{}
		curMiss := 0.0
		for site := 0; site < nSites; site++ {
			curMiss += miss[0][site]
		}
		curSize := model.size(states, kinds)
		fig := Figure{Workload: d.C.Workload.Name}
		point := func(steps int) {
			fig.Points = append(fig.Points, FigPoint{
				SizeFactor: curSize / model.baseSize,
				MissRate:   100 * curMiss / math.Max(totalEvents, 1),
				Steps:      steps,
			})
		}
		point(0)
		const maxSizeFactor = 1000.0
		for step := 1; ; step++ {
			bestSite := -1
			bestRatio := 0.0
			var bestSize float64
			for site := 0; site < nSites; site++ {
				li := level[site]
				if li+1 >= len(levels) {
					continue
				}
				dm := miss[li][site] - miss[li+1][site]
				if dm <= 0 {
					continue
				}
				n := levels[li+1]
				old, oldOK := states[int32(site)]
				oldKind := kinds[int32(site)]
				states[int32(site)] = n
				kinds[int32(site)] = kind[li+1][site]
				sz := model.size(states, kinds)
				if oldOK {
					states[int32(site)] = old
					kinds[int32(site)] = oldKind
				} else {
					delete(states, int32(site))
					delete(kinds, int32(site))
				}
				ds := sz - curSize
				if ds < 0.0001 {
					ds = 0.0001
				}
				ratio := dm / ds
				if ratio > bestRatio {
					bestRatio = ratio
					bestSite = site
					bestSize = sz
				}
			}
			if bestSite < 0 || curSize/model.baseSize > maxSizeFactor {
				break
			}
			li := level[bestSite]
			level[bestSite] = li + 1
			curMiss += miss[li+1][bestSite] - miss[li][bestSite]
			states[int32(bestSite)] = levels[li+1]
			kinds[int32(bestSite)] = kind[li+1][bestSite]
			curSize = bestSize
			point(step)
		}
		return fig, nil
	})
	return figs
}

// Headline summarises the figures at the paper's operating point: the best
// misprediction achievable within a 4/3 size budget, versus plain profile.
type Headline struct {
	Workload      string
	ProfileRate   float64
	BestRate      float64 // anywhere on the curve
	At133Rate     float64 // best within size factor 1.33
	At133Size     float64
	ReductionPct  float64 // 100*(1 - At133Rate/ProfileRate)
	SizeIncrease  float64 // At133Size - 1
	CurveExplored int
}

// Headlines derives the §5 headline numbers from the figures.
func Headlines(figs []Figure) []Headline {
	var out []Headline
	for _, f := range figs {
		h := Headline{Workload: f.Workload, CurveExplored: len(f.Points)}
		if len(f.Points) == 0 {
			out = append(out, h)
			continue
		}
		h.ProfileRate = f.Points[0].MissRate
		h.BestRate = h.ProfileRate
		h.At133Rate = h.ProfileRate
		h.At133Size = 1
		for _, p := range f.Points {
			if p.MissRate < h.BestRate {
				h.BestRate = p.MissRate
			}
			if p.SizeFactor <= 4.0/3.0 && p.MissRate < h.At133Rate {
				h.At133Rate = p.MissRate
				h.At133Size = p.SizeFactor
			}
		}
		if h.ProfileRate > 0 {
			h.ReductionPct = 100 * (1 - h.At133Rate/h.ProfileRate)
		}
		h.SizeIncrease = h.At133Size - 1
		out = append(out, h)
	}
	return out
}

// FigureTable renders the curves in tabular form for EXPERIMENTS.md: a
// fixed grid of size factors with the best rate achieved within each.
func FigureTable(figs []Figure) *Table {
	grid := []float64{1.0, 1.05, 1.1, 1.2, 1.33, 1.5, 2, 3, 5, 10, 100, 1000}
	t := &Table{ID: "figures", Title: "Misprediction rate (%) vs code size factor (Figures 6-13)"}
	for _, f := range figs {
		t.Cols = append(t.Cols, f.Workload)
	}
	for _, g := range grid {
		row := Row{Name: fmt.Sprintf("size ≤ %.2fx", g)}
		for _, f := range figs {
			best := math.Inf(1)
			for _, p := range f.Points {
				if p.SizeFactor <= g+1e-9 && p.MissRate < best {
					best = p.MissRate
				}
			}
			if math.IsInf(best, 1) {
				row.Cells = append(row.Cells, Cell{})
			} else {
				row.Cells = append(row.Cells, Cell{Value: best, Valid: true})
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
