package bench

import (
	"strings"
	"testing"
)

// renderTraceSufficient renders everything the replay engine is allowed to
// serve from recorded traces: Tables 1-5 (Table 2 is the fill-rate table)
// plus the figure curves and headline.
func renderTraceSufficient(t *testing.T, s *Suite) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(s.Table1().Render())
	b.WriteString(s.Table2().Render())
	b.WriteString(s.Table3().Render())
	b.WriteString(s.Table4().Render())
	b.WriteString(s.Table5().Render())
	figs := s.Figures()
	b.WriteString(FigureTable(figs).Render())
	for _, f := range figs {
		b.WriteString(RenderFigure(f))
	}
	b.WriteString(RenderHeadlines(Headlines(figs)))
	return b.String()
}

// TestReplayMatchesLive is the replay engine's core equivalence property:
// a suite driven by recorded traces must render byte-identical results to
// one that interprets every experiment live (ForceLive), at both worker
// counts. Collectors only observe the (site, taken) stream, the recording
// hook captures it exactly, and per-collector replay preserves each
// collector's event order, so no output byte may move.
func TestReplayMatchesLive(t *testing.T) {
	cfg := QuickConfig()
	cfg.Budget = 30_000

	render := func(forceLive bool, parallel int) string {
		cfg.ForceLive = forceLive
		cfg.Parallel = parallel
		s, err := NewSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return renderTraceSufficient(t, s)
	}

	live := render(true, 1)
	for _, p := range []int{1, 8} {
		if got := render(false, p); got != live {
			t.Fatalf("parallel=%d: replay-driven output differs from live\nlive %d bytes, replay %d bytes, first divergence at byte %d",
				p, len(live), len(got), firstDiff(live, got))
		}
	}
}

// TestReplayMatchesLiveMeasured extends the equivalence to the measured
// experiments' replay-served rows: the profile-baseline row of
// MeasuredReplication (scored over the trace instead of annotating and
// running a clone) and the cross-dataset counts.
func TestReplayMatchesLiveMeasured(t *testing.T) {
	cfg := QuickConfig()
	cfg.Budget = 30_000

	render := func(forceLive bool) string {
		cfg.ForceLive = forceLive
		s, err := NewSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		mt, err := s.MeasuredReplication(5)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(mt.Render())
		ct, err := s.CrossDataset()
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(ct.Render())
		lt, err := s.LayoutTable()
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(lt.Render())
		st, err := s.ScopeTable()
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(st.Render())
		return b.String()
	}

	live := render(true)
	if got := render(false); got != live {
		t.Fatalf("replay-served measured rows differ from live\nfirst divergence at byte %d", firstDiff(live, got))
	}
}

// TestRecordOncePerWorkload asserts the engine counters that back the
// record-once claim: serving every trace-sufficient experiment costs
// exactly one recording per workload and zero live interpreter runs;
// adding the cross-dataset experiment costs exactly one more recording per
// workload (the alternate dataset) plus the transformed-clone runs.
func TestRecordOncePerWorkload(t *testing.T) {
	cfg := QuickConfig()
	cfg.Budget = 20_000
	cfg.Parallel = 1
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderTraceSufficient(t, s)

	n := int64(len(Workloads()))
	st := s.Engine().Stats()
	if st.TraceRecords != n {
		t.Fatalf("trace-sufficient experiments recorded %d traces, want %d (one per workload)", st.TraceRecords, n)
	}
	if st.LiveRuns != 0 {
		t.Fatalf("trace-sufficient experiments used %d live runs, want 0", st.LiveRuns)
	}
	if st.Replays == 0 || st.ReplayedEvents == 0 {
		t.Fatalf("no replays counted: %+v", st)
	}

	if _, err := s.CrossDataset(); err != nil {
		t.Fatal(err)
	}
	st = s.Engine().Stats()
	if st.TraceRecords != 2*n {
		t.Fatalf("after cross-dataset: %d recordings, want %d (two seeds per workload)", st.TraceRecords, 2*n)
	}
	if want := 2 * n; st.LiveRuns != want { // replicated clone on both datasets
		t.Fatalf("after cross-dataset: %d live runs, want %d", st.LiveRuns, want)
	}

	// Repeating any trace-sufficient experiment must not interpret again.
	s.Table1()
	s.Table4()
	if st2 := s.Engine().Stats(); st2.TraceRecords != st.TraceRecords || st2.LiveRuns != st.LiveRuns {
		t.Fatalf("repeated tables re-interpreted: before %+v, after %+v", st, st2)
	}
}

// TestForceLiveCounters pins the other side of the capability split: a
// ForceLive suite must never record or replay.
func TestForceLiveCounters(t *testing.T) {
	cfg := QuickConfig()
	cfg.Budget = 20_000
	cfg.Parallel = 1
	cfg.ForceLive = true
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Table1()
	st := s.Engine().Stats()
	if st.TraceRecords != 0 || st.Replays != 0 {
		t.Fatalf("ForceLive suite touched the trace engine: %+v", st)
	}
	if st.LiveRuns != int64(len(Workloads())) {
		t.Fatalf("ForceLive profiling used %d live runs, want %d", st.LiveRuns, len(Workloads()))
	}
}

// TestArtifactMatchesProfile cross-checks the artifact against the
// replayed profile: the recorded event count must equal both the machine
// counter and the per-site totals accumulated by replay.
func TestArtifactMatchesProfile(t *testing.T) {
	cfg := QuickConfig()
	cfg.Budget = 25_000
	cfg.Parallel = 1
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Data {
		if d.Art == nil {
			t.Fatalf("%s: no artifact", d.C.Workload.Name)
		}
		if d.Art.Trace.Len() != d.Branches {
			t.Fatalf("%s: trace has %d events, machine counted %d branches",
				d.C.Workload.Name, d.Art.Trace.Len(), d.Branches)
		}
		if got := d.Prof.Counts.TotalAll(); got != d.Branches {
			t.Fatalf("%s: replayed counts total %d, want %d", d.C.Workload.Name, got, d.Branches)
		}
		if d.Branches != cfg.Budget {
			t.Fatalf("%s: budget-truncated run recorded %d events, want %d",
				d.C.Workload.Name, d.Branches, cfg.Budget)
		}
	}
}
