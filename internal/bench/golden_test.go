package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"testing"

	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/trace"
)

// Golden-trace regression: one slab per catalog workload, recorded with
// the reference interpreter at a fixed (budget, seed, scale) cell and
// pinned by SHA-256 of its serialized (BLTRACE1) bytes. The hashes below
// were produced by the interpreter and are committed; the test then
// demands the vm backend reproduce the identical byte stream. This pins
// the branch-event plane across time (a workload or trace-format change
// must update the hash deliberately) and across backends (the vm cannot
// drift from the interpreter without failing here). No network, no
// timing dependence — the runs are deterministic.
const (
	goldenBudget = 100_000
	goldenSeed   = 1
	goldenScale  = 1 << 30
)

var goldenTraceSHA256 = map[string]string{
	"abalone":   "e4ee9b85549c67fdcd1faa353366ca03500bb4f4cef8e1a0049072712527f96c",
	"cc":        "4016a32b3a2930b11a2d445b0c2da8eb0941ad12ac30ada7a54c235e7185dc6d",
	"compress":  "cd80167270b8ec3a4e80aa2c044cf3626061a7f1aeb221db8405348b170abe54",
	"doduc":     "fb38a4ba30a1ff4f544975124156f6176de1c645968e4d8d25fe656bb0308231",
	"ghostview": "609c7cfb28622fb1ab527da4744b30f8ba1478deedf3e4973ca642d06412e036",
	"predict":   "cbf20dc6a79dfd7e2c65df9457d169c4b861332747e2f3d80d4e40852e0f70c6",
	"prolog":    "c3f796637b1f4027032eef8629fa6f77426b2f71cd83777016e44cc9b623da80",
	"scheduler": "d35f6238980cba7a79db2e90cb7fd5de6d2e45fe7fc7b1dddec6752b9d3357a1",
}

// goldenRecord runs one workload on the given backend under the golden
// cell and returns the serialized slab plus the run counters.
func goldenRecord(t *testing.T, c *Compiled, be exec.Backend) ([]byte, exec.Counters) {
	t.Helper()
	ep, err := c.execProgram(be)
	if err != nil {
		t.Fatalf("%s: compile on %s: %v", c.Workload.Name, be.Name(), err)
	}
	m := ep.NewMachine()
	m.SetMaxBranches(goldenBudget)
	slab := trace.NewSlab(goldenBudget)
	m.SetRec(slab)
	if err := m.SetGlobal("wseed", goldenSeed); err != nil {
		t.Fatalf("%s: wseed: %v", c.Workload.Name, err)
	}
	if err := m.SetGlobal("wscale", goldenScale); err != nil {
		t.Fatalf("%s: wscale: %v", c.Workload.Name, err)
	}
	if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
		t.Fatalf("%s: run on %s: %v", c.Workload.Name, be.Name(), err)
	}
	slab.Seal()
	var buf bytes.Buffer
	if _, err := slab.WriteTo(&buf); err != nil {
		t.Fatalf("%s: serialize: %v", c.Workload.Name, err)
	}
	return buf.Bytes(), m.Counters()
}

func TestGoldenTraces(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, ok := goldenTraceSHA256[w.Name]
			if !ok {
				t.Fatalf("no golden hash committed for workload %q — add it to goldenTraceSHA256", w.Name)
			}
			c, err := Compile(w)
			if err != nil {
				t.Fatal(err)
			}
			ibuf, ic := goldenRecord(t, c, exec.Interp)
			sum := sha256.Sum256(ibuf)
			if got := hex.EncodeToString(sum[:]); got != want {
				t.Errorf("interpreter trace hash drifted:\n  got  %s\n  want %s\n(if the workload or trace format changed deliberately, update goldenTraceSHA256)", got, want)
			}
			vbuf, vc := goldenRecord(t, c, exec.VM)
			if !bytes.Equal(ibuf, vbuf) {
				t.Errorf("vm trace differs from interpreter trace (%d vs %d bytes)", len(ibuf), len(vbuf))
			}
			if ic != vc {
				t.Errorf("counters diverge:\n  interp %+v\n  vm     %+v", ic, vc)
			}
		})
	}
	if len(goldenTraceSHA256) != len(Workloads()) {
		t.Errorf("goldenTraceSHA256 has %d entries, catalog has %d workloads", len(goldenTraceSHA256), len(Workloads()))
	}
}
