package bench

// ghostviewSrc is the stand-in for the paper's "ghostview" (a PostScript
// previewer): a stack-machine interpreter executing a synthetic page
// description — path construction, transforms, clipping tests, and fills —
// whose dispatch chain produces long sequences of correlated branches.
const ghostviewSrc = `
// ghostview: stack-machine page interpreter workload.

var wseed int = 777;
var wscale int = 40;

var seed int;

func rand() int {
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}

// Operators: 0=push 1=add 2=sub 3=mul 4=dup 5=swap 6=pop
// 7=moveto 8=lineto 9=closepath 10=fill 11=translate 12=scale
var prog [16384]int;
var parg [16384]int;
var nprog int;

// Motif library: real pages repeat a small set of glyph/path shapes, so
// page programs are highly repetitive. Each motif is a short op sequence;
// genPage emits whole motifs chosen from a skewed distribution, which
// gives the interpreter's dispatch branches the strong inter-branch
// correlation real PostScript has.
var motifOps [64]int;
var motifArgs [64]int;
var motifStart [9]int;
var motifLen [8]int;
var nmotifs int;

func emitMotifOp(op int, arg int) {
    motifOps[motifStart[nmotifs] + motifLen[nmotifs]] = op;
    motifArgs[motifStart[nmotifs] + motifLen[nmotifs]] = arg;
    motifLen[nmotifs] = motifLen[nmotifs] + 1;
}

func endMotif() {
    motifStart[nmotifs + 1] = motifStart[nmotifs] + motifLen[nmotifs];
    nmotifs = nmotifs + 1;
}

func buildMotifs() {
    nmotifs = 0;
    motifStart[0] = 0;
    for var i int = 0; i < 8; i = i + 1 {
        motifLen[i] = 0;
    }
    // Motif 0: a box outline (moveto + 4 linetos + close).
    emitMotifOp(0, 100); emitMotifOp(0, 100); emitMotifOp(7, 0);
    emitMotifOp(0, 300); emitMotifOp(0, 100); emitMotifOp(8, 0);
    emitMotifOp(0, 300); emitMotifOp(0, 200); emitMotifOp(8, 0);
    emitMotifOp(9, 0);
    endMotif();
    // Motif 1: a filled glyph stroke.
    emitMotifOp(0, 40); emitMotifOp(0, 60); emitMotifOp(7, 0);
    emitMotifOp(0, 45); emitMotifOp(0, 90); emitMotifOp(8, 0);
    emitMotifOp(10, 0);
    endMotif();
    // Motif 2: arithmetic positioning burst.
    emitMotifOp(0, 12); emitMotifOp(4, 0); emitMotifOp(3, 0);
    emitMotifOp(0, 7); emitMotifOp(1, 0); emitMotifOp(6, 0);
    endMotif();
    // Motif 3: long polyline segment.
    emitMotifOp(0, 500); emitMotifOp(0, 120); emitMotifOp(8, 0);
    endMotif();
    // Motif 4: transform change.
    emitMotifOp(11, 2); emitMotifOp(12, 1);
    endMotif();
    // Motif 5: stack housekeeping.
    emitMotifOp(0, 3); emitMotifOp(4, 0); emitMotifOp(5, 0); emitMotifOp(6, 0);
    endMotif();
    // Motif 6: fill what was built.
    emitMotifOp(10, 0);
    endMotif();
    // Motif 7: cursor reset.
    emitMotifOp(0, 0); emitMotifOp(0, 0); emitMotifOp(7, 0);
    endMotif();
}

// genPage emits a page as a stream of motifs with a skewed, bursty
// distribution (polylines repeat many times in a row), plus occasional
// random coordinates to vary the data without changing the op structure.
func genPage() {
    nprog = 0;
    var burst int = 0;
    var cur int = 0;
    while nprog < 15800 {
        if burst <= 0 {
            var r int = rand() % 100;
            if r < 45 {
                cur = 3; // polyline runs dominate
                burst = 3 + rand() % 12;
            } else if r < 60 {
                cur = 1;
                burst = 1 + rand() % 3;
            } else if r < 70 {
                cur = 0;
                burst = 1;
            } else if r < 80 {
                cur = 2;
                burst = 1 + rand() % 2;
            } else if r < 88 {
                cur = 5;
                burst = 1;
            } else if r < 93 {
                cur = 7;
                burst = 1;
            } else if r < 97 {
                cur = 6;
                burst = 1;
            } else {
                cur = 4;
                burst = 1;
            }
        }
        var s int = motifStart[cur];
        for var j int = 0; j < motifLen[cur]; j = j + 1 {
            prog[nprog] = motifOps[s + j];
            if motifOps[s + j] == 0 {
                // Perturb pushed coordinates so the data varies.
                parg[nprog] = (motifArgs[s + j] + rand() % 50) % 1000;
            } else {
                parg[nprog] = motifArgs[s + j];
            }
            nprog = nprog + 1;
        }
        burst = burst - 1;
    }
}

var stack [256]int;
var sp int;

func push(v int) {
    if sp < 256 {
        stack[sp] = v;
        sp = sp + 1;
    }
}

func pop() int {
    if sp > 0 {
        sp = sp - 1;
        return stack[sp];
    }
    return 0;
}

// Path and raster state.
var curX int; var curY int;
var startX int; var startY int;
var tx int; var ty int; var sc int;
var minX int; var minY int; var maxX int; var maxY int;
var segments int;
var fills int;
var clipped int;
var area int;

func clampPt() {
    if curX < 0 { curX = 0; clipped = clipped + 1; }
    if curY < 0 { curY = 0; clipped = clipped + 1; }
    if curX > 4095 { curX = 4095; clipped = clipped + 1; }
    if curY > 4095 { curY = 4095; clipped = clipped + 1; }
}

func extendBBox() {
    if curX < minX { minX = curX; }
    if curY < minY { minY = curY; }
    if curX > maxX { maxX = curX; }
    if curY > maxY { maxY = curY; }
}

func interpret() {
    sp = 0;
    curX = 0; curY = 0; startX = 0; startY = 0;
    tx = 0; ty = 0; sc = 1;
    minX = 4095; minY = 4095; maxX = 0; maxY = 0;
    for var pc int = 0; pc < nprog; pc = pc + 1 {
        var op int = prog[pc];
        if op == 0 {
            push(parg[pc]);
        } else if op == 1 {
            var b int = pop(); var a int = pop();
            push(a + b);
        } else if op == 2 {
            var b int = pop(); var a int = pop();
            push(a - b);
        } else if op == 3 {
            var b int = pop(); var a int = pop();
            push((a * b) % 65536);
        } else if op == 4 {
            var a int = pop();
            push(a); push(a);
        } else if op == 5 {
            var b int = pop(); var a int = pop();
            push(b); push(a);
        } else if op == 6 {
            var a int = pop();
            area = (area + a) % 1000000007;
        } else if op == 7 {
            curY = (pop() * sc + ty) % 8192;
            curX = (pop() * sc + tx) % 8192;
            if curX < 0 { curX = -curX; }
            if curY < 0 { curY = -curY; }
            clampPt();
            startX = curX; startY = curY;
        } else if op == 8 {
            var oldX int = curX; var oldY int = curY;
            curY = (pop() * sc + ty) % 8192;
            curX = (pop() * sc + tx) % 8192;
            if curX < 0 { curX = -curX; }
            if curY < 0 { curY = -curY; }
            clampPt();
            extendBBox();
            segments = segments + 1;
            area = (area + abs(curX - oldX) + abs(curY - oldY)) % 1000000007;
        } else if op == 9 {
            if curX != startX || curY != startY {
                segments = segments + 1;
                curX = startX; curY = startY;
            }
        } else if op == 10 {
            fills = fills + 1;
            if maxX > minX && maxY > minY {
                area = (area + (maxX - minX) * (maxY - minY)) % 1000000007;
            }
            minX = 4095; minY = 4095; maxX = 0; maxY = 0;
        } else if op == 11 {
            tx = (tx + parg[pc] * 16) % 4096;
            ty = (ty + parg[pc] * 8) % 4096;
        } else {
            sc = 1 + parg[pc] % 3;
        }
    }
}

func main() int {
    seed = wseed;
    segments = 0; fills = 0; clipped = 0; area = 0;
    buildMotifs();
    for var page int = 0; page < wscale; page = page + 1 {
        genPage();
        interpret();
    }
    print(segments);
    print(fills);
    print(clipped);
    print(area);
    return area;
}
`
