package bench

import (
	"errors"
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/predict"
	"repro/internal/runner"
	"repro/internal/trace"
)

// RunArtifact is the record-once product of interpreting one (workload,
// seed, scale, budget) cell: the complete branch-event stream as a sealed
// trace slab, the run counters, and the per-block execution counts. Every
// experiment that only needs to observe the branch stream — the strategy
// tables, fill rates, state-machine scoring, the prediction side of the
// figures — replays the slab instead of re-interpreting the workload, so
// each cell is executed at most once per krallbench invocation. Artifacts
// are immutable once cached; a sealed slab is safe for concurrent replay.
type RunArtifact struct {
	Trace *trace.Slab
	// Branches/Steps mirror the interpreter counters of the recording run.
	Branches uint64
	Steps    uint64
	// Checksum/Prints capture the workload's output digest, letting replay
	// consumers verify they are looking at the run they think they are.
	Checksum uint64
	Prints   uint64
	// BlockCounts are the per-function, per-block execution counts of the
	// recording run (the layout and scope experiments' other input).
	BlockCounts [][]uint64
}

// artifactFor records — or fetches from the single-flight artifact cache —
// the trace of one workload under the given dataset seed. The recording run
// uses the machine's direct slab hook (SetRec), not the Collector
// interface, so recording costs one append per branch. It runs on the
// configured backend: both backends produce byte-identical slabs (pinned by
// internal/vm's differential and golden-trace tests), so the cache key does
// not mention the backend.
func (s *Suite) artifactFor(c *Compiled, seed int64) (*RunArtifact, error) {
	key := fmt.Sprintf("%strace/%s/seed%d", s.prefix, c.Workload.Name, seed)
	return runner.Cached(s.eng.Cache(), key, func() (*RunArtifact, error) {
		ep, err := c.execProgram(s.Cfg.backend())
		if err != nil {
			return nil, err
		}
		m := ep.NewMachine()
		m.SetMaxBranches(s.Cfg.Budget)
		m.EnableBlockCounts()
		slab := trace.NewSlab(int(s.Cfg.Budget))
		m.SetRec(slab)
		if seed != 0 {
			if err := m.SetGlobal("wseed", seed); err != nil {
				return nil, err
			}
		}
		if sc := scaleFor(s.Cfg); sc != 0 {
			if err := m.SetGlobal("wscale", sc); err != nil {
				return nil, err
			}
		}
		if _, err := m.Run(); err != nil && !errors.Is(err, interp.ErrLimit) {
			return nil, fmt.Errorf("bench: recording %s: %w", c.Workload.Name, err)
		}
		slab.Seal()
		s.countRecord(int64(slab.Len()))
		mc := m.Counters()
		return &RunArtifact{
			Trace:       slab,
			Branches:    mc.Branches,
			Steps:       mc.Steps,
			Checksum:    mc.Checksum,
			Prints:      mc.Prints,
			BlockCounts: m.BlockCounts(),
		}, nil
	})
}

// replay feeds the artifact's trace into the collectors and counts one
// replay pass serving len(cs) consumers.
func (s *Suite) replay(art *RunArtifact, cs ...trace.Collector) {
	art.Trace.ReplayInto(cs...)
	s.countReplay(int64(art.Trace.Len()))
}

// staticTraceRate scores a static prediction vector over a recorded trace.
// It is the replay equivalent of annotating a program clone and measuring
// it live: replicate.Annotate only sets Term.Pred — sites and control flow
// are untouched — so the annotated clone's branch stream is exactly the
// recorded one, and the interpreter's Predicted/Mispredicted counters
// reduce to predict.StaticScore's fold over the runs. The scorer is
// order-insensitive, so big traces shard across the engine's workers.
func (s *Suite) staticTraceRate(art *RunArtifact, preds []ir.Prediction) Cell {
	score := &predict.StaticScore{Preds: preds}
	art.Trace.ReplayPartitioned(s.workers(), score)
	s.countReplay(int64(art.Trace.Len()))
	return rateCell(score.Mispredicted, score.Predicted)
}

func (s *Suite) countRecord(events int64) {
	if s.eng != nil {
		s.eng.CountRecord(events)
	}
}

func (s *Suite) countReplay(events int64) {
	if s.eng != nil {
		s.eng.CountReplay(events)
	}
}

func (s *Suite) countLiveRun() {
	if s.eng != nil {
		s.eng.CountLiveRun()
	}
}

// workers is the engine's pool width, the partition count for sharded
// trace replay (1 when the suite runs without an engine).
func (s *Suite) workers() int {
	if s.eng != nil {
		return s.eng.Workers()
	}
	return 1
}
