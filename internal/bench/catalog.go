package bench

// Experiment describes one experiment of the suite for drivers such as
// cmd/krallbench. TraceSufficient experiments consume only recorded branch
// traces and data derived from them, so the replay engine serves them
// without any live interpreter run; execution-bound experiments measure
// transformed program clones, whose branch streams the original trace
// cannot provide.
type Experiment struct {
	ID              string
	Title           string
	TraceSufficient bool
}

// Experiments lists the suite in krallbench's output order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Misprediction rates of different branch prediction strategies", true},
		{"table2", "Fill rate of the history tables", true},
		{"table3", "Misprediction rates of loop and loop exit branches", true},
		{"table4", "Misprediction rates of correlated branches", true},
		{"table5", "Best achievable misprediction rates", true},
		{"staticpred", "Static (profile-free) prediction vs the profiled oracle", true},
		{"figures", "Misprediction rate vs code size factor (Figures 6-13)", true},
		{"measured", "Measured replication: interpreter-verified rates and sizes", false},
		{"crossdataset", "Dataset sensitivity", false},
		{"layout", "Code positioning [PH90]", false},
		{"scope", "Scheduler scope", false},
		{"joint", "Sequential vs joint replication", false},
		{"indirect", "Indirect dispatch: switch clustering vs annotated baseline", false},
		{"headline", "Headline summary (§5 operating point)", true},
	}
}

// TraceSufficient reports whether the experiment with the given ID can be
// served entirely from recorded traces; unknown IDs report false.
func TraceSufficient(id string) bool {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.TraceSufficient
		}
	}
	return false
}
