package bench

import (
	"repro/internal/ir"
	"repro/internal/predict"
	"repro/internal/replicate"
	"repro/internal/runner"
	"repro/internal/statemachine"
)

// CrossDataset runs the paper's §6 / [FF92] sensitivity experiment: train
// the profile and the replication machines on one dataset, then measure on
// a different one. The replicated rows are *measured* — the transformed
// program runs in the interpreter with its static annotations — so they
// also validate the whole pipeline end to end. One parallel job per
// workload; the alternate-dataset counts and the strategy selection come
// from the artifact cache.
func (s *Suite) CrossDataset() (*Table, error) {
	t := &Table{
		ID:    "crossdataset",
		Title: "Dataset sensitivity: trained on dataset A, measured on A and on B (%)",
	}
	const machineStates = 5
	type col struct{ profSelf, profCross, replSelf, replCross Cell }
	cols, err := runner.Map(s.eng, s.Data, func(_ int, d *WorkloadData) (col, error) {
		var c col
		// Profile self: trained and scored on dataset A.
		pr := predict.ProfileResult(d.Prof.Counts)
		c.profSelf = rateCell(pr.Misses, pr.Total)

		// Profile cross: A-trained majority vector scored on dataset B.
		static := predict.ProfileStatic(d.Prof.Counts)
		crossCounts, err := s.countsFor(d, s.Cfg.CrossSeed)
		if err != nil {
			return col{}, err
		}
		cr := static.Score(crossCounts)
		c.profCross = rateCell(cr.Misses, cr.Total)

		// Replication trained on A (realizable machines only), measured on
		// both datasets by running the transformed program.
		choices, err := s.selectFor(d, statemachine.Options{
			MaxStates:  machineStates,
			MaxPathLen: 1,
		})
		if err != nil {
			return col{}, err
		}
		clone := ir.CloneProgram(d.C.Prog)
		if _, err := replicate.ApplyOpts(clone, choices, static.Preds,
			replicate.Options{MaxSizeFactor: 3}); err != nil {
			return col{}, err
		}
		c.replSelf, err = s.measuredRate(clone, RunConfig{
			Budget: s.Cfg.Budget, Seed: s.Cfg.Seed, Scale: scaleFor(s.Cfg),
		})
		if err != nil {
			return col{}, err
		}
		c.replCross, err = s.measuredRate(clone, RunConfig{
			Budget: s.Cfg.Budget, Seed: s.Cfg.CrossSeed, Scale: scaleFor(s.Cfg),
		})
		if err != nil {
			return col{}, err
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	t.Cols = s.colNames()
	profSelf := Row{Name: "profile self"}
	profCross := Row{Name: "profile cross"}
	replSelf := Row{Name: "replicated self (measured)"}
	replCross := Row{Name: "replicated cross (measured)"}
	for _, c := range cols {
		profSelf.Cells = append(profSelf.Cells, c.profSelf)
		profCross.Cells = append(profCross.Cells, c.profCross)
		replSelf.Cells = append(replSelf.Cells, c.replSelf)
		replCross.Cells = append(replCross.Cells, c.replCross)
	}
	t.Rows = append(t.Rows, profSelf, profCross, replSelf, replCross)
	return t, nil
}

// measuredRate runs a statically annotated program and returns its real
// misprediction rate. Transformed clones have no recorded trace — their
// branch streams differ from the original's — so this is always a live run
// on the configured backend, counted as such in the engine stats.
func (s *Suite) measuredRate(prog *ir.Program, cfg RunConfig) (Cell, error) {
	s.countLiveRun()
	m, err := runProgramOn(s.Cfg.backend(), prog, cfg)
	if err != nil {
		return Cell{}, err
	}
	mc := m.Counters()
	return rateCell(mc.Mispredicted, mc.Predicted), nil
}

// MeasuredReplication transforms every workload with realizable machines
// and measures the misprediction rate and size factor of the transformed
// programs — the end-to-end validation of the paper's headline claim.
// One parallel job per workload (transform + two full interpreter runs).
func (s *Suite) MeasuredReplication(maxStates int) (*Table, error) {
	t := &Table{
		ID:    "measured",
		Title: "Measured replication: interpreter-verified rates and sizes",
	}
	type col struct{ base, repl, size Cell }
	cols, err := runner.Map(s.eng, s.Data, func(_ int, d *WorkloadData) (col, error) {
		var c col
		static := predict.ProfileStatic(d.Prof.Counts)
		var err error
		if d.Art != nil {
			// The baseline clone differs from the original only in its
			// Pred annotations, so its measured rate is the static vector
			// scored over the recorded trace — no interpreter run needed.
			c.base = s.staticTraceRate(d.Art, static.Preds)
		} else {
			baseline := ir.CloneProgram(d.C.Prog)
			replicate.Annotate(baseline, static.Preds)
			c.base, err = s.measuredRate(baseline, RunConfig{Budget: s.Cfg.Budget, Seed: s.Cfg.Seed, Scale: scaleFor(s.Cfg)})
			if err != nil {
				return col{}, err
			}
		}

		choices, err := s.selectFor(d, statemachine.Options{
			MaxStates:  maxStates,
			MaxPathLen: 1,
		})
		if err != nil {
			return col{}, err
		}
		clone := ir.CloneProgram(d.C.Prog)
		st, err := replicate.ApplyOpts(clone, choices, static.Preds,
			replicate.Options{MaxSizeFactor: 3})
		if err != nil {
			return col{}, err
		}
		c.repl, err = s.measuredRate(clone, RunConfig{Budget: s.Cfg.Budget, Seed: s.Cfg.Seed, Scale: scaleFor(s.Cfg)})
		if err != nil {
			return col{}, err
		}
		c.size = Cell{Value: st.SizeFactor(), Valid: true}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	t.Cols = s.colNames()
	base := Row{Name: "profile baseline (measured)"}
	repl := Row{Name: "replicated (measured)"}
	size := Row{Name: "size factor"}
	for _, c := range cols {
		base.Cells = append(base.Cells, c.base)
		repl.Cells = append(repl.Cells, c.repl)
		size.Cells = append(size.Cells, c.size)
	}
	t.Rows = append(t.Rows, base, repl, size)
	return t, nil
}
