package bench

import (
	"repro/internal/ir"
	"repro/internal/predict"
	"repro/internal/replicate"
	"repro/internal/statemachine"
	"repro/internal/trace"
)

// CrossDataset runs the paper's §6 / [FF92] sensitivity experiment: train
// the profile and the replication machines on one dataset, then measure on
// a different one. The replicated rows are *measured* — the transformed
// program runs in the interpreter with its static annotations — so they
// also validate the whole pipeline end to end.
func (s *Suite) CrossDataset() (*Table, error) {
	t := &Table{
		ID:    "crossdataset",
		Title: "Dataset sensitivity: trained on dataset A, measured on A and on B (%)",
		Cols:  s.colNames(),
	}
	const machineStates = 5
	var profSelf, profCross, replSelf, replCross Row
	profSelf.Name = "profile self"
	profCross.Name = "profile cross"
	replSelf.Name = "replicated self (measured)"
	replCross.Name = "replicated cross (measured)"

	for _, d := range s.Data {
		// Profile self: trained and scored on dataset A.
		pr := predict.ProfileResult(d.Prof.Counts)
		profSelf.Cells = append(profSelf.Cells, rateCell(pr.Misses, pr.Total))

		// Profile cross: A-trained majority vector scored on dataset B.
		static := predict.ProfileStatic(d.Prof.Counts)
		crossCounts := trace.NewCounts(d.C.NSites)
		if _, err := d.C.Run(RunConfig{
			Budget: s.Cfg.Budget, Seed: s.Cfg.CrossSeed, Scale: scaleFor(s.Cfg),
		}, crossCounts); err != nil {
			return nil, err
		}
		cr := static.Score(crossCounts)
		profCross.Cells = append(profCross.Cells, rateCell(cr.Misses, cr.Total))

		// Replication trained on A (realizable machines only), measured on
		// both datasets by running the transformed program.
		choices := statemachine.Select(d.Prof, d.C.Features, statemachine.Options{
			MaxStates:  machineStates,
			MaxPathLen: 1,
		})
		clone := ir.CloneProgram(d.C.Prog)
		if _, err := replicate.ApplyOpts(clone, choices, static.Preds,
			replicate.Options{MaxSizeFactor: 3}); err != nil {
			return nil, err
		}
		selfCell, err := measuredRate(clone, RunConfig{
			Budget: s.Cfg.Budget, Seed: s.Cfg.Seed, Scale: scaleFor(s.Cfg),
		})
		if err != nil {
			return nil, err
		}
		replSelf.Cells = append(replSelf.Cells, selfCell)
		crossCell, err := measuredRate(clone, RunConfig{
			Budget: s.Cfg.Budget, Seed: s.Cfg.CrossSeed, Scale: scaleFor(s.Cfg),
		})
		if err != nil {
			return nil, err
		}
		replCross.Cells = append(replCross.Cells, crossCell)
	}
	t.Rows = append(t.Rows, profSelf, profCross, replSelf, replCross)
	return t, nil
}

// measuredRate runs a statically annotated program and returns its real
// misprediction rate.
func measuredRate(prog *ir.Program, cfg RunConfig) (Cell, error) {
	m, err := runProgram(prog, cfg)
	if err != nil {
		return Cell{}, err
	}
	return rateCell(m.Mispredicted, m.Predicted), nil
}

// MeasuredReplication transforms every workload with realizable machines
// and measures the misprediction rate and size factor of the transformed
// programs — the end-to-end validation of the paper's headline claim.
func (s *Suite) MeasuredReplication(maxStates int) (*Table, error) {
	t := &Table{
		ID:    "measured",
		Title: "Measured replication: interpreter-verified rates and sizes",
		Cols:  s.colNames(),
	}
	var base, repl, size Row
	base.Name = "profile baseline (measured)"
	repl.Name = "replicated (measured)"
	size.Name = "size factor"
	for _, d := range s.Data {
		static := predict.ProfileStatic(d.Prof.Counts)
		baseline := ir.CloneProgram(d.C.Prog)
		replicate.Annotate(baseline, static.Preds)
		bc, err := measuredRate(baseline, RunConfig{Budget: s.Cfg.Budget, Seed: s.Cfg.Seed, Scale: scaleFor(s.Cfg)})
		if err != nil {
			return nil, err
		}
		base.Cells = append(base.Cells, bc)

		choices := statemachine.Select(d.Prof, d.C.Features, statemachine.Options{
			MaxStates:  maxStates,
			MaxPathLen: 1,
		})
		clone := ir.CloneProgram(d.C.Prog)
		st, err := replicate.ApplyOpts(clone, choices, static.Preds,
			replicate.Options{MaxSizeFactor: 3})
		if err != nil {
			return nil, err
		}
		rc, err := measuredRate(clone, RunConfig{Budget: s.Cfg.Budget, Seed: s.Cfg.Seed, Scale: scaleFor(s.Cfg)})
		if err != nil {
			return nil, err
		}
		repl.Cells = append(repl.Cells, rc)
		size.Cells = append(size.Cells, Cell{Value: st.SizeFactor(), Valid: true})
	}
	t.Rows = append(t.Rows, base, repl, size)
	return t, nil
}
