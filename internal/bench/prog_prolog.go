package bench

// prologSrc is the stand-in for the paper's "prolog" benchmark (the
// minivip interpreter): a propositional Horn-clause solver with depth-first
// backtracking over randomly generated rule bases and queries. Choice-point
// iteration, clause-match failure, and recursion depth give the
// backtracking branch profile of a logic-programming system.
const prologSrc = `
// prolog: Horn-clause backtracking solver workload.

var wseed int = 99991;
var wscale int = 25;

var seed int;

func rand() int {
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}

// Rule base: up to 512 rules over 128 propositions. Rule r derives
// ruleHead[r] from ruleBody[r*3 .. r*3+ruleLen[r]-1].
var ruleHead [512]int;
var ruleLen [512]int;
var ruleBody [1536]int;
var nrules int;
var factSet [128]int;

// Per-query state.
var onStack [128]int; // loop check
var solveCalls int;
var backtracks int;
var depthLimitHits int;

func genBase() {
    nrules = 0;
    for var p int = 0; p < 128; p = p + 1 {
        factSet[p] = 0;
        if rand() % 100 < 18 {
            factSet[p] = 1; // base fact
        }
    }
    // Layered rules so derivations usually ground out: heads in layer k
    // depend on propositions from lower layers.
    for var r int = 0; r < 512; r = r + 1 {
        var head int = 16 + rand() % 112;
        var len int = 1 + rand() % 3;
        ruleHead[r] = head;
        ruleLen[r] = len;
        for var j int = 0; j < len; j = j + 1 {
            // Bias body atoms below the head to bound recursion.
            var b int = rand() % 128;
            if b >= head {
                b = b % head;
            }
            ruleBody[r*3 + j] = b;
        }
        nrules = nrules + 1;
    }
}

var work int;

// solve proves proposition p by fact lookup, then by trying each rule whose
// head matches, backtracking on failure. A per-query work budget bounds
// pathological rule bases, like a real system's inference limit.
func solve(p int, depth int) bool {
    solveCalls = solveCalls + 1;
    work = work + 1;
    if work > 20000 {
        depthLimitHits = depthLimitHits + 1;
        return false;
    }
    if factSet[p] == 1 {
        return true;
    }
    if depth <= 0 {
        depthLimitHits = depthLimitHits + 1;
        return false;
    }
    if onStack[p] == 1 {
        return false; // loop check: already trying to prove p
    }
    onStack[p] = 1;
    for var r int = 0; r < nrules; r = r + 1 {
        if ruleHead[r] == p {
            var ok bool = true;
            for var j int = 0; j < ruleLen[r]; j = j + 1 {
                if ok {
                    if !solve(ruleBody[r*3 + j], depth - 1) {
                        ok = false;
                        backtracks = backtracks + 1;
                    }
                }
            }
            if ok {
                onStack[p] = 0;
                return true;
            }
        }
    }
    onStack[p] = 0;
    return false;
}

func main() int {
    seed = wseed;
    solveCalls = 0; backtracks = 0; depthLimitHits = 0;
    var proved int = 0;
    var failed int = 0;
    for var round int = 0; round < wscale; round = round + 1 {
        genBase();
        for var p int = 0; p < 128; p = p + 1 {
            onStack[p] = 0;
        }
        for var q int = 0; q < 24; q = q + 1 {
            var goal int = rand() % 128;
            work = 0;
            if solve(goal, 8) {
                proved = proved + 1;
            } else {
                failed = failed + 1;
            }
        }
    }
    print(proved);
    print(failed);
    print(solveCalls);
    print(backtracks);
    print(depthLimitHits);
    return solveCalls;
}
`
