package bench

import (
	"repro/internal/analysis"
	"repro/internal/predict"
	"repro/internal/runner"
)

// This file is the experiment face of the static branch-prediction engine:
// it scores the profile-free predictors — the paper-era baselines
// (always-taken, BTFN, opcode, Ball–Larus) and the Dempster–Shafer
// heuristic engine with SCCP-decided sites overridden — against the
// profiled oracle on every catalog workload, the regime where replication
// budgets must be spent blind.

// staticReportFor memoises one workload's static predictability report in
// the artifact cache. The report depends only on the compiled program, but
// the key stays inside the suite prefix so engines shared across datasets
// never collide.
func (s *Suite) staticReportFor(d *WorkloadData) (*analysis.StaticReport, error) {
	key := s.prefix + "staticreport/" + d.C.Workload.Name
	return runner.Cached(s.eng.Cache(), key, func() (*analysis.StaticReport, error) {
		return analysis.BuildStaticReport(d.C.Prog)
	})
}

// staticPredRows names the rate rows of the static-prediction table, in
// render order.
var staticPredRows = []string{
	"always taken",
	"always not taken",
	"backward taken",
	"opcode",
	"ball-larus",
	"static heuristic",
	"profile",
}

// StaticPrediction builds the static-prediction table: misprediction rates
// (%) of each profile-free strategy per workload, an "all" column
// aggregating the whole catalog (the acceptance metric: the heuristic
// engine must beat always-taken there), and a final row counting the
// branch sites SCCP decided per workload.
func (s *Suite) StaticPrediction() *Table {
	t := &Table{ID: "staticpred", Title: "Static (profile-free) prediction misprediction rates (%)"}
	type col struct {
		res     []predict.Result
		decided int
	}
	cols, err := runner.Map(s.eng, s.Data, func(_ int, d *WorkloadData) (col, error) {
		rep, err := s.staticReportFor(d)
		if err != nil {
			return col{}, err
		}
		counts := d.Prof.Counts
		strategies := []*predict.Static{
			predict.AlwaysTaken(d.C.NSites),
			predict.AlwaysNotTaken(d.C.NSites),
			predict.BackwardTaken(d.C.Features),
			predict.OpcodeStatic(d.C.Features),
			predict.BallLarus(d.C.Features),
			predict.StaticHeuristic(rep.Predictions()),
			predict.ProfileStatic(counts),
		}
		c := col{res: make([]predict.Result, len(strategies)), decided: rep.Decided()}
		for i, st := range strategies {
			c.res[i] = st.Score(counts)
		}
		return c, nil
	})
	if err != nil {
		// The suite's programs are compiled and validated; a failure here
		// is a job panic and should crash loudly, like the other tables.
		panic(err)
	}
	t.Cols = append(s.colNames(), "all")
	for ri, name := range staticPredRows {
		row := Row{Name: name}
		var misses, total uint64
		for _, c := range cols {
			r := c.res[ri]
			row.Cells = append(row.Cells, rateCell(r.Misses, r.Total))
			misses += r.Misses
			total += r.Total
		}
		row.Cells = append(row.Cells, rateCell(misses, total))
		t.Rows = append(t.Rows, row)
	}
	decided := Row{Name: "sccp-decided sites"}
	sum := 0
	for _, c := range cols {
		decided.Cells = append(decided.Cells, countCell(uint64(c.decided)))
		sum += c.decided
	}
	decided.Cells = append(decided.Cells, countCell(uint64(sum)))
	t.Rows = append(t.Rows, decided)
	return t
}
