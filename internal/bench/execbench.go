package bench

import (
	"fmt"
	"time"

	"repro/internal/exec"
)

// ExecMeasurement is one workload's backend throughput comparison: the
// same budgeted live run (no collectors attached, the conditions of the
// suite's measured experiments) timed on the interpreter and on the
// compiled vm, reporting the best of Rounds rounds per backend.
type ExecMeasurement struct {
	Workload string
	Budget   uint64
	Rounds   int
	// InterpBranchesPerSec / VMBranchesPerSec are branch events per
	// second of wall clock; Speedup is their ratio (vm over interp).
	InterpBranchesPerSec float64
	VMBranchesPerSec     float64
	Speedup              float64
}

// MeasureExec times every named workload (nil = the whole suite) on both
// execution backends. Each round runs the workload to its branch budget
// with no collectors; the best round per backend is kept, damping
// scheduler and GC noise. The two backends' checksums must agree — a
// throughput number from a diverged backend would be meaningless — so this
// doubles as an end-to-end equivalence check.
func MeasureExec(names []string, budget uint64, rounds int) ([]ExecMeasurement, error) {
	if budget == 0 {
		budget = 500_000
	}
	if rounds <= 0 {
		rounds = 3
	}
	ws := Workloads()
	if len(names) > 0 {
		ws = ws[:0]
		for _, n := range names {
			w, err := ByName(n)
			if err != nil {
				return nil, err
			}
			ws = append(ws, w)
		}
	}
	cfg := RunConfig{Budget: budget, Scale: 1 << 30}
	out := make([]ExecMeasurement, 0, len(ws))
	for _, w := range ws {
		c, err := Compile(w)
		if err != nil {
			return nil, err
		}
		m := ExecMeasurement{Workload: w.Name, Budget: budget, Rounds: rounds}
		var sums [2]uint64
		for bi, be := range []exec.Backend{exec.Interp, exec.VM} {
			best := time.Duration(1<<63 - 1)
			for r := 0; r < rounds; r++ {
				start := time.Now()
				mach, err := c.RunOn(be, cfg)
				if err != nil {
					return nil, fmt.Errorf("bench: exec measurement %s/%s: %w", w.Name, be.Name(), err)
				}
				if d := time.Since(start); d < best {
					best = d
				}
				sums[bi] = mach.Counters().Checksum
			}
			rate := float64(budget) / best.Seconds()
			if bi == 0 {
				m.InterpBranchesPerSec = rate
			} else {
				m.VMBranchesPerSec = rate
			}
		}
		if sums[0] != sums[1] {
			return nil, fmt.Errorf("bench: exec measurement %s: backend checksums diverge (interp %#x, vm %#x)",
				w.Name, sums[0], sums[1])
		}
		if m.InterpBranchesPerSec > 0 {
			m.Speedup = m.VMBranchesPerSec / m.InterpBranchesPerSec
		}
		out = append(out, m)
	}
	return out, nil
}

// ExecTable renders the measurements as a result table.
func ExecTable(ms []ExecMeasurement) *Table {
	t := &Table{
		ID:    "execbench",
		Title: "Execution backend throughput (million branches/s, live runs)",
	}
	interp := Row{Name: "interpreter"}
	vm := Row{Name: "compiled vm"}
	speedup := Row{Name: "speedup"}
	for _, m := range ms {
		t.Cols = append(t.Cols, m.Workload)
		interp.Cells = append(interp.Cells, Cell{Value: m.InterpBranchesPerSec / 1e6, Valid: true})
		vm.Cells = append(vm.Cells, Cell{Value: m.VMBranchesPerSec / 1e6, Valid: true})
		speedup.Cells = append(speedup.Cells, Cell{Value: m.Speedup, Valid: true})
	}
	t.Rows = append(t.Rows, interp, vm, speedup)
	return t
}
