package bench

// predictSrc is the stand-in for the paper's own "predict" benchmark (its
// profiling and trace tool): it synthesises a branch trace from a Markov
// model and runs three predictors over it — last-direction, 2-bit
// counters, and a two-level table — comparing their misprediction counts.
// The tool analysing branches is itself a branchy table-driven workload.
const predictSrc = `
// predict: branch-trace analyser workload.

var wseed int = 31415;
var wscale int = 30;

var seed int;

func rand() int {
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}

// Synthetic trace: 64 branch sites with per-site behaviour classes:
// 0 = strongly biased, 1 = alternating, 2 = correlated with previous
// outcome, 3 = random.
var class [64]int;
var bias [64]int;
var siteSeq [16384]int;
var outSeq [16384]int;
var ntrace int;
var lastOutcome int;
var phase [64]int;

func genTrace() {
    for var s int = 0; s < 64; s = s + 1 {
        class[s] = rand() % 4;
        bias[s] = 50 + rand() % 45;
        phase[s] = 0;
    }
    ntrace = 0;
    lastOutcome = 0;
    // Real traces have temporal locality: a few hot sites fire in bursts
    // (loop iterations) rather than uniformly at random.
    var cur int = 0;
    var burst int = 0;
    while ntrace < 16000 {
        if burst <= 0 {
            if rand() % 100 < 70 {
                cur = rand() % 8;          // hot sites
                burst = 4 + rand() % 24;   // loop-like bursts
            } else {
                cur = rand() % 64;
                burst = 1 + rand() % 3;
            }
        }
        burst = burst - 1;
        var s int = cur;
        var out int = 0;
        var c int = class[s];
        if c == 0 {
            if rand() % 100 < bias[s] { out = 1; }
        } else if c == 1 {
            out = phase[s];
            phase[s] = 1 - phase[s];
        } else if c == 2 {
            out = lastOutcome;
            if rand() % 100 < 10 { out = 1 - out; }
        } else {
            out = rand() % 2;
        }
        siteSeq[ntrace] = s;
        outSeq[ntrace] = out;
        lastOutcome = out;
        ntrace = ntrace + 1;
    }
}

// Predictor state.
var lastDir [64]int;
var counter [64]int;
var history [64]int;
var pattern [1024]int;

var missLast int;
var missCtr int;
var missTwoLevel int;

func resetPredictors() {
    for var s int = 0; s < 64; s = s + 1 {
        lastDir[s] = 0;
        counter[s] = 1;
        history[s] = 0;
    }
    for var p int = 0; p < 1024; p = p + 1 {
        pattern[p] = 1;
    }
}

func simulate() {
    for var i int = 0; i < ntrace; i = i + 1 {
        var s int = siteSeq[i];
        var out int = outSeq[i];

        // last direction
        if lastDir[s] != out {
            missLast = missLast + 1;
        }
        lastDir[s] = out;

        // 2-bit counter
        var predC int = 0;
        if counter[s] >= 2 { predC = 1; }
        if predC != out {
            missCtr = missCtr + 1;
        }
        if out == 1 {
            if counter[s] < 3 { counter[s] = counter[s] + 1; }
        } else {
            if counter[s] > 0 { counter[s] = counter[s] - 1; }
        }

        // two-level: 4-bit local history, shared pattern table indexed by
        // (site low bits, history).
        var idx int = ((s & 63) * 16 + history[s]) & 1023;
        var predT int = 0;
        if pattern[idx] >= 2 { predT = 1; }
        if predT != out {
            missTwoLevel = missTwoLevel + 1;
        }
        if out == 1 {
            if pattern[idx] < 3 { pattern[idx] = pattern[idx] + 1; }
        } else {
            if pattern[idx] > 0 { pattern[idx] = pattern[idx] - 1; }
        }
        history[s] = ((history[s] * 2) + out) & 15;
    }
}

func main() int {
    seed = wseed;
    missLast = 0; missCtr = 0; missTwoLevel = 0;
    for var round int = 0; round < wscale; round = round + 1 {
        genTrace();
        resetPredictors();
        simulate();
    }
    print(missLast);
    print(missCtr);
    print(missTwoLevel);
    return missLast + missCtr + missTwoLevel;
}
`
