package bench

// compressSrc is the stand-in for SPEC "compress": LZW compression with a
// hashed dictionary over a skewed synthetic byte stream, followed by a
// decompression check. Hash-probe hit/miss branches and the skewed symbol
// distribution give the classic compress branch profile.
const compressSrc = `
// compress: LZW compression workload.

var wseed int = 2024;
var wscale int = 24;

var seed int;

func rand() int {
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}

// Skewed source: small alphabet with repeats, runs, and occasional noise.
var input [8192]int;
var ninput int;

func genInput() {
    ninput = 0;
    var last int = 0;
    while ninput < 8000 {
        var r int = rand() % 100;
        if r < 40 {
            input[ninput] = last;          // repeat previous symbol
        } else if r < 70 {
            input[ninput] = rand() % 4;    // very common symbols
        } else if r < 90 {
            input[ninput] = 4 + rand() % 12;
        } else {
            input[ninput] = rand() % 64;   // rare noise
        }
        last = input[ninput];
        ninput = ninput + 1;
    }
}

// LZW dictionary: code -> (prefix code, appended symbol), probed through an
// open-addressing hash table.
var dprefix [12288]int;
var dsymbol [12288]int;
var htKey [32768]int;
var htVal [32768]int;
var nextCode int;

var output [8192]int;
var noutput int;

func htClear() {
    for var i int = 0; i < 32768; i = i + 1 {
        htKey[i] = -1;
    }
}

func htLookup(prefix int, sym int) int {
    var key int = prefix * 64 + sym;
    var h int = (key * 2654435761) & 32767;
    if h < 0 { h = -h; }
    while htKey[h] != -1 {
        if htKey[h] == key {
            return htVal[h];
        }
        h = (h + 1) & 32767;
    }
    return -1;
}

func htInsert(prefix int, sym int, code int) {
    var key int = prefix * 64 + sym;
    var h int = (key * 2654435761) & 32767;
    if h < 0 { h = -h; }
    while htKey[h] != -1 {
        h = (h + 1) & 32767;
    }
    htKey[h] = key;
    htVal[h] = code;
}

func resetDict() {
    htClear();
    nextCode = 64; // codes 0..63 are the literals
}

func compress() {
    resetDict();
    noutput = 0;
    var w int = input[0];
    for var i int = 1; i < ninput; i = i + 1 {
        var c int = input[i];
        var wc int = htLookup(w, c);
        if wc != -1 {
            w = wc;
        } else {
            output[noutput] = w;
            noutput = noutput + 1;
            if nextCode < 12288 {
                dprefix[nextCode] = w;
                dsymbol[nextCode] = c;
                htInsert(w, c, nextCode);
                nextCode = nextCode + 1;
            } else {
                resetDict();
            }
            w = c;
        }
    }
    output[noutput] = w;
    noutput = noutput + 1;
}

// expandCode walks a code's prefix chain and returns its length while
// checksumming the symbols (decompression-style verification without
// buffering strings).
var expandSum int;

func expandCode(code int) int {
    var len int = 0;
    var c int = code;
    while c >= 64 {
        expandSum = (expandSum * 31 + dsymbol[c]) % 1000000007;
        c = dprefix[c];
        len = len + 1;
        if len > 4096 {
            c = 0; // corrupt chain guard; never happens
        }
    }
    expandSum = (expandSum * 31 + c) % 1000000007;
    return len + 1;
}

// ------------------------------------------------------------- Huffman
// A second, entropy-coding stage over the LZW output codes: frequency
// count, then Huffman tree construction with an array-based min-heap, then
// a bit-size estimate for the coded stream. Heap sift operations are the
// classic data-dependent branch source.
var freq [512]int;
var heapNode [1024]int;
var heapW [1024]int;
var heapN int;
var nodeLeft [1024]int;
var nodeRight [1024]int;
var nodeW [1024]int;
var nnodes int;
var stackNode [1024]int;
var stackDepth [1024]int;

func heapPush(node int, w int) {
    var i int = heapN;
    heapNode[i] = node;
    heapW[i] = w;
    heapN = heapN + 1;
    while i > 0 {
        var parent int = (i - 1) / 2;
        if heapW[parent] > heapW[i] {
            var tn int = heapNode[parent]; heapNode[parent] = heapNode[i]; heapNode[i] = tn;
            var tw int = heapW[parent]; heapW[parent] = heapW[i]; heapW[i] = tw;
            i = parent;
        } else {
            i = 0;
        }
    }
}

func heapPop() int {
    var top int = heapNode[0];
    heapN = heapN - 1;
    heapNode[0] = heapNode[heapN];
    heapW[0] = heapW[heapN];
    var i int = 0;
    var moving bool = true;
    while moving {
        var l int = 2 * i + 1;
        var r int = 2 * i + 2;
        var m int = i;
        if l < heapN && heapW[l] < heapW[m] { m = l; }
        if r < heapN && heapW[r] < heapW[m] { m = r; }
        if m == i {
            moving = false;
        } else {
            var tn int = heapNode[m]; heapNode[m] = heapNode[i]; heapNode[i] = tn;
            var tw int = heapW[m]; heapW[m] = heapW[i]; heapW[i] = tw;
            i = m;
        }
    }
    return top;
}

// huffmanBits estimates the entropy-coded size of the LZW output by
// building a Huffman tree over the low 9 bits of each code and summing
// depth*freq.
func huffmanBits() int {
    for var i int = 0; i < 512; i = i + 1 {
        freq[i] = 0;
    }
    for var i int = 0; i < noutput; i = i + 1 {
        var sym int = output[i] & 511;
        freq[sym] = freq[sym] + 1;
    }
    heapN = 0;
    nnodes = 0;
    for var s int = 0; s < 512; s = s + 1 {
        if freq[s] > 0 {
            nodeLeft[nnodes] = -1;
            nodeRight[nnodes] = -1;
            nodeW[nnodes] = freq[s];
            heapPush(nnodes, freq[s]);
            nnodes = nnodes + 1;
        }
    }
    if heapN == 1 {
        return noutput; // degenerate single-symbol stream: 1 bit each
    }
    while heapN > 1 {
        var a int = heapPop();
        var b int = heapPop();
        nodeLeft[nnodes] = a;
        nodeRight[nnodes] = b;
        nodeW[nnodes] = nodeW[a] + nodeW[b];
        heapPush(nnodes, nodeW[nnodes]);
        nnodes = nnodes + 1;
    }
    // Sum weighted depths iteratively with an explicit stack.
    var sp int = 0;
    stackNode[0] = heapNode[0];
    stackDepth[0] = 0;
    sp = 1;
    var bits int = 0;
    while sp > 0 {
        sp = sp - 1;
        var nd int = stackNode[sp];
        var d int = stackDepth[sp];
        if nodeLeft[nd] == -1 {
            bits = bits + nodeW[nd] * d;
        } else {
            stackNode[sp] = nodeLeft[nd];
            stackDepth[sp] = d + 1;
            sp = sp + 1;
            stackNode[sp] = nodeRight[nd];
            stackDepth[sp] = d + 1;
            sp = sp + 1;
        }
    }
    return bits;
}

func main() int {
    seed = wseed;
    var totalIn int = 0;
    var totalOut int = 0;
    var totalBits int = 0;
    expandSum = 0;
    for var round int = 0; round < wscale; round = round + 1 {
        genInput();
        compress();
        totalIn = totalIn + ninput;
        totalOut = totalOut + noutput;
        var decoded int = 0;
        for var i int = 0; i < noutput; i = i + 1 {
            decoded = decoded + expandCode(output[i]);
        }
        if decoded != ninput {
            print(-1); // compression invariant broken
        }
        totalBits = totalBits + huffmanBits();
    }
    print(totalIn);
    print(totalOut);
    print(totalBits);
    print(expandSum);
    return totalOut;
}
`
