package bench

// schedulerSrc is the stand-in for the paper's "scheduler" benchmark (an
// instruction scheduler): it generates random dependence DAGs, computes
// critical-path priorities, and list-schedules them onto two asymmetric
// functional units cycle by cycle. Ready-list scans, structural-hazard
// checks, and priority comparisons drive the branches.
const schedulerSrc = `
// scheduler: list instruction scheduler workload.

var wseed int = 4242;
var wscale int = 60;

var seed int;

func rand() int {
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}

// DAG over up to 256 instructions; edges in a flat successor array.
var nInstr int;
var opClass [256]int;    // 0 = ALU (either unit), 1 = MEM (unit 0 only), 2 = MUL (unit 1, 3 cycles)
var latency [256]int;
var nsucc [256]int;
var succs [2048]int;     // succ list segment per instruction (8 slots each)
var npred [256]int;

var prio [256]int;       // critical-path priority
var readyAt [256]int;    // earliest issue cycle from scheduled predecessors
var pendingPreds [256]int;
var issued [256]int;

func genDAG() {
    nInstr = 128 + rand() % 128;
    for var i int = 0; i < nInstr; i = i + 1 {
        var r int = rand() % 100;
        if r < 55 {
            opClass[i] = 0;
            latency[i] = 1;
        } else if r < 85 {
            opClass[i] = 1;
            latency[i] = 2;
        } else {
            opClass[i] = 2;
            latency[i] = 3;
        }
        nsucc[i] = 0;
        npred[i] = 0;
    }
    // Edges only forward, short-range, like real basic-block dependences.
    for var i int = 0; i < nInstr; i = i + 1 {
        var tries int = rand() % 3;
        for var t int = 0; t <= tries; t = t + 1 {
            var d int = i + 1 + rand() % 8;
            if d < nInstr && nsucc[i] < 8 {
                succs[i * 8 + nsucc[i]] = d;
                nsucc[i] = nsucc[i] + 1;
                npred[d] = npred[d] + 1;
            }
        }
    }
}

// computePrio walks backwards: priority = latency + max over successors.
func computePrio() {
    for var i int = nInstr - 1; i >= 0; i = i - 1 {
        var best int = 0;
        for var j int = 0; j < nsucc[i]; j = j + 1 {
            var s int = succs[i * 8 + j];
            if prio[s] > best {
                best = prio[s];
            }
        }
        prio[i] = latency[i] + best;
    }
}

var cycles int;
var stalls int;
var issuedTotal int;
var issueCycle [256]int;

// schedule issues up to two instructions per cycle subject to unit
// constraints, picking ready instructions by priority.
func schedule() {
    for var i int = 0; i < nInstr; i = i + 1 {
        pendingPreds[i] = npred[i];
        readyAt[i] = 0;
        issued[i] = 0;
    }
    var done int = 0;
    var cycle int = 0;
    var mulBusy int = 0;
    while done < nInstr && cycle < 10000 {
        // Unit 0: ALU or MEM. Unit 1: ALU or MUL (if not busy).
        var pick0 int = -1;
        var pick1 int = -1;
        for var i int = 0; i < nInstr; i = i + 1 {
            if issued[i] == 0 && pendingPreds[i] == 0 && readyAt[i] <= cycle {
                if opClass[i] != 2 {
                    if pick0 == -1 || prio[i] > prio[pick0] {
                        pick0 = i;
                    }
                }
                if opClass[i] != 1 && mulBusy <= cycle {
                    if pick1 == -1 || prio[i] > prio[pick1] {
                        pick1 = i;
                    }
                }
            }
        }
        if pick0 == pick1 && pick1 != -1 {
            pick1 = -1; // same instruction picked twice: keep unit 0
        }
        if pick0 == -1 && pick1 == -1 {
            stalls = stalls + 1;
        }
        if pick0 != -1 {
            issued[pick0] = 1;
            issueCycle[pick0] = cycle;
            done = done + 1;
            issuedTotal = issuedTotal + 1;
            for var j int = 0; j < nsucc[pick0]; j = j + 1 {
                var s int = succs[pick0 * 8 + j];
                pendingPreds[s] = pendingPreds[s] - 1;
                if readyAt[s] < cycle + latency[pick0] {
                    readyAt[s] = cycle + latency[pick0];
                }
            }
        }
        if pick1 != -1 {
            issued[pick1] = 1;
            issueCycle[pick1] = cycle;
            done = done + 1;
            issuedTotal = issuedTotal + 1;
            if opClass[pick1] == 2 {
                mulBusy = cycle + 3;
            }
            for var j int = 0; j < nsucc[pick1]; j = j + 1 {
                var s int = succs[pick1 * 8 + j];
                pendingPreds[s] = pendingPreds[s] - 1;
                if readyAt[s] < cycle + latency[pick1] {
                    readyAt[s] = cycle + latency[pick1];
                }
            }
        }
        cycle = cycle + 1;
    }
    cycles = cycles + cycle;
}

// ------------------------------------------------- register allocation
// Linear-scan allocation over the issue schedule: each instruction defines
// a value live until its last consumer issues. 12 physical registers;
// exhaustion spills the interval that ends furthest away (Poletto-Sarkar
// style). Interval scans and spill decisions are branch-rich.
var liveEnd [256]int;
var order [256]int;
var regFree [12]int;
var regUntil [12]int;
var spills int;
var allocated int;

func regalloc() {
    for var i int = 0; i < nInstr; i = i + 1 {
        liveEnd[i] = issueCycle[i];
        for var j int = 0; j < nsucc[i]; j = j + 1 {
            var s int = succs[i * 8 + j];
            if issueCycle[s] > liveEnd[i] {
                liveEnd[i] = issueCycle[s];
            }
        }
        order[i] = i;
    }
    // Insertion sort by issue cycle (starts).
    for var i int = 1; i < nInstr; i = i + 1 {
        var v int = order[i];
        var j int = i - 1;
        var placing bool = true;
        while placing {
            if j >= 0 && issueCycle[order[j]] > issueCycle[v] {
                order[j + 1] = order[j];
                j = j - 1;
            } else {
                placing = false;
            }
        }
        order[j + 1] = v;
    }
    for var r int = 0; r < 12; r = r + 1 {
        regFree[r] = 1;
        regUntil[r] = 0;
    }
    for var k int = 0; k < nInstr; k = k + 1 {
        var ins int = order[k];
        var start int = issueCycle[ins];
        // Expire finished intervals.
        for var r int = 0; r < 12; r = r + 1 {
            if regFree[r] == 0 && regUntil[r] < start {
                regFree[r] = 1;
            }
        }
        var got int = -1;
        for var r int = 0; r < 12; r = r + 1 {
            if got == -1 && regFree[r] == 1 {
                got = r;
            }
        }
        if got >= 0 {
            regFree[got] = 0;
            regUntil[got] = liveEnd[ins];
            allocated = allocated + 1;
        } else {
            // Spill the register with the furthest end if it outlives us.
            var worst int = 0;
            for var r int = 1; r < 12; r = r + 1 {
                if regUntil[r] > regUntil[worst] {
                    worst = r;
                }
            }
            if regUntil[worst] > liveEnd[ins] {
                regUntil[worst] = liveEnd[ins];
            }
            spills = spills + 1;
        }
    }
}

func main() int {
    seed = wseed;
    cycles = 0; stalls = 0; issuedTotal = 0; spills = 0; allocated = 0;
    for var round int = 0; round < wscale; round = round + 1 {
        genDAG();
        computePrio();
        schedule();
        regalloc();
    }
    print(cycles);
    print(stalls);
    print(issuedTotal);
    print(spills);
    print(allocated);
    return cycles;
}
`
