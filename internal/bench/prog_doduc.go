package bench

// doducSrc is the stand-in for SPEC "doduc" (a Monte-Carlo hydrocode): a
// one-dimensional Lagrangian hydrodynamics kernel — pressure/velocity
// updates, artificial viscosity on compression, adaptive timestep from a
// CFL condition — the paper's single floating-point benchmark. Branches
// come from shock detection, boundary handling, and convergence tests.
const doducSrc = `
// doduc: 1-D hydrodynamics simulation workload.

var wseed int = 161803;
var wscale int = 12;

var seed int;

func rand() int {
    seed = (seed * 1103515245 + 12345) & 1073741823;
    return seed;
}

// Cell-centred state over 256 cells (+ node velocities).
var rho [258]float;
var p [258]float;
var e [258]float;
var q [258]float;
var u [259]float;
var mass [258]float;
var xlen [258]float;

var gammaMinus float = 0.4;
var shockCells int;
var steps int;
var rebalances int;

func setup() {
    for var i int = 0; i < 258; i = i + 1 {
        rho[i] = 1.0;
        xlen[i] = 1.0;
        e[i] = 2.5;
        q[i] = 0.0;
        u[i] = 0.0;
    }
    u[258] = 0.0;
    // A random hot region drives a shock.
    var lo int = 20 + rand() % 100;
    var hi int = lo + 10 + rand() % 40;
    for var i int = lo; i <= hi; i = i + 1 {
        e[i] = 25.0 + float(rand() % 100) * 0.25;
        rho[i] = 2.0;
    }
    for var i int = 0; i < 258; i = i + 1 {
        mass[i] = rho[i] * xlen[i];
        p[i] = gammaMinus * rho[i] * e[i];
    }
}

// step advances one timestep; returns the next dt from the CFL condition.
func step(dt float) float {
    // Artificial viscosity: only on compressing cells (the shock branch).
    shockCells = shockCells + 0;
    for var i int = 1; i < 257; i = i + 1 {
        var du float = u[i+1] - u[i];
        if du < 0.0 {
            q[i] = 2.0 * rho[i] * du * du;
            shockCells = shockCells + 1;
        } else {
            q[i] = 0.0;
        }
    }
    // Node acceleration from pressure gradient.
    for var i int = 1; i < 257; i = i + 1 {
        var m float = 0.5 * (mass[i-1] + mass[i]);
        if m > 0.0001 {
            var a float = (p[i-1] + q[i-1] - p[i] - q[i]) / m;
            u[i] = u[i] + dt * a;
        }
    }
    // Reflecting boundaries.
    u[0] = 0.0;
    u[257] = 0.0;
    u[258] = 0.0;
    // Cell updates: length, density, energy, pressure.
    var maxc float = 0.000001;
    for var i int = 1; i < 257; i = i + 1 {
        var du float = u[i+1] - u[i];
        xlen[i] = xlen[i] + dt * du;
        if xlen[i] < 0.01 {
            xlen[i] = 0.01;
            rebalances = rebalances + 1;
        }
        rho[i] = mass[i] / xlen[i];
        var work float = (p[i] + q[i]) * du * dt;
        e[i] = e[i] - work / mass[i];
        if e[i] < 0.1 {
            e[i] = 0.1;
        }
        p[i] = gammaMinus * rho[i] * e[i];
        var c float = sqrt((gammaMinus + 1.0) * p[i] / rho[i]) + abs(u[i]);
        if c > maxc {
            maxc = c;
        }
    }
    var dtNext float = 0.25 / maxc;
    if dtNext > 0.05 {
        dtNext = 0.05;
    }
    if dtNext < 0.0001 {
        dtNext = 0.0001;
    }
    return dtNext;
}

// totalEnergy checks conservation-ish diagnostics.
func totalEnergy() float {
    var sum float = 0.0;
    for var i int = 1; i < 257; i = i + 1 {
        var kin float = 0.25 * mass[i] * (u[i] * u[i] + u[i+1] * u[i+1]);
        sum = sum + mass[i] * e[i] + kin;
    }
    return sum;
}

// ------------------------------------------------------- heat diffusion
// A second kernel: implicit-flavoured Jacobi iteration for heat diffusion
// with a convergence test — the iterate-until-converged branch behaviour
// typical of the original doduc.
var temp [258]float;
var tnew [258]float;
var jacobiIters int;

func diffuse() float {
    for var i int = 0; i < 258; i = i + 1 {
        temp[i] = e[i]; // seed from the hydro state
    }
    var converged bool = false;
    var iters int = 0;
    while !converged && iters < 200 {
        var maxd float = 0.0;
        for var i int = 1; i < 257; i = i + 1 {
            tnew[i] = 0.25 * temp[i-1] + 0.5 * temp[i] + 0.25 * temp[i+1];
            var d float = abs(tnew[i] - temp[i]);
            if d > maxd {
                maxd = d;
            }
        }
        for var i int = 1; i < 257; i = i + 1 {
            temp[i] = tnew[i];
        }
        iters = iters + 1;
        if maxd < 0.005 {
            converged = true;
        }
    }
    jacobiIters = jacobiIters + iters;
    var sum float = 0.0;
    for var i int = 1; i < 257; i = i + 1 {
        sum = sum + temp[i];
    }
    return sum;
}

func main() int {
    seed = wseed;
    shockCells = 0; steps = 0; rebalances = 0; jacobiIters = 0;
    var probe float = 0.0;
    for var run int = 0; run < wscale; run = run + 1 {
        setup();
        var dt float = 0.01;
        var t float = 0.0;
        while t < 3.0 {
            dt = step(dt);
            t = t + dt;
            steps = steps + 1;
        }
        probe = probe + totalEnergy() + diffuse();
    }
    print(steps);
    print(shockCells);
    print(rebalances);
    print(jacobiIters);
    print(int(probe));
    return steps;
}
`
