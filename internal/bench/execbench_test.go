package bench

import (
	"strings"
	"testing"

	"repro/internal/exec"
)

// TestMeasureExec exercises the backend comparison end to end on a small
// budget: every row must carry positive rates for both backends (the
// cross-backend checksum check inside MeasureExec is what pins
// correctness; a divergence is returned as an error).
func TestMeasureExec(t *testing.T) {
	ms, err := MeasureExec([]string{"compress", "cc"}, 20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d measurements, want 2", len(ms))
	}
	for _, m := range ms {
		if m.InterpBranchesPerSec <= 0 || m.VMBranchesPerSec <= 0 {
			t.Errorf("%s: non-positive rate: %+v", m.Workload, m)
		}
		if m.Speedup <= 0 {
			t.Errorf("%s: non-positive speedup %v", m.Workload, m.Speedup)
		}
	}
	out := ExecTable(ms).Render()
	for _, want := range []string{"interpreter", "compiled vm", "speedup", "compress", "cc"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureExecUnknownWorkload(t *testing.T) {
	if _, err := MeasureExec([]string{"no-such-workload"}, 1000, 1); err == nil {
		t.Fatal("want error for unknown workload")
	}
}

// BenchmarkExec times identical budgeted live runs (no collectors) on the
// interpreter and on the compiled vm. The branches/s metric is the number
// the krallbench -execbench section and the BENCH_results.json exec
// section report.
func BenchmarkExec(b *testing.B) {
	const budget = 500_000
	cfg := RunConfig{Budget: budget, Scale: 1 << 30}
	for _, name := range []string{"compress", "doduc", "cc"} {
		w, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		c, err := Compile(w)
		if err != nil {
			b.Fatal(err)
		}
		for _, be := range []exec.Backend{exec.Interp, exec.VM} {
			be := be
			b.Run(name+"/"+be.Name(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := c.RunOn(be, cfg); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(budget)*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
			})
		}
	}
}
