package trace

import "repro/internal/ir"

// SwitchCollector consumes one N-way dispatch event at a time: site is the
// switch's prediction site (dense with conditional-branch sites) and
// outcome the selected successor index — case index v for 0 <= v <
// len(Targets), len(Targets) for the default arm. Collectors that do not
// implement it simply never see switch events.
type SwitchCollector interface {
	RecordSwitch(site, outcome int32)
}

// SwitchRunCollector is the run-aware switch contract, mirroring
// RunCollector: RecordSwitchRun(s, o, n) must leave the collector in a
// state identical to n consecutive RecordSwitch(s, o) calls.
type SwitchRunCollector interface {
	RecordSwitchRun(site, outcome int32, n uint64)
}

// dropSwitch and dropSwitchRun are the resolved entry points for
// collectors without switch support; the decode loops still track switch
// state (for run markers) but the events go nowhere.
func dropSwitch(int32, int32)            {}
func dropSwitchRun(int32, int32, uint64) {}

// recordSwitchRunOn delivers one switch run to a collector of unknown
// concrete type, silently dropping it when the collector has no switch
// entry point.
func recordSwitchRunOn(c Collector, site, outcome int32, n uint64) {
	switch c := c.(type) {
	case SwitchRunCollector:
		c.RecordSwitchRun(site, outcome, n)
	case SwitchCollector:
		for ; n > 0; n-- {
			c.RecordSwitch(site, outcome)
		}
	}
}

// switchRunFn resolves a value's fastest switch-run entry point, or the
// drop stub when it has none. The replay fan-outs resolve once per
// collector instead of type-switching per event.
func switchRunFn(v any) func(site, outcome int32, n uint64) {
	switch c := v.(type) {
	case SwitchRunCollector:
		return c.RecordSwitchRun
	case SwitchCollector:
		return func(site, outcome int32, n uint64) {
			for ; n > 0; n-- {
				c.RecordSwitch(site, outcome)
			}
		}
	}
	return dropSwitchRun
}

// TargetCounts accumulates per-site switch outcome histograms — the
// profiling requirement of the case-clustering transform, which needs the
// frequency ranking of each hot switch's targets. It is order-insensitive,
// so it shards; binary branch events pass through it untouched.
type TargetCounts struct {
	// Sites[site][outcome] is the number of times the switch at site
	// selected outcome. Rows grow on demand, so a site that never ran, or
	// a conditional-branch site, has a nil row.
	Sites [][]uint64
}

// NewTargetCounts sizes the outer table for nSites prediction sites; rows
// still grow on demand, and sites beyond the hint grow the table.
func NewTargetCounts(nSites int) *TargetCounts {
	return &TargetCounts{Sites: make([][]uint64, nSites)}
}

// Branch implements Collector as a no-op: only switch events matter here.
func (c *TargetCounts) Branch(*ir.Term, bool) {}

// RecordBranch implements SiteCollector as a no-op.
func (c *TargetCounts) RecordBranch(int32, bool) {}

// RecordRun implements RunCollector as a no-op.
func (c *TargetCounts) RecordRun(int32, bool, uint64) {}

// RecordSwitch implements SwitchCollector.
func (c *TargetCounts) RecordSwitch(site, outcome int32) {
	c.RecordSwitchRun(site, outcome, 1)
}

// RecordSwitchRun implements SwitchRunCollector.
func (c *TargetCounts) RecordSwitchRun(site, outcome int32, n uint64) {
	for int(site) >= len(c.Sites) {
		c.Sites = append(c.Sites, nil)
	}
	row := c.Sites[site]
	for int(outcome) >= len(row) {
		row = append(row, 0)
	}
	row[outcome] += n
	c.Sites[site] = row
}

// NewShard implements Sharded.
func (c *TargetCounts) NewShard() RunCollector { return NewTargetCounts(len(c.Sites)) }

// Merge implements Sharded.
func (c *TargetCounts) Merge(shard RunCollector) {
	o := shard.(*TargetCounts)
	for site, row := range o.Sites {
		for outcome, n := range row {
			if n > 0 {
				c.RecordSwitchRun(int32(site), int32(outcome), n)
			}
		}
	}
}

// Total returns the number of switch events recorded for site.
func (c *TargetCounts) Total(site int32) uint64 {
	if int(site) >= len(c.Sites) {
		return 0
	}
	var n uint64
	for _, v := range c.Sites[site] {
		n += v
	}
	return n
}

// TotalAll sums switch events across all sites.
func (c *TargetCounts) TotalAll() uint64 {
	var n uint64
	for site := range c.Sites {
		n += c.Total(int32(site))
	}
	return n
}

// Rank returns site's outcomes ordered by descending frequency, ties
// broken by ascending outcome index so the ranking is deterministic.
// Outcomes never observed are omitted.
func (c *TargetCounts) Rank(site int32) []RankedOutcome {
	if int(site) >= len(c.Sites) {
		return nil
	}
	out := make([]RankedOutcome, 0, len(c.Sites[site]))
	for outcome, n := range c.Sites[site] {
		if n > 0 {
			out = append(out, RankedOutcome{Outcome: int32(outcome), Count: n})
		}
	}
	for i := 1; i < len(out); i++ { // insertion sort: rows are tiny
		for j := i; j > 0 && out[j].Count > out[j-1].Count; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RankedOutcome is one entry of TargetCounts.Rank.
type RankedOutcome struct {
	Outcome int32
	Count   uint64
}
