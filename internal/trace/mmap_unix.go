//go:build unix

package trace

import (
	"fmt"
	"os"
	"syscall"
)

// MapSealedFile opens a sealed-slab container file (AppendSealed's layout)
// by memory-mapping it read-only: replay reads the event bytes straight
// from the page cache, no copy. The returned close func unmaps the file;
// the slab must not be used after close. On platforms without mmap the
// fallback in mmap_fallback.go reads the file into memory instead, so
// callers never need to care which path they got.
func MapSealedFile(path string) (*Slab, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 {
		return nil, nil, fmt.Errorf("trace: %s: empty sealed slab file", path)
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("trace: %s: sealed slab file too large to map", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems refuse mmap; fall back to a byte copy.
		return readSealedFile(path)
	}
	s, err := OpenSealed(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, func() error { return syscall.Munmap(data) }, nil
}
