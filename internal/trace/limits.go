package trace

import (
	"errors"
	"fmt"
	"io"
)

// ErrTooLarge is returned (wrapped) when a decoded trace exceeds its
// Limits. Callers distinguish it from corruption with errors.Is.
var ErrTooLarge = errors.New("trace: stream exceeds size limit")

// Limits bounds decoded branch traces. Both the daemon's upload path and
// the file loaders enforce them, so a hostile or truncated BLTRACE1 stream
// cannot balloon into unbounded memory: the run-length encoding can claim
// 2^60 events in a handful of bytes, and only an event cap stops a decoder
// from faithfully materialising them.
type Limits struct {
	// MaxEvents bounds decoded events (0 = unlimited).
	MaxEvents uint64
	// MaxSites rejects any event whose site ID is >= MaxSites (0 = no cap
	// beyond the int32 encoding range). Consumers size per-site tables
	// from the largest site they see, so without this cap a few-byte
	// stream naming site 2^31-1 makes the *consumer* allocate gigabytes
	// even though the decoder itself stays small.
	MaxSites int32
	// MaxBytes bounds encoded input bytes (0 = unlimited). Enforcement is
	// on bytes fetched from the underlying reader, so buffered read-ahead
	// may overshoot the consumed position by one buffer.
	MaxBytes int64
}

// DefaultLimits is what the file loaders use: 64M events / 1M sites /
// 256 MiB input, far above any trace this repository produces (the paper's
// largest traces are 100M branches; ours default to 2M) but small enough
// to fail fast on garbage.
func DefaultLimits() Limits {
	return Limits{MaxEvents: 1 << 26, MaxSites: 1 << 20, MaxBytes: 1 << 28}
}

// cappedReader returns ErrTooLarge once more than limit bytes were read.
type cappedReader struct {
	r    io.Reader
	left int64
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.left <= 0 {
		return 0, fmt.Errorf("input bytes: %w", ErrTooLarge)
	}
	if int64(len(p)) > c.left {
		p = p[:c.left]
	}
	n, err := c.r.Read(p)
	c.left -= int64(n)
	return n, err
}

// NewReaderLimits is NewReader with explicit limits; NewReader itself
// applies DefaultLimits. The event cap is checked as events decode, so a
// run-length marker claiming billions of repeats fails at the cap instead
// of looping.
func NewReaderLimits(r io.Reader, lim Limits) (*Reader, error) {
	if lim.MaxBytes > 0 {
		r = &cappedReader{r: r, left: lim.MaxBytes}
	}
	tr, err := newReader(r)
	if err != nil {
		return nil, err
	}
	tr.lim = lim
	return tr, nil
}

// ReadSlab decodes a BLTRACE1 stream into a sealed Slab under lim — the
// daemon's upload path. The events are re-encoded through Slab.Record, so
// the result is exactly what an in-process recording of the same stream
// would have produced (and is safe for concurrent replay once returned).
func ReadSlab(r io.Reader, lim Limits) (*Slab, error) {
	tr, err := NewReaderLimits(r, lim)
	if err != nil {
		return nil, err
	}
	defer tr.Release()
	s := NewSlab(0)
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			s.Seal()
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		if ev.Switch {
			s.RecordSwitch(ev.Site, ev.Outcome)
		} else {
			s.Record(ev.Site, ev.Taken)
		}
	}
}
