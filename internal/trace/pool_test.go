package trace

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// TestReaderPoolReuse decodes several distinct streams back to back —
// each decode draws its buffer from the shared pool after the previous
// Release — and demands no state leaks between them.
func TestReaderPoolReuse(t *testing.T) {
	streams := [][]Event{
		{{Site: 0, Taken: true}, {Site: 0, Taken: true}, {Site: 1, Taken: false}},
		{{Site: 5, Taken: false}},
		{},
		{{Site: 2, Taken: true}, {Site: 3, Taken: false}, {Site: 2, Taken: true}},
	}
	for i, want := range streams {
		got, err := ReadAll(bytes.NewReader(encodeEvents(t, want)))
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("stream %d: decoded %v, want %v", i, got, want)
		}
	}
}

// TestReaderReleaseIdempotent pins that double Release is safe and that a
// released buffer is genuinely detached from the Reader.
func TestReaderReleaseIdempotent(t *testing.T) {
	r, err := NewReader(bytes.NewReader(encodeEvents(t, []Event{{Site: 1, Taken: true}})))
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	r.Release()
}

// TestConcurrentReadSlab is the batch-path shape: many goroutines decode
// uploads through the pooled readers at once, each getting a correct,
// independent slab.
func TestConcurrentReadSlab(t *testing.T) {
	want := []Event{
		{Site: 0, Taken: true}, {Site: 0, Taken: true}, {Site: 0, Taken: true},
		{Site: 4, Taken: false}, {Site: 2, Taken: true}, {Site: 2, Taken: false},
	}
	enc := encodeEvents(t, want)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s, err := ReadSlab(bytes.NewReader(enc), DefaultLimits())
				if err != nil {
					t.Errorf("ReadSlab: %v", err)
					return
				}
				if got := s.Events(); !reflect.DeepEqual(got, want) {
					t.Errorf("decoded %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
