package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func term(site int32) *ir.Term {
	return &ir.Term{Op: ir.TermBr, Site: site, Orig: site}
}

func TestRoundTripSimple(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{{Site: 0, Taken: true}, {Site: 0, Taken: true}, {Site: 1, Taken: false}, {Site: 0, Taken: true}, {Site: 2, Taken: true}, {Site: 2, Taken: true}, {Site: 2, Taken: true}}
	for _, ev := range events {
		w.Branch(term(ev.Site), ev.Taken)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d events from empty trace", len(got))
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		events := make([]Event, int(n))
		for i := range events {
			// Small site range provokes runs.
			events[i] = Event{Site: int32(rng.Intn(3)), Taken: rng.Intn(2) == 0}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, ev := range events {
			w.Branch(term(ev.Site), ev.Taken)
		}
		if err := w.Close(); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLengthCompresses(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tm := term(5)
	const n = 100000
	for i := 0; i < n; i++ {
		w.Branch(tm, true)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 64 {
		t.Fatalf("RLE trace of %d identical events is %d bytes", n, buf.Len())
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("decoded %d, want %d", len(got), n)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Branch(term(int32(i)), i%2 == 0)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-3]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("truncated trace decoded to clean EOF")
		}
		if err != nil {
			return // expected: corruption detected
		}
	}
}

func TestFooterCountMismatchDetected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Branch(term(0), true)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the footer count (last byte is the uvarint count 1 → 7).
	raw := buf.Bytes()
	raw[len(raw)-1] = 7
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("footer mismatch not detected")
	}
}

func TestLogCapAndSeen(t *testing.T) {
	l := &Log{Max: 3}
	for i := 0; i < 10; i++ {
		l.Branch(term(1), true)
	}
	if len(l.Events) != 3 {
		t.Fatalf("len = %d, want 3", len(l.Events))
	}
	if l.Seen != 10 {
		t.Fatalf("seen = %d, want 10", l.Seen)
	}
}

func TestCounts(t *testing.T) {
	c := NewCounts(3)
	c.Branch(term(0), true)
	c.Branch(term(0), true)
	c.Branch(term(0), false)
	c.Branch(term(2), false)
	if c.Taken[0] != 2 || c.NotTaken[0] != 1 {
		t.Fatalf("site 0 counts = %d/%d", c.Taken[0], c.NotTaken[0])
	}
	if c.Total(0) != 3 || c.Total(1) != 0 || c.Total(2) != 1 {
		t.Fatal("totals wrong")
	}
	if c.TotalAll() != 4 {
		t.Fatalf("TotalAll = %d", c.TotalAll())
	}
	if c.Executed() != 2 {
		t.Fatalf("Executed = %d, want 2", c.Executed())
	}
}

func TestMultiFansOut(t *testing.T) {
	a := NewCounts(1)
	b := &Log{}
	m := Multi{a, b}
	m.Branch(term(0), true)
	m.Branch(term(0), false)
	if a.Total(0) != 2 || len(b.Events) != 2 {
		t.Fatal("multi did not fan out")
	}
}

func TestReplay(t *testing.T) {
	events := []Event{{Site: 0, Taken: true}, {Site: 1, Taken: false}, {Site: 0, Taken: false}}
	c := NewCounts(2)
	Replay(events, c)
	if c.Taken[0] != 1 || c.NotTaken[0] != 1 || c.NotTaken[1] != 1 {
		t.Fatalf("replay counts wrong: %+v", c)
	}
}
