package trace

import (
	"fmt"
	"os"
)

// readSealedFile is the byte-copy open path shared by the non-mmap
// platforms and the mmap error fallback.
func readSealedFile(path string) (*Slab, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	s, err := OpenSealed(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, func() error { return nil }, nil
}
