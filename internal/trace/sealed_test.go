package trace

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildSlab records a deterministic pseudo-random event stream with enough
// events to cross several checkpoint boundaries.
func buildSlab(t *testing.T, seed int64, n int) *Slab {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := NewSlab(n)
	site := int32(0)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			site = int32(rng.Intn(64))
		}
		// Biased outcomes produce genuine RLE runs.
		s.Record(site, rng.Intn(4) != 0)
	}
	s.Seal()
	return s
}

func TestSealedRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, 3 * ckEvery} {
		orig := buildSlab(t, int64(n)+1, n)
		enc := orig.AppendSealed(nil)
		if len(enc) != orig.SealedSize() {
			t.Fatalf("n=%d: SealedSize %d != encoded %d", n, orig.SealedSize(), len(enc))
		}
		got, err := OpenSealed(enc)
		if err != nil {
			t.Fatalf("n=%d: OpenSealed: %v", n, err)
		}
		if got.Len() != orig.Len() {
			t.Fatalf("n=%d: Len %d != %d", n, got.Len(), orig.Len())
		}
		if !reflect.DeepEqual(got.Events(), orig.Events()) {
			t.Fatalf("n=%d: events differ after round trip", n)
		}
		if !reflect.DeepEqual(got.cks, orig.cks) && !(len(got.cks) == 0 && len(orig.cks) == 0) {
			t.Fatalf("n=%d: checkpoints differ: %v != %v", n, got.cks, orig.cks)
		}
	}
}

// TestSealedZeroCopy pins the zero-copy contract: the opened slab's event
// bytes alias the container, not a copy.
func TestSealedZeroCopy(t *testing.T) {
	orig := buildSlab(t, 7, 5000)
	enc := orig.AppendSealed(nil)
	got, err := OpenSealed(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.buf) > 0 && &got.buf[0] != &enc[len(enc)-len(got.buf)-sealedCRCSize] {
		t.Fatal("OpenSealed copied the event bytes instead of aliasing the container")
	}
}

func TestSealedRejectsCorruption(t *testing.T) {
	orig := buildSlab(t, 3, 2000)
	enc := orig.AppendSealed(nil)

	// Truncations at every boundary-ish length must error, not panic.
	for _, cut := range []int{0, 4, len(sealedMagic), len(sealedMagic) + 1, len(enc) / 2, len(enc) - 1} {
		if _, err := OpenSealed(enc[:cut]); err == nil {
			t.Errorf("OpenSealed accepted a %d-byte truncation of %d bytes", cut, len(enc))
		}
	}
	// A flipped payload bit must fail the CRC.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-sealedCRCSize-10] ^= 0x40
	if _, err := OpenSealed(bad); err == nil {
		t.Error("OpenSealed accepted a corrupt payload")
	}
	// A bad magic must be refused.
	bad = append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := OpenSealed(bad); err == nil {
		t.Error("OpenSealed accepted a bad magic")
	}
}

func TestMapSealedFile(t *testing.T) {
	orig := buildSlab(t, 11, 3*ckEvery)
	path := filepath.Join(t.TempDir(), "slab.blslab")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.WriteSealedTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, closeFn, err := MapSealedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events(), orig.Events()) {
		t.Fatal("mapped slab replays differently from the original")
	}
	// The partitioned replay path must work over a mapped slab too (it
	// reads the checkpoint table decoded from the container).
	var a, b Counts
	a.Taken = make([]uint64, 64)
	a.NotTaken = make([]uint64, 64)
	b.Taken = make([]uint64, 64)
	b.NotTaken = make([]uint64, 64)
	orig.ReplayInto(&a)
	got.ReplayInto(&b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("mapped slab counts differ")
	}
	if err := closeFn(); err != nil {
		t.Fatalf("close: %v", err)
	}

	if _, _, err := MapSealedFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("MapSealedFile accepted a missing file")
	}
}
