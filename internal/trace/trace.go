// Package trace defines the branch-event plumbing between the interpreter
// and the analyses, plus a compact on-disk trace format mirroring the
// paper's profiling tool (which wrote branch number + direction to a file,
// about 10 MB for 50 million branches in compressed form; our varint+RLE
// encoding is in the same ballpark).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/ir"
)

// Collector consumes one branch event at a time. The *ir.Term identifies
// the site; implementations must not retain it across program transforms.
type Collector interface {
	Branch(t *ir.Term, taken bool)
}

// Multi fans one event stream out to several collectors.
type Multi []Collector

// Branch implements Collector.
func (m Multi) Branch(t *ir.Term, taken bool) {
	for _, c := range m {
		c.Branch(t, taken)
	}
}

// Event is one recorded branch outcome. Switch marks an N-way dispatch
// event, whose selected successor index is Outcome (Taken is meaningless
// then); otherwise the event is a conditional branch and Outcome is 0.
type Event struct {
	Site    int32
	Taken   bool
	Switch  bool
	Outcome int32
}

// Log records events in memory, up to an optional cap.
type Log struct {
	Events []Event
	// Max bounds the number of recorded events (0 = unlimited); events
	// beyond the cap are dropped but still counted in Seen.
	Max  int
	Seen uint64
}

// Branch implements Collector.
func (l *Log) Branch(t *ir.Term, taken bool) { l.RecordBranch(t.Site, taken) }

// Counts accumulates per-site taken/not-taken totals, the "profile"
// strategy's entire data requirement.
type Counts struct {
	Taken    []uint64
	NotTaken []uint64
}

// NewCounts sizes the tables for nSites branch sites.
func NewCounts(nSites int) *Counts {
	return &Counts{Taken: make([]uint64, nSites), NotTaken: make([]uint64, nSites)}
}

// Branch implements Collector.
func (c *Counts) Branch(t *ir.Term, taken bool) { c.RecordBranch(t.Site, taken) }

// Total returns the number of events recorded for site s.
func (c *Counts) Total(s int32) uint64 { return c.Taken[s] + c.NotTaken[s] }

// TotalAll sums events across all sites.
func (c *Counts) TotalAll() uint64 {
	var n uint64
	for i := range c.Taken {
		n += c.Taken[i] + c.NotTaken[i]
	}
	return n
}

// Executed counts the sites that were executed at least once.
func (c *Counts) Executed() int {
	n := 0
	for i := range c.Taken {
		if c.Taken[i]+c.NotTaken[i] > 0 {
			n++
		}
	}
	return n
}

const magic = "BLTRACE1"

// Writer streams events to an io.Writer in the on-disk format:
//
//	header:  "BLTRACE1"
//	events:  uvarint( (site+1)<<1 | taken )   — +1 keeps 0 as terminator
//	footer:  uvarint(0) then uvarint(total event count)
//
// Consecutive repeats of the same (site, taken) pair are run-length
// encoded as uvarint(1) uvarint(repeat count): the value 1 cannot occur as
// an event code because site+1 >= 1 shifted left is >= 2.
//
// Switch (N-way dispatch) events use the run marker's one unused slot — a
// zero-length run, previously a decode error — as an escape:
//
//	switch:  uvarint(1) uvarint(0) uvarint(site+1) uvarint(outcome)
//
// The escape is self-contained, and a run marker after it repeats the
// switch event exactly as it would a branch event. Streams containing
// only conditional branches are byte-identical to the original format.
type Writer struct {
	w      *bufio.Writer
	last   uint64
	run    uint64
	total  uint64
	closed bool
}

// NewWriter writes the header and returns a streaming writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func (w *Writer) putUvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.w.Write(buf[:n]) // errors surface at Close via Flush
}

// Branch implements Collector.
func (w *Writer) Branch(t *ir.Term, taken bool) { w.RecordBranch(t.Site, taken) }

// RecordBranch implements SiteCollector.
func (w *Writer) RecordBranch(site int32, taken bool) {
	code := (uint64(site)+1)<<1 | b2u(taken)
	w.total++
	if code == w.last {
		w.run++
		return
	}
	w.flushRun()
	w.putUvarint(code)
	w.last = code
}

func (w *Writer) flushRun() {
	if w.run > 0 {
		w.putUvarint(1)
		w.putUvarint(w.run)
		w.run = 0
	}
}

// swKey is the synthetic RLE key for a switch event. Bit 63 keeps it
// disjoint from every branch event code, whose site field caps the code
// below 2^33.
func swKey(site, outcome int32) uint64 {
	return 1<<63 | uint64(uint32(site))<<32 | uint64(uint32(outcome))
}

// RecordSwitch implements SwitchCollector, emitting the switch escape.
func (w *Writer) RecordSwitch(site, outcome int32) {
	w.RecordSwitchRun(site, outcome, 1)
}

// RecordSwitchRun implements SwitchRunCollector on the wire encoder.
func (w *Writer) RecordSwitchRun(site, outcome int32, n uint64) {
	if n == 0 {
		return
	}
	key := swKey(site, outcome)
	w.total += n
	if key == w.last {
		w.run += n
		return
	}
	w.flushRun()
	w.putUvarint(1)
	w.putUvarint(0)
	w.putUvarint(uint64(site) + 1)
	w.putUvarint(uint64(outcome))
	w.last = key
	w.run = n - 1
}

// Close flushes pending runs and the footer. The Writer must not be used
// afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("trace: writer already closed")
	}
	w.closed = true
	w.flushRun()
	w.putUvarint(0)
	w.putUvarint(w.total)
	return w.w.Flush()
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// bufReaderPool recycles the Reader's 64 KiB decode buffer across
// decodes. The service's batch path decodes many uploaded BLTRACE1
// streams concurrently; without pooling, every upload allocates (and
// promptly discards) a fresh bufio buffer.
var bufReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 1<<16) },
}

// Reader decodes a trace written by Writer.
type Reader struct {
	r     *bufio.Reader
	lim   Limits
	last  Event
	valid bool
	run   uint64
	done  bool
	count uint64
	total uint64
}

// NewReader validates the header and returns a reader enforcing
// DefaultLimits; use NewReaderLimits to choose different bounds.
func NewReader(r io.Reader) (*Reader, error) {
	return NewReaderLimits(r, DefaultLimits())
}

// newReader validates the header; the caller sets limits. The decode
// buffer comes from the shared pool; Release returns it.
func newReader(r io.Reader) (*Reader, error) {
	br := bufReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	release := func() {
		br.Reset(nil)
		bufReaderPool.Put(br)
	}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		release()
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr) != magic {
		release()
		return nil, fmt.Errorf("trace: bad magic %q", hdr)
	}
	return &Reader{r: br}, nil
}

// Release returns the Reader's decode buffer to the package pool. It is
// optional — an unreleased buffer is simply collected — but the hot
// decode paths (ReadSlab, ReadAll) call it so concurrent uploads stop
// churning 64 KiB allocations. The Reader must not be used afterwards.
func (r *Reader) Release() {
	if r.r != nil {
		r.r.Reset(nil)
		bufReaderPool.Put(r.r)
		r.r = nil
	}
}

// Next returns the next event, or io.EOF after the last one. A corrupt
// stream yields a descriptive error.
func (r *Reader) Next() (Event, error) {
	if r.run > 0 {
		r.run--
		r.count++
		if err := r.checkEvents(); err != nil {
			return Event{}, err
		}
		return r.last, nil
	}
	if r.done {
		return Event{}, io.EOF
	}
	code, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, fmt.Errorf("trace: truncated stream: %w", err)
	}
	switch code {
	case 0: // footer
		r.done = true
		total, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated footer: %w", err)
		}
		r.total = total
		if r.count != total {
			return Event{}, fmt.Errorf("trace: footer count %d != decoded %d", total, r.count)
		}
		return Event{}, io.EOF
	case 1: // run-length repeat of the previous event, or a switch escape
		n, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Event{}, fmt.Errorf("trace: truncated run: %w", err)
		}
		if n == 0 {
			// Switch escape: uvarint(site+1) uvarint(outcome).
			sc, err := binary.ReadUvarint(r.r)
			if err != nil {
				return Event{}, fmt.Errorf("trace: truncated switch event: %w", err)
			}
			if sc == 0 {
				return Event{}, errors.New("trace: switch event with zero site code")
			}
			if sc-1 > math.MaxInt32 {
				return Event{}, fmt.Errorf("trace: switch site %d overflows int32", sc-1)
			}
			oc, err := binary.ReadUvarint(r.r)
			if err != nil {
				return Event{}, fmt.Errorf("trace: truncated switch outcome: %w", err)
			}
			if oc > math.MaxInt32 {
				return Event{}, fmt.Errorf("trace: switch outcome %d overflows int32", oc)
			}
			ev := Event{Site: int32(sc - 1), Switch: true, Outcome: int32(oc)}
			if r.lim.MaxSites > 0 && ev.Site >= r.lim.MaxSites {
				return Event{}, fmt.Errorf("trace: site %d exceeds the %d-site cap: %w", ev.Site, r.lim.MaxSites, ErrTooLarge)
			}
			r.last = ev
			r.valid = true
			r.count++
			if err := r.checkEvents(); err != nil {
				return Event{}, err
			}
			return ev, nil
		}
		if !r.valid {
			return Event{}, errors.New("trace: run marker before any event")
		}
		r.run = n - 1
		r.count++
		if err := r.checkEvents(); err != nil {
			return Event{}, err
		}
		return r.last, nil
	default:
		site := code>>1 - 1 // code >= 2 here, so this cannot underflow
		if site > math.MaxInt32 {
			return Event{}, fmt.Errorf("trace: site %d in code %d overflows int32", site, code)
		}
		ev := Event{Site: int32(site), Taken: code&1 == 1}
		if r.lim.MaxSites > 0 && ev.Site >= r.lim.MaxSites {
			return Event{}, fmt.Errorf("trace: site %d exceeds the %d-site cap: %w", ev.Site, r.lim.MaxSites, ErrTooLarge)
		}
		r.last = ev
		r.valid = true
		r.count++
		if err := r.checkEvents(); err != nil {
			return Event{}, err
		}
		return ev, nil
	}
}

// checkEvents enforces the event cap after each decoded event.
func (r *Reader) checkEvents() error {
	if r.lim.MaxEvents != 0 && r.count > r.lim.MaxEvents {
		return fmt.Errorf("trace: %d events: %w", r.count, ErrTooLarge)
	}
	return nil
}

// ReadAll decodes the entire stream.
func ReadAll(r io.Reader) ([]Event, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	defer tr.Release()
	var out []Event
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}

// Replay feeds a decoded trace into a collector, synthesising Term values
// for the site IDs. Sites must be consistent with the program the collector
// was sized for.
func Replay(events []Event, c Collector) {
	// One Term per site is enough: collectors read only Site.
	terms := map[int32]*ir.Term{}
	sw, _ := c.(SwitchCollector)
	for _, ev := range events {
		if ev.Switch {
			// Switch events reach collectors that understand them; the
			// rest see only the conditional-branch stream.
			if sw != nil {
				sw.RecordSwitch(ev.Site, ev.Outcome)
			}
			continue
		}
		t := terms[ev.Site]
		if t == nil {
			t = &ir.Term{Op: ir.TermBr, Site: ev.Site, Orig: ev.Site}
			terms[ev.Site] = t
		}
		c.Branch(t, ev.Taken)
	}
}
