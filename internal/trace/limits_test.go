package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// encodeEvents builds a valid BLTRACE1 stream.
func encodeEvents(t testing.TB, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		w.RecordBranch(ev.Site, ev.Taken)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadSlabRoundTrip(t *testing.T) {
	events := []Event{{Site: 0, Taken: true}, {Site: 0, Taken: true}, {Site: 1, Taken: false}, {Site: 2, Taken: true}, {Site: 2, Taken: true}, {Site: 2, Taken: true}, {Site: 0, Taken: false}}
	data := encodeEvents(t, events)
	s, err := ReadSlab(bytes.NewReader(data), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Events(); len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	} else {
		for i, ev := range got {
			if ev != events[i] {
				t.Fatalf("event %d = %+v, want %+v", i, ev, events[i])
			}
		}
	}
}

func TestReadSlabEventLimit(t *testing.T) {
	var events []Event
	for i := 0; i < 100; i++ {
		events = append(events, Event{Site: int32(i % 3), Taken: i%2 == 0})
	}
	data := encodeEvents(t, events)
	if _, err := ReadSlab(bytes.NewReader(data), Limits{MaxEvents: 10}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	if _, err := ReadSlab(bytes.NewReader(data), Limits{MaxEvents: 100}); err != nil {
		t.Fatalf("at the cap exactly: %v", err)
	}
}

// TestReadSlabRunBombLimited is the attack the cap exists for: a few bytes
// that claim 2^50 identical events must fail at the cap, not materialise.
func TestReadSlabRunBombLimited(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("BLTRACE1")
	b := binary.AppendUvarint(nil, (uint64(7)+1)<<1|1) // one event, site 7 taken
	b = binary.AppendUvarint(b, 1)                     // run marker
	b = binary.AppendUvarint(b, 1<<50)                 // claimed repeats
	buf.Write(b)
	if _, err := ReadSlab(&buf, Limits{MaxEvents: 1000}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

// TestReadSlabSiteLimit is the site-ID bomb: a few-byte stream naming a
// huge site must be refused before any consumer sizes per-site tables
// from it.
func TestReadSlabSiteLimit(t *testing.T) {
	data := encodeEvents(t, []Event{{Site: 1 << 30, Taken: true}})
	if _, err := ReadSlab(bytes.NewReader(data), DefaultLimits()); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("default limits: got %v, want ErrTooLarge", err)
	}
	if _, err := ReadSlab(bytes.NewReader(data), Limits{MaxSites: 1 << 30}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("site at the cap: got %v, want ErrTooLarge", err)
	}
	if _, err := ReadSlab(bytes.NewReader(data), Limits{MaxSites: 1<<30 + 1}); err != nil {
		t.Fatalf("site under the cap: %v", err)
	}
	if _, err := ReadSlab(bytes.NewReader(data), Limits{}); err != nil {
		t.Fatalf("unlimited sites: %v", err)
	}
}

// TestReadSlabSiteOverflow hand-encodes a site beyond int32: it must be
// reported as corruption, not wrapped into a small alias.
func TestReadSlabSiteOverflow(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("BLTRACE1")
	buf.Write(binary.AppendUvarint(nil, (uint64(1)<<40)<<1)) // site 2^40-1
	_, err := ReadSlab(&buf, Limits{})
	if err == nil || errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want an overflow corruption error", err)
	}
}

func TestReadSlabByteLimit(t *testing.T) {
	var events []Event
	for i := 0; i < 10000; i++ {
		events = append(events, Event{Site: int32(i % 97), Taken: i%3 == 0})
	}
	data := encodeEvents(t, events)
	if _, err := ReadSlab(bytes.NewReader(data), Limits{MaxBytes: 64}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestReadSlabTruncated(t *testing.T) {
	data := encodeEvents(t, []Event{{Site: 0, Taken: true}, {Site: 1, Taken: false}, {Site: 2, Taken: true}})
	for cut := 0; cut < len(data); cut++ {
		_, err := ReadSlab(bytes.NewReader(data[:cut]), DefaultLimits())
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", cut, len(data))
		}
	}
}

// FuzzReadSlab throws arbitrary and mutated uploads at the daemon's trace
// decoder: it must never panic, and any stream it accepts must re-encode
// into a byte stream that decodes to the same events within the limits.
func FuzzReadSlab(f *testing.F) {
	f.Add(encodeEvents(f, []Event{{Site: 0, Taken: true}, {Site: 0, Taken: true}, {Site: 1, Taken: false}}))
	f.Add(encodeEvents(f, nil))
	f.Add([]byte("BLTRACE1"))
	f.Add([]byte("NOTATRACE"))
	bomb := append([]byte("BLTRACE1"), binary.AppendUvarint(nil, 4)...)
	bomb = append(bomb, binary.AppendUvarint(nil, 1)...)
	bomb = append(bomb, binary.AppendUvarint(nil, 1<<40)...)
	f.Add(bomb)
	f.Add(encodeEvents(f, []Event{{Site: 1 << 28, Taken: true}})) // site bomb
	lim := Limits{MaxEvents: 4096, MaxSites: 1 << 12, MaxBytes: 1 << 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSlab(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		if s.Len() > lim.MaxEvents {
			t.Fatalf("accepted %d events past the %d cap", s.Len(), lim.MaxEvents)
		}
		s.ReplayRuns(func(site int32, _ bool, _ uint64) {
			if site >= lim.MaxSites {
				t.Fatalf("accepted site %d past the %d-site cap", site, lim.MaxSites)
			}
		})
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatalf("re-encoding accepted slab: %v", err)
		}
		s2, err := ReadSlab(bytes.NewReader(buf.Bytes()), lim)
		if err != nil {
			t.Fatalf("re-decoding accepted slab: %v", err)
		}
		if s2.Len() != s.Len() {
			t.Fatalf("round trip changed event count: %d != %d", s2.Len(), s.Len())
		}
	})
}

// TestReaderLimitsViaNewReader pins that the plain file loader path
// (NewReader / ReadAll) enforces DefaultLimits rather than being unbounded.
func TestReaderLimitsViaNewReader(t *testing.T) {
	r, err := NewReader(bytes.NewReader(encodeEvents(t, []Event{{Site: 0, Taken: true}})))
	if err != nil {
		t.Fatal(err)
	}
	if r.lim != DefaultLimits() {
		t.Fatalf("NewReader limits = %+v, want DefaultLimits", r.lim)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("got %v, want EOF", err)
	}
}
