package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// sealedMagic heads the sealed-slab container: the varint+RLE event bytes
// of a sealed Slab plus its replay checkpoints, in a form that can be
// handed back to OpenSealed without re-encoding. The trailing digits
// version the layout; a reader seeing an unknown magic must refuse rather
// than guess.
const sealedMagic = "BLSLAB01"

// sealedCRCSize is the trailing IEEE CRC-32 of the event bytes.
const sealedCRCSize = 4

// Layout after the magic:
//
//	uvarint n            total event count
//	uvarint len(cks)     checkpoint count
//	len(cks) × { uvarint off, uvarint done }
//	uvarint len(buf)     encoded event bytes
//	buf                  the varint+RLE event stream
//	crc32(buf)           4 bytes little-endian, IEEE polynomial
//
// Everything is byte-oriented — varints and raw bytes — so a reader may
// alias the container at any alignment: OpenSealed on an mmap'd file never
// copies the event stream.

// SealedSize returns the encoded size of the sealed container.
func (s *Slab) SealedSize() int {
	s.mustSealed("SealedSize")
	n := len(sealedMagic)
	n += uvarintLen(s.n)
	n += uvarintLen(uint64(len(s.cks)))
	for _, ck := range s.cks {
		n += uvarintLen(uint64(ck.off)) + uvarintLen(ck.done)
	}
	n += uvarintLen(uint64(len(s.buf)))
	n += len(s.buf)
	n += sealedCRCSize
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendSealed appends the sealed-slab container to dst and returns the
// extended slice. The slab must be sealed.
func (s *Slab) AppendSealed(dst []byte) []byte {
	s.mustSealed("AppendSealed")
	dst = append(dst, sealedMagic...)
	dst = binary.AppendUvarint(dst, s.n)
	dst = binary.AppendUvarint(dst, uint64(len(s.cks)))
	for _, ck := range s.cks {
		dst = binary.AppendUvarint(dst, uint64(ck.off))
		dst = binary.AppendUvarint(dst, ck.done)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.buf)))
	dst = append(dst, s.buf...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(s.buf))
	return dst
}

// WriteSealedTo writes the sealed-slab container to w.
func (s *Slab) WriteSealedTo(w io.Writer) (int64, error) {
	buf := s.AppendSealed(make([]byte, 0, s.SealedSize()))
	n, err := w.Write(buf)
	return int64(n), err
}

// OpenSealed reconstructs a sealed Slab from a container produced by
// AppendSealed, aliasing the event bytes in data — the zero-copy open path
// of the disk tier. The caller must keep data immutable and alive for as
// long as the slab is used (a *diskstore.Mapped does both). The decode is
// alignment-safe: only byte loads touch data.
func OpenSealed(data []byte) (*Slab, error) {
	if len(data) < len(sealedMagic) || string(data[:len(sealedMagic)]) != sealedMagic {
		return nil, fmt.Errorf("trace: sealed slab: bad magic")
	}
	i := len(sealedMagic)
	next := func(what string) (uint64, error) {
		v, k := binary.Uvarint(data[i:])
		if k <= 0 {
			return 0, fmt.Errorf("trace: sealed slab: truncated %s at byte %d", what, i)
		}
		i += k
		return v, nil
	}
	n, err := next("event count")
	if err != nil {
		return nil, err
	}
	nck, err := next("checkpoint count")
	if err != nil {
		return nil, err
	}
	// A checkpoint costs ≥2 bytes encoded, so nck is bounded by the input;
	// reject absurd counts before allocating.
	if nck > uint64(len(data))/2 {
		return nil, fmt.Errorf("trace: sealed slab: checkpoint count %d exceeds input", nck)
	}
	cks := make([]slabCk, 0, nck)
	var prevOff, prevDone uint64
	for k := uint64(0); k < nck; k++ {
		off, err := next("checkpoint offset")
		if err != nil {
			return nil, err
		}
		done, err := next("checkpoint count")
		if err != nil {
			return nil, err
		}
		if k > 0 && (off <= prevOff || done <= prevDone) {
			return nil, fmt.Errorf("trace: sealed slab: checkpoints not increasing at %d", k)
		}
		prevOff, prevDone = off, done
		cks = append(cks, slabCk{off: int(off), done: done})
	}
	blen, err := next("event bytes length")
	if err != nil {
		return nil, err
	}
	if uint64(len(data)-i) < blen+sealedCRCSize {
		return nil, fmt.Errorf("trace: sealed slab: %d event bytes claimed, %d available", blen, len(data)-i)
	}
	buf := data[i : i+int(blen) : i+int(blen)]
	i += int(blen)
	want := binary.LittleEndian.Uint32(data[i:])
	if got := crc32.ChecksumIEEE(buf); got != want {
		return nil, fmt.Errorf("trace: sealed slab: crc mismatch %08x != %08x", got, want)
	}
	for _, ck := range cks {
		if ck.off >= len(buf) || ck.done >= n {
			return nil, fmt.Errorf("trace: sealed slab: checkpoint (%d,%d) out of range", ck.off, ck.done)
		}
	}
	var lastCk uint64
	if len(cks) > 0 {
		lastCk = cks[len(cks)-1].done
	}
	return &Slab{buf: buf, n: n, sealed: true, cks: cks, lastCk: lastCk}, nil
}
