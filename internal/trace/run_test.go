package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// termCapture implements only the legacy Collector interface and records
// the Term pointers it is handed, so tests can observe the fallback
// path's Term-synthesis cache.
type termCapture struct {
	events []Event
	terms  map[int32]*ir.Term
}

func (l *termCapture) Branch(t *ir.Term, taken bool) {
	l.events = append(l.events, Event{Site: t.Site, Taken: taken})
	if l.terms == nil {
		l.terms = map[int32]*ir.Term{}
	}
	l.terms[t.Site] = t
}

// TestReplayIntoLegacyFallback pins the non-SiteCollector fallback: a
// legacy collector sees the full ordered stream, and all legacy
// collectors in one replay share a single synthesised-Term cache — the
// same *ir.Term per site across both collectors — instead of one map
// each.
func TestReplayIntoLegacyFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	events := genEvents(rng, 3000)
	s := recordSlab(events)

	var a, b termCapture
	s.ReplayInto(&a, &b)
	for _, l := range []*termCapture{&a, &b} {
		if len(l.events) != len(events) {
			t.Fatalf("legacy collector saw %d events, want %d", len(l.events), len(events))
		}
		for i, ev := range l.events {
			if ev != events[i] {
				t.Fatalf("event %d = %+v, want %+v", i, ev, events[i])
			}
		}
	}
	if len(a.terms) == 0 {
		t.Fatal("no terms captured")
	}
	for site, ta := range a.terms {
		if tb := b.terms[site]; tb != ta {
			t.Fatalf("site %d: collectors got distinct Term pointers %p / %p — term cache not shared", site, ta, tb)
		}
		if ta.Op != ir.TermBr || ta.Site != site || ta.Orig != site {
			t.Fatalf("site %d: bad synthesised term %+v", site, ta)
		}
	}
}

// TestRunCollectorsMatchEventAtATime drives every trace-package collector
// both event-at-a-time (RecordBranch) and run-at-a-time (RecordRun from
// ReplayRuns) and requires identical final state — including the Writer,
// whose two paths must produce byte-identical wire encodings.
func TestRunCollectorsMatchEventAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{0, 1, 17, 5000} {
		events := genEvents(rng, n)
		s := recordSlab(events)

		evCounts, runCounts := NewCounts(40), NewCounts(40)
		evLog, runLog := &Log{Max: n / 2}, &Log{Max: n / 2}
		var evBuf, runBuf bytes.Buffer
		evW, err := NewWriter(&evBuf)
		if err != nil {
			t.Fatal(err)
		}
		runW, err := NewWriter(&runBuf)
		if err != nil {
			t.Fatal(err)
		}

		for _, ev := range events {
			evCounts.RecordBranch(ev.Site, ev.Taken)
			evLog.RecordBranch(ev.Site, ev.Taken)
			evW.RecordBranch(ev.Site, ev.Taken)
		}
		s.ReplayRuns(runCounts.RecordRun)
		s.ReplayRuns(runLog.RecordRun)
		s.ReplayRuns(runW.RecordRun)

		for i := range evCounts.Taken {
			if evCounts.Taken[i] != runCounts.Taken[i] || evCounts.NotTaken[i] != runCounts.NotTaken[i] {
				t.Fatalf("n=%d site %d: counts diverge", n, i)
			}
		}
		if evLog.Seen != runLog.Seen || len(evLog.Events) != len(runLog.Events) {
			t.Fatalf("n=%d: log shape diverges: seen %d/%d len %d/%d",
				n, evLog.Seen, runLog.Seen, len(evLog.Events), len(runLog.Events))
		}
		for i := range evLog.Events {
			if evLog.Events[i] != runLog.Events[i] {
				t.Fatalf("n=%d: log event %d diverges", n, i)
			}
		}
		if err := evW.Close(); err != nil {
			t.Fatal(err)
		}
		if err := runW.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(evBuf.Bytes(), runBuf.Bytes()) {
			t.Fatalf("n=%d: writer encodings diverge (%d vs %d bytes)", n, evBuf.Len(), runBuf.Len())
		}
	}
}

// TestMultiFusedIntoSinglePass pins satellite "fuse Multi fan-out":
// passing a Multi (even nested) to ReplayInto must behave exactly like
// passing the members individually, and a run-aware member inside the
// Multi must end bit-identical to a directly-replayed twin.
func TestMultiFusedIntoSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	events := genEvents(rng, 4000)
	s := recordSlab(events)

	viaMulti := []Collector{NewCounts(40), &Log{}, &termCapture{}}
	direct := []Collector{NewCounts(40), &Log{}, &termCapture{}}
	s.ReplayInto(Multi{viaMulti[0], Multi{viaMulti[1], viaMulti[2]}})
	s.ReplayInto(direct...)

	mc, dc := viaMulti[0].(*Counts), direct[0].(*Counts)
	for i := range mc.Taken {
		if mc.Taken[i] != dc.Taken[i] || mc.NotTaken[i] != dc.NotTaken[i] {
			t.Fatalf("site %d: counts diverge through Multi", i)
		}
	}
	ml, dl := viaMulti[1].(*Log), direct[1].(*Log)
	if ml.Seen != dl.Seen || len(ml.Events) != len(dl.Events) {
		t.Fatalf("log shape diverges through Multi")
	}
	for i := range ml.Events {
		if ml.Events[i] != dl.Events[i] {
			t.Fatalf("log event %d diverges through Multi", i)
		}
	}
	mt, dt := viaMulti[2].(*termCapture), direct[2].(*termCapture)
	if len(mt.events) != len(dt.events) {
		t.Fatalf("legacy member saw %d events through Multi, want %d", len(mt.events), len(dt.events))
	}
	for i := range mt.events {
		if mt.events[i] != dt.events[i] {
			t.Fatalf("legacy event %d diverges through Multi", i)
		}
	}
}

// TestMaxSite covers the site-scan collector on all three entry points.
func TestMaxSite(t *testing.T) {
	var m MaxSite
	if m.N != 0 {
		t.Fatal("fresh MaxSite not zero")
	}
	m.RecordBranch(3, true)
	m.RecordRun(7, false, 100)
	m.Branch(&ir.Term{Op: ir.TermBr, Site: 5}, true)
	if m.N != 8 {
		t.Fatalf("MaxSite = %d, want 8", m.N)
	}
	shard := m.NewShard()
	shard.RecordRun(11, true, 1)
	m.Merge(shard)
	if m.N != 12 {
		t.Fatalf("merged MaxSite = %d, want 12", m.N)
	}
}

// TestReplayPartitionedMatchesSinglePass: for stream sizes straddling the
// partition threshold and worker counts beyond the checkpoint supply,
// partitioned replay of sharded collectors must be bit-identical to the
// fused single pass.
func TestReplayPartitionedMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{100, minPartition - 1, minPartition, 3 * minPartition, 200_000} {
		events := genEvents(rng, n)
		s := recordSlab(events)
		want := NewCounts(40)
		s.ReplayInto(want)
		for _, workers := range []int{1, 2, 3, 7, 64} {
			got := NewCounts(40)
			max := &MaxSite{}
			s.ReplayPartitioned(workers, got, max)
			for i := range want.Taken {
				if want.Taken[i] != got.Taken[i] || want.NotTaken[i] != got.NotTaken[i] {
					t.Fatalf("n=%d workers=%d site %d: %d/%d want %d/%d", n, workers, i,
						got.Taken[i], got.NotTaken[i], want.Taken[i], want.NotTaken[i])
				}
			}
			wantMax := &MaxSite{}
			s.ReplayInto(wantMax)
			if max.N != wantMax.N {
				t.Fatalf("n=%d workers=%d: MaxSite %d want %d", n, workers, max.N, wantMax.N)
			}
		}
	}
}

// TestReplayPartitionedFallsBackForUnsharded: a collector without shard
// support must still get the full, ordered stream.
func TestReplayPartitionedFallsBackForUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	events := genEvents(rng, 2*minPartition)
	s := recordSlab(events)
	l := &Log{}
	s.ReplayPartitioned(8, l)
	if len(l.Events) != len(events) {
		t.Fatalf("fallback saw %d events, want %d", len(l.Events), len(events))
	}
	for i, ev := range l.Events {
		if ev != events[i] {
			t.Fatalf("fallback event %d out of order", i)
		}
	}
}

// TestSlabSegmentsCoverStream checks the checkpoint machinery directly:
// segments must tile the buffer exactly, each must start at a plain event
// code, and their decoded event counts must sum to the slab's length.
func TestSlabSegmentsCoverStream(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	events := genEvents(rng, 150_000)
	s := recordSlab(events)
	for _, workers := range []int{2, 3, 5, 16} {
		segs := s.segments(workers)
		if len(segs) > workers {
			t.Fatalf("workers=%d: %d segments", workers, len(segs))
		}
		var total uint64
		off := 0
		for si, seg := range segs {
			if len(seg) == 0 {
				t.Fatalf("workers=%d: empty segment %d", workers, si)
			}
			if &seg[0] != &s.buf[off] {
				t.Fatalf("workers=%d: segment %d does not start where segment %d ended", workers, si, si-1)
			}
			if seg[0] < 0x80 && seg[0] == 1 {
				t.Fatalf("workers=%d: segment %d starts with a run marker", workers, si)
			}
			replayRunBytes(seg, func(_ int32, _ bool, n uint64) { total += n }, func(_, _ int32, n uint64) { total += n })
			off += len(seg)
		}
		if off != len(s.buf) {
			t.Fatalf("workers=%d: segments cover %d of %d bytes", workers, off, len(s.buf))
		}
		if total != s.Len() {
			t.Fatalf("workers=%d: segments decode %d events, want %d", workers, total, s.Len())
		}
	}
}
