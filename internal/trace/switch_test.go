package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// mixedEvents is a deterministic blend of branch and switch events with
// run-friendly repeats across both kinds.
func mixedEvents(n int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Event, 0, n)
	for len(out) < n {
		var ev Event
		if rng.Intn(3) == 0 {
			ev = Event{Site: int32(rng.Intn(5)), Switch: true, Outcome: int32(rng.Intn(4))}
		} else {
			ev = Event{Site: int32(rng.Intn(5)), Taken: rng.Intn(2) == 1}
		}
		reps := 1
		if rng.Intn(4) == 0 {
			reps = 1 + rng.Intn(20)
		}
		for ; reps > 0 && len(out) < n; reps-- {
			out = append(out, ev)
		}
	}
	return out
}

func recordAll(s *Slab, events []Event) {
	for _, ev := range events {
		if ev.Switch {
			s.RecordSwitch(ev.Site, ev.Outcome)
		} else {
			s.Record(ev.Site, ev.Taken)
		}
	}
	s.Seal()
}

// TestSwitchSlabRoundTrip pins that a slab with interleaved branch and
// switch events decodes back to exactly the recorded stream.
func TestSwitchSlabRoundTrip(t *testing.T) {
	events := mixedEvents(5000, 1)
	s := NewSlab(0)
	recordAll(s, events)
	if s.Len() != uint64(len(events)) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(events))
	}
	if got := s.Events(); !reflect.DeepEqual(got, events) {
		t.Fatalf("Events round-trip mismatch (got %d events, want %d)", len(got), len(events))
	}
}

// TestSwitchWireRoundTrip pins Writer/Reader round-tripping of switch
// events and that the Slab's WriteTo output re-decodes identically.
func TestSwitchWireRoundTrip(t *testing.T) {
	events := mixedEvents(3000, 2)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Switch {
			w.RecordSwitch(ev.Site, ev.Outcome)
		} else {
			w.RecordBranch(ev.Site, ev.Taken)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("wire round-trip mismatch (got %d events, want %d)", len(got), len(events))
	}

	// The Slab emits the same byte stream for the same events.
	s := NewSlab(0)
	recordAll(s, events)
	var sb bytes.Buffer
	if _, err := s.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), buf.Bytes()) {
		t.Fatalf("Slab.WriteTo differs from Writer output (%d vs %d bytes)", sb.Len(), buf.Len())
	}

	// And ReadSlab reconstructs a byte-identical slab.
	s2, err := ReadSlab(bytes.NewReader(buf.Bytes()), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2.Events(), events) {
		t.Fatal("ReadSlab round-trip mismatch")
	}
}

// TestConditionalOnlyBytesUnchanged pins backward compatibility: a trace
// with no switch events must encode byte-identically to the historical
// format (no escapes appear).
func TestConditionalOnlyBytesUnchanged(t *testing.T) {
	s := NewSlab(0)
	for i := 0; i < 1000; i++ {
		s.Record(int32(i%7), i%3 == 0)
	}
	s.Seal()
	for i := 0; i < len(s.buf); {
		v, k := uvarintAt(s.buf, i)
		if v == 1 {
			n, k2 := uvarintAt(s.buf, i+k)
			if n == 0 {
				t.Fatalf("switch escape at byte %d in a conditional-only trace", i)
			}
			i += k + k2
			continue
		}
		i += k
	}
}

func uvarintAt(buf []byte, i int) (uint64, int) {
	v, j := decodeUvarint(buf, i)
	return v, j - i
}

// TestTargetCounts pins the histogram collector, including sharded merge
// and the deterministic frequency ranking.
func TestTargetCounts(t *testing.T) {
	tc := NewTargetCounts(2)
	tc.RecordSwitch(0, 2)
	tc.RecordSwitchRun(0, 2, 4)
	tc.RecordSwitchRun(0, 1, 5)
	tc.RecordSwitch(3, 0) // grows past the hint
	tc.RecordRun(0, true, 100)
	tc.RecordBranch(1, false)
	if got := tc.Total(0); got != 10 {
		t.Fatalf("Total(0) = %d, want 10", got)
	}
	if got := tc.TotalAll(); got != 11 {
		t.Fatalf("TotalAll = %d, want 11", got)
	}
	// Outcomes 1 and 2 both have count 5; ties break by ascending outcome.
	want := []RankedOutcome{{Outcome: 1, Count: 5}, {Outcome: 2, Count: 5}}
	if rank := tc.Rank(0); !reflect.DeepEqual(rank, want) {
		t.Fatalf("Rank(0) = %v, want %v", rank, want)
	}

	sh := tc.NewShard().(*TargetCounts)
	sh.RecordSwitchRun(0, 2, 7)
	tc.Merge(sh)
	if got := tc.Sites[0][2]; got != 12 {
		t.Fatalf("after merge Sites[0][2] = %d, want 12", got)
	}
}

// TestSwitchReplayFanout pins that ReplayInto delivers switch events to
// switch-aware collectors, skips them for plain ones, and that the
// partitioned replay matches the single pass exactly.
func TestSwitchReplayFanout(t *testing.T) {
	events := mixedEvents(8*ckEvery, 3)
	s := NewSlab(0)
	recordAll(s, events)

	ms := &MaxSite{}
	tc := NewTargetCounts(0)
	counts := NewCounts(8)
	s.ReplayInto(ms, tc, counts)

	wantBr, wantSw := 0, 0
	wantTC := NewTargetCounts(0)
	wantCounts := NewCounts(8)
	for _, ev := range events {
		if ev.Switch {
			wantSw++
			wantTC.RecordSwitch(ev.Site, ev.Outcome)
		} else {
			wantBr++
			wantCounts.RecordBranch(ev.Site, ev.Taken)
		}
	}
	if !reflect.DeepEqual(tc.Sites, wantTC.Sites) {
		t.Fatalf("TargetCounts mismatch:\n got %v\nwant %v", tc.Sites, wantTC.Sites)
	}
	if !reflect.DeepEqual(counts, wantCounts) {
		t.Fatal("Counts saw switch events or missed branches")
	}
	if uint64(wantBr+wantSw) != s.Len() {
		t.Fatalf("event split %d+%d != %d", wantBr, wantSw, s.Len())
	}

	// Partitioned replay must be bit-identical.
	ptc := NewTargetCounts(0)
	pcounts := NewCounts(8)
	pms := &MaxSite{}
	s.ReplayPartitioned(4, pms, ptc, pcounts)
	if !reflect.DeepEqual(ptc.Sites, tc.Sites) {
		t.Fatal("partitioned TargetCounts differs from single pass")
	}
	if !reflect.DeepEqual(pcounts, counts) {
		t.Fatal("partitioned Counts differs from single pass")
	}
	if pms.N != ms.N {
		t.Fatalf("partitioned MaxSite %d != %d", pms.N, ms.N)
	}

	// A Log collector preserves the full interleaved order.
	l := &Log{}
	s.ReplayInto(l)
	if !reflect.DeepEqual(l.Events, events) {
		t.Fatal("Log replay lost event order or kinds")
	}
}

// TestSwitchSealedRoundTrip pins that the sealed-slab container carries
// switch escapes through OpenSealed unchanged.
func TestSwitchSealedRoundTrip(t *testing.T) {
	events := mixedEvents(6*ckEvery, 4)
	s := NewSlab(0)
	recordAll(s, events)
	data := s.AppendSealed(nil)
	s2, err := OpenSealed(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2.Events(), events) {
		t.Fatal("sealed round-trip mismatch")
	}
}
