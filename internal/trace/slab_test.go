package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// genEvents produces a stream with long runs (loop-shaped) and random
// jumps, the same shape the interpreter records.
func genEvents(rng *rand.Rand, n int) []Event {
	out := make([]Event, 0, n)
	for len(out) < n {
		site := int32(rng.Intn(40))
		taken := rng.Intn(2) == 1
		run := 1
		if rng.Intn(3) == 0 {
			run = rng.Intn(50) + 1
		}
		for i := 0; i < run && len(out) < n; i++ {
			out = append(out, Event{Site: site, Taken: taken})
		}
	}
	return out
}

func recordSlab(events []Event) *Slab {
	s := NewSlab(len(events))
	for _, ev := range events {
		s.Record(ev.Site, ev.Taken)
	}
	s.Seal()
	return s
}

func TestSlabRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Sizes chosen to hit empty, single-event, run-boundary, and
	// budget-truncated shapes (a budget stop just seals mid-stream, so any
	// prefix length must round-trip).
	for _, n := range []int{0, 1, 2, 3, 100, 4095, 4096, 4097, 20000} {
		events := genEvents(rng, n)
		s := recordSlab(events)
		if s.Len() != uint64(n) {
			t.Fatalf("n=%d: Len=%d", n, s.Len())
		}
		got := s.Events()
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d events", n, len(got))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("n=%d: event %d = %+v, want %+v", n, i, got[i], events[i])
			}
		}
	}
}

func TestSlabReplayRunsMatchesReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	events := genEvents(rng, 5000)
	s := recordSlab(events)
	var flat []Event
	s.ReplayRuns(func(site int32, taken bool, n uint64) {
		for ; n > 0; n-- {
			flat = append(flat, Event{Site: site, Taken: taken})
		}
	})
	if len(flat) != len(events) {
		t.Fatalf("ReplayRuns expanded to %d events, want %d", len(flat), len(events))
	}
	for i := range events {
		if flat[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, flat[i], events[i])
		}
	}
}

func TestSlabWriteToReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 777, 10000} {
		events := genEvents(rng, n)
		s := recordSlab(events)
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d events", n, len(got))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("n=%d: event %d = %+v, want %+v", n, i, got[i], events[i])
			}
		}
	}
}

func TestSlabMatchesWriterEncoding(t *testing.T) {
	// The slab uses the Writer's exact wire encoding: same events, same
	// bytes.
	rng := rand.New(rand.NewSource(10))
	events := genEvents(rng, 3000)
	s := recordSlab(events)
	var slabBuf bytes.Buffer
	if _, err := s.WriteTo(&slabBuf); err != nil {
		t.Fatal(err)
	}
	var writerBuf bytes.Buffer
	w, err := NewWriter(&writerBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		w.RecordBranch(ev.Site, ev.Taken)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(slabBuf.Bytes(), writerBuf.Bytes()) {
		t.Fatalf("slab encoding (%d bytes) differs from Writer encoding (%d bytes)",
			slabBuf.Len(), writerBuf.Len())
	}
}

func TestSlabReplayBeforeSealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s := NewSlab(0)
	s.Record(0, true)
	s.Replay(func(int32, bool) {})
}

func TestSlabReplayInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	events := genEvents(rng, 2000)
	s := recordSlab(events)
	// One SiteCollector, one Collector-only consumer: both must see the
	// full ordered stream.
	counts := NewCounts(40)
	var termOnly termLog
	s.ReplayInto(counts, &termOnly)
	var wantTaken, wantNot uint64
	for _, ev := range events {
		if ev.Taken {
			wantTaken++
		} else {
			wantNot++
		}
	}
	var gotTaken, gotNot uint64
	for i := range counts.Taken {
		gotTaken += counts.Taken[i]
		gotNot += counts.NotTaken[i]
	}
	if gotTaken != wantTaken || gotNot != wantNot {
		t.Fatalf("counts %d/%d, want %d/%d", gotTaken, gotNot, wantTaken, wantNot)
	}
	if len(termOnly.events) != len(events) {
		t.Fatalf("term-only collector saw %d events, want %d", len(termOnly.events), len(events))
	}
	for i, ev := range termOnly.events {
		if ev != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, ev, events[i])
		}
	}
}

// termLog implements only the legacy Collector interface, exercising the
// Term-synthesis fallback of ReplayInto and Batcher.
type termLog struct {
	events []Event
}

func (l *termLog) Branch(t *ir.Term, taken bool) {
	l.events = append(l.events, Event{Site: t.Site, Taken: taken})
}

func TestBatcherEquivalentToMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	events := genEvents(rng, 3*batchSize+17) // cross several flush boundaries
	nSites := int32(40)

	direct := []Collector{NewCounts(int(nSites)), &Log{}, &termLog{}}
	batched := []Collector{NewCounts(int(nSites)), &Log{}, &termLog{}}
	multi := Multi(direct)
	b := NewBatcher(batched...)
	for _, ev := range events {
		tm := ir.Term{Op: ir.TermBr, Site: ev.Site, Orig: ev.Site}
		multi.Branch(&tm, ev.Taken)
		b.Branch(&tm, ev.Taken)
	}
	b.Release()

	dc, bc := direct[0].(*Counts), batched[0].(*Counts)
	for i := range dc.Taken {
		if dc.Taken[i] != bc.Taken[i] || dc.NotTaken[i] != bc.NotTaken[i] {
			t.Fatalf("site %d: counts diverge", i)
		}
	}
	dl, bl := direct[1].(*Log), batched[1].(*Log)
	if len(dl.Events) != len(bl.Events) {
		t.Fatalf("log lengths diverge: %d vs %d", len(dl.Events), len(bl.Events))
	}
	for i := range dl.Events {
		if dl.Events[i] != bl.Events[i] {
			t.Fatalf("log event %d diverges", i)
		}
	}
	dt, bt := direct[2].(*termLog), batched[2].(*termLog)
	if len(dt.events) != len(bt.events) {
		t.Fatalf("term log lengths diverge: %d vs %d", len(dt.events), len(bt.events))
	}
	for i := range dt.events {
		if dt.events[i] != bt.events[i] {
			t.Fatalf("term log event %d diverges", i)
		}
	}
}

func TestPooledLogRelease(t *testing.T) {
	l := NewLog(10)
	for i := 0; i < 20; i++ {
		l.RecordBranch(int32(i%3), i%2 == 0)
	}
	if len(l.Events) != 10 || l.Seen != 20 {
		t.Fatalf("events=%d seen=%d", len(l.Events), l.Seen)
	}
	l.Release()
	if l.Events != nil {
		t.Fatal("Release must clear the slice")
	}
	l.Release() // idempotent
}
