//go:build !unix

package trace

// MapSealedFile on platforms without mmap reads the whole file; the close
// func is a no-op. Same contract as the unix version, minus zero-copy.
func MapSealedFile(path string) (*Slab, func() error, error) {
	return readSealedFile(path)
}
