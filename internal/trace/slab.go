package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/ir"
)

// SiteCollector is the replay-side collector contract: events arrive as a
// bare (site, taken) pair with no *ir.Term. Every collector in this
// repository implements it next to Collector; replaying through
// RecordBranch skips both the Term synthesis and the interface indirection
// of the live hook path.
type SiteCollector interface {
	RecordBranch(site int32, taken bool)
}

// RecordBranch implements SiteCollector.
func (l *Log) RecordBranch(site int32, taken bool) {
	l.Seen++
	if l.Max != 0 && len(l.Events) >= l.Max {
		return
	}
	l.Events = append(l.Events, Event{Site: site, Taken: taken})
}

// RecordSwitch implements SwitchCollector.
func (l *Log) RecordSwitch(site, outcome int32) {
	l.Seen++
	if l.Max != 0 && len(l.Events) >= l.Max {
		return
	}
	l.Events = append(l.Events, Event{Site: site, Switch: true, Outcome: outcome})
}

// RecordSwitchRun implements SwitchRunCollector; Seen counts the whole run
// even when the cap truncates the stored events.
func (l *Log) RecordSwitchRun(site, outcome int32, n uint64) {
	l.Seen += n
	for ; n > 0; n-- {
		if l.Max != 0 && len(l.Events) >= l.Max {
			return
		}
		l.Events = append(l.Events, Event{Site: site, Switch: true, Outcome: outcome})
	}
}

// RecordBranch implements SiteCollector.
func (c *Counts) RecordBranch(site int32, taken bool) {
	if taken {
		c.Taken[site]++
	} else {
		c.NotTaken[site]++
	}
}

// AddRun accumulates a run of n identical outcomes at once (the run-length
// fast path used when replaying a Slab into plain counts).
func (c *Counts) AddRun(site int32, taken bool, n uint64) {
	if taken {
		c.Taken[site] += n
	} else {
		c.NotTaken[site] += n
	}
}

// RecordBranch implements SiteCollector, fanning out to every member. For
// sustained multi-collector streams prefer a Batcher, which resolves each
// member's fast path once instead of per event.
func (m Multi) RecordBranch(site int32, taken bool) {
	for _, c := range m {
		if sc, ok := c.(SiteCollector); ok {
			sc.RecordBranch(site, taken)
		} else {
			t := ir.Term{Op: ir.TermBr, Site: site, Orig: site}
			c.Branch(&t, taken)
		}
	}
}

// RecordSwitch implements SwitchCollector, fanning the event out to the
// members that understand switch events; the rest see only branches.
func (m Multi) RecordSwitch(site, outcome int32) {
	for _, c := range m {
		if sw, ok := c.(SwitchCollector); ok {
			sw.RecordSwitch(site, outcome)
		}
	}
}

// RecordSwitchRun implements SwitchRunCollector.
func (m Multi) RecordSwitchRun(site, outcome int32, n uint64) {
	for _, c := range m {
		recordSwitchRunOn(c, site, outcome, n)
	}
}

// Slab is the record-once/replay-many in-memory branch trace: the event
// stream of one interpreted run, encoded with the same varint+RLE scheme as
// the on-disk format (Writer), so two million branch events occupy a few
// hundred kilobytes to a few megabytes. A Slab is recorded by the
// interpreter's fast-path hook (interp.Machine.Rec), sealed, cached as an
// immutable artifact, and then replayed into any number of collectors at
// memory-bandwidth speed — no interpreter dispatch per event.
type Slab struct {
	buf    []byte
	last   uint64
	run    uint64
	n      uint64
	sealed bool
	cks    []slabCk
	lastCk uint64
}

// slabCk is an RLE-aligned replay checkpoint: buf[off:] starts with a
// self-contained code — a plain event or a switch escape, never a bare run
// marker, which would need the previous event's state — with done events
// encoded before it. Record drops one roughly every ckEvery events;
// ReplayPartitioned splits the stream at them so each segment decodes
// independently.
type slabCk struct {
	off  int
	done uint64
}

// ckEvery is the checkpoint spacing in events: coarse enough that the
// recording hot path pays one predictable compare per event and the side
// table stays a few dozen entries per million events, fine enough to cut
// any replay-worthy slab into balanced segments.
const ckEvery = 8192

// NewSlab creates an empty slab. sizeHint is the expected number of events
// (a branch budget); it pre-sizes the buffer and may be 0.
func NewSlab(sizeHint int) *Slab {
	capBytes := sizeHint
	if capBytes < 1024 {
		capBytes = 1024
	}
	if capBytes > 1<<24 {
		capBytes = 1 << 24
	}
	return &Slab{buf: make([]byte, 0, capBytes)}
}

// Record appends one branch event. It must not be called after Seal.
func (s *Slab) Record(site int32, taken bool) {
	code := (uint64(site)+1)<<1 | b2u(taken)
	s.n++
	if code == s.last {
		s.run++
		return
	}
	if s.run > 0 {
		s.buf = binary.AppendUvarint(s.buf, 1)
		s.buf = binary.AppendUvarint(s.buf, s.run)
		s.run = 0
	}
	if s.n-1-s.lastCk >= ckEvery {
		s.cks = append(s.cks, slabCk{off: len(s.buf), done: s.n - 1})
		s.lastCk = s.n - 1
	}
	s.buf = binary.AppendUvarint(s.buf, code)
	s.last = code
}

// RecordSwitch appends one N-way dispatch event as the switch escape
// (uvarint 1, 0, site+1, outcome). Like Record it must not be called after
// Seal, and repeats fold into the shared RLE run state.
func (s *Slab) RecordSwitch(site, outcome int32) {
	key := swKey(site, outcome)
	s.n++
	if key == s.last {
		s.run++
		return
	}
	if s.run > 0 {
		s.buf = binary.AppendUvarint(s.buf, 1)
		s.buf = binary.AppendUvarint(s.buf, s.run)
		s.run = 0
	}
	if s.n-1-s.lastCk >= ckEvery {
		s.cks = append(s.cks, slabCk{off: len(s.buf), done: s.n - 1})
		s.lastCk = s.n - 1
	}
	s.buf = binary.AppendUvarint(s.buf, 1)
	s.buf = binary.AppendUvarint(s.buf, 0)
	s.buf = binary.AppendUvarint(s.buf, uint64(site)+1)
	s.buf = binary.AppendUvarint(s.buf, uint64(outcome))
	s.last = key
}

// Seal flushes the pending run and freezes the slab; budget-truncated runs
// (the interpreter stopping at MaxBranches) are sealed exactly where they
// stopped. Seal is idempotent, and a sealed slab is safe for concurrent
// replay from multiple goroutines.
func (s *Slab) Seal() {
	if s.sealed {
		return
	}
	if s.run > 0 {
		s.buf = binary.AppendUvarint(s.buf, 1)
		s.buf = binary.AppendUvarint(s.buf, s.run)
		s.run = 0
	}
	s.sealed = true
}

// Len is the number of recorded events.
func (s *Slab) Len() uint64 { return s.n }

// EncodedBytes is the size of the encoded event stream.
func (s *Slab) EncodedBytes() int { return len(s.buf) }

// decodeStep decodes the next code at buf[i:], returning the new offset.
// A malformed slab is a programming error (slabs are produced in-process
// by Record), so corruption panics instead of returning an error.
func decodeUvarint(buf []byte, i int) (uint64, int) {
	v, k := binary.Uvarint(buf[i:])
	if k <= 0 {
		panic(fmt.Sprintf("trace: corrupt slab at byte %d", i))
	}
	return v, i + k
}

// Replay feeds every recorded conditional-branch event, in order, to fn;
// switch events are skipped. Use ReplayAll when both kinds matter.
func (s *Slab) Replay(fn func(site int32, taken bool)) {
	s.mustSealed("Replay")
	replayRunBytes(s.buf, func(site int32, taken bool, n uint64) {
		for ; n > 0; n-- {
			fn(site, taken)
		}
	}, dropSwitchRun)
}

// ReplayAll feeds every recorded event, in order: conditional branches to
// fn and switch events to sw.
func (s *Slab) ReplayAll(fn func(site int32, taken bool), sw func(site, outcome int32)) {
	s.mustSealed("ReplayAll")
	replayRunBytes(s.buf, func(site int32, taken bool, n uint64) {
		for ; n > 0; n-- {
			fn(site, taken)
		}
	}, func(site, outcome int32, n uint64) {
		for ; n > 0; n-- {
			sw(site, outcome)
		}
	})
}

// ReplayRuns feeds the branch events as (site, taken, count) runs — the
// run-length fast path for order-insensitive consumers such as Counts.
// Consecutive calls may repeat the same (site, taken) pair. Switch events
// are skipped; use ReplayAllRuns for both kinds.
func (s *Slab) ReplayRuns(fn func(site int32, taken bool, n uint64)) {
	s.mustSealed("ReplayRuns")
	replayRunBytes(s.buf, fn, dropSwitchRun)
}

// ReplayAllRuns is ReplayRuns with switch runs delivered to sw.
func (s *Slab) ReplayAllRuns(fn func(site int32, taken bool, n uint64), sw func(site, outcome int32, n uint64)) {
	s.mustSealed("ReplayAllRuns")
	replayRunBytes(s.buf, fn, sw)
}

// Events decodes the whole slab (tests and small consumers).
func (s *Slab) Events() []Event {
	out := make([]Event, 0, s.n)
	s.mustSealed("Events")
	replayRunBytes(s.buf, func(site int32, taken bool, n uint64) {
		for ; n > 0; n-- {
			out = append(out, Event{Site: site, Taken: taken})
		}
	}, func(site, outcome int32, n uint64) {
		for ; n > 0; n-- {
			out = append(out, Event{Site: site, Switch: true, Outcome: outcome})
		}
	})
	return out
}

// WriteTo serialises the slab in the on-disk trace format (header, events,
// footer); the result round-trips through Reader/ReadAll.
func (s *Slab) WriteTo(w io.Writer) (int64, error) {
	s.mustSealed("WriteTo")
	var total int64
	n, err := io.WriteString(w, magic)
	total += int64(n)
	if err != nil {
		return total, err
	}
	n, err = w.Write(s.buf)
	total += int64(n)
	if err != nil {
		return total, err
	}
	var footer [2 * binary.MaxVarintLen64]byte
	k := binary.PutUvarint(footer[:], 0)
	k += binary.PutUvarint(footer[k:], s.n)
	n, err = w.Write(footer[:k])
	total += int64(n)
	return total, err
}

func (s *Slab) mustSealed(op string) {
	if !s.sealed {
		panic("trace: Slab." + op + " before Seal")
	}
}

// eventPool recycles Event slices across runner jobs: Batcher buffers and
// pooled Logs draw their storage here, so a parallel experiment sweep stops
// reallocating per-job event storage.
var eventPool = sync.Pool{
	New: func() any { return make([]Event, 0, batchSize) },
}

// batchSize is the Batcher flush threshold: 4096 events (32 KiB) stay well
// inside L2 while amortising the per-collector dispatch.
const batchSize = 4096

// NewLog returns a Log whose event slice comes from the shared pool; cap
// bounds recorded events as Log.Max. Call Release when done with it.
func NewLog(max int) *Log {
	return &Log{Events: eventPool.Get().([]Event)[:0], Max: max}
}

// Release returns the log's event slice to the pool. The Log must not be
// used afterwards.
func (l *Log) Release() {
	if l.Events != nil {
		eventPool.Put(l.Events[:0])
		l.Events = nil
	}
}

// Batcher is the live-path answer to per-branch fan-out cost: it buffers
// events and flushes them collector-by-collector in batches, so a hot
// interpreter loop pays one append per branch instead of one interface
// call per collector per branch. Event order per collector is preserved,
// and collectors are independent, so results are identical to unbatched
// Multi dispatch. Flush must be called after the run (bench.runProgram
// does); Release returns the buffer to the shared pool.
type Batcher struct {
	fns   []func(int32, bool)
	swFns []func(int32, int32)
	buf   []Event
}

// NewBatcher wraps the collectors, resolving each one's fast path once.
func NewBatcher(cs ...Collector) *Batcher {
	b := &Batcher{buf: eventPool.Get().([]Event)[:0]}
	b.fns = make([]func(int32, bool), len(cs))
	b.swFns = make([]func(int32, int32), len(cs))
	for i, c := range cs {
		if sc, ok := c.(SiteCollector); ok {
			b.fns[i] = sc.RecordBranch
		} else {
			c := c
			terms := map[int32]*ir.Term{}
			b.fns[i] = func(site int32, taken bool) {
				t := terms[site]
				if t == nil {
					t = &ir.Term{Op: ir.TermBr, Site: site, Orig: site}
					terms[site] = t
				}
				c.Branch(t, taken)
			}
		}
		if sw, ok := c.(SwitchCollector); ok {
			b.swFns[i] = sw.RecordSwitch
		} else {
			b.swFns[i] = dropSwitch
		}
	}
	return b
}

// Branch implements Collector.
func (b *Batcher) Branch(t *ir.Term, taken bool) { b.RecordBranch(t.Site, taken) }

// RecordBranch implements SiteCollector.
func (b *Batcher) RecordBranch(site int32, taken bool) {
	b.buf = append(b.buf, Event{Site: site, Taken: taken})
	if len(b.buf) >= batchSize {
		b.Flush()
	}
}

// RecordSwitch implements SwitchCollector: switch events ride the same
// buffer, so per-collector order across the two kinds is preserved.
func (b *Batcher) RecordSwitch(site, outcome int32) {
	b.buf = append(b.buf, Event{Site: site, Switch: true, Outcome: outcome})
	if len(b.buf) >= batchSize {
		b.Flush()
	}
}

// Flush drains the buffer into every collector.
func (b *Batcher) Flush() {
	for ci, fn := range b.fns {
		sw := b.swFns[ci]
		for i := range b.buf {
			if b.buf[i].Switch {
				sw(b.buf[i].Site, b.buf[i].Outcome)
			} else {
				fn(b.buf[i].Site, b.buf[i].Taken)
			}
		}
	}
	b.buf = b.buf[:0]
}

// Release flushes and returns the buffer to the pool. The Batcher must not
// be used afterwards.
func (b *Batcher) Release() {
	b.Flush()
	if b.buf != nil {
		eventPool.Put(b.buf[:0])
		b.buf = nil
	}
}
