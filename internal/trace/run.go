package trace

import (
	"sync"

	"repro/internal/ir"
)

// RunCollector is the run-aware collector contract: a maximal RLE run of
// n identical (site, taken) outcomes arrives as a single call instead of
// n events. The exactness contract is strict — RecordRun(s, t, n) must
// leave the collector in a state bit-identical to n consecutive
// RecordBranch(s, t) calls — so replaying through runs is a pure speedup,
// never an approximation (pinned by FuzzRunCollectorEquivalence).
type RunCollector interface {
	RecordRun(site int32, taken bool, n uint64)
}

// Sharded is implemented by order-insensitive RunCollectors — those whose
// final state does not depend on event order, only on per-(site, taken)
// totals. Such collectors can consume disjoint segments of a trace in
// parallel: ReplayPartitioned gives each worker a fresh shard from
// NewShard and folds the shards back with Merge in stream order.
type Sharded interface {
	RunCollector
	// NewShard returns an empty collector of the same shape, safe to fill
	// from another goroutine.
	NewShard() RunCollector
	// Merge folds a NewShard result's accumulated state back in.
	Merge(shard RunCollector)
}

// RecordRun implements RunCollector (an alias of AddRun; Counts is the
// canonical order-insensitive collector).
func (c *Counts) RecordRun(site int32, taken bool, n uint64) { c.AddRun(site, taken, n) }

// NewShard implements Sharded.
func (c *Counts) NewShard() RunCollector { return NewCounts(len(c.Taken)) }

// Merge implements Sharded.
func (c *Counts) Merge(shard RunCollector) {
	o := shard.(*Counts)
	for i := range c.Taken {
		c.Taken[i] += o.Taken[i]
		c.NotTaken[i] += o.NotTaken[i]
	}
}

// RecordRun implements RunCollector: Seen counts the whole run even when
// the cap truncates the stored events, matching n RecordBranch calls.
func (l *Log) RecordRun(site int32, taken bool, n uint64) {
	l.Seen += n
	for ; n > 0; n-- {
		if l.Max != 0 && len(l.Events) >= l.Max {
			return
		}
		l.Events = append(l.Events, Event{Site: site, Taken: taken})
	}
}

// RecordRun implements RunCollector on the wire encoder: a replayed run
// folds straight into the Writer's RLE state, so re-encoding a trace
// through runs emits byte-identical output to event-at-a-time encoding.
func (w *Writer) RecordRun(site int32, taken bool, n uint64) {
	if n == 0 {
		return
	}
	code := (uint64(site)+1)<<1 | b2u(taken)
	w.total += n
	if code == w.last {
		w.run += n
		return
	}
	w.flushRun()
	w.putUvarint(code)
	w.last = code
	w.run = n - 1
}

// RecordRun implements RunCollector, fanning the run out to every member
// at its fastest entry point. Slab replay does not go through this — the
// fused ReplayInto flattens Multi members into its single decode pass —
// but live hooks and hand-driven replays may.
func (m Multi) RecordRun(site int32, taken bool, n uint64) {
	for _, c := range m {
		recordRunOn(c, site, taken, n)
	}
}

// recordRunOn delivers one run to a collector of unknown concrete type.
func recordRunOn(c Collector, site int32, taken bool, n uint64) {
	switch c := c.(type) {
	case RunCollector:
		c.RecordRun(site, taken, n)
	case SiteCollector:
		for ; n > 0; n-- {
			c.RecordBranch(site, taken)
		}
	default:
		t := ir.Term{Op: ir.TermBr, Site: site, Orig: site}
		for ; n > 0; n-- {
			c.Branch(&t, taken)
		}
	}
}

// MaxSite scans a replay for the highest site ID plus one — the table
// size a trace of unknown provenance needs. It is order-insensitive, so
// it shards.
type MaxSite struct {
	// N is max(site)+1 over the events seen, 0 before any event.
	N int
}

// Branch implements Collector.
func (m *MaxSite) Branch(t *ir.Term, taken bool) { m.RecordRun(t.Site, taken, 1) }

// RecordBranch implements SiteCollector.
func (m *MaxSite) RecordBranch(site int32, taken bool) { m.RecordRun(site, taken, 1) }

// RecordRun implements RunCollector.
func (m *MaxSite) RecordRun(site int32, _ bool, _ uint64) {
	if int(site) >= m.N {
		m.N = int(site) + 1
	}
}

// RecordSwitch implements SwitchCollector: switch sites share the dense
// site space, so they raise the table size too.
func (m *MaxSite) RecordSwitch(site, _ int32) { m.RecordRun(site, false, 1) }

// RecordSwitchRun implements SwitchRunCollector.
func (m *MaxSite) RecordSwitchRun(site, _ int32, _ uint64) { m.RecordRun(site, false, 1) }

// NewShard implements Sharded.
func (m *MaxSite) NewShard() RunCollector { return &MaxSite{} }

// Merge implements Sharded.
func (m *MaxSite) Merge(shard RunCollector) {
	if o := shard.(*MaxSite); o.N > m.N {
		m.N = o.N
	}
}

// replayRunBytes is the run-major decode loop: one pass over an RLE
// segment, one fn (or sw, for switch events) call per run (a plain event
// is a run of 1). buf must begin at a self-contained code — a plain event
// or a switch escape, never a bare run marker — which is true of a whole
// slab buffer and of every checkpointed segment. The 1- and 2-byte uvarint
// forms are decoded inline (site IDs are small, so nearly every code
// takes one or two bytes); longer forms and corruption fall through to
// decodeUvarint. Run markers repeat whichever event kind came last, so
// the loop tracks both the branch and the switch state plus which is
// current.
func replayRunBytes(buf []byte, fn func(site int32, taken bool, n uint64), sw func(site, outcome int32, n uint64)) {
	var site int32
	var taken bool
	var swSite, swOutcome int32
	inSwitch := false
	for i := 0; i < len(buf); {
		var code uint64
		if b := buf[i]; b < 0x80 {
			code = uint64(b)
			i++
		} else if i+1 < len(buf) && buf[i+1] < 0x80 {
			code = uint64(b&0x7f) | uint64(buf[i+1])<<7
			i += 2
		} else {
			code, i = decodeUvarint(buf, i)
		}
		if code != 1 {
			site, taken = int32(code>>1)-1, code&1 == 1
			inSwitch = false
			fn(site, taken, 1)
			continue
		}
		var n uint64
		if i < len(buf) && buf[i] < 0x80 {
			n = uint64(buf[i])
			i++
		} else if i+1 < len(buf) && buf[i] >= 0x80 && buf[i+1] < 0x80 {
			n = uint64(buf[i]&0x7f) | uint64(buf[i+1])<<7
			i += 2
		} else {
			n, i = decodeUvarint(buf, i)
		}
		if n == 0 { // switch escape: uvarint(site+1) uvarint(outcome)
			var sc, oc uint64
			sc, i = decodeUvarint(buf, i)
			oc, i = decodeUvarint(buf, i)
			swSite, swOutcome = int32(sc-1), int32(oc)
			inSwitch = true
			sw(swSite, swOutcome, 1)
			continue
		}
		if inSwitch {
			sw(swSite, swOutcome, n)
		} else {
			fn(site, taken, n)
		}
	}
}

// replayBytes is the split-dispatch decode loop behind ReplayInto: plain
// single events go to ev — the collector's ordinary per-event entry
// point, so a trace with no exploitable runs replays at per-event cost —
// and only genuine RLE runs (the repeat count after the first event) go
// to run, where run-aware collectors take their O(1) shortcut. Switch
// events split the same way between sw and swRun. Same segment contract
// and inline-uvarint fast path as replayRunBytes.
func replayBytes(buf []byte, ev func(site int32, taken bool), run func(site int32, taken bool, n uint64),
	sw func(site, outcome int32), swRun func(site, outcome int32, n uint64)) {
	var site int32
	var taken bool
	var swSite, swOutcome int32
	inSwitch := false
	for i := 0; i < len(buf); {
		var code uint64
		if b := buf[i]; b < 0x80 {
			code = uint64(b)
			i++
		} else if i+1 < len(buf) && buf[i+1] < 0x80 {
			code = uint64(b&0x7f) | uint64(buf[i+1])<<7
			i += 2
		} else {
			code, i = decodeUvarint(buf, i)
		}
		if code != 1 {
			site, taken = int32(code>>1)-1, code&1 == 1
			inSwitch = false
			ev(site, taken)
			continue
		}
		var n uint64
		if i < len(buf) && buf[i] < 0x80 {
			n = uint64(buf[i])
			i++
		} else if i+1 < len(buf) && buf[i] >= 0x80 && buf[i+1] < 0x80 {
			n = uint64(buf[i]&0x7f) | uint64(buf[i+1])<<7
			i += 2
		} else {
			n, i = decodeUvarint(buf, i)
		}
		if n == 0 { // switch escape
			var sc, oc uint64
			sc, i = decodeUvarint(buf, i)
			oc, i = decodeUvarint(buf, i)
			swSite, swOutcome = int32(sc-1), int32(oc)
			inSwitch = true
			sw(swSite, swOutcome)
			continue
		}
		if inSwitch {
			swRun(swSite, swOutcome, n)
		} else {
			run(site, taken, n)
		}
	}
}

// replayCountsBytes is replayRunBytes specialised for *Counts, the
// service's "profile" scoring strategy and the experiment engine's
// per-seed count pass: the run lands directly in the slice, with no
// indirect call per run.
func replayCountsBytes(buf []byte, c *Counts) {
	tk, nt := c.Taken, c.NotTaken
	var site int32
	var taken bool
	inSwitch := false
	for i := 0; i < len(buf); {
		var code uint64
		if b := buf[i]; b < 0x80 {
			code = uint64(b)
			i++
		} else if i+1 < len(buf) && buf[i+1] < 0x80 {
			code = uint64(b&0x7f) | uint64(buf[i+1])<<7
			i += 2
		} else {
			code, i = decodeUvarint(buf, i)
		}
		if code != 1 {
			site, taken = int32(code>>1)-1, code&1 == 1
			inSwitch = false
			if taken {
				tk[site]++
			} else {
				nt[site]++
			}
			continue
		}
		var n uint64
		if i < len(buf) && buf[i] < 0x80 {
			n = uint64(buf[i])
			i++
		} else if i+1 < len(buf) && buf[i] >= 0x80 && buf[i+1] < 0x80 {
			n = uint64(buf[i]&0x7f) | uint64(buf[i+1])<<7
			i += 2
		} else {
			n, i = decodeUvarint(buf, i)
		}
		if n == 0 { // switch escape: Counts ignores switch events entirely
			_, i = decodeUvarint(buf, i)
			_, i = decodeUvarint(buf, i)
			inSwitch = true
			continue
		}
		if inSwitch {
			continue
		}
		if taken {
			tk[site] += n
		} else {
			nt[site] += n
		}
	}
}

// collectorFns is one collector's resolved entry points: ev for single
// events, run for RLE repeat runs, and sw/swRun for the switch-event
// equivalents (the drop stubs when the collector has no switch support).
// Splitting per-event from per-run lets a run-aware collector take its
// O(1) shortcut on genuine runs while single events — the common case on
// interleaved traces — keep the lean per-event path.
type collectorFns struct {
	ev    func(int32, bool)
	run   func(int32, bool, uint64)
	sw    func(int32, int32)
	swRun func(int32, int32, uint64)
}

// resolveFns resolves each collector's fastest entry points once, in
// order: RunCollector, then SiteCollector (runs expanded at the call),
// then legacy Collector. Multi members are flattened so a fan-out costs
// one decode, and all legacy collectors share a single synthesised-Term
// cache for the whole replay instead of allocating one map each.
func resolveFns(cs []Collector) []collectorFns {
	fns := make([]collectorFns, 0, len(cs))
	var terms map[int32]*ir.Term
	termFor := func(site int32) *ir.Term {
		t := terms[site]
		if t == nil {
			t = &ir.Term{Op: ir.TermBr, Site: site, Orig: site}
			terms[site] = t
		}
		return t
	}
	var add func(Collector)
	add = func(c Collector) {
		if m, ok := c.(Multi); ok {
			for _, member := range m {
				add(member)
			}
			return
		}
		rc, isRun := c.(RunCollector)
		sc, isSite := c.(SiteCollector)
		var f collectorFns
		switch {
		case isRun && isSite:
			f = collectorFns{ev: sc.RecordBranch, run: rc.RecordRun}
		case isRun:
			f = collectorFns{
				ev:  func(site int32, taken bool) { rc.RecordRun(site, taken, 1) },
				run: rc.RecordRun,
			}
		case isSite:
			f = collectorFns{
				ev: sc.RecordBranch,
				run: func(site int32, taken bool, n uint64) {
					for ; n > 0; n-- {
						sc.RecordBranch(site, taken)
					}
				},
			}
		default:
			if terms == nil {
				terms = make(map[int32]*ir.Term)
			}
			f = collectorFns{
				ev: func(site int32, taken bool) { c.Branch(termFor(site), taken) },
				run: func(site int32, taken bool, n uint64) {
					t := termFor(site)
					for ; n > 0; n-- {
						c.Branch(t, taken)
					}
				},
			}
		}
		if swc, ok := c.(SwitchCollector); ok {
			f.sw = swc.RecordSwitch
		} else if swr, ok := c.(SwitchRunCollector); ok {
			f.sw = func(site, outcome int32) { swr.RecordSwitchRun(site, outcome, 1) }
		} else {
			f.sw = dropSwitch
		}
		f.swRun = switchRunFn(c)
		fns = append(fns, f)
	}
	for _, c := range cs {
		add(c)
	}
	return fns
}

// ReplayInto decodes the slab once and fans every event out to all
// collectors — run-aware collectors get whole RLE runs, the rest get the
// events expanded at the callback. This replaces the historical
// per-collector re-decode: N collectors now cost one pass.
func (s *Slab) ReplayInto(cs ...Collector) {
	s.mustSealed("ReplayInto")
	if len(cs) == 1 {
		if c, ok := cs[0].(*Counts); ok {
			replayCountsBytes(s.buf, c)
			return
		}
		// A lone collector with both fine- and run-grained entry points
		// needs none of the resolveFns scaffolding; dispatching straight
		// to its methods keeps pooled request paths at a couple of fixed
		// allocations per replay.
		if rc, ok := cs[0].(RunCollector); ok {
			if sc, ok := cs[0].(SiteCollector); ok {
				sw := dropSwitch
				if swc, ok := cs[0].(SwitchCollector); ok {
					sw = swc.RecordSwitch
				}
				replayBytes(s.buf, sc.RecordBranch, rc.RecordRun, sw, switchRunFn(cs[0]))
				return
			}
		}
	}
	fns := resolveFns(cs)
	switch len(fns) {
	case 0:
	case 1:
		replayBytes(s.buf, fns[0].ev, fns[0].run, fns[0].sw, fns[0].swRun)
	default:
		replayBytes(s.buf, func(site int32, taken bool) {
			for _, f := range fns {
				f.ev(site, taken)
			}
		}, func(site int32, taken bool, n uint64) {
			for _, f := range fns {
				f.run(site, taken, n)
			}
		}, func(site, outcome int32) {
			for _, f := range fns {
				f.sw(site, outcome)
			}
		}, func(site, outcome int32, n uint64) {
			for _, f := range fns {
				f.swRun(site, outcome, n)
			}
		})
	}
}

// minPartition is the slab size (in events) below which ReplayPartitioned
// falls back to the fused single pass: shorter streams cannot amortise
// goroutine spawn and shard merge.
const minPartition = 4 * ckEvery

// ReplayPartitioned replays the slab across up to workers goroutines,
// splitting the encoded stream at RLE-aligned checkpoints (recorded every
// ckEvery events by Record) so each segment decodes independently. Every
// collector must be Sharded — order-insensitive — for the split to be
// exact; if any is not, or the slab is too small to pay for the fan-out,
// it degrades to ReplayInto. Shards are merged collector-major in
// partition (stream) order, the runner's by-index merge discipline, so
// results are deterministic and bit-identical to the single pass.
func (s *Slab) ReplayPartitioned(workers int, cs ...Collector) {
	s.mustSealed("ReplayPartitioned")
	if workers > len(s.cks)+1 {
		workers = len(s.cks) + 1
	}
	if workers <= 1 || s.n < minPartition || len(cs) == 0 {
		s.ReplayInto(cs...)
		return
	}
	sharded := make([]Sharded, len(cs))
	for i, c := range cs {
		sh, ok := c.(Sharded)
		if !ok {
			s.ReplayInto(cs...)
			return
		}
		sharded[i] = sh
	}
	segs := s.segments(workers)
	if len(segs) < 2 {
		s.ReplayInto(cs...)
		return
	}
	shards := make([][]RunCollector, len(segs))
	var wg sync.WaitGroup
	for pi := range segs {
		local := make([]RunCollector, len(sharded))
		for ci, sh := range sharded {
			local[ci] = sh.NewShard()
		}
		shards[pi] = local
		seg := segs[pi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if len(local) == 1 {
				if c, ok := local[0].(*Counts); ok {
					replayCountsBytes(seg, c)
					return
				}
				replayRunBytes(seg, local[0].RecordRun, switchRunFn(local[0]))
				return
			}
			swFns := make([]func(int32, int32, uint64), len(local))
			for i, rc := range local {
				swFns[i] = switchRunFn(rc)
			}
			replayRunBytes(seg, func(site int32, taken bool, n uint64) {
				for _, rc := range local {
					rc.RecordRun(site, taken, n)
				}
			}, func(site, outcome int32, n uint64) {
				for _, fn := range swFns {
					fn(site, outcome, n)
				}
			})
		}()
	}
	wg.Wait()
	for ci, sh := range sharded {
		for pi := range shards {
			sh.Merge(shards[pi][ci])
		}
	}
}

// segments cuts the encoded stream into at most want byte ranges of
// roughly equal event counts, each starting at a checkpointed plain event
// code.
func (s *Slab) segments(want int) [][]byte {
	per := s.n / uint64(want)
	if per < ckEvery {
		per = ckEvery
	}
	segs := make([][]byte, 0, want)
	start, done := 0, uint64(0)
	for _, ck := range s.cks {
		if ck.done-done >= per && len(segs) < want-1 {
			segs = append(segs, s.buf[start:ck.off])
			start, done = ck.off, ck.done
		}
	}
	return append(segs, s.buf[start:])
}
