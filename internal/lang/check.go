package lang

import (
	"fmt"

	"repro/internal/ir"
)

// Symbol is a resolved variable reference.
type Symbol struct {
	Name   string
	Type   ir.Type
	Global *VarDecl // nil for locals and parameters
	Slot   ir.Reg   // register slot, valid when Global == nil
}

// Builtin enumerates the BL builtin functions.
type Builtin uint8

const (
	BuiltinNone Builtin = iota
	BuiltinPrint
	BuiltinSqrt
	BuiltinAbs
	BuiltinMin
	BuiltinMax
	BuiltinToInt   // int(x)
	BuiltinToFloat // float(x)
)

// CallTarget is the resolved callee of a CallExpr: either a builtin or a
// user function.
type CallTarget struct {
	Builtin Builtin
	Func    *FuncDecl
}

// Info carries the results of type checking, consumed by the lowering pass.
type Info struct {
	// Types maps every expression to its type.
	Types map[Expr]ir.Type
	// Idents resolves scalar variable references.
	Idents map[*Ident]*Symbol
	// Assigns resolves assignment targets (scalar or array global).
	Assigns map[*AssignStmt]*Symbol
	// ArrayRefs resolves array accesses (IndexExpr and indexed assigns).
	ArrayRefs map[Expr]*VarDecl
	// AssignArrays resolves the array of indexed AssignStmts.
	AssignArrays map[*AssignStmt]*VarDecl
	// Calls resolves call targets.
	Calls map[*CallExpr]CallTarget
	// LocalSlots is the number of register slots (params + named locals)
	// each function needs before temporaries.
	LocalSlots map[*FuncDecl]int
	// Funcs and Globals index the declarations by name.
	Funcs   map[string]*FuncDecl
	Globals map[string]*VarDecl

	// declSlots maps each local declaration to its register slot; the
	// lowering pass reads it to initialise the slot.
	declSlots map[*LocalDecl]ir.Reg
}

type checker struct {
	info *Info
	fn   *FuncDecl
	// scopes is a stack of name→symbol maps for the current function.
	scopes []map[string]*Symbol
	slots  int
	loops  int
}

// Check resolves and type-checks a parsed file. It returns the first error
// found.
func Check(file *File) (*Info, error) {
	info := &Info{
		Types:        make(map[Expr]ir.Type),
		Idents:       make(map[*Ident]*Symbol),
		Assigns:      make(map[*AssignStmt]*Symbol),
		ArrayRefs:    make(map[Expr]*VarDecl),
		AssignArrays: make(map[*AssignStmt]*VarDecl),
		Calls:        make(map[*CallExpr]CallTarget),
		LocalSlots:   make(map[*FuncDecl]int),
		Funcs:        make(map[string]*FuncDecl),
		Globals:      make(map[string]*VarDecl),
		declSlots:    make(map[*LocalDecl]ir.Reg),
	}
	// Pass 1: collect top-level names (so calls/uses may precede decls).
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *VarDecl:
			if _, dup := info.Globals[d.Name]; dup {
				return nil, errf(d.Pos, "duplicate global %q", d.Name)
			}
			if _, dup := info.Funcs[d.Name]; dup {
				return nil, errf(d.Pos, "%q already declared as a function", d.Name)
			}
			if isReservedName(d.Name) {
				return nil, errf(d.Pos, "%q is a builtin name", d.Name)
			}
			info.Globals[d.Name] = d
		case *FuncDecl:
			if _, dup := info.Funcs[d.Name]; dup {
				return nil, errf(d.Pos, "duplicate function %q", d.Name)
			}
			if _, dup := info.Globals[d.Name]; dup {
				return nil, errf(d.Pos, "%q already declared as a global", d.Name)
			}
			if isReservedName(d.Name) {
				return nil, errf(d.Pos, "%q is a builtin name", d.Name)
			}
			info.Funcs[d.Name] = d
		}
	}
	c := &checker{info: info}
	// Pass 2: check global initialisers (must be constant).
	for _, d := range file.Decls {
		g, ok := d.(*VarDecl)
		if !ok || g.Init == nil {
			continue
		}
		t, _, err := constEval(g.Init)
		if err != nil {
			return nil, err
		}
		if t != g.Type {
			return nil, errf(g.Pos, "initialiser type %v does not match global %q of type %v", t, g.Name, g.Type)
		}
	}
	// Pass 3: check function bodies.
	for _, d := range file.Decls {
		fd, ok := d.(*FuncDecl)
		if !ok {
			continue
		}
		if err := c.checkFunc(fd); err != nil {
			return nil, err
		}
	}
	return info, nil
}

func isReservedName(n string) bool {
	switch n {
	case "print", "sqrt", "abs", "min", "max", "int", "float", "bool":
		return true
	}
	return false
}

func (c *checker) checkFunc(fd *FuncDecl) error {
	c.fn = fd
	c.slots = 0
	c.loops = 0
	c.scopes = []map[string]*Symbol{make(map[string]*Symbol)}
	for _, p := range fd.Params {
		if p.Type == ir.TVoid {
			return errf(p.Pos, "parameter %q has invalid type", p.Name)
		}
		if _, dup := c.scopes[0][p.Name]; dup {
			return errf(p.Pos, "duplicate parameter %q", p.Name)
		}
		c.scopes[0][p.Name] = &Symbol{Name: p.Name, Type: p.Type, Slot: ir.Reg(c.slots)}
		c.slots++
	}
	if err := c.checkBlock(fd.Body); err != nil {
		return err
	}
	c.info.LocalSlots[fd] = c.slots
	return nil
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	if g, ok := c.info.Globals[name]; ok {
		return &Symbol{Name: name, Type: g.Type, Global: g}
	}
	return nil
}

func (c *checker) declareLocal(pos Pos, name string, t ir.Type) (*Symbol, error) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return nil, errf(pos, "%q redeclared in this scope", name)
	}
	if isReservedName(name) {
		return nil, errf(pos, "%q is a builtin name", name)
	}
	s := &Symbol{Name: name, Type: t, Slot: ir.Reg(c.slots)}
	c.slots++
	top[name] = s
	return s, nil
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s)
	case *LocalDecl:
		if s.Type == ir.TVoid {
			return errf(s.Pos, "local %q has invalid type", s.Name)
		}
		if s.Init != nil {
			t, err := c.checkExpr(s.Init)
			if err != nil {
				return err
			}
			if t != s.Type {
				return errf(s.Pos, "cannot initialise %v local %q with %v value", s.Type, s.Name, t)
			}
		}
		sym, err := c.declareLocal(s.Pos, s.Name, s.Type)
		if err != nil {
			return err
		}
		c.info.declSlots[s] = sym.Slot
		return nil
	case *AssignStmt:
		return c.checkAssign(s)
	case *IfStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkCond(s.Cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkBlock(s.Body)
	case *SwitchStmt:
		return c.checkSwitch(s)
	case *ForStmt:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkCond(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkBlock(s.Body)
	case *BreakStmt:
		if c.loops == 0 {
			return errf(s.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return errf(s.Pos, "continue outside loop")
		}
		return nil
	case *ReturnStmt:
		if c.fn.Ret == ir.TVoid {
			if s.Value != nil {
				return errf(s.Pos, "void function %q returns a value", c.fn.Name)
			}
			return nil
		}
		if s.Value == nil {
			return errf(s.Pos, "function %q must return %v", c.fn.Name, c.fn.Ret)
		}
		t, err := c.checkExpr(s.Value)
		if err != nil {
			return err
		}
		if t != c.fn.Ret {
			return errf(s.Pos, "cannot return %v from function %q returning %v", t, c.fn.Name, c.fn.Ret)
		}
		return nil
	case *ExprStmt:
		call, ok := s.X.(*CallExpr)
		if !ok {
			return errf(s.Pos, "expression statement must be a call")
		}
		_, err := c.checkCall(call, true)
		return err
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

// maxSwitchLabel bounds case labels: lowering builds a dense target table
// of size max(label)+1 (gaps dispatch to default), so an enormous label
// would balloon the IR. Interpreter-style workloads use small dense opcode
// spaces, far below this.
const maxSwitchLabel = 1023

func (c *checker) checkSwitch(s *SwitchStmt) error {
	t, err := c.checkExpr(s.Tag)
	if err != nil {
		return err
	}
	if t != ir.TInt {
		return errf(s.Tag.Position(), "switch tag must be int, got %v", t)
	}
	seen := make(map[int64]bool, len(s.Cases))
	for i := range s.Cases {
		cs := &s.Cases[i]
		if cs.Val < 0 || cs.Val > maxSwitchLabel {
			return errf(cs.Pos, "case label %d out of range [0, %d]", cs.Val, maxSwitchLabel)
		}
		if seen[cs.Val] {
			return errf(cs.Pos, "duplicate case label %d", cs.Val)
		}
		seen[cs.Val] = true
		if err := c.checkBlock(cs.Body); err != nil {
			return err
		}
	}
	if s.Default != nil {
		return c.checkBlock(s.Default)
	}
	return nil
}

func (c *checker) checkAssign(s *AssignStmt) error {
	vt, err := c.checkExpr(s.Value)
	if err != nil {
		return err
	}
	if s.Index != nil {
		g, ok := c.info.Globals[s.Name]
		if !ok || g.Len == 0 {
			return errf(s.Pos, "%q is not a global array", s.Name)
		}
		it, err := c.checkExpr(s.Index)
		if err != nil {
			return err
		}
		if it != ir.TInt {
			return errf(s.Pos, "array index must be int, got %v", it)
		}
		if vt != g.Type {
			return errf(s.Pos, "cannot store %v into %v array %q", vt, g.Type, s.Name)
		}
		c.info.AssignArrays[s] = g
		return nil
	}
	sym := c.lookup(s.Name)
	if sym == nil {
		return errf(s.Pos, "undefined variable %q", s.Name)
	}
	if sym.Global != nil && sym.Global.Len > 0 {
		return errf(s.Pos, "cannot assign whole array %q", s.Name)
	}
	if vt != sym.Type {
		return errf(s.Pos, "cannot assign %v to %v variable %q", vt, sym.Type, s.Name)
	}
	c.info.Assigns[s] = sym
	return nil
}

func (c *checker) checkCond(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if t != ir.TBool {
		return errf(e.Position(), "condition must be bool, got %v", t)
	}
	return nil
}

func (c *checker) checkExpr(e Expr) (ir.Type, error) {
	t, err := c.typeOf(e)
	if err != nil {
		return ir.TVoid, err
	}
	c.info.Types[e] = t
	return t, nil
}

func (c *checker) typeOf(e Expr) (ir.Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return ir.TInt, nil
	case *FloatLit:
		return ir.TFloat, nil
	case *BoolLit:
		return ir.TBool, nil
	case *Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			return ir.TVoid, errf(e.Pos, "undefined variable %q", e.Name)
		}
		if sym.Global != nil && sym.Global.Len > 0 {
			return ir.TVoid, errf(e.Pos, "array %q used as scalar", e.Name)
		}
		c.info.Idents[e] = sym
		return sym.Type, nil
	case *IndexExpr:
		g, ok := c.info.Globals[e.Name]
		if !ok || g.Len == 0 {
			return ir.TVoid, errf(e.Pos, "%q is not a global array", e.Name)
		}
		it, err := c.checkExpr(e.Index)
		if err != nil {
			return ir.TVoid, err
		}
		if it != ir.TInt {
			return ir.TVoid, errf(e.Pos, "array index must be int, got %v", it)
		}
		c.info.ArrayRefs[e] = g
		return g.Type, nil
	case *CallExpr:
		return c.checkCall(e, false)
	case *UnaryExpr:
		t, err := c.checkExpr(e.X)
		if err != nil {
			return ir.TVoid, err
		}
		switch e.Op {
		case TokMinus:
			if t != ir.TInt && t != ir.TFloat {
				return ir.TVoid, errf(e.Pos, "operator - needs int or float, got %v", t)
			}
			return t, nil
		case TokNot:
			if t != ir.TBool {
				return ir.TVoid, errf(e.Pos, "operator ! needs bool, got %v", t)
			}
			return ir.TBool, nil
		}
		return ir.TVoid, errf(e.Pos, "unknown unary operator %v", e.Op)
	case *BinaryExpr:
		return c.checkBinary(e)
	}
	return ir.TVoid, fmt.Errorf("lang: unknown expression %T", e)
}

func (c *checker) checkBinary(e *BinaryExpr) (ir.Type, error) {
	xt, err := c.checkExpr(e.X)
	if err != nil {
		return ir.TVoid, err
	}
	yt, err := c.checkExpr(e.Y)
	if err != nil {
		return ir.TVoid, err
	}
	if xt != yt {
		return ir.TVoid, errf(e.Pos, "mismatched operand types %v and %v (no implicit conversion; use int()/float())", xt, yt)
	}
	switch e.Op {
	case TokPlus, TokMinus, TokStar, TokSlash:
		if xt != ir.TInt && xt != ir.TFloat {
			return ir.TVoid, errf(e.Pos, "operator %v needs int or float operands, got %v", e.Op, xt)
		}
		return xt, nil
	case TokPercent, TokAmp, TokPipe, TokCaret, TokShl, TokShr:
		if xt != ir.TInt {
			return ir.TVoid, errf(e.Pos, "operator %v needs int operands, got %v", e.Op, xt)
		}
		return ir.TInt, nil
	case TokEq, TokNe:
		if xt == ir.TVoid {
			return ir.TVoid, errf(e.Pos, "cannot compare %v values", xt)
		}
		return ir.TBool, nil
	case TokLt, TokLe, TokGt, TokGe:
		if xt != ir.TInt && xt != ir.TFloat {
			return ir.TVoid, errf(e.Pos, "operator %v needs int or float operands, got %v", e.Op, xt)
		}
		return ir.TBool, nil
	case TokAndAnd, TokOrOr:
		if xt != ir.TBool {
			return ir.TVoid, errf(e.Pos, "operator %v needs bool operands, got %v", e.Op, xt)
		}
		return ir.TBool, nil
	}
	return ir.TVoid, errf(e.Pos, "unknown binary operator %v", e.Op)
}

func (c *checker) checkCall(e *CallExpr, stmt bool) (ir.Type, error) {
	argTypes := make([]ir.Type, len(e.Args))
	for i, a := range e.Args {
		t, err := c.checkExpr(a)
		if err != nil {
			return ir.TVoid, err
		}
		argTypes[i] = t
	}
	want := func(n int) error {
		if len(e.Args) != n {
			return errf(e.Pos, "%s expects %d argument(s), got %d", e.Name, n, len(e.Args))
		}
		return nil
	}
	numeric := func(i int) error {
		if argTypes[i] != ir.TInt && argTypes[i] != ir.TFloat {
			return errf(e.Pos, "%s argument must be int or float, got %v", e.Name, argTypes[i])
		}
		return nil
	}
	switch e.Name {
	case "print":
		if err := want(1); err != nil {
			return ir.TVoid, err
		}
		if argTypes[0] == ir.TVoid {
			return ir.TVoid, errf(e.Pos, "cannot print void")
		}
		c.info.Calls[e] = CallTarget{Builtin: BuiltinPrint}
		c.info.Types[e] = ir.TVoid
		return ir.TVoid, nil
	case "sqrt":
		if err := want(1); err != nil {
			return ir.TVoid, err
		}
		if argTypes[0] != ir.TFloat {
			return ir.TVoid, errf(e.Pos, "sqrt needs a float argument, got %v", argTypes[0])
		}
		c.info.Calls[e] = CallTarget{Builtin: BuiltinSqrt}
		c.info.Types[e] = ir.TFloat
		return ir.TFloat, nil
	case "abs":
		if err := want(1); err != nil {
			return ir.TVoid, err
		}
		if err := numeric(0); err != nil {
			return ir.TVoid, err
		}
		c.info.Calls[e] = CallTarget{Builtin: BuiltinAbs}
		c.info.Types[e] = argTypes[0]
		return argTypes[0], nil
	case "min", "max":
		if err := want(2); err != nil {
			return ir.TVoid, err
		}
		if err := numeric(0); err != nil {
			return ir.TVoid, err
		}
		if argTypes[0] != argTypes[1] {
			return ir.TVoid, errf(e.Pos, "%s arguments must have the same type", e.Name)
		}
		bi := BuiltinMin
		if e.Name == "max" {
			bi = BuiltinMax
		}
		c.info.Calls[e] = CallTarget{Builtin: bi}
		c.info.Types[e] = argTypes[0]
		return argTypes[0], nil
	case "int":
		if err := want(1); err != nil {
			return ir.TVoid, err
		}
		if argTypes[0] == ir.TVoid {
			return ir.TVoid, errf(e.Pos, "cannot convert void to int")
		}
		c.info.Calls[e] = CallTarget{Builtin: BuiltinToInt}
		c.info.Types[e] = ir.TInt
		return ir.TInt, nil
	case "float":
		if err := want(1); err != nil {
			return ir.TVoid, err
		}
		if argTypes[0] != ir.TInt && argTypes[0] != ir.TFloat {
			return ir.TVoid, errf(e.Pos, "cannot convert %v to float", argTypes[0])
		}
		c.info.Calls[e] = CallTarget{Builtin: BuiltinToFloat}
		c.info.Types[e] = ir.TFloat
		return ir.TFloat, nil
	}
	fd, ok := c.info.Funcs[e.Name]
	if !ok {
		return ir.TVoid, errf(e.Pos, "undefined function %q", e.Name)
	}
	if len(e.Args) != len(fd.Params) {
		return ir.TVoid, errf(e.Pos, "%s expects %d argument(s), got %d", e.Name, len(fd.Params), len(e.Args))
	}
	for i, pt := range fd.Params {
		if argTypes[i] != pt.Type {
			return ir.TVoid, errf(e.Pos, "argument %d of %s: have %v, want %v", i+1, e.Name, argTypes[i], pt.Type)
		}
	}
	if !stmt && fd.Ret == ir.TVoid {
		return ir.TVoid, errf(e.Pos, "void function %q used as a value", e.Name)
	}
	c.info.Calls[e] = CallTarget{Func: fd}
	c.info.Types[e] = fd.Ret
	return fd.Ret, nil
}

// constEval evaluates a constant expression for a global initialiser.
// Supported forms: literals and unary minus over literals.
func constEval(e Expr) (ir.Type, int64, error) {
	switch e := e.(type) {
	case *IntLit:
		return ir.TInt, e.Val, nil
	case *FloatLit:
		var in ir.Instr
		in.SetFloatImm(e.Val)
		return ir.TFloat, in.Imm, nil
	case *BoolLit:
		if e.Val {
			return ir.TBool, 1, nil
		}
		return ir.TBool, 0, nil
	case *UnaryExpr:
		if e.Op != TokMinus {
			return ir.TVoid, 0, errf(e.Pos, "global initialiser must be a constant")
		}
		t, v, err := constEval(e.X)
		if err != nil {
			return ir.TVoid, 0, err
		}
		switch t {
		case ir.TInt:
			return ir.TInt, -v, nil
		case ir.TFloat:
			var in ir.Instr
			in.Imm = v
			in.SetFloatImm(-in.FloatImm())
			return ir.TFloat, in.Imm, nil
		}
		return ir.TVoid, 0, errf(e.Pos, "cannot negate %v constant", t)
	}
	return ir.TVoid, 0, errf(e.Position(), "global initialiser must be a constant")
}
