package lang

import (
	"strconv"

	"repro/internal/ir"
)

// Parser is a recursive-descent parser for BL with Pratt-style expression
// parsing.
type Parser struct {
	lex   *Lexer
	tok   Token
	err   error
	depth int
}

// maxNestDepth bounds statement and expression nesting so adversarial
// input (deep parens, long else-if chains) produces a parse error instead
// of exhausting the goroutine stack. Real BL programs nest a handful of
// levels; 200 is far beyond anything the workloads use.
const maxNestDepth = 200

// enter counts one level of recursive nesting; when the bound is exceeded
// it reports an error (forcing the parser to EOF) and returns false.
func (p *Parser) enter(pos Pos) bool {
	p.depth++
	if p.depth > maxNestDepth {
		p.fail(pos, "nesting deeper than %d levels", maxNestDepth)
		return false
	}
	return true
}

func (p *Parser) leave() { p.depth-- }

// Parse parses a complete BL source file.
func Parse(src string) (*File, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	f := &File{}
	for p.tok.Kind != TokEOF {
		if p.err != nil {
			return nil, p.err
		}
		switch p.tok.Kind {
		case TokVar:
			d := p.parseVarDecl()
			if p.err != nil {
				return nil, p.err
			}
			f.Decls = append(f.Decls, d)
		case TokFunc:
			d := p.parseFuncDecl()
			if p.err != nil {
				return nil, p.err
			}
			f.Decls = append(f.Decls, d)
		default:
			return nil, errf(p.tok.Pos, "expected declaration, found %s", describe(p.tok))
		}
	}
	return f, p.err
}

func (p *Parser) next() {
	if p.err != nil {
		p.tok = Token{Kind: TokEOF}
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		p.tok = Token{Kind: TokEOF}
		return
	}
	p.tok = t
}

func (p *Parser) fail(pos Pos, format string, args ...any) {
	if p.err == nil {
		p.err = errf(pos, format, args...)
	}
	p.tok = Token{Kind: TokEOF}
}

func (p *Parser) expect(k TokKind) Token {
	t := p.tok
	if t.Kind != k {
		p.fail(t.Pos, "expected '%s', found %s", k, describe(t))
		return t
	}
	p.next()
	return t
}

func (p *Parser) accept(k TokKind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) parseType() ir.Type {
	switch p.tok.Kind {
	case TokTypeInt:
		p.next()
		return ir.TInt
	case TokTypeFloat:
		p.next()
		return ir.TFloat
	case TokTypeBool:
		p.next()
		return ir.TBool
	}
	p.fail(p.tok.Pos, "expected type, found %s", describe(p.tok))
	return ir.TVoid
}

// parseVarDecl parses "var name type (= expr)? ;" or "var name [N] type ;".
func (p *Parser) parseVarDecl() *VarDecl {
	pos := p.expect(TokVar).Pos
	name := p.expect(TokIdent)
	d := &VarDecl{Pos: pos, Name: name.Text}
	if p.accept(TokLBracket) {
		lenTok := p.expect(TokIntLit)
		n, convErr := strconv.ParseInt(lenTok.Text, 10, 32)
		if convErr != nil || n <= 0 {
			p.fail(lenTok.Pos, "invalid array length %q", lenTok.Text)
			return d
		}
		p.expect(TokRBracket)
		d.Len = int(n)
		d.Type = p.parseType()
		if d.Type == ir.TBool {
			p.fail(pos, "array element type must be int or float")
		}
	} else {
		d.Type = p.parseType()
		if p.accept(TokAssign) {
			d.Init = p.parseExpr()
		}
	}
	p.expect(TokSemi)
	return d
}

func (p *Parser) parseFuncDecl() *FuncDecl {
	pos := p.expect(TokFunc).Pos
	name := p.expect(TokIdent)
	d := &FuncDecl{Pos: pos, Name: name.Text, Ret: ir.TVoid}
	p.expect(TokLParen)
	if p.tok.Kind != TokRParen {
		for {
			pn := p.expect(TokIdent)
			pt := p.parseType()
			d.Params = append(d.Params, Param{Pos: pn.Pos, Name: pn.Text, Type: pt})
			if !p.accept(TokComma) {
				break
			}
		}
	}
	p.expect(TokRParen)
	switch p.tok.Kind {
	case TokTypeInt, TokTypeFloat, TokTypeBool:
		d.Ret = p.parseType()
	}
	d.Body = p.parseBlock()
	return d
}

func (p *Parser) parseBlock() *BlockStmt {
	b := &BlockStmt{Pos: p.tok.Pos}
	p.expect(TokLBrace)
	for p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.err != nil {
			return b
		}
	}
	p.expect(TokRBrace)
	return b
}

func (p *Parser) parseStmt() Stmt {
	if !p.enter(p.tok.Pos) {
		return &ExprStmt{Pos: p.tok.Pos, X: &IntLit{Pos: p.tok.Pos}}
	}
	defer p.leave()
	switch p.tok.Kind {
	case TokVar:
		return p.parseLocalDecl()
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokSwitch:
		return p.parseSwitch()
	case TokBreak:
		pos := p.tok.Pos
		p.next()
		p.expect(TokSemi)
		return &BreakStmt{Pos: pos}
	case TokContinue:
		pos := p.tok.Pos
		p.next()
		p.expect(TokSemi)
		return &ContinueStmt{Pos: pos}
	case TokReturn:
		pos := p.tok.Pos
		p.next()
		r := &ReturnStmt{Pos: pos}
		if p.tok.Kind != TokSemi {
			r.Value = p.parseExpr()
		}
		p.expect(TokSemi)
		return r
	case TokLBrace:
		return p.parseBlock()
	}
	s := p.parseSimpleStmt()
	p.expect(TokSemi)
	return s
}

func (p *Parser) parseLocalDecl() *LocalDecl {
	pos := p.expect(TokVar).Pos
	name := p.expect(TokIdent)
	d := &LocalDecl{Pos: pos, Name: name.Text}
	if p.tok.Kind == TokLBracket {
		p.fail(p.tok.Pos, "local arrays are not supported; declare %q globally", name.Text)
		return d
	}
	d.Type = p.parseType()
	if p.accept(TokAssign) {
		d.Init = p.parseExpr()
	}
	p.expect(TokSemi)
	return d
}

// parseSimpleStmt parses an assignment or call statement (no semicolon).
func (p *Parser) parseSimpleStmt() Stmt {
	if p.tok.Kind != TokIdent {
		p.fail(p.tok.Pos, "expected statement, found %s", describe(p.tok))
		return &ExprStmt{Pos: p.tok.Pos, X: &IntLit{Pos: p.tok.Pos}}
	}
	name := p.tok
	p.next()
	switch p.tok.Kind {
	case TokAssign:
		p.next()
		return &AssignStmt{Pos: name.Pos, Name: name.Text, Value: p.parseExpr()}
	case TokLBracket:
		p.next()
		idx := p.parseExpr()
		p.expect(TokRBracket)
		p.expect(TokAssign)
		return &AssignStmt{Pos: name.Pos, Name: name.Text, Index: idx, Value: p.parseExpr()}
	case TokLParen:
		call := p.parseCallAfterName(name)
		return &ExprStmt{Pos: name.Pos, X: call}
	}
	p.fail(p.tok.Pos, "expected '=', '[', or '(' after %q, found %s", name.Text, describe(p.tok))
	return &ExprStmt{Pos: name.Pos, X: &IntLit{Pos: name.Pos}}
}

func (p *Parser) parseIf() *IfStmt {
	pos := p.tok.Pos
	if !p.enter(pos) { // else-if chains recurse here without parseStmt
		return &IfStmt{Pos: pos, Cond: &BoolLit{Pos: pos}, Then: &BlockStmt{Pos: pos}}
	}
	defer p.leave()
	p.expect(TokIf)
	s := &IfStmt{Pos: pos, Cond: p.parseExpr()}
	s.Then = p.parseBlock()
	if p.accept(TokElse) {
		if p.tok.Kind == TokIf {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *Parser) parseWhile() *WhileStmt {
	pos := p.expect(TokWhile).Pos
	s := &WhileStmt{Pos: pos, Cond: p.parseExpr()}
	s.Body = p.parseBlock()
	return s
}

// parseSwitch parses
//
//	switch expr { case N: stmts... [case M: stmts...]... [default: stmts...] }
//
// Case labels are non-negative integer literals; bodies run to the next
// label (no fallthrough). The default arm, when present, must come last.
func (p *Parser) parseSwitch() *SwitchStmt {
	pos := p.expect(TokSwitch).Pos
	s := &SwitchStmt{Pos: pos, Tag: p.parseExpr()}
	p.expect(TokLBrace)
	parseArmBody := func() *BlockStmt {
		b := &BlockStmt{Pos: p.tok.Pos}
		for p.tok.Kind != TokCase && p.tok.Kind != TokDefault &&
			p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
			b.Stmts = append(b.Stmts, p.parseStmt())
			if p.err != nil {
				return b
			}
		}
		return b
	}
	for p.tok.Kind == TokCase {
		cpos := p.tok.Pos
		p.next()
		lit := p.expect(TokIntLit)
		v, convErr := strconv.ParseInt(lit.Text, 10, 32)
		if convErr != nil {
			p.fail(lit.Pos, "invalid case label %q", lit.Text)
			return s
		}
		p.expect(TokColon)
		s.Cases = append(s.Cases, SwitchCase{Pos: cpos, Val: v, Body: parseArmBody()})
		if p.err != nil {
			return s
		}
	}
	if p.accept(TokDefault) {
		p.expect(TokColon)
		s.Default = parseArmBody()
	}
	if len(s.Cases) == 0 && p.err == nil {
		p.fail(pos, "switch needs at least one case")
		return s
	}
	p.expect(TokRBrace)
	return s
}

func (p *Parser) parseFor() *ForStmt {
	pos := p.expect(TokFor).Pos
	s := &ForStmt{Pos: pos}
	if p.tok.Kind != TokSemi {
		if p.tok.Kind == TokVar {
			d := p.parseLocalDecl() // consumes the ';'
			s.Init = d
		} else {
			s.Init = p.parseSimpleStmt()
			p.expect(TokSemi)
		}
	} else {
		p.expect(TokSemi)
	}
	if p.tok.Kind != TokSemi {
		s.Cond = p.parseExpr()
	}
	p.expect(TokSemi)
	if p.tok.Kind != TokLBrace {
		s.Post = p.parseSimpleStmt()
	}
	s.Body = p.parseBlock()
	return s
}

// Expression parsing: precedence climbing. Highest binds tightest.
//
//	7: unary - !
//	6: * / % << >> &
//	5: + - | ^
//	4: == != < <= > >=
//	3: &&
//	2: ||
func binPrec(k TokKind) int {
	switch k {
	case TokStar, TokSlash, TokPercent, TokShl, TokShr, TokAmp:
		return 6
	case TokPlus, TokMinus, TokPipe, TokCaret:
		return 5
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		return 4
	case TokAndAnd:
		return 3
	case TokOrOr:
		return 2
	}
	return 0
}

func (p *Parser) parseExpr() Expr { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		prec := binPrec(p.tok.Kind)
		if prec < minPrec || prec == 0 {
			return lhs
		}
		op := p.tok
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &BinaryExpr{Pos: op.Pos, Op: op.Kind, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() Expr {
	if !p.enter(p.tok.Pos) { // deep parens re-enter via parsePrimary
		return &IntLit{Pos: p.tok.Pos}
	}
	defer p.leave()
	switch p.tok.Kind {
	case TokMinus:
		pos := p.tok.Pos
		p.next()
		return &UnaryExpr{Pos: pos, Op: TokMinus, X: p.parseUnary()}
	case TokNot:
		pos := p.tok.Pos
		p.next()
		return &UnaryExpr{Pos: pos, Op: TokNot, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() Expr {
	t := p.tok
	switch t.Kind {
	case TokIntLit:
		p.next()
		v, convErr := strconv.ParseInt(t.Text, 10, 64)
		if convErr != nil {
			p.fail(t.Pos, "invalid integer literal %q", t.Text)
		}
		return &IntLit{Pos: t.Pos, Val: v}
	case TokFloatLit:
		p.next()
		v, convErr := strconv.ParseFloat(t.Text, 64)
		if convErr != nil {
			p.fail(t.Pos, "invalid float literal %q", t.Text)
		}
		return &FloatLit{Pos: t.Pos, Val: v}
	case TokTrue:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: true}
	case TokFalse:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: false}
	case TokLParen:
		p.next()
		e := p.parseExpr()
		p.expect(TokRParen)
		return e
	case TokTypeInt, TokTypeFloat:
		// Conversion: int(expr) / float(expr).
		p.next()
		p.expect(TokLParen)
		arg := p.parseExpr()
		p.expect(TokRParen)
		name := "int"
		if t.Kind == TokTypeFloat {
			name = "float"
		}
		return &CallExpr{Pos: t.Pos, Name: name, Args: []Expr{arg}}
	case TokIdent:
		p.next()
		switch p.tok.Kind {
		case TokLParen:
			return p.parseCallAfterName(t)
		case TokLBracket:
			p.next()
			idx := p.parseExpr()
			p.expect(TokRBracket)
			return &IndexExpr{Pos: t.Pos, Name: t.Text, Index: idx}
		}
		return &Ident{Pos: t.Pos, Name: t.Text}
	}
	p.fail(t.Pos, "expected expression, found %s", describe(t))
	return &IntLit{Pos: t.Pos}
}

func (p *Parser) parseCallAfterName(name Token) *CallExpr {
	call := &CallExpr{Pos: name.Pos, Name: name.Text}
	p.expect(TokLParen)
	if p.tok.Kind != TokRParen {
		for {
			call.Args = append(call.Args, p.parseExpr())
			if !p.accept(TokComma) {
				break
			}
		}
	}
	p.expect(TokRParen)
	return call
}
