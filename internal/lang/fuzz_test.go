// Fuzz tests for the BL front end. External test package so the seed
// corpus can come from the real workloads in internal/bench without an
// import cycle (bench imports lang).
package lang_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/lang"
)

// FuzzParse feeds arbitrary bytes through the whole front end — lexer,
// parser, checker, IR lowering. The contract under fuzzing is "error or
// program, never panic, never unbounded recursion"; the parser's
// maxNestDepth guard exists for exactly this test.
func FuzzParse(f *testing.F) {
	for _, w := range bench.Workloads() {
		f.Add(w.Source)
	}
	f.Add("")
	f.Add("var x int = 1;")
	f.Add("func main() { print(1); }")
	f.Add("func f(a int, b float) bool { return a < int(b); }")
	f.Add("func main() { if true { } else if false { } else { } }")
	f.Add("func main() { for var i int = 0; i < 10; i = i + 1 { print(i); } }")
	f.Add("func main() { while 1 < 2 { break; } }")
	f.Add("var a[10] int; func main() { a[0] = -a[1] * (a[2] | 3); }")
	f.Add(strings.Repeat("(", 64) + "1" + strings.Repeat(")", 64))
	f.Add("func main() { x = 1.5e308 % 0; }")
	f.Add("\x00\xff;func\x00")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Compile(src)
		if err == nil && prog == nil {
			t.Fatal("Compile returned nil program and nil error")
		}
	})
}

// TestParseDepthGuard pins the stack-exhaustion fix: pathological nesting
// must fail cleanly at the parser's depth bound, for every recursive
// construct.
func TestParseDepthGuard(t *testing.T) {
	deep := func(open, mid, close string, n int) string {
		return strings.Repeat(open, n) + mid + strings.Repeat(close, n)
	}
	cases := map[string]string{
		"parens":  "func main() { x = " + deep("(", "1", ")", 100_000) + "; }",
		"unary":   "func main() { x = " + strings.Repeat("-", 100_000) + "1; }",
		"not":     "func main() { b = " + strings.Repeat("!", 100_000) + "true; }",
		"blocks":  "func main() " + deep("{", "", "}", 100_000),
		"while":   "func main() {" + deep("while true {", "", "}", 100_000) + "}",
		"else-if": "func main() { if true {}" + strings.Repeat(" else if true {}", 100_000) + " }",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := lang.Compile(src); err == nil {
				t.Fatal("expected depth-bound error, got success")
			} else if !strings.Contains(err.Error(), "nesting deeper") &&
				!strings.Contains(err.Error(), "expected") {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}
