package lang

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// run compiles src and executes main, returning its value.
func run(t *testing.T, src string) int64 {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := interp.New(prog)
	v, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("func f(x int) int { return x << 2; } // c\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokFunc, TokIdent, TokLParen, TokIdent, TokTypeInt, TokRParen,
		TokTypeInt, TokLBrace, TokReturn, TokIdent, TokShl, TokIntLit, TokSemi, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	src := "== != <= >= << >> && || ! & | ^ < > ="
	want := []TokKind{TokEq, TokNe, TokLe, TokGe, TokShl, TokShr, TokAndAnd,
		TokOrOr, TokNot, TokAmp, TokPipe, TokCaret, TokLt, TokGt, TokAssign, TokEOF}
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	toks, err := Tokenize("42 3.25 1e6 2.5e-3 7")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TokKind{TokIntLit, TokFloatLit, TokFloatLit, TokFloatLit, TokIntLit}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d (%q) = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestTokenizeBadChar(t *testing.T) {
	if _, err := Tokenize("a $ b"); err == nil {
		t.Fatal("want error for '$'")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("b at %v", toks[1].Pos)
	}
}

func TestEndToEndArithmetic(t *testing.T) {
	got := run(t, `
func main() int {
    var a int = 7;
    var b int = 3;
    return a*b + a/b - a%b + (a<<1) + (a>>1) + (a&b) + (a|b) + (a^b);
}`)
	want := int64(7*3 + 7/3 - 7%3 + (7 << 1) + (7 >> 1) + (7 & 3) + (7 | 3) + (7 ^ 3))
	if got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestEndToEndControlFlow(t *testing.T) {
	got := run(t, `
func main() int {
    var s int = 0;
    for var i int = 0; i < 10; i = i + 1 {
        if i % 2 == 0 {
            s = s + i;
        } else if i == 5 {
            s = s + 100;
        } else {
            s = s - 1;
        }
    }
    var j int = 0;
    while j < 5 {
        j = j + 1;
        if j == 3 { continue; }
        if j == 5 { break; }
        s = s + 1000;
    }
    return s;
}`)
	// even sum 0+2+4+6+8=20; i==5 adds 100; odds 1,3,7,9 subtract 4
	// while: j=1,2 add 1000 each; j=3 continue; j=4 adds 1000; j=5 break
	want := int64(20 + 100 - 4 + 3000)
	if got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestEndToEndShortCircuit(t *testing.T) {
	got := run(t, `
var calls int;

func bump() bool {
    calls = calls + 1;
    return true;
}

func main() int {
    var a bool = false && bump();
    var b bool = true || bump();
    var c bool = true && bump();
    var d bool = false || bump();
    if a || !b || !c || !d { return -1; }
    return calls;
}`)
	if got != 2 {
		t.Fatalf("calls = %d, want 2 (short circuit must skip bump)", got)
	}
}

func TestEndToEndRecursion(t *testing.T) {
	got := run(t, `
func ack(m int, n int) int {
    if m == 0 { return n + 1; }
    if n == 0 { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}

func main() int { return ack(2, 3); }`)
	if got != 9 {
		t.Fatalf("ack(2,3) = %d, want 9", got)
	}
}

func TestEndToEndGlobalsAndArrays(t *testing.T) {
	got := run(t, `
var total int = 5;
var buf [16]int;

func fill(n int) {
    for var i int = 0; i < n; i = i + 1 {
        buf[i] = i * i;
    }
}

func main() int {
    fill(16);
    var s int = total;
    for var i int = 0; i < 16; i = i + 1 {
        s = s + buf[i];
    }
    return s;
}`)
	want := int64(5)
	for i := int64(0); i < 16; i++ {
		want += i * i
	}
	if got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestEndToEndFloats(t *testing.T) {
	got := run(t, `
func main() int {
    var x float = 2.0;
    var y float = x * 8.0;        // 16
    var r float = sqrt(y);        // 4
    var z float = float(3) + 0.5; // 3.5
    if r > 3.9 && r < 4.1 && abs(-z) == 3.5 {
        return int(r + z);        // int(7.5) = 7
    }
    return -1;
}`)
	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestEndToEndBuiltins(t *testing.T) {
	got := run(t, `
func main() int {
    var a int = min(3, 9) + max(3, 9);  // 12
    var b float = min(1.5, 2.5) + max(1.5, 2.5); // 4.0
    print(a);
    print(int(b));
    return a + int(b) + abs(-5);
}`)
	if got != 12+4+5 {
		t.Fatalf("got %d", got)
	}
}

func TestImplicitReturnZero(t *testing.T) {
	got := run(t, `
func f(x int) int {
    if x > 0 { return 1; }
}
func main() int { return f(1) * 10 + f(-1); }`)
	if got != 10 {
		t.Fatalf("got %d, want 10", got)
	}
}

func TestVoidFunctions(t *testing.T) {
	got := run(t, `
var acc int;
func add(v int) { acc = acc + v; return; }
func main() int {
    add(4);
    add(6);
    return acc;
}`)
	if got != 10 {
		t.Fatalf("got %d", got)
	}
}

func TestScoping(t *testing.T) {
	got := run(t, `
var x int = 100;
func main() int {
    var x int = 1;
    {
        var x int = 2;
        if x != 2 { return -1; }
    }
    if x != 1 { return -2; }
    return x;
}`)
	if got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestGlobalInitialisers(t *testing.T) {
	got := run(t, `
var a int = -42;
var b float = 1.5;
var c bool = true;
func main() int {
    if c && b == 1.5 { return a; }
    return 0;
}`)
	if got != -42 {
		t.Fatalf("got %d", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefVar", `func main() int { return y; }`, "undefined variable"},
		{"undefFunc", `func main() int { return g(); }`, "undefined function"},
		{"typeMismatch", `func main() int { return 1 + 1.5; }`, "mismatched operand types"},
		{"condNotBool", `func main() int { if 1 { return 1; } return 0; }`, "condition must be bool"},
		{"boolArith", `func main() int { var b bool = true; return int(b + b); }`, "int or float"},
		{"breakOutside", `func main() int { break; return 0; }`, "break outside loop"},
		{"continueOutside", `func main() int { continue; return 0; }`, "continue outside loop"},
		{"voidAsValue", `func v() {} func main() int { return v(); }`, "used as a value"},
		{"wrongArity", `func f(a int) int { return a; } func main() int { return f(); }`, "expects 1 argument"},
		{"wrongArgType", `func f(a int) int { return a; } func main() int { return f(1.5); }`, "argument 1"},
		{"dupParam", `func f(a int, a int) int { return a; } func main() int { return f(1,2); }`, "duplicate parameter"},
		{"redeclare", `func main() int { var a int; var a int; return a; }`, "redeclared"},
		{"dupGlobal", `var g int; var g int; func main() int { return 0; }`, "duplicate global"},
		{"dupFunc", `func f() {} func f() {} func main() int { return 0; }`, "duplicate function"},
		{"globalNonConst", `var g int = 1 + 2; func main() int { return g; }`, "must be a constant"},
		{"globalTypeMismatch", `var g int = 1.5; func main() int { return g; }`, "does not match"},
		{"returnTypeMismatch", `func main() int { return 1.5; }`, "cannot return"},
		{"returnMissing", `func f() int { return; } func main() int { return f(); }`, "must return"},
		{"voidReturnsValue", `func v() { return 1; } func main() int { return 0; }`, "returns a value"},
		{"assignTypeMismatch", `func main() int { var a int; a = 1.5; return a; }`, "cannot assign"},
		{"arrayAsScalar", `var a [4]int; func main() int { return a; }`, "used as scalar"},
		{"scalarIndexed", `var s int; func main() int { return s[0]; }`, "not a global array"},
		{"floatIndex", `var a [4]int; func main() int { return a[1.0]; }`, "index must be int"},
		{"localArray", `func main() int { var a [4]int; return 0; }`, "not supported"},
		{"builtinName", `var print int; func main() int { return 0; }`, "builtin name"},
		{"notOnInt", `func main() int { if !1 { return 1; } return 0; }`, "needs bool"},
		{"sqrtInt", `func main() int { return int(sqrt(4)); }`, "float argument"},
		{"parseBadDecl", `int x;`, "expected declaration"},
		{"parseBadStmt", `func main() int { 42; return 0; }`, "expected statement"},
		{"parseMissingSemi", `func main() int { var a int = 1 return a; }`, "expected ';'"},
		{"parseUnclosed", `func main() int { return (1; }`, "expected ')'"},
		{"boolArrayElem", `var a [4]bool; func main() int { return 0; }`, "int or float"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestLoweredBranchStructure(t *testing.T) {
	prog, err := Compile(`
func main() int {
    var s int = 0;
    for var i int = 0; i < 100; i = i + 1 {
        if i % 3 == 0 && i % 5 == 0 { s = s + 1; }
    }
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	// for-cond + two && legs = 3 conditional branches.
	n := prog.NumberBranches(false)
	if n != 3 {
		t.Fatalf("branch sites = %d, want 3 (short-circuit must be real branches)", n)
	}
	m := interp.New(prog)
	v, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 { // multiples of 15 below 100: 0,15,...,90
		t.Fatalf("fizzbuzz count = %d, want 7", v)
	}
}

func TestLoweredLoopShape(t *testing.T) {
	prog, err := Compile(`
func main() int {
    var s int = 0;
    var i int = 0;
    while i < 4 { s = s + i; i = i + 1; }
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	if f == nil {
		t.Fatal("no main")
	}
	// The while head must be a Br block whose taken edge enters the body.
	var brBlocks int
	for _, b := range f.Blocks {
		if b.Term.Op == ir.TermBr {
			brBlocks++
		}
	}
	if brBlocks != 1 {
		t.Fatalf("br blocks = %d, want 1", brBlocks)
	}
}

func TestForWithoutCond(t *testing.T) {
	got := run(t, `
func main() int {
    var n int = 0;
    for ;; n = n + 1 {
        if n == 7 { break; }
    }
    return n;
}`)
	if got != 7 {
		t.Fatalf("got %d", got)
	}
}

func TestNestedLoopsWithBreaks(t *testing.T) {
	got := run(t, `
func main() int {
    var s int = 0;
    for var i int = 0; i < 5; i = i + 1 {
        for var j int = 0; j < 5; j = j + 1 {
            if j > i { break; }
            s = s + 1;
        }
    }
    return s;
}`)
	if got != 15 { // 1+2+3+4+5
		t.Fatalf("got %d, want 15", got)
	}
}

func TestCallBeforeDecl(t *testing.T) {
	got := run(t, `
func main() int { return later(20); }
func later(x int) int { return x + 2; }`)
	if got != 22 {
		t.Fatalf("got %d", got)
	}
}

func TestCompileValidates(t *testing.T) {
	prog, err := Compile(`func main() int { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if prog.Func("main") == nil {
		t.Fatal("missing main")
	}
}
