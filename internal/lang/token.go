// Package lang implements BL, the small imperative benchmark language this
// reproduction uses in place of the paper's C and Fortran programs. BL has
// int/float/bool scalars, global one-dimensional arrays, functions with
// recursion, structured control flow, and short-circuit boolean operators
// (which lower to real conditional branches, feeding the profiler).
//
// The package provides the lexer, a recursive-descent parser producing an
// AST, a type checker, and the lowering pass to the IR of internal/ir.
package lang

import "fmt"

// TokKind enumerates the lexical token kinds of BL.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit

	// Keywords.
	TokVar
	TokFunc
	TokIf
	TokElse
	TokWhile
	TokFor
	TokBreak
	TokContinue
	TokReturn
	TokSwitch
	TokCase
	TokDefault
	TokTrue
	TokFalse
	TokTypeInt
	TokTypeFloat
	TokTypeBool

	// Punctuation and operators.
	TokSemi     // ;
	TokColon    // :
	TokComma    // ,
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokAssign   // =
	TokEq       // ==
	TokNe       // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokAndAnd   // &&
	TokOrOr     // ||
	TokNot      // !
	TokAmp      // &
	TokPipe     // |
	TokCaret    // ^
	TokShl      // <<
	TokShr      // >>
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokIntLit: "int literal", TokFloatLit: "float literal",
	TokVar: "var", TokFunc: "func", TokIf: "if", TokElse: "else", TokWhile: "while",
	TokFor: "for", TokBreak: "break", TokContinue: "continue", TokReturn: "return",
	TokSwitch: "switch", TokCase: "case", TokDefault: "default",
	TokTrue: "true", TokFalse: "false",
	TokTypeInt: "int", TokTypeFloat: "float", TokTypeBool: "bool",
	TokSemi: ";", TokColon: ":", TokComma: ",", TokLParen: "(", TokRParen: ")",
	TokLBrace: "{", TokRBrace: "}", TokLBracket: "[", TokRBracket: "]",
	TokAssign: "=", TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=",
	TokGt: ">", TokGe: ">=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokAndAnd: "&&", TokOrOr: "||", TokNot: "!",
	TokAmp: "&", TokPipe: "|", TokCaret: "^", TokShl: "<<", TokShr: ">>",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"var": TokVar, "func": TokFunc, "if": TokIf, "else": TokElse,
	"while": TokWhile, "for": TokFor, "break": TokBreak, "continue": TokContinue,
	"return": TokReturn, "switch": TokSwitch, "case": TokCase, "default": TokDefault,
	"true": TokTrue, "false": TokFalse,
	"int": TokTypeInt, "float": TokTypeFloat, "bool": TokTypeBool,
}

// Pos is a source position for diagnostics.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// Error is a positioned front-end diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
