package lang

import (
	"strings"
)

// Lexer tokenises BL source. It is a plain byte scanner: BL sources are
// ASCII by construction and // comments run to end of line.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an error for an unrecognised byte.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		begin := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[begin:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil

	case isDigit(c):
		begin := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		kind := TokIntLit
		if l.peek() == '.' && isDigit(l.peek2()) {
			kind = TokFloatLit
			l.advance() // '.'
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			// Exponent: accept e[+-]?digits; only valid on numbers.
			save := l.off
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if isDigit(l.peek()) {
				kind = TokFloatLit
				for l.off < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			} else {
				// Not an exponent after all (e.g. "3elephants" is an
				// error upstream); rewind.
				l.off = save
			}
		}
		return Token{Kind: kind, Text: l.src[begin:l.off], Pos: start}, nil
	}

	two := func(second byte, k2, k1 TokKind) Token {
		l.advance()
		if l.peek() == second {
			l.advance()
			return Token{Kind: k2, Text: tokNames[k2], Pos: start}
		}
		return Token{Kind: k1, Text: tokNames[k1], Pos: start}
	}

	switch c {
	case ';':
		l.advance()
		return Token{Kind: TokSemi, Text: ";", Pos: start}, nil
	case ':':
		l.advance()
		return Token{Kind: TokColon, Text: ":", Pos: start}, nil
	case ',':
		l.advance()
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case '(':
		l.advance()
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case ')':
		l.advance()
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case '{':
		l.advance()
		return Token{Kind: TokLBrace, Text: "{", Pos: start}, nil
	case '}':
		l.advance()
		return Token{Kind: TokRBrace, Text: "}", Pos: start}, nil
	case '[':
		l.advance()
		return Token{Kind: TokLBracket, Text: "[", Pos: start}, nil
	case ']':
		l.advance()
		return Token{Kind: TokRBracket, Text: "]", Pos: start}, nil
	case '+':
		l.advance()
		return Token{Kind: TokPlus, Text: "+", Pos: start}, nil
	case '-':
		l.advance()
		return Token{Kind: TokMinus, Text: "-", Pos: start}, nil
	case '*':
		l.advance()
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case '/':
		l.advance()
		return Token{Kind: TokSlash, Text: "/", Pos: start}, nil
	case '%':
		l.advance()
		return Token{Kind: TokPercent, Text: "%", Pos: start}, nil
	case '^':
		l.advance()
		return Token{Kind: TokCaret, Text: "^", Pos: start}, nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokNot), nil
	case '<':
		l.advance()
		switch l.peek() {
		case '=':
			l.advance()
			return Token{Kind: TokLe, Text: "<=", Pos: start}, nil
		case '<':
			l.advance()
			return Token{Kind: TokShl, Text: "<<", Pos: start}, nil
		}
		return Token{Kind: TokLt, Text: "<", Pos: start}, nil
	case '>':
		l.advance()
		switch l.peek() {
		case '=':
			l.advance()
			return Token{Kind: TokGe, Text: ">=", Pos: start}, nil
		case '>':
			l.advance()
			return Token{Kind: TokShr, Text: ">>", Pos: start}, nil
		}
		return Token{Kind: TokGt, Text: ">", Pos: start}, nil
	case '&':
		return two('&', TokAndAnd, TokAmp), nil
	case '|':
		return two('|', TokOrOr, TokPipe), nil
	}
	return Token{}, errf(start, "unexpected character %q", string(rune(c)))
}

// Tokenize scans the whole source, mostly for tests.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

// describe renders a token for error messages.
func describe(t Token) string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokIdent, TokIntLit, TokFloatLit:
		return t.Kind.String() + " " + strings.TrimSpace(t.Text)
	default:
		return "'" + t.Kind.String() + "'"
	}
}
