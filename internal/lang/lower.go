package lang

import (
	"fmt"

	"repro/internal/ir"
)

// Compile parses, checks, and lowers a BL source file into an IR program
// with branch sites numbered. This is the front door used by the harness,
// the CLI tools, and the examples.
func Compile(src string) (*ir.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := Check(file)
	if err != nil {
		return nil, err
	}
	prog, err := Lower(file, info)
	if err != nil {
		return nil, err
	}
	prog.NumberBranches(true)
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("lang: internal error: lowered program invalid: %w", err)
	}
	return prog, nil
}

// Lower translates a checked file into IR. Boolean conditions lower into
// control flow directly (short-circuit && and || become real branches), so
// the profiler sees the same branch structure a C compiler would emit.
func Lower(file *File, info *Info) (*ir.Program, error) {
	lw := &lowerer{
		info:    info,
		prog:    ir.NewProgram(),
		funcs:   make(map[*FuncDecl]*ir.Func),
		globals: make(map[*VarDecl]*ir.Global),
	}
	// Declare globals first so function bodies can reference them.
	for _, d := range file.Decls {
		g, ok := d.(*VarDecl)
		if !ok {
			continue
		}
		irg := &ir.Global{Name: g.Name, Type: g.Type, Len: maxInt(g.Len, 1), Array: g.Len > 0}
		if g.Init != nil {
			_, bits, err := constEval(g.Init)
			if err != nil {
				return nil, err
			}
			irg.Init = []int64{bits}
		}
		if err := lw.prog.AddGlobal(irg); err != nil {
			return nil, err
		}
		lw.globals[g] = irg
	}
	// Declare function shells so calls can reference forward targets.
	for _, d := range file.Decls {
		fd, ok := d.(*FuncDecl)
		if !ok {
			continue
		}
		f := &ir.Func{
			Name:    fd.Name,
			NParams: len(fd.Params),
			NRegs:   info.LocalSlots[fd],
			RetType: fd.Ret,
		}
		if err := lw.prog.AddFunc(f); err != nil {
			return nil, err
		}
		lw.funcs[fd] = f
	}
	for _, d := range file.Decls {
		fd, ok := d.(*FuncDecl)
		if !ok {
			continue
		}
		if err := lw.lowerFunc(fd); err != nil {
			return nil, err
		}
	}
	return lw.prog, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

type loopCtx struct {
	brk, cont *ir.Block
}

type lowerer struct {
	info    *Info
	prog    *ir.Program
	funcs   map[*FuncDecl]*ir.Func
	globals map[*VarDecl]*ir.Global

	b     *ir.Builder
	loops []loopCtx
}

func (lw *lowerer) lowerFunc(fd *FuncDecl) error {
	f := lw.funcs[fd]
	lw.b = ir.NewBuilder(f)
	lw.loops = lw.loops[:0]
	if err := lw.lowerBlock(fd.Body); err != nil {
		return err
	}
	// Implicit return at fall-through: zero value for non-void functions.
	if lw.b.Cur != nil && lw.b.Cur.Term.Op == ir.TermInvalid {
		switch fd.Ret {
		case ir.TVoid:
			lw.b.Ret()
		case ir.TFloat:
			lw.b.RetVal(lw.b.ConstF(0))
		default:
			lw.b.RetVal(lw.b.ConstI(0))
		}
	}
	// Seal any other dangling blocks (e.g. unreachable join points) with a
	// default return so the IR validates.
	for _, blk := range f.Blocks {
		if blk.Term.Op == ir.TermInvalid {
			lw.b.SetBlock(blk)
			switch fd.Ret {
			case ir.TVoid:
				lw.b.Ret()
			case ir.TFloat:
				lw.b.RetVal(lw.b.ConstF(0))
			default:
				lw.b.RetVal(lw.b.ConstI(0))
			}
		}
	}
	// Blocks sealed above may be unreachable (both arms of a join returned);
	// mark them dead so Validate's reachability invariant holds.
	ir.MarkUnreachableDead(f)
	return nil
}

func (lw *lowerer) lowerBlock(b *BlockStmt) error {
	for _, s := range b.Stmts {
		if err := lw.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) lowerStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return lw.lowerBlock(s)
	case *LocalDecl:
		// The checker assigned the slot when it declared the symbol; we
		// re-resolve by walking: LocalDecl symbols are only reachable
		// through subsequent Ident uses, so initialisation writes the slot
		// via a fresh mini-symbol lookup. To avoid a second scope walk the
		// checker records slots on symbols shared with Idents; here we
		// reconstruct the slot from the declaration order bookkeeping kept
		// by Info (see slotOf).
		slot, ok := lw.slotOf(s)
		if !ok {
			return errf(s.Pos, "internal error: no slot for local %q", s.Name)
		}
		if s.Init != nil {
			v, err := lw.lowerExpr(s.Init)
			if err != nil {
				return err
			}
			lw.b.Mov(slot, v)
		} else {
			var z ir.Reg
			if s.Type == ir.TFloat {
				z = lw.b.ConstF(0)
			} else {
				z = lw.b.ConstI(0)
			}
			lw.b.Mov(slot, z)
		}
		return nil
	case *AssignStmt:
		return lw.lowerAssign(s)
	case *IfStmt:
		return lw.lowerIf(s)
	case *WhileStmt:
		return lw.lowerWhile(s)
	case *ForStmt:
		return lw.lowerFor(s)
	case *SwitchStmt:
		return lw.lowerSwitch(s)
	case *BreakStmt:
		if len(lw.loops) == 0 {
			return errf(s.Pos, "internal error: break outside loop")
		}
		lw.b.Jmp(lw.loops[len(lw.loops)-1].brk)
		return nil
	case *ContinueStmt:
		if len(lw.loops) == 0 {
			return errf(s.Pos, "internal error: continue outside loop")
		}
		lw.b.Jmp(lw.loops[len(lw.loops)-1].cont)
		return nil
	case *ReturnStmt:
		if s.Value == nil {
			lw.b.Ret()
			return nil
		}
		v, err := lw.lowerExpr(s.Value)
		if err != nil {
			return err
		}
		lw.b.RetVal(v)
		return nil
	case *ExprStmt:
		_, err := lw.lowerExpr(s.X)
		return err
	}
	return fmt.Errorf("lang: cannot lower %T", s)
}

// slotOf recovers the register slot of a local declaration. The checker
// stored slots in the symbols attached to Ident uses; declarations that are
// never read still need their slot, so Info records them via the Assigns
// and Idents maps. We search both; a local that is neither read nor written
// after declaration gets a throwaway slot.
func (lw *lowerer) slotOf(d *LocalDecl) (ir.Reg, bool) {
	if s, ok := lw.info.declSlots[d]; ok {
		return s, true
	}
	return 0, false
}

func (lw *lowerer) lowerAssign(s *AssignStmt) error {
	if s.Index != nil {
		g := lw.info.AssignArrays[s]
		if g == nil {
			return errf(s.Pos, "internal error: unresolved array assign %q", s.Name)
		}
		idx, err := lw.lowerExpr(s.Index)
		if err != nil {
			return err
		}
		val, err := lw.lowerExpr(s.Value)
		if err != nil {
			return err
		}
		lw.b.StoreElem(lw.globals[g], idx, val)
		return nil
	}
	sym := lw.info.Assigns[s]
	if sym == nil {
		return errf(s.Pos, "internal error: unresolved assign %q", s.Name)
	}
	val, err := lw.lowerExpr(s.Value)
	if err != nil {
		return err
	}
	if sym.Global != nil {
		lw.b.StoreG(lw.globals[sym.Global], val)
	} else {
		lw.b.Mov(sym.Slot, val)
	}
	return nil
}

func (lw *lowerer) lowerIf(s *IfStmt) error {
	thenB := lw.b.Block("if.then")
	join := lw.b.Block("if.join")
	elseB := join
	if s.Else != nil {
		elseB = lw.b.Block("if.else")
	}
	if err := lw.lowerCond(s.Cond, thenB, elseB); err != nil {
		return err
	}
	lw.b.SetBlock(thenB)
	if err := lw.lowerBlock(s.Then); err != nil {
		return err
	}
	lw.b.Jmp(join)
	if s.Else != nil {
		lw.b.SetBlock(elseB)
		if err := lw.lowerStmt(s.Else); err != nil {
			return err
		}
		lw.b.Jmp(join)
	}
	lw.b.SetBlock(join)
	return nil
}

func (lw *lowerer) lowerWhile(s *WhileStmt) error {
	head := lw.b.Block("while.head")
	body := lw.b.Block("while.body")
	exit := lw.b.Block("while.exit")
	lw.b.Jmp(head)
	lw.b.SetBlock(head)
	if err := lw.lowerCond(s.Cond, body, exit); err != nil {
		return err
	}
	lw.loops = append(lw.loops, loopCtx{brk: exit, cont: head})
	lw.b.SetBlock(body)
	if err := lw.lowerBlock(s.Body); err != nil {
		return err
	}
	lw.b.Jmp(head)
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.b.SetBlock(exit)
	return nil
}

func (lw *lowerer) lowerFor(s *ForStmt) error {
	if s.Init != nil {
		if err := lw.lowerStmt(s.Init); err != nil {
			return err
		}
	}
	head := lw.b.Block("for.head")
	body := lw.b.Block("for.body")
	post := lw.b.Block("for.post")
	exit := lw.b.Block("for.exit")
	lw.b.Jmp(head)
	lw.b.SetBlock(head)
	if s.Cond != nil {
		if err := lw.lowerCond(s.Cond, body, exit); err != nil {
			return err
		}
	} else {
		lw.b.Jmp(body)
	}
	lw.loops = append(lw.loops, loopCtx{brk: exit, cont: post})
	lw.b.SetBlock(body)
	if err := lw.lowerBlock(s.Body); err != nil {
		return err
	}
	lw.b.Jmp(post)
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.b.SetBlock(post)
	if s.Post != nil {
		if err := lw.lowerStmt(s.Post); err != nil {
			return err
		}
	}
	lw.b.Jmp(head)
	lw.b.SetBlock(exit)
	return nil
}

// lowerSwitch lowers a switch statement to one TermSwitch terminator: a
// dense target table of size max(label)+1, label gaps and out-of-range tag
// values dispatching to the default arm (the join block when the source has
// none). Each case body gets its own block and jumps to the join, so cases
// never fall through.
func (lw *lowerer) lowerSwitch(s *SwitchStmt) error {
	tag, err := lw.lowerExpr(s.Tag)
	if err != nil {
		return err
	}
	join := lw.b.Block("switch.join")
	defaultB := join
	if s.Default != nil {
		defaultB = lw.b.Block("switch.default")
	}
	maxLabel := int64(0)
	for _, cs := range s.Cases {
		if cs.Val > maxLabel {
			maxLabel = cs.Val
		}
	}
	targets := make([]*ir.Block, maxLabel+1)
	for i := range targets {
		targets[i] = defaultB
	}
	caseBlocks := make([]*ir.Block, len(s.Cases))
	for i, cs := range s.Cases {
		cb := lw.b.Block(fmt.Sprintf("switch.case%d", cs.Val))
		caseBlocks[i] = cb
		targets[cs.Val] = cb
	}
	lw.b.Switch(tag, targets, defaultB)
	for i, cs := range s.Cases {
		lw.b.SetBlock(caseBlocks[i])
		if err := lw.lowerBlock(cs.Body); err != nil {
			return err
		}
		lw.b.Jmp(join)
	}
	if s.Default != nil {
		lw.b.SetBlock(defaultB)
		if err := lw.lowerBlock(s.Default); err != nil {
			return err
		}
		lw.b.Jmp(join)
	}
	lw.b.SetBlock(join)
	return nil
}

// lowerCond lowers a boolean expression as control flow: jump to thenB when
// it is true and elseB when false. Short-circuit operators and negation
// become branch structure instead of materialised values.
func (lw *lowerer) lowerCond(e Expr, thenB, elseB *ir.Block) error {
	switch e := e.(type) {
	case *BoolLit:
		if e.Val {
			lw.b.Jmp(thenB)
		} else {
			lw.b.Jmp(elseB)
		}
		return nil
	case *UnaryExpr:
		if e.Op == TokNot {
			return lw.lowerCond(e.X, elseB, thenB)
		}
	case *BinaryExpr:
		switch e.Op {
		case TokAndAnd:
			mid := lw.b.Block("and.rhs")
			if err := lw.lowerCond(e.X, mid, elseB); err != nil {
				return err
			}
			lw.b.SetBlock(mid)
			return lw.lowerCond(e.Y, thenB, elseB)
		case TokOrOr:
			mid := lw.b.Block("or.rhs")
			if err := lw.lowerCond(e.X, thenB, mid); err != nil {
				return err
			}
			lw.b.SetBlock(mid)
			return lw.lowerCond(e.Y, thenB, elseB)
		}
	}
	v, err := lw.lowerExpr(e)
	if err != nil {
		return err
	}
	lw.b.Br(v, thenB, elseB)
	return nil
}

func (lw *lowerer) lowerExpr(e Expr) (ir.Reg, error) {
	switch e := e.(type) {
	case *IntLit:
		return lw.b.ConstI(e.Val), nil
	case *FloatLit:
		return lw.b.ConstF(e.Val), nil
	case *BoolLit:
		if e.Val {
			return lw.b.ConstI(1), nil
		}
		return lw.b.ConstI(0), nil
	case *Ident:
		sym := lw.info.Idents[e]
		if sym == nil {
			return 0, errf(e.Pos, "internal error: unresolved %q", e.Name)
		}
		if sym.Global != nil {
			return lw.b.LoadG(lw.globals[sym.Global]), nil
		}
		return sym.Slot, nil
	case *IndexExpr:
		g := lw.info.ArrayRefs[e]
		if g == nil {
			return 0, errf(e.Pos, "internal error: unresolved array %q", e.Name)
		}
		idx, err := lw.lowerExpr(e.Index)
		if err != nil {
			return 0, err
		}
		return lw.b.LoadElem(lw.globals[g], idx), nil
	case *UnaryExpr:
		x, err := lw.lowerExpr(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case TokMinus:
			if lw.info.Types[e.X] == ir.TFloat {
				return lw.b.Unary(ir.OpNegF, x), nil
			}
			return lw.b.Unary(ir.OpNegI, x), nil
		case TokNot:
			return lw.b.Unary(ir.OpNotI, x), nil
		}
		return 0, errf(e.Pos, "internal error: unary %v", e.Op)
	case *BinaryExpr:
		return lw.lowerBinary(e)
	case *CallExpr:
		return lw.lowerCall(e)
	}
	return 0, fmt.Errorf("lang: cannot lower expression %T", e)
}

func (lw *lowerer) lowerBinary(e *BinaryExpr) (ir.Reg, error) {
	switch e.Op {
	case TokAndAnd, TokOrOr:
		// Value context: materialise through control flow.
		res := lw.b.Func.NewReg()
		tBlk := lw.b.Block("bool.true")
		fBlk := lw.b.Block("bool.false")
		join := lw.b.Block("bool.join")
		if err := lw.lowerCond(e, tBlk, fBlk); err != nil {
			return 0, err
		}
		lw.b.SetBlock(tBlk)
		lw.b.Mov(res, lw.b.ConstI(1))
		lw.b.Jmp(join)
		lw.b.SetBlock(fBlk)
		lw.b.Mov(res, lw.b.ConstI(0))
		lw.b.Jmp(join)
		lw.b.SetBlock(join)
		return res, nil
	}
	x, err := lw.lowerExpr(e.X)
	if err != nil {
		return 0, err
	}
	y, err := lw.lowerExpr(e.Y)
	if err != nil {
		return 0, err
	}
	isF := lw.info.Types[e.X] == ir.TFloat
	var op ir.Op
	switch e.Op {
	case TokPlus:
		op = pick(isF, ir.OpAddF, ir.OpAddI)
	case TokMinus:
		op = pick(isF, ir.OpSubF, ir.OpSubI)
	case TokStar:
		op = pick(isF, ir.OpMulF, ir.OpMulI)
	case TokSlash:
		op = pick(isF, ir.OpDivF, ir.OpDivI)
	case TokPercent:
		op = ir.OpModI
	case TokAmp:
		op = ir.OpAndI
	case TokPipe:
		op = ir.OpOrI
	case TokCaret:
		op = ir.OpXorI
	case TokShl:
		op = ir.OpShlI
	case TokShr:
		op = ir.OpShrI
	case TokEq:
		op = pick(isF, ir.OpEqF, ir.OpEqI)
	case TokNe:
		op = pick(isF, ir.OpNeF, ir.OpNeI)
	case TokLt:
		op = pick(isF, ir.OpLtF, ir.OpLtI)
	case TokLe:
		op = pick(isF, ir.OpLeF, ir.OpLeI)
	case TokGt:
		op = pick(isF, ir.OpGtF, ir.OpGtI)
	case TokGe:
		op = pick(isF, ir.OpGeF, ir.OpGeI)
	default:
		return 0, errf(e.Pos, "internal error: binary %v", e.Op)
	}
	return lw.b.Binary(op, x, y), nil
}

func pick(cond bool, a, b ir.Op) ir.Op {
	if cond {
		return a
	}
	return b
}

func (lw *lowerer) lowerCall(e *CallExpr) (ir.Reg, error) {
	target, ok := lw.info.Calls[e]
	if !ok {
		return 0, errf(e.Pos, "internal error: unresolved call %q", e.Name)
	}
	args := make([]ir.Reg, len(e.Args))
	for i, a := range e.Args {
		r, err := lw.lowerExpr(a)
		if err != nil {
			return 0, err
		}
		args[i] = r
	}
	if target.Func != nil {
		return lw.b.Call(lw.funcs[target.Func], args...), nil
	}
	argT := func(i int) ir.Type { return lw.info.Types[e.Args[i]] }
	switch target.Builtin {
	case BuiltinPrint:
		lw.b.Print(args[0])
		return 0, nil
	case BuiltinSqrt:
		return lw.b.Unary(ir.OpSqrtF, args[0]), nil
	case BuiltinAbs:
		if argT(0) == ir.TFloat {
			return lw.b.Unary(ir.OpAbsF, args[0]), nil
		}
		return lw.b.Unary(ir.OpAbsI, args[0]), nil
	case BuiltinMin:
		if argT(0) == ir.TFloat {
			return lw.b.Binary(ir.OpMinF, args[0], args[1]), nil
		}
		return lw.b.Binary(ir.OpMinI, args[0], args[1]), nil
	case BuiltinMax:
		if argT(0) == ir.TFloat {
			return lw.b.Binary(ir.OpMaxF, args[0], args[1]), nil
		}
		return lw.b.Binary(ir.OpMaxI, args[0], args[1]), nil
	case BuiltinToInt:
		if argT(0) == ir.TFloat {
			return lw.b.Unary(ir.OpFtoI, args[0]), nil
		}
		return args[0], nil // int(int) and int(bool) are identity on bits
	case BuiltinToFloat:
		if argT(0) == ir.TFloat {
			return args[0], nil
		}
		return lw.b.Unary(ir.OpItoF, args[0]), nil
	}
	return 0, errf(e.Pos, "internal error: builtin %v", target.Builtin)
}
