package lang

import "repro/internal/ir"

// File is a parsed BL translation unit.
type File struct {
	Decls []Decl
}

// Decl is a top-level declaration.
type Decl interface{ declNode() }

// VarDecl declares a global scalar or array. For arrays Len > 0 and Init is
// nil (arrays start zeroed); for scalars Len == 0 and Init, when present,
// must be a constant expression.
type VarDecl struct {
	Pos  Pos
	Name string
	Type ir.Type
	Len  int
	Init Expr
}

// Param is one function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type ir.Type
}

// FuncDecl declares a function. Ret is TVoid for procedures.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Ret    ir.Type
	Body   *BlockStmt
}

func (*VarDecl) declNode()  {}
func (*FuncDecl) declNode() {}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is { stmts... } with its own scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// LocalDecl declares a scalar local, optionally initialised.
type LocalDecl struct {
	Pos  Pos
	Name string
	Type ir.Type
	Init Expr
}

// AssignStmt assigns to a scalar (Index == nil) or an array element.
type AssignStmt struct {
	Pos   Pos
	Name  string
	Index Expr
	Value Expr
}

// IfStmt is if/else; Else is nil, a *BlockStmt, or a nested *IfStmt.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is for init; cond; post { body }. Init and Post are nil, a
// *LocalDecl (Init only), or an *AssignStmt; Cond may be nil (infinite).
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// SwitchStmt is an N-way dispatch on an int expression. Cases do not fall
// through; a missing default falls out of the switch. break/continue inside
// a case body still bind to the enclosing loop, never the switch.
type SwitchStmt struct {
	Pos     Pos
	Tag     Expr
	Cases   []SwitchCase
	Default *BlockStmt // nil when absent
}

// SwitchCase is one "case N:" arm with its body.
type SwitchCase struct {
	Pos  Pos
	Val  int64
	Body *BlockStmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's next iteration.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt returns, with a value for non-void functions.
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

// ExprStmt evaluates an expression (a call) for effect.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmtNode()    {}
func (*LocalDecl) stmtNode()    {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*SwitchStmt) stmtNode()   {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Position() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// FloatLit is a float literal.
type FloatLit struct {
	Pos Pos
	Val float64
}

// BoolLit is true/false.
type BoolLit struct {
	Pos Pos
	Val bool
}

// Ident references a local, parameter, or global scalar.
type Ident struct {
	Pos  Pos
	Name string
}

// IndexExpr reads a global array element.
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// CallExpr calls a function or builtin. Conversions int(x) and float(x)
// parse as calls with those names.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Pos Pos
	Op  TokKind
	X   Expr
}

// BinaryExpr is a binary operation, including short-circuit && and ||.
type BinaryExpr struct {
	Pos  Pos
	Op   TokKind
	X, Y Expr
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BoolLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

func (e *IntLit) Position() Pos     { return e.Pos }
func (e *FloatLit) Position() Pos   { return e.Pos }
func (e *BoolLit) Position() Pos    { return e.Pos }
func (e *Ident) Position() Pos      { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }
