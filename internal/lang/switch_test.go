package lang

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestEndToEndSwitch(t *testing.T) {
	got := run(t, `
func classify(x int) int {
	switch x {
	case 0:
		return 100;
	case 1:
		return 200;
	case 3:
		return 300;
	default:
		return -1;
	}
	return -2;
}
func main() int {
	return classify(0) + classify(1) + classify(2) + classify(3) + classify(9);
}`)
	// 100 + 200 + (-1) + 300 + (-1)
	if got != 598 {
		t.Fatalf("got %d, want 598", got)
	}
}

func TestSwitchNoDefaultFallsThrough(t *testing.T) {
	got := run(t, `
func main() int {
	var s int = 0;
	for var i int = 0; i < 6; i = i + 1 {
		switch i % 3 {
		case 0:
			s = s + 1;
		case 1:
			s = s + 10;
		}
		s = s + 100; // join: runs for every i, including case 2
	}
	return s;
}`)
	// i=0,3 → +1; i=1,4 → +10; every i → +100
	if got != 622 {
		t.Fatalf("got %d, want 622", got)
	}
}

func TestSwitchInLoopBreakBindsToLoop(t *testing.T) {
	got := run(t, `
func main() int {
	var s int = 0;
	for var i int = 0; i < 10; i = i + 1 {
		switch i {
		case 3:
			break;
		default:
			s = s + i;
		}
	}
	return s;
}`)
	// break exits the for loop at i==3: s = 0+1+2
	if got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
}

func TestSwitchNegativeTagUsesDefault(t *testing.T) {
	got := run(t, `
func main() int {
	switch 0 - 5 {
	case 0:
		return 1;
	default:
		return 42;
	}
	return 0;
}`)
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestSwitchLowersToTermSwitch(t *testing.T) {
	prog, err := Compile(`
func main() int {
	var x int = 2;
	switch x {
	case 0:
		return 10;
	case 2:
		return 20;
	}
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	var sw *ir.Term
	for _, b := range prog.Func("main").Blocks {
		if b.Term.Op == ir.TermSwitch {
			sw = &b.Term
		}
	}
	if sw == nil {
		t.Fatal("no TermSwitch in lowered program")
	}
	// Dense table of size max(label)+1 = 3; gap at 1 points at the default.
	if len(sw.Targets) != 3 {
		t.Fatalf("got %d targets, want 3", len(sw.Targets))
	}
	if sw.Targets[1] != sw.Else {
		t.Fatal("label gap does not dispatch to default")
	}
	if sw.Site < 0 {
		t.Fatal("switch did not get a prediction site")
	}
}

func TestSwitchErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"floatTag", `func main() int { switch 1.5 { case 0: return 1; } return 0; }`, "switch tag must be int"},
		{"boolTag", `func main() int { switch true { case 0: return 1; } return 0; }`, "switch tag must be int"},
		{"dupLabel", `func main() int { switch 1 { case 2: return 1; case 2: return 2; } return 0; }`, "duplicate case label"},
		{"negLabel", `func main() int { switch 1 { case 0-1: return 1; } return 0; }`, "expected ':'"},
		{"hugeLabel", `func main() int { switch 1 { case 9999: return 1; } return 0; }`, "out of range"},
		{"noCases", `func main() int { switch 1 { default: return 1; } return 0; }`, "at least one case"},
		{"missingColon", `func main() int { switch 1 { case 0 return 1; } return 0; }`, "expected ':'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("compiled without error, want %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}
