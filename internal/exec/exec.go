// Package exec selects between the two execution backends — the reference
// interpreter (internal/interp) and the compiled bytecode machine
// (internal/vm) — behind one interface. The two are observably identical:
// same counters, same branch events in the same order, same trap errors and
// limit sentinel (both planes return interp.ErrLimit and
// *interp.RuntimeError), so harnesses pick a backend by name and everything
// downstream — profiling, replication experiments, the service — is
// backend-agnostic. The differential-testing harness in internal/vm pins
// that equivalence.
package exec

import (
	"context"
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Counters is the observable execution summary shared by both backends.
type Counters = vm.Counters

// Machine is one run of a compiled program. Implementations are not safe
// for concurrent use; create one per run with Program.NewMachine.
type Machine interface {
	// SetHook installs the per-branch observer (nil disables).
	SetHook(fn func(t *ir.Term, taken bool))
	// SetSwHook installs the per-switch observer (nil disables): it fires
	// for every executed switch dispatch and for every taken clustering
	// test, with the dispatch outcome.
	SetSwHook(fn func(t *ir.Term, outcome int32))
	// SetRec directs branch events into a trace slab (nil disables). When
	// both a hook and a slab are set the slab records first.
	SetRec(s *trace.Slab)
	// SetMaxSteps bounds executed instructions (0 = unlimited).
	SetMaxSteps(n uint64)
	// SetMaxBranches bounds executed conditional branches (0 = unlimited).
	SetMaxBranches(n uint64)
	// SetMaxDepth bounds the call stack (default 100000 frames).
	SetMaxDepth(n int)
	// SetContext installs a cancellation context polled every checkEvery
	// executed blocks (0 = the 4096-block default).
	SetContext(ctx context.Context, checkEvery uint32)
	// EnableBlockCounts turns on per-block execution counting, indexed by
	// the original IR function and block IDs on both backends.
	EnableBlockCounts()
	// BlockCounts returns the per-function, per-block counts, or nil.
	BlockCounts() [][]uint64
	// SetGlobal overrides a scalar global before a run.
	SetGlobal(name string, v int64) error
	// GlobalValue reads a scalar global after a run.
	GlobalValue(name string) (int64, error)
	// Run executes func main and returns its value. Limits return
	// interp.ErrLimit; traps return *interp.RuntimeError.
	Run() (int64, error)
	// Counters returns the execution counters.
	Counters() Counters
}

// Program is a compiled program, immutable and safe for concurrent
// NewMachine calls.
type Program interface {
	// Source returns the IR program this was compiled from.
	Source() *ir.Program
	// NewMachine creates a fresh machine with globals initialised.
	NewMachine() Machine
}

// Backend compiles IR programs for one execution plane.
type Backend interface {
	// Name is the backend selector ("interp" or "vm").
	Name() string
	// Compile prepares prog for execution. The interpreter's compile is
	// free; the vm pays SSA construction and register allocation once and
	// every NewMachine after that is cheap.
	Compile(prog *ir.Program) (Program, error)
}

// Interp is the reference interpreter backend.
var Interp Backend = interpBackend{}

// VM is the compiled bytecode backend.
var VM Backend = vmBackend{}

// Names lists the selectable backends, default first.
func Names() []string { return []string{"interp", "vm"} }

// ByName resolves a backend selector; the empty string means the default
// interpreter.
func ByName(name string) (Backend, error) {
	switch name {
	case "", "interp":
		return Interp, nil
	case "vm":
		return VM, nil
	}
	return nil, fmt.Errorf("exec: unknown backend %q (have %v)", name, Names())
}

// --- interpreter backend ---

type interpBackend struct{}

func (interpBackend) Name() string { return "interp" }

func (interpBackend) Compile(prog *ir.Program) (Program, error) {
	return interpProgram{prog}, nil
}

type interpProgram struct{ prog *ir.Program }

func (p interpProgram) Source() *ir.Program { return p.prog }
func (p interpProgram) NewMachine() Machine { return &interpMachine{interp.New(p.prog)} }

// interpMachine adapts interp.Machine's field-based configuration to the
// setter interface.
type interpMachine struct{ m *interp.Machine }

func (a *interpMachine) SetHook(fn func(t *ir.Term, taken bool)) { a.m.Hook = fn }
func (a *interpMachine) SetSwHook(fn func(t *ir.Term, outcome int32)) {
	a.m.SwHook = fn
}
func (a *interpMachine) SetRec(s *trace.Slab)    { a.m.Rec = s }
func (a *interpMachine) SetMaxSteps(n uint64)    { a.m.MaxSteps = n }
func (a *interpMachine) SetMaxBranches(n uint64) { a.m.MaxBranches = n }
func (a *interpMachine) SetMaxDepth(n int)       { a.m.MaxDepth = n }
func (a *interpMachine) SetContext(ctx context.Context, every uint32) {
	a.m.Ctx = ctx
	a.m.CtxCheckEvery = every
}
func (a *interpMachine) EnableBlockCounts()                     { a.m.EnableBlockCounts() }
func (a *interpMachine) BlockCounts() [][]uint64                { return a.m.BlockCounts() }
func (a *interpMachine) SetGlobal(name string, v int64) error   { return a.m.SetGlobal(name, v) }
func (a *interpMachine) GlobalValue(name string) (int64, error) { return a.m.GlobalValue(name) }
func (a *interpMachine) Run() (int64, error)                    { return a.m.Run() }
func (a *interpMachine) Counters() Counters {
	return Counters{
		Steps: a.m.Steps, Branches: a.m.Branches,
		Predicted: a.m.Predicted, Mispredicted: a.m.Mispredicted,
		Checksum: a.m.Checksum, Prints: a.m.Prints,
	}
}

// --- vm backend ---

type vmBackend struct{}

func (vmBackend) Name() string { return "vm" }

func (vmBackend) Compile(prog *ir.Program) (Program, error) {
	p, err := vm.Compile(prog)
	if err != nil {
		return nil, err
	}
	return vmProgram{p}, nil
}

// vmProgram only re-types NewMachine's concrete *vm.Machine result as a
// Machine; *vm.Machine itself implements the interface directly.
type vmProgram struct{ p *vm.Program }

func (p vmProgram) Source() *ir.Program { return p.p.Source() }
func (p vmProgram) NewMachine() Machine { return p.p.NewMachine() }

var _ Machine = (*vm.Machine)(nil)
