package diskstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestPutLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		"art/0011aabb",
		"prof/ffee",
		"mach/with spaces and % signs",
		"score/" + strings.Repeat("x", 200),
	}
	for i, k := range keys {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 100+i)
		if err := s.Put(k, payload); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
		got, ok := s.Load(k)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("Load(%q) = %v, %v", k, got, ok)
		}
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(keys))
	}
	if _, ok := s.Load("absent/key"); ok {
		t.Fatal("Load of absent key reported a hit")
	}
	hits, misses, _, _ := s.Counters()
	if hits != int64(len(keys)) || misses != 1 {
		t.Fatalf("counters hits=%d misses=%d", hits, misses)
	}

	// Replacing a key must not double-count its bytes.
	before := s.Bytes()
	if err := s.Put(keys[0], bytes.Repeat([]byte{9}, 100)); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != before {
		t.Fatalf("replace changed Bytes %d -> %d", before, s.Bytes())
	}
}

func TestMapZeroCopyAndSurvivesEviction(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abc"), 5000)
	if err := s.Put("art/map", payload); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Map("art/map")
	if !ok {
		t.Fatal("Map missed a resident key")
	}
	if !bytes.Equal(m.Data, payload) {
		t.Fatal("mapped payload differs")
	}
	// The mapping must stay readable after the entry is dropped (the file
	// is unlinked but the pages live until Close).
	s.drop("art/map")
	if !bytes.Equal(m.Data, payload) {
		t.Fatal("mapped payload changed after eviction")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("second Close errored")
	}
}

func TestRestartRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("art/%d", i), bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-write: a leftover temp file must be cleaned.
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"crash"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a foreign file must be ignored and removed if it looks like ours.
	if err := os.WriteFile(filepath.Join(dir, "junk"+fileExt), []byte("not a blob"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("recovered %d entries, want 5", s2.Len())
	}
	for i := 0; i < 5; i++ {
		got, ok := s2.Load(fmt.Sprintf("art/%d", i))
		if !ok || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 50)) {
			t.Fatalf("entry %d not recovered", i)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"crash")); !os.IsNotExist(err) {
		t.Error("leftover temp file not cleaned at Open")
	}
	if _, err := os.Stat(filepath.Join(dir, "junk"+fileExt)); !os.IsNotExist(err) {
		t.Error("unreadable blob file not removed at Open")
	}
}

func TestEvictionBudget(t *testing.T) {
	// Budget fits ~4 of 8 100-byte payloads.
	s, err := Open(t.TempDir(), Options{MaxBytes: 450})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("art/%d", i), bytes.Repeat([]byte{1}, 100)); err != nil {
			t.Fatal(err)
		}
		// Keep entry 0 hot so recency, not insertion order, decides.
		if i >= 1 {
			s.Load("art/0")
		}
	}
	if s.Bytes() > 450 {
		t.Fatalf("Bytes %d over budget", s.Bytes())
	}
	if _, _, evictions, _ := s.Counters(); evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if _, ok := s.Load("art/0"); !ok {
		t.Fatal("hot entry art/0 was evicted despite recent access")
	}
	if _, ok := s.Load("art/1"); ok {
		t.Fatal("cold entry art/1 survived past the budget")
	}
}

func TestCorruptEntryIsAMissAndRemoved(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("art/x", []byte("hello world payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileName("art/x"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x10 // flip a payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("art/x"); ok {
		t.Fatal("Load returned a corrupt payload")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt blob not removed")
	}
	if s.Len() != 0 {
		t.Errorf("corrupt entry still indexed, Len=%d", s.Len())
	}
}

func TestFsyncOption(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("art/f", []byte("synced")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load("art/f")
	if !ok || string(got) != "synced" {
		t.Fatal("fsync'd entry unreadable")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxBytes: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("art/%d", i%10)
				if i%3 == 0 {
					_ = s.Put(k, bytes.Repeat([]byte{byte(g)}, 200))
				} else if m, ok := s.Map(k); ok {
					_ = m.Data[0]
					m.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Bytes() > 10_000 {
		t.Fatalf("budget exceeded after concurrent churn: %d", s.Bytes())
	}
}
