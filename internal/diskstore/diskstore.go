// Package diskstore implements the on-disk artifact tier under the
// service's in-memory store: a content-addressed, crash-safe blob store.
// Artifacts the memory tier evicts (or loses across a restart) are
// re-loadable from disk, so a kralld restart starts warm and eviction is
// no longer data loss.
//
// Every blob is one file with a versioned header carrying the key, the
// payload length, the payload, and a trailing CRC-32, written as a temp
// file in the same directory and atomically renamed into place — a crash
// mid-write leaves only a temp file (removed on the next Open), never a
// half-visible entry. Reads verify the header and checksum and treat any
// mismatch as a miss (the file is removed), so a torn or corrupt blob can
// not poison the cache.
//
// The store is size-budgeted: once the payload bytes on disk exceed
// MaxBytes, the least recently *accessed* entries are evicted. Access
// recency is tracked in memory and seeded from file mtimes at Open, so
// eviction order survives restarts approximately and exactly within one
// process lifetime.
package diskstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// magic heads every blob file; the trailing digits version the layout.
const magic = "KRALLDS1"

// fileExt marks blob files; anything else in the directory is ignored
// (temp files use tmpPrefix and are cleaned at Open).
const fileExt = ".kart"

const tmpPrefix = ".tmp-"

// Options configures a Store.
type Options struct {
	// MaxBytes budgets the total payload bytes on disk (default 256 MiB);
	// exceeding it evicts least-recently-accessed entries.
	MaxBytes int64
	// Fsync forces an fsync of the blob file (and the directory) before
	// the rename on every Put. Off by default: the atomic rename already
	// guarantees no torn entry is ever visible, and the store is a cache —
	// losing the last few writes in a power cut costs a re-computation,
	// not correctness. Turn it on when recomputation is the expensive
	// thing being defended against.
	Fsync bool
}

// Store is the disk tier. Safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	entries map[string]*entry
	total   int64 // payload bytes across all entries
	clock   int64 // logical access time

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	putErrors atomic.Int64
}

type entry struct {
	name  string // file name within dir
	size  int64  // payload bytes
	atime int64  // logical access clock
}

// Open creates (if needed) and scans dir, removing leftover temp files and
// indexing existing blobs by their header keys.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, entries: map[string]*entry{}}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// Seed recency from mtime: oldest files get the earliest logical times.
	type found struct {
		name  string
		key   string
		size  int64
		mtime int64
	}
	var blobs []found
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if de.IsDir() || !strings.HasSuffix(name, fileExt) {
			continue
		}
		key, size, err := readHeader(filepath.Join(dir, name))
		if err != nil {
			// Unreadable or foreign file: not ours to keep.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		blobs = append(blobs, found{name: name, key: key, size: size, mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].mtime < blobs[j].mtime })
	for _, b := range blobs {
		s.clock++
		s.entries[b.key] = &entry{name: b.name, size: b.size, atime: s.clock}
		s.total += b.size
	}
	s.evictLocked()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// fileName maps a key to a stable, filesystem-safe name. Keys are
// human-readable ("kind/hexhash"); the mapping keeps them legible while
// escaping anything a filesystem might object to. The header carries the
// authoritative key, so the name only has to be unique, which the
// escaping (every escaped byte spelled out) guarantees.
func fileName(key string) string {
	var sb strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			sb.WriteByte(c)
		case c == '/':
			sb.WriteByte('@')
		default:
			fmt.Fprintf(&sb, "%%%02x", c)
		}
	}
	sb.WriteString(fileExt)
	return sb.String()
}

// Put stores payload under key, atomically. An existing entry is
// replaced. Put failures are counted and returned but are safe to ignore:
// the store is a cache, and a failed write only costs a future
// recomputation.
func (s *Store) Put(key string, payload []byte) error {
	if err := s.put(key, payload); err != nil {
		s.putErrors.Add(1)
		return err
	}
	return nil
}

func (s *Store) put(key string, payload []byte) error {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var hdr []byte
	hdr = append(hdr, magic...)
	hdr = binary.AppendUvarint(hdr, uint64(len(key)))
	hdr = append(hdr, key...)
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, err := tmp.Write(hdr); err != nil {
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := tmp.Write(crc[:]); err != nil {
		return err
	}
	if s.opts.Fsync {
		if err := tmp.Sync(); err != nil {
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		return err
	}
	name := fileName(key)
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return err
	}
	tmp = nil
	if s.opts.Fsync {
		if d, err := os.Open(s.dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}

	s.mu.Lock()
	s.clock++
	if old := s.entries[key]; old != nil {
		s.total -= old.size
	}
	s.entries[key] = &entry{name: name, size: int64(len(payload)), atime: s.clock}
	s.total += int64(len(payload))
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// evictLocked removes least-recently-accessed entries until the payload
// total fits the budget. Caller holds s.mu.
func (s *Store) evictLocked() {
	for s.total > s.opts.MaxBytes && len(s.entries) > 1 {
		var victim string
		var oldest int64 = 1<<63 - 1
		for k, e := range s.entries {
			if e.atime < oldest {
				oldest, victim = e.atime, k
			}
		}
		e := s.entries[victim]
		delete(s.entries, victim)
		s.total -= e.size
		_ = os.Remove(filepath.Join(s.dir, e.name))
		s.evictions.Add(1)
	}
}

// lookup bumps recency and returns the entry's file path.
func (s *Store) lookup(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return "", false
	}
	s.clock++
	e.atime = s.clock
	return filepath.Join(s.dir, e.name), true
}

// drop forgets a failed entry (corrupt on read) and removes its file.
func (s *Store) drop(key string) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		delete(s.entries, key)
		s.total -= e.size
		_ = os.Remove(filepath.Join(s.dir, e.name))
	}
	s.mu.Unlock()
}

// Load reads and verifies the payload stored under key into fresh memory.
// A missing, torn, or corrupt entry is a miss.
func (s *Store) Load(key string) ([]byte, bool) {
	path, ok := s.lookup(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		s.drop(key)
		s.misses.Add(1)
		return nil, false
	}
	payload, err := verify(data, key)
	if err != nil {
		s.drop(key)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Map returns the payload stored under key as a read-only memory mapping
// (zero-copy on unix; a plain read elsewhere). The mapping stays valid
// even if the entry is later evicted or replaced — the file is unlinked,
// the pages live until the Mapped is garbage collected or Closed. A
// missing or corrupt entry is a miss.
func (s *Store) Map(key string) (*Mapped, bool) {
	path, ok := s.lookup(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	m, err := mapFile(path)
	if err != nil {
		s.drop(key)
		s.misses.Add(1)
		return nil, false
	}
	payload, err := verify(m.Data, key)
	if err != nil {
		m.Close()
		s.drop(key)
		s.misses.Add(1)
		return nil, false
	}
	m.Data = payload
	s.hits.Add(1)
	return m, true
}

// verify checks magic, key, length, and CRC, returning the payload slice
// of data.
func verify(data []byte, key string) ([]byte, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("diskstore: bad magic")
	}
	i := len(magic)
	klen, n := binary.Uvarint(data[i:])
	if n <= 0 || uint64(len(data)-i-n) < klen {
		return nil, fmt.Errorf("diskstore: truncated key")
	}
	i += n
	if string(data[i:i+int(klen)]) != key {
		return nil, fmt.Errorf("diskstore: key mismatch")
	}
	i += int(klen)
	plen, n := binary.Uvarint(data[i:])
	if n <= 0 {
		return nil, fmt.Errorf("diskstore: truncated length")
	}
	i += n
	if uint64(len(data)-i) != plen+4 {
		return nil, fmt.Errorf("diskstore: payload length %d does not match file", plen)
	}
	payload := data[i : i+int(plen) : i+int(plen)]
	want := binary.LittleEndian.Uint32(data[i+int(plen):])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("diskstore: crc mismatch %08x != %08x", got, want)
	}
	return payload, nil
}

// readHeader reads just enough of a blob file to recover its key and
// payload size (used by the Open scan; payload is not verified here).
func readHeader(path string) (key string, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	// magic + keylen varint + key + plen varint; keys are short.
	buf := make([]byte, 4096)
	n, err := f.Read(buf)
	if n == 0 && err != nil {
		return "", 0, err
	}
	buf = buf[:n]
	if len(buf) < len(magic) || string(buf[:len(magic)]) != magic {
		return "", 0, fmt.Errorf("diskstore: bad magic in %s", path)
	}
	i := len(magic)
	klen, k := binary.Uvarint(buf[i:])
	if k <= 0 || uint64(len(buf)-i-k) < klen {
		return "", 0, fmt.Errorf("diskstore: truncated key in %s", path)
	}
	i += k
	key = string(buf[i : i+int(klen)])
	i += int(klen)
	plen, k := binary.Uvarint(buf[i:])
	if k <= 0 {
		return "", 0, fmt.Errorf("diskstore: truncated length in %s", path)
	}
	return key, int64(plen), nil
}

// Len is the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes is the total payload bytes resident on disk.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Counters returns lifetime hit/miss/eviction/put-error totals.
func (s *Store) Counters() (hits, misses, evictions, putErrors int64) {
	return s.hits.Load(), s.misses.Load(), s.evictions.Load(), s.putErrors.Load()
}
