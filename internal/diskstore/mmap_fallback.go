//go:build !unix

package diskstore

// Mapped is a read-only view of a blob file. Without mmap it is a plain
// in-memory copy and Close is a no-op.
type Mapped struct {
	Data []byte
}

// Close releases the view. Idempotent.
func (m *Mapped) Close() error {
	m.Data = nil
	return nil
}

func mapFile(path string) (*Mapped, error) {
	return readFileMapped(path)
}
