package diskstore

import "os"

// readFileMapped is the byte-copy open path shared by the non-mmap
// platforms and the mmap error fallback.
func readFileMapped(path string) (*Mapped, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapped{Data: data}, nil
}
