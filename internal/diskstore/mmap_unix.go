//go:build unix

package diskstore

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"syscall"
)

// Mapped is a read-only view of a blob file. On unix Data aliases a
// memory mapping; Close unmaps it (a finalizer does so if the caller
// forgets, so an evicted-but-referenced mapping cannot leak). Data must
// not be used after Close.
type Mapped struct {
	Data []byte

	once sync.Once
	raw  []byte
}

// Close releases the mapping. Idempotent.
func (m *Mapped) Close() error {
	var err error
	m.once.Do(func() {
		runtime.SetFinalizer(m, nil)
		err = syscall.Munmap(m.raw)
		m.raw, m.Data = nil, nil
	})
	return err
}

func mapFile(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("diskstore: %s: unmappable size %d", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems refuse mmap; fall back to a byte copy.
		return readFileMapped(path)
	}
	m := &Mapped{Data: data, raw: data}
	runtime.SetFinalizer(m, func(m *Mapped) { _ = m.Close() })
	return m, nil
}
