package cfg

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/progen"
)

// TestDominatorPropertiesOnRandomPrograms checks classical dominator-tree
// invariants over the CFGs of randomly generated programs:
//
//   - the entry dominates every reachable block;
//   - idom(b) strictly dominates b and is one of b's dominators computed
//     by the naive iterative set algorithm;
//   - every back edge's target dominates its source (consistency of
//     IsBackEdge with Dominates);
//   - natural loops contain their headers and all their back-edge sources.
func TestDominatorPropertiesOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		prog, err := lang.Compile(progen.Generate(seed, progen.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range prog.Funcs {
			g := Build(f)
			ref := naiveDominators(f)
			for _, b := range g.RPO {
				if !g.Dominates(f.Entry, b) {
					t.Fatalf("seed %d %s: entry does not dominate %v", seed, f.Name, b)
				}
				id := g.Idom(b)
				if b == f.Entry {
					if id != nil {
						t.Fatalf("seed %d: entry has idom", seed)
					}
					continue
				}
				if id == nil {
					t.Fatalf("seed %d %s: reachable %v lacks idom", seed, f.Name, b)
				}
				if !ref[b][id] {
					t.Fatalf("seed %d %s: idom(%v)=%v is not a dominator", seed, f.Name, b, id)
				}
				// Cross-check Dominates against the naive sets for every
				// candidate dominator.
				for _, d := range g.RPO {
					if g.Dominates(d, b) != ref[b][d] {
						t.Fatalf("seed %d %s: Dominates(%v,%v) mismatch", seed, f.Name, d, b)
					}
				}
			}
			lf := FindLoops(g)
			for _, l := range lf.Loops {
				if !l.Contains(l.Header) {
					t.Fatalf("seed %d: loop misses its header", seed)
				}
				for _, b := range l.Blocks {
					if !g.Dominates(l.Header, b) {
						t.Fatalf("seed %d: header does not dominate member %v", seed, b)
					}
				}
			}
		}
	}
}

// naiveDominators computes dominator sets with the O(n^2) iterative
// data-flow algorithm, as the reference for the CHK implementation.
func naiveDominators(f *ir.Func) map[*ir.Block]map[*ir.Block]bool {
	// Reachable blocks.
	reach := map[*ir.Block]bool{f.Entry: true}
	stack := []*ir.Block{f.Entry}
	var succs []*ir.Block
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		succs = b.Succs(succs[:0])
		for _, s := range succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	preds := map[*ir.Block][]*ir.Block{}
	for b := range reach {
		succs = b.Succs(succs[:0])
		for _, s := range succs {
			preds[s] = append(preds[s], b)
		}
	}
	dom := map[*ir.Block]map[*ir.Block]bool{}
	for b := range reach {
		dom[b] = map[*ir.Block]bool{}
		if b == f.Entry {
			dom[b][b] = true
			continue
		}
		for d := range reach {
			dom[b][d] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for b := range reach {
			if b == f.Entry {
				continue
			}
			newSet := map[*ir.Block]bool{}
			first := true
			for _, p := range preds[b] {
				if !reach[p] {
					continue
				}
				if first {
					for d := range dom[p] {
						if dom[p][d] {
							newSet[d] = true
						}
					}
					first = false
				} else {
					for d := range newSet {
						if !dom[p][d] {
							delete(newSet, d)
						}
					}
				}
			}
			newSet[b] = true
			if len(newSet) != countTrue(dom[b]) {
				dom[b] = newSet
				changed = true
			} else {
				same := true
				for d := range newSet {
					if !dom[b][d] {
						same = false
						break
					}
				}
				if !same {
					dom[b] = newSet
					changed = true
				}
			}
		}
	}
	return dom
}

func countTrue(m map[*ir.Block]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}
