package cfg

import (
	"testing"

	"repro/internal/ir"
)

// mkFunc builds a function skeleton with n blocks and lets the caller wire
// terminators via the edges map (block index → successor indices: one entry
// means jmp, two means br on a dummy condition, zero means ret).
func mkFunc(t *testing.T, n int, edges map[int][]int) *ir.Func {
	t.Helper()
	p := ir.NewProgram()
	f := &ir.Func{Name: "g", NRegs: 1, RetType: ir.TVoid}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f.NewBlock("")
	}
	f.Entry = f.Blocks[0]
	for i, b := range f.Blocks {
		succ := edges[i]
		switch len(succ) {
		case 0:
			b.Term = ir.Term{Op: ir.TermRet}
		case 1:
			b.Term = ir.Term{Op: ir.TermJmp, Then: f.Blocks[succ[0]]}
		case 2:
			b.Term = ir.Term{Op: ir.TermBr, Cond: 0, Then: f.Blocks[succ[0]], Else: f.Blocks[succ[1]], Site: -1, Orig: -1}
		default:
			t.Fatalf("block %d: too many successors", i)
		}
	}
	ir.MarkUnreachableDead(f)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

// Diamond: 0 -> {1,2} -> 3
func TestDominatorsDiamond(t *testing.T) {
	f := mkFunc(t, 4, map[int][]int{0: {1, 2}, 1: {3}, 2: {3}})
	g := Build(f)
	if g.Idom(f.Blocks[1]) != f.Blocks[0] || g.Idom(f.Blocks[2]) != f.Blocks[0] {
		t.Fatal("arms should be dominated by entry")
	}
	if g.Idom(f.Blocks[3]) != f.Blocks[0] {
		t.Fatalf("join idom = %v, want entry", g.Idom(f.Blocks[3]))
	}
	if g.Idom(f.Blocks[0]) != nil {
		t.Fatal("entry must have no idom")
	}
	if !g.Dominates(f.Blocks[0], f.Blocks[3]) {
		t.Fatal("entry must dominate join")
	}
	if g.Dominates(f.Blocks[1], f.Blocks[3]) {
		t.Fatal("arm must not dominate join")
	}
	if !g.Dominates(f.Blocks[3], f.Blocks[3]) {
		t.Fatal("dominance must be reflexive")
	}
}

// Simple while loop: 0 -> 1(head) -> {2(body), 3(exit)}; 2 -> 1
func TestSimpleLoop(t *testing.T) {
	f := mkFunc(t, 4, map[int][]int{0: {1}, 1: {2, 3}, 2: {1}})
	g := Build(f)
	if !g.IsBackEdge(f.Blocks[2], f.Blocks[1]) {
		t.Fatal("2->1 should be a back edge")
	}
	if g.IsBackEdge(f.Blocks[1], f.Blocks[2]) {
		t.Fatal("1->2 should not be a back edge")
	}
	lf := FindLoops(g)
	if len(lf.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(lf.Loops))
	}
	l := lf.Loops[0]
	if l.Header != f.Blocks[1] {
		t.Fatalf("header = %v", l.Header)
	}
	if len(l.Blocks) != 2 || !l.Contains(f.Blocks[1]) || !l.Contains(f.Blocks[2]) {
		t.Fatalf("loop blocks = %v", l.Blocks)
	}
	if l.Depth != 1 || l.Parent != nil {
		t.Fatalf("depth/parent wrong: %+v", l)
	}
	if lf.InnermostLoop(f.Blocks[2]) != l {
		t.Fatal("innermost map wrong")
	}
	if lf.InnermostLoop(f.Blocks[3]) != nil {
		t.Fatal("exit block must not be in a loop")
	}
	exits := l.Exits()
	if len(exits) != 1 || exits[0].From != f.Blocks[1] || exits[0].To != f.Blocks[3] || exits[0].Taken {
		t.Fatalf("exits = %+v", exits)
	}
}

// Nested loops:
// 0 -> 1(outer head) -> {2, 6(exit)}
// 2 -> 3(inner head) -> {4(inner body), 5}
// 4 -> 3 ; 5 -> 1
func TestNestedLoops(t *testing.T) {
	f := mkFunc(t, 7, map[int][]int{
		0: {1}, 1: {2, 6}, 2: {3}, 3: {4, 5}, 4: {3}, 5: {1},
	})
	g := Build(f)
	lf := FindLoops(g)
	if len(lf.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(lf.Loops))
	}
	outer, inner := lf.Loops[0], lf.Loops[1]
	if outer.Header != f.Blocks[1] {
		outer, inner = inner, outer
	}
	if outer.Header != f.Blocks[1] || inner.Header != f.Blocks[3] {
		t.Fatalf("headers: outer=%v inner=%v", outer.Header, inner.Header)
	}
	if inner.Parent != outer {
		t.Fatalf("inner parent = %v", inner.Parent)
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Fatalf("depths: %d %d", outer.Depth, inner.Depth)
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Fatal("children wrong")
	}
	if len(inner.Blocks) != 2 {
		t.Fatalf("inner blocks = %v", inner.Blocks)
	}
	if len(outer.Blocks) != 5 {
		t.Fatalf("outer blocks = %v", outer.Blocks)
	}
	if lf.InnermostLoop(f.Blocks[4]) != inner {
		t.Fatal("block 4 should be innermost in inner loop")
	}
	if lf.InnermostLoop(f.Blocks[2]) != outer {
		t.Fatal("block 2 should be in outer loop only")
	}
	if len(lf.Roots) != 1 || lf.Roots[0] != outer {
		t.Fatal("roots wrong")
	}
}

// Two back edges sharing a header must merge into one loop:
// 0 -> 1 -> {2,3}; 2 -> 1; 3 -> {1, 4}
func TestMergedBackEdges(t *testing.T) {
	f := mkFunc(t, 5, map[int][]int{0: {1}, 1: {2, 3}, 2: {1}, 3: {1, 4}})
	g := Build(f)
	lf := FindLoops(g)
	if len(lf.Loops) != 1 {
		t.Fatalf("loops = %d, want 1 (merged)", len(lf.Loops))
	}
	l := lf.Loops[0]
	if len(l.Blocks) != 3 {
		t.Fatalf("loop blocks = %v, want {1,2,3}", l.Blocks)
	}
}

func TestUnreachableBlocksIgnored(t *testing.T) {
	f := mkFunc(t, 4, map[int][]int{0: {1}, 2: {3}, 3: {2}}) // 2,3 unreachable cycle
	g := Build(f)
	if g.Reachable(f.Blocks[2]) || g.Reachable(f.Blocks[3]) {
		t.Fatal("blocks 2,3 should be unreachable")
	}
	if len(g.RPO) != 2 {
		t.Fatalf("RPO = %v", g.RPO)
	}
	lf := FindLoops(g)
	if len(lf.Loops) != 0 {
		t.Fatalf("unreachable cycle must not form a loop, got %v", lf.Loops)
	}
	if g.Dominates(f.Blocks[0], f.Blocks[2]) {
		t.Fatal("nothing dominates an unreachable block")
	}
}

func TestRPOOrder(t *testing.T) {
	// Chain 0 -> 1 -> 2: RPO must be exactly that order.
	f := mkFunc(t, 3, map[int][]int{0: {1}, 1: {2}})
	g := Build(f)
	for i, b := range f.Blocks {
		idx, ok := g.RPOIndex(b)
		if !ok || idx != i {
			t.Fatalf("RPOIndex(%v) = %d,%v want %d", b, idx, ok, i)
		}
	}
}

func TestPredsComputed(t *testing.T) {
	f := mkFunc(t, 4, map[int][]int{0: {1, 2}, 1: {3}, 2: {3}})
	g := Build(f)
	preds := g.Preds[f.Blocks[3]]
	if len(preds) != 2 {
		t.Fatalf("join preds = %v", preds)
	}
	if len(g.Preds[f.Blocks[0]]) != 0 {
		t.Fatal("entry must have no preds")
	}
}

// A self-loop: 0 -> 1; 1 -> {1, 2}
func TestSelfLoop(t *testing.T) {
	f := mkFunc(t, 3, map[int][]int{0: {1}, 1: {1, 2}})
	g := Build(f)
	lf := FindLoops(g)
	if len(lf.Loops) != 1 {
		t.Fatalf("loops = %d", len(lf.Loops))
	}
	l := lf.Loops[0]
	if len(l.Blocks) != 1 || l.Header != f.Blocks[1] {
		t.Fatalf("self loop = %+v", l)
	}
	exits := l.Exits()
	if len(exits) != 1 || exits[0].To != f.Blocks[2] {
		t.Fatalf("exits = %+v", exits)
	}
}

func TestLoopNumInstrs(t *testing.T) {
	f := mkFunc(t, 3, map[int][]int{0: {1}, 1: {1, 2}})
	f.Blocks[1].Instrs = append(f.Blocks[1].Instrs, ir.Instr{Op: ir.OpNop}, ir.Instr{Op: ir.OpNop})
	g := Build(f)
	lf := FindLoops(g)
	if got := lf.Loops[0].NumInstrs(); got != 3 { // 2 nops + terminator
		t.Fatalf("NumInstrs = %d, want 3", got)
	}
}
