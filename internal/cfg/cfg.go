// Package cfg provides the control-flow analyses the paper's pipeline needs:
// predecessor maps, reverse postorder, dominator trees (the Cooper–Harvey–
// Kennedy iterative algorithm), and natural-loop detection with a loop
// nesting forest, following the classical construction the paper cites
// ([ASU86], "Natural loop analysis").
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Graph is the analysed view of one function's CFG. It is immutable with
// respect to the function it was built from: rebuilding after a transform is
// the caller's job.
type Graph struct {
	Func *ir.Func

	// Preds maps each block to its predecessors, in block order.
	Preds map[*ir.Block][]*ir.Block

	// RPO is the blocks reachable from the entry in reverse postorder.
	RPO []*ir.Block

	// rpoIndex maps each reachable block to its position in RPO.
	rpoIndex map[*ir.Block]int

	// idom maps each reachable block (except the entry) to its immediate
	// dominator.
	idom map[*ir.Block]*ir.Block
}

// Build computes predecessors, reverse postorder, and dominators for f.
func Build(f *ir.Func) *Graph {
	g := &Graph{
		Func:     f,
		Preds:    make(map[*ir.Block][]*ir.Block, len(f.Blocks)),
		rpoIndex: make(map[*ir.Block]int, len(f.Blocks)),
		idom:     make(map[*ir.Block]*ir.Block, len(f.Blocks)),
	}
	g.computeRPO()
	g.computePreds()
	g.computeDominators()
	return g
}

func (g *Graph) computeRPO() {
	f := g.Func
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	var post []*ir.Block
	// Iterative DFS with an explicit stack of (block, nextSuccIndex).
	type frame struct {
		b     *ir.Block
		succs []*ir.Block
		next  int
	}
	var stack []frame
	push := func(b *ir.Block) {
		seen[b] = true
		stack = append(stack, frame{b: b, succs: b.Succs(nil)})
	}
	push(f.Entry)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(top.succs) {
			s := top.succs[top.next]
			top.next++
			if !seen[s] {
				push(s)
			}
			continue
		}
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]*ir.Block, len(post))
	for i, b := range post {
		g.RPO[len(post)-1-i] = b
	}
	for i, b := range g.RPO {
		g.rpoIndex[b] = i
	}
}

func (g *Graph) computePreds() {
	var succs []*ir.Block
	for _, b := range g.RPO {
		succs = b.Succs(succs[:0])
		for _, s := range succs {
			g.Preds[s] = append(g.Preds[s], b)
		}
	}
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative dominator
// algorithm over the reverse postorder.
func (g *Graph) computeDominators() {
	entry := g.Func.Entry
	g.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range g.Preds[b] {
				if g.idom[p] == nil {
					continue // not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = g.intersect(p, newIdom)
				}
			}
			if newIdom != nil && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
	g.idom[entry] = nil // the entry has no immediate dominator
}

func (g *Graph) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for g.rpoIndex[a] > g.rpoIndex[b] {
			a = g.idom[a]
		}
		for g.rpoIndex[b] > g.rpoIndex[a] {
			b = g.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b, or nil for the entry block and
// unreachable blocks.
func (g *Graph) Idom(b *ir.Block) *ir.Block { return g.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (g *Graph) Dominates(a, b *ir.Block) bool {
	if _, ok := g.rpoIndex[b]; !ok {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := g.idom[b]
		if next == nil {
			return false
		}
		b = next
	}
}

// Reachable reports whether b is reachable from the entry.
func (g *Graph) Reachable(b *ir.Block) bool {
	_, ok := g.rpoIndex[b]
	return ok
}

// RPOIndex returns b's reverse-postorder index; blocks earlier in RPO come
// first on any path from the entry in a reducible region.
func (g *Graph) RPOIndex(b *ir.Block) (int, bool) {
	i, ok := g.rpoIndex[b]
	return i, ok
}

// IsBackEdge reports whether the edge from→to is a back edge, i.e. its
// target dominates its source. Natural loops are grown from back edges.
func (g *Graph) IsBackEdge(from, to *ir.Block) bool {
	return g.Reachable(from) && g.Dominates(to, from)
}

// String renders a compact summary for diagnostics.
func (g *Graph) String() string {
	s := fmt.Sprintf("cfg %s: %d reachable blocks\n", g.Func.Name, len(g.RPO))
	for _, b := range g.RPO {
		s += fmt.Sprintf("  %s idom=%v preds=%v\n", b, g.idom[b], g.Preds[b])
	}
	return s
}

// Loop is one natural loop: a header plus the set of blocks that can reach a
// back edge into the header without leaving the loop.
type Loop struct {
	Header *ir.Block
	// Blocks contains every block of the loop, header included, in
	// deterministic (block ID) order.
	Blocks []*ir.Block
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Children are the loops directly nested inside this one.
	Children []*Loop
	// Depth is 1 for outermost loops.
	Depth int

	members map[*ir.Block]bool
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.members[b] }

// NumInstrs is the loop body size in IR instructions (terminators count 1).
func (l *Loop) NumInstrs() int {
	n := 0
	for _, b := range l.Blocks {
		n += len(b.Instrs) + 1
	}
	return n
}

func (l *Loop) String() string {
	return fmt.Sprintf("loop(header=%s blocks=%d depth=%d)", l.Header, len(l.Blocks), l.Depth)
}

// LoopForest is the set of natural loops of one function, with the
// containment hierarchy resolved.
type LoopForest struct {
	// Loops holds every loop, outermost-first within each tree,
	// deterministically ordered by header RPO index.
	Loops []*Loop
	// Roots are the outermost loops.
	Roots []*Loop

	innermost map[*ir.Block]*Loop
}

// InnermostLoop returns the innermost loop containing b, or nil.
func (lf *LoopForest) InnermostLoop(b *ir.Block) *Loop { return lf.innermost[b] }

// FindLoops detects all natural loops of g. Back edges sharing a header are
// merged into a single loop, as in the classical construction.
func FindLoops(g *Graph) *LoopForest {
	// Collect back edges grouped by header.
	backEdges := make(map[*ir.Block][]*ir.Block)
	var headers []*ir.Block
	var succs []*ir.Block
	for _, b := range g.RPO {
		succs = b.Succs(succs[:0])
		for _, s := range succs {
			if g.IsBackEdge(b, s) {
				if backEdges[s] == nil {
					headers = append(headers, s)
				}
				backEdges[s] = append(backEdges[s], b)
			}
		}
	}
	lf := &LoopForest{innermost: make(map[*ir.Block]*Loop)}
	for _, h := range headers {
		l := &Loop{Header: h, members: map[*ir.Block]bool{h: true}}
		// Grow the loop body backwards from each back-edge source.
		var stack []*ir.Block
		for _, src := range backEdges[h] {
			if !l.members[src] {
				l.members[src] = true
				stack = append(stack, src)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Preds[b] {
				if !l.members[p] && g.Reachable(p) {
					l.members[p] = true
					stack = append(stack, p)
				}
			}
		}
		for b := range l.members {
			l.Blocks = append(l.Blocks, b)
		}
		sort.Slice(l.Blocks, func(i, j int) bool { return l.Blocks[i].ID < l.Blocks[j].ID })
		lf.Loops = append(lf.Loops, l)
	}
	// Deterministic order: headers by RPO index.
	sort.Slice(lf.Loops, func(i, j int) bool {
		a, _ := g.RPOIndex(lf.Loops[i].Header)
		b, _ := g.RPOIndex(lf.Loops[j].Header)
		return a < b
	})
	// Resolve nesting: the parent of loop L is the smallest loop that
	// properly contains L's header and is not L itself.
	for _, l := range lf.Loops {
		var parent *Loop
		for _, cand := range lf.Loops {
			if cand == l || !cand.members[l.Header] {
				continue
			}
			// cand contains l's header; is it the tightest so far?
			if cand.members[l.Header] && len(cand.Blocks) > len(l.Blocks) {
				if parent == nil || len(cand.Blocks) < len(parent.Blocks) {
					parent = cand
				}
			}
		}
		l.Parent = parent
		if parent != nil {
			parent.Children = append(parent.Children, l)
		} else {
			lf.Roots = append(lf.Roots, l)
		}
	}
	// Depths and innermost map.
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, r := range lf.Roots {
		setDepth(r, 1)
	}
	// A block's innermost loop is the smallest loop containing it.
	for _, l := range lf.Loops {
		for _, b := range l.Blocks {
			cur := lf.innermost[b]
			if cur == nil || len(l.Blocks) < len(cur.Blocks) {
				lf.innermost[b] = l
			}
		}
	}
	return lf
}

// ExitEdge is an edge leaving a loop: From is inside, To is outside.
type ExitEdge struct {
	From, To *ir.Block
	// Taken reports whether the exit is the taken side of From's branch
	// (false for fall-through or unconditional exits).
	Taken bool
}

// Exits returns the loop's exit edges in deterministic order.
func (l *Loop) Exits() []ExitEdge {
	var out []ExitEdge
	for _, b := range l.Blocks {
		switch b.Term.Op {
		case ir.TermJmp:
			if !l.members[b.Term.Then] {
				out = append(out, ExitEdge{From: b, To: b.Term.Then})
			}
		case ir.TermBr:
			if !l.members[b.Term.Then] {
				out = append(out, ExitEdge{From: b, To: b.Term.Then, Taken: true})
			}
			if !l.members[b.Term.Else] {
				out = append(out, ExitEdge{From: b, To: b.Term.Else})
			}
		case ir.TermSwitch:
			for _, t := range b.Term.Targets {
				if !l.members[t] {
					out = append(out, ExitEdge{From: b, To: t, Taken: true})
				}
			}
			if !l.members[b.Term.Else] {
				out = append(out, ExitEdge{From: b, To: b.Term.Else})
			}
		}
	}
	return out
}
