package layout

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/progen"
	"repro/internal/trace"
)

// profileFor runs a program collecting block counts and branch counts.
func profileFor(t *testing.T, prog *ir.Program) ([][]uint64, *trace.Counts) {
	t.Helper()
	n := prog.NumberBranches(false)
	counts := trace.NewCounts(n)
	m := interp.New(prog)
	m.EnableBlockCounts()
	m.Hook = counts.Branch
	m.MaxSteps = 20_000_000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.BlockCounts(), counts
}

func TestOrderPutsHotPathAdjacent(t *testing.T) {
	prog, err := lang.Compile(`
func main() int {
    var s int = 0;
    for var i int = 0; i < 10000; i = i + 1 {
        if i % 100 == 0 {
            s = s + 100;   // cold
        } else {
            s = s + 1;     // hot
        }
    }
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	prog.NumberBranches(true)
	bc, counts := profileFor(t, prog)
	f := prog.Func("main")
	order := Order(f, FuncWeights(f, bc[f.ID], counts))
	if len(order) != len(f.Blocks) {
		t.Fatalf("order has %d blocks, want %d", len(order), len(f.Blocks))
	}
	seen := map[*ir.Block]bool{}
	for _, b := range order {
		if seen[b] {
			t.Fatalf("block %v appears twice", b)
		}
		seen[b] = true
	}
	if order[0] != f.Entry {
		t.Fatalf("entry not first: %v", order[0])
	}
	// The optimised layout must beat the naive one on taken transfers.
	naive := Evaluate(f, OriginalOrder(f), bc[f.ID], counts)
	ph := Evaluate(f, order, bc[f.ID], counts)
	if ph.TakenTransfers >= naive.TakenTransfers {
		t.Fatalf("PH layout no better: %d vs %d taken", ph.TakenTransfers, naive.TakenTransfers)
	}
	if ph.Transfers != naive.Transfers {
		t.Fatalf("transfer totals differ: %d vs %d", ph.Transfers, naive.Transfers)
	}
}

func TestEvaluateCountsConserve(t *testing.T) {
	prog, err := lang.Compile(`
func main() int {
    var s int = 0;
    for var i int = 0; i < 50; i = i + 1 {
        if i % 3 == 0 { s = s + 1; }
    }
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	prog.NumberBranches(true)
	bc, counts := profileFor(t, prog)
	st := EvaluateProgram(prog, bc, counts, false)
	if st.Transfers == 0 || st.TakenTransfers > st.Transfers {
		t.Fatalf("bad stats %+v", st)
	}
	if st.TakenRate() < 0 || st.TakenRate() > 100 {
		t.Fatalf("rate out of range: %v", st.TakenRate())
	}
}

// Property: on random programs, PH layout never increases taken transfers
// versus the naive layout, and orders are always permutations.
func TestPHNeverWorseOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := progen.Generate(seed, progen.DefaultConfig())
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		prog.NumberBranches(true)
		n := prog.NumberBranches(false)
		counts := trace.NewCounts(n)
		m := interp.New(prog)
		m.EnableBlockCounts()
		m.Hook = counts.Branch
		m.MaxSteps = 10_000_000
		if _, err := m.Run(); err != nil {
			continue // budget exceeded; fine
		}
		bc := m.BlockCounts()
		naive := EvaluateProgram(prog, bc, counts, false)
		ph := EvaluateProgram(prog, bc, counts, true)
		if ph.Transfers != naive.Transfers {
			t.Fatalf("seed %d: transfer totals differ", seed)
		}
		// PH is a greedy heuristic, not an optimum, but on these CFGs it
		// should never lose badly; allow a 5%% slack.
		if float64(ph.TakenTransfers) > float64(naive.TakenTransfers)*1.05+5 {
			t.Fatalf("seed %d: PH much worse: %d vs %d",
				seed, ph.TakenTransfers, naive.TakenTransfers)
		}
		for _, f := range prog.Funcs {
			order := Order(f, FuncWeights(f, bc[f.ID], counts))
			if len(order) != len(f.Blocks) {
				t.Fatalf("seed %d: order not a permutation in %s", seed, f.Name)
			}
		}
	}
}

func TestFuncWeightsJmpAndBr(t *testing.T) {
	prog, err := lang.Compile(`
func main() int {
    var s int = 0;
    var i int = 0;
    while i < 10 { i = i + 1; s = s + i; }
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	prog.NumberBranches(true)
	bc, counts := profileFor(t, prog)
	f := prog.Func("main")
	w := FuncWeights(f, bc[f.ID], counts)
	// The while-head Br: taken 10, not-taken 1.
	var taken, notTaken uint64
	for e, wt := range w {
		if e.From.Term.Op == ir.TermBr {
			if e.Taken {
				taken = wt
			} else {
				notTaken = wt
			}
		}
	}
	if taken != 10 || notTaken != 1 {
		t.Fatalf("branch edge weights = %d/%d, want 10/1", taken, notTaken)
	}
}
