// Package layout implements profile-guided code positioning in the style
// of Pettis & Hansen [PH90] — the work the paper credits as the direct
// inspiration for its replication idea — plus the dynamic taken-transfer
// metric used to evaluate a layout. It lets the repository quantify how
// replication interacts with instruction layout: replicated copies carry
// strongly biased branches, which a layout pass can turn into fall-
// throughs.
package layout

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/trace"
)

// Edge identifies one CFG edge inside a function.
type Edge struct {
	From *ir.Block
	// Taken is the Then slot of a Br; Jmp edges use Taken=true.
	Taken bool
}

// Target resolves the edge's destination.
func (e Edge) Target() *ir.Block {
	if e.Taken {
		return e.From.Term.Then
	}
	return e.From.Term.Else
}

// Weights holds per-edge dynamic execution counts for one function,
// derived from block execution counts and branch outcome counts.
type Weights map[Edge]uint64

// FuncWeights computes edge weights for one function: a Jmp edge runs as
// often as its block; a Br's taken edge count comes from the branch
// profile and its fall-through edge is the remainder.
func FuncWeights(f *ir.Func, blockCounts []uint64, counts *trace.Counts) Weights {
	w := make(Weights)
	for _, b := range f.Blocks {
		switch b.Term.Op {
		case ir.TermJmp:
			w[Edge{From: b, Taken: true}] = blockCounts[b.ID]
		case ir.TermBr:
			taken := counts.Taken[b.Term.Site]
			exec := blockCounts[b.ID]
			nt := uint64(0)
			if exec > taken {
				nt = exec - taken
			}
			w[Edge{From: b, Taken: true}] = taken
			w[Edge{From: b, Taken: false}] = nt
		}
	}
	return w
}

// Order computes a Pettis–Hansen bottom-up block ordering for f: edges are
// visited heaviest first, and two chains merge when the edge connects one
// chain's tail to the other's head. The entry block's chain is placed
// first; remaining chains follow by decreasing total weight.
func Order(f *ir.Func, w Weights) []*ir.Block {
	// Each block starts as its own chain.
	next := make(map[*ir.Block]*ir.Block)
	head := make(map[*ir.Block]*ir.Block) // block -> chain head
	tail := make(map[*ir.Block]*ir.Block) // chain head -> chain tail
	for _, b := range f.Blocks {
		head[b] = b
		tail[b] = b
	}
	type edgeW struct {
		e Edge
		w uint64
	}
	edges := make([]edgeW, 0, len(w))
	for e, wt := range w {
		if wt > 0 {
			edges = append(edges, edgeW{e, wt})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		// Deterministic tie-break by block IDs and slot.
		a, b := edges[i].e, edges[j].e
		if a.From.ID != b.From.ID {
			return a.From.ID < b.From.ID
		}
		return a.Taken && !b.Taken
	})
	for _, ew := range edges {
		u, v := ew.e.From, ew.e.Target()
		hu, hv := head[u], head[v]
		if hu == hv {
			continue // same chain (would form a cycle)
		}
		if tail[hu] != u || hv != v {
			continue // u must end its chain, v must start its own
		}
		// Append chain hv after u.
		next[u] = v
		tail[hu] = tail[hv]
		for b := v; b != nil; b = next[b] {
			head[b] = hu
		}
		delete(tail, hv)
	}
	// Chain weights for placement order.
	chainWeight := make(map[*ir.Block]uint64)
	for e, wt := range w {
		chainWeight[head[e.From]] += wt
	}
	var chains []*ir.Block
	for h := range tail {
		chains = append(chains, h)
	}
	sort.SliceStable(chains, func(i, j int) bool {
		hi, hj := chains[i], chains[j]
		if hi == head[f.Entry] {
			return true
		}
		if hj == head[f.Entry] {
			return false
		}
		if chainWeight[hi] != chainWeight[hj] {
			return chainWeight[hi] > chainWeight[hj]
		}
		return hi.ID < hj.ID
	})
	out := make([]*ir.Block, 0, len(f.Blocks))
	for _, h := range chains {
		for b := h; b != nil; b = next[b] {
			out = append(out, b)
		}
	}
	return out
}

// OriginalOrder returns the function's current block order (the layout a
// naive compiler would emit).
func OriginalOrder(f *ir.Func) []*ir.Block {
	out := make([]*ir.Block, len(f.Blocks))
	copy(out, f.Blocks)
	return out
}

// Stats are the dynamic control-transfer statistics of a layout.
type Stats struct {
	// Transfers is the number of executed terminator transfers
	// (calls/returns excluded).
	Transfers uint64
	// TakenTransfers counts transfers whose target is not the next block
	// in layout (taken branches and non-adjacent jumps) — the quantity
	// branch alignment and [PH90] positioning minimise.
	TakenTransfers uint64
	// UncondJumps counts executed unconditional jumps that are not
	// fall-throughs (the Mueller–Whalley replication target).
	UncondJumps uint64
}

// TakenRate is TakenTransfers/Transfers in percent.
func (s Stats) TakenRate() float64 {
	if s.Transfers == 0 {
		return 0
	}
	return 100 * float64(s.TakenTransfers) / float64(s.Transfers)
}

// Evaluate computes the layout statistics of one function under the given
// block order, using the same profiles that FuncWeights consumes.
func Evaluate(f *ir.Func, order []*ir.Block, blockCounts []uint64, counts *trace.Counts) Stats {
	pos := make(map[*ir.Block]int, len(order))
	for i, b := range order {
		pos[b] = i
	}
	fallsThrough := func(u, v *ir.Block) bool { return pos[v] == pos[u]+1 }
	var st Stats
	for _, b := range f.Blocks {
		switch b.Term.Op {
		case ir.TermJmp:
			n := blockCounts[b.ID]
			st.Transfers += n
			if !fallsThrough(b, b.Term.Then) {
				st.TakenTransfers += n
				st.UncondJumps += n
			}
		case ir.TermBr:
			taken := counts.Taken[b.Term.Site]
			exec := blockCounts[b.ID]
			nt := uint64(0)
			if exec > taken {
				nt = exec - taken
			}
			st.Transfers += taken + nt
			if !fallsThrough(b, b.Term.Then) {
				st.TakenTransfers += taken
			}
			if !fallsThrough(b, b.Term.Else) {
				st.TakenTransfers += nt
			}
		case ir.TermSwitch:
			// A multi-way dispatch always transfers control indirectly; no
			// layout can turn it into a fall-through. This is exactly what
			// the indirect clustering family attacks: its fast-path test is
			// an ordinary conditional the layout can straighten.
			n := blockCounts[b.ID]
			st.Transfers += n
			st.TakenTransfers += n
		}
	}
	return st
}

// EvaluateProgram sums layout statistics across all functions, laying each
// out with the given strategy.
func EvaluateProgram(prog *ir.Program, blockCounts [][]uint64, counts *trace.Counts, ph bool) Stats {
	var total Stats
	for _, f := range prog.Funcs {
		var order []*ir.Block
		if ph {
			order = Order(f, FuncWeights(f, blockCounts[f.ID], counts))
		} else {
			order = OriginalOrder(f)
		}
		st := Evaluate(f, order, blockCounts[f.ID], counts)
		total.Transfers += st.Transfers
		total.TakenTransfers += st.TakenTransfers
		total.UncondJumps += st.UncondJumps
	}
	return total
}
