// Package runner is the parallel experiment engine behind internal/bench
// and cmd/krallbench. It decomposes an experiment sweep into independent
// jobs (one per workload × strategy × parameter point), executes them
// across a bounded worker pool, and merges the results deterministically:
// results are placed by job index, never by completion order, so the
// output of a parallel run is byte-identical to a sequential one. A keyed
// artifact cache (see Cache) with single-flight population lets repeated
// cells of a sweep reuse profiled pattern tables, alternate-dataset runs,
// and strategy selections instead of recomputing them.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Engine executes jobs across a fixed number of workers and owns the
// artifact cache and the job/cache counters. The zero-cost way to get the
// exact sequential behaviour is New(1): every job then runs inline in the
// caller's goroutine.
type Engine struct {
	workers int
	cache   *Cache
	jobs    atomic.Int64
	jobNS   atomic.Int64

	// Trace-replay engine counters (see internal/bench): recordings are
	// interpreter runs that produced a branch trace, replays are trace
	// playbacks into collectors, and live runs are interpreter executions
	// that could not be served from a trace (transformed clones).
	records        atomic.Int64
	recordedEvents atomic.Int64
	replays        atomic.Int64
	replayedEvents atomic.Int64
	liveRuns       atomic.Int64
}

// CountRecord notes one record-mode interpreter run that captured events
// branch events into a trace.
func (e *Engine) CountRecord(events int64) {
	e.records.Add(1)
	e.recordedEvents.Add(events)
}

// CountReplay notes one trace replay that fed events branch events into
// collectors without re-interpreting the workload.
func (e *Engine) CountReplay(events int64) {
	e.replays.Add(1)
	e.replayedEvents.Add(events)
}

// CountLiveRun notes one interpreter execution that could not be served
// from a recorded trace (typically a transformed program clone).
func (e *Engine) CountLiveRun() { e.liveRuns.Add(1) }

// New creates an engine with the given worker count; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, cache: NewCache()}
}

// Workers is the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// Cache is the engine's artifact cache. Suites sharing an engine share
// profiles, decoded traces, and selection sweeps through it.
func (e *Engine) Cache() *Cache { return e.cache }

// Stats is a snapshot of an engine's counters.
type Stats struct {
	// Workers is the configured pool width.
	Workers int
	// Jobs is the number of jobs executed; JobTime is the wall time summed
	// over jobs (with N workers it can exceed elapsed time N-fold).
	Jobs    int64
	JobTime time.Duration
	// CacheHits and CacheMisses count artifact-cache lookups: a hit means a
	// profile, trace, or selection sweep was reused instead of recomputed.
	CacheHits, CacheMisses int64
	// TraceRecords is the number of record-mode interpreter runs and
	// RecordedEvents the branch events they captured; Replays/ReplayedEvents
	// count trace playbacks serving experiments without re-interpretation;
	// LiveRuns counts interpreter executions that bypassed the trace path.
	TraceRecords   int64
	RecordedEvents int64
	Replays        int64
	ReplayedEvents int64
	LiveRuns       int64
}

func (s Stats) String() string {
	return fmt.Sprintf("%d workers, %d jobs (%v job time), cache %d hits / %d misses, "+
		"%d recordings (%d events), %d replays (%d events), %d live runs",
		s.Workers, s.Jobs, s.JobTime.Round(time.Millisecond), s.CacheHits, s.CacheMisses,
		s.TraceRecords, s.RecordedEvents, s.Replays, s.ReplayedEvents, s.LiveRuns)
}

// Stats returns the engine's current counters.
func (e *Engine) Stats() Stats {
	hits, misses := e.cache.Counters()
	return Stats{
		Workers:        e.workers,
		Jobs:           e.jobs.Load(),
		JobTime:        time.Duration(e.jobNS.Load()),
		CacheHits:      hits,
		CacheMisses:    misses,
		TraceRecords:   e.records.Load(),
		RecordedEvents: e.recordedEvents.Load(),
		Replays:        e.replays.Load(),
		ReplayedEvents: e.replayedEvents.Load(),
		LiveRuns:       e.liveRuns.Load(),
	}
}

// Map applies fn to every item and returns the results in item order.
// Jobs are distributed over the engine's workers; with a nil engine or a
// single worker every job runs inline in the caller's goroutine, which is
// exactly the sequential path. Merging is order-independent — out[i] only
// ever holds item i's result — and on failure the error of the
// lowest-index failing job is returned, so error behaviour is
// deterministic too. A panicking job is converted into an error instead of
// crashing unrelated workers.
func Map[T, R any](e *Engine, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, nil
	}
	workers := 1
	if e != nil {
		workers = e.workers
	}
	if workers > len(items) {
		workers = len(items)
	}
	errs := make([]error, len(items))
	run := func(i int) {
		start := time.Now()
		out[i], errs[i] = protect(func() (R, error) { return fn(i, items[i]) })
		if e != nil {
			e.jobs.Add(1)
			e.jobNS.Add(time.Since(start).Nanoseconds())
		}
	}
	if workers <= 1 {
		for i := range items {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(items) {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// protect converts a panic in fn into an error so one failing job cannot
// take down the whole pool with a cross-goroutine crash.
func protect[R any](fn func() (R, error)) (out R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return fn()
}
