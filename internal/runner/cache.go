package runner

import (
	"sync"
	"sync/atomic"
)

// Cache is the keyed artifact cache: expensive, immutable intermediates
// (profiled pattern tables, alternate-dataset trace counts, strategy
// selection sweeps) are stored under a caller-chosen key. Population is
// single-flight: when several workers ask for the same missing key at
// once, exactly one computes it and the others block until it is done, so
// a Table/Figure sweep profiles each workload once instead of dozens of
// times. Cached values must be treated as immutable by all callers —
// they are shared across goroutines without further synchronisation.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type cacheEntry struct {
	done chan struct{} // closed once val/err are final
	val  any
	err  error
}

// NewCache creates an empty cache.
func NewCache() *Cache { return &Cache{entries: map[string]*cacheEntry{}} }

// Do returns the value stored under key, computing it with fn on first
// request. Errors (and panics, converted to errors) are cached too: a
// deterministic pipeline that failed once will fail identically again, and
// re-running a failed job would break parallel/sequential equivalence.
func (c *Cache) Do(key string, fn func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits.Add(1)
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses.Add(1)
	c.mu.Unlock()
	defer close(e.done)
	e.val, e.err = protect(fn)
	return e.val, e.err
}

// Counters returns the hit/miss totals.
func (c *Cache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len is the number of populated (or in-flight) keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
