package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU(2)
	calls := 0
	get := func(k string) string {
		v, err := LRUCached(l, k, func() (string, error) {
			calls++
			return "v:" + k, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if get("a") != "v:a" || get("a") != "v:a" {
		t.Fatal("wrong value")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (second get must hit)", calls)
	}
	get("b")
	get("c") // evicts a (capacity 2)
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	get("a")
	if calls != 4 {
		t.Fatalf("calls = %d, want 4 (a was evicted and recomputed)", calls)
	}
	hits, misses := l.Counters()
	if hits != 1 || misses != 4 {
		t.Fatalf("counters = %d hits / %d misses, want 1/4", hits, misses)
	}
}

// TestLRURecencyOrder pins that hitting an entry protects it from the next
// eviction.
func TestLRURecencyOrder(t *testing.T) {
	l := NewLRU(2)
	calls := map[string]int{}
	get := func(k string) {
		if _, err := LRUCached(l, k, func() (string, error) {
			calls[k]++
			return k, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // a is now most recent
	get("c") // must evict b, not a
	get("a")
	if calls["a"] != 1 {
		t.Fatalf("a computed %d times, want 1 (recency must protect it)", calls["a"])
	}
	if calls["b"] != 1 {
		t.Fatalf("b computed %d times, want 1", calls["b"])
	}
}

// TestLRUErrorsNotCached is the service-facing divergence from Cache: a
// failed (e.g. cancelled) computation must be retryable.
func TestLRUErrorsNotCached(t *testing.T) {
	l := NewLRU(4)
	calls := 0
	boom := errors.New("boom")
	fn := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, boom
		}
		return 42, nil
	}
	if _, err := LRUCached(l, "k", fn); !errors.Is(err, boom) {
		t.Fatalf("first call: %v, want boom", err)
	}
	v, err := LRUCached(l, "k", fn)
	if err != nil || v != 42 {
		t.Fatalf("retry = %d, %v; want 42, nil", v, err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

// TestLRUPanicBecomesError mirrors Cache's protect behaviour.
func TestLRUPanicBecomesError(t *testing.T) {
	l := NewLRU(4)
	_, err := l.Do("k", func() (any, error) { panic("kaboom") })
	if err == nil {
		t.Fatal("panicking fn returned nil error")
	}
}

// TestLRUSingleFlight hammers one key from many goroutines: the value must
// be computed exactly once and shared.
func TestLRUSingleFlight(t *testing.T) {
	l := NewLRU(8)
	var computed atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, err := LRUCached(l, "shared", func() (int, error) {
				computed.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("got %d, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
}

// TestLRUConcurrentChurn runs many goroutines over a keyspace larger than
// the capacity — the race detector's target.
func TestLRUConcurrentChurn(t *testing.T) {
	l := NewLRU(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				v, err := LRUCached(l, k, func() (string, error) { return "v" + k, nil })
				if err != nil || v != "v"+k {
					t.Errorf("key %s: got %q, %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := l.Len(); n > 4 {
		t.Fatalf("Len = %d exceeds capacity 4", n)
	}
}
