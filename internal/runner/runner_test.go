package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 32} {
		e := New(workers)
		items := make([]int, 100)
		for i := range items {
			items[i] = i
		}
		got, err := Map(e, items, func(i, v int) (int, error) {
			if i != v {
				t.Errorf("fn called with i=%d item=%d", i, v)
			}
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		if st := e.Stats(); st.Jobs != 100 {
			t.Fatalf("workers=%d: jobs = %d, want 100", workers, st.Jobs)
		}
	}
}

func TestMapSequentialAndParallelIdentical(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i * 3
	}
	f := func(i, v int) (string, error) { return fmt.Sprintf("%d:%d", i, v), nil }
	seq, err := Map(New(1), items, f)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(New(8), items, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("out[%d]: sequential %q != parallel %q", i, seq[i], par[i])
		}
	}
}

func TestMapNilEngineRunsInline(t *testing.T) {
	got, err := Map[int, int](nil, []int{1, 2, 3}, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[2] != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(New(4), nil, func(i int, v struct{}) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestMapErrorDeterministic: whichever worker fails first, the returned
// error must be the lowest-index one.
func TestMapErrorDeterministic(t *testing.T) {
	items := make([]int, 50)
	for workers := 1; workers <= 8; workers *= 2 {
		_, err := Map(New(workers), items, func(i, _ int) (int, error) {
			if i%7 == 3 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want job 3's error", workers, err)
		}
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	_, err := Map(New(4), []int{0, 1, 2}, func(i, _ int) (int, error) {
		if i == 1 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not converted: %v", err)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	vals := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := Cached(c, "k", func() (int, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[g] = v
		}(g)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("populate ran %d times, want 1", n)
	}
	for g, v := range vals {
		if v != 42 {
			t.Fatalf("goroutine %d saw %d", g, v)
		}
	}
	hits, misses := c.Counters()
	if misses != 1 || hits != goroutines-1 {
		t.Fatalf("counters hits=%d misses=%d, want %d/1", hits, misses, goroutines-1)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheErrorsAreCached(t *testing.T) {
	c := NewCache()
	var calls int
	fail := func() (int, error) { calls++; return 0, errors.New("nope") }
	if _, err := Cached(c, "bad", fail); err == nil {
		t.Fatal("want error")
	}
	if _, err := Cached(c, "bad", fail); err == nil || err.Error() != "nope" {
		t.Fatalf("second call: %v", err)
	}
	if calls != 1 {
		t.Fatalf("populate ran %d times, want 1", calls)
	}
}

func TestCachePanicUnblocksWaiters(t *testing.T) {
	c := NewCache()
	done := make(chan error, 2)
	for g := 0; g < 2; g++ {
		go func() {
			_, err := Cached(c, "p", func() (int, error) { panic("kaboom") })
			done <- err
		}()
	}
	for g := 0; g < 2; g++ {
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "kaboom") {
				t.Fatalf("err = %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter deadlocked after populate panic")
		}
	}
}

// TestMapWithSharedCache is the engine's race test: many concurrent jobs
// populating and reading overlapping cache keys (run under -race in CI).
func TestMapWithSharedCache(t *testing.T) {
	e := New(8)
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	got, err := Map(e, items, func(i, v int) (int, error) {
		// 10 distinct keys, so ~20 jobs contend for each.
		key := fmt.Sprintf("k%d", v%10)
		return Cached(e.Cache(), key, func() (int, error) { return (v % 10) * 100, nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != (i%10)*100 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	st := e.Stats()
	if st.CacheMisses != 10 || st.CacheHits != 190 {
		t.Fatalf("cache hits=%d misses=%d, want 190/10", st.CacheHits, st.CacheMisses)
	}
	if st.JobTime < 0 || st.Jobs != 200 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNestedMap(t *testing.T) {
	e := New(4)
	outer := []int{0, 1, 2, 3, 4}
	got, err := Map(e, outer, func(i, v int) ([]int, error) {
		inner := make([]int, 8)
		for j := range inner {
			inner[j] = j
		}
		return Map(e, inner, func(j, w int) (int, error) { return v*10 + w, nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range got {
		for j, v := range row {
			if v != i*10+j {
				t.Fatalf("got[%d][%d] = %d", i, j, v)
			}
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Workers: 4, Jobs: 10, JobTime: time.Second, CacheHits: 3, CacheMisses: 2}
	out := s.String()
	for _, want := range []string{"4 workers", "10 jobs", "3 hits", "2 misses"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats string %q missing %q", out, want)
		}
	}
}

func TestNewDefaultsWorkers(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) produced no workers")
	}
	if New(-3).Workers() < 1 {
		t.Fatal("New(-3) produced no workers")
	}
	if New(7).Workers() != 7 {
		t.Fatal("explicit worker count not honoured")
	}
}
