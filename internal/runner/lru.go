package runner

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// LRU is the long-running counterpart of Cache: a capacity-bounded,
// content-addressed artifact store with single-flight population. Cache
// memoises forever, which is right for one batch invocation of the
// experiment engine; a daemon that must survive an arbitrary request
// stream instead bounds resident artifacts and evicts the least recently
// used. Two deliberate behaviour differences from Cache:
//
//   - Errors are not cached. A batch sweep wants a failed job to fail
//     identically on re-request (determinism); a service wants a failed or
//     cancelled computation forgotten so the next request can retry.
//   - Entries are evicted. Waiters holding an evicted in-flight entry
//     still receive its value; the entry is simply no longer findable.
//
// Values must be treated as immutable by all callers, exactly as with
// Cache: they are shared across goroutines without further synchronisation.
type LRU struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *lruEntry
	entries map[string]*list.Element
	hits    atomic.Int64
	misses  atomic.Int64
}

type lruEntry struct {
	key  string
	done chan struct{} // closed once val/err are final
	val  any
	err  error
}

// NewLRU creates a store holding at most capacity entries (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, order: list.New(), entries: map[string]*list.Element{}}
}

// Do returns the value stored under key, computing it with fn on first
// request. Population is single-flight: concurrent requests for the same
// missing key compute once and share the result. A panicking fn is
// converted to an error. On error the entry is dropped, so a later Do of
// the same key retries.
func (l *LRU) Do(key string, fn func() (any, error)) (any, error) {
	l.mu.Lock()
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		e := el.Value.(*lruEntry)
		l.hits.Add(1)
		l.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &lruEntry{key: key, done: make(chan struct{})}
	l.entries[key] = l.order.PushFront(e)
	l.misses.Add(1)
	for l.order.Len() > l.cap {
		back := l.order.Back()
		l.order.Remove(back)
		delete(l.entries, back.Value.(*lruEntry).key)
	}
	l.mu.Unlock()

	e.val, e.err = protect(fn)
	if e.err != nil {
		l.mu.Lock()
		if el, ok := l.entries[key]; ok && el.Value.(*lruEntry) == e {
			l.order.Remove(el)
			delete(l.entries, key)
		}
		l.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Counters returns the hit/miss totals.
func (l *LRU) Counters() (hits, misses int64) {
	return l.hits.Load(), l.misses.Load()
}

// Len is the number of resident (or in-flight) entries.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// Cap is the configured capacity.
func (l *LRU) Cap() int { return l.cap }

// LRUCached is the typed wrapper over LRU.Do; Cached is the same thing
// over any Store.
func LRUCached[V any](l *LRU, key string, fn func() (V, error)) (V, error) {
	return Cached[V](l, key, fn)
}
