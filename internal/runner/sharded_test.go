package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedOneShardMatchesLRU is the property test pinning the refactor:
// a Sharded store with one shard must be indistinguishable from the old
// LRU — same values, same errors-not-cached retry behaviour, same
// evictions (observed as recomputation), same hit/miss counters — over
// randomized op sequences of gets, failures, and panics.
func TestShardedOneShardMatchesLRU(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			capacity := 1 + rng.Intn(6)
			old := NewLRU(capacity)
			neu := NewSharded(capacity, 1)
			if neu.Cap() != old.Cap() {
				t.Fatalf("Cap: sharded %d, lru %d", neu.Cap(), old.Cap())
			}
			// Call counts per key observe eviction: a key recomputes only
			// after it was evicted, so identical eviction order means
			// identical counts at every step.
			oldCalls, neuCalls := map[string]int{}, map[string]int{}
			for op := 0; op < 400; op++ {
				key := fmt.Sprintf("k%d", rng.Intn(capacity*3))
				mode := rng.Intn(10) // 0 = error, 1 = panic, else success
				mk := func(calls map[string]int) func() (string, error) {
					return func() (string, error) {
						calls[key]++
						switch mode {
						case 0:
							return "", errors.New("transient")
						case 1:
							panic("transient")
						}
						return "v:" + key, nil
					}
				}
				ov, oerr := LRUCached(old, key, mk(oldCalls))
				nv, nerr := Cached[string](neu, key, mk(neuCalls))
				if ov != nv || (oerr == nil) != (nerr == nil) {
					t.Fatalf("op %d (%s, mode %d): lru (%q, %v) != sharded (%q, %v)",
						op, key, mode, ov, oerr, nv, nerr)
				}
				if oldCalls[key] != neuCalls[key] {
					t.Fatalf("op %d: key %s computed %d times on lru, %d on sharded (eviction drift)",
						op, key, oldCalls[key], neuCalls[key])
				}
				if old.Len() != neu.Len() {
					t.Fatalf("op %d: Len %d (lru) != %d (sharded)", op, old.Len(), neu.Len())
				}
				oh, om := old.Counters()
				nh, nm := neu.Counters()
				if oh != nh || om != nm {
					t.Fatalf("op %d: counters %d/%d (lru) != %d/%d (sharded)", op, oh, om, nh, nm)
				}
			}
		})
	}
}

// TestShardedSingleFlight hammers one key from many goroutines across a
// multi-shard store: dedup must hold exactly as on a single LRU.
func TestShardedSingleFlight(t *testing.T) {
	s := NewSharded(64, 8)
	var computed atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, err := Cached[int](s, "shared", func() (int, error) {
				computed.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("got %d, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
}

// TestShardedRounding pins the shard-count and capacity arithmetic.
func TestShardedRounding(t *testing.T) {
	cases := []struct {
		capacity, shards    int
		wantShards, wantCap int
	}{
		{128, 1, 1, 128},
		{128, 8, 8, 128},
		{100, 8, 8, 104}, // ceil(100/8)=13 per shard
		{128, 5, 8, 128},
		{2, 16, 16, 16}, // every shard holds at least one entry
		{0, 0, 1, 1},
	}
	for _, tc := range cases {
		s := NewSharded(tc.capacity, tc.shards)
		if s.NumShards() != tc.wantShards || s.Cap() != tc.wantCap {
			t.Errorf("NewSharded(%d, %d): %d shards cap %d, want %d shards cap %d",
				tc.capacity, tc.shards, s.NumShards(), s.Cap(), tc.wantShards, tc.wantCap)
		}
	}
}

// TestShardedConcurrentChurn is the race-detector target: goroutines
// churn a keyspace larger than capacity across multiple shards while a
// reader snapshots the per-shard counters.
func TestShardedConcurrentChurn(t *testing.T) {
	s := NewSharded(16, 4)
	done := make(chan struct{})
	var snap sync.WaitGroup
	snap.Add(1)
	go func() {
		defer snap.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			total := 0
			for _, sh := range s.Shards() {
				total += sh.Entries
			}
			if total > s.Cap() {
				t.Errorf("resident entries %d exceed capacity %d", total, s.Cap())
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%64)
				v, err := Cached[string](s, k, func() (string, error) { return "v" + k, nil })
				if err != nil || v != "v"+k {
					t.Errorf("key %s: got %q, %v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	snap.Wait()
	hits, misses := s.Counters()
	if hits+misses != 8*300 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*300)
	}
}
