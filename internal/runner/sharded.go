package runner

import "hash/maphash"

// Store is the content-addressed artifact store contract shared by
// Cache, LRU, and Sharded: single-flight population keyed by string,
// immutable values. Cached is the typed entry point over it.
type Store interface {
	// Do returns the value stored under key, computing it with fn on
	// first request (single-flight: concurrent requests for a missing key
	// compute once and share the result).
	Do(key string, fn func() (any, error)) (any, error)
}

// Cached is the typed wrapper over Store.Do.
func Cached[V any](s Store, key string, fn func() (V, error)) (V, error) {
	v, err := s.Do(key, func() (any, error) { return fn() })
	if v == nil {
		var zero V
		return zero, err
	}
	return v.(V), err
}

// Sharded is an LRU artifact store split into a power-of-two number of
// independently locked shards, each with its own single-flight table and
// recency list. One global mutex serialises every lookup of a single LRU;
// under a concurrent request stream (the kralld batch path) that lock is
// the store's scalability ceiling. Sharding by key hash keeps each
// shard's critical section as short as LRU's while letting unrelated keys
// proceed in parallel.
//
// Behaviour per shard is exactly LRU's — errors are not cached, eviction
// is per-shard recency — so NewSharded(capacity, 1) is behaviourally
// identical to NewLRU(capacity) (pinned by TestShardedOneShardMatchesLRU).
// With more shards, eviction is local: a hot shard evicts its own least
// recent entry even while a cold shard has room. That is the usual
// sharding trade and is invisible to correctness, only to hit rate.
type Sharded struct {
	shards []*LRU
	seed   maphash.Seed
	mask   uint64
}

// NewSharded creates a store of at most capacity entries split across
// shards (rounded up to a power of two, minimum 1). Capacity is divided
// evenly; every shard holds at least one entry.
func NewSharded(capacity, shards int) *Sharded {
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	if per < 1 {
		per = 1
	}
	s := &Sharded{shards: make([]*LRU, n), seed: maphash.MakeSeed(), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i] = NewLRU(per)
	}
	return s
}

func (s *Sharded) shard(key string) *LRU {
	return s.shards[maphash.String(s.seed, key)&s.mask]
}

// Do implements Store on the shard owning key.
func (s *Sharded) Do(key string, fn func() (any, error)) (any, error) {
	return s.shard(key).Do(key, fn)
}

// Counters returns hit/miss totals summed over all shards.
func (s *Sharded) Counters() (hits, misses int64) {
	for _, sh := range s.shards {
		h, m := sh.Counters()
		hits += h
		misses += m
	}
	return hits, misses
}

// Len is the number of resident (or in-flight) entries across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Cap is the total capacity (per-shard capacity × shard count).
func (s *Sharded) Cap() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Cap()
	}
	return n
}

// NumShards is the shard count (a power of two).
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardCounters is one shard's occupancy and lookup totals, exported per
// shard on the service's /metrics.
type ShardCounters struct {
	Entries      int
	Hits, Misses int64
}

// Shards snapshots every shard's counters, in shard order.
func (s *Sharded) Shards() []ShardCounters {
	out := make([]ShardCounters, len(s.shards))
	for i, sh := range s.shards {
		h, m := sh.Counters()
		out[i] = ShardCounters{Entries: sh.Len(), Hits: h, Misses: m}
	}
	return out
}
