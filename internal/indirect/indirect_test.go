package indirect_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/indirect"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/progen"
	"repro/internal/trace"
	"repro/internal/vm"
)

// The clustering transform's contract is dynamic as well as structural:
// a clustered program must produce byte-identical traces to the original
// on complete runs, on both execution backends, because a taken clustering
// test emits the dispatch's switch event and the residual keeps the site
// identity. This suite pins that, plus the structural Verify pass, over
// hand-written dispatch workloads and generated programs.

const dispatchSrc = `
var acc int;
func step(op int, x int) int {
	switch op {
	case 0:
		return x + 1;
	case 1:
		return x * 2;
	case 2:
		return x - 3;
	case 3:
		return 0 - x;
	default:
		return x;
	}
	return x;
}
func main() int {
	for var i int = 0; i < 600; i = i + 1 {
		// A skewed opcode stream: outcome 0 dominates, outcome 1 second.
		var op int = 0;
		if i % 4 == 1 {
			op = 1;
		}
		if i % 16 == 7 {
			op = 2;
		}
		if i % 64 == 15 {
			op = 9;
		}
		acc = step(op, acc);
	}
	print(acc);
	return acc;
}`

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("lang.Compile: %v", err)
	}
	prog.NumberBranches(true)
	return prog
}

// profileTargets runs prog on the interpreter and collects its per-site
// switch target distribution, keyed by Orig as the transform expects.
func profileTargets(t *testing.T, prog *ir.Program) *trace.TargetCounts {
	t.Helper()
	tc := trace.NewTargetCounts(0)
	m := interp.New(prog)
	m.MaxSteps = 5_000_000
	m.SwHook = func(tm *ir.Term, outcome int32) { tc.RecordSwitch(tm.Orig, outcome) }
	// Limit hits and traps leave a truncated profile, which is still a
	// valid (if weaker) guide for the transform.
	m.Run()
	return tc
}

type obs struct {
	ret          int64
	checksum     uint64
	trace        []byte
	branches     uint64
	predicted    uint64
	mispredicted uint64
}

func runInterp(t *testing.T, prog *ir.Program, maxSteps uint64) (obs, error) {
	t.Helper()
	m := interp.New(prog)
	m.MaxSteps = maxSteps
	s := trace.NewSlab(0)
	m.Rec = s
	ret, err := m.Run()
	s.Seal()
	var buf bytes.Buffer
	if _, werr := s.WriteTo(&buf); werr != nil {
		t.Fatalf("interp slab: %v", werr)
	}
	return obs{ret, m.Checksum, buf.Bytes(), m.Branches, m.Predicted, m.Mispredicted}, err
}

func runVM(t *testing.T, prog *ir.Program, maxSteps uint64) (obs, error) {
	t.Helper()
	vp, err := vm.Compile(prog)
	if err != nil {
		t.Fatalf("vm.Compile: %v", err)
	}
	m := vp.NewMachine()
	m.SetMaxSteps(maxSteps)
	s := trace.NewSlab(0)
	m.SetRec(s)
	ret, rerr := m.Run()
	s.Seal()
	var buf bytes.Buffer
	if _, werr := s.WriteTo(&buf); werr != nil {
		t.Fatalf("vm slab: %v", werr)
	}
	c := m.Counters()
	return obs{ret, c.Checksum, buf.Bytes(), c.Branches, c.Predicted, c.Mispredicted}, rerr
}

// diffCluster checks the full dynamic contract between an original program
// and its clustered version: identical return value, checksum, and trace
// bytes on the interpreter, and identical observables between the
// interpreter and the VM on the clustered program itself. Both runs must
// complete naturally (the clustered program executes more steps and
// conditional branches, so truncated runs are not comparable); it returns
// false without failing when the original cannot finish within maxSteps.
func diffCluster(t *testing.T, orig, clustered *ir.Program, maxSteps uint64) bool {
	t.Helper()
	io, oerr := runInterp(t, orig, maxSteps)
	if errors.Is(oerr, interp.ErrLimit) {
		return false
	}
	ic, cerr := runInterp(t, clustered, 4*maxSteps)
	if (oerr == nil) != (cerr == nil) {
		t.Fatalf("error mismatch: original=%v clustered=%v", oerr, cerr)
	}
	// Splicing renumbers downstream blocks, so trap positions may name a
	// different block; the trap kind must still agree.
	var ore, cre *interp.RuntimeError
	if errors.As(oerr, &ore) != errors.As(cerr, &cre) || (ore != nil && ore.Msg != cre.Msg) {
		t.Fatalf("trap mismatch: original=%v clustered=%v", oerr, cerr)
	}
	// A trap aborts the run at the same logical point in both programs:
	// everything observable up to it must still agree (the return value is
	// undefined on error).
	if oerr == nil && io.ret != ic.ret {
		t.Errorf("return mismatch: original=%d clustered=%d", io.ret, ic.ret)
	}
	if io.checksum != ic.checksum {
		t.Errorf("checksum mismatch: original=%#x clustered=%#x", io.checksum, ic.checksum)
	}
	if !bytes.Equal(io.trace, ic.trace) {
		t.Errorf("trace bytes differ: original %d bytes, clustered %d bytes", len(io.trace), len(ic.trace))
	}
	vc, verr := runVM(t, clustered, 4*maxSteps)
	if (cerr == nil) != (verr == nil) {
		t.Fatalf("backend error mismatch on clustered program: interp=%v vm=%v", cerr, verr)
	}
	if cerr != nil {
		sentinel := false
		for _, s := range []error{interp.ErrLimit, interp.ErrNoMain, interp.ErrMainParams} {
			if errors.Is(cerr, s) != errors.Is(verr, s) {
				t.Fatalf("backend error identity mismatch on %v: interp=%v vm=%v", s, cerr, verr)
			}
			sentinel = sentinel || errors.Is(cerr, s)
		}
		if !sentinel && cerr.Error() != verr.Error() {
			t.Fatalf("backend trap mismatch on clustered program: interp=%v vm=%v", cerr, verr)
		}
	}
	if cerr != nil {
		ic.ret, vc.ret = 0, 0 // undefined on error
	}
	if vc.ret != ic.ret || vc.checksum != ic.checksum ||
		vc.branches != ic.branches || vc.predicted != ic.predicted || vc.mispredicted != ic.mispredicted {
		t.Errorf("backend mismatch on clustered program: interp=%+v vm=%+v", ic, vc)
	}
	if !bytes.Equal(vc.trace, ic.trace) {
		t.Errorf("clustered trace bytes differ across backends")
	}
	return true
}

// cluster profiles prog, clusters a clone, and verifies the provenance.
func cluster(t *testing.T, prog *ir.Program, opts indirect.Options) (*ir.Program, *indirect.Stats, *indirect.Provenance) {
	t.Helper()
	targets := profileTargets(t, prog)
	work := ir.CloneProgram(prog)
	snap := ir.CloneProgram(work)
	stats, prov, err := indirect.Cluster(work, targets, opts)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if errs := indirect.Verify(snap, work, prov); len(errs) > 0 {
		for _, e := range errs {
			t.Errorf("Verify: %v", e)
		}
	}
	return work, stats, prov
}

func TestClusterDispatchLoop(t *testing.T) {
	prog := compileSrc(t, dispatchSrc)
	clustered, stats, prov := cluster(t, prog, indirect.Options{})
	if stats.Clustered != 1 || stats.Tests < 1 {
		t.Fatalf("expected the dispatch switch to cluster: %+v", stats)
	}
	if len(prov.Sites) != 1 {
		t.Fatalf("provenance has %d sites, want 1", len(prov.Sites))
	}
	rec := &prov.Sites[0]
	if rec.Tests[0].Outcome != 0 {
		t.Errorf("hottest test covers outcome %d, want 0", rec.Tests[0].Outcome)
	}
	if rec.Tests[0].Pred != ir.PredTaken {
		t.Errorf("dominant test predicted %v, want taken", rec.Tests[0].Pred)
	}
	if !diffCluster(t, prog, clustered, 5_000_000) {
		t.Fatal("original did not complete")
	}
	if f := stats.SizeFactor(); f <= 1 || f > 1.5 {
		t.Errorf("size factor %.3f out of the expected (1, 1.5] window", f)
	}
}

// TestClusterImprovesPrediction scores the transform the way krallbench
// does: the clustered program must mispredict strictly less than the
// Annotate-only baseline on the skewed dispatch workload.
func TestClusterImprovesPrediction(t *testing.T) {
	prog := compileSrc(t, dispatchSrc)
	targets := profileTargets(t, prog)

	baseline := ir.CloneProgram(prog)
	indirect.Annotate(baseline, targets)
	bo, err := runInterp(t, baseline, 5_000_000)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	clustered := ir.CloneProgram(prog)
	indirect.Annotate(clustered, targets)
	if _, _, err := indirect.Cluster(clustered, targets, indirect.Options{}); err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	co, err := runInterp(t, clustered, 20_000_000)
	if err != nil {
		t.Fatalf("clustered run: %v", err)
	}

	if bo.predicted == 0 || co.predicted == 0 {
		t.Fatalf("no predicted events: baseline=%d clustered=%d", bo.predicted, co.predicted)
	}
	br := float64(bo.mispredicted) / float64(bo.predicted)
	cr := float64(co.mispredicted) / float64(co.predicted)
	if cr >= br {
		t.Errorf("clustering did not improve misprediction: baseline %.4f, clustered %.4f", br, cr)
	}
}

// TestClusterSiteNumberingStable pins the walk-order claim: renumbering a
// clustered program must not move any site.
func TestClusterSiteNumberingStable(t *testing.T) {
	prog := compileSrc(t, dispatchSrc)
	clustered, _, _ := cluster(t, prog, indirect.Options{})
	type key struct{ fi, bi int }
	before := map[key]int32{}
	for fi, f := range clustered.Funcs {
		for bi, b := range f.Blocks {
			before[key{fi, bi}] = b.Term.Site
		}
	}
	clustered.NumberBranches(true)
	for fi, f := range clustered.Funcs {
		for bi, b := range f.Blocks {
			if b.Term.Site != before[key{fi, bi}] {
				t.Fatalf("func %d block %d site moved: %d -> %d", fi, bi, before[key{fi, bi}], b.Term.Site)
			}
		}
	}
}

// TestClusterColdSiteUntouched: a site below MinCount must not cluster.
func TestClusterColdSiteUntouched(t *testing.T) {
	prog := compileSrc(t, dispatchSrc)
	_, stats, prov := cluster(t, prog, indirect.Options{MinCount: 1 << 40})
	if stats.Clustered != 0 || len(prov.Sites) != 0 || stats.BlocksAdded != 0 {
		t.Fatalf("cold site clustered anyway: %+v", stats)
	}
}

// TestClusterNilProfile: no profile, no transform.
func TestClusterNilProfile(t *testing.T) {
	prog := compileSrc(t, dispatchSrc)
	stats, prov, err := indirect.Cluster(prog, nil, indirect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Clustered != 0 || len(prov.Sites) != 0 || stats.SizeFactor() != 1 {
		t.Fatalf("nil profile clustered: %+v", stats)
	}
}

func TestAnnotate(t *testing.T) {
	prog := compileSrc(t, dispatchSrc)
	targets := profileTargets(t, prog)
	indirect.Annotate(prog, targets)
	found := false
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if b.Term.Op != ir.TermSwitch {
				continue
			}
			found = true
			if b.Term.Pred != ir.PredTaken || b.Term.PredIdx != 0 {
				t.Errorf("switch site %d predicted %v/%d, want taken/0 (the dominant outcome)",
					b.Term.Site, b.Term.Pred, b.Term.PredIdx)
			}
		}
	}
	if !found {
		t.Fatal("no switch found")
	}
}

// TestVerifyCatchesTampering mutates a clustered program in ways that keep
// it a valid IR program but break the transform contract; Verify must
// reject every one.
func TestVerifyCatchesTampering(t *testing.T) {
	build := func(t *testing.T) (*ir.Program, *ir.Program, *indirect.Provenance) {
		prog := compileSrc(t, dispatchSrc)
		targets := profileTargets(t, prog)
		// Annotate first so the clustered residual carries a prediction
		// (the drop-residual-prediction case needs one to drop).
		indirect.Annotate(prog, targets)
		snap := ir.CloneProgram(prog)
		work := ir.CloneProgram(prog)
		_, prov, err := indirect.Cluster(work, targets, indirect.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if errs := indirect.Verify(snap, work, prov); len(errs) > 0 {
			t.Fatalf("clean clustering failed Verify: %v", errs[0])
		}
		return snap, work, prov
	}
	tamper := []struct {
		name string
		mut  func(rec *indirect.SiteRecord)
	}{
		{"flip-test-prediction", func(rec *indirect.SiteRecord) {
			rec.Tests[0].Block.Term.Pred = ir.PredNotTaken
		}},
		{"wrong-test-outcome", func(rec *indirect.SiteRecord) {
			rec.Tests[0].Block.Term.SwOutcome++
		}},
		{"wrong-test-constant", func(rec *indirect.SiteRecord) {
			is := rec.Tests[0].Block.Instrs
			is[len(is)-2].Imm++
		}},
		{"retarget-taken-arm", func(rec *indirect.SiteRecord) {
			t0 := &rec.Tests[0].Block.Term
			t0.Then = rec.Residual.Term.Else
		}},
		{"drop-residual-prediction", func(rec *indirect.SiteRecord) {
			rec.Residual.Term.Pred = ir.PredNone
			rec.Residual.Term.PredIdx = -1
		}},
		{"shrink-residual", func(rec *indirect.SiteRecord) {
			rt := &rec.Residual.Term
			rt.Targets = rt.Targets[:len(rt.Targets)-1]
		}},
	}
	for _, tc := range tamper {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			snap, work, prov := build(t)
			tc.mut(&prov.Sites[0])
			if errs := indirect.Verify(snap, work, prov); len(errs) == 0 {
				t.Fatal("tampered program passed Verify")
			}
		})
	}
}

// FuzzIndirectEquivalence is the indirect family's differential fuzzer:
// clustering any BL program the frontend accepts, with any threshold
// configuration, must leave complete-run observables — return value,
// checksum, trace bytes — untouched on both backends, and the provenance
// must satisfy the structural verifier. Seeds are the dispatch workload
// and generated switch-heavy programs (plus the committed corpus under
// testdata/fuzz).
func FuzzIndirectEquivalence(f *testing.F) {
	f.Add(dispatchSrc, uint64(2), uint64(25))
	for seed := int64(1); seed <= 6; seed++ {
		f.Add(progen.Generate(seed, progen.DefaultConfig()), uint64(seed%4), uint64(5+10*seed%50))
	}
	f.Fuzz(func(t *testing.T, src string, maxTests, minSharePct uint64) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		prog, err := lang.Compile(src)
		if err != nil {
			t.Skip() // invalid program: nothing to cluster
		}
		prog.NumberBranches(true)
		opts := indirect.Options{
			MaxTests: 1 + int(maxTests%4),
			MinShare: float64(1+minSharePct%99) / 100,
			MinCount: 1,
		}
		work, _, _ := cluster(t, prog, opts)
		diffCluster(t, prog, work, 2_000_000)
	})
}

// TestClusterProgen drives the transform over generated programs with
// permissive thresholds so many generated switches cluster, checking the
// dynamic contract and the structural verifier on each.
func TestClusterProgen(t *testing.T) {
	opts := indirect.Options{MaxTests: 3, MinShare: 0.05, MinCount: 1}
	clustered := 0
	for seed := int64(1); seed <= 40; seed++ {
		prog := compileSrc(t, progen.Generate(seed, progen.DefaultConfig()))
		work, stats, _ := cluster(t, prog, opts)
		clustered += stats.Clustered
		diffCluster(t, prog, work, 5_000_000)
	}
	if clustered == 0 {
		t.Fatal("no generated switch clustered across 40 seeds; thresholds or generator drifted")
	}
}
