// Package indirect implements the second replication family: case
// clustering of hot switch dispatches. Where the branch family replicates
// code so each copy of a two-way branch carries a sharper static
// prediction, the indirect family rewrites an N-way dispatch whose profiled
// target distribution is skewed into a fast path of predicted equality
// tests — one per hot case — followed by a residual switch that serves the
// cold outcomes and predicts the hottest of them.
//
// The transform preserves the trace format's observable behaviour exactly:
// a taken clustering test emits the same (site, outcome) switch event the
// original dispatch would have, and the residual switch keeps the original
// Site/Orig identity, so clustered programs produce byte-identical traces
// on both execution backends (pinned by the differential suites and
// FuzzIndirectEquivalence). Site numbering is also stable: the inserted
// blocks sit directly after the original block in walk order and the
// residual switch occupies the original's site position, so renumbering a
// clustered program is a no-op.
package indirect

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/trace"
)

// Options bounds the clustering transform.
type Options struct {
	// MaxTests caps the number of equality tests per clustered switch
	// (default 2). The chain covers at most the MaxTests hottest cases.
	MaxTests int
	// MinShare is the minimum fraction of a site's dispatches an outcome
	// must hold to earn an equality test (default 0.25).
	MinShare float64
	// MinCount is the minimum number of profiled dispatches a site needs
	// before it is considered hot at all (default 16).
	MinCount uint64
}

func (o *Options) setDefaults() {
	if o.MaxTests == 0 {
		o.MaxTests = 2
	}
	if o.MinShare == 0 {
		o.MinShare = 0.25
	}
	if o.MinCount == 0 {
		o.MinCount = 16
	}
}

// Stats reports what the transform did.
type Stats struct {
	// Switches is the number of switch dispatch sites inspected.
	Switches int
	// Clustered is the number of sites rewritten.
	Clustered int
	// Tests is the total number of equality tests inserted.
	Tests int
	// BlocksAdded counts the new chain and residual blocks.
	BlocksAdded int
	// InstrsBefore/InstrsAfter measure code growth.
	InstrsBefore, InstrsAfter int
}

// SizeFactor is the measured code growth.
func (s *Stats) SizeFactor() float64 {
	if s.InstrsBefore == 0 {
		return 1
	}
	return float64(s.InstrsAfter) / float64(s.InstrsBefore)
}

// TestRecord describes one equality test of a clustered site's chain.
type TestRecord struct {
	// Outcome is the case outcome the test covers.
	Outcome int32
	// Block holds the test; the first test lives in the original switch
	// block, later ones in inserted blocks.
	Block *ir.Block
	// Pred is the static prediction the transform assigned to the test.
	Pred ir.Prediction
}

// SiteRecord is the provenance of one clustered switch site, enough for
// Verify to re-derive the transform and for diagnostics to locate it.
type SiteRecord struct {
	// Site is the switch's prediction site ID.
	Site int32
	// FuncID is the index of the containing function.
	FuncID int
	// Tests is the fast-path chain in test order.
	Tests []TestRecord
	// Residual holds the residual switch terminator.
	Residual *ir.Block
	// PredIdx is the residual switch's predicted outcome, or -1 when no
	// residual outcome was ever profiled (the residual stays unpredicted).
	PredIdx int32
}

// Provenance records every clustered site, in transform order.
type Provenance struct {
	Sites []SiteRecord
}

// Record returns the provenance entry for a site, or nil.
func (p *Provenance) Record(site int32) *SiteRecord {
	for i := range p.Sites {
		if p.Sites[i].Site == site {
			return &p.Sites[i]
		}
	}
	return nil
}

// Annotate sets every switch dispatch's static prediction to its hottest
// profiled outcome — the indirect analog of replicate.Annotate, and the
// baseline the clustering transform is scored against. Sites with no
// profiled dispatches stay unpredicted. Conditional branches (including
// clustering tests) are untouched.
func Annotate(prog *ir.Program, targets *trace.TargetCounts) {
	if targets == nil {
		return
	}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			if b.Term.Op != ir.TermSwitch {
				continue
			}
			rank := targets.Rank(b.Term.Orig)
			if len(rank) == 0 {
				continue
			}
			b.Term.Pred = ir.PredTaken
			b.Term.PredIdx = rank[0].Outcome
		}
	}
}

// Cluster applies case clustering to every hot switch of prog, guided by
// the profiled per-site target distributions (indexed by Orig site ID). It
// mutates prog in place and returns the transform statistics and the
// provenance Verify consumes. The program must have numbered sites.
func Cluster(prog *ir.Program, targets *trace.TargetCounts, opts Options) (*Stats, *Provenance, error) {
	opts.setDefaults()
	st := &Stats{InstrsBefore: prog.NumInstrs()}
	prov := &Provenance{}
	if targets == nil {
		st.InstrsAfter = st.InstrsBefore
		return st, prov, nil
	}
	for fi, f := range prog.Funcs {
		// Snapshot the switch blocks first: clustering splices new blocks
		// into f.Blocks.
		var switches []*ir.Block
		for _, b := range f.Blocks {
			if b.Term.Op == ir.TermSwitch {
				switches = append(switches, b)
			}
		}
		changed := false
		for _, b := range switches {
			st.Switches++
			rec, ok := clusterSite(f, b, targets, opts, st)
			if !ok {
				continue
			}
			rec.FuncID = fi
			prov.Sites = append(prov.Sites, rec)
			st.Clustered++
			changed = true
		}
		if changed {
			f.Renumber()
		}
	}
	st.InstrsAfter = prog.NumInstrs()
	if st.Clustered > 0 {
		if err := prog.Validate(); err != nil {
			return nil, nil, fmt.Errorf("indirect: clustered program is invalid: %w", err)
		}
	}
	return st, prov, nil
}

// clusterSite rewrites one switch block when its profile warrants it.
func clusterSite(f *ir.Func, b *ir.Block, targets *trace.TargetCounts, opts Options, st *Stats) (SiteRecord, bool) {
	sw := b.Term // the original switch terminator, copied
	total := targets.Total(sw.Orig)
	if total < opts.MinCount {
		return SiteRecord{}, false
	}
	rank := targets.Rank(sw.Orig)
	// Pick the hottest equality-testable outcomes: case outcomes only (the
	// default arm has no single tag value to test). Rank is sorted by
	// descending count, so the first outcome below the share floor ends
	// the scan.
	var chosen []trace.RankedOutcome
	for _, r := range rank {
		if len(chosen) >= opts.MaxTests {
			break
		}
		if float64(r.Count) < opts.MinShare*float64(total) {
			break
		}
		if int(r.Outcome) >= len(sw.Targets) {
			continue // default outcome: not clusterable
		}
		chosen = append(chosen, r)
	}
	if len(chosen) == 0 {
		return SiteRecord{}, false
	}

	// When the original dispatch carried a target annotation (Annotate ran
	// before clustering), retarget the residual's prediction to the hottest
	// outcome the chain does not cover — the annotated target itself is now
	// caught by the chain and would always miss. An unannotated dispatch
	// stays unannotated: the transform never invents a prediction policy.
	residualPred := int32(-1)
	if sw.Pred != ir.PredNone {
		for _, r := range rank {
			covered := false
			for _, c := range chosen {
				if c.Outcome == r.Outcome {
					covered = true
					break
				}
			}
			if !covered {
				residualPred = r.Outcome
				break
			}
		}
	}

	// Two fresh registers shared by every test in the chain: the case
	// constant and the equality result. The switch condition register is
	// only read, never written, so the chain cannot clobber it.
	rc, rt := f.NewReg(), f.NewReg()

	// Build the chain: the original block keeps its body and gets the
	// first test; each later test and the residual switch live in new
	// blocks spliced in directly after it (walk order preserved, so site
	// renumbering is a no-op).
	newBlocks := make([]*ir.Block, 0, len(chosen))
	for i := 1; i < len(chosen); i++ {
		newBlocks = append(newBlocks, &ir.Block{Name: fmt.Sprintf("swtest%d", i)})
	}
	residual := &ir.Block{Name: "swresid"}
	newBlocks = append(newBlocks, residual)

	rec := SiteRecord{Site: sw.Site, Residual: residual, PredIdx: residualPred}
	remaining := total
	cur := b
	for i, c := range chosen {
		next := residual
		if i+1 < len(chosen) {
			next = newBlocks[i]
		}
		// Predict the test from its conditional profile: it runs only
		// when every earlier test failed, so its taken count is c.Count
		// out of the dispatches still unresolved here.
		pred := ir.PredNotTaken
		if 2*c.Count > remaining {
			pred = ir.PredTaken
		}
		cur.Instrs = append(cur.Instrs,
			ir.Instr{Op: ir.OpConstI, Dst: rc, Imm: int64(c.Outcome)},
			ir.Instr{Op: ir.OpEqI, Dst: rt, A: sw.Cond, B: rc},
		)
		cur.Term = ir.Term{
			Op: ir.TermBr, Cond: rt,
			Then: sw.Targets[c.Outcome], Else: next,
			Site: sw.Site, Orig: sw.Orig,
			Pred:   pred,
			SwTest: true, SwOutcome: c.Outcome,
		}
		rec.Tests = append(rec.Tests, TestRecord{Outcome: c.Outcome, Block: cur, Pred: pred})
		remaining -= c.Count
		cur = next
		st.Tests++
	}
	residual.Term = sw
	if residualPred >= 0 {
		residual.Term.Pred = ir.PredTaken
		residual.Term.PredIdx = residualPred
	} else {
		residual.Term.Pred = ir.PredNone
		residual.Term.PredIdx = -1
	}

	// Splice the new blocks in after b.
	pos := -1
	for i, bb := range f.Blocks {
		if bb == b {
			pos = i
			break
		}
	}
	blocks := make([]*ir.Block, 0, len(f.Blocks)+len(newBlocks))
	blocks = append(blocks, f.Blocks[:pos+1]...)
	blocks = append(blocks, newBlocks...)
	blocks = append(blocks, f.Blocks[pos+1:]...)
	f.Blocks = blocks
	st.BlocksAdded += len(newBlocks)
	return rec, true
}
