package indirect

import (
	"fmt"

	"repro/internal/ir"
)

// Verify is the translation-validation half of the clustering transform: it
// checks a clustered program against its pre-transform snapshot using the
// recorded provenance, in the style of the branch family's equivalence pass.
// The provenance induces a block correspondence — Cluster only inserts
// blocks, so removing the inserted chain/residual blocks from the clustered
// function must leave the snapshot's block list — and on top of it Verify
// checks, per clustered site, that the fast-path chain is exactly the
// transform's output shape:
//
//   - each test block appends one ConstI/EqI pair over the switch condition
//     and branches with SwTest set, emitting the tested outcome;
//   - test outcomes are distinct in-range case outcomes, chain-linked to
//     the residual switch;
//   - the residual switch is the original dispatch (same condition, case
//     targets, default, and site identity) with the recorded residual
//     prediction;
//   - every block outside the chains is byte-identical to its snapshot
//     counterpart, successors resolved through the correspondence.
//
// Together with the byte-identical trace contract (checked dynamically by
// the differential suites) this pins the transform end to end. The snapshot
// should be the program state immediately before Cluster ran — annotations
// applied earlier are compared too.
func Verify(orig, prog *ir.Program, prov *Provenance) []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if len(prog.Funcs) != len(orig.Funcs) {
		fail("function count changed: %d, originally %d", len(prog.Funcs), len(orig.Funcs))
		return errs
	}
	if len(prog.Globals) != len(orig.Globals) {
		fail("global count changed: %d, originally %d", len(prog.Globals), len(orig.Globals))
	}
	recsByFunc := make(map[int][]*SiteRecord)
	for i := range prov.Sites {
		r := &prov.Sites[i]
		recsByFunc[r.FuncID] = append(recsByFunc[r.FuncID], r)
	}
	for fi := range prog.Funcs {
		verifyFunc(prog.Funcs[fi], orig.Funcs[fi], recsByFunc[fi], fail)
	}
	return errs
}

func verifyFunc(f, of *ir.Func, recs []*SiteRecord, fail func(string, ...any)) {
	if f.Name != of.Name || f.NParams != of.NParams || f.RetType != of.RetType {
		fail("%s: signature changed", f.Name)
		return
	}
	// The inserted blocks, and which chain head owns them.
	inserted := map[*ir.Block]bool{}
	for _, r := range recs {
		for _, t := range r.Tests[1:] {
			inserted[t.Block] = true
		}
		inserted[r.Residual] = true
	}
	// Block correspondence: clustered blocks minus insertions, in order.
	m := map[*ir.Block]*ir.Block{}
	oi := 0
	for _, b := range f.Blocks {
		if inserted[b] {
			continue
		}
		if oi >= len(of.Blocks) {
			fail("%s: %d blocks outside the chains, snapshot has %d", f.Name, oi+1, len(of.Blocks))
			return
		}
		m[b] = of.Blocks[oi]
		oi++
	}
	if oi != len(of.Blocks) {
		fail("%s: %d blocks outside the chains, snapshot has %d", f.Name, oi, len(of.Blocks))
		return
	}
	if m[f.Entry] != of.Entry {
		fail("%s: entry does not correspond to the snapshot entry", f.Name)
	}
	heads := map[*ir.Block]*SiteRecord{}
	for _, r := range recs {
		if len(r.Tests) == 0 {
			fail("%s: site %d provenance has no tests", f.Name, r.Site)
			return
		}
		heads[r.Tests[0].Block] = r
	}
	// mapped resolves a successor through the correspondence; successors of
	// untransformed blocks must not point into inserted chain internals.
	mapped := func(b *ir.Block, s *ir.Block, slot string) *ir.Block {
		if s == nil {
			return nil
		}
		os, ok := m[s]
		if !ok {
			fail("%s/%s: %s successor %s is an inserted chain block", f.Name, b, slot, s)
			return nil
		}
		return os
	}
	for _, b := range f.Blocks {
		if inserted[b] {
			continue // checked with its owning chain
		}
		ob := m[b]
		if r, isHead := heads[b]; isHead {
			verifyChain(f, r, ob, m, fail)
			continue
		}
		if !sameInstrs(b.Instrs, ob.Instrs) {
			fail("%s/%s: instructions differ from snapshot block %s", f.Name, b, ob)
			continue
		}
		t, ot := &b.Term, &ob.Term
		if t.Op != ot.Op || t.Cond != ot.Cond || t.A != ot.A || t.HasVal != ot.HasVal ||
			t.Site != ot.Site || t.Orig != ot.Orig || t.Pred != ot.Pred ||
			t.PredIdx != ot.PredIdx || t.SwTest != ot.SwTest || t.SwOutcome != ot.SwOutcome {
			fail("%s/%s: terminator differs from snapshot block %s", f.Name, b, ob)
			continue
		}
		if mapped(b, t.Then, "then") != ot.Then || mapped(b, t.Else, "else") != ot.Else {
			fail("%s/%s: successors differ from snapshot block %s", f.Name, b, ob)
		}
		if len(t.Targets) != len(ot.Targets) {
			fail("%s/%s: switch arity differs from snapshot block %s", f.Name, b, ob)
			continue
		}
		for i := range t.Targets {
			if mapped(b, t.Targets[i], "case") != ot.Targets[i] {
				fail("%s/%s: case %d target differs from snapshot block %s", f.Name, b, i, ob)
			}
		}
	}
	// Walk-order site stability: each chain's inserted blocks must directly
	// follow its head, residual last.
	pos := map[*ir.Block]int{}
	for i, b := range f.Blocks {
		pos[b] = i
	}
	for _, r := range recs {
		want := pos[r.Tests[0].Block]
		for _, t := range r.Tests[1:] {
			want++
			if pos[t.Block] != want {
				fail("%s: site %d chain block %s out of walk position", f.Name, r.Site, t.Block)
			}
		}
		if pos[r.Residual] != want+1 {
			fail("%s: site %d residual %s out of walk position", f.Name, r.Site, r.Residual)
		}
	}
}

// verifyChain checks one clustered site against its snapshot switch block.
func verifyChain(f *ir.Func, r *SiteRecord, ob *ir.Block, m map[*ir.Block]*ir.Block, fail func(string, ...any)) {
	osw := &ob.Term
	if osw.Op != ir.TermSwitch {
		fail("%s: site %d snapshot block %s is not a switch", f.Name, r.Site, ob)
		return
	}
	rt := r.Residual.Term
	if rt.Op != ir.TermSwitch {
		fail("%s: site %d residual %s does not end in a switch", f.Name, r.Site, r.Residual)
		return
	}
	if len(r.Residual.Instrs) != 0 {
		fail("%s: site %d residual %s has a non-empty body", f.Name, r.Site, r.Residual)
	}
	if rt.Cond != osw.Cond || rt.Site != osw.Site || rt.Orig != osw.Orig || len(rt.Targets) != len(osw.Targets) {
		fail("%s: site %d residual switch differs from the original dispatch", f.Name, r.Site)
		return
	}
	for i := range rt.Targets {
		if m[rt.Targets[i]] != osw.Targets[i] {
			fail("%s: site %d residual case %d target differs from the original", f.Name, r.Site, i)
		}
	}
	if m[rt.Else] != osw.Else {
		fail("%s: site %d residual default target differs from the original", f.Name, r.Site)
	}
	if r.PredIdx >= 0 {
		if rt.Pred != ir.PredTaken || rt.PredIdx != r.PredIdx {
			fail("%s: site %d residual prediction %s/%d does not match the recorded %d",
				f.Name, r.Site, rt.Pred, rt.PredIdx, r.PredIdx)
		}
	} else if rt.Pred != ir.PredNone {
		fail("%s: site %d residual is predicted but no residual outcome was recorded", f.Name, r.Site)
	}

	seen := map[int32]bool{}
	for i, tr := range r.Tests {
		b := tr.Block
		if int(tr.Outcome) < 0 || int(tr.Outcome) >= len(osw.Targets) {
			fail("%s: site %d test %d outcome %d out of case range", f.Name, r.Site, i, tr.Outcome)
			return
		}
		if seen[tr.Outcome] {
			fail("%s: site %d tests outcome %d twice", f.Name, r.Site, tr.Outcome)
		}
		seen[tr.Outcome] = true
		// The test body: the head keeps the snapshot block's instructions,
		// later blocks are bare; both end with the ConstI/EqI pair.
		want := 2
		if i == 0 {
			want = len(ob.Instrs) + 2
		}
		if len(b.Instrs) != want {
			fail("%s: site %d test block %s has %d instructions, want %d", f.Name, r.Site, b, len(b.Instrs), want)
			return
		}
		if i == 0 && !sameInstrs(b.Instrs[:len(ob.Instrs)], ob.Instrs) {
			fail("%s: site %d head %s body differs from snapshot block %s", f.Name, r.Site, b, ob)
		}
		ci, ei := &b.Instrs[len(b.Instrs)-2], &b.Instrs[len(b.Instrs)-1]
		if ci.Op != ir.OpConstI || ci.Imm != int64(tr.Outcome) {
			fail("%s: site %d test %d does not load constant %d", f.Name, r.Site, i, tr.Outcome)
		}
		if ei.Op != ir.OpEqI || ei.A != osw.Cond || ei.B != ci.Dst {
			fail("%s: site %d test %d does not compare the dispatch condition", f.Name, r.Site, i)
		}
		t := &b.Term
		if t.Op != ir.TermBr || !t.SwTest || t.SwOutcome != tr.Outcome || t.Cond != ei.Dst {
			fail("%s: site %d test %d terminator is not a clustering test of outcome %d", f.Name, r.Site, i, tr.Outcome)
			continue
		}
		if t.Site != osw.Site || t.Orig != osw.Orig {
			fail("%s: site %d test %d does not keep the dispatch's site identity", f.Name, r.Site, i)
		}
		if t.Pred != tr.Pred {
			fail("%s: site %d test %d prediction %s does not match the recorded %s", f.Name, r.Site, i, t.Pred, tr.Pred)
		}
		if m[t.Then] != osw.Targets[tr.Outcome] {
			fail("%s: site %d test %d taken arm is not the original case target", f.Name, r.Site, i)
		}
		next := r.Residual
		if i+1 < len(r.Tests) {
			next = r.Tests[i+1].Block
		}
		if t.Else != next {
			fail("%s: site %d test %d does not chain to the next test/residual", f.Name, r.Site, i)
		}
	}
}

func sameInstrs(a, b []ir.Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.Op != y.Op || x.Dst != y.Dst || x.A != y.A || x.B != y.B || x.Imm != y.Imm {
			return false
		}
		if len(x.Args) != len(y.Args) {
			return false
		}
		for j := range x.Args {
			if x.Args[j] != y.Args[j] {
				return false
			}
		}
	}
	return true
}
