// Package interp executes IR programs deterministically. It is the
// substitute for the paper's instrumented MIPS binaries: a branch hook
// exposes every conditional branch outcome to the profiling and prediction
// machinery, and static prediction annotations left by the replicator are
// scored during execution.
package interp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/trace"
)

// ErrLimit is returned when an execution limit (steps, branches, or call
// depth) is reached. Harnesses that trace with a branch budget treat it as
// normal completion.
var ErrLimit = errors.New("interp: execution limit reached")

// ErrNoMain and ErrMainParams reject degenerate entry points. They are
// sentinels (wrapped with a backend prefix) so both execution backends
// report the same condition and differential tests can match by identity.
var (
	ErrNoMain     = errors.New("program has no main function")
	ErrMainParams = errors.New("main must take no parameters")
)

// RuntimeError describes a trap during execution (division by zero,
// out-of-bounds array access).
type RuntimeError struct {
	Func  string
	Block string
	Msg   string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("interp: %s in %s at %s", e.Msg, e.Func, e.Block)
}

// BranchFunc observes one executed conditional branch. The *ir.Term carries
// the site/orig identity and the static prediction annotation.
type BranchFunc func(t *ir.Term, taken bool)

// SwitchFunc observes one executed switch dispatch with its outcome index
// (len(t.Targets) is the default). Clustering test branches report through
// it too — on their taken edge only — so observers see exactly the event
// stream the trace records.
type SwitchFunc func(t *ir.Term, outcome int32)

// Machine executes one program. A Machine is not safe for concurrent use.
type Machine struct {
	// Hook, when non-nil, is invoked for every executed conditional branch.
	Hook BranchFunc
	// SwHook, when non-nil, is invoked for every executed switch dispatch
	// (and for every taken clustering test standing in for one).
	SwHook SwitchFunc
	// Rec, when non-nil, records every executed conditional branch into the
	// event slab — the record-once path of the trace-replay engine. Unlike
	// Hook it is a direct call on the concrete slab, so recording costs an
	// append rather than an interface dispatch per branch. Rec and Hook may
	// be set together; Rec observes the event first.
	Rec *trace.Slab
	// MaxSteps bounds executed instructions (0 = unlimited).
	MaxSteps uint64
	// MaxBranches bounds executed conditional branches (0 = unlimited).
	MaxBranches uint64
	// MaxDepth bounds the call stack; the default is 100000 frames.
	MaxDepth int
	// Ctx, when non-nil, is polled for cancellation during execution, so a
	// server whose client disconnected (or whose request deadline expired)
	// can stop a long run without pinning a worker. Polling happens every
	// CtxCheckEvery executed blocks; Run/Call return the context's error
	// (wrapped, so errors.Is(err, context.Canceled) holds).
	Ctx context.Context
	// CtxCheckEvery is the cancellation polling interval in executed basic
	// blocks (0 = the default of 4096). Smaller values cancel faster at a
	// slightly higher per-block cost.
	CtxCheckEvery uint32

	// Steps is the number of instructions executed (terminators included).
	Steps uint64
	// Branches is the number of conditional branches executed.
	Branches uint64
	// Predicted and Mispredicted score branches that carry a static
	// prediction annotation (ir.PredNone branches are not counted).
	Predicted    uint64
	Mispredicted uint64
	// Checksum accumulates every OpPrint value; workloads print a digest
	// so their computations stay observable.
	Checksum uint64
	// Prints counts OpPrint executions.
	Prints uint64

	prog    *ir.Program
	globals [][]int64
	pool    [][]int64
	// blockCounts[funcID][blockID] counts block executions when enabled.
	blockCounts [][]uint64
	// ctxLeft counts down executed blocks until the next Ctx poll.
	ctxLeft uint32
}

// defaultCtxCheckEvery is the cancellation polling interval when
// CtxCheckEvery is 0: cheap enough to be invisible (one counter decrement
// per block), frequent enough that cancellation lands within microseconds.
const defaultCtxCheckEvery = 4096

// EnableBlockCounts turns on per-block execution counting (used by the
// code-layout analyses). Call before Run; counting adds one increment per
// executed block.
func (m *Machine) EnableBlockCounts() {
	m.blockCounts = make([][]uint64, len(m.prog.Funcs))
	for i, f := range m.prog.Funcs {
		m.blockCounts[i] = make([]uint64, len(f.Blocks))
	}
}

// BlockCounts returns the per-function, per-block execution counts, or nil
// when counting was not enabled.
func (m *Machine) BlockCounts() [][]uint64 { return m.blockCounts }

// New creates a machine for prog with globals initialised. The program must
// be valid (ir.Program.Validate).
func New(prog *ir.Program) *Machine {
	m := &Machine{prog: prog, MaxDepth: 100000}
	m.Reset()
	return m
}

// Reset re-initialises globals and clears all counters, so the same machine
// can run the program again from scratch.
func (m *Machine) Reset() {
	m.globals = make([][]int64, len(m.prog.Globals))
	for i, g := range m.prog.Globals {
		buf := make([]int64, g.Len)
		copy(buf, g.Init)
		m.globals[i] = buf
	}
	m.Steps, m.Branches, m.Predicted, m.Mispredicted = 0, 0, 0, 0
	m.Checksum, m.Prints = 0, 0
	m.ctxLeft = 0
}

// SetGlobal overrides a scalar global before a run; the harness uses it to
// select workload sizes and random seeds.
func (m *Machine) SetGlobal(name string, v int64) error {
	g := m.prog.Global(name)
	if g == nil {
		return fmt.Errorf("interp: no global %q", name)
	}
	if g.Array {
		return fmt.Errorf("interp: global %q is an array", name)
	}
	m.globals[g.ID][0] = v
	return nil
}

// SetGlobalFloat overrides a float scalar global.
func (m *Machine) SetGlobalFloat(name string, v float64) error {
	return m.SetGlobal(name, int64(math.Float64bits(v)))
}

// GlobalValue reads a scalar global after a run.
func (m *Machine) GlobalValue(name string) (int64, error) {
	g := m.prog.Global(name)
	if g == nil {
		return 0, fmt.Errorf("interp: no global %q", name)
	}
	if g.Array {
		return 0, fmt.Errorf("interp: global %q is an array", name)
	}
	return m.globals[g.ID][0], nil
}

// Run executes func main with no arguments and returns its value.
func (m *Machine) Run() (int64, error) {
	f := m.prog.Func("main")
	if f == nil {
		return 0, fmt.Errorf("interp: %w", ErrNoMain)
	}
	if f.NParams != 0 {
		return 0, fmt.Errorf("interp: %w", ErrMainParams)
	}
	return m.Call(f)
}

// Call executes an arbitrary function with the given arguments.
func (m *Machine) Call(f *ir.Func, args ...int64) (int64, error) {
	if len(args) != f.NParams {
		return 0, fmt.Errorf("interp: %s expects %d args, got %d", f.Name, f.NParams, len(args))
	}
	frame := m.getFrame(f.NRegs)
	copy(frame, args)
	ret, err := m.exec(f, frame, 0)
	m.putFrame(frame)
	return ret, err
}

func (m *Machine) getFrame(n int) []int64 {
	if k := len(m.pool); k > 0 {
		f := m.pool[k-1]
		m.pool = m.pool[:k-1]
		if cap(f) >= n {
			f = f[:n]
			for i := range f {
				f[i] = 0
			}
			return f
		}
	}
	return make([]int64, n)
}

func (m *Machine) putFrame(f []int64) {
	if len(m.pool) < 256 {
		m.pool = append(m.pool, f)
	}
}

func trap(f *ir.Func, b *ir.Block, msg string) error {
	return &RuntimeError{Func: f.Name, Block: b.String(), Msg: msg}
}

func f64(bits int64) float64 { return math.Float64frombits(uint64(bits)) }
func fbits(v float64) int64  { return int64(math.Float64bits(v)) }
func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

func (m *Machine) exec(f *ir.Func, regs []int64, depth int) (int64, error) {
	if depth > m.MaxDepth {
		return 0, ErrLimit
	}
	funcs := m.prog.Funcs
	b := f.Entry
	for {
		if m.Ctx != nil {
			if m.ctxLeft == 0 {
				if err := m.Ctx.Err(); err != nil {
					return 0, fmt.Errorf("interp: run cancelled: %w", err)
				}
				if m.ctxLeft = m.CtxCheckEvery; m.ctxLeft == 0 {
					m.ctxLeft = defaultCtxCheckEvery
				}
			}
			m.ctxLeft--
		}
		if m.blockCounts != nil {
			m.blockCounts[f.ID][b.ID]++
		}
		instrs := b.Instrs
		for i := range instrs {
			in := &instrs[i]
			switch in.Op {
			case ir.OpNop:
			case ir.OpConstI, ir.OpConstF:
				regs[in.Dst] = in.Imm
			case ir.OpMov:
				regs[in.Dst] = regs[in.A]
			case ir.OpAddI:
				regs[in.Dst] = regs[in.A] + regs[in.B]
			case ir.OpSubI:
				regs[in.Dst] = regs[in.A] - regs[in.B]
			case ir.OpMulI:
				regs[in.Dst] = regs[in.A] * regs[in.B]
			case ir.OpDivI:
				d := regs[in.B]
				if d == 0 {
					return 0, trap(f, b, "integer division by zero")
				}
				if d == -1 && regs[in.A] == math.MinInt64 {
					// Two's-complement wrap, like the hardware the paper
					// targets (Go would panic).
					regs[in.Dst] = math.MinInt64
				} else {
					regs[in.Dst] = regs[in.A] / d
				}
			case ir.OpModI:
				d := regs[in.B]
				if d == 0 {
					return 0, trap(f, b, "integer modulo by zero")
				}
				if d == -1 {
					regs[in.Dst] = 0
				} else {
					regs[in.Dst] = regs[in.A] % d
				}
			case ir.OpAndI:
				regs[in.Dst] = regs[in.A] & regs[in.B]
			case ir.OpOrI:
				regs[in.Dst] = regs[in.A] | regs[in.B]
			case ir.OpXorI:
				regs[in.Dst] = regs[in.A] ^ regs[in.B]
			case ir.OpShlI:
				regs[in.Dst] = regs[in.A] << (uint64(regs[in.B]) & 63)
			case ir.OpShrI:
				regs[in.Dst] = regs[in.A] >> (uint64(regs[in.B]) & 63)
			case ir.OpNegI:
				regs[in.Dst] = -regs[in.A]
			case ir.OpNotI:
				regs[in.Dst] = b2i(regs[in.A] == 0)
			case ir.OpAddF:
				regs[in.Dst] = fbits(f64(regs[in.A]) + f64(regs[in.B]))
			case ir.OpSubF:
				regs[in.Dst] = fbits(f64(regs[in.A]) - f64(regs[in.B]))
			case ir.OpMulF:
				regs[in.Dst] = fbits(f64(regs[in.A]) * f64(regs[in.B]))
			case ir.OpDivF:
				regs[in.Dst] = fbits(f64(regs[in.A]) / f64(regs[in.B]))
			case ir.OpNegF:
				regs[in.Dst] = fbits(-f64(regs[in.A]))
			case ir.OpEqI:
				regs[in.Dst] = b2i(regs[in.A] == regs[in.B])
			case ir.OpNeI:
				regs[in.Dst] = b2i(regs[in.A] != regs[in.B])
			case ir.OpLtI:
				regs[in.Dst] = b2i(regs[in.A] < regs[in.B])
			case ir.OpLeI:
				regs[in.Dst] = b2i(regs[in.A] <= regs[in.B])
			case ir.OpGtI:
				regs[in.Dst] = b2i(regs[in.A] > regs[in.B])
			case ir.OpGeI:
				regs[in.Dst] = b2i(regs[in.A] >= regs[in.B])
			case ir.OpEqF:
				regs[in.Dst] = b2i(f64(regs[in.A]) == f64(regs[in.B]))
			case ir.OpNeF:
				regs[in.Dst] = b2i(f64(regs[in.A]) != f64(regs[in.B]))
			case ir.OpLtF:
				regs[in.Dst] = b2i(f64(regs[in.A]) < f64(regs[in.B]))
			case ir.OpLeF:
				regs[in.Dst] = b2i(f64(regs[in.A]) <= f64(regs[in.B]))
			case ir.OpGtF:
				regs[in.Dst] = b2i(f64(regs[in.A]) > f64(regs[in.B]))
			case ir.OpGeF:
				regs[in.Dst] = b2i(f64(regs[in.A]) >= f64(regs[in.B]))
			case ir.OpItoF:
				regs[in.Dst] = fbits(float64(regs[in.A]))
			case ir.OpFtoI:
				v := f64(regs[in.A])
				if math.IsNaN(v) || v > math.MaxInt64 || v < math.MinInt64 {
					return 0, trap(f, b, "float to int conversion out of range")
				}
				regs[in.Dst] = int64(v)
			case ir.OpSqrtF:
				regs[in.Dst] = fbits(math.Sqrt(f64(regs[in.A])))
			case ir.OpAbsI:
				v := regs[in.A]
				if v < 0 {
					v = -v
				}
				regs[in.Dst] = v
			case ir.OpAbsF:
				regs[in.Dst] = fbits(math.Abs(f64(regs[in.A])))
			case ir.OpMinI:
				regs[in.Dst] = min64(regs[in.A], regs[in.B])
			case ir.OpMaxI:
				regs[in.Dst] = max64(regs[in.A], regs[in.B])
			case ir.OpMinF:
				regs[in.Dst] = fbits(math.Min(f64(regs[in.A]), f64(regs[in.B])))
			case ir.OpMaxF:
				regs[in.Dst] = fbits(math.Max(f64(regs[in.A]), f64(regs[in.B])))
			case ir.OpLoadG:
				regs[in.Dst] = m.globals[in.Imm][0]
			case ir.OpStoreG:
				m.globals[in.Imm][0] = regs[in.A]
			case ir.OpLoadElem:
				arr := m.globals[in.Imm]
				idx := regs[in.A]
				if idx < 0 || idx >= int64(len(arr)) {
					return 0, trap(f, b, fmt.Sprintf("index %d out of range [0,%d) in %s",
						idx, len(arr), m.prog.Globals[in.Imm].Name))
				}
				regs[in.Dst] = arr[idx]
			case ir.OpStoreElem:
				arr := m.globals[in.Imm]
				idx := regs[in.A]
				if idx < 0 || idx >= int64(len(arr)) {
					return 0, trap(f, b, fmt.Sprintf("index %d out of range [0,%d) in %s",
						idx, len(arr), m.prog.Globals[in.Imm].Name))
				}
				arr[idx] = regs[in.B]
			case ir.OpCall:
				callee := funcs[in.Imm]
				frame := m.getFrame(callee.NRegs)
				for ai, ar := range in.Args {
					frame[ai] = regs[ar]
				}
				ret, err := m.exec(callee, frame, depth+1)
				m.putFrame(frame)
				if err != nil {
					return 0, err
				}
				if in.Dst != ir.NoReg {
					regs[in.Dst] = ret
				}
			case ir.OpPrint:
				m.Checksum = m.Checksum*1099511628211 + uint64(regs[in.A])
				m.Prints++
			default:
				return 0, trap(f, b, "invalid opcode "+in.Op.String())
			}
		}
		m.Steps += uint64(len(instrs)) + 1
		if m.MaxSteps != 0 && m.Steps >= m.MaxSteps {
			return 0, ErrLimit
		}
		switch b.Term.Op {
		case ir.TermJmp:
			b = b.Term.Then
		case ir.TermBr:
			t := &b.Term
			taken := regs[t.Cond] != 0
			m.Branches++
			if t.Pred != ir.PredNone {
				m.Predicted++
				if (t.Pred == ir.PredTaken) != taken {
					m.Mispredicted++
				}
			}
			if t.SwTest {
				// A clustering test is trace-invisible except that its taken
				// edge emits the governed switch's event, keeping clustered
				// traces byte-identical to their originals.
				if taken {
					if m.Rec != nil {
						m.Rec.RecordSwitch(t.Site, t.SwOutcome)
					}
					if m.SwHook != nil {
						m.SwHook(t, t.SwOutcome)
					}
				}
			} else {
				if m.Rec != nil {
					m.Rec.Record(t.Site, taken)
				}
				if m.Hook != nil {
					m.Hook(t, taken)
				}
			}
			if m.MaxBranches != 0 && m.Branches >= m.MaxBranches {
				return 0, ErrLimit
			}
			if taken {
				b = t.Then
			} else {
				b = t.Else
			}
		case ir.TermSwitch:
			t := &b.Term
			v := regs[t.Cond]
			outcome := int32(len(t.Targets))
			if v >= 0 && v < int64(len(t.Targets)) {
				outcome = int32(v)
			}
			m.Branches++
			if t.Pred != ir.PredNone {
				m.Predicted++
				if t.PredIdx != outcome {
					m.Mispredicted++
				}
			}
			if m.Rec != nil {
				m.Rec.RecordSwitch(t.Site, outcome)
			}
			if m.SwHook != nil {
				m.SwHook(t, outcome)
			}
			if m.MaxBranches != 0 && m.Branches >= m.MaxBranches {
				return 0, ErrLimit
			}
			if int(outcome) < len(t.Targets) {
				b = t.Targets[outcome]
			} else {
				b = t.Else
			}
		case ir.TermRet:
			if b.Term.HasVal {
				return regs[b.Term.A], nil
			}
			return 0, nil
		default:
			return 0, trap(f, b, "missing terminator")
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
