package interp

import (
	"math"
	"testing"

	"repro/internal/ir"
)

// evalBin builds and runs "return op(a, b)" with raw bit inputs.
func evalBin(t *testing.T, op ir.Op, a, b int64) int64 {
	t.Helper()
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", NParams: 0, NRegs: 2, RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	bd := ir.NewBuilder(f)
	ra, rb := ir.Reg(0), ir.Reg(1)
	f.Entry.Instrs = append(f.Entry.Instrs,
		ir.Instr{Op: ir.OpConstI, Dst: ra, Imm: a},
		ir.Instr{Op: ir.OpConstI, Dst: rb, Imm: b},
	)
	var res ir.Reg
	if op.NumSrc() == 2 {
		res = bd.Binary(op, ra, rb)
	} else {
		res = bd.Unary(op, ra)
	}
	bd.RetVal(res)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	v, err := New(p).Run()
	if err != nil {
		t.Fatalf("%v: %v", op, err)
	}
	return v
}

func fb(f float64) int64 { return int64(math.Float64bits(f)) }
func bf(b int64) float64 { return math.Float64frombits(uint64(b)) }
func bi(cond bool) int64 {
	if cond {
		return 1
	}
	return 0
}

func TestFullOpMatrix(t *testing.T) {
	cases := []struct {
		name string
		op   ir.Op
		a, b int64
		want int64
	}{
		{"mov", ir.OpMov, 42, 0, 42},
		{"negI", ir.OpNegI, 7, 0, -7},
		{"notI0", ir.OpNotI, 0, 0, 1},
		{"notI1", ir.OpNotI, 5, 0, 0},
		{"addF", ir.OpAddF, fb(1.5), fb(2.25), fb(3.75)},
		{"subF", ir.OpSubF, fb(5), fb(1.5), fb(3.5)},
		{"mulF", ir.OpMulF, fb(3), fb(0.5), fb(1.5)},
		{"divF", ir.OpDivF, fb(1), fb(4), fb(0.25)},
		{"divFzero", ir.OpDivF, fb(1), fb(0), fb(math.Inf(1))},
		{"negF", ir.OpNegF, fb(2.5), 0, fb(-2.5)},
		{"eqI", ir.OpEqI, 3, 3, 1},
		{"neI", ir.OpNeI, 3, 3, 0},
		{"ltI", ir.OpLtI, -1, 0, 1},
		{"leI", ir.OpLeI, 0, 0, 1},
		{"gtI", ir.OpGtI, 1, 2, 0},
		{"geI", ir.OpGeI, 2, 2, 1},
		{"eqF", ir.OpEqF, fb(1.5), fb(1.5), 1},
		{"neF", ir.OpNeF, fb(1.5), fb(2.5), 1},
		{"ltF", ir.OpLtF, fb(-3), fb(1), 1},
		{"leF", ir.OpLeF, fb(1), fb(1), 1},
		{"gtF", ir.OpGtF, fb(2), fb(1), 1},
		{"geF", ir.OpGeF, fb(0.5), fb(1), 0},
		{"nanNe", ir.OpNeF, fb(math.NaN()), fb(math.NaN()), 1},
		{"nanEq", ir.OpEqF, fb(math.NaN()), fb(math.NaN()), 0},
		{"itof", ir.OpItoF, -9, 0, fb(-9)},
		{"ftoi", ir.OpFtoI, fb(3.99), 0, 3},
		{"ftoiNeg", ir.OpFtoI, fb(-3.99), 0, -3},
		{"sqrtF", ir.OpSqrtF, fb(9), 0, fb(3)},
		{"absI", ir.OpAbsI, -5, 0, 5},
		{"absIPos", ir.OpAbsI, 5, 0, 5},
		{"absF", ir.OpAbsF, fb(-1.25), 0, fb(1.25)},
		{"minF", ir.OpMinF, fb(1), fb(2), fb(1)},
		{"maxF", ir.OpMaxF, fb(1), fb(2), fb(2)},
		{"divWrap", ir.OpDivI, math.MinInt64, -1, math.MinInt64},
		{"modNegOne", ir.OpModI, math.MinInt64, -1, 0},
		{"modSign", ir.OpModI, -7, 3, -1},
		{"divTrunc", ir.OpDivI, -7, 2, -3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := evalBin(t, c.op, c.a, c.b)
			if got != c.want {
				t.Fatalf("%v(%d,%d) = %d (%v), want %d (%v)",
					c.op, c.a, c.b, got, bf(got), c.want, bf(c.want))
			}
		})
	}
	_ = bi
}

func TestNopAndStoreGlobal(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "g", Type: ir.TInt, Len: 1}); err != nil {
		t.Fatal(err)
	}
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	f.Entry.Instrs = append(f.Entry.Instrs, ir.Instr{Op: ir.OpNop})
	v := b.ConstI(11)
	b.StoreG(p.Global("g"), v)
	b.RetVal(b.LoadG(p.Global("g")))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := New(p)
	got, err := m.Run()
	if err != nil || got != 11 {
		t.Fatalf("got %d, %v", got, err)
	}
	if gv, err := m.GlobalValue("g"); err != nil || gv != 11 {
		t.Fatalf("GlobalValue = %d, %v", gv, err)
	}
}

func TestGlobalAccessors(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Type: ir.TFloat, Len: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGlobal(&ir.Global{Name: "a", Type: ir.TInt, Len: 4, Array: true}); err != nil {
		t.Fatal(err)
	}
	f := &ir.Func{Name: "main", RetType: ir.TVoid}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	ir.NewBuilder(f).Ret()
	m := New(p)
	if err := m.SetGlobalFloat("x", 2.5); err != nil {
		t.Fatal(err)
	}
	v, err := m.GlobalValue("x")
	if err != nil || math.Float64frombits(uint64(v)) != 2.5 {
		t.Fatalf("float global round trip failed: %v %v", v, err)
	}
	if err := m.SetGlobal("a", 1); err == nil {
		t.Fatal("setting an array as scalar must fail")
	}
	if _, err := m.GlobalValue("a"); err == nil {
		t.Fatal("reading an array as scalar must fail")
	}
	if err := m.SetGlobal("missing", 1); err == nil {
		t.Fatal("unknown global must fail")
	}
	if _, err := m.GlobalValue("missing"); err == nil {
		t.Fatal("unknown global must fail")
	}
}

func TestStoreElemAndBounds(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "a", Type: ir.TInt, Len: 3, Array: true}); err != nil {
		t.Fatal(err)
	}
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	idx := b.ConstI(2)
	val := b.ConstI(99)
	b.StoreElem(p.Global("a"), idx, val)
	b.RetVal(b.LoadElem(p.Global("a"), idx))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := New(p).Run()
	if err != nil || got != 99 {
		t.Fatalf("round trip: %d, %v", got, err)
	}
	// Negative index store must trap.
	p2 := ir.NewProgram()
	if err := p2.AddGlobal(&ir.Global{Name: "a", Type: ir.TInt, Len: 3, Array: true}); err != nil {
		t.Fatal(err)
	}
	f2 := &ir.Func{Name: "main", RetType: ir.TVoid}
	if err := p2.AddFunc(f2); err != nil {
		t.Fatal(err)
	}
	b2 := ir.NewBuilder(f2)
	nidx := b2.ConstI(-1)
	b2.StoreElem(p2.Global("a"), nidx, nidx)
	b2.Ret()
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(p2).Run(); err == nil {
		t.Fatal("negative store index must trap")
	}
}

func TestRuntimeErrorText(t *testing.T) {
	e := &RuntimeError{Func: "f", Block: "b3", Msg: "boom"}
	if e.Error() != "interp: boom in f at b3" {
		t.Fatalf("error text: %q", e.Error())
	}
}

func TestMainWithParamsRejected(t *testing.T) {
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", NParams: 1, NRegs: 1, RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	b.RetVal(0)
	if _, err := New(p).Run(); err == nil {
		t.Fatal("main with params must be rejected")
	}
	// Call with wrong arity must be rejected too.
	if _, err := New(p).Call(f); err == nil {
		t.Fatal("wrong arity call must fail")
	}
}
