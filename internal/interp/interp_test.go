package interp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// buildLoop constructs main() { s=0; for n=arg..1 { s+=n }; return s } with
// the loop bound loaded from global "n".
func buildLoop(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "n", Type: ir.TInt, Len: 1}); err != nil {
		t.Fatal(err)
	}
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	n := f.NewReg()
	s := f.NewReg()
	b.Mov(n, b.LoadG(p.Global("n")))
	zero := b.ConstI(0)
	b.Mov(s, zero)
	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")
	b.Jmp(head)
	b.SetBlock(head)
	b.Br(b.Binary(ir.OpGtI, n, zero), body, exit)
	b.SetBlock(body)
	b.Mov(s, b.Binary(ir.OpAddI, s, n))
	b.Mov(n, b.Binary(ir.OpSubI, n, b.ConstI(1)))
	b.Jmp(head)
	b.SetBlock(exit)
	b.RetVal(s)
	p.NumberBranches(true)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoopSum(t *testing.T) {
	p := buildLoop(t)
	m := New(p)
	if err := m.SetGlobal("n", 10); err != nil {
		t.Fatal(err)
	}
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
	if m.Branches != 11 {
		t.Fatalf("branches = %d, want 11", m.Branches)
	}
}

func TestBranchHookSeesOutcomes(t *testing.T) {
	p := buildLoop(t)
	m := New(p)
	if err := m.SetGlobal("n", 4); err != nil {
		t.Fatal(err)
	}
	var got []bool
	m.Hook = func(tm *ir.Term, taken bool) {
		if tm.Site != 0 {
			t.Errorf("unexpected site %d", tm.Site)
		}
		got = append(got, taken)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, true, true, false}
	if len(got) != len(want) {
		t.Fatalf("outcomes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("outcomes = %v, want %v", got, want)
		}
	}
}

func TestPredictionAccounting(t *testing.T) {
	p := buildLoop(t)
	// Predict taken: correct 10 times, wrong once (the exit).
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Term.Op == ir.TermBr {
				b.Term.Pred = ir.PredTaken
			}
		}
	}
	m := New(p)
	if err := m.SetGlobal("n", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Predicted != 11 || m.Mispredicted != 1 {
		t.Fatalf("predicted=%d mispredicted=%d, want 11/1", m.Predicted, m.Mispredicted)
	}
}

func TestBranchLimit(t *testing.T) {
	p := buildLoop(t)
	m := New(p)
	if err := m.SetGlobal("n", 1000000); err != nil {
		t.Fatal(err)
	}
	m.MaxBranches = 100
	_, err := m.Run()
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if m.Branches != 100 {
		t.Fatalf("branches = %d, want exactly 100", m.Branches)
	}
}

func TestStepLimit(t *testing.T) {
	p := buildLoop(t)
	m := New(p)
	if err := m.SetGlobal("n", 1000000); err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 500
	_, err := m.Run()
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestResetRestoresGlobals(t *testing.T) {
	p := buildLoop(t)
	m := New(p)
	if err := m.SetGlobal("n", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	first := m.Branches
	m.Reset()
	if m.Branches != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if v, _ := m.GlobalValue("n"); v != 0 {
		t.Fatalf("Reset left n = %d, want 0 (the declared init)", v)
	}
	if err := m.SetGlobal("n", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Branches != first {
		t.Fatalf("rerun branches = %d, want %d", m.Branches, first)
	}
}

// buildOp makes main() { return <op>(a, b) } reading a, b from globals.
func buildOp(t *testing.T, op ir.Op) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	for _, n := range []string{"a", "b"} {
		if err := p.AddGlobal(&ir.Global{Name: n, Type: ir.TInt, Len: 1}); err != nil {
			t.Fatal(err)
		}
	}
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	av := b.LoadG(p.Global("a"))
	bv := b.LoadG(p.Global("b"))
	var res ir.Reg
	if op.NumSrc() == 2 {
		res = b.Binary(op, av, bv)
	} else {
		res = b.Unary(op, av)
	}
	b.RetVal(res)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func runOp(t *testing.T, p *ir.Program, a, b int64) (int64, error) {
	t.Helper()
	m := New(p)
	if err := m.SetGlobal("a", a); err != nil {
		t.Fatal(err)
	}
	if err := m.SetGlobal("b", b); err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func TestIntegerOpsMatchGo(t *testing.T) {
	cases := []struct {
		op ir.Op
		fn func(a, b int64) int64
	}{
		{ir.OpAddI, func(a, b int64) int64 { return a + b }},
		{ir.OpSubI, func(a, b int64) int64 { return a - b }},
		{ir.OpMulI, func(a, b int64) int64 { return a * b }},
		{ir.OpAndI, func(a, b int64) int64 { return a & b }},
		{ir.OpOrI, func(a, b int64) int64 { return a | b }},
		{ir.OpXorI, func(a, b int64) int64 { return a ^ b }},
		{ir.OpShlI, func(a, b int64) int64 { return a << (uint64(b) & 63) }},
		{ir.OpShrI, func(a, b int64) int64 { return a >> (uint64(b) & 63) }},
		{ir.OpMinI, func(a, b int64) int64 { return min64(a, b) }},
		{ir.OpMaxI, func(a, b int64) int64 { return max64(a, b) }},
	}
	for _, c := range cases {
		p := buildOp(t, c.op)
		check := func(a, b int64) bool {
			got, err := runOp(t, p, a, b)
			return err == nil && got == c.fn(a, b)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%v: %v", c.op, err)
		}
	}
}

func TestDivisionTraps(t *testing.T) {
	p := buildOp(t, ir.OpDivI)
	if got, err := runOp(t, p, 7, 2); err != nil || got != 3 {
		t.Fatalf("7/2 = %d, %v", got, err)
	}
	_, err := runOp(t, p, 7, 0)
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("want RuntimeError, got %v", err)
	}
	pm := buildOp(t, ir.OpModI)
	if _, err := runOp(t, pm, 7, 0); err == nil {
		t.Fatal("modulo by zero must trap")
	}
}

func TestFloatOps(t *testing.T) {
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", RetType: ir.TFloat}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	x := b.ConstF(2.0)
	y := b.ConstF(0.5)
	sum := b.Binary(ir.OpAddF, x, y)    // 2.5
	prod := b.Binary(ir.OpMulF, sum, y) // 1.25
	rt := b.Unary(ir.OpSqrtF, prod)     // ~1.1180
	b.RetVal(rt)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := New(p)
	bits, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := math.Float64frombits(uint64(bits))
	want := math.Sqrt(1.25)
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestArrayBoundsTrap(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "arr", Type: ir.TInt, Len: 4, Array: true}); err != nil {
		t.Fatal(err)
	}
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	idx := b.ConstI(4) // out of range
	v := b.LoadElem(p.Globals[0], idx)
	b.RetVal(v)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err := New(p).Run()
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("want RuntimeError, got %v", err)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	p := ir.NewProgram()
	fib := &ir.Func{Name: "fib", NParams: 1, NRegs: 1, RetType: ir.TInt}
	if err := p.AddFunc(fib); err != nil {
		t.Fatal(err)
	}
	main := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(main); err != nil {
		t.Fatal(err)
	}
	// fib(n) = n < 2 ? n : fib(n-1)+fib(n-2)
	b := ir.NewBuilder(fib)
	n := ir.Reg(0)
	two := b.ConstI(2)
	base := b.Block("base")
	rec := b.Block("rec")
	b.Br(b.Binary(ir.OpLtI, n, two), base, rec)
	b.SetBlock(base)
	b.RetVal(n)
	b.SetBlock(rec)
	one := b.ConstI(1)
	a := b.Call(fib, b.Binary(ir.OpSubI, n, one))
	c := b.Call(fib, b.Binary(ir.OpSubI, n, two))
	b.RetVal(b.Binary(ir.OpAddI, a, c))

	mb := ir.NewBuilder(main)
	arg := mb.ConstI(12)
	mb.RetVal(mb.Call(fib, arg))
	p.NumberBranches(true)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := New(p).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 144 {
		t.Fatalf("fib(12) = %d, want 144", got)
	}
}

func TestDepthLimit(t *testing.T) {
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	b.RetVal(b.Call(f)) // infinite recursion
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.MaxDepth = 100
	_, err := m.Run()
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestChecksumIsOrderSensitive(t *testing.T) {
	mk := func(vals []int64) uint64 {
		p := ir.NewProgram()
		f := &ir.Func{Name: "main", RetType: ir.TVoid}
		if err := p.AddFunc(f); err != nil {
			t.Fatal(err)
		}
		b := ir.NewBuilder(f)
		for _, v := range vals {
			b.Print(b.ConstI(v))
		}
		b.Ret()
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		m := New(p)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if m.Prints != uint64(len(vals)) {
			t.Fatalf("prints = %d", m.Prints)
		}
		return m.Checksum
	}
	if mk([]int64{1, 2}) == mk([]int64{2, 1}) {
		t.Fatal("checksum must depend on order")
	}
	if mk([]int64{1, 2}) != mk([]int64{1, 2}) {
		t.Fatal("checksum must be deterministic")
	}
}

func TestFtoIRangeTrap(t *testing.T) {
	p := ir.NewProgram()
	f := &ir.Func{Name: "main", RetType: ir.TInt}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	big := b.ConstF(1e300)
	b.RetVal(b.Unary(ir.OpFtoI, big))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(p).Run(); err == nil {
		t.Fatal("float->int overflow must trap")
	}
}

func TestMainMissing(t *testing.T) {
	p := ir.NewProgram()
	f := &ir.Func{Name: "notmain", RetType: ir.TVoid}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	b.Ret()
	if _, err := New(p).Run(); err == nil {
		t.Fatal("want error for missing main")
	}
}
