package interp_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/lang"
)

// loopSrc spins essentially forever: ~2^62 iterations of a two-block loop.
const loopSrc = `
var total int;

func main() int {
    for var i int = 0; i < 4611686018427387904; i = i + 1 {
        total = total + i;
    }
    return total;
}`

// TestContextCancelStopsRun proves the service-facing guarantee: a
// cancelled context stops a long interpreter run promptly instead of
// pinning the goroutine until a step budget runs out.
func TestContextCancelStopsRun(t *testing.T) {
	prog, err := lang.Compile(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	ctx, cancel := context.WithCancel(context.Background())
	m.Ctx = ctx
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := m.Run()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not stop within 5s")
	}
}

// TestContextDeadline checks the deadline flavour used by the HTTP layer's
// request timeouts.
func TestContextDeadline(t *testing.T) {
	prog, err := lang.Compile(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	m.Ctx = ctx
	m.CtxCheckEvery = 512
	start := time.Now()
	if _, err := m.Run(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to land", elapsed)
	}
}

// TestNilContextUnaffected pins the fast path: without a Ctx the machine
// runs to its limits exactly as before.
func TestNilContextUnaffected(t *testing.T) {
	prog, err := lang.Compile(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(prog)
	m.MaxSteps = 10_000
	if _, err := m.Run(); !errors.Is(err, interp.ErrLimit) {
		t.Fatalf("Run returned %v, want ErrLimit", err)
	}
}
