// Package superblock implements profile-guided trace formation — the
// compiler consumer the paper builds its prediction for (§1: code motion
// and speculative execution; §6: the global instruction scheduler). Traces
// are grown along mutually-most-likely edges; the dynamic trace length (how
// many instructions execute between trace exits) measures how much
// straight-line scope a scheduler would get. Replication lengthens traces
// because each replicated branch copy is strongly biased.
package superblock

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/trace"
)

// Trace is one formed instruction trace: a block sequence intended to be
// scheduled as a unit.
type Trace struct {
	Blocks []*ir.Block
}

// Formation is the per-function result.
type Formation struct {
	Func   *ir.Func
	Traces []Trace
	// next[b] is b's on-trace successor (nil at trace tails).
	next map[*ir.Block]*ir.Block
}

// OnTraceNext returns the trace successor of b, or nil.
func (fm *Formation) OnTraceNext(b *ir.Block) *ir.Block { return fm.next[b] }

// edgeWeights mirrors layout's derivation: Jmp edge weight = block count;
// Br taken from the branch profile; fall-through = remainder.
func edgeWeight(b *ir.Block, taken bool, blockCounts []uint64, counts *trace.Counts) uint64 {
	switch b.Term.Op {
	case ir.TermJmp:
		if taken {
			return blockCounts[b.ID]
		}
		return 0
	case ir.TermBr:
		tk := counts.Taken[b.Term.Site]
		exec := blockCounts[b.ID]
		if taken {
			return tk
		}
		if exec > tk {
			return exec - tk
		}
		return 0
	}
	return 0
}

// likelySucc returns b's most likely successor and that edge's weight.
func likelySucc(b *ir.Block, blockCounts []uint64, counts *trace.Counts) (*ir.Block, uint64) {
	switch b.Term.Op {
	case ir.TermJmp:
		return b.Term.Then, blockCounts[b.ID]
	case ir.TermBr:
		wt := edgeWeight(b, true, blockCounts, counts)
		wf := edgeWeight(b, false, blockCounts, counts)
		if wt >= wf {
			return b.Term.Then, wt
		}
		return b.Term.Else, wf
	}
	return nil, 0
}

// Form grows traces with the classic mutual-most-likely rule: starting from
// the hottest unplaced block, extend forward while the likely successor is
// unplaced and this block is also the successor's likely predecessor.
func Form(f *ir.Func, blockCounts []uint64, counts *trace.Counts) *Formation {
	// Likely predecessor per block: the incoming edge with the highest
	// weight.
	likelyPred := make(map[*ir.Block]*ir.Block, len(f.Blocks))
	bestIn := make(map[*ir.Block]uint64, len(f.Blocks))
	consider := func(from, to *ir.Block, w uint64) {
		if w > bestIn[to] || (likelyPred[to] == nil && w > 0) {
			if w >= bestIn[to] {
				bestIn[to] = w
				likelyPred[to] = from
			}
		}
	}
	for _, b := range f.Blocks {
		switch b.Term.Op {
		case ir.TermJmp:
			consider(b, b.Term.Then, edgeWeight(b, true, blockCounts, counts))
		case ir.TermBr:
			consider(b, b.Term.Then, edgeWeight(b, true, blockCounts, counts))
			consider(b, b.Term.Else, edgeWeight(b, false, blockCounts, counts))
		}
	}

	order := make([]*ir.Block, len(f.Blocks))
	copy(order, f.Blocks)
	sort.SliceStable(order, func(i, j int) bool {
		ci, cj := blockCounts[order[i].ID], blockCounts[order[j].ID]
		if ci != cj {
			return ci > cj
		}
		return order[i].ID < order[j].ID
	})

	fm := &Formation{Func: f, next: make(map[*ir.Block]*ir.Block)}
	placed := make(map[*ir.Block]bool, len(f.Blocks))
	for _, seed := range order {
		if placed[seed] {
			continue
		}
		tr := Trace{Blocks: []*ir.Block{seed}}
		placed[seed] = true
		cur := seed
		for {
			succ, w := likelySucc(cur, blockCounts, counts)
			if succ == nil || w == 0 || placed[succ] {
				break
			}
			if likelyPred[succ] != cur {
				break // side entrance would dominate; stop the trace
			}
			fm.next[cur] = succ
			tr.Blocks = append(tr.Blocks, succ)
			placed[succ] = true
			cur = succ
		}
		fm.Traces = append(fm.Traces, tr)
	}
	return fm
}

// Stats measures a formation dynamically.
type Stats struct {
	// Instrs is the number of executed instructions (terminators count 1).
	Instrs uint64
	// Exits counts executed control transfers that leave the current
	// trace (the scheduling-scope boundaries).
	Exits uint64
	// Traces and Blocks describe the static formation.
	Traces, Blocks int
}

// AvgDynamicLength is the average number of instructions executed between
// trace exits — the effective straight-line scope a scheduler gets.
func (s Stats) AvgDynamicLength() float64 {
	if s.Exits == 0 {
		return float64(s.Instrs)
	}
	return float64(s.Instrs) / float64(s.Exits)
}

// Measure evaluates one function's formation against the profile.
func Measure(fm *Formation, blockCounts []uint64, counts *trace.Counts) Stats {
	st := Stats{Traces: len(fm.Traces), Blocks: len(fm.Func.Blocks)}
	for _, b := range fm.Func.Blocks {
		exec := blockCounts[b.ID]
		st.Instrs += exec * uint64(len(b.Instrs)+1)
		onTrace := fm.next[b]
		switch b.Term.Op {
		case ir.TermJmp:
			if b.Term.Then != onTrace {
				st.Exits += exec
			}
		case ir.TermBr:
			wt := edgeWeight(b, true, blockCounts, counts)
			wf := edgeWeight(b, false, blockCounts, counts)
			if b.Term.Then != onTrace {
				st.Exits += wt
			}
			if b.Term.Else != onTrace {
				st.Exits += wf
			}
		case ir.TermRet:
			st.Exits += exec
		}
	}
	return st
}

// MeasureProgram forms traces for every function and sums the statistics.
func MeasureProgram(prog *ir.Program, blockCounts [][]uint64, counts *trace.Counts) Stats {
	var total Stats
	for _, f := range prog.Funcs {
		fm := Form(f, blockCounts[f.ID], counts)
		st := Measure(fm, blockCounts[f.ID], counts)
		total.Instrs += st.Instrs
		total.Exits += st.Exits
		total.Traces += st.Traces
		total.Blocks += st.Blocks
	}
	return total
}
