package superblock

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/progen"
	"repro/internal/trace"
)

func profileFor(t *testing.T, prog *ir.Program) ([][]uint64, *trace.Counts) {
	t.Helper()
	n := prog.NumberBranches(false)
	counts := trace.NewCounts(n)
	m := interp.New(prog)
	m.EnableBlockCounts()
	m.Hook = counts.Branch
	m.MaxSteps = 20_000_000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.BlockCounts(), counts
}

func TestFormHotLoopTrace(t *testing.T) {
	prog, err := lang.Compile(`
func main() int {
    var s int = 0;
    for var i int = 0; i < 10000; i = i + 1 {
        if i % 100 == 0 { s = s + 50; } else { s = s + 1; }
    }
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	prog.NumberBranches(true)
	bc, counts := profileFor(t, prog)
	f := prog.Func("main")
	fm := Form(f, bc[f.ID], counts)

	// Every block placed exactly once.
	seen := map[*ir.Block]int{}
	for _, tr := range fm.Traces {
		if len(tr.Blocks) == 0 {
			t.Fatal("empty trace")
		}
		for _, b := range tr.Blocks {
			seen[b]++
		}
	}
	if len(seen) != len(f.Blocks) {
		t.Fatalf("placed %d of %d blocks", len(seen), len(f.Blocks))
	}
	for b, n := range seen {
		if n != 1 {
			t.Fatalf("block %v placed %d times", b, n)
		}
	}
	// The hot loop must form a multi-block trace (head→hot-arm→join→post).
	longest := 0
	for _, tr := range fm.Traces {
		if len(tr.Blocks) > longest {
			longest = len(tr.Blocks)
		}
	}
	if longest < 3 {
		t.Fatalf("longest trace %d blocks; hot loop not chained", longest)
	}
	st := Measure(fm, bc[f.ID], counts)
	if st.Instrs == 0 || st.Exits == 0 {
		t.Fatalf("bad stats %+v", st)
	}
	if st.AvgDynamicLength() < 5 {
		t.Fatalf("dynamic trace length %.1f implausibly short", st.AvgDynamicLength())
	}
}

func TestBiasedBranchesLengthenTraces(t *testing.T) {
	// The same loop with a 99%-biased branch must yield longer dynamic
	// traces than with a 50/50 branch.
	mk := func(mod int) Stats {
		src := `
func main() int {
    var s int = 0;
    for var i int = 0; i < 20000; i = i + 1 {
        if i % MOD == 0 { s = s + 50; } else { s = s + 1; }
    }
    return s;
}`
		srcs := ""
		for _, ch := range src {
			srcs += string(ch)
		}
		srcs = replaceMOD(srcs, mod)
		prog, err := lang.Compile(srcs)
		if err != nil {
			t.Fatal(err)
		}
		prog.NumberBranches(true)
		bc, counts := profileFor(t, prog)
		return MeasureProgram(prog, bc, counts)
	}
	biased := mk(100)
	even := mk(2)
	if biased.AvgDynamicLength() <= even.AvgDynamicLength() {
		t.Fatalf("biased %.1f <= even %.1f", biased.AvgDynamicLength(), even.AvgDynamicLength())
	}
}

func replaceMOD(s string, mod int) string {
	out := ""
	for i := 0; i < len(s); i++ {
		if i+3 <= len(s) && s[i:i+3] == "MOD" {
			out += itoa(mod)
			i += 2
			continue
		}
		out += string(s[i])
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// Property: formations on random programs are always complete partitions
// and measure without anomalies.
func TestFormOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog, err := lang.Compile(progen.Generate(seed, progen.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		prog.NumberBranches(true)
		n := prog.NumberBranches(false)
		counts := trace.NewCounts(n)
		m := interp.New(prog)
		m.EnableBlockCounts()
		m.Hook = counts.Branch
		m.MaxSteps = 10_000_000
		if _, err := m.Run(); err != nil {
			continue
		}
		bc := m.BlockCounts()
		for _, f := range prog.Funcs {
			fm := Form(f, bc[f.ID], counts)
			placed := 0
			for _, tr := range fm.Traces {
				placed += len(tr.Blocks)
			}
			if placed != len(f.Blocks) {
				t.Fatalf("seed %d %s: %d placed of %d", seed, f.Name, placed, len(f.Blocks))
			}
		}
		st := MeasureProgram(prog, bc, counts)
		if st.Exits == 0 {
			t.Fatalf("seed %d: no trace exits (returns must count)", seed)
		}
	}
}
