package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// HealthOptions configures peer probing.
type HealthOptions struct {
	// Interval between probe rounds (default 1s).
	Interval time.Duration
	// Timeout per probe (default 500ms).
	Timeout time.Duration
	// FailThreshold consecutive probe failures mark a peer down
	// (default 2). A single success marks it up again.
	FailThreshold int
}

func (o *HealthOptions) setDefaults() {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 500 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
}

// Health tracks peer liveness by probing each peer's /healthz. Peers
// start optimistic (up): a cluster booting in any order must not route
// away from peers that merely have not been probed yet, and the
// forward-path degradation handles the window where an unprobed peer is
// actually dead.
type Health struct {
	opts   HealthOptions
	client *http.Client

	mu    sync.Mutex
	peers map[string]*peerState
}

type peerState struct {
	up    bool
	fails int
}

// NewHealth tracks the given peers (base URLs, no trailing slash).
func NewHealth(peers []string, opts HealthOptions) *Health {
	opts.setDefaults()
	h := &Health{
		opts:   opts,
		client: &http.Client{Timeout: opts.Timeout},
		peers:  make(map[string]*peerState, len(peers)),
	}
	for _, p := range peers {
		h.peers[p] = &peerState{up: true}
	}
	return h
}

// Up reports whether peer is currently considered alive. Unknown peers
// (e.g. self, which is never probed) are up.
func (h *Health) Up(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.peers[peer]
	return !ok || st.up
}

// Snapshot returns the current up/down view of all tracked peers.
func (h *Health) Snapshot() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]bool, len(h.peers))
	for p, st := range h.peers {
		out[p] = st.up
	}
	return out
}

// MarkDown force-fails a peer, as if FailThreshold probes had failed.
// The prober will bring it back up on the next successful round.
func (h *Health) MarkDown(peer string) {
	h.mu.Lock()
	if st, ok := h.peers[peer]; ok {
		st.up = false
		st.fails = h.opts.FailThreshold
	}
	h.mu.Unlock()
}

// Start launches the probe loop; it stops when ctx is cancelled.
func (h *Health) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(h.opts.Interval)
		defer t.Stop()
		for {
			h.probeAll(ctx)
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()
}

// probeAll probes every peer once, concurrently.
func (h *Health) probeAll(ctx context.Context) {
	h.mu.Lock()
	peers := make([]string, 0, len(h.peers))
	for p := range h.peers {
		peers = append(peers, p)
	}
	h.mu.Unlock()

	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			h.record(p, h.probe(ctx, p))
		}(p)
	}
	wg.Wait()
}

func (h *Health) probe(ctx context.Context, peer string) bool {
	ctx, cancel := context.WithTimeout(ctx, h.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (h *Health) record(peer string, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, found := h.peers[peer]
	if !found {
		return
	}
	if ok {
		st.fails = 0
		st.up = true
		return
	}
	st.fails++
	if st.fails >= h.opts.FailThreshold {
		st.up = false
	}
}
