package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	b := NewRing([]string{"http://n3", "http://n1", "http://n2"}, 0)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("art/%032x", i)
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("key %q: owner depends on construction order (%s vs %s)", k, oa, ob)
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	const n = 20_000
	for i := 0; i < n; i++ {
		o, ok := r.Owner(fmt.Sprintf("art/%d", i))
		if !ok {
			t.Fatal("owner not found")
		}
		counts[o]++
	}
	for _, node := range nodes {
		share := float64(counts[node]) / n
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys — ring badly unbalanced: %v", node, 100*share, counts)
		}
	}
}

func TestRingStabilityUnderMembershipChange(t *testing.T) {
	// Removing one of four nodes must move only (about) that node's keys.
	all := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	r4 := NewRing(all, 0)
	r3 := NewRing(all[:3], 0)
	moved := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("art/%d", i)
		o4, _ := r4.Owner(k)
		o3, _ := r3.Owner(k)
		if o4 != "http://n4" && o4 != o3 {
			moved++
		}
	}
	if frac := float64(moved) / n; frac > 0.02 {
		t.Errorf("%.2f%% of surviving keys moved when a node left; consistent hashing should move almost none", 100*frac)
	}
}

func TestRingOwners(t *testing.T) {
	r := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	owners := r.Owners("some/key", 3)
	if len(owners) != 3 {
		t.Fatalf("Owners returned %d nodes, want 3", len(owners))
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("Owners repeated %s: %v", o, owners)
		}
		seen[o] = true
	}
	first, _ := r.Owner("some/key")
	if owners[0] != first {
		t.Fatalf("Owners[0] = %s, Owner = %s", owners[0], first)
	}
	// Asking for more than the membership truncates.
	if got := r.Owners("some/key", 10); len(got) != 3 {
		t.Fatalf("Owners(10) returned %d nodes", len(got))
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(nil, 0)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := r.Owners("k", 2); got != nil {
		t.Fatalf("empty ring Owners = %v", got)
	}
}

func TestRingSingleNode(t *testing.T) {
	r := NewRing([]string{"http://solo"}, 0)
	for i := 0; i < 10; i++ {
		o, ok := r.Owner(fmt.Sprintf("k%d", i))
		if !ok || o != "http://solo" {
			t.Fatal("single-node ring must own every key")
		}
	}
	if !reflect.DeepEqual(r.Nodes(), []string{"http://solo"}) {
		t.Fatal("Nodes mismatch")
	}
}
