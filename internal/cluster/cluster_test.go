package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestHealthMarksDownAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	h := NewHealth([]string{srv.URL}, HealthOptions{Interval: 10 * time.Millisecond, Timeout: 200 * time.Millisecond, FailThreshold: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)

	if !h.Up(srv.URL) {
		t.Fatal("peer should start up (optimistic)")
	}
	healthy.Store(false)
	waitFor(t, time.Second, func() bool { return !h.Up(srv.URL) })
	healthy.Store(true)
	waitFor(t, time.Second, func() bool { return h.Up(srv.URL) })
}

func TestHealthUnknownPeerIsUp(t *testing.T) {
	h := NewHealth(nil, HealthOptions{})
	if !h.Up("http://never-registered") {
		t.Fatal("unknown peers (self) must read as up")
	}
}

func TestOwnerSkipsDownPeers(t *testing.T) {
	self := "http://self"
	peers := []string{"http://p1", "http://p2"}
	c, err := New(Options{Self: self, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key each peer owns.
	keyOwnedBy := func(node string) string {
		for i := 0; i < 10_000; i++ {
			k := "art/" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + "/" + time.Duration(i).String()
			if o, _ := c.ring.Owner(k); o == node {
				return k
			}
		}
		t.Fatalf("no key found for %s", node)
		return ""
	}
	k1 := keyOwnedBy("http://p1")
	if got := c.Owner(k1); got != "http://p1" {
		t.Fatalf("healthy owner bypassed: %s", got)
	}
	c.Health().MarkDown("http://p1")
	got := c.Owner(k1)
	if got == "http://p1" {
		t.Fatal("Owner routed to a down peer")
	}
	// With every peer down, everything lands on self.
	c.Health().MarkDown("http://p2")
	for _, k := range []string{k1, keyOwnedBy("http://p2"), keyOwnedBy(self)} {
		if got := c.Owner(k); got != self {
			t.Fatalf("with all peers down, Owner(%q) = %s, want self", k, got)
		}
	}
}

func TestFetchArtifact(t *testing.T) {
	const key = "art/abc123/42"
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if r.URL.Path == "/v1/internal/artifact/"+"art%2Fabc123%2F42" || r.URL.EscapedPath() == "/v1/internal/artifact/art%2Fabc123%2F42" {
			w.Write([]byte("artifact-bytes"))
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()

	c, err := New(Options{Self: "http://self", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.FetchArtifact(context.Background(), srv.URL, key)
	if err != nil {
		t.Fatalf("FetchArtifact: %v", err)
	}
	if string(data) != "artifact-bytes" {
		t.Fatalf("got %q", data)
	}
	if calls.Load() != 1 {
		t.Fatalf("expected 1 call, got %d", calls.Load())
	}
}

func TestFetchArtifact404NoRetry(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c, err := New(Options{Self: "http://self", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchArtifact(context.Background(), srv.URL, "art/missing"); err == nil {
		t.Fatal("expected an error for a 404")
	}
	if calls.Load() != 1 {
		t.Fatalf("404 must not be retried; got %d calls", calls.Load())
	}
	_, _, fetches, fetchErrs := c.Counters()
	if fetches != 1 || fetchErrs != 1 {
		t.Fatalf("counters fetches=%d errs=%d", fetches, fetchErrs)
	}
}

func TestFetchArtifactRetriesTransientFailure(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("eventually"))
	}))
	defer srv.Close()
	c, err := New(Options{Self: "http://self", Peers: []string{srv.URL}, FetchRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.FetchArtifact(context.Background(), srv.URL, "art/x")
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if string(data) != "eventually" || calls.Load() != 3 {
		t.Fatalf("data=%q calls=%d", data, calls.Load())
	}
}

func TestNewDeduplicatesSelf(t *testing.T) {
	c, err := New(Options{Self: "http://a", Peers: []string{"http://a", "http://b", "http://b", ""}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (self deduped, blanks dropped)", c.Size())
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
