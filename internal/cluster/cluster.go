package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"
)

// Options configures a Cluster membership handle.
type Options struct {
	// Self is this node's own base URL as peers address it.
	Self string
	// Peers are the other nodes' base URLs (Self may be included; it is
	// deduplicated).
	Peers []string
	// VNodesPerNode overrides DefaultVirtualNodes.
	VNodesPerNode int
	// Health overrides probe tuning.
	Health HealthOptions
	// FetchTimeout bounds one peer artifact fetch (default 5s).
	FetchTimeout time.Duration
	// FetchRetries is the number of extra attempts after a failed fetch
	// (default 2), with doubling backoff from 25ms.
	FetchRetries int
	// Logger receives forward/fetch failures (default slog.Default).
	Logger *slog.Logger
}

// Cluster is one node's view of the serving ring: placement, peer
// health, and the peer artifact-fetch client. Create with New, Start the
// health loop, then consult Owner per request.
type Cluster struct {
	self   string
	ring   *Ring
	health *Health
	client *http.Client
	opts   Options
	log    *slog.Logger

	forwards        atomic.Int64
	forwardErrors   atomic.Int64
	peerFetches     atomic.Int64
	peerFetchErrors atomic.Int64
}

// New builds the membership handle. The ring contains Self plus Peers.
func New(opts Options) (*Cluster, error) {
	if opts.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	if opts.FetchTimeout <= 0 {
		opts.FetchTimeout = 5 * time.Second
	}
	if opts.FetchRetries < 0 {
		opts.FetchRetries = 0
	} else if opts.FetchRetries == 0 {
		opts.FetchRetries = 2
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	seen := map[string]bool{opts.Self: true}
	nodes := []string{opts.Self}
	var peers []string
	for _, p := range opts.Peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		nodes = append(nodes, p)
		peers = append(peers, p)
	}
	return &Cluster{
		self:   opts.Self,
		ring:   NewRing(nodes, opts.VNodesPerNode),
		health: NewHealth(peers, opts.Health),
		client: &http.Client{Timeout: opts.FetchTimeout},
		opts:   opts,
		log:    opts.Logger,
	}, nil
}

// Start launches health probing until ctx is cancelled.
func (c *Cluster) Start(ctx context.Context) { c.health.Start(ctx) }

// Self returns this node's base URL.
func (c *Cluster) Self() string { return c.self }

// Nodes returns all ring members, sorted.
func (c *Cluster) Nodes() []string { return c.ring.Nodes() }

// Size is the number of ring members.
func (c *Cluster) Size() int { return len(c.ring.Nodes()) }

// Health exposes the prober (for metrics and tests).
func (c *Cluster) Health() *Health { return c.health }

// Owner returns the healthy node that should serve key: the ring owner
// if it is up, otherwise the first healthy successor. If every other
// candidate is down the node serves the key itself — the cluster
// degrades to independent single nodes rather than failing requests.
func (c *Cluster) Owner(key string) string {
	for _, n := range c.ring.Owners(key, c.Size()) {
		if n == c.self || c.health.Up(n) {
			return n
		}
	}
	return c.self
}

// IsSelf reports whether node is this node.
func (c *Cluster) IsSelf(node string) bool { return node == c.self }

// PeerUp reports liveness of a ring member (self is always up).
func (c *Cluster) PeerUp(node string) bool {
	return node == c.self || c.health.Up(node)
}

// CountForward records a proxied request (success or failure).
func (c *Cluster) CountForward(err error) {
	c.forwards.Add(1)
	if err != nil {
		c.forwardErrors.Add(1)
	}
}

// Counters returns lifetime forward/fetch totals.
func (c *Cluster) Counters() (forwards, forwardErrors, peerFetches, peerFetchErrors int64) {
	return c.forwards.Load(), c.forwardErrors.Load(), c.peerFetches.Load(), c.peerFetchErrors.Load()
}

// FetchArtifact asks peer for the raw artifact bytes stored under key,
// retrying with doubling backoff. A 404 means the peer does not have it
// (no retry); any other failure is retried then reported. The caller
// falls back to local computation either way, so errors here cost
// latency, never correctness.
func (c *Cluster) FetchArtifact(ctx context.Context, peer, key string) ([]byte, error) {
	c.peerFetches.Add(1)
	var lastErr error
	backoff := 25 * time.Millisecond
	for attempt := 0; attempt <= c.opts.FetchRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				c.peerFetchErrors.Add(1)
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		data, status, err := c.fetchOnce(ctx, peer, key)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if status == http.StatusNotFound {
			break // the peer definitively does not have it
		}
	}
	c.peerFetchErrors.Add(1)
	return nil, lastErr
}

func (c *Cluster) fetchOnce(ctx context.Context, peer, key string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.FetchTimeout)
	defer cancel()
	u := peer + "/v1/internal/artifact/" + url.PathEscape(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, resp.StatusCode, fmt.Errorf("cluster: %s returned %d for %q", peer, resp.StatusCode, key)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return data, 0, nil
}
