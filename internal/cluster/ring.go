// Package cluster turns N independent kralld processes into one serving
// tier: a consistent-hash ring with virtual nodes decides which replica
// owns each artifact key, per-peer health checking takes dead replicas
// out of the ring, and a small HTTP client fetches artifacts from peers
// on local disk misses.
//
// The ring hash is FNV-64a, deliberately not maphash: every process in
// the cluster (and the load generator routing on the client side) must
// agree on key placement, so the hash has to be seedless and stable
// across processes and releases.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring over a set of node names
// (base URLs). Build once with NewRing; lookups are read-only and safe
// for concurrent use.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// DefaultVirtualNodes is the per-node replication factor on the ring.
// 64 virtual points per node keeps the max/min load ratio under ~1.3 for
// small clusters without making lookups measurably slower.
const DefaultVirtualNodes = 64

// NewRing builds a ring over nodes with vper virtual points each
// (DefaultVirtualNodes if vper <= 0). Node order does not matter; the
// same set always yields the same placement.
func NewRing(nodes []string, vper int) *Ring {
	if vper <= 0 {
		vper = DefaultVirtualNodes
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*vper)
	for i, n := range r.nodes {
		for v := 0; v < vper; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a alone mixes the last input
// bytes weakly, which visibly skews ring-point spread for near-identical
// labels like "node#17" / "node#18"; the finalizer restores avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key: the first ring point at or after the
// key's hash. Empty rings own nothing.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].node], true
}

// Owners returns up to n distinct nodes in ring-walk order from key's
// position: the owner first, then the successors that would take over if
// it failed. Used for health-aware placement.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}
