package replicate

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/progen"
	"repro/internal/statemachine"
)

// sameLoopSrc has two replicable branches in one loop: sequential
// replication multiplies their machines, joint replication shares one.
const sameLoopSrc = `
func main() int {
    var s int = 0;
    for var i int = 0; i < 4000; i = i + 1 {
        if i % 2 == 0 { s = s + 1; } else { s = s + 2; }
        if i % 2 == 1 { s = s + 3; } else { s = s + 4; }
    }
    print(s);
    return s;
}`

func jointPipeline(t *testing.T, src string, maxStates int) (*pipelineResult, []statemachine.Choice) {
	t.Helper()
	p := runPipeline(t, src, statemachine.Options{MaxStates: maxStates, MaxPathLen: 1, DisablePath: true})
	return p, p.choices
}

func TestJointBeatsSequentialOnSize(t *testing.T) {
	p, choices := jointPipeline(t, sameLoopSrc, 2)
	var machineBranches int
	for i := range choices {
		if choices[i].Kind != statemachine.KindProfile {
			machineBranches++
		}
	}
	if machineBranches < 2 {
		t.Skipf("only %d machine branches", machineBranches)
	}
	// Sequential.
	seq := ir.CloneProgram(p.orig)
	seqStats, err := Apply(seq, choices, p.preds)
	if err != nil {
		t.Fatal(err)
	}
	// Joint.
	joint := ir.CloneProgram(p.orig)
	jointStats, err := ApplyJoint(joint, choices, p.preds, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if jointStats.InstrsAfter > seqStats.InstrsAfter {
		t.Fatalf("joint (%d instrs) larger than sequential (%d)",
			jointStats.InstrsAfter, seqStats.InstrsAfter)
	}
	// Both must preserve semantics and reach comparable accuracy.
	mSeq := interp.New(seq)
	retSeq, err := mSeq.Run()
	if err != nil {
		t.Fatal(err)
	}
	mJoint := interp.New(joint)
	retJoint, err := mJoint.Run()
	if err != nil {
		t.Fatal(err)
	}
	if retSeq != p.baseRet || retJoint != p.baseRet ||
		mSeq.Checksum != p.baseSum || mJoint.Checksum != p.baseSum {
		t.Fatal("semantics changed")
	}
	seqRate := 100 * float64(mSeq.Mispredicted) / float64(mSeq.Predicted)
	jointRate := 100 * float64(mJoint.Mispredicted) / float64(mJoint.Predicted)
	if jointRate > seqRate+1.0 {
		t.Fatalf("joint rate %.2f%% worse than sequential %.2f%%", jointRate, seqRate)
	}
	// Both in-phase branches are perfectly predictable with 2 states.
	if jointRate > 1.0 {
		t.Fatalf("joint rate %.2f%%, want near 0", jointRate)
	}
}

func TestJointPreservesSemanticsOnRandomPrograms(t *testing.T) {
	for seed := int64(50); seed < 75; seed++ {
		src := progen.Generate(seed, progen.DefaultConfig())
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		nSites := prog.NumberBranches(true)
		if nSites == 0 {
			continue
		}
		prof := profile.New(nSites, profile.Options{})
		ref := interp.New(prog)
		ref.MaxSteps = 10_000_000
		ref.Hook = prof.Branch
		refRet, err := ref.Run()
		if err != nil {
			continue
		}
		feats := predict.Analyze(prog)
		choices := statemachine.Select(prof, feats, statemachine.Options{
			MaxStates: 2 + int(seed%4), MaxPathLen: 1,
		})
		preds := predict.ProfileStatic(prof.Counts).Preds
		clone := ir.CloneProgram(prog)
		st, err := ApplyJoint(clone, choices, preds, Options{MaxSizeFactor: 4, Verify: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !st.Verified {
			t.Fatalf("seed %d: Verify requested but Stats.Verified not set", seed)
		}
		m := interp.New(clone)
		m.MaxSteps = 40_000_000
		got, err := m.Run()
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if got != refRet || m.Checksum != ref.Checksum || m.Branches != ref.Branches {
			t.Fatalf("seed %d: joint replication changed behaviour\n%s", seed, src)
		}
	}
}

func TestJointHandlesNestedLoops(t *testing.T) {
	src := `
func main() int {
    var s int = 0;
    for var i int = 0; i < 300; i = i + 1 {
        if i % 2 == 0 { s = s + 1; }
        for var j int = 0; j < 4; j = j + 1 {
            if j % 2 == 0 { s = s + 2; }
        }
    }
    print(s);
    return s;
}`
	p, choices := jointPipeline(t, src, 3)
	clone := ir.CloneProgram(p.orig)
	st, err := ApplyJoint(clone, choices, p.preds, Options{MaxSizeFactor: 8, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.LoopApplied == 0 {
		t.Fatalf("nothing applied: %+v", st)
	}
	m := interp.New(clone)
	ret, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != p.baseRet || m.Checksum != p.baseSum {
		t.Fatal("nested joint replication changed semantics")
	}
}
